// Case-study-2 workflow end to end on a small scale: train a digit
// classifier, quantize it to 8-bit (Ristretto-style), derive the WMED
// weights from the trained weight histogram, evolve an approximate signed
// multiplier, and measure classification accuracy before and after
// approximate-aware fine-tuning.
#include <cstdio>

#include "core/design_flow.h"
#include "data/digits.h"
#include "mult/multipliers.h"
#include "nn/finetune.h"
#include "nn/models.h"
#include "nn/quantize.h"
#include "nn/trainer.h"

int main() {
  using namespace axc;

  // 1. Data + float training.
  const auto train_set = data::make_mnist_like(2000, 1);
  const auto test_set = data::make_mnist_like(500, 2);
  const auto train_x = data::to_tensors(train_set);
  const auto test_x = data::to_tensors(test_set);

  nn::network mlp = nn::make_mlp(/*seed=*/7, 28 * 28, 100);
  nn::train_config tcfg;
  tcfg.epochs = 4;
  tcfg.learning_rate = 0.08f;
  nn::train(mlp, train_x, train_set.labels, tcfg);
  std::printf("float accuracy:      %.2f%%\n",
              100.0 * nn::accuracy(mlp, test_x, test_set.labels));

  // 2. 8-bit quantization + exact-multiplier reference.
  nn::quantized_network qnet(
      mlp, std::span<const nn::tensor>(train_x).subspan(0, 64));
  const auto exact_lut =
      mult::product_lut::exact(metrics::mult_spec{8, true});
  const double quant_acc =
      qnet.accuracy(test_x, test_set.labels, exact_lut);
  std::printf("quantized accuracy:  %.2f%% (exact 8-bit multipliers)\n",
              100.0 * quant_acc);

  // 3. WMED weights from the trained network's weight histogram, floored
  //    with 10 % uniform mass so rare-but-critical operands (output-layer
  //    weights) keep some protection — the recommended recipe (README).
  const auto weights = qnet.quantized_weights();
  const dist::pmf weight_dist =
      dist::pmf::from_int8_samples(weights).blend(dist::pmf::uniform(256),
                                                  0.1);
  std::printf("weight distribution: stddev %.1f (patterns), entropy %.2f "
              "bits over %zu weights\n",
              weight_dist.stddev(), weight_dist.entropy_bits(),
              weights.size());

  // 4. Evolve a tailored approximate multiplier at WMED <= 0.1%.
  core::approximation_config cfg;
  cfg.spec = metrics::mult_spec{8, true};
  cfg.iterations = 2500;
  cfg.distribution = weight_dist;
  const core::wmed_approximator approximator(cfg);
  const auto design =
      approximator.approximate(mult::signed_multiplier(8), 0.001);
  std::printf("evolved multiplier:  WMED %.3f%%, %zu gates (seed had %zu)\n",
              100.0 * design.wmed, design.netlist.active_gate_count(),
              mult::signed_multiplier(8).num_gates());

  // 5. Accuracy with the approximate multiplier, before/after fine-tuning.
  const mult::product_lut approx_lut(design.netlist, cfg.spec);
  const double before =
      qnet.accuracy(test_x, test_set.labels, approx_lut);
  nn::finetune_config ft;
  ft.epochs = 3;
  ft.learning_rate = 0.002f;  // gentle: the forward path saturates
  nn::finetune(qnet, train_x, train_set.labels, approx_lut, ft);
  const double after = qnet.accuracy(test_x, test_set.labels, approx_lut);

  std::printf("approx accuracy:     %.2f%% before / %.2f%% after "
              "fine-tuning (delta vs quantized: %+.2f%% / %+.2f%%)\n",
              100.0 * before, 100.0 * after, 100.0 * (before - quant_acc),
              100.0 * (after - quant_acc));

  // 6. MAC-unit electrical summary.
  const auto exact_mac = core::characterize_mac(
      mult::signed_multiplier(8), cfg.spec, weight_dist, 26,
      tech::cell_library::nangate45_like());
  const auto approx_mac = core::characterize_mac(
      design.netlist, cfg.spec, weight_dist, 26,
      tech::cell_library::nangate45_like());
  std::printf("MAC PDP: %.1f -> %.1f fJ (%.0f%%), power %.1f -> %.1f uW\n",
              exact_mac.pdp_fj, approx_mac.pdp_fj,
              100.0 * (approx_mac.pdp_fj / exact_mac.pdp_fj - 1.0),
              exact_mac.power_uw, approx_mac.power_uw);
  return 0;
}
