// Case-study-2 workflow end to end on a small scale: train a digit
// classifier, quantize it to 8-bit (Ristretto-style), derive the WMED
// weights from the trained weight histogram, evolve approximate signed
// multipliers at two error budgets through the session API, checkpoint the
// session, and re-rank the restored front by what the application
// observes — classification accuracy (before and after approximate-aware
// fine-tuning) vs MAC power — via core::app_eval.
#include <cstdio>

#include "core/app_eval.h"
#include "data/digits.h"
#include "mult/multipliers.h"
#include "nn/models.h"
#include "nn/quantize.h"
#include "nn/trainer.h"

int main() {
  using namespace axc;

  // 1. Data + float training.
  const auto train_set = data::make_mnist_like(2000, 1);
  const auto test_set = data::make_mnist_like(500, 2);
  const auto train_x = data::to_tensors(train_set);
  const auto test_x = data::to_tensors(test_set);

  const auto build = [] { return nn::make_mlp(/*seed=*/7, 28 * 28, 100); };
  nn::network mlp = build();
  nn::train_config tcfg;
  tcfg.epochs = 4;
  tcfg.learning_rate = 0.08f;
  nn::train(mlp, train_x, train_set.labels, tcfg);
  std::printf("float accuracy:      %.2f%%\n",
              100.0 * nn::accuracy(mlp, test_x, test_set.labels));

  // 2. 8-bit quantization (for the weight histogram; the reference
  //    accuracy comes out of the re-ranking below).
  nn::quantized_network qnet(
      mlp, std::span<const nn::tensor>(train_x).subspan(0, 64));

  // 3. WMED weights from the trained network's weight histogram, floored
  //    with 10 % uniform mass so rare-but-critical operands (output-layer
  //    weights) keep some protection — the recommended recipe (README).
  const auto weights = qnet.quantized_weights();
  const dist::pmf weight_dist =
      dist::pmf::from_int8_samples(weights).blend(dist::pmf::uniform(256),
                                                  0.1);
  std::printf("weight distribution: stddev %.1f (patterns), entropy %.2f "
              "bits over %zu weights\n",
              weight_dist.stddev(), weight_dist.entropy_bits(),
              weights.size());

  // 4. Evolve tailored approximate multipliers at two WMED budgets and
  //    checkpoint the session (the artifact a deployment would ship).
  core::approximation_config cfg;
  cfg.spec = metrics::mult_spec{8, true};
  cfg.iterations = 2500;
  cfg.distribution = weight_dist;
  core::sweep_plan plan;
  plan.targets = {0.001, 0.01};
  const circuit::netlist seed = mult::signed_multiplier(8);
  core::search_session session(core::make_component(cfg), seed, plan);
  session.run();
  if (!session.save_file("approximate_mlp_session.axs")) return 1;
  std::printf("evolved multipliers: %zu designs, checkpoint "
              "approximate_mlp_session.axs\n",
              session.designs().size());

  // 5. The deployment pipeline: restore the checkpoint, compile each front
  //    member once, and score accuracy / fine-tuned accuracy / MAC power.
  const std::vector<std::string> paths{"approximate_mlp_session.axs"};
  auto restored = core::checkpoint_candidates(
      std::span<const std::string>(paths), core::make_component(cfg),
      /*front_only=*/false, "tailored");
  if (!restored) return 1;
  std::vector<core::app_candidate> candidates;
  candidates.push_back(core::app_candidate{0, "exact", 0.0, 0.0, 0.0, seed});
  core::append_candidates(candidates, std::move(*restored));

  core::nn_accuracy_options acc;
  acc.build = build;
  acc.trained_weights = core::save_network_weights(mlp);
  acc.calibration = std::span<const nn::tensor>(train_x).subspan(0, 64);
  acc.test_x = test_x;
  acc.test_labels = test_set.labels;
  acc.name = "accuracy";
  core::nn_accuracy_options tuned = acc;
  nn::finetune_config ft;
  ft.epochs = 3;
  ft.learning_rate = 0.002f;  // gentle: the forward path saturates
  tuned.finetune = ft;
  tuned.train_x = train_x;
  tuned.train_labels = train_set.labels;
  tuned.name = "tuned";

  std::vector<std::unique_ptr<core::app_metric>> app_metrics;
  app_metrics.push_back(core::make_nn_accuracy_metric(std::move(acc)));
  app_metrics.push_back(core::make_nn_accuracy_metric(std::move(tuned)));
  core::power_metric_options power;
  power.distribution = weight_dist;
  power.mac_acc_width = 26;
  power.cache = core::make_power_cache();  // one characterization, 2 columns
  core::power_metric_options pdp = power;
  pdp.report = core::power_metric_options::quantity::pdp_fj;
  pdp.name = "pdp_fj";
  app_metrics.push_back(core::make_power_metric(std::move(power)));
  app_metrics.push_back(core::make_power_metric(std::move(pdp)));

  core::rerank_config rcfg;
  rcfg.spec = cfg.spec;
  rcfg.quality_metric = 0;  // accuracy ...
  rcfg.cost_metric = 2;     // ... vs MAC power
  const core::rerank_result result =
      core::rerank_front(std::move(candidates), app_metrics, rcfg);

  // 6. Report: every design, then the application-level front.
  const std::vector<double>& exact = result.designs[0].scores;
  std::printf("\n%-10s %10s %12s %12s %12s %12s\n", "design", "target%",
              "accuracy%", "tuned%", "MAC_uW", "MAC_PDP_fJ");
  for (const core::reranked_design& d : result.designs) {
    std::printf("%-10s %10.2f %12.2f %12.2f %12.1f %12.1f\n",
                d.candidate.family.c_str(), 100.0 * d.candidate.target,
                100.0 * d.scores[0], 100.0 * d.scores[1], d.scores[2],
                d.scores[3]);
  }
  std::printf("\naccuracy-vs-power front (deltas vs exact):\n");
  for (const core::pareto_point& p : result.front) {
    const core::reranked_design& d = result.at(p);
    std::printf("  %-10s @%.2f%%: accuracy %+.2f%% (tuned %+.2f%%), "
                "power %.0f%%, PDP %.0f%%\n",
                d.candidate.family.c_str(), 100.0 * d.candidate.target,
                100.0 * (d.scores[0] - exact[0]),
                100.0 * (d.scores[1] - exact[0]),
                100.0 * d.scores[2] / exact[2],
                100.0 * d.scores[3] / exact[3]);
  }
  return 0;
}
