// Quickstart: evolve an application-tailored approximate multiplier in
// ~20 lines of API use.
//
//   1. describe the operand distribution your application produces,
//   2. pick WMED targets,
//   3. hand a conventional multiplier to the approximator,
//   4. get back smaller circuits + LUTs + electrical estimates.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <fstream>

#include "circuit/export.h"
#include "core/design_flow.h"
#include "mult/multipliers.h"

int main() {
  using namespace axc;

  // An 8-bit unsigned multiplier whose first operand is usually small
  // (half-normal distribution) — e.g. a filter coefficient input.
  core::approximation_config config;
  config.spec = metrics::mult_spec{8, /*is_signed=*/false};
  config.iterations = 2000;  // raise for better results (paper: ~1 h/run)

  const dist::pmf operand_dist = dist::pmf::half_normal(256, 48.0);
  const std::vector<double> wmed_targets{0.0001, 0.001, 0.01};
  const circuit::netlist seed = mult::unsigned_multiplier(8);

  std::printf("Evolving approximate 8x8 multipliers (seed: %zu gates)...\n",
              seed.num_gates());
  const auto designs = core::design_for_distribution(
      operand_dist, config, wmed_targets, seed);

  std::printf("%-10s %10s %10s %10s %12s\n", "target%", "WMED%", "area_um2",
              "power_uW", "gates");
  for (const auto& d : designs) {
    std::printf("%-10.4f %10.4f %10.1f %10.2f %12zu\n",
                100.0 * d.design.target, 100.0 * d.design.wmed,
                d.multiplier_power.area_um2, d.multiplier_power.power_uw,
                d.design.netlist.active_gate_count());
  }

  // Use the LUT in software.  Operand A carries the distribution: the
  // evolved circuit is accurate where the application actually multiplies
  // (small A) and sloppy where it never looks (large A).
  const auto& mid = designs[1];
  std::printf("\nLUT check (design @%.2f%% WMED):\n",
              100.0 * mid.design.target);
  std::printf("  likely operand:  9 x 200 = %6d (exact 1800)\n",
              mid.lut.multiply(9, 200));
  std::printf("  rare operand:  200 x   9 = %6d (exact 1800)\n",
              mid.lut.multiply(200, 9));

  // ...and the netlist in hardware.
  std::ofstream verilog("quickstart_multiplier.v");
  circuit::write_verilog(verilog, designs.back().design.netlist,
                         "approx_mult_8x8");
  std::printf("Wrote quickstart_multiplier.v (structural Verilog).\n");
  return 0;
}
