// Quickstart: evolve application-tailored approximate multipliers through
// the session API.
//
//   1. describe the operand distribution your application produces,
//   2. pick WMED targets and wrap the config in a component handle,
//   3. run a search_session over the (targets x runs) plan — watching the
//      structured progress stream as jobs improve,
//   4. get back smaller circuits + LUTs + electrical estimates, and a
//      checkpoint file you could resume or ship to another machine.
//
// Build & run:  ./build/quickstart
#include <cstdio>
#include <fstream>
#include <vector>

#include "circuit/export.h"
#include "core/design_flow.h"
#include "core/search_session.h"
#include "mult/multipliers.h"

int main() {
  using namespace axc;

  // An 8-bit unsigned multiplier whose first operand is usually small
  // (half-normal distribution) — e.g. a filter coefficient input.
  core::approximation_config config;
  config.spec = metrics::mult_spec{8, /*is_signed=*/false};
  config.iterations = 2000;  // raise for better results (paper: ~1 h/run)
  config.distribution = dist::pmf::half_normal(256, 48.0);

  core::sweep_plan plan;
  plan.targets = {0.0001, 0.001, 0.01};
  const circuit::netlist seed = mult::unsigned_multiplier(8);

  std::printf("Evolving approximate 8x8 multipliers (seed: %zu gates)...\n",
              seed.num_gates());

  // The session runs one CGP job per (target, run) pair, shares the
  // evaluator's exact-result planes across all jobs, and reports progress
  // as a structured event stream.
  core::session_config options;
  options.on_progress = [](const core::progress_event& e) {
    switch (e.kind) {
      case core::progress_kind::job_started:
        std::printf("[job %zu] target %.4f%% started\n", e.job_id,
                    100.0 * e.target);
        break;
      case core::progress_kind::job_finished:
        std::printf("[job %zu] done: WMED %.5f%%  area %.1f um2  (%zu/%zu)\n",
                    e.job_id, 100.0 * e.wmed, e.area_um2, e.completed_jobs,
                    e.total_jobs);
        break;
      default:
        break;  // job_improved / job_generation ticks: too chatty here
    }
  };

  core::search_session session(core::make_component(config), seed, plan,
                               options);
  session.run();

  // Characterize each evolved design under the application's statistics.
  const auto& lib = *config.library;
  const auto designs = session.designs();
  std::printf("\n%-10s %10s %10s %10s %12s\n", "target%", "WMED%", "area_um2",
              "power_uW", "gates");
  for (const auto& d : designs) {
    const auto power = core::characterize_multiplier(
        d.netlist, config.spec, config.distribution, lib);
    std::printf("%-10.4f %10.4f %10.1f %10.2f %12zu\n", 100.0 * d.target,
                100.0 * d.wmed, power.area_um2, power.power_uw,
                d.netlist.active_gate_count());
  }

  // Use a compiled table in software.  Operand A carries the distribution:
  // the evolved circuit is accurate where the application actually
  // multiplies (small A) and sloppy where it never looks (large A).
  const auto& mid_design = designs[1];
  const metrics::compiled_mult_table mid_lut(mid_design.netlist, config.spec);
  std::printf("\nLUT check (design @%.2f%% WMED):\n",
              100.0 * mid_design.target);
  std::printf("  likely operand:  9 x 200 = %6d (exact 1800)\n",
              mid_lut.multiply(9, 200));
  std::printf("  rare operand:  200 x   9 = %6d (exact 1800)\n",
              mid_lut.multiply(200, 9));

  // ...the netlist in hardware...
  std::ofstream verilog("quickstart_multiplier.v");
  circuit::write_verilog(verilog, designs.back().netlist, "approx_mult_8x8");
  std::printf("Wrote quickstart_multiplier.v (structural Verilog).\n");

  // ...and the whole session as a checkpoint: resume it later, merge it
  // into a bigger study, or continue the sweep on another machine
  // (see examples/design_space_explorer.cpp for the resume half).
  if (session.save_file("quickstart_session.axs")) {
    std::printf("Wrote quickstart_session.axs (session checkpoint).\n");
  }
  return 0;
}
