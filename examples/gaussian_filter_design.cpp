// Case-study-1 workflow on a concrete application: a 3x3 Gaussian denoising
// filter.  The filter's multiplier sees coefficients {1, 2, 4} on one
// operand — a sharply non-uniform distribution.  We (a) profile that
// distribution, (b) evolve multipliers tailored to it, (c) drop them into
// the filter, and (d) compare image quality and power against a uniform-
// optimized multiplier of similar cost.
#include <cstdio>
#include <fstream>

#include "core/design_flow.h"
#include "imgproc/gaussian_filter.h"
#include "mult/multipliers.h"

int main() {
  using namespace axc;

  // (a) Profile the coefficient stream of the application.
  const imgproc::gaussian_kernel3 kernel;
  std::vector<double> coefficient_mass(256, 0.0);
  for (const std::uint8_t c : kernel.coefficients) {
    coefficient_mass[c] += 1.0;
  }
  const dist::pmf coeff_dist = dist::pmf::from_weights(coefficient_mass);
  std::printf("Coefficient distribution: P(1)=%.2f P(2)=%.2f P(4)=%.2f\n",
              coeff_dist[1], coeff_dist[2], coeff_dist[4]);

  // (b) Evolve tailored multipliers at a few error budgets.
  core::approximation_config config;
  config.spec = metrics::mult_spec{8, false};
  config.iterations = 2500;
  const std::vector<double> targets{0.0001, 0.001, 0.01};
  const circuit::netlist seed = mult::unsigned_multiplier(8);
  const auto tailored =
      core::design_for_distribution(coeff_dist, config, targets, seed);

  // A uniform-optimized competitor at the same budgets.
  config.rng_seed = 2;
  const auto generic = core::design_for_distribution(
      dist::pmf::uniform(256), config, targets, seed);

  // (c) + (d) Apply in the filter and compare.
  std::printf("\n%-22s %10s %12s %12s\n", "multiplier", "power_uW",
              "mean_PSNR", "min_PSNR");
  const auto report = [&](const char* name,
                          const core::tailored_multiplier& m) {
    const auto quality = imgproc::evaluate_filter_quality(m.lut, 25, 64);
    std::printf("%-22s %10.2f %12.2f %12.2f\n", name,
                m.multiplier_power.power_uw, quality.mean_psnr_db,
                quality.min_psnr_db);
  };
  report("tailored  @0.01%", tailored[0]);
  report("tailored  @0.1%", tailored[1]);
  report("tailored  @1.0%", tailored[2]);
  report("uniform   @0.01%", generic[0]);
  report("uniform   @0.1%", generic[1]);
  report("uniform   @1.0%", generic[2]);

  // Bonus: write one denoised image for visual inspection.
  const imgproc::image clean = imgproc::make_test_scene(96, 96, 42);
  rng noise_gen(7);
  const imgproc::image noisy =
      imgproc::add_gaussian_noise(clean, 12.0, noise_gen);
  const imgproc::image denoised =
      imgproc::gaussian_filter_approx(noisy, tailored[1].lut);  // @0.1%
  std::ofstream pgm("gaussian_filter_output.pgm", std::ios::binary);
  imgproc::write_pgm(pgm, denoised);
  std::printf("\nWrote gaussian_filter_output.pgm.\n");
  return 0;
}
