// Case-study-1 workflow on a concrete application: a 3x3 Gaussian denoising
// filter.  The filter's multiplier sees coefficients {1, 2, 4} on one
// operand — a sharply non-uniform distribution.  We (a) profile that
// distribution, (b) evolve multipliers tailored to it (and a uniform-
// optimized competitor) through the session API, and (c) re-rank every
// design by what the application observes — filter PSNR vs multiplier
// power — via core::app_eval, before (d) dropping one compiled table into
// the filter for a visual check.
#include <cstdio>
#include <fstream>

#include "core/app_eval.h"
#include "imgproc/gaussian_filter.h"
#include "mult/multipliers.h"

int main() {
  using namespace axc;

  // (a) Profile the coefficient stream of the application.
  const imgproc::gaussian_kernel3 kernel;
  std::vector<double> coefficient_mass(256, 0.0);
  for (const std::uint8_t c : kernel.coefficients) {
    coefficient_mass[c] += 1.0;
  }
  const dist::pmf coeff_dist = dist::pmf::from_weights(coefficient_mass);
  std::printf("Coefficient distribution: P(1)=%.2f P(2)=%.2f P(4)=%.2f\n",
              coeff_dist[1], coeff_dist[2], coeff_dist[4]);

  // (b) Evolve tailored and uniform-optimized multipliers at a few error
  //     budgets — one search session per family.
  const std::vector<double> targets{0.0001, 0.001, 0.01};
  const circuit::netlist seed = mult::unsigned_multiplier(8);
  std::vector<core::app_candidate> candidates;
  const auto evolve = [&](const char* family, const dist::pmf& d,
                          std::uint64_t rng_seed) {
    core::approximation_config config;
    config.spec = metrics::mult_spec{8, false};
    config.iterations = 2500;
    config.distribution = d;
    config.rng_seed = rng_seed;
    core::sweep_plan plan;
    plan.targets = targets;
    core::search_session session(core::make_component(config), seed, plan);
    session.run();
    core::append_candidates(
        candidates,
        core::session_candidates(session, /*front_only=*/false, family));
  };
  evolve("tailored", coeff_dist, 1);
  evolve("uniform", dist::pmf::uniform(256), 2);

  // (c) Re-rank by application-level quality and cost: mean PSNR over 25
  //     noisy scenes vs power under the coefficient statistics.
  std::vector<std::unique_ptr<core::app_metric>> app_metrics;
  core::gaussian_psnr_options psnr;
  psnr.cache = core::make_psnr_cache();  // one filter sweep, mean+min columns
  app_metrics.push_back(core::make_gaussian_psnr_metric(psnr));
  core::power_metric_options power;
  power.distribution = coeff_dist;
  app_metrics.push_back(core::make_power_metric(std::move(power)));
  core::gaussian_psnr_options worst = psnr;
  worst.report_min = true;
  worst.name = "min_psnr_db";
  app_metrics.push_back(core::make_gaussian_psnr_metric(worst));

  core::rerank_config rcfg;
  rcfg.spec = metrics::mult_spec{8, false};
  const core::rerank_result result =
      core::rerank_front(std::move(candidates), app_metrics, rcfg);

  std::printf("\n%-22s %10s %12s %12s\n", "multiplier", "power_uW",
              "mean_PSNR", "min_PSNR");
  for (const core::reranked_design& d : result.designs) {
    std::printf("%-10s @%-8.2g %10.2f %12.2f %12.2f\n",
                d.candidate.family.c_str(), 100.0 * d.candidate.target,
                d.scores[1], d.scores[0], d.scores[2]);
  }
  std::printf("\nPSNR-vs-power front:\n");
  for (const core::pareto_point& p : result.front) {
    const core::reranked_design& d = result.at(p);
    std::printf("  %-10s @%.2g%%: %6.2f dB at %6.2f uW\n",
                d.candidate.family.c_str(), 100.0 * d.candidate.target,
                d.scores[0], d.scores[1]);
  }

  // (d) Write one denoised image for visual inspection, through the
  //     compiled table of the tailored @0.1% design.
  const core::reranked_design& pick = result.designs[1];  // tailored @0.1%
  const metrics::compiled_mult_table table(pick.candidate.netlist,
                                           rcfg.spec);
  const imgproc::image clean = imgproc::make_test_scene(96, 96, 42);
  rng noise_gen(7);
  const imgproc::image noisy =
      imgproc::add_gaussian_noise(clean, 12.0, noise_gen);
  const imgproc::image denoised =
      imgproc::gaussian_filter_approx(noisy, table);
  std::ofstream pgm("gaussian_filter_output.pgm", std::ios::binary);
  imgproc::write_pgm(pgm, denoised);
  std::printf("\nWrote gaussian_filter_output.pgm.\n");
  return 0;
}
