// Design-space exploration, twice over:
//
//   Part 1 — enumerate the library's building blocks (truncated,
//   broken-array and zero-exact multipliers), characterize error and
//   hardware cost, and print the Pareto-optimal set: a fast baseline study
//   with no evolution at all.
//
//   Part 2 — run the paper's evolutionary exploration through the session
//   API: a sweep_plan over several WMED targets, job-parallel CGP runs
//   sharing one evaluator cache, a live Pareto archive — and the
//   checkpoint/resume flow: the sweep is cancelled midway, saved to disk,
//   resumed from the file, and finishes with a front identical to an
//   uninterrupted run's.
#include <cstdio>
#include <string>
#include <vector>

#include "core/design_flow.h"
#include "core/pareto.h"
#include "core/search_session.h"
#include "metrics/error_metrics.h"
#include "mult/multipliers.h"

namespace {

void enumerate_building_blocks(const axc::dist::pmf& d) {
  using namespace axc;
  const metrics::mult_spec spec{8, false};
  const auto exact = metrics::exact_product_table(spec);
  const auto& lib = tech::cell_library::nangate45_like();

  struct row {
    std::string name;
    double wmed, wce, mre, er, area, power, pdp;
  };
  std::vector<row> rows;

  const auto add = [&](const std::string& name,
                       const circuit::netlist& nl) {
    const auto table = metrics::product_table(nl, spec);
    const auto hw = core::characterize_multiplier(nl, spec, d, lib, 2048);
    rows.push_back({name, metrics::wmed(exact, table, spec, d),
                    metrics::worst_case_error(exact, table, spec),
                    metrics::mean_relative_error(exact, table),
                    metrics::error_rate(exact, table), hw.area_um2,
                    hw.power_uw, hw.pdp_fj});
  };

  add("exact", mult::unsigned_multiplier(8));
  add("exact-wallace", mult::unsigned_multiplier(8, mult::schedule::wallace));
  for (const unsigned k : {2u, 4u, 6u, 8u, 10u}) {
    add("trunc-" + std::to_string(k), mult::truncated_multiplier(8, k));
  }
  for (const auto [h, v] : {std::pair{1u, 4u}, std::pair{2u, 6u},
                            std::pair{2u, 10u}, std::pair{3u, 8u}}) {
    add("bam-h" + std::to_string(h) + "v" + std::to_string(v),
        mult::broken_array_multiplier(8, h, v));
  }
  for (const unsigned k : {6u, 8u}) {
    add("zx-trunc-" + std::to_string(k),
        mult::zero_exact_wrapper(mult::truncated_multiplier(8, k), 8));
  }

  std::printf("%-14s %9s %8s %8s %7s %9s %9s %9s\n", "design", "WMED%",
              "WCE%", "MRE%", "ER%", "area", "power_uW", "PDP_fJ");
  for (const row& r : rows) {
    std::printf("%-14s %9.4f %8.3f %8.2f %7.1f %9.1f %9.2f %9.1f\n",
                r.name.c_str(), 100 * r.wmed, 100 * r.wce, 100 * r.mre,
                100 * r.er, r.area, r.power, r.pdp);
  }

  std::vector<core::pareto_point> points;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    points.push_back({rows[i].wmed, rows[i].pdp, i});
  }
  std::printf("\nPareto-optimal building blocks (WMED vs PDP):\n");
  for (const auto& p : core::pareto_front(points)) {
    std::printf("  %s\n", rows[p.index].name.c_str());
  }
}

void evolve_with_session(const axc::dist::pmf& d) {
  using namespace axc;
  constexpr const char* kCheckpoint = "explorer_session.axs";

  core::approximation_config config;
  config.spec = metrics::mult_spec{8, false};
  config.distribution = d;
  config.iterations = 1200;  // demo budget; the paper runs ~1 h per job
  const core::component_handle component = core::make_component(config);
  const circuit::netlist seed = mult::unsigned_multiplier(8);

  core::sweep_plan plan;
  plan.targets = {0.0005, 0.002, 0.01, 0.05};

  // Phase 1: start the sweep, then cancel it from the progress stream
  // after two jobs — as a deadline, a crash or a preempted worker would.
  core::session_config options;
  core::search_session* running = nullptr;
  options.on_progress = [&](const core::progress_event& e) {
    if (e.kind == core::progress_kind::job_finished) {
      std::printf("  [job %zu] target %.3f%% -> WMED %.4f%% area %.1f\n",
                  e.job_id, 100.0 * e.target, 100.0 * e.wmed, e.area_um2);
      // >= not ==: with job_threads > 1 the completion counter can skip
      // values between an increment and its event emission.
      if (e.completed_jobs >= 2) running->request_stop();
    }
  };
  core::search_session session(component, seed, plan, options);
  running = &session;
  std::printf("\nEvolutionary sweep, phase 1 (cancelled after 2 jobs):\n");
  session.run();
  if (!session.save_file(kCheckpoint)) {
    std::fprintf(stderr, "checkpoint save failed\n");
    std::exit(1);
  }
  std::printf("  checkpointed %zu/%zu jobs to %s\n", session.completed_jobs(),
              session.total_jobs(), kCheckpoint);

  // Phase 2: resume from disk — completed designs are restored verbatim,
  // only the remaining jobs run.  The final archive is identical to an
  // uninterrupted sweep's (the session parity tests assert this bit for
  // bit).
  core::session_config resume_options;
  resume_options.on_progress = [](const core::progress_event& e) {
    if (e.kind == core::progress_kind::job_finished) {
      std::printf("  [job %zu] target %.3f%% -> WMED %.4f%% area %.1f\n",
                  e.job_id, 100.0 * e.target, 100.0 * e.wmed, e.area_um2);
    }
  };
  auto resumed = core::search_session::resume_file(kCheckpoint, component,
                                                   resume_options);
  if (!resumed) {
    std::printf("  resume failed (checkpoint/component mismatch)\n");
    return;
  }
  std::printf("Evolutionary sweep, phase 2 (resumed %zu/%zu done):\n",
              resumed->completed_jobs(), resumed->total_jobs());
  resumed->run();

  std::printf("\nEvolved Pareto front (WMED vs area):\n");
  for (const auto& p : resumed->front()) {
    // front() indices are job ids; design() is the id-safe lookup (it
    // matters on partially completed sessions, where designs() is dense).
    const auto design = resumed->design(p.index);
    if (!design) continue;
    std::printf("  target %.3f%%: WMED %.4f%%  area %.1f um2  (%zu gates)\n",
                100.0 * design->target, 100.0 * p.x, p.y,
                design->netlist.active_gate_count());
  }
}

}  // namespace

int main() {
  const axc::dist::pmf d = axc::dist::pmf::half_normal(256, 64.0);
  enumerate_building_blocks(d);
  evolve_with_session(d);
  return 0;
}
