// Design-space exploration with the library's building blocks alone (no
// evolution): enumerate truncated, broken-array and zero-exact multiplier
// configurations, characterize error (four metrics) and hardware cost, and
// print the Pareto-optimal set.  Useful as a fast baseline study and as a
// template for plugging in custom generators via filtered_multiplier().
#include <cstdio>
#include <string>
#include <vector>

#include "core/design_flow.h"
#include "core/pareto.h"
#include "metrics/error_metrics.h"
#include "mult/multipliers.h"

int main() {
  using namespace axc;
  const metrics::mult_spec spec{8, false};
  const auto exact = metrics::exact_product_table(spec);
  const dist::pmf d = dist::pmf::half_normal(256, 64.0);
  const auto& lib = tech::cell_library::nangate45_like();

  struct row {
    std::string name;
    double wmed, wce, mre, er, area, power, pdp;
  };
  std::vector<row> rows;

  const auto add = [&](const std::string& name,
                       const circuit::netlist& nl) {
    const auto table = metrics::product_table(nl, spec);
    const auto hw = core::characterize_multiplier(nl, spec, d, lib, 2048);
    rows.push_back({name, metrics::wmed(exact, table, spec, d),
                    metrics::worst_case_error(exact, table, spec),
                    metrics::mean_relative_error(exact, table),
                    metrics::error_rate(exact, table), hw.area_um2,
                    hw.power_uw, hw.pdp_fj});
  };

  add("exact", mult::unsigned_multiplier(8));
  add("exact-wallace", mult::unsigned_multiplier(8, mult::schedule::wallace));
  for (const unsigned k : {2u, 4u, 6u, 8u, 10u}) {
    add("trunc-" + std::to_string(k), mult::truncated_multiplier(8, k));
  }
  for (const auto [h, v] : {std::pair{1u, 4u}, std::pair{2u, 6u},
                            std::pair{2u, 10u}, std::pair{3u, 8u}}) {
    add("bam-h" + std::to_string(h) + "v" + std::to_string(v),
        mult::broken_array_multiplier(8, h, v));
  }
  for (const unsigned k : {6u, 8u}) {
    add("zx-trunc-" + std::to_string(k),
        mult::zero_exact_wrapper(mult::truncated_multiplier(8, k), 8));
  }

  std::printf("%-14s %9s %8s %8s %7s %9s %9s %9s\n", "design", "WMED%",
              "WCE%", "MRE%", "ER%", "area", "power_uW", "PDP_fJ");
  for (const row& r : rows) {
    std::printf("%-14s %9.4f %8.3f %8.2f %7.1f %9.1f %9.2f %9.1f\n",
                r.name.c_str(), 100 * r.wmed, 100 * r.wce, 100 * r.mre,
                100 * r.er, r.area, r.power, r.pdp);
  }

  std::vector<core::pareto_point> points;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    points.push_back({rows[i].wmed, rows[i].pdp, i});
  }
  std::printf("\nPareto-optimal (WMED vs PDP):\n");
  for (const auto& p : core::pareto_front(points)) {
    std::printf("  %s\n", rows[p.index].name.c_str());
  }
  return 0;
}
