#include <gtest/gtest.h>

#include <cstdlib>

#include "support/fault.h"

namespace axc::fault {
namespace {

/// Every test leaves the process-global registry disarmed.
class fault_inject : public ::testing::Test {
 protected:
  void TearDown() override { clear(); }
};

TEST_F(fault_inject, disarmed_by_default) {
  clear();
  EXPECT_FALSE(active());
  EXPECT_FALSE(fire("any-point").has_value());
  EXPECT_EQ(hits("any-point"), 0u);
}

TEST_F(fault_inject, bare_point_fires_every_hit_with_payload_one) {
  configure("save-fail");
  EXPECT_TRUE(active());
  for (int i = 0; i < 3; ++i) {
    const auto payload = fire("save-fail");
    ASSERT_TRUE(payload.has_value());
    EXPECT_EQ(*payload, 1u);
  }
  EXPECT_FALSE(fire("other-point").has_value());
}

TEST_F(fault_inject, exact_hit_selector) {
  configure("crash@3");
  EXPECT_FALSE(fire("crash").has_value());  // hit 1
  EXPECT_FALSE(fire("crash").has_value());  // hit 2
  EXPECT_TRUE(fire("crash").has_value());   // hit 3
  EXPECT_FALSE(fire("crash").has_value());  // hit 4
  EXPECT_EQ(hits("crash"), 4u);
}

TEST_F(fault_inject, at_most_selector_models_transient_failures) {
  configure("flaky@<=2");
  EXPECT_TRUE(fire("flaky").has_value());
  EXPECT_TRUE(fire("flaky").has_value());
  EXPECT_FALSE(fire("flaky").has_value());  // transient fault healed
}

TEST_F(fault_inject, payloads_reach_the_injection_point) {
  configure("truncate@2=317");
  EXPECT_FALSE(fire("truncate").has_value());
  const auto payload = fire("truncate");
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, 317u);
}

TEST_F(fault_inject, multiple_directives_and_separators) {
  configure("a@1;b=9,c@<=1=4");
  EXPECT_TRUE(fire("a").has_value());
  EXPECT_FALSE(fire("a").has_value());
  EXPECT_EQ(fire("b").value_or(0), 9u);
  EXPECT_EQ(fire("c").value_or(0), 4u);
  EXPECT_FALSE(fire("c").has_value());
}

TEST_F(fault_inject, malformed_directives_are_skipped) {
  configure("@3;=5;good@x;ok@2=zz;real@1");
  // Only "real@1" parsed; everything else is ignored, not fatal.
  EXPECT_FALSE(fire("good").has_value());
  EXPECT_FALSE(fire("ok").has_value());
  EXPECT_TRUE(fire("real").has_value());
}

TEST_F(fault_inject, peek_does_not_consume_hits) {
  configure("crash@1=7");
  EXPECT_EQ(peek("crash").value_or(0), 7u);
  EXPECT_EQ(hits("crash"), 0u);
  EXPECT_TRUE(fire("crash").has_value());
}

TEST_F(fault_inject, configure_resets_counters) {
  configure("p@2");
  (void)fire("p");
  configure("p@2");
  EXPECT_EQ(hits("p"), 0u);
  (void)fire("p");
  EXPECT_TRUE(fire("p").has_value());  // hit 2 of the fresh plan
}

TEST_F(fault_inject, clear_disarms) {
  configure("p");
  EXPECT_TRUE(active());
  clear();
  EXPECT_FALSE(active());
  EXPECT_FALSE(fire("p").has_value());
}

TEST_F(fault_inject, configure_from_env_arms_the_variable_plan) {
  ::setenv("AXC_FAULT", "env-point@1=5", 1);
  configure_from_env();
  ::unsetenv("AXC_FAULT");
  EXPECT_EQ(fire("env-point").value_or(0), 5u);
}

}  // namespace
}  // namespace axc::fault
