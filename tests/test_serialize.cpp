#include <gtest/gtest.h>

#include <sstream>

#include "circuit/serialize.h"
#include "mult/multipliers.h"
#include "support/rng.h"
#include "test_util.h"

namespace axc::circuit {
namespace {

TEST(serialize, round_trips_structure_exactly) {
  rng gen(1);
  for (int trial = 0; trial < 20; ++trial) {
    const netlist original = test::random_netlist(5, 3, 25, gen);
    const auto restored = from_text(to_text(original));
    ASSERT_TRUE(restored.has_value()) << "trial " << trial;
    EXPECT_EQ(*restored, original);
  }
}

TEST(serialize, round_trips_multiplier) {
  const netlist m = mult::signed_multiplier(8);
  const auto restored = from_text(to_text(m));
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, m);
}

TEST(serialize, gate_names_round_trip) {
  for (const gate_fn fn : full_function_set()) {
    const auto parsed = gate_fn_from_name(gate_name(fn));
    ASSERT_TRUE(parsed.has_value()) << gate_name(fn);
    EXPECT_EQ(*parsed, fn);
  }
  EXPECT_FALSE(gate_fn_from_name("bogus").has_value());
}

TEST(serialize, rejects_bad_magic) {
  EXPECT_FALSE(from_text("not-a-netlist\ninputs 2\n").has_value());
}

TEST(serialize, rejects_truncated_stream) {
  const netlist m = mult::unsigned_multiplier(2);
  std::string text = to_text(m);
  text.resize(text.size() / 2);
  // Either parses nothing or fails; never crashes.  The "out" line is gone,
  // so parsing must fail.
  EXPECT_FALSE(from_text(text).has_value());
}

TEST(serialize, rejects_forward_references) {
  EXPECT_FALSE(from_text("axcirc-netlist v1\n"
                         "inputs 2\n"
                         "outputs 1\n"
                         "gate and 0 5\n"
                         "out 2\n")
                   .has_value());
}

TEST(serialize, rejects_unknown_gate) {
  EXPECT_FALSE(from_text("axcirc-netlist v1\n"
                         "inputs 2\n"
                         "outputs 1\n"
                         "gate frobnicate 0 1\n"
                         "out 2\n")
                   .has_value());
}

TEST(serialize, rejects_out_of_range_output) {
  EXPECT_FALSE(from_text("axcirc-netlist v1\n"
                         "inputs 2\n"
                         "outputs 1\n"
                         "out 9\n")
                   .has_value());
}

TEST(serialize, minimal_wire_netlist) {
  const auto restored = from_text("axcirc-netlist v1\n"
                                  "inputs 2\n"
                                  "outputs 1\n"
                                  "out 1\n");
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->num_gates(), 0u);
  EXPECT_EQ(restored->output(0), 1u);
}

TEST(serialize, preserves_function_through_text) {
  const netlist m = mult::broken_array_multiplier(4, 1, 3);
  const auto restored = from_text(to_text(m));
  ASSERT_TRUE(restored.has_value());
  for (std::uint64_t v = 0; v < 256; ++v) {
    EXPECT_EQ(test::naive_eval(*restored, v), test::naive_eval(m, v));
  }
}

}  // namespace
}  // namespace axc::circuit
