#include <gtest/gtest.h>

#include <sstream>

#include "circuit/serialize.h"
#include "mult/multipliers.h"
#include "support/rng.h"
#include "test_util.h"

namespace axc::circuit {
namespace {

TEST(serialize, round_trips_structure_exactly) {
  rng gen(1);
  for (int trial = 0; trial < 20; ++trial) {
    const netlist original = test::random_netlist(5, 3, 25, gen);
    const auto restored = from_text(to_text(original));
    ASSERT_TRUE(restored.has_value()) << "trial " << trial;
    EXPECT_EQ(*restored, original);
  }
}

TEST(serialize, round_trips_multiplier) {
  const netlist m = mult::signed_multiplier(8);
  const auto restored = from_text(to_text(m));
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, m);
}

TEST(serialize, gate_names_round_trip) {
  for (const gate_fn fn : full_function_set()) {
    const auto parsed = gate_fn_from_name(gate_name(fn));
    ASSERT_TRUE(parsed.has_value()) << gate_name(fn);
    EXPECT_EQ(*parsed, fn);
  }
  EXPECT_FALSE(gate_fn_from_name("bogus").has_value());
}

TEST(serialize, rejects_bad_magic) {
  EXPECT_FALSE(from_text("not-a-netlist\ninputs 2\n").has_value());
}

TEST(serialize, rejects_truncated_stream) {
  const netlist m = mult::unsigned_multiplier(2);
  std::string text = to_text(m);
  text.resize(text.size() / 2);
  // Either parses nothing or fails; never crashes.  The "out" line is gone,
  // so parsing must fail.
  EXPECT_FALSE(from_text(text).has_value());
}

TEST(serialize, rejects_forward_references) {
  EXPECT_FALSE(from_text("axcirc-netlist v1\n"
                         "inputs 2\n"
                         "outputs 1\n"
                         "gate and 0 5\n"
                         "out 2\n")
                   .has_value());
}

TEST(serialize, rejects_unknown_gate) {
  EXPECT_FALSE(from_text("axcirc-netlist v1\n"
                         "inputs 2\n"
                         "outputs 1\n"
                         "gate frobnicate 0 1\n"
                         "out 2\n")
                   .has_value());
}

TEST(serialize, rejects_out_of_range_output) {
  EXPECT_FALSE(from_text("axcirc-netlist v1\n"
                         "inputs 2\n"
                         "outputs 1\n"
                         "out 9\n")
                   .has_value());
}

TEST(serialize, minimal_wire_netlist) {
  const auto restored = from_text("axcirc-netlist v1\n"
                                  "inputs 2\n"
                                  "outputs 1\n"
                                  "out 1\n");
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->num_gates(), 0u);
  EXPECT_EQ(restored->output(0), 1u);
}

TEST(serialize, rejects_malformed_inputs_cleanly) {
  // Table of hostile inputs: every one must return nullopt, never crash or
  // accept garbage.  (Robustness floor for checkpoint salvage, which feeds
  // arbitrary corrupted bytes through this parser.)
  const char* cases[] = {
      "",
      "\n",
      "axcirc-netlist v2\ninputs 2\noutputs 1\nout 0\n",
      "axcirc-netlist v1\ninputs\noutputs 1\nout 0\n",
      "axcirc-netlist v1\ninputs -2\noutputs 1\nout 0\n",
      "axcirc-netlist v1\ninputs 2\noutputs\nout 0\n",
      "axcirc-netlist v1\ninputs 2\noutputs 0\nout\n",
      "axcirc-netlist v1\ninputs 2\noutputs 1\ngate and 0\nout 0\n",
      "axcirc-netlist v1\ninputs 2\noutputs 1\ngate and 0 1 9\nout 2\n",
      "axcirc-netlist v1\ninputs 2\noutputs 1\nout 0 1\n",
      "axcirc-netlist v1\ninputs 2\noutputs 2\nout 0\n",
      "axcirc-netlist v1\ninputs 2\noutputs 1\nout banana\n",
      "axcirc-netlist v1\ninputs 2\noutputs 1\ngarbage\nout 0\n",
  };
  for (const char* text : cases) {
    EXPECT_FALSE(from_text(text).has_value()) << "accepted: " << text;
  }
}

TEST(serialize, every_prefix_truncation_fails_or_roundtrips) {
  // Cutting the text at EVERY byte offset must either fail cleanly or (at
  // the full length) parse back the original — a truncated checkpoint
  // record can end a netlist at any byte.
  const netlist m = mult::unsigned_multiplier(3);
  const std::string text = to_text(m);
  // Stop before the final newline: without it the last "out" line still
  // parses (getline does not require a trailing '\n'), which IS the
  // original netlist.
  for (std::size_t cut = 0; cut + 1 < text.size(); ++cut) {
    const auto parsed = from_text(text.substr(0, cut));
    // A prefix can only be valid if a shorter "out" line parses; the
    // multiplier's trailing output addresses make every strict prefix
    // either unparsable or a *different* netlist — never the original.
    if (parsed) EXPECT_NE(*parsed, m) << "cut " << cut;
  }
  const auto full = from_text(text);
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(*full, m);
}

TEST(serialize, single_bit_flips_never_crash) {
  // Flip one bit at a time through the whole serialization; the parser
  // must always terminate with either a clean failure or some valid parse.
  const netlist m = mult::unsigned_multiplier(2);
  const std::string text = to_text(m);
  for (std::size_t byte = 0; byte < text.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = text;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      (void)from_text(mutated);  // must not crash/hang; result is free
    }
  }
  SUCCEED();
}

TEST(serialize, preserves_function_through_text) {
  const netlist m = mult::broken_array_multiplier(4, 1, 3);
  const auto restored = from_text(to_text(m));
  ASSERT_TRUE(restored.has_value());
  for (std::uint64_t v = 0; v < 256; ++v) {
    EXPECT_EQ(test::naive_eval(*restored, v), test::naive_eval(m, v));
  }
}

}  // namespace
}  // namespace axc::circuit
