#include <gtest/gtest.h>

#include "circuit/netlist.h"
#include "circuit/simulator.h"
#include "support/rng.h"
#include "test_util.h"

namespace axc::circuit {
namespace {

netlist make_full_adder() {
  // Inputs: a=0, b=1, cin=2.  Outputs: sum, cout.
  netlist nl(3, 2);
  const auto axb = nl.add_gate(gate_fn::xor2, 0, 1);
  const auto sum = nl.add_gate(gate_fn::xor2, axb, 2);
  const auto ab = nl.add_gate(gate_fn::and2, 0, 1);
  const auto cx = nl.add_gate(gate_fn::and2, axb, 2);
  const auto cout = nl.add_gate(gate_fn::or2, ab, cx);
  nl.set_output(0, sum);
  nl.set_output(1, cout);
  return nl;
}

TEST(netlist, addressing_convention) {
  netlist nl(3, 1);
  EXPECT_EQ(nl.num_inputs(), 3u);
  EXPECT_EQ(nl.num_signals(), 3u);
  const auto g0 = nl.add_gate(gate_fn::and2, 0, 1);
  EXPECT_EQ(g0, 3u);
  EXPECT_EQ(nl.num_signals(), 4u);
  EXPECT_TRUE(nl.is_input_address(2));
  EXPECT_FALSE(nl.is_input_address(3));
  EXPECT_EQ(nl.gate_index(3), 0u);
}

TEST(netlist, full_adder_is_correct) {
  const netlist nl = make_full_adder();
  for (std::uint64_t v = 0; v < 8; ++v) {
    const unsigned a = v & 1, b = (v >> 1) & 1, c = (v >> 2) & 1;
    const std::uint64_t out = test::naive_eval(nl, v);
    EXPECT_EQ(out & 1, (a + b + c) & 1u);
    EXPECT_EQ((out >> 1) & 1, (a + b + c) >> 1);
  }
}

TEST(netlist, validate_accepts_well_formed) {
  EXPECT_TRUE(make_full_adder().validate().empty());
}

TEST(netlist, active_mask_ignores_dangling_gates) {
  netlist nl(2, 1);
  const auto used = nl.add_gate(gate_fn::and2, 0, 1);
  nl.add_gate(gate_fn::or2, 0, 1);  // dangling
  nl.set_output(0, used);
  const auto mask = nl.active_mask();
  EXPECT_TRUE(mask[0]);
  EXPECT_FALSE(mask[1]);
  EXPECT_EQ(nl.active_gate_count(), 1u);
}

TEST(netlist, active_mask_skips_ignored_operands) {
  netlist nl(2, 1);
  const auto expensive = nl.add_gate(gate_fn::xor2, 0, 1);
  // not_a ignores operand b; the xor feeding b must not count as active.
  const auto inv = nl.add_gate(gate_fn::not_a, 0, expensive);
  nl.set_output(0, inv);
  const auto mask = nl.active_mask();
  EXPECT_FALSE(mask[0]);
  EXPECT_TRUE(mask[1]);
}

TEST(netlist, active_gate_count_excludes_buffers) {
  netlist nl(2, 1);
  const auto buf = nl.add_unary(gate_fn::buf_a, 0);
  const auto g = nl.add_gate(gate_fn::and2, buf, 1);
  nl.set_output(0, g);
  EXPECT_EQ(nl.active_gate_count(), 1u);
}

TEST(netlist, output_may_be_primary_input) {
  netlist nl(2, 1);
  nl.set_output(0, 1);
  EXPECT_EQ(nl.active_gate_count(), 0u);
  EXPECT_EQ(test::naive_eval(nl, 0b10), 1u);
  EXPECT_EQ(test::naive_eval(nl, 0b01), 0u);
}

TEST(netlist, compacted_preserves_function) {
  rng gen(99);
  for (int trial = 0; trial < 25; ++trial) {
    const netlist nl = test::random_netlist(4, 3, 30, gen);
    const netlist compact = nl.compacted();
    EXPECT_TRUE(compact.validate().empty());
    EXPECT_LE(compact.num_gates(), nl.num_gates());
    for (std::uint64_t v = 0; v < 16; ++v) {
      EXPECT_EQ(test::naive_eval(nl, v), test::naive_eval(compact, v))
          << "trial " << trial << " assignment " << v;
    }
  }
}

TEST(netlist, compacted_removes_all_inactive) {
  rng gen(7);
  const netlist nl = test::random_netlist(4, 2, 40, gen);
  const netlist compact = nl.compacted();
  const auto mask = compact.active_mask();
  for (std::size_t k = 0; k < compact.num_gates(); ++k) {
    EXPECT_TRUE(mask[k]) << "gate " << k << " inactive after compaction";
  }
}

TEST(netlist, equality_is_structural) {
  const netlist a = make_full_adder();
  const netlist b = make_full_adder();
  EXPECT_EQ(a, b);
  netlist c = make_full_adder();
  c.set_output(0, 0);
  EXPECT_NE(a, c);
}

TEST(graft, identity_embedding_preserves_function) {
  const netlist inner = make_full_adder();
  netlist outer(3, 2);
  const std::vector<std::uint32_t> ins{0, 1, 2};
  const auto outs = graft(outer, inner, ins);
  outer.set_output(0, outs[0]);
  outer.set_output(1, outs[1]);
  for (std::uint64_t v = 0; v < 8; ++v) {
    EXPECT_EQ(test::naive_eval(outer, v), test::naive_eval(inner, v));
  }
}

TEST(graft, composition_wires_through) {
  // outer(a, b) = full_adder(a AND b, a, b).sum
  const netlist inner = make_full_adder();
  netlist outer(2, 1);
  const auto ab = outer.add_gate(gate_fn::and2, 0, 1);
  const auto outs = graft(outer, inner, std::vector<std::uint32_t>{ab, 0, 1});
  outer.set_output(0, outs[0]);
  for (std::uint64_t v = 0; v < 4; ++v) {
    const unsigned a = v & 1, b = (v >> 1) & 1;
    const unsigned expected = ((a & b) + a + b) & 1u;
    EXPECT_EQ(test::naive_eval(outer, v), expected);
  }
}

TEST(graft, double_graft_is_independent) {
  const netlist inner = make_full_adder();
  netlist outer(3, 2);
  const std::vector<std::uint32_t> ins{0, 1, 2};
  const auto first = graft(outer, inner, ins);
  const auto second = graft(outer, inner, ins);
  EXPECT_NE(first[0], second[0]);  // separate instances
  outer.set_output(0, first[0]);
  outer.set_output(1, second[0]);
  for (std::uint64_t v = 0; v < 8; ++v) {
    const auto out = test::naive_eval(outer, v);
    EXPECT_EQ(out & 1, (out >> 1) & 1);  // same function, same result
  }
}

}  // namespace
}  // namespace axc::circuit
