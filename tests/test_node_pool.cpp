// Multi-node dispatch tests: nodes-file parsing, launcher template
// expansion, the node_pool health state machine (backoff, quarantine,
// timed re-probation, single-lease probation), and the PR's acceptance
// properties against the real worker binary:
//
//   (a) a node killed mid-sweep (node-dead-midrun) has its shard's lease
//       reassigned to a surviving node and the merged front is
//       byte-identical to run_sweep_inprocess;
//   (b) a straggler shard speculatively duplicated onto another node
//       completes twice with byte-equal serialized fronts, and exactly
//       one copy is merged;
//   (c) a quarantined node is not offered shards until its re-probation
//       delay elapses, and then only one probation lease at a time.
//
// Process-level cases launch tools/axc_worker through the templated
// launcher (a localhost fake-ssh script — `shift; exec "$@"` — so the
// remote code path runs without a network); ctest points AXC_WORKER_BIN
// at the binary and the cases skip when it is unset.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "core/node_pool.h"
#include "core/result_store.h"
#include "core/shard_runner.h"
#include "dist/pmf.h"
#include "mult/multipliers.h"
#include "support/fault.h"
#include "support/launcher.h"

namespace axc::core {
namespace {

using std::chrono::milliseconds;

sweep_spec mult_spec_small() {
  sweep_spec spec;
  spec.component = "mult";
  spec.options.width = 4;
  spec.options.distribution = dist::pmf::half_normal(16, 4.0);
  spec.options.iterations = 150;
  spec.options.extra_columns = 16;
  spec.options.rng_seed = 13;
  spec.plan.targets = {0.002, 0.02};
  spec.plan.runs_per_target = 2;
  spec.options.runs_per_target = 2;
  spec.seed = mult::unsigned_multiplier(4);
  return spec;
}

const char* worker_binary() { return std::getenv("AXC_WORKER_BIN"); }

std::string fresh_work_dir(const char* name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       (std::string("axc-node-test-") + name + "-" +
        std::to_string(::getpid())))
          .string();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir, ec);
  return dir;
}

/// Localhost "remote": a script that drops the host argument and execs the
/// rest — the same shape the CI multi-node job uses for ssh.
std::string write_fake_ssh(const std::string& dir) {
  const std::string path = dir + "/fake-ssh";
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << "#!/bin/sh\nshift\nexec \"$@\"\n";
  }
  std::filesystem::permissions(path,
                               std::filesystem::perms::owner_all |
                                   std::filesystem::perms::group_read |
                                   std::filesystem::perms::others_read);
  return path;
}

std::string read_all(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

void expect_same_result(const sweep_result& a, const sweep_result& b) {
  ASSERT_EQ(a.designs.size(), b.designs.size());
  for (std::size_t i = 0; i < a.designs.size(); ++i) {
    EXPECT_EQ(a.designs[i].netlist, b.designs[i].netlist) << "design " << i;
    EXPECT_EQ(a.designs[i].wmed, b.designs[i].wmed) << "design " << i;
    EXPECT_EQ(a.designs[i].area_um2, b.designs[i].area_um2) << "design " << i;
  }
  ASSERT_EQ(a.front.size(), b.front.size());
  for (std::size_t i = 0; i < a.front.size(); ++i) {
    EXPECT_EQ(a.front[i], b.front[i]) << "front point " << i;
  }
}

/// Disarms the process-global fault plan even when an ASSERT bails out.
struct fault_guard {
  explicit fault_guard(std::string_view plan) { fault::configure(plan); }
  ~fault_guard() { fault::clear(); }
};

// ---- nodes-file parsing -------------------------------------------------

TEST(parse_nodes, full_block_round_trips_every_attribute) {
  std::istringstream in(
      "axc-nodes v1\n"
      "# the fast box\n"
      "node fast\n"
      "host 10.0.0.7\n"
      "slots 4\n"
      "workdir /tmp/axc\n"
      "worker /opt/axc/axc_worker\n"
      "run ssh -oBatchMode=yes {host}\n"
      "fetch scp {host}:{src} {dst}\n"
      "push scp {src} {host}:{dst}\n"
      "end\n"
      "\n"
      "node plain\n"
      "end\n");
  const auto nodes = parse_nodes(in);
  ASSERT_TRUE(nodes.has_value());
  ASSERT_EQ(nodes->size(), 2u);
  const node_config& fast = (*nodes)[0];
  EXPECT_EQ(fast.name, "fast");
  EXPECT_EQ(fast.host, "10.0.0.7");
  EXPECT_EQ(fast.slots, 4u);
  EXPECT_EQ(fast.workdir, "/tmp/axc");
  EXPECT_EQ(fast.worker, "/opt/axc/axc_worker");
  EXPECT_EQ(fast.tpl.run,
            (std::vector<std::string>{"ssh", "-oBatchMode=yes", "{host}"}));
  EXPECT_EQ(fast.tpl.fetch,
            (std::vector<std::string>{"scp", "{host}:{src}", "{dst}"}));
  EXPECT_EQ(fast.tpl.push,
            (std::vector<std::string>{"scp", "{src}", "{host}:{dst}"}));
  EXPECT_FALSE(fast.shares_filesystem());
  const node_config& plain = (*nodes)[1];
  EXPECT_EQ(plain.name, "plain");
  EXPECT_EQ(plain.slots, 1u);
  EXPECT_TRUE(plain.tpl.is_local());
  EXPECT_TRUE(plain.shares_filesystem());
}

TEST(parse_nodes, rejects_damage) {
  const char* bad[] = {
      "axc-nodes v2\nnode a\nend\n",           // wrong version
      "node a\nend\n",                         // missing magic
      "axc-nodes v1\n",                        // zero nodes
      "axc-nodes v1\nnode a\n",                // missing end
      "axc-nodes v1\nhost h\nnode a\nend\n",   // attribute outside block
      "axc-nodes v1\nnode a\nbogus x\nend\n",  // unknown key
      "axc-nodes v1\nnode a\nend\nnode a\nend\n",  // duplicate name
      "axc-nodes v1\nnode a\nslots 0\nend\n",      // zero slots
      "axc-nodes v1\nnode a\nslots many\nend\n",   // non-numeric slots
  };
  for (const char* text : bad) {
    std::istringstream in(text);
    EXPECT_FALSE(parse_nodes(in).has_value()) << text;
  }
}

TEST(worker_launcher, expand_substitutes_inside_tokens) {
  const auto argv = support::worker_launcher::expand(
      {"scp", "{host}:{src}", "{dst}", "{host}-{host}"}, "box", "/r/a.axc",
      "/l/a.axc");
  EXPECT_EQ(argv, (std::vector<std::string>{"scp", "box:/r/a.axc",
                                            "/l/a.axc", "box-box"}));
}

// ---- node_pool health state machine -------------------------------------

TEST(node_pool, acquire_prefers_least_active_then_lowest_index) {
  std::vector<node_config> nodes(2);
  nodes[0].name = "x";
  nodes[0].slots = 2;
  nodes[1].name = "y";
  node_pool pool(nodes);
  const auto now = node_pool::clock::now();
  EXPECT_EQ(pool.acquire(now), std::optional<std::size_t>{0});
  EXPECT_EQ(pool.acquire(now), std::optional<std::size_t>{1});
  EXPECT_EQ(pool.acquire(now), std::optional<std::size_t>{0});
  EXPECT_FALSE(pool.acquire(now).has_value());  // every slot leased
}

TEST(node_pool, avoid_is_soft) {
  std::vector<node_config> nodes(2);
  node_pool pool(nodes);
  const auto now = node_pool::clock::now();
  EXPECT_EQ(pool.acquire(now, {0}), std::optional<std::size_t>{1});
  // Node 1 is now full; the avoided node is still better than nothing.
  EXPECT_EQ(pool.acquire(now, {0}), std::optional<std::size_t>{0});
}

/// Acceptance (c): quarantine blocks leases until re-probation elapses,
/// and a re-admitted node gets one probation lease at a time.
TEST(node_pool, quarantined_node_waits_out_reprobation_then_probates) {
  node_config only;
  only.name = "flaky";
  only.slots = 2;
  node_policy policy;
  policy.quarantine_after = 2;
  policy.backoff = milliseconds(100);
  policy.reprobation = milliseconds(1000);
  node_pool pool({only}, policy);

  const auto t0 = node_pool::clock::now();
  auto lease = pool.acquire(t0);
  ASSERT_TRUE(lease.has_value());
  pool.release_failure(*lease, t0);
  EXPECT_EQ(pool.status(0).health, node_health::backing_off);
  // Backing off: no lease until the backoff delay passes.
  EXPECT_FALSE(pool.acquire(t0 + milliseconds(50)).has_value());
  EXPECT_EQ(pool.next_eligible(t0 + milliseconds(50)),
            std::optional{t0 + milliseconds(100)});

  lease = pool.acquire(t0 + milliseconds(100));
  ASSERT_TRUE(lease.has_value());
  pool.release_failure(*lease, t0 + milliseconds(100));
  // Second consecutive failure: quarantined for the re-probation delay.
  EXPECT_EQ(pool.status(0).health, node_health::quarantined);
  EXPECT_EQ(pool.status(0).quarantines, 1u);
  EXPECT_FALSE(pool.acquire(t0 + milliseconds(1099)).has_value());

  // Re-probation elapsed: exactly one probation lease, even with a free
  // slot — a flaky host must not reabsorb the plan in one tick.
  lease = pool.acquire(t0 + milliseconds(1100));
  ASSERT_TRUE(lease.has_value());
  EXPECT_TRUE(pool.status(0).probation);
  EXPECT_FALSE(pool.acquire(t0 + milliseconds(1100)).has_value());

  // A probation success restores full trust (both slots leasable).
  pool.release_success(*lease);
  EXPECT_EQ(pool.status(0).health, node_health::healthy);
  EXPECT_FALSE(pool.status(0).probation);
  EXPECT_TRUE(pool.acquire(t0 + milliseconds(1100)).has_value());
  EXPECT_TRUE(pool.acquire(t0 + milliseconds(1100)).has_value());
}

TEST(node_pool, probation_failure_requarantines_with_longer_delay) {
  node_config only;
  node_policy policy;
  policy.quarantine_after = 1;
  policy.reprobation = milliseconds(1000);
  policy.reprobation_factor = 2.0;
  node_pool pool({only}, policy);

  const auto t0 = node_pool::clock::now();
  auto lease = pool.acquire(t0);
  ASSERT_TRUE(lease.has_value());
  pool.release_failure(*lease, t0);  // quarantine #1: 1000 ms
  lease = pool.acquire(t0 + milliseconds(1000));
  ASSERT_TRUE(lease.has_value());
  pool.release_failure(*lease, t0 + milliseconds(1000));
  // Probation failed: quarantine #2 doubles the delay.
  EXPECT_EQ(pool.status(0).quarantines, 2u);
  EXPECT_FALSE(pool.acquire(t0 + milliseconds(2999)).has_value());
  EXPECT_TRUE(pool.acquire(t0 + milliseconds(3000)).has_value());
}

TEST(node_pool, mark_dead_quarantines_immediately) {
  std::vector<node_config> nodes(2);
  node_pool pool(nodes);
  const auto t0 = node_pool::clock::now();
  auto lease = pool.acquire(t0);
  ASSERT_TRUE(lease.has_value());
  pool.mark_dead(*lease, t0);
  EXPECT_EQ(pool.status(0).health, node_health::quarantined);
  pool.release(*lease);  // the reap releases without re-judging
  EXPECT_EQ(pool.status(0).health, node_health::quarantined);
  EXPECT_EQ(pool.acquire(t0), std::optional<std::size_t>{1});
}

// ---- process-level acceptance properties --------------------------------

/// Acceptance (a): a node dying mid-sweep loses its lease, the shard is
/// reassigned to a surviving node, and the merged result is bit-identical
/// to the single-process reference.
TEST(node_dispatch, dead_node_lease_is_reassigned_bit_exactly) {
  const char* worker = worker_binary();
  if (!worker) GTEST_SKIP() << "AXC_WORKER_BIN not set";

  const sweep_spec spec = mult_spec_small();
  const sweep_result reference = run_sweep_inprocess(spec);
  ASSERT_TRUE(reference.complete);

  shard_runner_config config;
  config.shards = 2;
  config.max_attempts = 3;
  config.work_dir = fresh_work_dir("dead-node");
  config.worker_binary = worker;
  const std::string ssh = write_fake_ssh(config.work_dir);
  // Two "remote" nodes through the fake-ssh hop; node a takes the
  // reassigned shard alongside its own, so it needs two slots.
  std::vector<node_config> nodes(2);
  nodes[0].name = "a";
  nodes[0].host = "host-a";
  nodes[0].slots = 2;
  nodes[0].tpl.run = {ssh, "{host}"};
  nodes[1].name = "b";
  nodes[1].host = "host-b";
  nodes[1].tpl.run = {ssh, "{host}"};
  config.nodes = nodes;
  // Shard 1 (leased to node b, the second least-active node) naps first so
  // the injected node death at the 3rd supervision tick is guaranteed to
  // land mid-run; the relaunch runs clean (shard_env is first-attempt
  // only).
  config.shard_env = {{}, {"AXC_FAULT=worker-sleep-start=500"}};
  fault_guard fault("node-dead-midrun@3=1");

  const sweep_result sharded = run_sweep(spec, config);
  ASSERT_TRUE(sharded.complete);
  ASSERT_EQ(sharded.shards.size(), 2u);
  EXPECT_GE(sharded.shards[1].attempts, 2u)
      << "node death did not force a reassignment";
  EXPECT_EQ(sharded.shards[1].node, "a") << "shard 1 did not move nodes";
  ASSERT_EQ(sharded.nodes.size(), 2u);
  EXPECT_GE(sharded.nodes[1].quarantines, 1u);
  expect_same_result(sharded, reference);

  // The journal carries the lease story: the dead lease was released with
  // reason "dead" and the shard still completed.
  const std::string journal =
      read_all(config.work_dir + "/coordinator.journal");
  EXPECT_NE(journal.find("release 1 b dead"), std::string::npos) << journal;
  EXPECT_NE(journal.find("lease 1 a"), std::string::npos) << journal;

  std::error_code ec;
  std::filesystem::remove_all(config.work_dir, ec);
}

/// Acceptance (b): a straggler's speculative duplicate completes on
/// another node; both checkpoints are complete with byte-equal serialized
/// fronts, and exactly one is merged (the result equals the reference).
TEST(node_dispatch, speculative_duplicate_checkpoints_are_byte_equal) {
  const char* worker = worker_binary();
  if (!worker) GTEST_SKIP() << "AXC_WORKER_BIN not set";

  const sweep_spec spec = mult_spec_small();
  const sweep_result reference = run_sweep_inprocess(spec);
  ASSERT_TRUE(reference.complete);

  shard_runner_config config;
  config.shards = 1;  // one shard holding the whole plan
  config.max_attempts = 2;
  config.work_dir = fresh_work_dir("speculate");
  config.worker_binary = worker;
  std::vector<node_config> nodes(2);
  nodes[0].name = "n0";
  nodes[1].name = "n1";
  config.nodes = nodes;
  // The primary naps 800 ms before working; the duplicate launched at
  // 150 ms runs immediately and wins.  keep_losers lets the primary finish
  // anyway so both completed checkpoints exist for the byte comparison.
  config.shard_env = {{"AXC_FAULT=worker-sleep-start=800"}};
  config.speculate_after = milliseconds(150);
  config.speculation_keep_losers = true;

  std::size_t speculated_events = 0;
  config.on_event = [&speculated_events](const shard_event& event) {
    if (event.kind == shard_event_kind::speculated) ++speculated_events;
  };

  const sweep_result sharded = run_sweep(spec, config);
  ASSERT_TRUE(sharded.complete);
  ASSERT_EQ(sharded.shards.size(), 1u);
  EXPECT_EQ(speculated_events, 1u);
  EXPECT_TRUE(sharded.shards[0].speculative_win);
  EXPECT_EQ(sharded.shards[0].node, "n1");
  expect_same_result(sharded, reference);

  // Both copies ran to completion; their recovered fronts must be
  // byte-equal (every job is a pure function of (seed, target, run)).
  const component_handle component = spec.make_component();
  const std::string primary = config.work_dir + "/shard-0.axc";
  const std::string duplicate = primary + ".dup";
  resume_report primary_report, duplicate_report;
  auto primary_session =
      search_session::resume_file(primary, component, {}, &primary_report);
  auto duplicate_session = search_session::resume_file(duplicate, component,
                                                       {}, &duplicate_report);
  ASSERT_TRUE(primary_session.has_value());
  ASSERT_TRUE(duplicate_session.has_value());
  EXPECT_EQ(primary_report.jobs_recovered, spec.plan.job_count());
  EXPECT_EQ(duplicate_report.jobs_recovered, spec.plan.job_count());
  EXPECT_EQ(primary_report.jobs_dropped, 0u);
  EXPECT_EQ(duplicate_report.jobs_dropped, 0u);
  const auto primary_front = primary_session->front();
  const auto duplicate_front = duplicate_session->front();
  EXPECT_EQ(serialize_front(primary_front), serialize_front(duplicate_front));

  std::error_code ec;
  std::filesystem::remove_all(config.work_dir, ec);
}

/// A node whose launches never start is quarantined and the sweep
/// completes on the healthy node alone.
TEST(node_dispatch, launch_failures_quarantine_the_node) {
  const char* worker = worker_binary();
  if (!worker) GTEST_SKIP() << "AXC_WORKER_BIN not set";

  const sweep_spec spec = mult_spec_small();
  const sweep_result reference = run_sweep_inprocess(spec);

  shard_runner_config config;
  config.shards = 2;
  config.max_attempts = 3;
  config.work_dir = fresh_work_dir("launch-fail");
  config.worker_binary = worker;
  std::vector<node_config> nodes(2);
  nodes[0].name = "good";
  nodes[0].slots = 2;
  nodes[1].name = "bad";
  config.nodes = nodes;
  config.nodes_policy.quarantine_after = 1;
  config.nodes_policy.reprobation = milliseconds(60000);
  fault_guard fault("node-launch-fail=1");  // every launch on node 1 fails

  const sweep_result sharded = run_sweep(spec, config);
  ASSERT_TRUE(sharded.complete);
  expect_same_result(sharded, reference);
  for (const shard_outcome& shard : sharded.shards) {
    EXPECT_EQ(shard.node, "good");
  }
  ASSERT_EQ(sharded.nodes.size(), 2u);
  EXPECT_EQ(sharded.nodes[1].health, node_health::quarantined);
  EXPECT_GE(sharded.nodes[1].failures, 1u);

  std::error_code ec;
  std::filesystem::remove_all(config.work_dir, ec);
}

/// A torn checkpoint fetch (non-shared filesystem) is detected by CRC
/// validation and refetched; the sweep still lands bit-exactly.
TEST(node_dispatch, torn_fetch_is_detected_and_retried) {
  const char* worker = worker_binary();
  if (!worker) GTEST_SKIP() << "AXC_WORKER_BIN not set";

  const sweep_spec spec = mult_spec_small();
  const sweep_result reference = run_sweep_inprocess(spec);

  shard_runner_config config;
  config.shards = 1;
  config.max_attempts = 2;
  config.work_dir = fresh_work_dir("torn-fetch");
  config.worker_binary = worker;
  // One node with its own workdir but empty fetch/push templates: spec and
  // checkpoint move by plain file copy — a non-shared-filesystem node
  // simulated without any transport.
  node_config remote;
  remote.name = "far";
  remote.workdir = config.work_dir + "/far";
  std::error_code ec;
  std::filesystem::create_directories(remote.workdir, ec);
  config.nodes = {remote};
  // First final fetch arrives truncated to 64 bytes; CRC validation must
  // reject it and the retry delivers the intact copy.
  fault_guard fault("node-fetch-torn@1=64");

  std::size_t torn_events = 0;
  config.on_event = [&torn_events](const shard_event& event) {
    if (event.kind == shard_event_kind::fetch_torn) ++torn_events;
  };

  const sweep_result sharded = run_sweep(spec, config);
  ASSERT_TRUE(sharded.complete);
  EXPECT_GE(torn_events, 1u);
  expect_same_result(sharded, reference);
  const std::string journal =
      read_all(config.work_dir + "/coordinator.journal");
  EXPECT_NE(journal.find("fetch 0 far torn"), std::string::npos) << journal;
  EXPECT_NE(journal.find("fetch 0 far ok"), std::string::npos) << journal;

  std::filesystem::remove_all(config.work_dir, ec);
}

}  // namespace
}  // namespace axc::core
