#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dist/pmf.h"
#include "metrics/error_metrics.h"
#include "metrics/mult_spec.h"
#include "mult/multipliers.h"
#include "test_util.h"

namespace axc::metrics {
namespace {

struct spec_case {
  unsigned width;
  bool is_signed;
};

class spec_param : public ::testing::TestWithParam<spec_case> {};

TEST_P(spec_param, operand_value_round_trip) {
  const mult_spec spec{GetParam().width, GetParam().is_signed};
  for (std::uint64_t p = 0; p < spec.operand_count(); ++p) {
    const std::int64_t v = spec.operand_value(p);
    EXPECT_EQ(v, test::as_value(p, spec.width, spec.is_signed));
    if (spec.is_signed) {
      EXPECT_GE(v, -(std::int64_t{1} << (spec.width - 1)));
      EXPECT_LT(v, std::int64_t{1} << (spec.width - 1));
    } else {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, std::int64_t{1} << spec.width);
    }
  }
}

TEST_P(spec_param, exact_table_is_products) {
  const mult_spec spec{GetParam().width, GetParam().is_signed};
  const auto table = exact_product_table(spec);
  ASSERT_EQ(table.size(), spec.pair_count());
  for (std::uint64_t b = 0; b < spec.operand_count(); b += 3) {
    for (std::uint64_t a = 0; a < spec.operand_count(); a += 3) {
      EXPECT_EQ(table[(b << spec.width) | a],
                spec.operand_value(a) * spec.operand_value(b));
    }
  }
}

TEST_P(spec_param, exact_multiplier_has_zero_error) {
  const mult_spec spec{GetParam().width, GetParam().is_signed};
  const circuit::netlist nl = spec.is_signed
                                  ? mult::signed_multiplier(spec.width)
                                  : mult::unsigned_multiplier(spec.width);
  const auto exact = exact_product_table(spec);
  const auto approx = product_table(nl, spec);
  EXPECT_DOUBLE_EQ(med(exact, approx, spec), 0.0);
  EXPECT_DOUBLE_EQ(worst_case_error(exact, approx, spec), 0.0);
  EXPECT_DOUBLE_EQ(error_rate(exact, approx), 0.0);
}

INSTANTIATE_TEST_SUITE_P(widths, spec_param,
                         ::testing::Values(spec_case{2, false},
                                           spec_case{2, true},
                                           spec_case{4, false},
                                           spec_case{4, true},
                                           spec_case{6, false},
                                           spec_case{8, false},
                                           spec_case{8, true}));

TEST(wmed, uniform_reduces_to_med) {
  const mult_spec spec{4, false};
  const auto exact = exact_product_table(spec);
  const circuit::netlist approx_nl = mult::truncated_multiplier(4, 3);
  const auto approx = product_table(approx_nl, spec);
  const dist::pmf du = dist::pmf::uniform(16);
  EXPECT_NEAR(wmed(exact, approx, spec, du), med(exact, approx, spec),
              1e-15);
}

TEST(wmed, bounded_between_zero_and_one) {
  const mult_spec spec{4, false};
  const auto exact = exact_product_table(spec);
  // Worst multiplier: constant all-ones output.
  std::vector<std::int64_t> awful(spec.pair_count(),
                                  (std::int64_t{1} << 8) - 1);
  for (const auto& d :
       {dist::pmf::uniform(16), dist::pmf::half_normal(16, 4.0)}) {
    const double e = wmed(exact, awful, spec, d);
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, 1.0);
    EXPECT_GT(e, 0.5);  // it really is awful
  }
}

TEST(wmed, weights_gate_which_errors_matter) {
  const mult_spec spec{4, false};
  const auto exact = exact_product_table(spec);
  // Corrupt only rows with operand A = 15.
  auto approx = exact;
  for (std::uint64_t b = 0; b < 16; ++b) approx[(b << 4) | 15] += 40;

  // All mass on A=0: the corruption is invisible.
  std::vector<double> w0(16, 0.0);
  w0[0] = 1.0;
  EXPECT_DOUBLE_EQ(
      wmed(exact, approx, spec, dist::pmf::from_weights(w0)), 0.0);

  // All mass on A=15: the corruption is fully visible.
  std::vector<double> w15(16, 0.0);
  w15[15] = 1.0;
  const double focused =
      wmed(exact, approx, spec, dist::pmf::from_weights(w15));
  EXPECT_NEAR(focused, 40.0 / 256.0, 1e-12);

  // Uniform sees 1/16 of it.
  EXPECT_NEAR(wmed(exact, approx, spec, dist::pmf::uniform(16)),
              focused / 16.0, 1e-12);
}

TEST(wmed, linear_in_distribution_blend) {
  const mult_spec spec{4, false};
  const auto exact = exact_product_table(spec);
  const auto approx =
      product_table(mult::broken_array_multiplier(4, 1, 2), spec);
  const dist::pmf a = dist::pmf::uniform(16);
  const dist::pmf b = dist::pmf::half_normal(16, 3.0);
  const double ea = wmed(exact, approx, spec, a);
  const double eb = wmed(exact, approx, spec, b);
  const double emid = wmed(exact, approx, spec, a.blend(b, 0.25));
  EXPECT_NEAR(emid, 0.75 * ea + 0.25 * eb, 1e-12);
}

TEST(mean_absolute_error, in_lsb_units) {
  const std::vector<std::int64_t> exact{0, 10, 20, 30};
  const std::vector<std::int64_t> approx{1, 10, 18, 30};
  EXPECT_NEAR(mean_absolute_error(exact, approx), (1 + 0 + 2 + 0) / 4.0,
              1e-12);
}

TEST(worst_case_error, picks_maximum) {
  const mult_spec spec{2, false};
  const std::vector<std::int64_t> exact{0, 0, 0, 0, 0, 0, 0, 0,
                                        0, 0, 0, 0, 0, 0, 0, 0};
  std::vector<std::int64_t> approx = exact;
  approx[5] = -3;  // |err| = 3 out of scale 16
  EXPECT_NEAR(worst_case_error(exact, approx, spec), 3.0 / 16.0, 1e-12);
}

TEST(mean_relative_error, skips_zero_exact_products) {
  const std::vector<std::int64_t> exact{0, 4, 8};
  const std::vector<std::int64_t> approx{100, 2, 8};
  // v=0 skipped; (|4-2|/4 + 0)/2 = 0.25.
  EXPECT_NEAR(mean_relative_error(exact, approx), 0.25, 1e-12);
}

TEST(error_rate, counts_mismatches) {
  const std::vector<std::int64_t> exact{1, 2, 3, 4};
  const std::vector<std::int64_t> approx{1, 0, 3, 0};
  EXPECT_DOUBLE_EQ(error_rate(exact, approx), 0.5);
}

TEST(error_bias, signed_mean_deviation) {
  const mult_spec spec{2, false};
  std::vector<std::int64_t> exact(16, 0), approx(16, 0);
  approx[0] = 16;   // +16
  approx[1] = -16;  // -16 -> cancels
  EXPECT_DOUBLE_EQ(error_bias(exact, approx, spec), 0.0);
  approx[1] = 16;
  EXPECT_NEAR(error_bias(exact, approx, spec), 32.0 / (16.0 * 16.0), 1e-12);
}

TEST(error_map, localizes_errors) {
  const mult_spec spec{4, false};
  const auto exact = exact_product_table(spec);
  auto approx = exact;
  approx[(std::uint64_t{3} << 4) | 7] += 13;  // a=7, b=3
  const auto map = error_map(exact, approx, spec);
  EXPECT_NEAR(map[(3 << 4) | 7], 13.0 / 256.0, 1e-12);
  EXPECT_DOUBLE_EQ(map[(3 << 4) | 6], 0.0);
}

TEST(error_map, truncation_errors_concentrate_at_large_operands) {
  const mult_spec spec{8, false};
  const auto exact = exact_product_table(spec);
  const auto approx = product_table(mult::truncated_multiplier(8, 8), spec);
  const auto map = error_map(exact, approx, spec);
  const auto grid = downsample_error_map(map, spec, 4);
  // Dropping low columns hurts everywhere but exact zero rows/cols survive;
  // the top-right cell (both operands large) must err more than top-left.
  EXPECT_GT(grid[3 * 4 + 3], grid[0]);
}

TEST(downsample_error_map, preserves_total_mean) {
  const mult_spec spec{4, false};
  const auto exact = exact_product_table(spec);
  const auto approx =
      product_table(mult::broken_array_multiplier(4, 1, 3), spec);
  const auto map = error_map(exact, approx, spec);
  const auto grid = downsample_error_map(map, spec, 4);
  double mean_map = 0.0, mean_grid = 0.0;
  for (const double m : map) mean_map += m;
  for (const double g : grid) mean_grid += g;
  mean_map /= static_cast<double>(map.size());
  mean_grid /= static_cast<double>(grid.size());
  EXPECT_NEAR(mean_map, mean_grid, 1e-12);
}

}  // namespace
}  // namespace axc::metrics
