// Durability tests for the "axc-session v2" checkpoint format: CRC-guarded
// sections, atomic save_file, salvage of truncated/corrupted files, v1
// compatibility, autosave, and the injected-failure paths of save_to_file.
// The recurring acceptance shape: damage a checkpoint any way we can,
// resume whatever survives, run to completion — the result must equal the
// uninterrupted session bit for bit (dropped jobs simply re-run).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "circuit/serialize.h"
#include "core/component_handle.h"
#include "core/search_session.h"
#include "core/wmed_approximator.h"
#include "dist/pmf.h"
#include "mult/multipliers.h"
#include "support/fault.h"

namespace axc::core {
namespace {

approximation_config small_config() {
  approximation_config cfg;
  cfg.spec = metrics::mult_spec{4, false};
  cfg.distribution = dist::pmf::half_normal(16, 4.0);
  cfg.iterations = 150;
  cfg.extra_columns = 16;
  cfg.rng_seed = 13;
  return cfg;
}

sweep_plan small_plan() {
  sweep_plan plan;
  plan.targets = {0.002, 0.02};
  plan.runs_per_target = 2;
  return plan;
}

circuit::netlist seed_netlist() { return mult::unsigned_multiplier(4); }

/// A finished reference session plus its serialized checkpoint.
struct finished_fixture {
  std::vector<evolved_design> designs;
  std::vector<pareto_point> front;
  std::string checkpoint;
};

const finished_fixture& finished() {
  static const finished_fixture fixture = [] {
    search_session session(make_component(small_config()), seed_netlist(),
                           small_plan());
    session.run();
    std::ostringstream os;
    session.save(os);
    return finished_fixture{session.designs(), session.front(), os.str()};
  }();
  return fixture;
}

void expect_same_designs(const std::vector<evolved_design>& a,
                         const std::vector<evolved_design>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].netlist, b[i].netlist) << "design " << i;
    EXPECT_EQ(a[i].wmed, b[i].wmed) << "design " << i;
    EXPECT_EQ(a[i].area_um2, b[i].area_um2) << "design " << i;
    EXPECT_EQ(a[i].evaluations, b[i].evaluations) << "design " << i;
  }
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("axc-ckpt-test-") + name + "-" +
           std::to_string(::getpid())))
      .string();
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

TEST(checkpoint_v2, round_trips_a_finished_session) {
  const finished_fixture& ref = finished();
  EXPECT_EQ(ref.checkpoint.substr(0, 14), "axc-session v2");

  std::istringstream is(ref.checkpoint);
  resume_report report;
  auto resumed = search_session::resume(is, make_component(small_config()),
                                        {}, &report);
  ASSERT_TRUE(resumed.has_value());
  EXPECT_EQ(report.version, 2u);
  EXPECT_FALSE(report.salvaged);
  EXPECT_EQ(report.jobs_recovered, 4u);
  EXPECT_EQ(report.jobs_dropped, 0u);
  EXPECT_TRUE(resumed->finished());
  expect_same_designs(resumed->designs(), ref.designs);
  EXPECT_EQ(resumed->front(), ref.front);
}

TEST(checkpoint_v2, rejects_wrong_fingerprint) {
  approximation_config other = small_config();
  other.rng_seed = 999;
  std::istringstream is(finished().checkpoint);
  EXPECT_FALSE(
      search_session::resume(is, make_component(other)).has_value());
}

TEST(checkpoint_v2, truncation_at_any_byte_salvages_and_reconverges) {
  // Cut the checkpoint at a sweep of byte offsets.  Every cut must either
  // resume (salvaging a subset of the jobs) or fail cleanly (header
  // damage); whatever survives, running the remainder must reproduce the
  // uninterrupted designs and front exactly.
  const finished_fixture& ref = finished();
  const std::string& full = ref.checkpoint;
  const std::size_t stride = full.size() / 24 + 1;
  for (std::size_t cut = 0; cut < full.size(); cut += stride) {
    std::istringstream is(full.substr(0, cut));
    resume_report report;
    auto session = search_session::resume(is, make_component(small_config()),
                                          {}, &report);
    if (!session) continue;  // damaged header: the worker starts fresh
    EXPECT_LE(report.jobs_recovered, 4u) << "cut " << cut;
    EXPECT_TRUE(report.salvaged || report.jobs_recovered == 4u)
        << "cut " << cut;
    session->run();
    EXPECT_TRUE(session->finished()) << "cut " << cut;
    expect_same_designs(session->designs(), ref.designs);
    EXPECT_EQ(session->front(), ref.front) << "cut " << cut;
  }
}

TEST(checkpoint_v2, dropping_the_footer_flags_salvage) {
  const std::string& full = finished().checkpoint;
  const std::size_t end_pos = full.rfind("end ");
  ASSERT_NE(end_pos, std::string::npos);
  std::istringstream is(full.substr(0, end_pos));
  resume_report report;
  auto session = search_session::resume(is, make_component(small_config()),
                                        {}, &report);
  ASSERT_TRUE(session.has_value());
  // All records intact; only the sentinel is missing.
  EXPECT_TRUE(report.salvaged);
  EXPECT_EQ(report.jobs_recovered, 4u);
  EXPECT_EQ(report.jobs_dropped, 0u);
}

TEST(checkpoint_v2, corrupted_job_record_is_dropped_and_rerun) {
  const finished_fixture& ref = finished();
  std::string text = ref.checkpoint;
  // Flip one bit inside the first job record's netlist, past the header.
  const std::size_t job_pos = text.find("\njob ");
  ASSERT_NE(job_pos, std::string::npos);
  const std::size_t gate_pos = text.find("gate", job_pos);
  ASSERT_NE(gate_pos, std::string::npos);
  text[gate_pos + 7] ^= 0x10;

  std::istringstream is(text);
  resume_report report;
  auto session = search_session::resume(is, make_component(small_config()),
                                        {}, &report);
  ASSERT_TRUE(session.has_value());
  EXPECT_TRUE(report.salvaged);
  EXPECT_EQ(report.jobs_dropped, 1u);
  EXPECT_EQ(report.jobs_recovered, 3u);
  session->run();
  expect_same_designs(session->designs(), ref.designs);
  EXPECT_EQ(session->front(), ref.front);
}

TEST(checkpoint_v2, single_bit_flips_never_crash_resume) {
  const std::string& full = finished().checkpoint;
  const std::size_t stride = full.size() / 64 + 1;
  for (std::size_t byte = 0; byte < full.size(); byte += stride) {
    std::string mutated = full;
    mutated[byte] ^= 0x04;
    std::istringstream is(mutated);
    // Any outcome is fine (reject, salvage, or full recovery when the flip
    // lands in ignorable bytes); crashing or hanging is not.
    (void)search_session::resume(is, make_component(small_config()));
  }
  SUCCEED();
}

TEST(checkpoint_v1, stays_readable) {
  // Hand-build the legacy v1 format (no CRCs, `completed N` up front,
  // bare `end`) for an empty session; resuming it must still work and
  // reach the same final result.
  const component_handle component = make_component(small_config());
  std::ostringstream v1;
  v1 << "axc-session v1\n";
  v1 << "component mult\n";
  v1 << "width 4\n";
  v1 << "rng-seed 13\n";
  v1 << "iterations 150\n";
  v1 << "fingerprint " << component.fingerprint() << "\n";
  v1 << "runs-per-target 2\n";
  v1 << "targets 2 0.002 0.02\n";
  v1 << "seed-netlist\n";
  circuit::write_netlist(v1, seed_netlist());
  v1 << "completed 0\n";
  v1 << "end\n";

  std::istringstream is(v1.str());
  resume_report report;
  auto session =
      search_session::resume(is, component, {}, &report);
  ASSERT_TRUE(session.has_value());
  EXPECT_EQ(report.version, 1u);
  EXPECT_EQ(report.jobs_recovered, 0u);
  session->run();
  expect_same_designs(session->designs(), finished().designs);
  EXPECT_EQ(session->front(), finished().front);
}

TEST(checkpoint_v1, truncation_is_rejected_not_salvaged) {
  // v1 has no record CRCs, so its strict all-or-nothing semantics remain.
  const component_handle component = make_component(small_config());
  std::ostringstream v1;
  v1 << "axc-session v1\n";
  v1 << "component mult\n";
  v1 << "width 4\n";
  const std::string text = v1.str();
  std::istringstream is(text);
  EXPECT_FALSE(search_session::resume(is, component).has_value());
}

TEST(save_file, is_atomic_and_durable) {
  const std::string path = temp_path("atomic");
  std::filesystem::remove(path);
  search_session session(make_component(small_config()), seed_netlist(),
                         small_plan());
  ASSERT_TRUE(session.save_file(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  auto resumed =
      search_session::resume_file(path, make_component(small_config()));
  ASSERT_TRUE(resumed.has_value());
  EXPECT_EQ(resumed->completed_jobs(), 0u);
  std::filesystem::remove(path);
}

TEST(save_file, injected_failure_never_clobbers_the_good_checkpoint) {
  const std::string path = temp_path("savefail");
  std::filesystem::remove(path);
  search_session session(make_component(small_config()), seed_netlist(),
                         small_plan());
  ASSERT_TRUE(session.save_file(path));
  const std::string good = slurp(path);

  fault::configure("session-save-fail");
  EXPECT_FALSE(session.save_file(path));
  fault::clear();

  EXPECT_EQ(slurp(path), good);  // untouched
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::filesystem::remove(path);
}

TEST(save_file, reports_failure_when_directory_fsync_fails) {
  // The rename landed but the directory entry never reached stable
  // storage: a power loss could still resurrect the old file, so the save
  // must report failure — and a clean retry (the fsync recovers) must
  // succeed against the same path with the renamed file already in place.
  const std::string path = temp_path("dirsync");
  std::filesystem::remove(path);
  search_session session(make_component(small_config()), seed_netlist(),
                         small_plan());
  ASSERT_TRUE(session.save_file(path));
  const std::string good = slurp(path);

  fault::configure("session-save-dirsync-fail@1");
  EXPECT_FALSE(session.save_file(path));
  fault::clear();
  // The file itself is whole (rename happened; only durability was in
  // doubt), so a reader still salvages a valid checkpoint...
  EXPECT_EQ(slurp(path), good);
  // ...and the retry completes durably.
  EXPECT_TRUE(session.save_file(path));
  EXPECT_EQ(slurp(path), good);
  std::filesystem::remove(path);
}

TEST(save_file, injected_truncation_is_salvaged_on_resume) {
  const finished_fixture& ref = finished();
  const std::string path = temp_path("truncate");
  std::filesystem::remove(path);
  search_session session(make_component(small_config()), seed_netlist(),
                         small_plan());
  session.run();

  // Truncate the *saved temp file* mid-body before it is renamed in: the
  // torn-write shape a power cut produces.
  const std::size_t cut = ref.checkpoint.size() / 2;
  fault::configure("session-save-truncate@1=" + std::to_string(cut));
  ASSERT_TRUE(session.save_file(path));
  fault::clear();
  EXPECT_EQ(std::filesystem::file_size(path), cut);

  resume_report report;
  auto resumed = search_session::resume_file(
      path, make_component(small_config()), {}, &report);
  if (resumed) {
    EXPECT_TRUE(report.salvaged);
    resumed->run();
    expect_same_designs(resumed->designs(), ref.designs);
    EXPECT_EQ(resumed->front(), ref.front);
  }
  std::filesystem::remove(path);
}

TEST(autosave, persists_progress_during_run) {
  const std::string path = temp_path("autosave");
  std::filesystem::remove(path);
  session_config options;
  options.autosave_path = path;
  options.autosave_generations = 32;
  search_session session(make_component(small_config()), seed_netlist(),
                         small_plan(), options);
  session.run();
  ASSERT_TRUE(std::filesystem::exists(path));

  // The autosaved file includes every completed job and resumes to the
  // full uninterrupted result.
  resume_report report;
  auto resumed = search_session::resume_file(
      path, make_component(small_config()), {}, &report);
  ASSERT_TRUE(resumed.has_value());
  EXPECT_EQ(report.jobs_recovered, 4u);
  expect_same_designs(resumed->designs(), finished().designs);
  EXPECT_EQ(resumed->front(), finished().front);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace axc::core
