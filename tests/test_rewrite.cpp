#include <gtest/gtest.h>

#include "circuit/rewrite.h"
#include "circuit/structural.h"
#include "mult/multipliers.h"
#include "support/rng.h"
#include "test_util.h"

namespace axc::circuit {
namespace {

void expect_same_function(const netlist& a, const netlist& b,
                          std::size_t assignments) {
  for (std::uint64_t v = 0; v < assignments; ++v) {
    ASSERT_EQ(test::naive_eval(a, v), test::naive_eval(b, v)) << "v=" << v;
  }
}

TEST(gate_fn_from_table, total_inverse_of_truth_table) {
  for (const gate_fn fn : full_function_set()) {
    EXPECT_EQ(gate_fn_from_table(gate_truth_table(fn)), fn);
  }
}

TEST(simplify, preserves_function_on_random_netlists) {
  rng gen(17);
  for (int trial = 0; trial < 40; ++trial) {
    const netlist nl = test::random_netlist(6, 4, 50, gen);
    const netlist simplified = simplify(nl);
    EXPECT_TRUE(simplified.validate().empty());
    expect_same_function(nl, simplified, 64);
  }
}

TEST(simplify, preserves_multiplier_function) {
  for (const auto& nl :
       {mult::unsigned_multiplier(4), mult::signed_multiplier(4),
        mult::truncated_multiplier(4, 3), mult::zero_exact_wrapper(
                                              mult::unsigned_multiplier(4), 4)}) {
    expect_same_function(nl, simplify(nl), 256);
  }
}

TEST(simplify, never_grows_active_logic) {
  rng gen(23);
  for (int trial = 0; trial < 30; ++trial) {
    const netlist nl = test::random_netlist(5, 3, 40, gen);
    EXPECT_LE(simplify(nl).active_gate_count(), nl.active_gate_count());
  }
}

TEST(simplify, folds_constants) {
  netlist nl(2, 1);
  const auto one = nl.add_gate(gate_fn::const1, 0, 0);
  const auto g = nl.add_gate(gate_fn::and2, 0, one);  // and(x, 1) = x
  nl.set_output(0, nl.add_gate(gate_fn::xor2, g, 1));
  const netlist s = simplify(nl);
  EXPECT_EQ(s.active_gate_count(), 1u);  // just the xor
  expect_same_function(nl, s, 4);
}

TEST(simplify, collapses_same_operand_gates) {
  netlist nl(2, 2);
  nl.set_output(0, nl.add_gate(gate_fn::xor2, 0, 0));   // = 0
  nl.set_output(1, nl.add_gate(gate_fn::and2, 1, 1));   // = b
  const netlist s = simplify(nl);
  EXPECT_EQ(s.active_gate_count(), 0u);  // const + wire only
  expect_same_function(nl, s, 4);
}

TEST(simplify, eliminates_double_negation) {
  netlist nl(1, 1);
  const auto n1 = nl.add_unary(gate_fn::not_a, 0);
  const auto n2 = nl.add_unary(gate_fn::not_a, n1);
  nl.set_output(0, n2);
  const netlist s = simplify(nl);
  EXPECT_EQ(s.active_gate_count(), 0u);  // output wired to the input
  expect_same_function(nl, s, 2);
}

TEST(simplify, absorbs_inverters_into_consumers) {
  // and(~a, b) should become the single complex cell andn_ba.
  netlist nl(2, 1);
  const auto na = nl.add_unary(gate_fn::not_a, 0);
  nl.set_output(0, nl.add_gate(gate_fn::and2, na, 1));
  const netlist s = simplify(nl);
  EXPECT_EQ(s.active_gate_count(), 1u);
  EXPECT_EQ(s.gate(s.gate_index(s.output(0))).fn, gate_fn::andn_ba);
  expect_same_function(nl, s, 4);
}

TEST(simplify, merges_structural_duplicates) {
  netlist nl(2, 2);
  const auto g1 = nl.add_gate(gate_fn::xor2, 0, 1);
  const auto g2 = nl.add_gate(gate_fn::xor2, 0, 1);  // duplicate
  nl.set_output(0, g1);
  nl.set_output(1, g2);
  const netlist s = simplify(nl);
  EXPECT_EQ(s.active_gate_count(), 1u);
  EXPECT_EQ(s.output(0), s.output(1));
}

TEST(simplify, keeps_inverted_output_via_single_inverter) {
  netlist nl(2, 2);
  const auto g = nl.add_gate(gate_fn::and2, 0, 1);
  const auto ng = nl.add_unary(gate_fn::not_a, g);
  nl.set_output(0, ng);
  nl.set_output(1, ng);
  const netlist s = simplify(nl);
  // nand would also be acceptable; either way <= 2 active gates and both
  // outputs share structure.
  EXPECT_LE(s.active_gate_count(), 2u);
  EXPECT_EQ(s.output(0), s.output(1));
  expect_same_function(nl, s, 4);
}

TEST(simplify, handles_operand_ignoring_functions) {
  // not_b ignores operand a; the expensive cone feeding a must vanish.
  netlist nl(2, 1);
  auto deep = nl.add_gate(gate_fn::xor2, 0, 1);
  deep = nl.add_gate(gate_fn::xor2, deep, 0);
  nl.set_output(0, nl.add_gate(gate_fn::not_b, deep, 1));
  const netlist s = simplify(nl);
  EXPECT_EQ(s.active_gate_count(), 1u);
  expect_same_function(nl, s, 4);
}

TEST(simplify, idempotent) {
  rng gen(29);
  for (int trial = 0; trial < 10; ++trial) {
    const netlist nl = test::random_netlist(5, 3, 30, gen);
    const netlist once = simplify(nl);
    const netlist twice = simplify(once);
    EXPECT_EQ(once.active_gate_count(), twice.active_gate_count());
    expect_same_function(once, twice, 32);
  }
}

TEST(simplify, shrinks_evolved_style_redundancy) {
  // Random netlists carry heavy redundancy; simplification should bite.
  rng gen(31);
  std::size_t before = 0, after = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const netlist nl = test::random_netlist(8, 4, 120, gen);
    before += nl.active_gate_count();
    after += simplify(nl).active_gate_count();
  }
  EXPECT_LT(after, before);
}

}  // namespace
}  // namespace axc::circuit
