// Coordinator crash-recovery: the PR's acceptance property (a).  The real
// tools/axc_sweep coordinator is killed at every armed fault point —
// right after spawning its first worker, between shard merges, and inside
// the store's index append — then re-run over the surviving journal,
// shard checkpoints and store.  Each re-run must resume supervision
// (completed shards are not re-executed), publish into the result store,
// and land a front bit-identical to an uninterrupted in-process run of
// the same spec.
//
// ctest points AXC_SWEEP_BIN / AXC_WORKER_BIN at the built tools (see
// CMakeLists); the cases skip when either is unset.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "core/result_store.h"
#include "core/shard_runner.h"
#include "dist/pmf.h"
#include "mult/multipliers.h"
#include "support/subprocess.h"

namespace axc::core {
namespace {

namespace fs = std::filesystem;

const char* sweep_binary() { return std::getenv("AXC_SWEEP_BIN"); }
const char* worker_binary() { return std::getenv("AXC_WORKER_BIN"); }

sweep_spec small_spec() {
  sweep_spec spec;
  spec.component = "mult";
  spec.options.width = 4;
  spec.options.distribution = dist::pmf::half_normal(16, 4.0);
  spec.options.iterations = 150;
  spec.options.extra_columns = 16;
  spec.options.rng_seed = 13;
  spec.plan.targets = {0.002, 0.02};
  spec.plan.runs_per_target = 2;
  spec.options.runs_per_target = 2;
  spec.seed = mult::unsigned_multiplier(4);
  return spec;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = (fs::temp_directory_path() /
                           ("axc-coord-test-" + name + "-" +
                            std::to_string(::getpid())))
                              .string();
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  return dir;
}

/// Blocks (with a hard deadline) until the child exits.
std::optional<support::exit_status> wait_exit(support::subprocess& proc) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (std::chrono::steady_clock::now() < deadline) {
    if (auto status = proc.poll()) return status;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  proc.kill_hard();
  return std::nullopt;
}

/// One coordinator life: axc_sweep over `spec_path`, publishing into
/// `store_dir`, optionally with an armed fault plan.
std::optional<support::exit_status> run_coordinator(
    const std::string& spec_path, const std::string& work_dir,
    const std::string& store_dir, const std::string& fault_plan) {
  std::vector<std::string> argv = {
      sweep_binary(), "--spec",    spec_path, "--worker", worker_binary(),
      "--work-dir",   work_dir,    "--store", store_dir,
      "--shards",     "2"};
  std::vector<std::string> env;
  if (!fault_plan.empty()) env.push_back("AXC_FAULT=" + fault_plan);
  auto proc = support::subprocess::spawn(argv, env);
  if (!proc) return std::nullopt;
  return wait_exit(*proc);
}

/// The per-shard "session" store keys run_sweep publishes under: derived
/// from the same shard specs the coordinator builds.
std::vector<std::string> shard_session_keys(const sweep_spec& spec,
                                            std::size_t shards) {
  std::vector<std::string> keys;
  for (const plan_shard& part : split_plan(spec.plan, shards)) {
    sweep_spec shard_spec;
    shard_spec.component = spec.component;
    shard_spec.options = spec.options;
    shard_spec.options.runs_per_target = part.plan.runs_per_target;
    shard_spec.plan = part.plan;
    shard_spec.seed = spec.seed;
    keys.push_back(result_store::format_key(shard_spec.store_key()));
  }
  return keys;
}

/// Kill the coordinator at `fault_plan`'s armed point (expected to die
/// with `crash_exit`), re-run it clean, and require the published front to
/// be bit-identical to the uninterrupted reference.
void run_crash_resume_case(const std::string& name,
                           const std::string& fault_plan, int crash_exit) {
  if (!sweep_binary() || !worker_binary()) {
    GTEST_SKIP() << "AXC_SWEEP_BIN / AXC_WORKER_BIN not set";
  }
  const sweep_spec spec = small_spec();
  const sweep_result reference = run_sweep_inprocess(spec);
  ASSERT_TRUE(reference.complete);
  const std::string reference_front = serialize_front(reference.front);

  const std::string root = fresh_dir(name);
  const std::string spec_path = root + "/sweep.spec";
  const std::string work_dir = root + "/work";
  const std::string store_dir = root + "/store";
  ASSERT_TRUE(spec.write_file(spec_path));

  // Life 1: dies at the armed point (_Exit models SIGKILL — no unwinding,
  // no flushes, workers taken down with it).
  const auto crashed =
      run_coordinator(spec_path, work_dir, store_dir, fault_plan);
  ASSERT_TRUE(crashed.has_value()) << "coordinator did not exit";
  EXPECT_FALSE(crashed->signalled);
  ASSERT_EQ(crashed->code, crash_exit)
      << "the armed fault point did not fire";

  // Life 2: clean re-run resumes from journal + checkpoints + store.
  const auto resumed = run_coordinator(spec_path, work_dir, store_dir, "");
  ASSERT_TRUE(resumed.has_value()) << "re-run coordinator did not exit";
  ASSERT_TRUE(resumed->success())
      << "re-run failed with exit " << resumed->code;

  // The published front is bit-identical to the uninterrupted run's.
  auto store = result_store::open(store_dir);
  ASSERT_TRUE(store.has_value());
  const std::string front_key = result_store::format_key(spec.store_key());
  const auto published = store->get("front", front_key);
  ASSERT_TRUE(published.has_value()) << "no front published";
  EXPECT_EQ(*published, reference_front);
  const auto parsed = parse_front(*published);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), reference.front.size());
  for (std::size_t i = 0; i < parsed->size(); ++i) {
    EXPECT_EQ((*parsed)[i], reference.front[i]) << "front point " << i;
  }

  // Both shard checkpoints were published too, framed as valid v2
  // session files.
  for (const std::string& key : shard_session_keys(spec, 2)) {
    const auto session = store->get("session", key);
    ASSERT_TRUE(session.has_value()) << "session " << key;
    EXPECT_EQ(session->rfind("axc-session v2", 0), 0u);
  }
  // And the component's compiled table (published alongside the front).
  if (const component_handle component = spec.make_component()) {
    const std::string table_key =
        result_store::format_key(component.fingerprint());
    const auto table = store->get("table", table_key);
    ASSERT_TRUE(table.has_value()) << "no table published";
    EXPECT_EQ(table->rfind("axc-table v1", 0), 0u);
  }
  EXPECT_EQ(store->entries().size(), 4u);
  EXPECT_EQ(store->scrub().quarantined, 0u);

  std::error_code ec;
  fs::remove_all(root, ec);
}

TEST(coordinator_resume, killed_after_spawn) {
  run_crash_resume_case("after-spawn", "coord-crash-after-spawn@1", 43);
}

TEST(coordinator_resume, killed_mid_merge) {
  run_crash_resume_case("mid-merge", "coord-crash-mid-merge@1", 43);
}

TEST(coordinator_resume, killed_mid_index_append) {
  run_crash_resume_case("mid-index-append",
                        "store-crash-mid-index-append@1", 44);
}

// The journal also guards against redundant work: a shard the first life
// saw complete is not respawned by the second life.
TEST(coordinator_resume, completed_shards_are_not_respawned) {
  if (!worker_binary()) GTEST_SKIP() << "AXC_WORKER_BIN not set";
  const sweep_spec spec = small_spec();
  const sweep_result reference = run_sweep_inprocess(spec);

  const std::string root = fresh_dir("no-respawn");
  shard_runner_config config;
  config.shards = 2;
  config.max_attempts = 3;
  config.work_dir = root + "/work";
  config.worker_binary = worker_binary();
  config.store_dir = root + "/store";

  const sweep_result first = run_sweep(spec, config);
  ASSERT_TRUE(first.complete);
  ASSERT_EQ(first.shards[0].attempts, 1u);

  // Re-running the finished sweep replays the journal: zero new spawns,
  // attempt counters preserved, same merge, same published bytes.
  std::size_t spawns = 0;
  shard_runner_config again = config;
  again.on_event = [&spawns](const shard_event& event) {
    spawns += event.kind == shard_event_kind::spawned ? 1 : 0;
  };
  const sweep_result second = run_sweep(spec, again);
  EXPECT_EQ(spawns, 0u);
  ASSERT_TRUE(second.complete);
  ASSERT_EQ(second.shards.size(), first.shards.size());
  for (std::size_t i = 0; i < first.shards.size(); ++i) {
    EXPECT_EQ(second.shards[i].attempts, first.shards[i].attempts);
    EXPECT_TRUE(second.shards[i].completed);
  }
  EXPECT_EQ(serialize_front(second.front), serialize_front(first.front));
  EXPECT_EQ(serialize_front(second.front),
            serialize_front(reference.front));

  std::error_code ec;
  fs::remove_all(root, ec);
}

}  // namespace
}  // namespace axc::core
