#include <gtest/gtest.h>

#include <sstream>

#include "data/digits.h"
#include "nn/models.h"
#include "nn/trainer.h"

namespace axc::nn {
namespace {

TEST(models, mlp_shapes) {
  network mlp = make_mlp(1);
  const tensor x(1, 28, 28);
  const tensor logits = mlp.forward(x);
  EXPECT_EQ(logits.size(), 10u);
  EXPECT_EQ(mlp.parameter_count(), 784u * 300 + 300 + 300 * 10 + 10);
}

TEST(models, lenet_shapes) {
  network lenet = make_lenet5(1);
  const tensor x(1, 32, 32);
  const tensor logits = lenet.forward(x);
  EXPECT_EQ(logits.size(), 10u);
}

TEST(models, lenet_channel_scaling) {
  network small = make_lenet5(1, 0.5);
  EXPECT_LT(small.parameter_count(), make_lenet5(1).parameter_count());
  const tensor x(1, 32, 32);
  EXPECT_EQ(small.forward(x).size(), 10u);
}

TEST(training, mlp_learns_synthetic_digits) {
  const auto train_set = data::make_mnist_like(1500, 100);
  const auto test_set = data::make_mnist_like(400, 200);
  const auto train_x = data::to_tensors(train_set);
  const auto test_x = data::to_tensors(test_set);

  network mlp = make_mlp(7, train_set.width * train_set.height, 64);
  const double before = accuracy(mlp, test_x, test_set.labels);

  train_config cfg;
  cfg.epochs = 4;
  cfg.learning_rate = 0.1f;
  cfg.seed = 5;
  train(mlp, train_x, train_set.labels, cfg);

  const double after = accuracy(mlp, test_x, test_set.labels);
  EXPECT_GT(after, 0.85) << "before=" << before << " after=" << after;
  EXPECT_GT(after, before);
}

TEST(training, loss_decreases_over_epochs) {
  const auto train_set = data::make_mnist_like(600, 300);
  const auto train_x = data::to_tensors(train_set);
  network mlp = make_mlp(9, train_set.width * train_set.height, 32);

  std::vector<double> losses;
  train_config cfg;
  cfg.epochs = 5;
  cfg.learning_rate = 0.08f;
  train(mlp, train_x, train_set.labels, cfg,
        [&](const epoch_stats& s) { losses.push_back(s.mean_loss); });
  ASSERT_EQ(losses.size(), 5u);
  EXPECT_LT(losses.back(), losses.front() * 0.6);
}

TEST(training, deterministic_given_seeds) {
  const auto train_set = data::make_mnist_like(200, 1);
  const auto train_x = data::to_tensors(train_set);
  const auto run = [&] {
    network mlp = make_mlp(3, train_set.width * train_set.height, 16);
    train_config cfg;
    cfg.epochs = 2;
    cfg.seed = 77;
    train(mlp, train_x, train_set.labels, cfg);
    return mlp.forward(train_x[0]);
  };
  const tensor a = run();
  const tensor b = run();
  EXPECT_EQ(a, b);
}

TEST(serialization, weights_round_trip) {
  network a = make_mlp(21, 64, 16, 10);
  std::ostringstream os;
  a.save_weights(os);

  network b = make_mlp(99, 64, 16, 10);  // different init
  const tensor x = tensor::flat(64, 0.3f);
  EXPECT_NE(a.forward(x), b.forward(x));

  std::istringstream is(os.str());
  ASSERT_TRUE(b.load_weights(is));
  EXPECT_EQ(a.forward(x), b.forward(x));
}

TEST(serialization, shape_mismatch_rejected) {
  network a = make_mlp(21, 64, 16, 10);
  std::ostringstream os;
  a.save_weights(os);
  network c = make_mlp(5, 64, 24, 10);  // different hidden width
  std::istringstream is(os.str());
  EXPECT_FALSE(c.load_weights(is));
}

TEST(serialization, corrupt_magic_rejected) {
  network a = make_mlp(21, 16, 8, 10);
  std::ostringstream os;
  a.save_weights(os);
  std::string blob = os.str();
  blob[0] ^= 0x5a;
  std::istringstream is(blob);
  EXPECT_FALSE(a.load_weights(is));
}

TEST(accuracy, max_samples_limits_evaluation) {
  const auto set = data::make_mnist_like(50, 4);
  const auto x = data::to_tensors(set);
  network mlp = make_mlp(1, set.width * set.height, 8);
  const double a = accuracy(mlp, x, set.labels, 10);
  EXPECT_GE(a, 0.0);
  EXPECT_LE(a, 1.0);
}

}  // namespace
}  // namespace axc::nn
