#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "support/thread_pool.h"

namespace axc {
namespace {

TEST(thread_pool, runs_every_submitted_task) {
  thread_pool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 200);
}

TEST(thread_pool, wait_idle_is_reusable_across_generations) {
  thread_pool pool(3);
  std::atomic<std::int64_t> sum{0};
  for (int generation = 0; generation < 20; ++generation) {
    for (int k = 0; k < 8; ++k) {
      pool.submit([&sum, k] { sum.fetch_add(k + 1); });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(sum.load(), 20 * 36);
}

TEST(thread_pool, wait_idle_with_no_tasks_returns_immediately) {
  thread_pool pool(2);
  pool.wait_idle();
  SUCCEED();
}

TEST(thread_pool, destructor_drains_queued_tasks) {
  std::atomic<int> counter{0};
  {
    thread_pool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(thread_pool, clear_pending_drops_only_queued_tasks) {
  // One worker pinned on a gate: everything behind it is still queued and
  // must be discardable, while the in-flight task completes normally.
  thread_pool pool(1);
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  pool.submit([&] {
    while (!release.load()) std::this_thread::yield();
    ran.fetch_add(1);
  });
  for (int i = 0; i < 50; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  // The gate task may or may not have been picked up yet (FIFO queue, so a
  // follower can never run before it): either all 51 are dropped, or the
  // gate is in flight and exactly the 50 followers are dropped.
  const std::size_t dropped = pool.clear_pending();
  release.store(true);
  pool.wait_idle();
  EXPECT_EQ(ran.load() + static_cast<int>(dropped), 51);
  EXPECT_GE(dropped, 50u);

  // The pool stays usable after a purge.
  std::atomic<int> after{0};
  pool.submit([&after] { after.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(after.load(), 1);
}

TEST(thread_pool, rethrows_task_exception_at_wait_idle) {
  thread_pool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&ran, i] {
      ran.fetch_add(1);
      if (i == 3) throw std::runtime_error("task 3 failed");
    });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The join happens before the rethrow: every sibling still ran.
  EXPECT_EQ(ran.load(), 10);
}

TEST(thread_pool, exception_is_cleared_and_pool_stays_usable) {
  thread_pool pool(2);
  pool.submit([] { throw std::logic_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::logic_error);
  // Cleared by the rethrow: the next batch is unaffected.
  pool.wait_idle();
  std::atomic<int> after{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&after] { after.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(after.load(), 20);
}

TEST(thread_pool, reports_one_failure_per_join) {
  // Several tasks throw in one batch; exactly one exception surfaces
  // (which one is scheduler-dependent), the rest are dropped.
  thread_pool pool(4);
  for (int i = 0; i < 8; ++i) {
    pool.submit([] { throw std::runtime_error("batch failure"); });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  pool.wait_idle();  // no second report
}

TEST(thread_pool, destructor_discards_unjoined_exception) {
  // A pool torn down with a captured exception must not terminate.
  thread_pool pool(1);
  pool.submit([] { throw std::runtime_error("never joined"); });
}

TEST(parallel_for, propagates_exceptions_after_full_fanout) {
  thread_pool pool(3);
  std::vector<std::atomic<int>> hits(64);
  EXPECT_THROW(parallel_for(pool, hits.size(),
                            [&hits](std::size_t i) {
                              hits[i].fetch_add(1);
                              if (i == 17) throw std::runtime_error("lane 17");
                            }),
               std::runtime_error);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(parallel_for, covers_every_index_exactly_once) {
  thread_pool pool(4);
  std::vector<std::atomic<int>> hits(257);
  parallel_for(pool, hits.size(),
               [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(parallel_for, results_slotted_by_index_are_deterministic) {
  thread_pool pool(3);
  std::vector<std::uint64_t> out(100);
  parallel_for(pool, out.size(), [&out](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

}  // namespace
}  // namespace axc
