#include <gtest/gtest.h>

#include "core/design_flow.h"
#include "core/wmed_approximator.h"
#include "metrics/error_metrics.h"
#include "mult/multipliers.h"
#include "tech/analysis.h"

namespace axc::core {
namespace {

using metrics::mult_spec;

approximation_config small_config(unsigned width, bool is_signed,
                                  const dist::pmf& d) {
  approximation_config cfg;
  cfg.spec = mult_spec{width, is_signed};
  cfg.distribution = d;
  cfg.iterations = 800;
  cfg.extra_columns = 24;
  cfg.rng_seed = 11;
  return cfg;
}

TEST(wmed_approximator, keeps_result_within_target) {
  const dist::pmf d = dist::pmf::half_normal(16, 4.0);
  const wmed_approximator approx(small_config(4, false, d));
  const circuit::netlist seed = mult::unsigned_multiplier(4);

  for (const double target : {0.0, 0.002, 0.01, 0.05}) {
    const evolved_design design = approx.approximate(seed, target);
    EXPECT_LE(design.wmed, target + 1e-12) << "target " << target;
    EXPECT_TRUE(design.netlist.validate().empty());
  }
}

TEST(wmed_approximator, zero_target_preserves_exactness) {
  const dist::pmf d = dist::pmf::uniform(16);
  const wmed_approximator approx(small_config(4, false, d));
  const evolved_design design =
      approx.approximate(mult::unsigned_multiplier(4), 0.0);
  EXPECT_DOUBLE_EQ(design.wmed, 0.0);
}

TEST(wmed_approximator, larger_budget_smaller_area) {
  // Monotonicity of the trade-off: a loose error budget must not produce a
  // larger circuit than a tight one (with shared seeds/iterations).
  const dist::pmf d = dist::pmf::half_normal(16, 4.0);
  approximation_config cfg = small_config(4, false, d);
  cfg.iterations = 2500;
  const wmed_approximator approx(cfg);
  const circuit::netlist seed = mult::unsigned_multiplier(4);

  const evolved_design tight = approx.approximate(seed, 0.0005);
  const evolved_design loose = approx.approximate(seed, 0.05);
  EXPECT_LE(loose.area_um2, tight.area_um2 + 1e-9);
  EXPECT_LT(loose.area_um2,
            tech::estimate_area(seed, tech::cell_library::nangate45_like()));
}

TEST(wmed_approximator, evolved_area_never_exceeds_seed) {
  const dist::pmf d = dist::pmf::uniform(16);
  const wmed_approximator approx(small_config(4, false, d));
  const circuit::netlist seed = mult::unsigned_multiplier(4);
  const double seed_area =
      tech::estimate_area(seed, tech::cell_library::nangate45_like());
  const evolved_design design = approx.approximate(seed, 0.01);
  EXPECT_LE(design.area_um2, seed_area + 1e-9);
}

TEST(wmed_approximator, deterministic_per_seed_and_run) {
  const dist::pmf d = dist::pmf::half_normal(16, 5.0);
  const wmed_approximator approx(small_config(4, false, d));
  const circuit::netlist seed = mult::unsigned_multiplier(4);
  const evolved_design a = approx.approximate(seed, 0.01, 3);
  const evolved_design b = approx.approximate(seed, 0.01, 3);
  EXPECT_EQ(a.netlist, b.netlist);
  EXPECT_EQ(a.wmed, b.wmed);
  const evolved_design c = approx.approximate(seed, 0.01, 4);
  EXPECT_TRUE(c.netlist != a.netlist || c.area_um2 != a.area_um2 ||
              c.wmed != a.wmed)
      << "different runs should explore differently";
}

TEST(wmed_approximator, sweep_covers_targets_and_runs) {
  const dist::pmf d = dist::pmf::uniform(16);
  approximation_config cfg = small_config(4, false, d);
  cfg.iterations = 200;
  cfg.runs_per_target = 2;
  const wmed_approximator approx(cfg);
  const std::vector<double> targets{0.001, 0.01};
  std::size_t observed = 0;
  const auto designs =
      approx.sweep(mult::unsigned_multiplier(4), targets,
                   [&](const evolved_design&) { ++observed; });
  EXPECT_EQ(designs.size(), 4u);
  EXPECT_EQ(observed, 4u);
  EXPECT_EQ(designs[0].target, 0.001);
  EXPECT_EQ(designs[3].target, 0.01);
}

TEST(wmed_approximator, default_distribution_derives_from_spec_width) {
  // An unset distribution must become uniform over the spec's operand
  // count — previously it defaulted to uniform(256) regardless of width,
  // silently mis-weighting (or aborting on) non-8-bit searches.
  for (const unsigned width : {4u, 6u, 8u}) {
    approximation_config cfg;
    cfg.spec = mult_spec{width, false};
    const wmed_approximator approx(cfg);
    EXPECT_EQ(approx.config().distribution.size(),
              std::size_t{1} << width);
  }
}

TEST(wmed_approximator, default_distribution_behaves_like_explicit_uniform) {
  approximation_config defaulted;
  defaulted.spec = mult_spec{4, false};
  defaulted.iterations = 300;
  defaulted.extra_columns = 12;
  defaulted.rng_seed = 5;

  approximation_config explicit_cfg = defaulted;
  explicit_cfg.distribution = dist::pmf::uniform(16);

  const circuit::netlist seed = mult::unsigned_multiplier(4);
  const evolved_design a =
      wmed_approximator(defaulted).approximate(seed, 0.01);
  const evolved_design b =
      wmed_approximator(explicit_cfg).approximate(seed, 0.01);
  EXPECT_EQ(a.netlist, b.netlist);
  EXPECT_EQ(a.wmed, b.wmed);
}

TEST(default_targets, fourteen_log_spaced) {
  const auto targets = default_wmed_targets();
  ASSERT_EQ(targets.size(), 14u);
  EXPECT_NEAR(targets.front(), 1e-6, 1e-9);
  EXPECT_NEAR(targets.back(), 0.1, 1e-6);
  for (std::size_t i = 1; i < targets.size(); ++i) {
    EXPECT_GT(targets[i], targets[i - 1]);
  }
}

TEST(characterize_multiplier, reports_positive_metrics) {
  const dist::pmf d = dist::pmf::uniform(256);
  const design_power p = characterize_multiplier(
      mult::unsigned_multiplier(8), mult_spec{8, false}, d,
      tech::cell_library::nangate45_like(), 1024);
  EXPECT_GT(p.area_um2, 0.0);
  EXPECT_GT(p.delay_ps, 0.0);
  EXPECT_GT(p.power_uw, 0.0);
  EXPECT_GT(p.pdp_fj, 0.0);
}

TEST(characterize_mac, mac_costs_more_than_multiplier) {
  const dist::pmf d = dist::pmf::signed_normal(256, 0, 30);
  const mult_spec spec{8, true};
  const circuit::netlist m = mult::signed_multiplier(8);
  const design_power mp = characterize_multiplier(
      m, spec, d, tech::cell_library::nangate45_like(), 1024);
  const design_power macp = characterize_mac(
      m, spec, d, 20, tech::cell_library::nangate45_like(), 1024);
  EXPECT_GT(macp.area_um2, mp.area_um2);
  EXPECT_GT(macp.power_uw, mp.power_uw);
}

TEST(design_flow, distribution_to_lut_end_to_end) {
  const dist::pmf d = dist::pmf::half_normal(16, 4.0);
  approximation_config cfg = small_config(4, false, d);
  cfg.iterations = 400;
  const std::vector<double> targets{0.001, 0.02};
  const auto results = design_for_distribution(
      d, cfg, targets, mult::unsigned_multiplier(4));
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    EXPECT_LE(r.design.wmed, r.design.target + 1e-12);
    EXPECT_EQ(r.lut.table().size(), 256u);
    EXPECT_GT(r.multiplier_power.area_um2, 0.0);
  }
  // The looser design is at most as expensive.
  EXPECT_LE(results[1].design.area_um2, results[0].design.area_um2 + 1e-9);
}

TEST(design_flow, samples_to_design) {
  // int8 samples concentrated near zero, as NN weights are.
  std::vector<std::int8_t> samples;
  rng gen(3);
  for (int i = 0; i < 5000; ++i) {
    samples.push_back(static_cast<std::int8_t>(
        std::clamp(gen.normal(0.0, 10.0), -127.0, 127.0)));
  }
  approximation_config cfg;
  cfg.spec = mult_spec{8, true};
  cfg.iterations = 150;  // smoke budget: 8-bit evaluations are heavier
  cfg.extra_columns = 32;
  const std::vector<double> targets{0.005};
  const auto results = design_for_samples(samples, cfg, targets,
                                          mult::signed_multiplier(8));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_LE(results[0].design.wmed, 0.005 + 1e-12);
}

}  // namespace
}  // namespace axc::core
