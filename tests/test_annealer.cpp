#include <gtest/gtest.h>

#include "cgp/annealer.h"
#include "circuit/netlist.h"
#include "test_util.h"

namespace axc::cgp {
namespace {

parameters toy_params() {
  parameters p;
  p.num_inputs = 4;
  p.num_outputs = 2;
  p.columns = 20;
  p.rows = 1;
  p.levels_back = 20;
  p.function_set.assign(circuit::default_function_set().begin(),
                        circuit::default_function_set().end());
  p.max_mutations = 3;
  p.lambda = 4;
  return p;
}

// Objective: output0 = a & b (feasible when exact), minimize active gates.
evolver::evaluate_fn toy_objective() {
  return [](const circuit::netlist& nl) -> evaluation {
    std::size_t wrong = 0;
    for (std::uint64_t v = 0; v < 16; ++v) {
      const std::uint64_t expected = (v & 1) & ((v >> 1) & 1);
      if ((test::naive_eval(nl, v) & 1) != expected) ++wrong;
    }
    evaluation e;
    e.error = static_cast<double>(wrong) / 16.0;
    e.feasible = wrong == 0;
    e.area = static_cast<double>(nl.active_gate_count());
    return e;
  };
}

TEST(annealer, cost_orders_like_eq1) {
  const annealer::options opts;
  const evaluation feasible{0.0, 10.0, true};
  const evaluation infeasible{0.01, 1.0, false};
  EXPECT_LT(annealer::cost(feasible, opts),
            annealer::cost(infeasible, opts));
  const evaluation worse_infeasible{0.5, 1.0, false};
  EXPECT_LT(annealer::cost(infeasible, opts),
            annealer::cost(worse_infeasible, opts));
}

TEST(annealer, solves_toy_problem) {
  rng gen(3);
  const genotype seed = genotype::random(toy_params(), gen);
  annealer::options opts;
  opts.iterations = 12000;
  const auto result = annealer::run(seed, toy_objective(), opts, gen);
  EXPECT_TRUE(result.best_eval.feasible);
  EXPECT_LE(result.best_eval.area, 3.0);
  EXPECT_EQ(result.evaluations, 12001u);
}

TEST(annealer, accepts_uphill_moves_early) {
  rng gen(5);
  const genotype seed = genotype::random(toy_params(), gen);
  annealer::options opts;
  opts.iterations = 5000;
  opts.initial_temperature_fraction = 0.5;  // hot start
  const auto result = annealer::run(seed, toy_objective(), opts, gen);
  EXPECT_GT(result.uphill_accepted, 0u);
}

TEST(annealer, best_so_far_never_regresses) {
  // The returned best must be at least as good as the seed.
  rng gen(7);
  const genotype seed = genotype::random(toy_params(), gen);
  const auto eval_fn = toy_objective();
  const evaluation seed_eval = eval_fn(seed.decode());
  annealer::options opts;
  opts.iterations = 1000;
  const auto result = annealer::run(seed, eval_fn, opts, gen);
  EXPECT_TRUE(not_worse(result.best_eval, seed_eval));
}

TEST(annealer, deterministic_for_seed) {
  const auto run_once = [] {
    rng gen(11);
    const genotype seed = genotype::random(toy_params(), gen);
    annealer::options opts;
    opts.iterations = 800;
    return annealer::run(seed, toy_objective(), opts, gen);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.accepted, b.accepted);
}

}  // namespace
}  // namespace axc::cgp
