#include <gtest/gtest.h>

#include <optional>

#include "data/digits.h"
#include "mult/lut.h"
#include "mult/multipliers.h"
#include "nn/finetune.h"
#include "nn/models.h"
#include "nn/trainer.h"

namespace axc::nn {
namespace {

class finetune_fixture : public ::testing::Test {
 protected:
  void SetUp() override {
    train_set_ = data::make_mnist_like(900, 7);
    test_set_ = data::make_mnist_like(250, 8);
    train_x_ = data::to_tensors(train_set_);
    test_x_ = data::to_tensors(test_set_);
    mlp_ = make_mlp(13, 28 * 28, 40);
    train_config cfg;
    cfg.epochs = 3;
    cfg.learning_rate = 0.1f;
    train(*mlp_, train_x_, train_set_.labels, cfg);
  }

  data::digit_dataset train_set_, test_set_;
  std::vector<tensor> train_x_, test_x_;
  std::optional<network> mlp_;
};

TEST_F(finetune_fixture, recovers_accuracy_with_approximate_multiplier) {
  quantized_network qnet(*mlp_,
                         std::span<const tensor>(train_x_).subspan(0, 64));
  // An aggressively approximate multiplier that visibly hurts accuracy but
  // leaves enough signal for the gradient to work with (deeper truncation
  // collapses the net to chance level, which no amount of tuning recovers).
  const mult::product_lut rough(mult::truncated_multiplier(8, 7, true),
                                metrics::mult_spec{8, true});

  const double degraded = qnet.accuracy(test_x_, test_set_.labels, rough);

  finetune_config cfg;
  cfg.epochs = 3;
  cfg.learning_rate = 0.02f;
  finetune(qnet, train_x_, train_set_.labels, rough, cfg);

  const double recovered = qnet.accuracy(test_x_, test_set_.labels, rough);
  EXPECT_GT(recovered, degraded + 0.02)
      << "degraded=" << degraded << " recovered=" << recovered;
}

TEST_F(finetune_fixture, epoch_callback_reports_loss) {
  quantized_network qnet(*mlp_,
                         std::span<const tensor>(train_x_).subspan(0, 32));
  const auto lut = mult::product_lut::exact(metrics::mult_spec{8, true});
  std::vector<double> losses;
  finetune_config cfg;
  cfg.epochs = 2;
  finetune(qnet, train_x_, train_set_.labels, lut, cfg,
           [&](const finetune_stats& s) { losses.push_back(s.mean_loss); });
  ASSERT_EQ(losses.size(), 2u);
  EXPECT_GT(losses[0], 0.0);
}

TEST_F(finetune_fixture, exact_lut_finetune_does_not_hurt) {
  quantized_network qnet(*mlp_,
                         std::span<const tensor>(train_x_).subspan(0, 64));
  const auto lut = mult::product_lut::exact(metrics::mult_spec{8, true});
  const double before = qnet.accuracy(test_x_, test_set_.labels, lut);
  finetune_config cfg;
  cfg.epochs = 2;
  cfg.learning_rate = 0.01f;
  finetune(qnet, train_x_, train_set_.labels, lut, cfg);
  const double after = qnet.accuracy(test_x_, test_set_.labels, lut);
  EXPECT_GT(after, before - 0.03);
}

TEST_F(finetune_fixture, deterministic_given_seed) {
  const auto run_once = [&] {
    network mlp = make_mlp(13, 28 * 28, 40);
    // Re-train identically (deterministic) then finetune.
    train_config tcfg;
    tcfg.epochs = 1;
    train(mlp, train_x_, train_set_.labels, tcfg);
    quantized_network qnet(mlp,
                           std::span<const tensor>(train_x_).subspan(0, 16));
    const mult::product_lut rough(mult::truncated_multiplier(8, 9, true),
                                  metrics::mult_spec{8, true});
    finetune_config cfg;
    cfg.epochs = 1;
    cfg.seed = 5;
    finetune(qnet, train_x_, train_set_.labels, rough, cfg);
    return qnet.accuracy(test_x_, test_set_.labels, rough, 100);
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace axc::nn
