#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/network.h"
#include "support/rng.h"

namespace axc::nn {
namespace {

tensor random_tensor(std::size_t c, std::size_t h, std::size_t w, rng& gen) {
  tensor t(c, h, w);
  for (auto& v : t.data()) v = static_cast<float>(gen.uniform(-1.0, 1.0));
  return t;
}

/// Scalar objective: weighted sum of the layer's output, with fixed random
/// weights — its analytic input gradient is checked against central
/// differences.
double objective(layer& l, const tensor& x, const tensor& coeffs) {
  auto& mutable_layer = l;
  const tensor y = mutable_layer.forward(x, /*training=*/false);
  double s = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    s += static_cast<double>(y[i]) * static_cast<double>(coeffs[i]);
  }
  return s;
}

void check_input_gradient(layer& l, const tensor& x, double tolerance) {
  rng gen(777);
  const tensor y = l.forward(x, /*training=*/true);
  tensor coeffs(y.channels(), y.height(), y.width());
  for (auto& v : coeffs.data()) v = static_cast<float>(gen.uniform(-1.0, 1.0));

  l.forward(x, /*training=*/true);
  const tensor analytic = l.backward(coeffs);

  constexpr double eps = 1e-3;
  tensor probe = x;
  for (std::size_t i = 0; i < x.size(); ++i) {
    probe.data()[i] = x[i] + static_cast<float>(eps);
    const double plus = objective(l, probe, coeffs);
    probe.data()[i] = x[i] - static_cast<float>(eps);
    const double minus = objective(l, probe, coeffs);
    probe.data()[i] = x[i];
    const double numeric = (plus - minus) / (2 * eps);
    EXPECT_NEAR(analytic[i], numeric, tolerance) << "input grad at " << i;
  }
}

void check_weight_gradient(layer& l, const tensor& x, double tolerance) {
  rng gen(778);
  const tensor y = l.forward(x, /*training=*/true);
  tensor coeffs(y.channels(), y.height(), y.width());
  for (auto& v : coeffs.data()) v = static_cast<float>(gen.uniform(-1.0, 1.0));

  l.zero_grads();
  l.forward(x, /*training=*/true);
  (void)l.backward(coeffs);

  const std::span<float> w = l.weights();
  // Snapshot analytic gradients (stored inside the layer; recompute via a
  // second accumulation run to read them indirectly through sgd_step is
  // fragile, so probe numerically against a fresh accumulation).
  std::vector<float> analytic;
  {
    // Recover dL/dw by exploiting sgd_step with lr=1, momentum=0:
    // w' = w - grad  =>  grad = w - w'.
    std::vector<float> before(w.begin(), w.end());
    l.sgd_step(1.0f, 0.0f);
    analytic.resize(w.size());
    for (std::size_t i = 0; i < w.size(); ++i) {
      analytic[i] = before[i] - w[i];
      w[i] = before[i];  // restore
    }
  }

  constexpr double eps = 1e-3;
  const std::size_t stride = std::max<std::size_t>(1, w.size() / 25);
  for (std::size_t i = 0; i < w.size(); i += stride) {
    const float original = w[i];
    w[i] = original + static_cast<float>(eps);
    const double plus = objective(l, x, coeffs);
    w[i] = original - static_cast<float>(eps);
    const double minus = objective(l, x, coeffs);
    w[i] = original;
    const double numeric = (plus - minus) / (2 * eps);
    EXPECT_NEAR(analytic[i], numeric, tolerance) << "weight grad at " << i;
  }
}

TEST(dense_layer, forward_known_values) {
  rng gen(1);
  dense d(2, 1, gen);
  d.weights()[0] = 2.0f;
  d.weights()[1] = -3.0f;
  d.bias()[0] = 0.5f;
  tensor x = tensor::flat(2);
  x[0] = 1.0f;
  x[1] = 2.0f;
  const tensor y = d.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 2.0f - 6.0f + 0.5f);
}

TEST(dense_layer, input_gradient_check) {
  rng gen(2);
  dense d(6, 4, gen);
  check_input_gradient(d, random_tensor(6, 1, 1, gen), 2e-3);
}

TEST(dense_layer, weight_gradient_check) {
  rng gen(3);
  dense d(5, 3, gen);
  check_weight_gradient(d, random_tensor(5, 1, 1, gen), 2e-3);
}

TEST(dense_layer, output_shape) {
  rng gen(4);
  dense d(12, 7, gen);
  const auto shape = d.output_shape({3, 2, 2});
  EXPECT_EQ(shape[0], 7u);
  EXPECT_EQ(shape[1], 1u);
  EXPECT_EQ(shape[2], 1u);
}

TEST(conv_layer, forward_known_values) {
  rng gen(5);
  conv2d c(1, 1, 2, gen);
  // Kernel [[1, 0], [0, -1]], bias 0.25.
  c.weights()[0] = 1.0f;
  c.weights()[1] = 0.0f;
  c.weights()[2] = 0.0f;
  c.weights()[3] = -1.0f;
  c.bias()[0] = 0.25f;
  tensor x(1, 3, 3);
  for (std::size_t i = 0; i < 9; ++i) x.data()[i] = static_cast<float>(i);
  const tensor y = c.forward(x, false);
  ASSERT_EQ(y.height(), 2u);
  ASSERT_EQ(y.width(), 2u);
  // y(0,0) = x(0,0) - x(1,1) + 0.25 = 0 - 4 + 0.25.
  EXPECT_FLOAT_EQ(y.at(0, 0, 0), -3.75f);
  EXPECT_FLOAT_EQ(y.at(0, 1, 1), 4.0f - 8.0f + 0.25f);
}

TEST(conv_layer, input_gradient_check) {
  rng gen(6);
  conv2d c(2, 3, 3, gen);
  check_input_gradient(c, random_tensor(2, 5, 5, gen), 5e-3);
}

TEST(conv_layer, weight_gradient_check) {
  rng gen(7);
  conv2d c(2, 2, 3, gen);
  check_weight_gradient(c, random_tensor(2, 5, 5, gen), 5e-3);
}

TEST(conv_layer, output_shape_valid_padding) {
  rng gen(8);
  conv2d c(3, 8, 5, gen);
  const auto shape = c.output_shape({3, 32, 32});
  EXPECT_EQ(shape[0], 8u);
  EXPECT_EQ(shape[1], 28u);
  EXPECT_EQ(shape[2], 28u);
}

TEST(relu_layer, clamps_negatives) {
  relu r;
  tensor x = tensor::flat(4);
  x[0] = -1.0f;
  x[1] = 2.0f;
  x[2] = 0.0f;
  x[3] = -0.5f;
  const tensor y = r.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 2.0f);
  EXPECT_FLOAT_EQ(y[2], 0.0f);
  EXPECT_FLOAT_EQ(y[3], 0.0f);
}

TEST(relu_layer, gradient_masks_inactive) {
  relu r;
  tensor x = tensor::flat(3);
  x[0] = -1.0f;
  x[1] = 3.0f;
  x[2] = -2.0f;
  r.forward(x, true);
  tensor g = tensor::flat(3, 1.0f);
  const tensor gx = r.backward(g);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx[1], 1.0f);
  EXPECT_FLOAT_EQ(gx[2], 0.0f);
}

TEST(maxpool_layer, picks_maximum) {
  maxpool2 p;
  tensor x(1, 2, 4);
  const float vals[] = {1, 5, 2, 3, 4, 0, 7, 6};
  for (std::size_t i = 0; i < 8; ++i) x.data()[i] = vals[i];
  const tensor y = p.forward(x, false);
  ASSERT_EQ(y.height(), 1u);
  ASSERT_EQ(y.width(), 2u);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0), 5.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1), 7.0f);
}

TEST(maxpool_layer, routes_gradient_to_argmax) {
  maxpool2 p;
  tensor x(1, 2, 2);
  x.data() = {1.0f, 9.0f, 3.0f, 2.0f};
  p.forward(x, true);
  tensor g(1, 1, 1);
  g.data()[0] = 5.0f;
  const tensor gx = p.backward(g);
  EXPECT_FLOAT_EQ(gx.data()[0], 0.0f);
  EXPECT_FLOAT_EQ(gx.data()[1], 5.0f);
  EXPECT_FLOAT_EQ(gx.data()[2], 0.0f);
}

TEST(softmax_xent, probabilities_and_loss) {
  tensor logits = tensor::flat(3);
  logits[0] = 1.0f;
  logits[1] = 1.0f;
  logits[2] = 1.0f;
  const loss_and_grad lg = softmax_cross_entropy(logits, 1);
  EXPECT_NEAR(lg.loss, std::log(3.0), 1e-6);
  EXPECT_NEAR(lg.grad[0], 1.0 / 3.0, 1e-6);
  EXPECT_NEAR(lg.grad[1], 1.0 / 3.0 - 1.0, 1e-6);
}

TEST(softmax_xent, gradient_sums_to_zero) {
  rng gen(9);
  tensor logits = tensor::flat(10);
  for (auto& v : logits.data()) v = static_cast<float>(gen.uniform(-3, 3));
  const loss_and_grad lg = softmax_cross_entropy(logits, 4);
  double s = 0.0;
  for (std::size_t i = 0; i < 10; ++i) s += lg.grad[i];
  EXPECT_NEAR(s, 0.0, 1e-6);
}

TEST(softmax_xent, numerically_stable_for_large_logits) {
  tensor logits = tensor::flat(2);
  logits[0] = 1000.0f;
  logits[1] = -1000.0f;
  const loss_and_grad lg = softmax_cross_entropy(logits, 0);
  EXPECT_NEAR(lg.loss, 0.0, 1e-6);
  EXPECT_TRUE(std::isfinite(lg.grad[1]));
}

TEST(network, end_to_end_gradient_check) {
  // Small conv -> relu -> pool -> dense stack; verify d(loss)/d(input) by
  // finite differences through the full network.
  rng gen(10);
  network net;
  net.add(std::make_unique<conv2d>(1, 2, 3, gen));
  net.add(std::make_unique<relu>());
  net.add(std::make_unique<maxpool2>());
  net.add(std::make_unique<dense>(2 * 3 * 3, 4, gen));

  tensor x = random_tensor(1, 8, 8, gen);
  const int label = 2;

  // Analytic input gradient: chain backward all the way.
  const tensor logits = net.forward(x, true);
  const loss_and_grad lg = softmax_cross_entropy(logits, label);
  net.zero_grads();
  tensor g = lg.grad;
  // network::backward discards the input gradient, so chain manually.
  for (std::size_t i = net.layer_count(); i-- > 0;) {
    g = net.at(i).backward(g);
  }

  constexpr double eps = 1e-3;
  for (std::size_t i = 0; i < x.size(); i += 7) {
    const float original = x.data()[i];
    x.data()[i] = original + static_cast<float>(eps);
    const double plus =
        softmax_cross_entropy(net.forward(x, false), label).loss;
    x.data()[i] = original - static_cast<float>(eps);
    const double minus =
        softmax_cross_entropy(net.forward(x, false), label).loss;
    x.data()[i] = original;
    EXPECT_NEAR(g.data()[i], (plus - minus) / (2 * eps), 5e-3)
        << "input " << i;
  }
}

}  // namespace
}  // namespace axc::nn
