#include <gtest/gtest.h>

#include "dist/pmf.h"
#include "metrics/error_metrics.h"
#include "metrics/wmed_evaluator.h"
#include "mult/multipliers.h"
#include "support/rng.h"

namespace axc::metrics {
namespace {

struct eval_case {
  unsigned width;
  bool is_signed;
};

class evaluator_param : public ::testing::TestWithParam<eval_case> {};

TEST_P(evaluator_param, matches_reference_wmed) {
  const mult_spec spec{GetParam().width, GetParam().is_signed};
  const dist::pmf d = dist::pmf::half_normal(spec.operand_count(),
                                             spec.operand_count() / 4.0);
  wmed_evaluator evaluator(spec, d);
  const auto exact = exact_product_table(spec);

  // Exact, truncated and broken-array multipliers of this width.
  const circuit::netlist exact_nl =
      spec.is_signed ? mult::signed_multiplier(spec.width)
                     : mult::unsigned_multiplier(spec.width);
  for (const circuit::netlist& nl :
       {exact_nl, mult::truncated_multiplier(spec.width, spec.width / 2,
                                             spec.is_signed),
        mult::broken_array_multiplier(spec.width, 1, spec.width / 2,
                                      spec.is_signed)}) {
    const auto table = product_table(nl, spec);
    const double reference = wmed(exact, table, spec, d);
    EXPECT_NEAR(evaluator.evaluate(nl), reference, 1e-12);
  }
}

TEST_P(evaluator_param, exact_multiplier_scores_zero) {
  const mult_spec spec{GetParam().width, GetParam().is_signed};
  const dist::pmf d = dist::pmf::uniform(spec.operand_count());
  wmed_evaluator evaluator(spec, d);
  const circuit::netlist nl = spec.is_signed
                                  ? mult::signed_multiplier(spec.width)
                                  : mult::unsigned_multiplier(spec.width);
  EXPECT_DOUBLE_EQ(evaluator.evaluate(nl), 0.0);
}

INSTANTIATE_TEST_SUITE_P(specs, evaluator_param,
                         ::testing::Values(eval_case{3, false},
                                           eval_case{4, false},
                                           eval_case{4, true},
                                           eval_case{6, false},
                                           eval_case{8, false},
                                           eval_case{8, true}));

TEST(wmed_evaluator, early_abort_lower_bounds_true_error) {
  const mult_spec spec{8, false};
  const dist::pmf d = dist::pmf::uniform(256);
  wmed_evaluator evaluator(spec, d);
  const circuit::netlist bad = mult::truncated_multiplier(8, 12);

  const double full = evaluator.evaluate(bad);
  const double aborted = evaluator.evaluate(bad, full / 100.0);
  EXPECT_GT(aborted, full / 100.0);  // proves infeasibility vs the bound
  EXPECT_LE(aborted, full + 1e-12);  // partial sums never exceed the total
}

TEST(wmed_evaluator, abort_threshold_above_error_changes_nothing) {
  const mult_spec spec{6, false};
  const dist::pmf d = dist::pmf::half_normal(64, 10.0);
  wmed_evaluator evaluator(spec, d);
  const circuit::netlist nl = mult::truncated_multiplier(6, 3);
  const double full = evaluator.evaluate(nl);
  EXPECT_DOUBLE_EQ(evaluator.evaluate(nl, full * 2 + 1e-6), full);
}

TEST(wmed_evaluator, reusable_across_candidates) {
  const mult_spec spec{6, false};
  const dist::pmf d = dist::pmf::uniform(64);
  wmed_evaluator evaluator(spec, d);
  const double e1 = evaluator.evaluate(mult::truncated_multiplier(6, 2));
  const double e2 = evaluator.evaluate(mult::truncated_multiplier(6, 6));
  const double e1_again =
      evaluator.evaluate(mult::truncated_multiplier(6, 2));
  EXPECT_DOUBLE_EQ(e1, e1_again);
  EXPECT_LT(e1, e2);  // deeper truncation, larger error
}

TEST(wmed_evaluator, distribution_weighting_matters) {
  // A multiplier exact for small A but broken for large A must score better
  // under a small-A-heavy distribution than under uniform.
  const mult_spec spec{8, false};
  const circuit::netlist nl = mult::broken_array_multiplier(8, 2, 0);

  wmed_evaluator uniform_eval(spec, dist::pmf::uniform(256));
  wmed_evaluator skewed_eval(spec, dist::pmf::half_normal(256, 20.0));
  // BAM with hbl=2 drops operand-B LSB rows; both see errors, but the
  // comparison direction with operand-A weighting is deterministic: the
  // error |a * (b mod 4 dropped)| grows with a, so small-a weighting helps.
  EXPECT_LT(skewed_eval.evaluate(nl), uniform_eval.evaluate(nl));
}

}  // namespace
}  // namespace axc::metrics
