#include <gtest/gtest.h>

#include "metrics/adder_metrics.h"
#include "mult/adders.h"
#include "mult/approx_adders.h"

namespace axc::mult {
namespace {

using metrics::adder_spec;

std::int64_t reference_loa(std::uint64_t a, std::uint64_t b, unsigned w,
                           unsigned k) {
  const std::uint64_t mask = (std::uint64_t{1} << k) - 1;
  const std::uint64_t low = (a | b) & mask;
  const std::uint64_t carry =
      k > 0 ? ((a >> (k - 1)) & (b >> (k - 1)) & 1) : 0;
  const std::uint64_t high = (a >> k) + (b >> k) + carry;
  return static_cast<std::int64_t>((high << k) | low);
}

class loa_param : public ::testing::TestWithParam<unsigned> {};

TEST_P(loa_param, matches_behavioural_model) {
  const unsigned w = 6, k = GetParam();
  const circuit::netlist nl = lower_or_adder(w, k);
  const auto table = metrics::sum_table(nl, adder_spec{w});
  for (std::uint64_t b = 0; b < 64; ++b) {
    for (std::uint64_t a = 0; a < 64; ++a) {
      EXPECT_EQ(table[(b << w) | a], reference_loa(a, b, w, k))
          << "k=" << k << " a=" << a << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(approx_bits, loa_param,
                         ::testing::Values(0, 1, 2, 3, 4, 6));

TEST(lower_or_adder, zero_approx_bits_is_exact) {
  const adder_spec spec{8};
  EXPECT_EQ(metrics::sum_table(lower_or_adder(8, 0), spec),
            metrics::exact_sum_table(spec));
}

TEST(segmented_adder, full_segment_is_exact) {
  const adder_spec spec{8};
  EXPECT_EQ(metrics::sum_table(segmented_adder(8, 8), spec),
            metrics::exact_sum_table(spec));
}

TEST(segmented_adder, drops_inter_segment_carries) {
  const unsigned w = 6, seg = 2;
  const circuit::netlist nl = segmented_adder(w, seg);
  const auto table = metrics::sum_table(nl, adder_spec{w});
  for (std::uint64_t b = 0; b < 64; ++b) {
    for (std::uint64_t a = 0; a < 64; ++a) {
      std::uint64_t expected = 0;
      std::uint64_t last_carry = 0;
      for (unsigned base = 0; base < w; base += seg) {
        const std::uint64_t am = (a >> base) & 3;
        const std::uint64_t bm = (b >> base) & 3;
        expected |= ((am + bm) & 3) << base;
        last_carry = (am + bm) >> 2;
      }
      expected |= last_carry << w;
      EXPECT_EQ(static_cast<std::uint64_t>(table[(b << w) | a]), expected);
    }
  }
}

TEST(truncated_adder, matches_model) {
  const unsigned w = 6, k = 3;
  const circuit::netlist nl = truncated_adder(w, k);
  const auto table = metrics::sum_table(nl, adder_spec{w});
  for (std::uint64_t b = 0; b < 64; ++b) {
    for (std::uint64_t a = 0; a < 64; ++a) {
      const std::uint64_t expected = ((a >> k) + (b >> k)) << k;
      EXPECT_EQ(static_cast<std::uint64_t>(table[(b << w) | a]), expected);
    }
  }
}

TEST(adder_wmed, exact_adder_scores_zero) {
  const adder_spec spec{6};
  const auto exact = metrics::exact_sum_table(spec);
  const auto sums = metrics::sum_table(ripple_adder(6), spec);
  EXPECT_DOUBLE_EQ(
      metrics::adder_wmed(exact, sums, spec, dist::pmf::uniform(64)), 0.0);
}

TEST(adder_wmed, bounded_and_monotone_in_approximation) {
  const adder_spec spec{8};
  const auto exact = metrics::exact_sum_table(spec);
  const dist::pmf d = dist::pmf::half_normal(256, 40.0);
  double previous = -1.0;
  for (const unsigned k : {0u, 2u, 4u, 6u}) {
    const auto sums = metrics::sum_table(lower_or_adder(8, k), spec);
    const double e = metrics::adder_wmed(exact, sums, spec, d);
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, 1.0);
    EXPECT_GT(e, previous);
    previous = e;
  }
}

TEST(adder_wmed, distribution_weighting_matters) {
  // LOA's error depends on low-bit patterns of *both* operands; weighting
  // operand A toward zero (whose low bits are zero) reduces WMED.
  const adder_spec spec{8};
  const auto exact = metrics::exact_sum_table(spec);
  const auto sums = metrics::sum_table(lower_or_adder(8, 4), spec);
  std::vector<double> zero_heavy(256, 0.01);
  zero_heavy[0] = 10.0;
  const double skew = metrics::adder_wmed(
      exact, sums, spec, dist::pmf::from_weights(zero_heavy));
  const double uniform =
      metrics::adder_wmed(exact, sums, spec, dist::pmf::uniform(256));
  EXPECT_LT(skew, uniform);
}

TEST(approx_adders, cost_ordering) {
  // More approximation, fewer gates.
  EXPECT_LT(lower_or_adder(8, 4).active_gate_count(),
            lower_or_adder(8, 1).active_gate_count());
  EXPECT_LT(segmented_adder(8, 2).active_gate_count(),
            segmented_adder(8, 8).active_gate_count());
  EXPECT_LT(truncated_adder(8, 4).active_gate_count(),
            truncated_adder(8, 0).active_gate_count());
}

}  // namespace
}  // namespace axc::mult
