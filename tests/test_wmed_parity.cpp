// Parity of the rebuilt WMED fast path (operand-major bit-plane sweep,
// cone-restricted wide-lane simulation, distribution-ordered blocks)
// against the straightforward reference implementations.
#include <gtest/gtest.h>

#include <vector>

#include "cgp/genotype.h"
#include "dist/pmf.h"
#include "metrics/error_metrics.h"
#include "metrics/wmed_evaluator.h"
#include "mult/multipliers.h"
#include "support/rng.h"

namespace axc::metrics {
namespace {

std::vector<dist::pmf> test_distributions(std::size_t n) {
  rng gen(13);
  std::vector<double> ragged(n);
  for (auto& w : ragged) w = gen.uniform01() * gen.uniform01();
  return {dist::pmf::uniform(n), dist::pmf::half_normal(n, n / 4.0),
          dist::pmf::normal(n, n / 2.0, n / 8.0),
          dist::pmf::signed_normal(n, 0.0, n / 6.0),
          dist::pmf::from_weights(ragged)};
}

TEST(wmed_fast_path, matches_reference_path_across_distributions) {
  for (const bool is_signed : {false, true}) {
    const mult_spec spec{8, is_signed};
    const circuit::netlist nl = mult::broken_array_multiplier(8, 2, 3,
                                                              is_signed);
    for (const dist::pmf& d : test_distributions(256)) {
      wmed_evaluator evaluator(spec, d);
      const double fast = evaluator.evaluate(nl);
      const double reference = evaluator.evaluate_reference(nl);
      EXPECT_NEAR(fast, reference, 1e-13) << "signed=" << is_signed;
    }
  }
}

TEST(wmed_fast_path, matches_table_based_wmed_on_mutated_candidates) {
  const mult_spec spec{8, false};
  const dist::pmf d = dist::pmf::half_normal(256, 40.0);
  wmed_evaluator evaluator(spec, d);
  const auto exact = exact_product_table(spec);

  cgp::parameters params;
  params.num_inputs = 16;
  params.num_outputs = 16;
  const circuit::netlist seed = mult::unsigned_multiplier(8);
  params.columns = seed.num_gates() + 40;
  params.rows = 1;
  params.levels_back = params.columns;
  params.function_set.assign(circuit::default_function_set().begin(),
                             circuit::default_function_set().end());
  rng gen(7);
  cgp::genotype g = cgp::genotype::from_netlist(params, seed, gen);

  for (int step = 0; step < 6; ++step) {
    const circuit::netlist nl = g.decode_cone();
    const auto table = product_table(nl, spec);
    const double reference = wmed(exact, table, spec, d);
    EXPECT_NEAR(evaluator.evaluate(nl), reference, 1e-12) << "step " << step;
    for (int m = 0; m < 5; ++m) g.mutate(gen);
  }
}

TEST(wmed_fast_path, reordered_sweep_value_is_visit_order_independent) {
  // The completed sweep reduces exact per-operand integer error totals in
  // fixed operand order, so two distributions inducing *different* block
  // orders must score a candidate identically up to their weights — checked
  // here by comparing against the order-free table-based reference, and by
  // exact reproducibility across interleaved evaluations.
  const mult_spec spec{8, false};
  const circuit::netlist nl = mult::truncated_multiplier(8, 5);

  wmed_evaluator skewed(spec, dist::pmf::half_normal(256, 20.0));
  const double first = skewed.evaluate(nl);
  // Interleave other candidates to perturb any reused internal state.
  (void)skewed.evaluate(mult::truncated_multiplier(8, 2));
  (void)skewed.evaluate(mult::unsigned_multiplier(8));
  EXPECT_EQ(skewed.evaluate(nl), first);  // bit-identical, not just close

  // Same candidate under uniform weights (natural visit order) agrees with
  // the table-based definition, as does the skewed evaluator.
  const auto exact = exact_product_table(spec);
  const auto table = product_table(nl, spec);
  EXPECT_NEAR(first,
              wmed(exact, table, spec, dist::pmf::half_normal(256, 20.0)),
              1e-12);
  wmed_evaluator uniform_eval(spec, dist::pmf::uniform(256));
  EXPECT_NEAR(uniform_eval.evaluate(nl),
              wmed(exact, table, spec, dist::pmf::uniform(256)), 1e-12);
}

TEST(wmed_fast_path, abort_classification_agrees_with_reference) {
  const mult_spec spec{8, false};
  const dist::pmf d = dist::pmf::half_normal(256, 64.0);
  wmed_evaluator evaluator(spec, d);

  for (unsigned dropped : {2u, 5u, 8u, 11u}) {
    const circuit::netlist nl = mult::truncated_multiplier(8, dropped);
    const double full = evaluator.evaluate(nl);
    for (const double bound : {full * 0.01, full * 0.5, full * 2.0 + 1e-9}) {
      const double fast = evaluator.evaluate(nl, bound);
      const double reference = evaluator.evaluate_reference(nl, bound);
      // Both paths must classify feasibility identically...
      EXPECT_EQ(fast > bound, reference > bound)
          << "dropped=" << dropped << " bound=" << bound;
      // ...and any partial value stays a lower bound of the true error.
      EXPECT_LE(fast, full + 1e-12);
    }
  }
}

TEST(wmed_fast_path, distribution_order_visits_heavy_mass_first) {
  // An evaluator weighted towards large operands must abort a candidate
  // that is only broken for large operands sooner than the natural-order
  // reference path classifies it — observable through identical decisions
  // here, and through the recorded perf trajectory (BENCH_micro.json).
  const mult_spec spec{8, false};
  std::vector<double> top_heavy(256, 1e-6);
  for (std::size_t a = 192; a < 256; ++a) top_heavy[a] = 1.0;
  wmed_evaluator evaluator(spec, dist::pmf::from_weights(top_heavy));

  const circuit::netlist bam = mult::broken_array_multiplier(8, 3, 0);
  const double full = evaluator.evaluate(bam);
  const double aborted = evaluator.evaluate(bam, full / 1000.0);
  EXPECT_GT(aborted, full / 1000.0);
  EXPECT_LE(aborted, full + 1e-12);
}

TEST(wmed_fast_path, small_widths_share_the_reference_path) {
  // Widths below the in-word operand threshold fall back to the reference
  // sweep; both entry points must agree exactly.
  for (const unsigned width : {3u, 4u, 5u}) {
    const mult_spec spec{width, false};
    const dist::pmf d =
        dist::pmf::half_normal(spec.operand_count(), spec.operand_count() / 3.0);
    wmed_evaluator evaluator(spec, d);
    const circuit::netlist nl = mult::truncated_multiplier(width, width / 2);
    EXPECT_DOUBLE_EQ(evaluator.evaluate(nl), evaluator.evaluate_reference(nl));
  }
}

}  // namespace
}  // namespace axc::metrics
