// Sharded sweep runtime tests: plan splitting, spec serialization, and the
// PR's acceptance property — a sweep interrupted by injected worker
// crashes, a truncated autosave and enforced deadlines, then retried and
// merged, reproduces the uninterrupted session's designs and Pareto front
// bit-exactly, for both component classes and at any job_threads setting.
//
// Process-level cases launch the real tools/axc_worker binary; ctest
// points AXC_WORKER_BIN at it (see CMakeLists), and the cases skip when
// the variable is unset (e.g. running the test binary by hand).
#include <gtest/gtest.h>

#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "core/shard_runner.h"
#include "dist/pmf.h"
#include "mult/adders.h"
#include "mult/multipliers.h"

namespace axc::core {
namespace {

sweep_spec mult_spec_small() {
  sweep_spec spec;
  spec.component = "mult";
  spec.options.width = 4;
  spec.options.distribution = dist::pmf::half_normal(16, 4.0);
  spec.options.iterations = 150;
  spec.options.extra_columns = 16;
  spec.options.rng_seed = 13;
  spec.plan.targets = {0.002, 0.02};
  spec.plan.runs_per_target = 2;
  spec.options.runs_per_target = 2;
  spec.seed = mult::unsigned_multiplier(4);
  return spec;
}

sweep_spec adder_spec_small() {
  sweep_spec spec;
  spec.component = "adder";
  spec.options.width = 6;
  spec.options.distribution = dist::pmf::half_normal(64, 16.0);
  spec.options.iterations = 120;
  spec.options.extra_columns = 12;
  spec.options.rng_seed = 7;
  spec.plan.targets = {0.001, 0.01};
  spec.plan.runs_per_target = 2;
  spec.options.runs_per_target = 2;
  spec.seed = mult::ripple_adder(6);
  return spec;
}

const char* worker_binary() { return std::getenv("AXC_WORKER_BIN"); }

std::string fresh_work_dir(const char* name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       (std::string("axc-shard-test-") + name + "-" +
        std::to_string(::getpid())))
          .string();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

void expect_same_result(const sweep_result& a, const sweep_result& b) {
  ASSERT_EQ(a.designs.size(), b.designs.size());
  for (std::size_t i = 0; i < a.designs.size(); ++i) {
    EXPECT_EQ(a.designs[i].netlist, b.designs[i].netlist) << "design " << i;
    EXPECT_EQ(a.designs[i].wmed, b.designs[i].wmed) << "design " << i;
    EXPECT_EQ(a.designs[i].area_um2, b.designs[i].area_um2) << "design " << i;
    EXPECT_EQ(a.designs[i].target, b.designs[i].target) << "design " << i;
    EXPECT_EQ(a.designs[i].run_index, b.designs[i].run_index)
        << "design " << i;
    EXPECT_EQ(a.designs[i].evaluations, b.designs[i].evaluations)
        << "design " << i;
  }
  ASSERT_EQ(a.front.size(), b.front.size());
  for (std::size_t i = 0; i < a.front.size(); ++i) {
    EXPECT_EQ(a.front[i], b.front[i]) << "front point " << i;
  }
}

TEST(split_plan, contiguous_target_major_with_exact_offsets) {
  sweep_plan plan;
  plan.targets = {0.1, 0.2, 0.3, 0.4, 0.5};
  plan.runs_per_target = 3;
  const auto parts = split_plan(plan, 2);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].plan.targets, (std::vector<double>{0.1, 0.2, 0.3}));
  EXPECT_EQ(parts[0].job_offset, 0u);
  EXPECT_EQ(parts[1].plan.targets, (std::vector<double>{0.4, 0.5}));
  EXPECT_EQ(parts[1].job_offset, 9u);
  EXPECT_EQ(parts[0].plan.runs_per_target, 3u);
}

TEST(split_plan, clamps_shards_to_target_count) {
  sweep_plan plan;
  plan.targets = {0.1, 0.2};
  plan.runs_per_target = 1;
  EXPECT_EQ(split_plan(plan, 8).size(), 2u);
  EXPECT_EQ(split_plan(plan, 0).size(), 1u);
  EXPECT_TRUE(split_plan(sweep_plan{}, 4).empty());
}

TEST(split_plan, more_shards_than_jobs_gives_one_target_each) {
  // 3 targets x 1 run = 3 jobs, 8 requested shards: one shard per target,
  // never an empty shard.
  sweep_plan plan;
  plan.targets = {0.1, 0.2, 0.3};
  plan.runs_per_target = 1;
  const auto parts = split_plan(plan, 8);
  ASSERT_EQ(parts.size(), 3u);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    EXPECT_EQ(parts[i].plan.targets,
              (std::vector<double>{plan.targets[i]}));
    EXPECT_EQ(parts[i].plan.job_count(), 1u);
    EXPECT_EQ(parts[i].job_offset, i);
  }
}

TEST(split_plan, empty_plan_yields_no_shards) {
  EXPECT_TRUE(split_plan(sweep_plan{}, 1).empty());
  EXPECT_TRUE(split_plan(sweep_plan{}, 0).empty());
  // Targets without repetitions is still an empty plan job-wise, but the
  // target split itself is well-defined (shards of zero jobs each).
  sweep_plan zero_runs;
  zero_runs.targets = {0.1, 0.2};
  zero_runs.runs_per_target = 0;
  const auto parts = split_plan(zero_runs, 2);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].plan.job_count(), 0u);
  EXPECT_EQ(parts[1].job_offset, 0u);
}

TEST(split_plan, single_job_plan_is_one_full_shard) {
  sweep_plan plan;
  plan.targets = {0.25};
  plan.runs_per_target = 1;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{7}}) {
    const auto parts = split_plan(plan, shards);
    ASSERT_EQ(parts.size(), 1u) << shards;
    EXPECT_EQ(parts[0].plan.targets, plan.targets);
    EXPECT_EQ(parts[0].plan.job_count(), 1u);
    EXPECT_EQ(parts[0].job_offset, 0u);
  }
}

TEST(split_plan, offsets_partition_the_full_plan) {
  sweep_plan plan;
  plan.targets = {1, 2, 3, 4, 5, 6, 7};
  plan.runs_per_target = 2;
  const auto parts = split_plan(plan, 3);
  std::size_t next = 0;
  std::size_t targets = 0;
  for (const auto& part : parts) {
    EXPECT_EQ(part.job_offset, next);
    next += part.plan.job_count();
    targets += part.plan.targets.size();
  }
  EXPECT_EQ(next, plan.job_count());
  EXPECT_EQ(targets, plan.targets.size());
}

TEST(sweep_spec, round_trips_bit_exactly) {
  const sweep_spec original = mult_spec_small();
  std::ostringstream os;
  original.write(os);
  std::istringstream is(os.str());
  const auto restored = sweep_spec::read(is);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->component, original.component);
  EXPECT_EQ(restored->plan.targets, original.plan.targets);
  EXPECT_EQ(restored->plan.runs_per_target, original.plan.runs_per_target);
  EXPECT_EQ(restored->seed, original.seed);
  // The distribution must rebuild mass-for-mass (no renormalization
  // drift): the component fingerprint — and thus checkpoint
  // compatibility between coordinator and workers — depends on it.
  EXPECT_EQ(restored->options.distribution, original.options.distribution);
  EXPECT_EQ(restored->make_component().fingerprint(),
            original.make_component().fingerprint());
}

TEST(sweep_spec, second_generation_round_trip_is_stable) {
  // write(read(write(x))) == write(read(...)): the format is a fixpoint,
  // so shard specs re-derived from parsed specs stay compatible.
  const sweep_spec original = adder_spec_small();
  std::ostringstream first;
  original.write(first);
  std::istringstream is1(first.str());
  const auto once = sweep_spec::read(is1);
  ASSERT_TRUE(once.has_value());
  std::ostringstream second;
  once->write(second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(sweep_spec, adversarial_doubles_round_trip_with_stable_fingerprint) {
  // Distribution masses and plan targets at the edges of double's range:
  // denormals, the denormal/normal boundary, huge magnitudes, and classic
  // shortest-decimal stress cases.  The %.17g text format must rebuild
  // every one bit-exactly — the component fingerprint (and thus
  // coordinator/worker checkpoint compatibility and the result-store key)
  // hashes the raw bits.
  sweep_spec original = mult_spec_small();
  original.options.distribution = dist::pmf::from_masses(std::vector<double>{
      5e-324, 6.3e-322, 2.2250738585072014e-308, 2.2250738585072009e-308,
      1.7976931348623157e308, 0.1, 1.0 / 3.0, 1e-17, 123456789.12345679,
      0.0, 7.2, 1e-300, 2.5e-150, 42.0, 1.0000000000000002, 3.14159});
  original.plan.targets = {5e-324, 1.0 / 3.0, 0.1, 2.2250738585072014e-308};
  original.options.runs_per_target = original.plan.runs_per_target;

  std::ostringstream os;
  original.write(os);
  std::istringstream is(os.str());
  const auto restored = sweep_spec::read(is);
  ASSERT_TRUE(restored.has_value());

  const auto original_masses = original.options.distribution.masses();
  const auto restored_masses = restored->options.distribution.masses();
  ASSERT_EQ(restored_masses.size(), original_masses.size());
  for (std::size_t i = 0; i < original_masses.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(restored_masses[i]),
              std::bit_cast<std::uint64_t>(original_masses[i]))
        << "mass " << i;
  }
  ASSERT_EQ(restored->plan.targets.size(), original.plan.targets.size());
  for (std::size_t i = 0; i < original.plan.targets.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(restored->plan.targets[i]),
              std::bit_cast<std::uint64_t>(original.plan.targets[i]))
        << "target " << i;
  }
  EXPECT_EQ(restored->make_component().fingerprint(),
            original.make_component().fingerprint());
  EXPECT_EQ(restored->store_key(), original.store_key());

  // Fixpoint even on the adversarial values: a shard spec re-derived from
  // this parse serializes to the identical bytes.
  std::ostringstream second;
  restored->write(second);
  EXPECT_EQ(second.str(), os.str());
}

TEST(sweep_spec, store_key_separates_plans_sharing_a_component) {
  const sweep_spec base = mult_spec_small();
  ASSERT_NE(base.store_key(), 0u);
  sweep_spec more_runs = base;
  more_runs.plan.runs_per_target += 1;
  EXPECT_NE(more_runs.store_key(), base.store_key());
  sweep_spec other_targets = base;
  other_targets.plan.targets.push_back(0.1);
  EXPECT_NE(other_targets.store_key(), base.store_key());
  sweep_spec unknown = base;
  unknown.component = "no-such-component";
  EXPECT_EQ(unknown.store_key(), 0u);
}

TEST(sweep_spec, read_rejects_damage) {
  const sweep_spec original = mult_spec_small();
  std::ostringstream os;
  original.write(os);
  const std::string text = os.str();
  const std::size_t stride = text.size() / 16 + 1;
  for (std::size_t cut = 0; cut + 1 < text.size(); cut += stride) {
    std::istringstream is(text.substr(0, cut));
    EXPECT_FALSE(sweep_spec::read(is).has_value()) << "cut " << cut;
  }
  std::istringstream garbage("axc-sweep-spec v9\n");
  EXPECT_FALSE(sweep_spec::read(garbage).has_value());
}

TEST(run_sweep_inprocess, matches_plain_session_at_any_job_threads) {
  const sweep_spec spec = mult_spec_small();
  const sweep_result serial = run_sweep_inprocess(spec);
  ASSERT_TRUE(serial.complete);
  session_config parallel_options;
  parallel_options.job_threads = 3;
  const sweep_result parallel = run_sweep_inprocess(spec, parallel_options);
  ASSERT_TRUE(parallel.complete);
  expect_same_result(parallel, serial);
}

/// The acceptance property: crash + truncated autosave + retry == the
/// uninterrupted run, bit for bit.
void run_kill_resume_identity(const sweep_spec& spec, const char* name) {
  const char* worker = worker_binary();
  if (!worker) GTEST_SKIP() << "AXC_WORKER_BIN not set";

  const sweep_result reference = run_sweep_inprocess(spec);
  ASSERT_TRUE(reference.complete);

  shard_runner_config config;
  config.shards = 2;
  config.max_attempts = 3;
  config.worker_autosave_generations = 16;
  config.work_dir = fresh_work_dir(name);
  config.worker_binary = worker;
  // Shard 0, first life only: the last autosave before the crash (hit 3 =
  // generation tick 48 at a 16-tick cadence) is torn at byte 350, then the
  // process dies hard at the 60th generation tick — so the relaunch faces
  // exactly the torn file (salvaged or rejected-then-fresh, both must
  // reconverge).
  config.shard_env = {
      {"AXC_FAULT=session-save-truncate@3=350;worker-crash-generation@60"}};

  const sweep_result sharded = run_sweep(spec, config);
  ASSERT_GE(sharded.shards.size(), 2u);
  EXPECT_GE(sharded.shards[0].attempts, 2u)
      << "the injected crash did not force a retry";
  EXPECT_EQ(sharded.shards[0].last_exit_code, 0);
  ASSERT_TRUE(sharded.complete);
  expect_same_result(sharded, reference);

  // ...and the merged result is also invariant to the reference's
  // job-level parallelism (ties in the archive break by job id, not by
  // completion order).
  session_config parallel_options;
  parallel_options.job_threads = 2;
  const sweep_result parallel = run_sweep_inprocess(spec, parallel_options);
  expect_same_result(sharded, parallel);

  std::error_code ec;
  std::filesystem::remove_all(config.work_dir, ec);
}

TEST(shard_runner, kill_resume_identity_mult) {
  run_kill_resume_identity(mult_spec_small(), "mult");
}

TEST(shard_runner, kill_resume_identity_adder) {
  run_kill_resume_identity(adder_spec_small(), "adder");
}

TEST(shard_runner, stalled_worker_is_killed_and_retried) {
  const char* worker = worker_binary();
  if (!worker) GTEST_SKIP() << "AXC_WORKER_BIN not set";

  const sweep_spec spec = mult_spec_small();
  const sweep_result reference = run_sweep_inprocess(spec);

  shard_runner_config config;
  config.shards = 2;
  config.max_attempts = 2;
  // Generous enough that a legitimately-working shard (which completes a
  // job, i.e. grows its checkpoint, well within this) is never killed,
  // even under sanitizers.
  config.stall_timeout = std::chrono::milliseconds(2500);
  config.work_dir = fresh_work_dir("stall");
  config.worker_binary = worker;
  // First life of shard 1 sleeps 30s before doing anything: no checkpoint
  // growth, so the stall deadline must SIGKILL it long before that.
  config.shard_env = {{}, {"AXC_FAULT=worker-sleep-start=30000"}};

  const auto start = std::chrono::steady_clock::now();
  const sweep_result sharded = run_sweep(spec, config);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(25)) << "stall kill did not fire";
  ASSERT_GE(sharded.shards.size(), 2u);
  EXPECT_TRUE(sharded.shards[1].timed_out);
  EXPECT_GE(sharded.shards[1].attempts, 2u);
  ASSERT_TRUE(sharded.complete);
  expect_same_result(sharded, reference);

  std::error_code ec;
  std::filesystem::remove_all(config.work_dir, ec);
}

TEST(shard_runner, exhausted_attempts_yield_partial_merge) {
  const char* worker = worker_binary();
  if (!worker) GTEST_SKIP() << "AXC_WORKER_BIN not set";

  const sweep_spec spec = mult_spec_small();
  const sweep_result reference = run_sweep_inprocess(spec);

  shard_runner_config config;
  config.shards = 2;
  config.max_attempts = 1;  // no retry: the crash is fatal for shard 0
  config.worker_autosave_generations = 16;
  config.work_dir = fresh_work_dir("partial");
  config.worker_binary = worker;
  config.shard_env = {{"AXC_FAULT=worker-crash-generation@40"}};

  const sweep_result sharded = run_sweep(spec, config);
  ASSERT_GE(sharded.shards.size(), 2u);
  EXPECT_FALSE(sharded.shards[0].completed);
  EXPECT_TRUE(sharded.shards[1].completed);
  EXPECT_FALSE(sharded.complete);
  // Shard 1's jobs (global ids 2, 3) still merged, bit-equal to the
  // reference; shard 0's jobs are lost or partially salvaged from its
  // autosaves, never wrong.
  ASSERT_EQ(sharded.by_job.size(), 4u);
  for (std::size_t id = 2; id < 4; ++id) {
    ASSERT_TRUE(sharded.by_job[id].has_value()) << "job " << id;
    EXPECT_EQ(sharded.by_job[id]->netlist, reference.by_job[id]->netlist);
    EXPECT_EQ(sharded.by_job[id]->wmed, reference.by_job[id]->wmed);
  }
  for (std::size_t id = 0; id < 2; ++id) {
    if (sharded.by_job[id]) {
      EXPECT_EQ(sharded.by_job[id]->netlist, reference.by_job[id]->netlist)
          << "salvaged job " << id;
    }
  }

  std::error_code ec;
  std::filesystem::remove_all(config.work_dir, ec);
}

}  // namespace
}  // namespace axc::core
