#include <gtest/gtest.h>

#include <set>

#include "data/digits.h"
#include "data/font.h"

namespace axc::data {
namespace {

TEST(font, glyphs_have_ink) {
  for (int d = 0; d <= 9; ++d) {
    const auto rows = digit_glyph(d);
    int ink = 0;
    for (const auto row : rows) ink += std::popcount(row);
    EXPECT_GE(ink, 7) << "digit " << d;
    EXPECT_LE(ink, 35);
  }
}

TEST(font, glyphs_pairwise_distinct) {
  for (int a = 0; a < 10; ++a) {
    for (int b = a + 1; b < 10; ++b) {
      EXPECT_NE(digit_glyph(a), digit_glyph(b)) << a << " vs " << b;
    }
  }
}

TEST(font, sample_interpolates) {
  // Center of an inked cell is 1, far outside is 0, midpoints in between.
  EXPECT_DOUBLE_EQ(glyph_sample(1, 2.0, 0.0), 1.0);  // digit 1 top center
  EXPECT_DOUBLE_EQ(glyph_sample(1, -5.0, -5.0), 0.0);
  const double edge = glyph_sample(1, 2.5, 0.0);
  EXPECT_GT(edge, 0.0);
  EXPECT_LT(edge, 1.0 + 1e-12);
}

TEST(font, render_respects_intensity_and_blending) {
  std::vector<std::uint8_t> pixels(28 * 28, 0);
  glyph_transform t;
  t.center_x = 13.5;
  t.center_y = 13.5;
  t.height_px = 20;
  render_glyph(pixels, 28, 28, 8, t, 250.0);
  std::uint8_t max = 0;
  for (const auto p : pixels) max = std::max(max, p);
  EXPECT_GE(max, 240);
}

TEST(mnist_like, deterministic_and_labeled) {
  const digit_dataset a = make_mnist_like(50, 9);
  const digit_dataset b = make_mnist_like(50, 9);
  EXPECT_EQ(a.images, b.images);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.width, 28u);
  EXPECT_EQ(a.height, 28u);
  for (const int label : a.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LE(label, 9);
  }
}

TEST(mnist_like, different_seeds_differ) {
  EXPECT_NE(make_mnist_like(20, 1).images, make_mnist_like(20, 2).images);
}

TEST(mnist_like, covers_all_classes) {
  const digit_dataset ds = make_mnist_like(500, 3);
  std::set<int> classes(ds.labels.begin(), ds.labels.end());
  EXPECT_EQ(classes.size(), 10u);
}

TEST(mnist_like, digit_brighter_than_background) {
  const digit_dataset ds = make_mnist_like(20, 5);
  for (const auto& img : ds.images) {
    std::uint8_t max = 0;
    double mean = 0.0;
    for (const auto p : img) {
      max = std::max(max, p);
      mean += p;
    }
    mean /= static_cast<double>(img.size());
    EXPECT_GT(max, 150);
    EXPECT_LT(mean, 120);  // mostly dark background
  }
}

TEST(svhn_like, shape_and_determinism) {
  const digit_dataset a = make_svhn_like(30, 4);
  EXPECT_EQ(a.width, 32u);
  EXPECT_EQ(a.height, 32u);
  EXPECT_EQ(a.images.size(), 30u);
  EXPECT_EQ(make_svhn_like(30, 4).images, a.images);
}

TEST(svhn_like, busier_than_mnist_like) {
  // SVHN-like scenes have textured backgrounds: higher mean intensity and
  // higher per-image variance of background pixels than MNIST-like.
  const digit_dataset svhn = make_svhn_like(40, 6);
  const digit_dataset mnist = make_mnist_like(40, 6);
  double svhn_mean = 0.0, mnist_mean = 0.0;
  for (const auto& img : svhn.images) {
    for (const auto p : img) svhn_mean += p;
  }
  for (const auto& img : mnist.images) {
    for (const auto p : img) mnist_mean += p;
  }
  svhn_mean /= 40.0 * 32 * 32;
  mnist_mean /= 40.0 * 28 * 28;
  EXPECT_GT(svhn_mean, mnist_mean + 30.0);
}

TEST(svhn_like, covers_all_classes) {
  const digit_dataset ds = make_svhn_like(500, 8);
  std::set<int> classes(ds.labels.begin(), ds.labels.end());
  EXPECT_EQ(classes.size(), 10u);
}

TEST(to_tensors, scales_to_q08_grid) {
  digit_dataset ds;
  ds.width = 2;
  ds.height = 1;
  ds.images.push_back({0, 255});
  ds.labels.push_back(3);
  const auto tensors = to_tensors(ds);
  ASSERT_EQ(tensors.size(), 1u);
  EXPECT_EQ(tensors[0].channels(), 1u);
  EXPECT_EQ(tensors[0].height(), 1u);
  EXPECT_EQ(tensors[0].width(), 2u);
  EXPECT_FLOAT_EQ(tensors[0].data()[0], 0.0f);
  EXPECT_FLOAT_EQ(tensors[0].data()[1], 255.0f / 256.0f);
}

}  // namespace
}  // namespace axc::data
