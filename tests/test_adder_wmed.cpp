// Adders on the bit-plane WMED fast path: parity of
// metrics::adder_wmed_evaluator (the component-spec generalization of the
// operand-major sweep) against the 2^(2w) table-based adder_wmed()
// reference, and the adder search running end to end without per-candidate
// tables.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cgp/genotype.h"
#include "core/wmed_approximator.h"
#include "dist/pmf.h"
#include "metrics/adder_metrics.h"
#include "metrics/wmed_evaluator.h"
#include "mult/adders.h"
#include "mult/approx_adders.h"
#include "support/rng.h"

namespace axc::metrics {
namespace {

std::vector<dist::pmf> adder_distributions(std::size_t n) {
  rng gen(29);
  std::vector<double> ragged(n);
  for (auto& w : ragged) w = gen.uniform01() * gen.uniform01();
  std::vector<double> top_heavy(n, 1e-6);
  for (std::size_t a = 3 * n / 4; a < n; ++a) top_heavy[a] = 1.0;
  return {dist::pmf::uniform(n), dist::pmf::half_normal(n, n / 5.0),
          dist::pmf::normal(n, n / 2.0, n / 8.0),
          dist::pmf::from_weights(ragged), dist::pmf::from_weights(top_heavy)};
}

std::vector<std::pair<std::string, circuit::netlist>> candidate_adders(
    unsigned width) {
  std::vector<std::pair<std::string, circuit::netlist>> adders;
  adders.emplace_back("exact", mult::ripple_adder(width));
  for (const unsigned k : {2u, 4u, 6u}) {
    adders.emplace_back("loa-" + std::to_string(k),
                        mult::lower_or_adder(width, k));
  }
  for (const unsigned seg : {2u, 4u}) {
    adders.emplace_back("esa-" + std::to_string(seg),
                        mult::segmented_adder(width, seg));
  }
  for (const unsigned k : {2u, 3u}) {
    adders.emplace_back("trunc-" + std::to_string(k),
                        mult::truncated_adder(width, k));
  }
  return adders;
}

TEST(adder_fast_path, matches_table_reference_across_distributions) {
  const adder_spec spec{8};
  const auto exact = exact_sum_table(spec);
  for (const dist::pmf& d : adder_distributions(256)) {
    adder_wmed_evaluator evaluator(spec, d);
    for (const auto& [name, nl] : candidate_adders(8)) {
      const double fast = evaluator.evaluate(nl);
      const double table = adder_wmed(exact, sum_table(nl, spec), spec, d);
      EXPECT_NEAR(fast, table, 1e-13) << name;
      EXPECT_NEAR(evaluator.evaluate_reference(nl), fast, 1e-13) << name;
    }
  }
}

TEST(adder_fast_path, matches_tables_on_mutated_cgp_candidates) {
  const adder_spec spec{8};
  const dist::pmf d = dist::pmf::half_normal(256, 48.0);
  adder_wmed_evaluator evaluator(spec, d);
  const auto exact = exact_sum_table(spec);

  const circuit::netlist seed = mult::ripple_adder(8);
  cgp::parameters params;
  params.num_inputs = 16;
  params.num_outputs = 9;
  params.columns = seed.num_gates() + 24;
  params.rows = 1;
  params.levels_back = params.columns;
  params.function_set.assign(circuit::default_function_set().begin(),
                             circuit::default_function_set().end());
  rng gen(17);
  cgp::genotype g = cgp::genotype::from_netlist(params, seed, gen);

  for (int step = 0; step < 6; ++step) {
    const circuit::netlist nl = g.decode_cone();
    const double table = adder_wmed(exact, sum_table(nl, spec), spec, d);
    EXPECT_NEAR(evaluator.evaluate(nl), table, 1e-12) << "step " << step;
    for (int m = 0; m < 4; ++m) g.mutate(gen);
  }
}

TEST(adder_fast_path, abort_classification_agrees_with_reference) {
  const adder_spec spec{8};
  const dist::pmf d = dist::pmf::half_normal(256, 48.0);
  adder_wmed_evaluator evaluator(spec, d);

  for (const auto& [name, nl] : candidate_adders(8)) {
    const double full = evaluator.evaluate(nl);
    if (full == 0.0) continue;
    for (const double bound : {full * 0.01, full * 0.5, full * 2.0 + 1e-9}) {
      const double fast = evaluator.evaluate(nl, bound);
      const double reference = evaluator.evaluate_reference(nl, bound);
      EXPECT_EQ(fast > bound, reference > bound) << name << " bound "
                                                 << bound;
      EXPECT_LE(fast, full + 1e-12);
    }
  }
}

TEST(adder_fast_path, skewed_distribution_reweights_like_the_tables) {
  // A top-heavy D must punish a truncated adder (uniform low-bit errors)
  // the same way through both paths, and differently from uniform D.
  const adder_spec spec{8};
  const auto exact = exact_sum_table(spec);
  const circuit::netlist loa = mult::lower_or_adder(8, 4);

  std::vector<double> low_heavy(256, 1e-6);
  for (std::size_t a = 0; a < 32; ++a) low_heavy[a] = 1.0;
  const dist::pmf skew = dist::pmf::from_weights(low_heavy);
  const dist::pmf flat = dist::pmf::uniform(256);

  adder_wmed_evaluator skew_eval(spec, skew);
  adder_wmed_evaluator flat_eval(spec, flat);
  const double skewed = skew_eval.evaluate(loa);
  const double uniform = flat_eval.evaluate(loa);
  EXPECT_NEAR(skewed, adder_wmed(exact, sum_table(loa, spec), spec, skew),
              1e-13);
  EXPECT_NEAR(uniform, adder_wmed(exact, sum_table(loa, spec), spec, flat),
              1e-13);
  EXPECT_NE(skewed, uniform);
}

}  // namespace
}  // namespace axc::metrics

namespace axc::core {
namespace {

TEST(adder_approximator, evolves_adders_through_the_fast_path) {
  // End-to-end: the generalized approximator searches 8-bit adders via the
  // genotype-native incremental pipeline (no per-candidate 2^16 tables).
  adder_approximation_config config;
  config.spec = metrics::adder_spec{8};
  config.distribution = dist::pmf::half_normal(256, 48.0);
  config.iterations = 250;
  config.extra_columns = 16;
  config.rng_seed = 7;

  const circuit::netlist seed = mult::ripple_adder(8);
  const adder_wmed_approximator approx(config);

  const auto exact = metrics::exact_sum_table(config.spec);
  for (const double target : {0.0, 0.002}) {
    const evolved_design design = approx.approximate(seed, target);
    EXPECT_LE(design.wmed, target + 1e-12) << "target " << target;
    EXPECT_TRUE(design.netlist.validate().empty());
    // The reported WMED agrees with the table-based definition.
    EXPECT_NEAR(design.wmed,
                metrics::adder_wmed(
                    exact, metrics::sum_table(design.netlist, config.spec),
                    config.spec, config.distribution),
                1e-12);
  }
}

TEST(adder_approximator, default_distribution_derives_from_spec) {
  adder_approximation_config config;
  config.spec = metrics::adder_spec{6};
  const adder_wmed_approximator approx(config);
  EXPECT_EQ(approx.config().distribution.size(), std::size_t{64});
}

TEST(adder_approximator, serial_and_parallel_agree) {
  adder_approximation_config config;
  config.spec = metrics::adder_spec{6};
  config.distribution = dist::pmf::half_normal(64, 12.0);
  config.iterations = 60;
  config.extra_columns = 12;
  config.rng_seed = 3;

  const circuit::netlist seed = mult::ripple_adder(6);

  config.threads = 1;
  const evolved_design serial =
      adder_wmed_approximator(config).approximate(seed, 0.004);
  config.threads = 2;
  const evolved_design parallel =
      adder_wmed_approximator(config).approximate(seed, 0.004);

  EXPECT_EQ(parallel.netlist, serial.netlist);
  EXPECT_EQ(parallel.wmed, serial.wmed);
  EXPECT_EQ(parallel.area_um2, serial.area_um2);
  EXPECT_EQ(parallel.evaluations, serial.evaluations);
}

}  // namespace
}  // namespace axc::core
