// SIMD dispatch parity: every compiled-in scan/step-executor backend must
// produce bit-identical WMED evaluations — across component classes
// (mult/adder), widths 6/7/8, signedness, evolved netlists, the
// genotype-native incremental path, and the early-abort path — when forced
// via the evaluator/config knob or the AXC_SIMD environment override.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "cgp/genotype.h"
#include "circuit/simulator.h"
#include "core/wmed_approximator.h"
#include "dist/pmf.h"
#include "metrics/scan_kernels.h"
#include "metrics/wmed_evaluator.h"
#include "mult/adders.h"
#include "mult/approx_adders.h"
#include "mult/multipliers.h"
#include "support/rng.h"
#include "support/simd.h"

namespace axc::metrics {
namespace {

/// Every backend this binary can actually dispatch to on this machine.
std::vector<simd::level> forced_levels() {
  std::vector<simd::level> levels{simd::level::scalar};
  for (const simd::level l : {simd::level::avx2, simd::level::avx512}) {
    if (scan_level_available(l)) levels.push_back(l);
  }
  return levels;
}

/// Mutated variants of a seed netlist, via the CGP genotype (what the
/// search actually scores).
std::vector<circuit::netlist> evolved_variants(const circuit::netlist& seed,
                                               std::uint64_t seed_value,
                                               int count) {
  cgp::parameters params;
  params.num_inputs = seed.num_inputs();
  params.num_outputs = seed.num_outputs();
  params.columns = seed.num_gates() + 24;
  params.rows = 1;
  params.levels_back = params.columns;
  params.function_set.assign(circuit::default_function_set().begin(),
                             circuit::default_function_set().end());
  rng gen(seed_value);
  cgp::genotype g = cgp::genotype::from_netlist(params, seed, gen);
  std::vector<circuit::netlist> variants;
  for (int i = 0; i < count; ++i) {
    for (int m = 0; m < 4; ++m) g.mutate(gen);
    variants.push_back(g.decode_cone());
  }
  return variants;
}

template <component_spec Spec>
void expect_backend_parity(const Spec& spec, const dist::pmf& d,
                           const std::vector<circuit::netlist>& candidates,
                           const char* what) {
  const auto shared = basic_wmed_evaluator<Spec>::make_shared_state(spec, d);
  basic_wmed_evaluator<Spec> reference(shared, simd::level::scalar);
  ASSERT_EQ(reference.simd_level(), simd::level::scalar);

  for (const simd::level level : forced_levels()) {
    basic_wmed_evaluator<Spec> forced(shared, level);
    ASSERT_EQ(forced.simd_level(), resolve_scan_level(level));
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      const double expected = reference.evaluate(candidates[c]);
      // Full sweeps: bit-identical, not just close.
      EXPECT_EQ(forced.evaluate(candidates[c]), expected)
          << what << " candidate " << c << " level "
          << simd::level_name(level);
      // Abort path: the partial value is bit-identical too (the batched
      // kernel applies per-block totals in the pre-batch visit order).
      for (const double bound : {expected * 0.01, expected * 0.6}) {
        EXPECT_EQ(forced.evaluate(candidates[c], bound),
                  reference.evaluate(candidates[c], bound))
            << what << " candidate " << c << " bound " << bound << " level "
            << simd::level_name(level);
      }
    }
  }
}

TEST(simd_dispatch, mult_backends_bit_identical_across_widths_and_signs) {
  for (const unsigned width : {6u, 7u, 8u}) {
    for (const bool is_signed : {false, true}) {
      const mult_spec spec{width, is_signed};
      const dist::pmf d = dist::pmf::half_normal(
          spec.operand_count(), static_cast<double>(spec.operand_count()) / 4.0);
      std::vector<circuit::netlist> candidates;
      candidates.push_back(is_signed ? mult::signed_multiplier(width)
                                     : mult::unsigned_multiplier(width));
      candidates.push_back(
          mult::truncated_multiplier(width, width / 2, is_signed));
      candidates.push_back(
          mult::broken_array_multiplier(width, 2, 1, is_signed));
      expect_backend_parity(spec, d, candidates, "mult");
    }
  }
}

TEST(simd_dispatch, adder_backends_bit_identical_across_widths) {
  for (const unsigned width : {6u, 7u, 8u}) {
    const adder_spec spec{width};
    const dist::pmf d = dist::pmf::half_normal(
        spec.operand_count(), static_cast<double>(spec.operand_count()) / 3.0);
    std::vector<circuit::netlist> candidates;
    candidates.push_back(mult::ripple_adder(width));
    candidates.push_back(mult::lower_or_adder(width, width / 2));
    candidates.push_back(mult::truncated_adder(width, 2));
    expect_backend_parity(spec, d, candidates, "adder");
  }
}

TEST(simd_dispatch, evolved_netlists_bit_identical) {
  const mult_spec spec{8, false};
  const dist::pmf d = dist::pmf::half_normal(256, 64.0);
  expect_backend_parity(spec, d,
                        evolved_variants(mult::unsigned_multiplier(8), 41, 6),
                        "evolved mult");

  const adder_spec aspec{8};
  const dist::pmf ad = dist::pmf::half_normal(256, 48.0);
  expect_backend_parity(aspec, ad,
                        evolved_variants(mult::ripple_adder(8), 43, 6),
                        "evolved adder");
}

TEST(simd_dispatch, incremental_search_is_backend_independent) {
  // The whole search, not just one evaluation: a small (1+lambda) run with
  // the config knob forced to each backend must evolve the same design.
  const auto run = [](simd::level level) {
    core::approximation_config config;
    config.spec = metrics::mult_spec{8, false};
    config.distribution = dist::pmf::half_normal(256, 64.0);
    config.iterations = 60;
    config.rng_seed = 9;
    config.simd = level;
    const core::wmed_approximator approximator(config);
    return approximator.approximate(mult::unsigned_multiplier(8), 1e-3);
  };
  const core::evolved_design reference = run(simd::level::scalar);
  for (const simd::level level : forced_levels()) {
    const core::evolved_design design = run(level);
    EXPECT_EQ(design.netlist, reference.netlist)
        << simd::level_name(level);
    EXPECT_EQ(design.wmed, reference.wmed) << simd::level_name(level);
    EXPECT_EQ(design.area_um2, reference.area_um2)
        << simd::level_name(level);
    EXPECT_EQ(design.evaluations, reference.evaluations)
        << simd::level_name(level);
  }
}

TEST(simd_dispatch, resolution_rules) {
  // Explicit levels resolve to themselves when available, and only clamp
  // downward, never upward.
  EXPECT_EQ(resolve_scan_level(simd::level::scalar), simd::level::scalar);
  for (const simd::level l : {simd::level::avx2, simd::level::avx512}) {
    const simd::level resolved = resolve_scan_level(l);
    EXPECT_LE(static_cast<int>(resolved), static_cast<int>(l));
    if (scan_level_available(l)) EXPECT_EQ(resolved, l);
  }
  // automatic -> the strongest available backend.
  EXPECT_EQ(resolve_scan_level(simd::level::automatic), best_scan_level());
  // The scan kernel table never hands out a null or illegal kernel.
  for (const simd::level l : forced_levels()) {
    EXPECT_NE(scan_kernel(l), nullptr);
  }
  // The simulator's step executors follow the same rules.
  EXPECT_EQ(circuit::resolve_sim_steps_level(simd::level::scalar),
            simd::level::scalar);
  EXPECT_NE(circuit::sim_steps_kernel(simd::level::scalar), nullptr);
  EXPECT_NE(circuit::sim_steps_indexed_kernel(simd::level::scalar), nullptr);
  EXPECT_NE(circuit::sim_pack_kernel(simd::level::scalar), nullptr);
}

TEST(simd_dispatch, env_override_forces_the_backend) {
  ASSERT_EQ(setenv("AXC_SIMD", "scalar", 1), 0);
  EXPECT_EQ(simd::env_override(), simd::level::scalar);
  EXPECT_EQ(resolve_scan_level(simd::level::automatic), simd::level::scalar);

  // An explicit config knob is not overridden by the environment.
  if (scan_level_available(simd::level::avx2)) {
    EXPECT_EQ(resolve_scan_level(simd::level::avx2), simd::level::avx2);
  }

  ASSERT_EQ(setenv("AXC_SIMD", "not-a-level", 1), 0);
  EXPECT_EQ(simd::env_override(), std::nullopt);
  EXPECT_EQ(resolve_scan_level(simd::level::automatic), best_scan_level());

  ASSERT_EQ(unsetenv("AXC_SIMD"), 0);
  EXPECT_EQ(simd::env_override(), std::nullopt);
}

TEST(simd_dispatch, level_names_round_trip) {
  for (const simd::level l :
       {simd::level::automatic, simd::level::scalar, simd::level::avx2,
        simd::level::avx512}) {
    EXPECT_EQ(simd::parse_level(simd::level_name(l)), l);
  }
  EXPECT_EQ(simd::parse_level("bogus"), std::nullopt);
}

}  // namespace
}  // namespace axc::metrics
