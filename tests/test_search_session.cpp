#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <sstream>
#include <vector>

#include "core/component_handle.h"
#include "core/search_session.h"
#include "core/wmed_approximator.h"
#include "mult/adders.h"
#include "mult/multipliers.h"

namespace axc::core {
namespace {

using metrics::adder_spec;
using metrics::mult_spec;

approximation_config small_mult_config() {
  approximation_config cfg;
  cfg.spec = mult_spec{4, false};
  cfg.distribution = dist::pmf::half_normal(16, 4.0);
  cfg.iterations = 300;
  cfg.extra_columns = 16;
  cfg.rng_seed = 11;
  return cfg;
}

adder_approximation_config small_adder_config() {
  adder_approximation_config cfg;
  cfg.spec = adder_spec{6};
  cfg.distribution = dist::pmf::half_normal(64, 16.0);
  cfg.iterations = 200;
  cfg.extra_columns = 12;
  cfg.rng_seed = 7;
  return cfg;
}

sweep_plan small_plan() {
  sweep_plan plan;
  plan.targets = {0.002, 0.02};
  plan.runs_per_target = 2;
  return plan;
}

void expect_same_designs(const std::vector<evolved_design>& a,
                         const std::vector<evolved_design>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].netlist, b[i].netlist) << "design " << i;
    EXPECT_EQ(a[i].wmed, b[i].wmed) << "design " << i;
    EXPECT_EQ(a[i].area_um2, b[i].area_um2) << "design " << i;
    EXPECT_EQ(a[i].target, b[i].target) << "design " << i;
    EXPECT_EQ(a[i].run_index, b[i].run_index) << "design " << i;
    EXPECT_EQ(a[i].evaluations, b[i].evaluations) << "design " << i;
    EXPECT_EQ(a[i].improvements, b[i].improvements) << "design " << i;
  }
}

void expect_same_front(const std::vector<pareto_point>& a,
                       const std::vector<pareto_point>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "front point " << i;
  }
}

TEST(sweep_plan, expands_target_major) {
  const sweep_plan plan = small_plan();
  const auto jobs = plan.jobs();
  ASSERT_EQ(jobs.size(), 4u);
  EXPECT_EQ(jobs[0].id, 0u);
  EXPECT_EQ(jobs[0].target, 0.002);
  EXPECT_EQ(jobs[0].run_index, 0u);
  EXPECT_EQ(jobs[1].target, 0.002);
  EXPECT_EQ(jobs[1].run_index, 1u);
  EXPECT_EQ(jobs[3].id, 3u);
  EXPECT_EQ(jobs[3].target, 0.02);
  EXPECT_EQ(jobs[3].run_index, 1u);
}

TEST(search_session, matches_per_job_approximate_mult) {
  // The session is pure orchestration: its designs must be bit-identical
  // to calling approximate() per (target, run) pair directly.
  const approximation_config cfg = small_mult_config();
  const circuit::netlist seed = mult::unsigned_multiplier(4);
  const sweep_plan plan = small_plan();

  const wmed_approximator approx(cfg);
  std::vector<evolved_design> reference;
  for (const sweep_job& job : plan.jobs()) {
    reference.push_back(approx.approximate(seed, job.target, job.run_index));
  }

  search_session session(make_component(cfg), seed, plan);
  session.run();
  EXPECT_TRUE(session.finished());
  expect_same_designs(session.designs(), reference);
}

TEST(search_session, matches_per_job_approximate_adder) {
  // Second component class through the same type-erased handle: adders run
  // the fast path (width 6) behind the identical session API.
  const adder_approximation_config cfg = small_adder_config();
  const circuit::netlist seed = mult::ripple_adder(6);
  sweep_plan plan;
  plan.targets = {0.001, 0.01};
  plan.runs_per_target = 1;

  const adder_wmed_approximator approx(cfg);
  std::vector<evolved_design> reference;
  for (const sweep_job& job : plan.jobs()) {
    reference.push_back(approx.approximate(seed, job.target, job.run_index));
  }

  search_session session(make_component(cfg), seed, plan);
  session.run();
  EXPECT_TRUE(session.finished());
  expect_same_designs(session.designs(), reference);

  // ...and job-parallel execution changes nothing for adders either.
  session_config options;
  options.job_threads = 2;
  search_session parallel(make_component(cfg), seed, plan, options);
  parallel.run();
  expect_same_designs(parallel.designs(), reference);
}

TEST(search_session, legacy_sweep_equals_session) {
  // sweep() is a thin wrapper over a single-plan session; both surfaces
  // must agree (and the on_design callback order must stay plan order).
  const approximation_config cfg = [] {
    approximation_config c = small_mult_config();
    c.runs_per_target = 2;
    return c;
  }();
  const circuit::netlist seed = mult::unsigned_multiplier(4);
  const std::vector<double> targets{0.002, 0.02};

  const wmed_approximator approx(cfg);
  std::vector<double> observed_targets;
  const auto designs =
      approx.sweep(seed, targets, [&](const evolved_design& d) {
        observed_targets.push_back(d.target);
      });

  sweep_plan plan;
  plan.targets = targets;
  plan.runs_per_target = cfg.runs_per_target;
  search_session session(make_component(cfg), seed, plan);
  session.run();

  expect_same_designs(designs, session.designs());
  ASSERT_EQ(observed_targets.size(), 4u);
  EXPECT_EQ(observed_targets[0], 0.002);
  EXPECT_EQ(observed_targets[3], 0.02);
}

TEST(search_session, job_parallel_bit_identical) {
  // Job-level parallelism must not change any result: each job owns its
  // RNG stream and evaluators, only the shared immutable cache is common.
  const approximation_config cfg = small_mult_config();
  const circuit::netlist seed = mult::unsigned_multiplier(4);
  const sweep_plan plan = small_plan();

  search_session serial(make_component(cfg), seed, plan);
  serial.run();

  for (const std::size_t threads : {2u, 4u}) {
    session_config options;
    options.job_threads = threads;
    search_session parallel(make_component(cfg), seed, plan, options);
    parallel.run();
    EXPECT_TRUE(parallel.finished());
    expect_same_designs(parallel.designs(), serial.designs());
    expect_same_front(parallel.front(), serial.front());
  }
}

TEST(search_session, shared_evaluator_cache_built_once) {
  // The ROADMAP lever this PR closes: one exact-plane build per session,
  // not one per run.  Width 6 exercises the fast path's bit-plane tables.
  approximation_config cfg = small_mult_config();
  cfg.spec = mult_spec{6, false};
  cfg.distribution = dist::pmf::half_normal(64, 16.0);
  cfg.iterations = 40;
  const component_handle component = make_component(cfg);
  EXPECT_EQ(component.cache_builds(), 0u);

  search_session session(component, mult::unsigned_multiplier(6),
                         small_plan());
  session.run();
  EXPECT_TRUE(session.finished());
  EXPECT_EQ(session.total_jobs(), 4u);
  EXPECT_EQ(component.cache_builds(), 1u);
}

TEST(search_session, progress_events_cover_job_lifecycle) {
  const approximation_config cfg = small_mult_config();
  const circuit::netlist seed = mult::unsigned_multiplier(4);
  sweep_plan plan;
  plan.targets = {0.02};
  plan.runs_per_target = 1;

  std::vector<progress_event> events;
  session_config options;
  options.generation_stride = 100;
  options.on_progress = [&](const progress_event& e) {
    events.push_back(e);
  };
  search_session session(make_component(cfg), seed, plan, options);
  session.run();

  ASSERT_GE(events.size(), 3u);
  EXPECT_EQ(events.front().kind, progress_kind::job_started);
  EXPECT_EQ(events.front().total_jobs, 1u);
  EXPECT_EQ(events.back().kind, progress_kind::session_finished);
  EXPECT_EQ(events.back().completed_jobs, 1u);

  std::size_t generations = 0, improvements = 0, finished = 0;
  for (const progress_event& e : events) {
    if (e.kind == progress_kind::job_generation) ++generations;
    if (e.kind == progress_kind::job_improved) ++improvements;
    if (e.kind == progress_kind::job_finished) ++finished;
  }
  // 300 iterations / stride 100 = 3 ticks; the sweep from an exact seed to
  // a loose 2 % target always improves at least once.
  EXPECT_EQ(generations, 3u);
  EXPECT_GE(improvements, 1u);
  EXPECT_EQ(finished, 1u);

  // session_finished is a once-only terminal event: running an
  // already-finished session again must not re-emit it.
  const std::size_t events_after_first_run = events.size();
  session.run();
  EXPECT_EQ(events.size(), events_after_first_run);
}

TEST(search_session, save_resume_reproduces_identical_front) {
  const approximation_config cfg = small_mult_config();
  const circuit::netlist seed = mult::unsigned_multiplier(4);
  const sweep_plan plan = small_plan();
  const component_handle component = make_component(cfg);

  search_session uninterrupted(component, seed, plan);
  uninterrupted.run();

  // Stop after the second completed job (request_stop is safe from inside
  // a progress callback), checkpoint, resume, finish.
  session_config options;
  search_session* stopping_session = nullptr;
  options.on_progress = [&](const progress_event& e) {
    // >= not ==: robust against counter skips under job parallelism.
    if (e.kind == progress_kind::job_finished && e.completed_jobs >= 2) {
      stopping_session->request_stop();
    }
  };
  search_session to_stop(component, seed, plan, options);
  stopping_session = &to_stop;
  to_stop.run();
  EXPECT_TRUE(to_stop.stopped());
  EXPECT_FALSE(to_stop.stop_requested());  // consumed by run()
  EXPECT_EQ(to_stop.completed_jobs(), 2u);
  EXPECT_FALSE(to_stop.finished());

  std::stringstream checkpoint;
  to_stop.save(checkpoint);

  std::optional<search_session> resumed =
      search_session::resume(checkpoint, component);
  ASSERT_TRUE(resumed.has_value());
  EXPECT_EQ(resumed->completed_jobs(), 2u);
  EXPECT_EQ(resumed->total_jobs(), 4u);
  EXPECT_EQ(resumed->seed(), seed);

  resumed->run();
  EXPECT_TRUE(resumed->finished());
  expect_same_designs(resumed->designs(), uninterrupted.designs());
  expect_same_front(resumed->front(), uninterrupted.front());
}

TEST(search_session, cancel_mid_run_leaves_job_pending) {
  // A stop request between generations abandons the in-flight run; the job
  // re-runs from scratch on the next run() and lands on the same result.
  const approximation_config cfg = small_mult_config();
  const circuit::netlist seed = mult::unsigned_multiplier(4);
  sweep_plan plan;
  plan.targets = {0.02};
  plan.runs_per_target = 1;

  search_session reference(make_component(cfg), seed, plan);
  reference.run();

  session_config options;
  options.generation_stride = 50;
  search_session* session_ptr = nullptr;
  bool stop_fired = false;
  options.on_progress = [&](const progress_event& e) {
    if (e.kind == progress_kind::job_generation && !stop_fired) {
      stop_fired = true;
      session_ptr->request_stop();
    }
  };
  search_session session(make_component(cfg), seed, plan, options);
  session_ptr = &session;
  session.run();
  EXPECT_EQ(session.completed_jobs(), 0u);
  EXPECT_FALSE(session.finished());

  session.run();  // re-runs the abandoned job from scratch
  EXPECT_TRUE(session.finished());
  expect_same_designs(session.designs(), reference.designs());
}

TEST(search_session, stop_requested_before_run_wins) {
  // A request_stop() that lands before (or while) run() starts must not be
  // swallowed: that run executes nothing, and the next run() proceeds.
  const approximation_config cfg = small_mult_config();
  const circuit::netlist seed = mult::unsigned_multiplier(4);
  sweep_plan plan;
  plan.targets = {0.02};

  search_session session(make_component(cfg), seed, plan);
  session.request_stop();
  EXPECT_TRUE(session.stop_requested());
  session.run();
  EXPECT_EQ(session.completed_jobs(), 0u);
  EXPECT_TRUE(session.stopped());

  session.run();
  EXPECT_TRUE(session.finished());
  EXPECT_FALSE(session.stopped());

  // front() indices resolve through design(), including on a session that
  // completed in stages.
  for (const auto& p : session.front()) {
    const auto d = session.design(p.index);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->wmed, p.x);
    EXPECT_EQ(d->area_um2, p.y);
  }
  EXPECT_FALSE(session.design(99).has_value());
}

TEST(search_session, resume_rejects_mismatched_component) {
  const approximation_config cfg = small_mult_config();
  const circuit::netlist seed = mult::unsigned_multiplier(4);
  sweep_plan plan;
  plan.targets = {0.02};

  search_session session(make_component(cfg), seed, plan);
  session.run();
  std::stringstream checkpoint;
  session.save(checkpoint);

  approximation_config other = cfg;
  other.rng_seed = 999;  // a different search: resuming would lie
  EXPECT_FALSE(search_session::resume(checkpoint, make_component(other))
                   .has_value());

  // A different operand distribution changes every job's result even
  // though name/width/seed/budget all match — the fingerprint catches it.
  checkpoint.clear();
  checkpoint.seekg(0);
  approximation_config skewed = cfg;
  skewed.distribution = dist::pmf::half_normal(16, 2.0);
  EXPECT_FALSE(search_session::resume(checkpoint, make_component(skewed))
                   .has_value());

  // So does a different cell library (it drives the area objective).
  checkpoint.clear();
  checkpoint.seekg(0);
  approximation_config relibbed = cfg;
  relibbed.library = &tech::cell_library::unit();
  EXPECT_FALSE(search_session::resume(checkpoint, make_component(relibbed))
                   .has_value());

  // The matching handle still resumes after the rejected attempts.
  checkpoint.clear();
  checkpoint.seekg(0);
  EXPECT_TRUE(
      search_session::resume(checkpoint, make_component(cfg)).has_value());

  std::stringstream garbage("not a checkpoint\n");
  EXPECT_FALSE(
      search_session::resume(garbage, make_component(cfg)).has_value());
}

TEST(search_session, zero_runs_per_target_is_an_empty_sweep) {
  // Legacy sweep() returned an empty vector for runs_per_target == 0; the
  // session path must keep that contract instead of asserting.
  approximation_config cfg = small_mult_config();
  cfg.runs_per_target = 0;
  const wmed_approximator approx(cfg);
  const std::vector<double> targets{0.01};
  EXPECT_TRUE(approx.sweep(mult::unsigned_multiplier(4), targets).empty());

  sweep_plan plan;
  plan.targets = targets;
  plan.runs_per_target = 0;
  search_session session(make_component(cfg), mult::unsigned_multiplier(4),
                         plan);
  session.run();
  EXPECT_TRUE(session.finished());
  EXPECT_EQ(session.total_jobs(), 0u);
  EXPECT_TRUE(session.designs().empty());
}

TEST(component_registry, runtime_selection_matches_typed_config) {
  component_options options;
  options.width = 4;
  options.distribution = dist::pmf::half_normal(16, 4.0);
  options.iterations = 300;
  options.extra_columns = 16;
  options.rng_seed = 11;

  const component_handle by_name =
      component_registry::instance().make("mult", options);
  ASSERT_TRUE(static_cast<bool>(by_name));
  EXPECT_EQ(by_name.name(), "mult");
  EXPECT_EQ(by_name.width(), 4u);
  EXPECT_EQ(by_name.seed_inputs(), 8u);
  EXPECT_EQ(by_name.seed_outputs(), 8u);

  const component_handle typed = make_component(small_mult_config());
  const circuit::netlist seed = mult::unsigned_multiplier(4);
  const auto a = by_name.run_job(seed, 0.01, 0);
  const auto b = typed.run_job(seed, 0.01, 0);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->netlist, b->netlist);
  EXPECT_EQ(a->wmed, b->wmed);

  EXPECT_FALSE(static_cast<bool>(
      component_registry::instance().make("divider", options)));

  const auto names = component_registry::instance().names();
  EXPECT_NE(std::find(names.begin(), names.end(), "mult"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "adder"), names.end());
}

TEST(component_registry, adder_component_runs_jobs) {
  component_options options;
  options.width = 6;
  options.iterations = 60;
  options.extra_columns = 12;
  const component_handle adder =
      component_registry::instance().make("adder", options);
  ASSERT_TRUE(static_cast<bool>(adder));
  EXPECT_EQ(adder.seed_outputs(), 7u);  // w + 1 sum bits
  const auto design = adder.run_job(mult::ripple_adder(6), 0.01, 0);
  ASSERT_TRUE(design.has_value());
  EXPECT_LE(design->wmed, 0.01 + 1e-12);
}

}  // namespace
}  // namespace axc::core
