#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "support/rng.h"

namespace axc {
namespace {

TEST(splitmix, deterministic) {
  std::uint64_t s1 = 42, s2 = 42;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

TEST(splitmix, advances_state) {
  std::uint64_t s = 42;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

TEST(rng, deterministic_for_seed) {
  rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(rng, different_seeds_diverge) {
  rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a() == b() ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(rng, reseed_restarts_sequence) {
  rng a(9);
  const auto first = a();
  a.reseed(9);
  EXPECT_EQ(a(), first);
}

TEST(rng, below_respects_bound) {
  rng gen(7);
  for (const std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(gen.below(bound), bound);
  }
}

TEST(rng, below_covers_all_residues) {
  rng gen(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(gen.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(rng, below_is_roughly_uniform) {
  rng gen(11);
  std::vector<int> counts(8, 0);
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++counts[gen.below(8)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / 8, kDraws / 8 * 0.1);
  }
}

TEST(rng, between_is_inclusive) {
  rng gen(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = gen.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(rng, uniform01_in_range) {
  rng gen(17);
  for (int i = 0; i < 10000; ++i) {
    const double u = gen.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(rng, uniform01_mean_near_half) {
  rng gen(19);
  double sum = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) sum += gen.uniform01();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(rng, normal_moments) {
  rng gen(23);
  double sum = 0.0, sq = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = gen.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(rng, normal_scaled) {
  rng gen(29);
  double sum = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) sum += gen.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kDraws, 10.0, 0.1);
}

TEST(rng, chance_extremes) {
  rng gen(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(gen.chance(0.0));
    EXPECT_TRUE(gen.chance(1.0));
  }
}

TEST(rng, chance_probability) {
  rng gen(37);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) hits += gen.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(hits, kDraws * 0.25, kDraws * 0.02);
}

}  // namespace
}  // namespace axc
