// Wire-framing hardening for support/net.h — the serialize-suite treatment
// applied to the serving protocol's frames: every prefix truncation, every
// single-bit flip, bogus lengths and CRC mismatches must be *detected*
// (never crash, never hang, never hand back damaged payload bytes), both
// through the pure decode_frame() core and through read_frame() off a real
// socketpair.  The accept loop's resilience to hostile clients rests on
// exactly these properties.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "support/checksum.h"
#include "support/net.h"

#if AXC_HAS_NET
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace axc::support::net {
namespace {

constexpr std::size_t kMax = 1u << 20;

std::string sample_frame() {
  // Binary-hostile payload: NULs, newlines, high bytes.
  return encode_frame(std::string("fro\0nt\nbytes\xff\x80", 14));
}

/// Patches the length field and re-fixes the header CRC, so the length is
/// the ONLY lie in the header (isolates the oversized/truncated checks
/// from the header-CRC check).
std::string with_length(std::string frame, std::uint32_t length) {
  for (int i = 0; i < 4; ++i) {
    frame[4 + i] = static_cast<char>((length >> (8 * i)) & 0xFFu);
  }
  const std::uint32_t header_crc =
      crc32(std::string_view(frame.data(), 12));
  for (int i = 0; i < 4; ++i) {
    frame[12 + i] = static_cast<char>((header_crc >> (8 * i)) & 0xFFu);
  }
  return frame;
}

TEST(net_framing, round_trips_payloads_exactly) {
  for (const std::string payload :
       {std::string(), std::string("x"), std::string("front bytes"),
        std::string("\0\n\xff binary \r\n", 13), std::string(70000, 'z')}) {
    const std::string frame = encode_frame(payload);
    ASSERT_EQ(frame.size(), kFrameHeaderBytes + payload.size());
    frame_error error = frame_error::io;
    const auto decoded = decode_frame(frame, kMax, &error);
    ASSERT_TRUE(decoded.has_value()) << payload.size();
    EXPECT_EQ(error, frame_error::none);
    EXPECT_EQ(*decoded, payload);
  }
}

TEST(net_framing, every_prefix_truncation_is_detected) {
  const std::string frame = sample_frame();
  for (std::size_t n = 0; n < frame.size(); ++n) {
    frame_error error = frame_error::none;
    const auto decoded = decode_frame(frame.substr(0, n), kMax, &error);
    EXPECT_FALSE(decoded.has_value()) << "prefix " << n;
    if (n == 0) {
      EXPECT_EQ(error, frame_error::closed);
    } else if (n < 4) {
      EXPECT_EQ(error, frame_error::truncated) << "prefix " << n;
    } else {
      // Past the magic the cut lands mid-header or mid-payload.
      EXPECT_NE(error, frame_error::none) << "prefix " << n;
    }
  }
}

TEST(net_framing, every_single_bit_flip_is_detected) {
  // CRC32 detects all single-bit errors, so no flipped frame may decode —
  // in the magic (bad_magic), the framing fields (bad_header), or the
  // payload (bad_crc).
  const std::string frame = sample_frame();
  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = frame;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      frame_error error = frame_error::none;
      EXPECT_FALSE(decode_frame(mutated, kMax, &error).has_value())
          << "byte " << byte << " bit " << bit;
      EXPECT_NE(error, frame_error::none) << "byte " << byte;
    }
  }
}

TEST(net_framing, bogus_length_rejects_before_allocation) {
  // A hostile 4 GiB length with an internally consistent header must be
  // rejected by the caller's cap, not trusted into an allocation.
  const std::string frame = with_length(sample_frame(), 0xFFFFFFFFu);
  frame_error error = frame_error::none;
  EXPECT_FALSE(decode_frame(frame, kMax, &error).has_value());
  EXPECT_EQ(error, frame_error::oversized);

  // In-cap but longer than the bytes that follow: truncated, not served.
  const std::string stretched = with_length(sample_frame(), 1000);
  error = frame_error::none;
  EXPECT_FALSE(decode_frame(stretched, kMax, &error).has_value());
  EXPECT_EQ(error, frame_error::truncated);

  // Shorter than the real payload: the CRC no longer matches the shorter
  // slice (trailing bytes are garbage either way).
  const std::string shortened = with_length(sample_frame(), 3);
  error = frame_error::none;
  EXPECT_FALSE(decode_frame(shortened, kMax, &error).has_value());
  EXPECT_EQ(error, frame_error::bad_crc);
}

TEST(net_framing, payload_crc_mismatch_is_bad_crc) {
  std::string frame = sample_frame();
  frame[kFrameHeaderBytes + 2] =
      static_cast<char>(frame[kFrameHeaderBytes + 2] ^ 0x10);
  frame_error error = frame_error::none;
  EXPECT_FALSE(decode_frame(frame, kMax, &error).has_value());
  EXPECT_EQ(error, frame_error::bad_crc);
}

TEST(net_framing, foreign_magic_is_bad_magic) {
  std::string frame = sample_frame();
  std::memcpy(frame.data(), "HTTP", 4);
  frame_error error = frame_error::none;
  EXPECT_FALSE(decode_frame(frame, kMax, &error).has_value());
  EXPECT_EQ(error, frame_error::bad_magic);
}

#if AXC_HAS_NET

struct socket_pair {
  int fd[2]{-1, -1};
  socket_pair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fd), 0); }
  ~socket_pair() {
    close_writer();
    if (fd[1] >= 0) ::close(fd[1]);
  }
  void close_writer() {
    if (fd[0] >= 0) ::close(fd[0]);
    fd[0] = -1;
  }
};

TEST(net_framing, socket_round_trips_back_to_back_frames) {
  socket_pair sp;
  ASSERT_TRUE(write_frame(sp.fd[0], "first"));
  ASSERT_TRUE(write_frame(sp.fd[0], std::string("sec\0ond", 7)));
  frame_error error = frame_error::none;
  auto a = read_frame(sp.fd[1], kMax, &error);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, "first");
  auto b = read_frame(sp.fd[1], kMax, &error);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*b, std::string("sec\0ond", 7));
  sp.close_writer();
  EXPECT_FALSE(read_frame(sp.fd[1], kMax, &error).has_value());
  EXPECT_EQ(error, frame_error::closed);
}

TEST(net_framing, socket_survives_every_truncation_point) {
  // The peer hangs up mid-frame at every possible byte: read_frame must
  // return promptly (the writer end is closed, so no blocking read can
  // hang) and never fabricate a payload.
  const std::string frame = sample_frame();
  for (std::size_t n = 0; n < frame.size(); ++n) {
    socket_pair sp;
    ASSERT_TRUE(write_all(sp.fd[0], std::string_view(frame).substr(0, n)));
    sp.close_writer();
    frame_error error = frame_error::none;
    EXPECT_FALSE(read_frame(sp.fd[1], kMax, &error).has_value())
        << "cut at " << n;
    EXPECT_NE(error, frame_error::none);
  }
}

TEST(net_framing, socket_rejects_bit_flipped_frames) {
  const std::string frame = sample_frame();
  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    socket_pair sp;
    std::string mutated = frame;
    mutated[byte] = static_cast<char>(mutated[byte] ^ 0x04);
    ASSERT_TRUE(write_all(sp.fd[0], mutated));
    sp.close_writer();
    frame_error error = frame_error::none;
    EXPECT_FALSE(read_frame(sp.fd[1], kMax, &error).has_value())
        << "byte " << byte;
  }
}

TEST(net_framing, socket_rejects_oversized_before_reading_payload) {
  // Only the 16 header bytes arrive; the declared 4 GiB payload never
  // will.  read_frame must reject on the header alone — blocking for the
  // payload would wedge a handler thread forever.
  socket_pair sp;
  const std::string header =
      with_length(sample_frame(), 0xFFFFFFF0u).substr(0, kFrameHeaderBytes);
  ASSERT_TRUE(write_all(sp.fd[0], header));
  frame_error error = frame_error::none;
  EXPECT_FALSE(read_frame(sp.fd[1], kMax, &error).has_value());
  EXPECT_EQ(error, frame_error::oversized);
}

TEST(net_framing, garbage_then_valid_frame_on_fresh_connection) {
  // A poisoned stream is dropped, but the protocol recovers on a fresh
  // connection — the property the server's accept loop builds on.
  {
    socket_pair sp;
    ASSERT_TRUE(write_all(sp.fd[0], "GET / HTTP/1.1\r\n\r\n"));
    sp.close_writer();
    frame_error error = frame_error::none;
    EXPECT_FALSE(read_frame(sp.fd[1], kMax, &error).has_value());
    EXPECT_EQ(error, frame_error::bad_magic);
  }
  socket_pair fresh;
  ASSERT_TRUE(write_frame(fresh.fd[0], "still serving"));
  const auto decoded = read_frame(fresh.fd[1], kMax);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, "still serving");
}

#endif  // AXC_HAS_NET

}  // namespace
}  // namespace axc::support::net
