#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <vector>

#include "dist/pmf.h"

namespace axc::dist {
namespace {

double total(const pmf& p) {
  double t = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) t += p[i];
  return t;
}

// Every factory must produce a normalized distribution.
class pmf_factories : public ::testing::TestWithParam<pmf> {};

TEST_P(pmf_factories, normalized) {
  EXPECT_NEAR(total(GetParam()), 1.0, 1e-9);
}

TEST_P(pmf_factories, non_negative) {
  const pmf& p = GetParam();
  for (std::size_t i = 0; i < p.size(); ++i) EXPECT_GE(p[i], 0.0);
}

TEST_P(pmf_factories, sampling_stays_in_domain) {
  const pmf& p = GetParam();
  rng gen(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(p.sample(gen), p.size());
}

INSTANTIATE_TEST_SUITE_P(
    factories, pmf_factories,
    ::testing::Values(pmf::uniform(256), pmf::normal(256, 127.0, 32.0),
                      pmf::half_normal(256, 64.0),
                      pmf::signed_normal(256, 0.0, 40.0),
                      pmf::signed_laplace(256, 0.0, 12.0), pmf::uniform(16),
                      pmf::normal(16, 8.0, 3.0)));

TEST(pmf_uniform, equal_mass) {
  const pmf u = pmf::uniform(64);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_DOUBLE_EQ(u[i], 1.0 / 64.0);
}

TEST(pmf_uniform, mean_and_entropy) {
  const pmf u = pmf::uniform(256);
  EXPECT_NEAR(u.mean(), 127.5, 1e-9);
  EXPECT_NEAR(u.entropy_bits(), 8.0, 1e-9);
}

TEST(pmf_normal, peak_at_mean) {
  const pmf d1 = pmf::normal(256, 127.0, 32.0);
  for (std::size_t i = 0; i < 256; ++i) {
    EXPECT_LE(d1[i], d1[127] + 1e-12);
  }
  EXPECT_NEAR(d1.mean(), 127.0, 0.5);
}

TEST(pmf_normal, narrower_sigma_lower_entropy) {
  const pmf wide = pmf::normal(256, 127.0, 64.0);
  const pmf narrow = pmf::normal(256, 127.0, 8.0);
  EXPECT_LT(narrow.entropy_bits(), wide.entropy_bits());
}

TEST(pmf_half_normal, monotone_decreasing) {
  const pmf d2 = pmf::half_normal(256, 64.0);
  for (std::size_t i = 1; i < 256; ++i) {
    EXPECT_LE(d2[i], d2[i - 1] + 1e-15);
  }
  EXPECT_GT(d2[0], d2[255]);
}

TEST(pmf_signed_normal, symmetric_around_zero) {
  const pmf d = pmf::signed_normal(256, 0.0, 30.0);
  // Pattern of +k is k, pattern of -k is 256-k.
  for (int k = 1; k < 128; ++k) {
    EXPECT_NEAR(d[static_cast<std::size_t>(k)],
                d[static_cast<std::size_t>(256 - k)], 1e-12)
        << "k=" << k;
  }
  // Zero is the most probable value.
  for (std::size_t i = 1; i < 256; ++i) EXPECT_LE(d[i], d[0] + 1e-12);
}

TEST(pmf_signed_laplace, sharper_than_normal_at_zero) {
  const pmf lap = pmf::signed_laplace(256, 0.0, 10.0);
  const pmf nor = pmf::signed_normal(256, 0.0, 14.14);  // similar stddev
  EXPECT_GT(lap[0], nor[0]);
}

TEST(pmf_from_weights, normalizes_arbitrary_scale) {
  const std::vector<double> w{2.0, 6.0, 2.0};
  const pmf p = pmf::from_weights(w);
  EXPECT_NEAR(p[0], 0.2, 1e-12);
  EXPECT_NEAR(p[1], 0.6, 1e-12);
  EXPECT_NEAR(p[2], 0.2, 1e-12);
}

TEST(pmf_from_counts, histogram_to_distribution) {
  const std::vector<std::uint64_t> counts{0, 10, 30, 60};
  const pmf p = pmf::from_counts(counts);
  EXPECT_DOUBLE_EQ(p[0], 0.0);
  EXPECT_NEAR(p[3], 0.6, 1e-12);
}

TEST(pmf_from_int8, keys_by_bit_pattern) {
  const std::vector<std::int8_t> samples{0, 0, -1, 1};
  const pmf p = pmf::from_int8_samples(samples);
  ASSERT_EQ(p.size(), 256u);
  EXPECT_NEAR(p[0], 0.5, 1e-12);     // two zeros
  EXPECT_NEAR(p[1], 0.25, 1e-12);    // +1
  EXPECT_NEAR(p[255], 0.25, 1e-12);  // -1 -> pattern 0xFF
}

TEST(pmf_sampling, empirical_frequencies_converge) {
  const pmf p = pmf::from_weights(std::vector<double>{0.5, 0.25, 0.25});
  rng gen(7);
  std::vector<int> counts(3, 0);
  constexpr int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) ++counts[p.sample(gen)];
  EXPECT_NEAR(counts[0], kDraws * 0.5, kDraws * 0.02);
  EXPECT_NEAR(counts[1], kDraws * 0.25, kDraws * 0.02);
  EXPECT_NEAR(counts[2], kDraws * 0.25, kDraws * 0.02);
}

TEST(pmf_sampling, zero_mass_values_never_drawn) {
  const pmf p = pmf::from_weights(std::vector<double>{0.0, 1.0, 0.0});
  rng gen(9);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(p.sample(gen), 1u);
}

TEST(pmf_blend, endpoint_identities) {
  const pmf a = pmf::uniform(16);
  const pmf b = pmf::half_normal(16, 3.0);
  const pmf at0 = a.blend(b, 0.0);
  const pmf at1 = a.blend(b, 1.0);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(at0[i], a[i], 1e-12);
    EXPECT_NEAR(at1[i], b[i], 1e-12);
  }
}

TEST(pmf_blend, midpoint_average) {
  const pmf a = pmf::uniform(8);
  const pmf b = pmf::from_weights(std::vector<double>{1, 0, 0, 0, 0, 0, 0, 1});
  const pmf mid = a.blend(b, 0.5);
  EXPECT_NEAR(mid[0], 0.5 * (1.0 / 8.0) + 0.5 * 0.5, 1e-12);
  EXPECT_NEAR(mid[1], 0.5 * (1.0 / 8.0), 1e-12);
}

TEST(pmf_stddev, uniform_matches_closed_form) {
  const pmf u = pmf::uniform(256);
  // stddev of discrete uniform on 0..n-1: sqrt((n^2-1)/12).
  EXPECT_NEAR(u.stddev(), std::sqrt((256.0 * 256.0 - 1.0) / 12.0), 1e-6);
}

TEST(pmf_from_masses, adversarial_doubles_survive_verbatim) {
  // The shard runtime serializes distributions as %.17g text and rebuilds
  // them with from_masses; the component fingerprint hashes every mass
  // bit-for-bit, so the whole pipeline collapses if any edge-case double
  // shifts by an ulp.  Exercise the extremes: the smallest denormal, the
  // denormal/normal boundary, huge magnitudes, and classic
  // non-representables whose shortest-decimal forms stress %.17g.
  const std::vector<double> masses{
      5e-324,                   // min denormal
      6.3e-322,                 // mid denormal
      2.2250738585072014e-308,  // smallest normal
      2.2250738585072009e-308,  // largest denormal
      1.7976931348623157e308,   // max double (dominates the sum)
      0.1,
      1.0 / 3.0,
      1e-17,                    // vanishes against the max under naive +=
      123456789.12345679,
  };
  const pmf p = pmf::from_masses(masses);
  ASSERT_EQ(p.size(), masses.size());
  for (std::size_t i = 0; i < masses.size(); ++i) {
    // Bit equality, not EXPECT_DOUBLE_EQ's 4-ulp tolerance.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(p[i]),
              std::bit_cast<std::uint64_t>(masses[i]))
        << "mass " << i;
  }
  // Round-tripping masses() through from_masses is the identity (no
  // renormalizing division to drift at the last ulp) — and pmf equality
  // agrees.
  const pmf again = pmf::from_masses(
      std::vector<double>(p.masses().begin(), p.masses().end()));
  EXPECT_EQ(again, p);
}

TEST(pmf_from_masses, text_round_trip_is_bit_exact) {
  // The exact %.17g print -> istream extract path the sweep-spec format
  // uses, applied to the adversarial masses directly.
  const std::vector<double> masses{5e-324, 2.2250738585072014e-308,
                                   1.7976931348623157e308, 0.1, 1.0 / 3.0,
                                   6.3e-322};
  std::ostringstream os;
  for (const double m : masses) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g ", m);
    os << buf;
  }
  std::istringstream is(os.str());
  std::vector<double> parsed(masses.size());
  for (double& m : parsed) ASSERT_TRUE(is >> m);
  const pmf p = pmf::from_masses(parsed);
  for (std::size_t i = 0; i < masses.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(p[i]),
              std::bit_cast<std::uint64_t>(masses[i]))
        << "mass " << i;
  }
}

}  // namespace
}  // namespace axc::dist
