#include <gtest/gtest.h>

#include "circuit/netlist.h"
#include "support/rng.h"
#include "tech/analysis.h"
#include "tech/cell_library.h"
#include "test_util.h"

namespace axc::tech {
namespace {

using circuit::gate_fn;
using circuit::netlist;

TEST(cell_library, free_cells_cost_nothing) {
  const cell_library& lib = cell_library::nangate45_like();
  for (const gate_fn fn :
       {gate_fn::const0, gate_fn::const1, gate_fn::buf_a, gate_fn::buf_b}) {
    EXPECT_DOUBLE_EQ(lib.cell(fn).area_um2, 0.0);
    EXPECT_DOUBLE_EQ(lib.cell(fn).delay_ps, 0.0);
  }
}

TEST(cell_library, relative_cost_ordering) {
  const cell_library& lib = cell_library::nangate45_like();
  // inverter < nand < and < xor, the fundamental CMOS ordering.
  EXPECT_LT(lib.cell(gate_fn::not_a).area_um2,
            lib.cell(gate_fn::nand2).area_um2);
  EXPECT_LT(lib.cell(gate_fn::nand2).area_um2,
            lib.cell(gate_fn::and2).area_um2);
  EXPECT_LT(lib.cell(gate_fn::and2).area_um2,
            lib.cell(gate_fn::xor2).area_um2);
  EXPECT_LT(lib.cell(gate_fn::nand2).delay_ps,
            lib.cell(gate_fn::xor2).delay_ps);
}

TEST(cell_library, unit_library_counts_gates) {
  const cell_library& lib = cell_library::unit();
  netlist nl(2, 1);
  const auto a = nl.add_gate(gate_fn::and2, 0, 1);
  const auto b = nl.add_gate(gate_fn::xor2, a, 0);
  nl.set_output(0, b);
  EXPECT_DOUBLE_EQ(estimate_area(nl, lib), 2.0);
}

TEST(estimate_area, only_active_gates_count) {
  const cell_library& lib = cell_library::unit();
  netlist nl(2, 1);
  const auto used = nl.add_gate(gate_fn::and2, 0, 1);
  nl.add_gate(gate_fn::xor2, 0, 1);  // inactive
  nl.set_output(0, used);
  EXPECT_DOUBLE_EQ(estimate_area(nl, lib), 1.0);
}

TEST(estimate_area, empty_cone_is_zero) {
  netlist nl(2, 1);
  nl.set_output(0, 0);  // output wired to an input
  EXPECT_DOUBLE_EQ(estimate_area(nl, cell_library::nangate45_like()), 0.0);
}

TEST(critical_path, chain_depth_scales_delay) {
  const cell_library& lib = cell_library::unit();
  netlist nl(2, 1);
  std::uint32_t s = nl.add_gate(gate_fn::and2, 0, 1);
  for (int i = 0; i < 9; ++i) s = nl.add_gate(gate_fn::and2, s, 1);
  nl.set_output(0, s);
  EXPECT_DOUBLE_EQ(critical_path_ps(nl, lib), 10.0);
}

TEST(critical_path, takes_longest_branch) {
  const cell_library& lib = cell_library::unit();
  netlist nl(2, 2);
  const auto shallow = nl.add_gate(gate_fn::or2, 0, 1);
  auto deep = nl.add_gate(gate_fn::and2, 0, 1);
  deep = nl.add_gate(gate_fn::and2, deep, 1);
  deep = nl.add_gate(gate_fn::and2, deep, 1);
  nl.set_output(0, shallow);
  nl.set_output(1, deep);
  EXPECT_DOUBLE_EQ(critical_path_ps(nl, lib), 3.0);
}

TEST(critical_path, ignored_operand_does_not_lengthen_path) {
  const cell_library& lib = cell_library::unit();
  netlist nl(1, 1);
  auto deep = nl.add_unary(gate_fn::not_a, 0);
  deep = nl.add_unary(gate_fn::not_a, deep);
  deep = nl.add_unary(gate_fn::not_a, deep);
  // not_a ignores operand b; the deep chain on b must not count.
  const auto out = nl.add_gate(gate_fn::not_a, 0, deep);
  nl.set_output(0, out);
  EXPECT_DOUBLE_EQ(critical_path_ps(nl, lib), 1.0);
}

TEST(power, zero_activity_means_leakage_only) {
  const cell_library& lib = cell_library::nangate45_like();
  netlist nl(2, 1);
  nl.set_output(0, nl.add_gate(gate_fn::and2, 0, 1));
  const std::vector<std::uint64_t> constant_stream(256, 0b11);
  const auto activity = circuit::profile_activity(nl, constant_stream);
  const power_report p = estimate_power(nl, lib, activity);
  EXPECT_DOUBLE_EQ(p.dynamic_uw, 0.0);
  EXPECT_GT(p.leakage_uw, 0.0);
}

TEST(power, more_toggles_more_power) {
  const cell_library& lib = cell_library::nangate45_like();
  netlist nl(1, 1);
  nl.set_output(0, nl.add_unary(gate_fn::not_a, 0));

  std::vector<std::uint64_t> slow(512), fast(512);
  for (std::size_t t = 0; t < 512; ++t) {
    slow[t] = (t / 64) & 1;
    fast[t] = t & 1;
  }
  const auto p_slow =
      estimate_power(nl, lib, circuit::profile_activity(nl, slow));
  const auto p_fast =
      estimate_power(nl, lib, circuit::profile_activity(nl, fast));
  EXPECT_GT(p_fast.dynamic_uw, p_slow.dynamic_uw);
}

TEST(power, scales_linearly_with_clock) {
  const cell_library& lib = cell_library::nangate45_like();
  rng gen(3);
  const netlist nl = test::random_netlist(6, 3, 25, gen);
  std::vector<std::uint64_t> stream(512);
  for (auto& v : stream) v = gen.below(64);
  const auto activity = circuit::profile_activity(nl, stream);
  const auto p1 = estimate_power(nl, lib, activity, 1.0);
  const auto p2 = estimate_power(nl, lib, activity, 2.0);
  EXPECT_NEAR(p2.dynamic_uw, 2.0 * p1.dynamic_uw, 1e-9);
  EXPECT_NEAR(p2.leakage_uw, p1.leakage_uw, 1e-12);
}

TEST(analyze, full_report_is_consistent) {
  const cell_library& lib = cell_library::nangate45_like();
  rng gen(5);
  const netlist nl = test::random_netlist(8, 4, 60, gen);
  std::vector<std::uint64_t> stream(1024);
  for (auto& v : stream) v = gen.below(256);

  const circuit_report report = analyze(nl, lib, stream);
  EXPECT_GE(report.area_um2, 0.0);
  EXPECT_GE(report.delay_ps, 0.0);
  EXPECT_GE(report.power.total_uw(),
            report.power.dynamic_uw);  // leakage non-negative
  EXPECT_NEAR(report.pdp_fj(),
              report.power.total_uw() * report.delay_ps * 1e-3, 1e-12);
  EXPECT_EQ(report.area_um2, estimate_area(nl, lib));
  EXPECT_EQ(report.delay_ps, critical_path_ps(nl, lib));
}

TEST(analyze, bigger_circuit_costs_more) {
  const cell_library& lib = cell_library::nangate45_like();
  rng gen(6);
  std::vector<std::uint64_t> stream(512);
  for (auto& v : stream) v = gen.below(16);

  // A 4-gate XOR chain vs a 1-gate circuit over the same inputs.
  netlist small(4, 1);
  small.set_output(0, small.add_gate(gate_fn::xor2, 0, 1));
  netlist big(4, 1);
  auto s = big.add_gate(gate_fn::xor2, 0, 1);
  s = big.add_gate(gate_fn::xor2, s, 2);
  s = big.add_gate(gate_fn::xor2, s, 3);
  s = big.add_gate(gate_fn::xnor2, s, 0);
  big.set_output(0, s);

  const auto rs = analyze(small, lib, stream);
  const auto rb = analyze(big, lib, stream);
  EXPECT_LT(rs.area_um2, rb.area_um2);
  EXPECT_LT(rs.delay_ps, rb.delay_ps);
  EXPECT_LT(rs.power.total_uw(), rb.power.total_uw());
}

}  // namespace
}  // namespace axc::tech
