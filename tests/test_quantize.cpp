#include <gtest/gtest.h>

#include "data/digits.h"
#include "mult/lut.h"
#include "mult/multipliers.h"
#include "nn/models.h"
#include "nn/quantize.h"
#include "nn/trainer.h"

namespace axc::nn {
namespace {

TEST(qformat, frac_bits_for_ranges) {
  EXPECT_EQ(frac_bits_for(0.9), 7);   // fits Q0.7
  EXPECT_EQ(frac_bits_for(1.5), 6);   // needs one integer bit
  EXPECT_EQ(frac_bits_for(100.0), 0); // seven integer bits
  EXPECT_EQ(frac_bits_for(0.0), 7);   // degenerate: default
}

TEST(qformat, quantize_round_trip_error_bounded) {
  for (const int f : {3, 5, 7}) {
    const double step = std::exp2(-f);
    for (double v = -0.9; v < 0.9; v += 0.0137) {
      const std::int8_t q = quantize_value(static_cast<float>(v), f);
      const float back = dequantize_value(q, f);
      EXPECT_LE(std::abs(back - v), step / 2 + 1e-9) << "v=" << v;
    }
  }
}

TEST(qformat, quantize_saturates) {
  EXPECT_EQ(quantize_value(10.0f, 7), 127);
  EXPECT_EQ(quantize_value(-10.0f, 7), -128);
}

TEST(qformat, shift_round_behaviour) {
  EXPECT_EQ(shift_round(8, 2), 2);
  EXPECT_EQ(shift_round(7, 2), 2);   // 1.75 -> 2
  EXPECT_EQ(shift_round(6, 2), 2);   // 1.5 rounds away from zero
  EXPECT_EQ(shift_round(5, 2), 1);
  EXPECT_EQ(shift_round(-6, 2), -2); // symmetric
  EXPECT_EQ(shift_round(3, 0), 3);
  EXPECT_EQ(shift_round(3, -2), 12); // negative shift = multiply
}

TEST(qformat, saturate_int8_clamps) {
  EXPECT_EQ(saturate_int8(300), 127);
  EXPECT_EQ(saturate_int8(-300), -128);
  EXPECT_EQ(saturate_int8(5), 5);
}

class quantized_mlp : public ::testing::Test {
 protected:
  void SetUp() override {
    train_set_ = data::make_mnist_like(1200, 42);
    test_set_ = data::make_mnist_like(300, 43);
    train_x_ = data::to_tensors(train_set_);
    test_x_ = data::to_tensors(test_set_);
    mlp_ = make_mlp(3, 28 * 28, 48);
    train_config cfg;
    cfg.epochs = 3;
    cfg.learning_rate = 0.1f;
    train(*mlp_, train_x_, train_set_.labels, cfg);
  }

  data::digit_dataset train_set_, test_set_;
  std::vector<tensor> train_x_, test_x_;
  std::optional<network> mlp_;
};

TEST_F(quantized_mlp, exact_lut_accuracy_close_to_float) {
  quantized_network qnet(*mlp_, std::span<const tensor>(train_x_).subspan(0, 64));
  const auto lut = mult::product_lut::exact(metrics::mult_spec{8, true});
  const double float_acc = accuracy(*mlp_, test_x_, test_set_.labels);
  const double q_acc = qnet.accuracy(test_x_, test_set_.labels, lut);
  // Ristretto reports ~0.1% drop for 8-bit; allow a few percent on our
  // smaller net.
  EXPECT_GT(q_acc, float_acc - 0.05);
}

TEST_F(quantized_mlp, weights_quantized_to_declared_grid) {
  quantized_network qnet(*mlp_, std::span<const tensor>(train_x_).subspan(0, 32));
  for (const layer_qparams& qp : qnet.qparams()) {
    if (!qp.active) continue;
    EXPECT_FALSE(qp.weights.empty());
    EXPECT_GE(qp.w_frac, 0);
  }
  const auto all = qnet.quantized_weights();
  EXPECT_EQ(all.size(), 28u * 28 * 48 + 48 * 10);
}

TEST_F(quantized_mlp, weight_histogram_peaks_near_zero) {
  // The paper's Fig. 6: trained NN weights concentrate around zero.
  quantized_network qnet(*mlp_, std::span<const tensor>(train_x_).subspan(0, 32));
  const auto weights = qnet.quantized_weights();
  std::size_t small = 0;
  for (const auto w : weights) {
    if (w >= -16 && w <= 16) ++small;
  }
  EXPECT_GT(static_cast<double>(small) / static_cast<double>(weights.size()),
            0.5);
}

TEST_F(quantized_mlp, broken_multiplier_hurts_accuracy) {
  quantized_network qnet(*mlp_, std::span<const tensor>(train_x_).subspan(0, 64));
  const auto exact = mult::product_lut::exact(metrics::mult_spec{8, true});
  const mult::product_lut broken(mult::truncated_multiplier(8, 13, true),
                                 metrics::mult_spec{8, true});
  const double exact_acc = qnet.accuracy(test_x_, test_set_.labels, exact);
  const double broken_acc = qnet.accuracy(test_x_, test_set_.labels, broken);
  EXPECT_LT(broken_acc, exact_acc - 0.1);
}

TEST_F(quantized_mlp, refresh_weights_tracks_float_changes) {
  quantized_network qnet(*mlp_, std::span<const tensor>(train_x_).subspan(0, 32));
  const auto before = qnet.quantized_weights();
  // Perturb float weights meaningfully.
  for (float& w : mlp_->at(0).weights()) w += 0.25f;
  qnet.refresh_weights();
  const auto after = qnet.quantized_weights();
  EXPECT_NE(before, after);
}

TEST(quantized_network, forward_stays_on_grid) {
  // Outputs of the quantized forward must be dequantized int8 values.
  const auto set = data::make_mnist_like(80, 9);
  const auto x = data::to_tensors(set);
  network mlp = make_mlp(5, 28 * 28, 16);
  train_config cfg;
  cfg.epochs = 1;
  train(mlp, x, set.labels, cfg);

  quantized_network qnet(mlp, std::span<const tensor>(x).subspan(0, 16));
  const auto lut = mult::product_lut::exact(metrics::mult_spec{8, true});
  const tensor out = qnet.forward(x[0], lut);

  const int out_frac = qnet.qparams().back().out_frac;
  const double step = std::exp2(-out_frac);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double ratio = out[i] / step;
    EXPECT_NEAR(ratio, std::round(ratio), 1e-3) << "logit " << i;
  }
}

}  // namespace
}  // namespace axc::nn
