// The lambda-batch candidate evaluation engine (cone_program::stage_child +
// wmed_evaluator::evaluate_batch, driven by evolver::run_incremental) must
// be a pure execution optimization: bit-identical to the per-candidate
// patched path — including the *partial* error accumulators of candidates
// whose sweep aborts early at the target — at every backend and thread
// count, for multipliers and adders across fast-path widths.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "cgp/evolver.h"
#include "cgp/genotype.h"
#include "core/wmed_approximator.h"
#include "dist/pmf.h"
#include "metrics/adder_metrics.h"
#include "metrics/mult_spec.h"
#include "metrics/scan_kernels.h"
#include "circuit/simulator.h"
#include "mult/adders.h"
#include "mult/multipliers.h"
#include "support/rng.h"
#include "support/simd.h"
#include "tech/cell_library.h"

namespace axc {
namespace {

cgp::parameters grid_params(const circuit::netlist& seed,
                            std::size_t extra_columns) {
  cgp::parameters p;
  p.num_inputs = seed.num_inputs();
  p.num_outputs = seed.num_outputs();
  p.columns = seed.num_gates() + extra_columns;
  p.rows = 1;
  p.levels_back = p.columns;
  p.function_set.assign(circuit::default_function_set().begin(),
                        circuit::default_function_set().end());
  return p;
}

/// Both the batch executor and the multi-candidate scan must exist at
/// `level` for a forced-backend run to actually exercise that backend.
bool batch_level_available(simd::level level) {
  return circuit::sim_steps_level_available(level) &&
         metrics::scan_level_available(level);
}

/// Drives `generations` of (1+lambda) mutation from an evolved parent
/// through two evaluators — batch on and off — asserting every offspring
/// evaluation matches bit-for-bit (EXPECT_EQ on doubles, never NEAR).
/// Acceptance every few generations exercises rebinding on both sides.
/// A negative `target` derives one just above the mutated parent's own
/// error, so feasible (parent-quality) and infeasible (worse, sweep
/// aborted) offspring both occur by construction.  Returns {feasible,
/// infeasible} offspring counts so callers can assert the abort-partial
/// comparison was genuinely hit rather than vacuously passed.
template <typename Spec>
std::pair<int, int> check_generation_parity(
    const Spec& spec, const dist::pmf& d, const circuit::netlist& seed,
    double target, simd::level level, std::uint64_t seed_value,
    int generations) {
  const auto& lib = tech::cell_library::nangate45_like();

  rng gen(seed_value);
  cgp::genotype parent =
      cgp::genotype::from_netlist(grid_params(seed, 24), seed, gen);
  // Walk off the exact seed so the sweeps see real error mass.
  for (int m = 0; m < 6; ++m) parent.mutate(gen);

  if (target < 0) {
    metrics::basic_wmed_evaluator<Spec> reference(spec, d);
    target = std::max(reference.evaluate(parent.decode_cone()) * 1.25, 1e-7);
  }
  auto batch = core::make_incremental_wmed_evaluator(spec, d, lib, target,
                                                     level, /*batch=*/true);
  auto solo = core::make_incremental_wmed_evaluator(spec, d, lib, target,
                                                    level, /*batch=*/false);

  const cgp::evaluation pb = batch->evaluate_and_bind(parent);
  const cgp::evaluation ps = solo->evaluate_and_bind(parent);
  EXPECT_EQ(pb.error, ps.error);
  EXPECT_EQ(pb.area, ps.area);
  EXPECT_EQ(pb.feasible, ps.feasible);

  constexpr std::size_t kLambda = 4;
  std::vector<cgp::genotype> children(kLambda, parent);
  std::vector<std::vector<std::uint32_t>> dirty(kLambda);
  std::vector<cgp::evaluation> eb(kLambda);
  std::vector<cgp::evaluation> es(kLambda);
  int feasible = 0;
  int infeasible = 0;
  for (int g = 0; g < generations; ++g) {
    for (std::size_t k = 0; k < kLambda; ++k) {
      children[k] = parent;
      dirty[k].clear();
      children[k].mutate(gen, dirty[k]);
    }
    batch->evaluate_children(parent, children, dirty, 0, kLambda, eb.data());
    solo->evaluate_children(parent, children, dirty, 0, kLambda, es.data());
    for (std::size_t k = 0; k < kLambda; ++k) {
      EXPECT_EQ(eb[k].error, es[k].error) << "gen " << g << " child " << k;
      EXPECT_EQ(eb[k].area, es[k].area) << "gen " << g << " child " << k;
      EXPECT_EQ(eb[k].feasible, es[k].feasible) << "gen " << g << " child "
                                                << k;
      (eb[k].feasible ? feasible : infeasible) += 1;
    }
    if (g % 5 == 3) {
      parent = children[g % kLambda];
      batch->rebind(parent, eb[g % kLambda]);
      solo->rebind(parent, es[g % kLambda]);
    }
  }
  return {feasible, infeasible};
}

TEST(batch_eval, multiplier_generations_match_per_candidate_at_widths_6_7_8) {
  for (const unsigned w : {6u, 7u, 8u}) {
    const metrics::mult_spec spec{w, false};
    const std::size_t n = std::size_t{1} << w;
    const dist::pmf d = dist::pmf::half_normal(n, n / 4.0);
    const auto [feasible, infeasible] = check_generation_parity(
        spec, d, mult::unsigned_multiplier(w), /*target=*/-1.0,
        simd::level::automatic, /*seed_value=*/11 + w, /*generations=*/40);
    // Both outcomes must occur, or the abort-partial comparison (partial
    // accumulators of infeasible candidates) never ran.
    EXPECT_GT(feasible, 0) << "w=" << w;
    EXPECT_GT(infeasible, 0) << "w=" << w;
  }
}

TEST(batch_eval, adder_generations_match_per_candidate_at_widths_6_7_8) {
  for (const unsigned w : {6u, 7u, 8u}) {
    const metrics::adder_spec spec{w};
    const std::size_t n = std::size_t{1} << w;
    const dist::pmf d = dist::pmf::half_normal(n, n / 5.0);
    const auto [feasible, infeasible] = check_generation_parity(
        spec, d, mult::ripple_adder(w), /*target=*/-1.0,
        simd::level::automatic, /*seed_value=*/29 + w, /*generations=*/40);
    EXPECT_GT(feasible, 0) << "w=" << w;
    EXPECT_GT(infeasible, 0) << "w=" << w;
  }
}

TEST(batch_eval, forced_backends_agree_with_per_candidate_path) {
  // Scalar always exists; AVX2/AVX-512 run where compiled in and supported
  // (the CI native job forces each through AXC_SIMD and re-runs this).
  const metrics::mult_spec spec{8, false};
  const dist::pmf d = dist::pmf::half_normal(256, 64.0);
  for (const simd::level level :
       {simd::level::scalar, simd::level::avx2, simd::level::avx512}) {
    if (!batch_level_available(level)) continue;
    const auto [feasible, infeasible] = check_generation_parity(
        spec, d, mult::unsigned_multiplier(8), /*target=*/-1.0, level,
        /*seed_value=*/5, /*generations=*/25);
    EXPECT_GT(feasible + infeasible, 0);
  }
}

TEST(batch_eval, tight_target_abort_partials_match) {
  // A target far below the mutated parent's error makes nearly every
  // candidate abort mid-sweep; the reported errors are then partial
  // accumulators, which must still agree exactly.
  const metrics::mult_spec spec{8, false};
  const dist::pmf d = dist::pmf::half_normal(256, 64.0);
  const auto [feasible, infeasible] = check_generation_parity(
      spec, d, mult::unsigned_multiplier(8), /*target=*/1e-5,
      simd::level::automatic, /*seed_value=*/3, /*generations=*/30);
  EXPECT_GT(infeasible, feasible);
}

cgp::evolver::run_result batch_search(const circuit::netlist& seed,
                                      double target, std::uint64_t seed_value,
                                      std::size_t threads, bool batch) {
  const metrics::mult_spec spec{6, false};
  const dist::pmf d = dist::pmf::half_normal(64, 16.0);
  const auto& lib = tech::cell_library::nangate45_like();
  rng gen(seed_value);
  const cgp::genotype start =
      cgp::genotype::from_netlist(grid_params(seed, 32), seed, gen);
  cgp::evolver::options opts;
  opts.iterations = 150;
  opts.error_tiebreak = true;
  opts.batch_candidates = batch;
  return cgp::evolver::run_incremental(
      start,
      [&] {
        return core::make_incremental_wmed_evaluator(spec, d, lib, target);
      },
      opts, threads, gen);
}

TEST(batch_eval, whole_searches_identical_across_knob_and_thread_counts) {
  const circuit::netlist seed = mult::unsigned_multiplier(6);
  for (const std::uint64_t s : {1ull, 23ull}) {
    const auto reference = batch_search(seed, 0.003, s, 1, /*batch=*/false);
    for (const std::size_t threads : {1u, 2u, 3u}) {
      const auto batched = batch_search(seed, 0.003, s, threads, true);
      EXPECT_EQ(batched.best, reference.best) << "seed " << s << " threads "
                                              << threads;
      EXPECT_EQ(batched.best_eval.error, reference.best_eval.error);
      EXPECT_EQ(batched.best_eval.area, reference.best_eval.area);
      EXPECT_EQ(batched.evaluations, reference.evaluations);
      EXPECT_EQ(batched.improvements, reference.improvements);
      EXPECT_EQ(batched.neutral_moves, reference.neutral_moves);
    }
  }
}

TEST(batch_eval, approximator_knob_changes_nothing) {
  core::approximation_config config;
  config.spec = metrics::mult_spec{6, false};
  config.distribution = dist::pmf::half_normal(64, 16.0);
  config.iterations = 80;
  config.extra_columns = 16;
  config.rng_seed = 33;

  const circuit::netlist seed = mult::unsigned_multiplier(6);

  config.batch_candidates = true;
  const core::evolved_design on =
      core::wmed_approximator(config).approximate(seed, 0.004);

  config.batch_candidates = false;
  const core::evolved_design off =
      core::wmed_approximator(config).approximate(seed, 0.004);

  EXPECT_EQ(on.netlist, off.netlist);
  EXPECT_EQ(on.wmed, off.wmed);
  EXPECT_EQ(on.area_um2, off.area_um2);
  EXPECT_EQ(on.evaluations, off.evaluations);
  EXPECT_EQ(on.improvements, off.improvements);
}

}  // namespace
}  // namespace axc
