#include <gtest/gtest.h>

#include "circuit/structural.h"
#include "mult/multipliers.h"
#include "support/rng.h"
#include "test_util.h"

namespace axc::circuit {
namespace {

TEST(structural, simple_chain_stats) {
  netlist nl(2, 1);
  auto s = nl.add_gate(gate_fn::and2, 0, 1);
  s = nl.add_gate(gate_fn::xor2, s, 1);
  s = nl.add_gate(gate_fn::or2, s, 0);
  nl.set_output(0, s);

  const structural_stats stats = analyze_structure(nl);
  EXPECT_EQ(stats.total_gates, 3u);
  EXPECT_EQ(stats.active_gates, 3u);
  EXPECT_EQ(stats.logic_depth, 3u);
  EXPECT_EQ(stats.support_size, 2u);
  EXPECT_EQ(stats.function_histogram[static_cast<std::size_t>(gate_fn::and2)],
            1u);
  EXPECT_EQ(stats.function_histogram[static_cast<std::size_t>(gate_fn::xor2)],
            1u);
}

TEST(structural, inactive_gates_excluded) {
  netlist nl(2, 1);
  const auto used = nl.add_gate(gate_fn::and2, 0, 1);
  nl.add_gate(gate_fn::xor2, 0, 1);  // dangling
  nl.set_output(0, used);
  const structural_stats stats = analyze_structure(nl);
  EXPECT_EQ(stats.total_gates, 2u);
  EXPECT_EQ(stats.active_gates, 1u);
}

TEST(structural, buffers_do_not_add_depth) {
  netlist nl(1, 1);
  auto s = nl.add_unary(gate_fn::buf_a, 0);
  s = nl.add_unary(gate_fn::buf_a, s);
  s = nl.add_unary(gate_fn::not_a, s);
  nl.set_output(0, s);
  const structural_stats stats = analyze_structure(nl);
  EXPECT_EQ(stats.logic_depth, 1u);
  EXPECT_EQ(stats.active_gates, 1u);
}

TEST(structural, support_excludes_unread_inputs) {
  netlist nl(4, 1);
  nl.set_output(0, nl.add_gate(gate_fn::and2, 0, 2));
  const structural_stats stats = analyze_structure(nl);
  EXPECT_EQ(stats.support_size, 2u);
}

TEST(structural, fanout_counts_output_uses) {
  netlist nl(2, 2);
  const auto g = nl.add_gate(gate_fn::xor2, 0, 1);
  nl.set_output(0, g);
  nl.set_output(1, g);
  const auto fanout = fanout_counts(nl);
  EXPECT_EQ(fanout[2], 2u);  // both outputs
  EXPECT_EQ(fanout[0], 1u);
  const structural_stats stats = analyze_structure(nl);
  EXPECT_EQ(stats.max_fanout, 2u);
}

TEST(structural, logic_levels_monotone_along_paths) {
  rng gen(5);
  const netlist nl = test::random_netlist(6, 3, 40, gen);
  const auto levels = logic_levels(nl);
  const auto active = nl.active_mask();
  for (std::size_t k = 0; k < nl.num_gates(); ++k) {
    if (!active[k]) continue;
    const gate_node& g = nl.gate(k);
    if (depends_on_a(g.fn)) {
      EXPECT_GE(levels[nl.num_inputs() + k], levels[g.in0]);
    }
    if (depends_on_b(g.fn)) {
      EXPECT_GE(levels[nl.num_inputs() + k], levels[g.in1]);
    }
  }
}

TEST(structural, multiplier_depth_orderings) {
  const auto ripple = analyze_structure(mult::unsigned_multiplier(8));
  const auto wallace = analyze_structure(
      mult::unsigned_multiplier(8, mult::schedule::wallace));
  EXPECT_LT(wallace.logic_depth, ripple.logic_depth);
  EXPECT_GT(ripple.logic_depth, 16u);  // ripple arrays are deep
  // Both are dominated by AND (partial products) + XOR (adders).
  const auto ands =
      ripple.function_histogram[static_cast<std::size_t>(gate_fn::and2)];
  const auto xors =
      ripple.function_histogram[static_cast<std::size_t>(gate_fn::xor2)];
  EXPECT_GT(ands, 60u);
  EXPECT_GT(xors, 60u);
}

TEST(structural, truncated_support_shrinks) {
  // Dropping all partial products below column 8 removes operand-A LSBs
  // from the support only when every pp using them is gone; with vbl = 15
  // only pp[7][7] remains (with a modest row restriction).
  const netlist heavy = mult::broken_array_multiplier(8, 7, 14);
  const structural_stats stats = analyze_structure(heavy);
  EXPECT_LT(stats.support_size, 16u);
}

}  // namespace
}  // namespace axc::circuit
