#include <gtest/gtest.h>

#include <sstream>

#include "circuit/export.h"
#include "circuit/netlist.h"

namespace axc::circuit {
namespace {

netlist make_half_adder() {
  netlist nl(2, 2);
  nl.set_output(0, nl.add_gate(gate_fn::xor2, 0, 1));
  nl.set_output(1, nl.add_gate(gate_fn::and2, 0, 1));
  return nl;
}

TEST(verilog_export, contains_module_skeleton) {
  const std::string v = to_verilog(make_half_adder(), "half_adder");
  EXPECT_NE(v.find("module half_adder"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("input  wire [1:0] in"), std::string::npos);
  EXPECT_NE(v.find("output wire [1:0] out"), std::string::npos);
}

TEST(verilog_export, expresses_gate_functions) {
  const std::string v = to_verilog(make_half_adder(), "ha");
  EXPECT_NE(v.find("in[0] ^ in[1]"), std::string::npos);
  EXPECT_NE(v.find("in[0] & in[1]"), std::string::npos);
}

TEST(verilog_export, omits_inactive_gates) {
  netlist nl(2, 1);
  const auto used = nl.add_gate(gate_fn::and2, 0, 1);
  nl.add_gate(gate_fn::xor2, 0, 1);  // dangling
  nl.set_output(0, used);
  const std::string v = to_verilog(nl, "m");
  EXPECT_EQ(v.find("^"), std::string::npos);
  EXPECT_NE(v.find("&"), std::string::npos);
}

TEST(verilog_export, output_can_alias_input) {
  netlist nl(2, 1);
  nl.set_output(0, 1);
  const std::string v = to_verilog(nl, "wire_through");
  EXPECT_NE(v.find("assign out[0] = in[1];"), std::string::npos);
}

TEST(dot_export, contains_nodes_and_edges) {
  const std::string d = to_dot(make_half_adder(), "ha");
  EXPECT_NE(d.find("digraph ha"), std::string::npos);
  EXPECT_NE(d.find("label=\"xor\""), std::string::npos);
  EXPECT_NE(d.find("label=\"and\""), std::string::npos);
  EXPECT_NE(d.find("i0 -> n0"), std::string::npos);
  EXPECT_NE(d.find("-> o0"), std::string::npos);
}

TEST(dot_export, unary_gate_has_single_edge) {
  netlist nl(1, 1);
  nl.set_output(0, nl.add_unary(gate_fn::not_a, 0));
  const std::string d = to_dot(nl, "inv");
  // Exactly one edge into n0.
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = d.find("-> n0", pos)) != std::string::npos) {
    ++count;
    pos += 5;
  }
  EXPECT_EQ(count, 1u);
}

}  // namespace
}  // namespace axc::circuit
