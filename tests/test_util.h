// Shared test helpers: naive reference implementations the optimized
// library code is checked against, plus random-structure generators.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/gate.h"
#include "circuit/netlist.h"
#include "support/rng.h"

namespace axc::test {

/// Reference single-assignment evaluator (no bit-parallel tricks): input
/// assignment packed as bit i = input i; returns packed outputs.
inline std::uint64_t naive_eval(const circuit::netlist& nl,
                                std::uint64_t assignment) {
  std::vector<std::uint64_t> value(nl.num_signals(), 0);
  for (std::size_t i = 0; i < nl.num_inputs(); ++i) {
    value[i] = (assignment >> i) & 1 ? ~std::uint64_t{0} : 0;
  }
  for (std::size_t k = 0; k < nl.num_gates(); ++k) {
    const circuit::gate_node& g = nl.gate(k);
    value[nl.num_inputs() + k] =
        circuit::eval_gate(g.fn, value[g.in0], value[g.in1]);
  }
  std::uint64_t out = 0;
  for (std::size_t o = 0; o < nl.num_outputs(); ++o) {
    out |= (value[nl.output(o)] & 1) << o;
  }
  return out;
}

/// Structurally valid random netlist (for property tests).
inline circuit::netlist random_netlist(std::size_t inputs, std::size_t outputs,
                                       std::size_t gates, rng& gen) {
  circuit::netlist nl(inputs, outputs);
  const auto fns = circuit::full_function_set();
  for (std::size_t k = 0; k < gates; ++k) {
    const auto limit = static_cast<std::uint32_t>(inputs + k);
    nl.add_gate(fns[gen.below(fns.size())],
                static_cast<std::uint32_t>(gen.below(limit)),
                static_cast<std::uint32_t>(gen.below(limit)));
  }
  for (std::size_t o = 0; o < outputs; ++o) {
    nl.set_output(o, static_cast<std::uint32_t>(gen.below(inputs + gates)));
  }
  return nl;
}

/// Signed/unsigned interpretation helpers mirroring metrics::mult_spec.
inline std::int64_t as_value(std::uint64_t pattern, unsigned bits,
                             bool is_signed) {
  const std::uint64_t mask =
      bits >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
  pattern &= mask;
  if (is_signed && bits < 64 && (pattern >> (bits - 1)) != 0) {
    return static_cast<std::int64_t>(pattern) -
           static_cast<std::int64_t>(std::uint64_t{1} << bits);
  }
  return static_cast<std::int64_t>(pattern);
}

}  // namespace axc::test
