#include <gtest/gtest.h>

#include <cmath>

#include "dist/divergence.h"

namespace axc::dist {
namespace {

TEST(kl, zero_for_identical) {
  const pmf p = pmf::normal(64, 32, 8);
  EXPECT_NEAR(kl_divergence_bits(p, p), 0.0, 1e-12);
}

TEST(kl, asymmetric) {
  const pmf p = pmf::from_weights(std::vector<double>{0.9, 0.1});
  const pmf q = pmf::from_weights(std::vector<double>{0.5, 0.5});
  EXPECT_NE(kl_divergence_bits(p, q), kl_divergence_bits(q, p));
}

TEST(kl, infinite_when_support_mismatch) {
  const pmf p = pmf::from_weights(std::vector<double>{0.5, 0.5, 0.0});
  const pmf q = pmf::from_weights(std::vector<double>{1.0, 0.0, 0.0});
  EXPECT_TRUE(std::isinf(kl_divergence_bits(p, q)));
  EXPECT_FALSE(std::isinf(kl_divergence_bits(q, p)));
}

TEST(kl, known_value_biased_coin) {
  const pmf p = pmf::from_weights(std::vector<double>{0.75, 0.25});
  const pmf u = pmf::uniform(2);
  const double expected =
      0.75 * std::log2(0.75 / 0.5) + 0.25 * std::log2(0.25 / 0.5);
  EXPECT_NEAR(kl_divergence_bits(p, u), expected, 1e-12);
}

TEST(js, symmetric_and_bounded) {
  const pmf p = pmf::half_normal(128, 20);
  const pmf q = pmf::uniform(128);
  const double js_pq = js_divergence_bits(p, q);
  EXPECT_NEAR(js_pq, js_divergence_bits(q, p), 1e-12);
  EXPECT_GE(js_pq, 0.0);
  EXPECT_LE(js_pq, 1.0);
}

TEST(js, finite_even_with_disjoint_support) {
  const pmf p = pmf::from_weights(std::vector<double>{1.0, 0.0});
  const pmf q = pmf::from_weights(std::vector<double>{0.0, 1.0});
  EXPECT_NEAR(js_divergence_bits(p, q), 1.0, 1e-12);  // maximal
}

TEST(total_variation, range_and_extremes) {
  const pmf p = pmf::from_weights(std::vector<double>{1.0, 0.0});
  const pmf q = pmf::from_weights(std::vector<double>{0.0, 1.0});
  EXPECT_NEAR(total_variation(p, q), 1.0, 1e-12);
  EXPECT_NEAR(total_variation(p, p), 0.0, 1e-12);
}

TEST(total_variation, symmetric) {
  const pmf p = pmf::normal(64, 20, 5);
  const pmf q = pmf::normal(64, 40, 9);
  EXPECT_NEAR(total_variation(p, q), total_variation(q, p), 1e-12);
}

TEST(hellinger, range_and_extremes) {
  const pmf p = pmf::from_weights(std::vector<double>{1.0, 0.0});
  const pmf q = pmf::from_weights(std::vector<double>{0.0, 1.0});
  EXPECT_NEAR(hellinger(p, q), 1.0, 1e-12);
  EXPECT_NEAR(hellinger(p, p), 0.0, 1e-7);
}

TEST(hellinger, below_sqrt_tv_bound) {
  // Hellinger^2 <= TV <= sqrt(2) * Hellinger.
  const pmf p = pmf::half_normal(64, 10);
  const pmf q = pmf::uniform(64);
  const double h = hellinger(p, q);
  const double tv = total_variation(p, q);
  EXPECT_LE(h * h, tv + 1e-12);
  EXPECT_LE(tv, std::sqrt(2.0) * h + 1e-12);
}

TEST(nonuniformity, orders_the_paper_distributions) {
  // Du < D1 (normal sigma 32) < D2-at-small-sigma in distance from uniform.
  const double du = nonuniformity(pmf::uniform(256));
  const double d1 = nonuniformity(pmf::normal(256, 127, 32));
  const double sharp = nonuniformity(pmf::half_normal(256, 12));
  EXPECT_NEAR(du, 0.0, 1e-12);
  EXPECT_GT(d1, du);
  EXPECT_GT(sharp, d1);
}

}  // namespace
}  // namespace axc::dist
