#include <gtest/gtest.h>

#include <vector>

#include "circuit/activity.h"
#include "circuit/netlist.h"
#include "support/rng.h"
#include "test_util.h"

namespace axc::circuit {
namespace {

/// Reference: simulate one assignment at a time and count transitions.
activity_profile naive_activity(const netlist& nl,
                                std::span<const std::uint64_t> stream) {
  activity_profile p;
  p.gate_toggle_rate.assign(nl.num_gates(), 0.0);
  p.input_toggle_rate.assign(nl.num_inputs(), 0.0);
  p.gate_one_probability.assign(nl.num_gates(), 0.0);
  p.cycles = stream.size();

  std::vector<std::uint64_t> prev(nl.num_signals(), 0);
  std::vector<std::uint64_t> cur(nl.num_signals(), 0);
  std::vector<double> toggles(nl.num_signals(), 0.0);
  std::vector<double> ones(nl.num_gates(), 0.0);

  for (std::size_t t = 0; t < stream.size(); ++t) {
    for (std::size_t i = 0; i < nl.num_inputs(); ++i) {
      cur[i] = (stream[t] >> i) & 1;
    }
    for (std::size_t k = 0; k < nl.num_gates(); ++k) {
      const gate_node& g = nl.gate(k);
      cur[nl.num_inputs() + k] =
          eval_gate(g.fn, cur[g.in0] ? ~std::uint64_t{0} : 0,
                    cur[g.in1] ? ~std::uint64_t{0} : 0) &
          1;
      ones[k] += static_cast<double>(cur[nl.num_inputs() + k]);
    }
    if (t > 0) {
      for (std::size_t s = 0; s < nl.num_signals(); ++s) {
        if (cur[s] != prev[s]) toggles[s] += 1.0;
      }
    }
    prev = cur;
  }
  const auto cycles = static_cast<double>(stream.size());
  for (std::size_t i = 0; i < nl.num_inputs(); ++i) {
    p.input_toggle_rate[i] = toggles[i] / cycles;
  }
  for (std::size_t k = 0; k < nl.num_gates(); ++k) {
    p.gate_toggle_rate[k] = toggles[nl.num_inputs() + k] / cycles;
    p.gate_one_probability[k] = ones[k] / cycles;
  }
  return p;
}

TEST(activity, matches_naive_reference) {
  rng gen(42);
  for (int trial = 0; trial < 10; ++trial) {
    const netlist nl = test::random_netlist(8, 4, 30, gen);
    std::vector<std::uint64_t> stream(300);
    for (auto& v : stream) v = gen.below(256);

    const activity_profile fast = profile_activity(nl, stream);
    const activity_profile slow = naive_activity(nl, stream);
    ASSERT_EQ(fast.gate_toggle_rate.size(), slow.gate_toggle_rate.size());
    for (std::size_t k = 0; k < fast.gate_toggle_rate.size(); ++k) {
      EXPECT_NEAR(fast.gate_toggle_rate[k], slow.gate_toggle_rate[k], 1e-12)
          << "trial " << trial << " gate " << k;
      EXPECT_NEAR(fast.gate_one_probability[k], slow.gate_one_probability[k],
                  1e-12);
    }
    for (std::size_t i = 0; i < fast.input_toggle_rate.size(); ++i) {
      EXPECT_NEAR(fast.input_toggle_rate[i], slow.input_toggle_rate[i],
                  1e-12);
    }
  }
}

TEST(activity, non_multiple_of_64_stream) {
  rng gen(43);
  const netlist nl = test::random_netlist(4, 2, 12, gen);
  std::vector<std::uint64_t> stream(101);
  for (auto& v : stream) v = gen.below(16);
  const activity_profile fast = profile_activity(nl, stream);
  const activity_profile slow = naive_activity(nl, stream);
  for (std::size_t k = 0; k < fast.gate_toggle_rate.size(); ++k) {
    EXPECT_NEAR(fast.gate_toggle_rate[k], slow.gate_toggle_rate[k], 1e-12);
  }
}

TEST(activity, constant_input_has_zero_toggles) {
  netlist nl(2, 1);
  const auto g = nl.add_gate(gate_fn::and2, 0, 1);
  nl.set_output(0, g);
  const std::vector<std::uint64_t> stream(128, 0b11);
  const activity_profile p = profile_activity(nl, stream);
  EXPECT_DOUBLE_EQ(p.gate_toggle_rate[0], 0.0);
  EXPECT_DOUBLE_EQ(p.gate_one_probability[0], 1.0);
}

TEST(activity, alternating_input_toggles_every_cycle) {
  netlist nl(1, 1);
  const auto g = nl.add_unary(gate_fn::buf_a, 0);
  nl.set_output(0, g);
  std::vector<std::uint64_t> stream(200);
  for (std::size_t t = 0; t < stream.size(); ++t) stream[t] = t & 1;
  const activity_profile p = profile_activity(nl, stream);
  // 199 transitions over 200 cycles.
  EXPECT_NEAR(p.gate_toggle_rate[0], 199.0 / 200.0, 1e-12);
  EXPECT_NEAR(p.gate_one_probability[0], 0.5, 1e-12);
}

TEST(activity, xor_of_alternating_inputs_is_constant) {
  netlist nl(2, 1);
  const auto g = nl.add_gate(gate_fn::xor2, 0, 1);
  nl.set_output(0, g);
  std::vector<std::uint64_t> stream(100);
  for (std::size_t t = 0; t < stream.size(); ++t) {
    stream[t] = (t & 1) ? 0b11 : 0b00;  // both inputs toggle together
  }
  const activity_profile p = profile_activity(nl, stream);
  EXPECT_DOUBLE_EQ(p.gate_toggle_rate[0], 0.0);
  EXPECT_NEAR(p.input_toggle_rate[0], 0.99, 1e-12);
}

}  // namespace
}  // namespace axc::circuit
