// Cross-module integration tests: the paper's central claims at smoke scale.
#include <gtest/gtest.h>

#include "core/design_flow.h"
#include "core/wmed_approximator.h"
#include "data/digits.h"
#include "imgproc/gaussian_filter.h"
#include "metrics/error_metrics.h"
#include "metrics/wmed_evaluator.h"
#include "mult/lut.h"
#include "mult/multipliers.h"
#include "nn/models.h"
#include "nn/quantize.h"
#include "nn/trainer.h"

namespace axc {
namespace {

using metrics::mult_spec;

// Claim 1 (case study 1): a multiplier evolved for distribution D scores a
// better WMED_D than one evolved for the uniform distribution at comparable
// area, because the search can spend its error budget on unlikely operands.
TEST(integration, distribution_tailoring_beats_uniform_under_target_metric) {
  const mult_spec spec{6, false};
  const dist::pmf d2 = dist::pmf::half_normal(64, 10.0);
  const dist::pmf du = dist::pmf::uniform(64);
  const circuit::netlist seed = mult::unsigned_multiplier(6);

  core::approximation_config cfg;
  cfg.spec = spec;
  cfg.iterations = 3000;
  cfg.extra_columns = 32;
  cfg.rng_seed = 9;
  cfg.runs_per_target = 2;

  const double target = 0.003;
  cfg.distribution = d2;
  const core::wmed_approximator tailored(cfg);
  cfg.distribution = du;
  const core::wmed_approximator generic(cfg);

  // Evolve under each distribution, then compare areas at the shared WMED
  // target measured under D2 (the application metric).
  double tailored_area = 1e18, generic_area = 1e18;
  metrics::wmed_evaluator d2_eval(spec, d2);
  for (std::size_t run = 0; run < cfg.runs_per_target; ++run) {
    const auto td = tailored.approximate(seed, target, run);
    tailored_area = std::min(tailored_area, td.area_um2);

    const auto gd = generic.approximate(seed, target, run);
    // The uniform-evolved design must meet the *same* D2 budget to be a
    // fair drop-in; re-measure and keep it only if it qualifies.
    if (d2_eval.evaluate(gd.netlist) <= target) {
      generic_area = std::min(generic_area, gd.area_um2);
    }
  }
  EXPECT_LT(tailored_area, generic_area)
      << "tailored=" << tailored_area << " generic=" << generic_area;
}

// Claim 2 (Fig. 4): the error mass of an evolved multiplier follows the
// inverse of the distribution weight — low error where D is heavy.
TEST(integration, error_map_reflects_distribution) {
  const mult_spec spec{6, false};
  const dist::pmf d2 = dist::pmf::half_normal(64, 8.0);
  core::approximation_config cfg;
  cfg.spec = spec;
  cfg.distribution = d2;
  cfg.iterations = 4000;
  cfg.extra_columns = 32;
  cfg.rng_seed = 31;
  const core::wmed_approximator approx(cfg);
  const auto design =
      approx.approximate(mult::unsigned_multiplier(6), 0.01);

  const auto exact = metrics::exact_product_table(spec);
  const auto table = metrics::product_table(design.netlist, spec);
  const auto map = metrics::error_map(exact, table, spec);

  // Mean |error| over rows with small operand A (heavy weight) vs rows with
  // large operand A (near-zero weight).
  double light_zone = 0.0, heavy_zone = 0.0;
  for (std::uint64_t b = 0; b < 64; ++b) {
    for (std::uint64_t a = 0; a < 16; ++a) {
      heavy_zone += map[(b << 6) | a];
    }
    for (std::uint64_t a = 48; a < 64; ++a) {
      light_zone += map[(b << 6) | a];
    }
  }
  EXPECT_LE(heavy_zone, light_zone);
}

// Claim 3 (Fig. 5 logic): a multiplier family with smaller WMED under the
// coefficient distribution yields better filtered-image quality.
TEST(integration, filter_quality_tracks_coefficient_wmed) {
  const mult_spec spec{8, false};
  // Gaussian 3x3 coefficients are 1, 2, 4: mass entirely on tiny operands.
  std::vector<double> w(256, 0.0);
  w[1] = 4.0 / 16.0;
  w[2] = 8.0 / 16.0;
  w[4] = 4.0 / 16.0;
  const dist::pmf coeff_dist = dist::pmf::from_weights(w);

  const auto exact = metrics::exact_product_table(spec);
  const mult::product_lut lut_good(mult::broken_array_multiplier(8, 0, 4),
                                   spec);
  const mult::product_lut lut_bad(mult::broken_array_multiplier(8, 3, 4),
                                  spec);

  const double wmed_good =
      metrics::wmed(exact, std::vector<std::int64_t>(lut_good.table().begin(),
                                                     lut_good.table().end()),
                    spec, coeff_dist);
  const double wmed_bad =
      metrics::wmed(exact, std::vector<std::int64_t>(lut_bad.table().begin(),
                                                     lut_bad.table().end()),
                    spec, coeff_dist);
  ASSERT_LT(wmed_good, wmed_bad);

  const auto qg = imgproc::evaluate_filter_quality(lut_good, 5, 32);
  const auto qb = imgproc::evaluate_filter_quality(lut_bad, 5, 32);
  EXPECT_GT(qg.mean_psnr_db, qb.mean_psnr_db);
}

// Claim 4 (case study 2 plumbing): weight-distribution-driven design flow
// produces a LUT whose quantized-NN accuracy at a modest WMED budget stays
// close to the exact-multiplier accuracy.
TEST(integration, nn_accuracy_survives_modest_wmed) {
  const auto train_set = data::make_mnist_like(800, 77);
  const auto test_set = data::make_mnist_like(200, 78);
  const auto train_x = data::to_tensors(train_set);
  const auto test_x = data::to_tensors(test_set);

  nn::network mlp = nn::make_mlp(55, 28 * 28, 32);
  nn::train_config tcfg;
  tcfg.epochs = 3;
  tcfg.learning_rate = 0.1f;
  nn::train(mlp, train_x, train_set.labels, tcfg);

  nn::quantized_network qnet(
      mlp, std::span<const nn::tensor>(train_x).subspan(0, 48));
  const auto exact_lut = mult::product_lut::exact(mult_spec{8, true});
  const double exact_acc =
      qnet.accuracy(test_x, test_set.labels, exact_lut);

  // Evolve a signed multiplier against the actual weight distribution.
  // A uniform floor protects rare-but-critical operands (e.g. the output
  // layer's large weights, which are a tiny fraction of the histogram) —
  // the alpha-weight flexibility the paper's Sec. III-A explicitly allows.
  const dist::pmf weight_dist =
      dist::pmf::from_int8_samples(qnet.quantized_weights())
          .blend(dist::pmf::uniform(256), 0.1);
  core::approximation_config cfg;
  cfg.spec = mult_spec{8, true};
  cfg.distribution = weight_dist;
  cfg.iterations = 1200;  // smoke budget
  cfg.extra_columns = 32;
  cfg.rng_seed = 5;
  const core::wmed_approximator approx(cfg);
  const auto design =
      approx.approximate(mult::signed_multiplier(8), 0.0003);
  ASSERT_LE(design.wmed, 0.0003 + 1e-12);

  const mult::product_lut evolved_lut(design.netlist, cfg.spec);
  const double approx_acc =
      qnet.accuracy(test_x, test_set.labels, evolved_lut);
  EXPECT_GT(approx_acc, exact_acc - 0.05)
      << "exact=" << exact_acc << " approx=" << approx_acc;
}

}  // namespace
}  // namespace axc
