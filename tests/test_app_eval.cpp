// core::app_eval — application-level re-ranking of session fronts.
//
// Contracts under test: metric scores equal direct (bench-style)
// evaluation bit for bit; rerank_front is bit-identical at any thread
// count; candidates restored from a session checkpoint re-rank identically
// to the live session's; multiple checkpoints union into one front via
// pareto_archive::merge.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <sstream>
#include <vector>

#include "core/app_eval.h"
#include "core/component_handle.h"
#include "core/design_flow.h"
#include "data/digits.h"
#include "imgproc/gaussian_filter.h"
#include "mult/multipliers.h"
#include "nn/models.h"
#include "nn/quantize.h"
#include "nn/trainer.h"

namespace axc::core {
namespace {

constexpr std::size_t kHidden = 32;
constexpr std::uint64_t kNetSeed = 3;

/// Tiny trained digit MLP + its datasets, shared by the accuracy tests.
struct nn_fixture {
  std::vector<nn::tensor> train_x;
  std::vector<int> train_labels;
  std::vector<nn::tensor> test_x;
  std::vector<int> test_labels;
  nn::network trained;

  nn_fixture() {
    const data::digit_dataset train_set = data::make_mnist_like(80, 31);
    const data::digit_dataset test_set = data::make_mnist_like(40, 32);
    train_x = data::to_tensors(train_set);
    train_labels = train_set.labels;
    test_x = data::to_tensors(test_set);
    test_labels = test_set.labels;

    trained = nn::make_mlp(kNetSeed, 28 * 28, kHidden);
    nn::train_config cfg;
    cfg.epochs = 1;
    cfg.learning_rate = 0.08f;
    nn::train(trained, train_x, train_labels, cfg);
  }

  [[nodiscard]] nn_accuracy_options accuracy_options(
      std::optional<nn::finetune_config> finetune = {}) const {
    nn_accuracy_options options;
    options.build = [] { return nn::make_mlp(kNetSeed, 28 * 28, kHidden); };
    options.trained_weights = save_network_weights(trained);
    options.calibration = std::span<const nn::tensor>(train_x).subspan(0, 16);
    options.test_x = test_x;
    options.test_labels = test_labels;
    options.finetune = finetune;
    options.train_x = train_x;
    options.train_labels = train_labels;
    return options;
  }
};

const nn_fixture& fixture() {
  static const nn_fixture f;
  return f;
}

std::vector<app_candidate> signed_candidates() {
  std::vector<app_candidate> candidates;
  candidates.push_back(
      {0, "exact", 0.0, 0.0, 0.0, mult::signed_multiplier(8)});
  candidates.push_back(
      {1, "truncated", 0.0, 0.0, 0.0, mult::truncated_multiplier(8, 7, true)});
  return candidates;
}

TEST(app_eval, nn_accuracy_and_power_match_direct_evaluation) {
  const nn_fixture& f = fixture();
  const metrics::mult_spec spec{8, true};
  const auto& lib = tech::cell_library::nangate45_like();
  const dist::pmf weight_dist = dist::pmf::half_normal(256, 48.0);

  nn::finetune_config ft;
  ft.epochs = 1;
  ft.batch_size = 16;

  std::vector<std::unique_ptr<app_metric>> metrics;
  metrics.push_back(make_nn_accuracy_metric(f.accuracy_options()));
  metrics.push_back(make_nn_accuracy_metric(f.accuracy_options(ft)));
  power_metric_options power;
  power.distribution = weight_dist;
  power.mac_acc_width = 26;
  power.workload_samples = 512;
  metrics.push_back(make_power_metric(std::move(power)));

  rerank_config config;
  config.spec = spec;
  config.quality_metric = 0;
  config.cost_metric = 2;
  const rerank_result result = rerank_front(signed_candidates(), metrics,
                                            config);
  ASSERT_EQ(result.designs.size(), 2u);

  // Direct (pre-app_eval, bench-style) evaluation of the same circuits.
  for (const reranked_design& design : result.designs) {
    const metrics::compiled_mult_table table(design.candidate.netlist, spec);

    nn::network net = nn::make_mlp(kNetSeed, 28 * 28, kHidden);
    std::istringstream blob(save_network_weights(f.trained));
    ASSERT_TRUE(net.load_weights(blob));
    nn::quantized_network qnet(
        net, std::span<const nn::tensor>(f.train_x).subspan(0, 16));
    EXPECT_EQ(design.scores[0],
              qnet.accuracy(f.test_x, f.test_labels, table));

    nn::finetune(qnet, f.train_x, f.train_labels, table, ft);
    EXPECT_EQ(design.scores[1],
              qnet.accuracy(f.test_x, f.test_labels, table));

    EXPECT_EQ(design.scores[2],
              characterize_mac(design.candidate.netlist, spec, weight_dist,
                               26, lib, 512)
                  .power_uw);
  }

  // Front orientation: quality negated (higher is better), cost as-is.
  ASSERT_FALSE(result.front.empty());
  for (const pareto_point& p : result.front) {
    EXPECT_EQ(p.x, -result.at(p).scores[0]);
    EXPECT_EQ(p.y, result.at(p).scores[2]);
  }
}

TEST(app_eval, gaussian_psnr_matches_direct_evaluation) {
  const metrics::mult_spec spec{8, false};
  std::vector<app_candidate> candidates;
  candidates.push_back(
      {0, "exact", 0.0, 0.0, 0.0, mult::unsigned_multiplier(8)});
  candidates.push_back(
      {1, "truncated", 0.0, 0.0, 0.0, mult::truncated_multiplier(8, 6)});

  gaussian_psnr_options psnr;
  psnr.image_count = 3;
  psnr.image_size = 32;
  psnr.cache = make_psnr_cache();
  gaussian_psnr_options worst = psnr;
  worst.report_min = true;
  worst.name = "min_psnr_db";
  power_metric_options power;
  power.distribution = dist::pmf::half_normal(256, 16.0);
  power.workload_samples = 512;

  std::vector<std::unique_ptr<app_metric>> metrics;
  metrics.push_back(make_gaussian_psnr_metric(psnr));
  metrics.push_back(make_power_metric(std::move(power)));
  metrics.push_back(make_gaussian_psnr_metric(worst));

  rerank_config config;
  config.spec = spec;
  const rerank_result result = rerank_front(std::move(candidates), metrics,
                                            config);
  ASSERT_EQ(result.designs.size(), 2u);
  EXPECT_EQ(result.metric_names[0], "psnr_db");
  EXPECT_EQ(result.metric_names[2], "min_psnr_db");

  for (const reranked_design& design : result.designs) {
    const metrics::compiled_mult_table table(design.candidate.netlist, spec);
    const imgproc::filter_quality quality =
        imgproc::evaluate_filter_quality(table, 3, 32);
    EXPECT_EQ(design.scores[0], quality.mean_psnr_db);
    EXPECT_EQ(design.scores[2], quality.min_psnr_db);
  }
  // The exact multiplier filters better than the deeply truncated one.
  EXPECT_GT(result.designs[0].scores[0], result.designs[1].scores[0]);
}

TEST(app_eval, bit_identical_at_any_thread_count) {
  const nn_fixture& f = fixture();
  std::vector<std::unique_ptr<app_metric>> metrics;
  metrics.push_back(make_nn_accuracy_metric(f.accuracy_options()));
  power_metric_options power;
  power.distribution = dist::pmf::half_normal(256, 48.0);
  power.workload_samples = 512;
  metrics.push_back(make_power_metric(std::move(power)));

  rerank_config serial;
  serial.spec = metrics::mult_spec{8, true};
  rerank_config parallel = serial;
  parallel.threads = 4;

  const rerank_result a = rerank_front(signed_candidates(), metrics, serial);
  const rerank_result b =
      rerank_front(signed_candidates(), metrics, parallel);

  ASSERT_EQ(a.designs.size(), b.designs.size());
  for (std::size_t i = 0; i < a.designs.size(); ++i) {
    EXPECT_EQ(a.designs[i].scores, b.designs[i].scores) << "design " << i;
  }
  ASSERT_EQ(a.front.size(), b.front.size());
  for (std::size_t i = 0; i < a.front.size(); ++i) {
    EXPECT_EQ(a.front[i], b.front[i]) << "front point " << i;
  }
}

TEST(app_eval, shared_power_cache_matches_uncached_metrics) {
  const auto make_metrics = [](bool shared) {
    std::vector<std::unique_ptr<app_metric>> metrics;
    const auto cache = shared ? make_power_cache() : nullptr;
    for (const auto [quantity, label] :
         {std::pair{power_metric_options::quantity::power_uw, "power_uw"},
          std::pair{power_metric_options::quantity::pdp_fj, "pdp_fj"},
          std::pair{power_metric_options::quantity::area_um2, "area_um2"}}) {
      power_metric_options power;
      power.distribution = dist::pmf::half_normal(256, 48.0);
      power.mac_acc_width = 26;
      power.workload_samples = 512;
      power.report = quantity;
      power.name = label;
      power.cache = cache;
      metrics.push_back(make_power_metric(std::move(power)));
    }
    return metrics;
  };
  const auto uncached_metrics = make_metrics(false);
  const auto cached_metrics = make_metrics(true);

  rerank_config config;
  config.spec = metrics::mult_spec{8, true};
  config.cost_metric = 1;
  const rerank_result uncached =
      rerank_front(signed_candidates(), uncached_metrics, config);
  config.threads = 4;  // exercise the cache's locking under contention
  const rerank_result cached =
      rerank_front(signed_candidates(), cached_metrics, config);

  ASSERT_EQ(uncached.designs.size(), cached.designs.size());
  for (std::size_t i = 0; i < uncached.designs.size(); ++i) {
    EXPECT_EQ(uncached.designs[i].scores, cached.designs[i].scores)
        << "design " << i;
  }
}

approximation_config session_cfg() {
  approximation_config cfg;
  cfg.spec = metrics::mult_spec{8, false};
  cfg.distribution = dist::pmf::half_normal(256, 64.0);
  cfg.iterations = 60;
  cfg.extra_columns = 24;
  cfg.rng_seed = 21;
  return cfg;
}

TEST(app_eval, checkpoint_candidates_reproduce_live_session) {
  const approximation_config cfg = session_cfg();
  const circuit::netlist seed = mult::unsigned_multiplier(8);
  sweep_plan plan;
  plan.targets = {0.002, 0.02};

  search_session session(make_component(cfg), seed, plan);
  session.run();
  ASSERT_TRUE(session.finished());
  const std::vector<app_candidate> live =
      session_candidates(session, /*front_only=*/false, "proposed");

  std::stringstream checkpoint;
  session.save(checkpoint);
  std::istream* stream = &checkpoint;
  const auto restored = checkpoint_candidates(
      std::span<std::istream* const>(&stream, 1), make_component(cfg),
      /*front_only=*/false, "proposed");
  ASSERT_TRUE(restored.has_value());

  ASSERT_EQ(restored->size(), live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ((*restored)[i].netlist, live[i].netlist) << "candidate " << i;
    EXPECT_EQ((*restored)[i].target, live[i].target);
    EXPECT_EQ((*restored)[i].wmed, live[i].wmed);
    EXPECT_EQ((*restored)[i].area_um2, live[i].area_um2);
    EXPECT_EQ((*restored)[i].family, "proposed");
  }

  // Re-ranking the restored candidates gives bit-identical scores.
  std::vector<std::unique_ptr<app_metric>> metrics;
  power_metric_options power;
  power.distribution = cfg.distribution;
  power.workload_samples = 512;
  metrics.push_back(make_power_metric(std::move(power)));
  gaussian_psnr_options psnr;
  psnr.image_count = 2;
  psnr.image_size = 32;
  metrics.push_back(make_gaussian_psnr_metric(psnr));

  rerank_config rconfig;
  rconfig.spec = cfg.spec;
  rconfig.quality_metric = 1;
  rconfig.cost_metric = 0;
  const rerank_result from_live = rerank_front(live, metrics, rconfig);
  const rerank_result from_checkpoint =
      rerank_front(*restored, metrics, rconfig);
  ASSERT_EQ(from_live.designs.size(), from_checkpoint.designs.size());
  for (std::size_t i = 0; i < from_live.designs.size(); ++i) {
    EXPECT_EQ(from_live.designs[i].scores,
              from_checkpoint.designs[i].scores);
  }
}

TEST(app_eval, multiple_checkpoints_merge_into_one_front) {
  const approximation_config cfg = session_cfg();
  const circuit::netlist seed = mult::unsigned_multiplier(8);

  // The same sweep once as one session and once sharded across two.
  sweep_plan whole_plan;
  whole_plan.targets = {0.002, 0.02};
  search_session whole(make_component(cfg), seed, whole_plan);
  whole.run();
  const std::vector<app_candidate> whole_front =
      session_candidates(whole, /*front_only=*/true);

  std::stringstream shard_a, shard_b;
  {
    sweep_plan plan;
    plan.targets = {0.002};
    search_session session(make_component(cfg), seed, plan);
    session.run();
    session.save(shard_a);
  }
  {
    sweep_plan plan;
    plan.targets = {0.02};
    search_session session(make_component(cfg), seed, plan);
    session.run();
    session.save(shard_b);
  }

  std::istream* streams[] = {&shard_a, &shard_b};
  const auto merged = checkpoint_candidates(
      std::span<std::istream* const>(streams, 2), make_component(cfg),
      /*front_only=*/true);
  ASSERT_TRUE(merged.has_value());

  // Job RNG streams depend only on (rng_seed, target, run_index), so the
  // sharded designs equal the whole sweep's; the merged union front must
  // therefore match the whole session's archive front member for member.
  ASSERT_EQ(merged->size(), whole_front.size());
  for (std::size_t i = 0; i < merged->size(); ++i) {
    EXPECT_EQ((*merged)[i].netlist, whole_front[i].netlist) << "member " << i;
    EXPECT_EQ((*merged)[i].wmed, whole_front[i].wmed);
    EXPECT_EQ((*merged)[i].area_um2, whole_front[i].area_um2);
  }
}

TEST(app_eval, checkpoint_candidates_reject_bad_input) {
  std::stringstream garbage("not a checkpoint");
  std::istream* stream = &garbage;
  const auto result = checkpoint_candidates(
      std::span<std::istream* const>(&stream, 1),
      make_component(session_cfg()));
  EXPECT_FALSE(result.has_value());
}

// ---------------------------------------------------------------------------
// Incremental re-ranking (rerank_score_cache)
// ---------------------------------------------------------------------------

/// Deterministic metric that counts its score() invocations — how the tests
/// below observe which candidates a rerank actually evaluated.
class counting_metric final : public app_metric {
 public:
  counting_metric(std::string name, std::uint64_t fp, bool higher,
                  bool fingerprinted = true)
      : name_(std::move(name)),
        fp_(fp),
        higher_(higher),
        fingerprinted_(fingerprinted) {}

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] bool higher_is_better() const override { return higher_; }
  [[nodiscard]] std::optional<std::uint64_t> fingerprint() const override {
    if (!fingerprinted_) return std::nullopt;
    return fp_;
  }
  [[nodiscard]] double score(
      const circuit::netlist& nl,
      const metrics::compiled_mult_table&) const override {
    ++calls_;
    return static_cast<double>(nl.num_gates()) + 0.25 * static_cast<double>(fp_);
  }
  [[nodiscard]] std::size_t calls() const { return calls_; }

 private:
  std::string name_;
  std::uint64_t fp_;
  bool higher_;
  bool fingerprinted_;
  mutable std::atomic<std::size_t> calls_{0};
};

std::vector<app_candidate> cache_test_candidates() {
  std::vector<app_candidate> candidates;
  candidates.push_back(
      {0, "exact", 0.0, 0.0, 0.0, mult::unsigned_multiplier(8)});
  candidates.push_back(
      {1, "trunc4", 0.0, 0.0, 0.0, mult::truncated_multiplier(8, 4)});
  return candidates;
}

TEST(app_eval, rerank_cache_scores_only_changed_candidates) {
  std::vector<std::unique_ptr<app_metric>> metrics;
  metrics.push_back(std::make_unique<counting_metric>("q", 11, true));
  metrics.push_back(std::make_unique<counting_metric>("c", 23, false));
  const auto* q = static_cast<const counting_metric*>(metrics[0].get());
  const auto* c = static_cast<const counting_metric*>(metrics[1].get());

  rerank_config config;
  config.cache = make_rerank_cache();

  // Cold rerank: every (candidate x metric) job runs.
  const rerank_result first = rerank_front(cache_test_candidates(), metrics,
                                           config);
  EXPECT_EQ(q->calls(), 2u);
  EXPECT_EQ(c->calls(), 2u);

  // Unchanged rerank: everything replays from the cache.
  const rerank_result second = rerank_front(cache_test_candidates(), metrics,
                                            config);
  EXPECT_EQ(q->calls(), 2u);
  EXPECT_EQ(c->calls(), 2u);
  ASSERT_EQ(second.designs.size(), first.designs.size());
  for (std::size_t i = 0; i < first.designs.size(); ++i) {
    EXPECT_EQ(second.designs[i].scores, first.designs[i].scores);
  }
  ASSERT_EQ(second.front.size(), first.front.size());
  for (std::size_t i = 0; i < first.front.size(); ++i) {
    EXPECT_EQ(second.front[i].x, first.front[i].x);
    EXPECT_EQ(second.front[i].y, first.front[i].y);
    EXPECT_EQ(second.front[i].index, first.front[i].index);
  }

  // Archive evolved: one kept member, one new — only the new one scores.
  std::vector<app_candidate> evolved;
  evolved.push_back(
      {0, "exact", 0.0, 0.0, 0.0, mult::unsigned_multiplier(8)});
  evolved.push_back(
      {1, "bam", 0.0, 0.0, 0.0, mult::broken_array_multiplier(8, 2, 3)});
  (void)rerank_front(std::move(evolved), metrics, config);
  EXPECT_EQ(q->calls(), 3u);
  EXPECT_EQ(c->calls(), 3u);
}

TEST(app_eval, rerank_cache_matches_cold_rerank_and_respects_spec) {
  std::vector<std::unique_ptr<app_metric>> metrics;
  metrics.push_back(std::make_unique<counting_metric>("q", 5, true));
  metrics.push_back(std::make_unique<counting_metric>("c", 7, false));

  rerank_config cold;  // no cache
  const rerank_result reference = rerank_front(cache_test_candidates(),
                                               metrics, cold);

  rerank_config warm;
  warm.cache = make_rerank_cache();
  (void)rerank_front(cache_test_candidates(), metrics, warm);
  const rerank_result cached = rerank_front(cache_test_candidates(), metrics,
                                            warm);
  ASSERT_EQ(cached.designs.size(), reference.designs.size());
  for (std::size_t i = 0; i < reference.designs.size(); ++i) {
    EXPECT_EQ(cached.designs[i].scores, reference.designs[i].scores);
  }

  // A different compile spec must not serve the old spec's scores.
  const auto* q = static_cast<const counting_metric*>(metrics[0].get());
  const std::size_t before = q->calls();
  rerank_config other_spec = warm;
  other_spec.spec = metrics::mult_spec{8, true};
  std::vector<app_candidate> signed_cands;
  signed_cands.push_back(
      {0, "exact", 0.0, 0.0, 0.0, mult::signed_multiplier(8)});
  (void)rerank_front(std::move(signed_cands), metrics, other_spec);
  EXPECT_EQ(q->calls(), before + 1);
}

TEST(app_eval, rerank_cache_never_caches_unfingerprinted_metrics) {
  std::vector<std::unique_ptr<app_metric>> metrics;
  metrics.push_back(std::make_unique<counting_metric>("q", 3, true));
  metrics.push_back(std::make_unique<counting_metric>(
      "opaque", 0, false, /*fingerprinted=*/false));
  const auto* opaque = static_cast<const counting_metric*>(metrics[1].get());

  rerank_config config;
  config.cache = make_rerank_cache();
  (void)rerank_front(cache_test_candidates(), metrics, config);
  (void)rerank_front(cache_test_candidates(), metrics, config);
  // The opaque metric re-scores both candidates on both reranks.
  EXPECT_EQ(opaque->calls(), 4u);
}

TEST(app_eval, shipped_metrics_report_option_sensitive_fingerprints) {
  const nn_fixture& f = fixture();
  const auto accuracy = make_nn_accuracy_metric(f.accuracy_options());
  ASSERT_TRUE(accuracy->fingerprint().has_value());
  EXPECT_EQ(accuracy->fingerprint(),
            make_nn_accuracy_metric(f.accuracy_options())->fingerprint());

  gaussian_psnr_options mean_psnr;
  gaussian_psnr_options min_psnr;
  min_psnr.report_min = true;
  const auto psnr_a = make_gaussian_psnr_metric(mean_psnr);
  const auto psnr_b = make_gaussian_psnr_metric(min_psnr);
  ASSERT_TRUE(psnr_a->fingerprint().has_value());
  EXPECT_NE(psnr_a->fingerprint(), psnr_b->fingerprint());

  power_metric_options power;
  power.distribution = dist::pmf::half_normal(256, 48.0);
  power_metric_options pdp = power;
  pdp.report = power_metric_options::quantity::pdp_fj;
  const auto power_metric = make_power_metric(std::move(power));
  const auto pdp_metric = make_power_metric(std::move(pdp));
  ASSERT_TRUE(power_metric->fingerprint().has_value());
  EXPECT_NE(power_metric->fingerprint(), pdp_metric->fingerprint());
}

}  // namespace
}  // namespace axc::core
