// The parallel (1 + lambda) evolver must be a pure throughput optimization:
// for a fixed seed it reproduces the serial run bit-for-bit — same mutation
// stream, same offspring selection, same final genotype.
#include <gtest/gtest.h>

#include "cgp/evolver.h"
#include "cgp/genotype.h"
#include "core/wmed_approximator.h"
#include "dist/pmf.h"
#include "mult/multipliers.h"
#include "support/rng.h"
#include "test_util.h"

namespace axc::cgp {
namespace {

parameters small_params() {
  parameters p;
  p.num_inputs = 4;
  p.num_outputs = 2;
  p.columns = 20;
  p.rows = 1;
  p.levels_back = 20;
  p.function_set.assign(circuit::default_function_set().begin(),
                        circuit::default_function_set().end());
  p.max_mutations = 3;
  p.lambda = 4;
  return p;
}

// Pure, stateless objective: output 0 must equal input0 XOR input1.
evolver::evaluate_fn xor_objective() {
  return [](const circuit::netlist& nl) -> evaluation {
    std::size_t wrong = 0;
    for (std::uint64_t v = 0; v < 16; ++v) {
      const std::uint64_t expected = (v & 1) ^ ((v >> 1) & 1);
      if ((test::naive_eval(nl, v) & 1) != expected) ++wrong;
    }
    evaluation e;
    e.error = static_cast<double>(wrong) / 16.0;
    e.feasible = wrong == 0;
    e.area = static_cast<double>(nl.active_gate_count());
    return e;
  };
}

evolver::run_result serial_run(std::uint64_t seed_value,
                               std::size_t iterations) {
  rng gen(seed_value);
  const genotype seed = genotype::random(small_params(), gen);
  evolver::options opts;
  opts.iterations = iterations;
  return evolver::run(seed, xor_objective(), opts, gen);
}

evolver::run_result parallel_run(std::uint64_t seed_value,
                                 std::size_t iterations, std::size_t threads) {
  rng gen(seed_value);
  const genotype seed = genotype::random(small_params(), gen);
  evolver::options opts;
  opts.iterations = iterations;
  return evolver::run_parallel(seed, xor_objective, opts, threads, gen);
}

TEST(evolver_parallel, reproduces_serial_run_bit_for_bit) {
  for (const std::uint64_t seed : {11ull, 42ull, 1234ull}) {
    const auto serial = serial_run(seed, 400);
    for (const std::size_t threads : {1u, 2u, 4u}) {
      const auto parallel = parallel_run(seed, 400, threads);
      EXPECT_EQ(parallel.best, serial.best) << "threads=" << threads;
      EXPECT_EQ(parallel.best_eval.error, serial.best_eval.error);
      EXPECT_EQ(parallel.best_eval.area, serial.best_eval.area);
      EXPECT_EQ(parallel.best_eval.feasible, serial.best_eval.feasible);
      EXPECT_EQ(parallel.evaluations, serial.evaluations);
      EXPECT_EQ(parallel.improvements, serial.improvements);
      EXPECT_EQ(parallel.neutral_moves, serial.neutral_moves);
    }
  }
}

TEST(evolver_parallel, repeated_parallel_runs_are_identical) {
  const auto a = parallel_run(7, 300, 3);
  const auto b = parallel_run(7, 300, 3);
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.improvements, b.improvements);
  EXPECT_EQ(a.neutral_moves, b.neutral_moves);
}

TEST(evolver_parallel, more_threads_than_lambda_is_capped_safely) {
  const auto serial = serial_run(5, 200);
  const auto wide = parallel_run(5, 200, 16);  // lambda is only 4
  EXPECT_EQ(wide.best, serial.best);
  EXPECT_EQ(wide.evaluations, serial.evaluations);
}

TEST(evolver_parallel, solves_the_toy_problem) {
  const auto result = parallel_run(9, 2000, 2);
  EXPECT_TRUE(result.best_eval.feasible);
  EXPECT_LE(result.best_eval.area, 2.0);
}

}  // namespace
}  // namespace axc::cgp

namespace axc::core {
namespace {

TEST(approximator_threads, parallel_search_reproduces_serial_designs) {
  // End-to-end: a small WMED-constrained CGP search must return the same
  // evolved design regardless of the thread count.
  approximation_config config;
  config.spec = metrics::mult_spec{6, false};
  config.distribution = dist::pmf::half_normal(64, 16.0);
  config.iterations = 60;
  config.extra_columns = 16;
  config.rng_seed = 3;

  const circuit::netlist seed = mult::unsigned_multiplier(6);

  config.threads = 1;
  const evolved_design serial =
      wmed_approximator(config).approximate(seed, 0.003);

  config.threads = 2;
  const evolved_design parallel =
      wmed_approximator(config).approximate(seed, 0.003);

  EXPECT_EQ(parallel.netlist, serial.netlist);
  EXPECT_EQ(parallel.wmed, serial.wmed);
  EXPECT_EQ(parallel.area_um2, serial.area_um2);
  EXPECT_EQ(parallel.evaluations, serial.evaluations);
}

}  // namespace
}  // namespace axc::core
