#include <gtest/gtest.h>

#include "core/pareto.h"
#include "support/rng.h"

namespace axc::core {
namespace {

TEST(dominates, strict_and_weak_cases) {
  EXPECT_TRUE(dominates({1, 1, 0}, {2, 2, 0}));
  EXPECT_TRUE(dominates({1, 2, 0}, {2, 2, 0}));
  EXPECT_FALSE(dominates({2, 2, 0}, {1, 1, 0}));
  EXPECT_FALSE(dominates({1, 1, 0}, {1, 1, 0}));  // equal: no domination
  EXPECT_FALSE(dominates({1, 3, 0}, {2, 2, 0}));  // trade-off
}

TEST(pareto_front, filters_dominated_points) {
  const std::vector<pareto_point> points{
      {1.0, 10.0, 0}, {2.0, 5.0, 1}, {3.0, 7.0, 2},  // dominated by 1
      {4.0, 2.0, 3},  {5.0, 2.5, 4},                 // dominated by 3
  };
  const auto front = pareto_front(points);
  ASSERT_EQ(front.size(), 3u);
  EXPECT_EQ(front[0].index, 0u);
  EXPECT_EQ(front[1].index, 1u);
  EXPECT_EQ(front[2].index, 3u);
}

TEST(pareto_front, sorted_by_x_with_decreasing_y) {
  const std::vector<pareto_point> points{
      {5, 1, 0}, {1, 9, 1}, {3, 4, 2}, {2, 6, 3}, {4, 2, 4}};
  const auto front = pareto_front(points);
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GT(front[i].x, front[i - 1].x);
    EXPECT_LT(front[i].y, front[i - 1].y);
  }
}

TEST(pareto_front, single_point) {
  const std::vector<pareto_point> points{{1, 1, 7}};
  const auto front = pareto_front(points);
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0].index, 7u);
}

TEST(pareto_front, all_on_front) {
  const std::vector<pareto_point> points{{1, 4, 0}, {2, 3, 1}, {3, 2, 2},
                                         {4, 1, 3}};
  EXPECT_EQ(pareto_front(points).size(), 4u);
}

TEST(pareto_front, duplicates_kept_once) {
  const std::vector<pareto_point> points{{1, 1, 0}, {1, 1, 1}, {2, 2, 2}};
  const auto front = pareto_front(points);
  ASSERT_EQ(front.size(), 1u);
}

TEST(pareto_front, empty_input) {
  EXPECT_TRUE(pareto_front(std::vector<pareto_point>{}).empty());
}

TEST(pareto_archive, incremental_equals_batch_in_any_order) {
  // The live session archive must converge to pareto_front() of the full
  // history regardless of job completion order.
  std::vector<pareto_point> points;
  std::uint64_t state = 42;
  for (std::size_t i = 0; i < 120; ++i) {
    const double x = static_cast<double>(splitmix64(state) % 50);
    const double y = static_cast<double>(splitmix64(state) % 50);
    points.push_back({x, y, i});
  }
  const auto batch = pareto_front(points);

  rng gen(5);
  for (int shuffle = 0; shuffle < 4; ++shuffle) {
    // Fisher-Yates with the repo rng: a different insertion order each time.
    std::vector<pareto_point> order = points;
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[gen.below(i)]);
    }
    pareto_archive archive;
    for (const auto& p : order) archive.insert(p);

    ASSERT_EQ(archive.size(), batch.size()) << "shuffle " << shuffle;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(archive.points()[i].x, batch[i].x);
      EXPECT_EQ(archive.points()[i].y, batch[i].y);
    }
  }
}

TEST(pareto_archive, prunes_dominated_and_rejects_dominated) {
  pareto_archive archive;
  EXPECT_TRUE(archive.insert({2, 2, 0}));
  EXPECT_FALSE(archive.insert({3, 3, 1}));  // dominated: rejected
  EXPECT_TRUE(archive.insert({1, 3, 2}));   // trade-off: kept
  EXPECT_TRUE(archive.insert({1, 1, 3}));   // dominates both incumbents
  ASSERT_EQ(archive.size(), 1u);
  EXPECT_EQ(archive.points()[0].index, 3u);
}

TEST(pareto_archive, coordinate_ties_keep_lowest_index) {
  // Jobs can finish in any scheduler order; exact (x, y) ties must still
  // resolve deterministically.
  pareto_archive a;
  EXPECT_TRUE(a.insert({1, 1, 5}));
  EXPECT_TRUE(a.insert({1, 1, 2}));   // lower index replaces
  EXPECT_FALSE(a.insert({1, 1, 9}));  // higher index rejected
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a.points()[0].index, 2u);

  pareto_archive b;
  EXPECT_TRUE(b.insert({1, 1, 2}));
  EXPECT_FALSE(b.insert({1, 1, 5}));
  EXPECT_EQ(b.points()[0].index, 2u);
}

TEST(pareto_archive, maintains_sorted_invariant) {
  pareto_archive archive;
  archive.insert({5, 1, 0});
  archive.insert({1, 9, 1});
  archive.insert({3, 4, 2});
  archive.insert({2, 6, 3});
  archive.insert({4, 2, 4});
  const auto& front = archive.points();
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GT(front[i].x, front[i - 1].x);
    EXPECT_LT(front[i].y, front[i - 1].y);
  }
}

TEST(pareto_archive, merge_unions_archives) {
  pareto_archive a;
  a.insert({1, 9, 0});
  a.insert({5, 3, 1});
  pareto_archive b;
  b.insert({3, 5, 2});
  b.insert({6, 1, 3});
  b.insert({2, 20, 4});  // dominated by a's {1, 9}

  const std::size_t kept = a.merge(b);
  EXPECT_EQ(kept, 2u);  // {2,20} rejected
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a.points()[0].index, 0u);
  EXPECT_EQ(a.points()[1].index, 2u);
  EXPECT_EQ(a.points()[2].index, 1u);
  EXPECT_EQ(a.points()[3].index, 3u);
}

TEST(pareto_archive, merge_is_order_independent) {
  // Union of per-session fronts must equal the front of the union,
  // whichever side merges into which — the cross-checkpoint contract.
  std::vector<pareto_point> points;
  std::uint64_t state = 7;
  for (std::size_t i = 0; i < 80; ++i) {
    points.push_back({static_cast<double>(splitmix64(state) % 40),
                      static_cast<double>(splitmix64(state) % 40), i});
  }

  pareto_archive whole;
  for (const auto& p : points) whole.insert(p);

  pareto_archive first, second;
  for (std::size_t i = 0; i < points.size(); ++i) {
    (i % 2 == 0 ? first : second).insert(points[i]);
  }
  pareto_archive ab = first;
  ab.merge(second);
  pareto_archive ba = second;
  ba.merge(first);

  ASSERT_EQ(ab.size(), whole.size());
  ASSERT_EQ(ba.size(), whole.size());
  for (std::size_t i = 0; i < whole.size(); ++i) {
    EXPECT_EQ(ab.points()[i], whole.points()[i]) << "point " << i;
    EXPECT_EQ(ba.points()[i], whole.points()[i]) << "point " << i;
  }
}

TEST(pareto_archive, merge_coordinate_ties_keep_lowest_index) {
  pareto_archive a;
  a.insert({1, 1, 5});
  pareto_archive b;
  b.insert({1, 1, 2});
  a.merge(b);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a.points()[0].index, 2u);
}

TEST(pareto_archive, merge_edge_cases) {
  pareto_archive a;
  a.insert({1, 1, 0});
  pareto_archive empty;
  EXPECT_EQ(a.merge(empty), 0u);
  EXPECT_EQ(a.merge(a), 0u);  // self-merge is a no-op
  ASSERT_EQ(a.size(), 1u);

  pareto_archive c;
  EXPECT_EQ(c.merge(a), 1u);
  EXPECT_EQ(c.size(), 1u);
}

TEST(pareto_front, no_front_point_dominated) {
  // Property: nothing on the front is dominated by any input point.
  std::vector<pareto_point> points;
  std::uint64_t state = 99;
  for (std::size_t i = 0; i < 200; ++i) {
    const double x = static_cast<double>(splitmix64(state) % 1000);
    const double y = static_cast<double>(splitmix64(state) % 1000);
    points.push_back({x, y, i});
  }
  const auto front = pareto_front(points);
  for (const auto& f : front) {
    for (const auto& p : points) {
      EXPECT_FALSE(dominates(p, f))
          << "(" << p.x << "," << p.y << ") dominates front point ("
          << f.x << "," << f.y << ")";
    }
  }
}

}  // namespace
}  // namespace axc::core
