#include <gtest/gtest.h>

#include "core/pareto.h"
#include "support/rng.h"

namespace axc::core {
namespace {

TEST(dominates, strict_and_weak_cases) {
  EXPECT_TRUE(dominates({1, 1, 0}, {2, 2, 0}));
  EXPECT_TRUE(dominates({1, 2, 0}, {2, 2, 0}));
  EXPECT_FALSE(dominates({2, 2, 0}, {1, 1, 0}));
  EXPECT_FALSE(dominates({1, 1, 0}, {1, 1, 0}));  // equal: no domination
  EXPECT_FALSE(dominates({1, 3, 0}, {2, 2, 0}));  // trade-off
}

TEST(pareto_front, filters_dominated_points) {
  const std::vector<pareto_point> points{
      {1.0, 10.0, 0}, {2.0, 5.0, 1}, {3.0, 7.0, 2},  // dominated by 1
      {4.0, 2.0, 3},  {5.0, 2.5, 4},                 // dominated by 3
  };
  const auto front = pareto_front(points);
  ASSERT_EQ(front.size(), 3u);
  EXPECT_EQ(front[0].index, 0u);
  EXPECT_EQ(front[1].index, 1u);
  EXPECT_EQ(front[2].index, 3u);
}

TEST(pareto_front, sorted_by_x_with_decreasing_y) {
  const std::vector<pareto_point> points{
      {5, 1, 0}, {1, 9, 1}, {3, 4, 2}, {2, 6, 3}, {4, 2, 4}};
  const auto front = pareto_front(points);
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GT(front[i].x, front[i - 1].x);
    EXPECT_LT(front[i].y, front[i - 1].y);
  }
}

TEST(pareto_front, single_point) {
  const std::vector<pareto_point> points{{1, 1, 7}};
  const auto front = pareto_front(points);
  ASSERT_EQ(front.size(), 1u);
  EXPECT_EQ(front[0].index, 7u);
}

TEST(pareto_front, all_on_front) {
  const std::vector<pareto_point> points{{1, 4, 0}, {2, 3, 1}, {3, 2, 2},
                                         {4, 1, 3}};
  EXPECT_EQ(pareto_front(points).size(), 4u);
}

TEST(pareto_front, duplicates_kept_once) {
  const std::vector<pareto_point> points{{1, 1, 0}, {1, 1, 1}, {2, 2, 2}};
  const auto front = pareto_front(points);
  ASSERT_EQ(front.size(), 1u);
}

TEST(pareto_front, empty_input) {
  EXPECT_TRUE(pareto_front(std::vector<pareto_point>{}).empty());
}

TEST(pareto_front, no_front_point_dominated) {
  // Property: nothing on the front is dominated by any input point.
  std::vector<pareto_point> points;
  std::uint64_t state = 99;
  for (std::size_t i = 0; i < 200; ++i) {
    const double x = static_cast<double>(splitmix64(state) % 1000);
    const double y = static_cast<double>(splitmix64(state) % 1000);
    points.push_back({x, y, i});
  }
  const auto front = pareto_front(points);
  for (const auto& f : front) {
    for (const auto& p : points) {
      EXPECT_FALSE(dominates(p, f))
          << "(" << p.x << "," << p.y << ") dominates front point ("
          << f.x << "," << f.y << ")";
    }
  }
}

}  // namespace
}  // namespace axc::core
