#include <gtest/gtest.h>

#include "circuit/simulator.h"
#include "metrics/error_metrics.h"
#include "metrics/mult_spec.h"
#include "mult/multipliers.h"
#include "test_util.h"

namespace axc::mult {
namespace {

using metrics::mult_spec;

void expect_exact(const circuit::netlist& nl, unsigned width,
                  bool is_signed) {
  ASSERT_TRUE(nl.validate().empty());
  const mult_spec spec{width, is_signed};
  const auto table = metrics::product_table(nl, spec);
  const auto exact = metrics::exact_product_table(spec);
  for (std::size_t v = 0; v < table.size(); ++v) {
    ASSERT_EQ(table[v], exact[v])
        << "w=" << width << (is_signed ? " signed" : " unsigned")
        << " a=" << (v & ((1u << width) - 1)) << " b=" << (v >> width);
  }
}

struct mult_case {
  unsigned width;
  bool is_signed;
  schedule sched;
};

class exact_mult_param : public ::testing::TestWithParam<mult_case> {};

TEST_P(exact_mult_param, exhaustively_correct) {
  const auto [width, is_signed, sched] = GetParam();
  const circuit::netlist nl = is_signed ? signed_multiplier(width, sched)
                                        : unsigned_multiplier(width, sched);
  expect_exact(nl, width, is_signed);
}

INSTANTIATE_TEST_SUITE_P(
    generators, exact_mult_param,
    ::testing::Values(mult_case{2, false, schedule::ripple},
                      mult_case{2, true, schedule::ripple},
                      mult_case{3, false, schedule::ripple},
                      mult_case{3, true, schedule::ripple},
                      mult_case{4, false, schedule::ripple},
                      mult_case{4, true, schedule::ripple},
                      mult_case{4, false, schedule::wallace},
                      mult_case{4, true, schedule::wallace},
                      mult_case{5, true, schedule::ripple},
                      mult_case{6, false, schedule::ripple},
                      mult_case{6, true, schedule::wallace},
                      mult_case{8, false, schedule::ripple},
                      mult_case{8, true, schedule::ripple},
                      mult_case{8, false, schedule::wallace},
                      mult_case{8, true, schedule::wallace}));

TEST(unsigned_multiplier, gate_count_in_paper_range) {
  // The paper seeds CGP with c = 320 .. 490 nodes for 8-bit multipliers.
  const circuit::netlist ripple = unsigned_multiplier(8);
  EXPECT_GE(ripple.num_gates(), 250u);
  EXPECT_LE(ripple.num_gates(), 500u);
}

TEST(wallace_schedule, shallower_than_ripple) {
  const circuit::netlist r = unsigned_multiplier(8, schedule::ripple);
  const circuit::netlist w = unsigned_multiplier(8, schedule::wallace);
  // Compare logic depth via unit-delay longest path.
  const auto depth = [](const circuit::netlist& nl) {
    std::vector<double> arrival(nl.num_signals(), 0.0);
    double max_depth = 0.0;
    for (std::size_t k = 0; k < nl.num_gates(); ++k) {
      const circuit::gate_node& g = nl.gate(k);
      arrival[nl.num_inputs() + k] =
          1.0 + std::max(arrival[g.in0], arrival[g.in1]);
    }
    for (const auto out : nl.outputs()) {
      max_depth = std::max(max_depth, arrival[out]);
    }
    return max_depth;
  };
  EXPECT_LT(depth(w), depth(r));
}

class truncated_param : public ::testing::TestWithParam<unsigned> {};

TEST_P(truncated_param, truncation_semantics) {
  const unsigned dropped = GetParam();
  const circuit::netlist nl = truncated_multiplier(4, dropped);
  const auto table = metrics::product_table(nl, mult_spec{4, false});
  for (std::uint64_t b = 0; b < 16; ++b) {
    for (std::uint64_t a = 0; a < 16; ++a) {
      // Reference: sum of kept partial products.
      std::int64_t expected = 0;
      for (unsigned i = 0; i < 4; ++i) {
        for (unsigned j = 0; j < 4; ++j) {
          if (i + j < dropped) continue;
          expected += static_cast<std::int64_t>(((a >> i) & 1) *
                                                ((b >> j) & 1))
                      << (i + j);
        }
      }
      EXPECT_EQ(table[(b << 4) | a], expected & 0xFF)
          << "dropped=" << dropped << " a=" << a << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(depths, truncated_param,
                         ::testing::Values(0, 1, 2, 3, 4, 8));

TEST(truncated_multiplier, zero_drop_is_exact) {
  expect_exact(truncated_multiplier(6, 0), 6, false);
  expect_exact(truncated_multiplier(4, 0, /*is_signed=*/true), 4, true);
}

TEST(truncated_multiplier, error_grows_with_truncation) {
  const mult_spec spec{8, false};
  const auto exact = metrics::exact_product_table(spec);
  double previous = -1.0;
  for (const unsigned dropped : {0u, 2u, 4u, 6u, 8u, 10u}) {
    const auto table =
        metrics::product_table(truncated_multiplier(8, dropped), spec);
    const double e = metrics::med(exact, table, spec);
    EXPECT_GT(e, previous);
    previous = e;
  }
}

TEST(truncated_multiplier, area_shrinks_with_truncation) {
  std::size_t previous = truncated_multiplier(8, 0).active_gate_count();
  for (const unsigned dropped : {2u, 4u, 6u, 8u}) {
    const std::size_t gates =
        truncated_multiplier(8, dropped).active_gate_count();
    EXPECT_LT(gates, previous);
    previous = gates;
  }
}

TEST(broken_array_multiplier, no_breaks_is_exact) {
  expect_exact(broken_array_multiplier(5, 0, 0), 5, false);
  expect_exact(broken_array_multiplier(4, 0, 0, true), 4, true);
}

TEST(broken_array_multiplier, semantics_match_model) {
  // Kept partial products: j >= hbl and i + j >= vbl.
  const unsigned hbl = 1, vbl = 3;
  const circuit::netlist nl = broken_array_multiplier(4, hbl, vbl);
  const auto table = metrics::product_table(nl, mult_spec{4, false});
  for (std::uint64_t b = 0; b < 16; ++b) {
    for (std::uint64_t a = 0; a < 16; ++a) {
      std::int64_t expected = 0;
      for (unsigned i = 0; i < 4; ++i) {
        for (unsigned j = 0; j < 4; ++j) {
          if (j < hbl || i + j < vbl) continue;
          expected += static_cast<std::int64_t>(((a >> i) & 1) *
                                                ((b >> j) & 1))
                      << (i + j);
        }
      }
      EXPECT_EQ(table[(b << 4) | a], expected & 0xFF);
    }
  }
}

TEST(broken_array_multiplier, deeper_breaks_cost_less_err_more) {
  const mult_spec spec{8, false};
  const auto exact = metrics::exact_product_table(spec);
  const auto shallow = broken_array_multiplier(8, 1, 2);
  const auto deep = broken_array_multiplier(8, 3, 6);
  EXPECT_LT(deep.active_gate_count(), shallow.active_gate_count());
  EXPECT_GT(
      metrics::med(exact, metrics::product_table(deep, spec), spec),
      metrics::med(exact, metrics::product_table(shallow, spec), spec));
}

TEST(zero_exact_wrapper, forces_zero_products) {
  // Wrap a deliberately broken multiplier; zero operands must still yield 0.
  const circuit::netlist broken = truncated_multiplier(4, 5);
  const circuit::netlist wrapped = zero_exact_wrapper(broken, 4);
  const auto table = metrics::product_table(wrapped, mult_spec{4, false});
  for (std::uint64_t x = 0; x < 16; ++x) {
    EXPECT_EQ(table[(x << 4) | 0], 0) << "a=0 b=" << x;
    EXPECT_EQ(table[(0 << 4) | x], 0) << "a=" << x << " b=0";
  }
}

TEST(zero_exact_wrapper, preserves_nonzero_behaviour) {
  const circuit::netlist inner = truncated_multiplier(4, 3);
  const circuit::netlist wrapped = zero_exact_wrapper(inner, 4);
  const auto inner_table = metrics::product_table(inner, mult_spec{4, false});
  const auto wrapped_table =
      metrics::product_table(wrapped, mult_spec{4, false});
  for (std::uint64_t b = 1; b < 16; ++b) {
    for (std::uint64_t a = 1; a < 16; ++a) {
      EXPECT_EQ(wrapped_table[(b << 4) | a], inner_table[(b << 4) | a]);
    }
  }
}

TEST(zero_exact_wrapper, wrapping_exact_multiplier_is_exact) {
  expect_exact(zero_exact_wrapper(unsigned_multiplier(4), 4), 4, false);
}

struct mac_case {
  unsigned width;
  unsigned acc_width;
  bool is_signed;
};

class mac_param : public ::testing::TestWithParam<mac_case> {};

TEST_P(mac_param, accumulates_correctly) {
  const auto [w, acc_w, is_signed] = GetParam();
  const circuit::netlist multiplier =
      is_signed ? signed_multiplier(w) : unsigned_multiplier(w);
  const circuit::netlist mac = build_mac(multiplier, w, acc_w, is_signed);
  ASSERT_EQ(mac.num_inputs(), 2 * std::size_t{w} + acc_w);
  ASSERT_EQ(mac.num_outputs(), std::size_t{acc_w});
  ASSERT_TRUE(mac.validate().empty());

  rng gen(2024);
  const std::uint64_t acc_mask = (std::uint64_t{1} << acc_w) - 1;
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint64_t a = gen.below(1u << w);
    const std::uint64_t b = gen.below(1u << w);
    const std::uint64_t acc = gen() & acc_mask;
    const std::uint64_t assignment = a | (b << w) | (acc << (2 * w));
    const std::uint64_t got = test::naive_eval(mac, assignment);

    const std::int64_t product = test::as_value(a, w, is_signed) *
                                 test::as_value(b, w, is_signed);
    const std::uint64_t expected =
        (acc + static_cast<std::uint64_t>(product)) & acc_mask;
    EXPECT_EQ(got, expected) << "a=" << a << " b=" << b << " acc=" << acc;
  }
}

INSTANTIATE_TEST_SUITE_P(configs, mac_param,
                         ::testing::Values(mac_case{4, 8, false},
                                           mac_case{4, 10, true},
                                           mac_case{8, 16, false},
                                           mac_case{8, 20, true},
                                           mac_case{8, 24, true}));

TEST(filtered_multiplier, custom_keep_predicate) {
  // Keep only the diagonal partial products a_i * b_i.
  const circuit::netlist nl = filtered_multiplier(
      4, false, schedule::ripple,
      [](unsigned i, unsigned j) { return i == j; });
  const auto table = metrics::product_table(nl, mult_spec{4, false});
  for (std::uint64_t b = 0; b < 16; ++b) {
    for (std::uint64_t a = 0; a < 16; ++a) {
      std::int64_t expected = 0;
      for (unsigned i = 0; i < 4; ++i) {
        expected += static_cast<std::int64_t>(((a >> i) & 1) * ((b >> i) & 1))
                    << (2 * i);
      }
      EXPECT_EQ(table[(b << 4) | a], expected);
    }
  }
}

}  // namespace
}  // namespace axc::mult
