#include <gtest/gtest.h>

#include "circuit/structural.h"
#include "metrics/error_metrics.h"
#include "metrics/mult_spec.h"
#include "mult/booth.h"
#include "mult/multipliers.h"

namespace axc::mult {
namespace {

using metrics::mult_spec;

class booth_widths : public ::testing::TestWithParam<unsigned> {};

TEST_P(booth_widths, exhaustively_correct_signed) {
  const unsigned w = GetParam();
  const circuit::netlist nl = booth_multiplier(w);
  ASSERT_TRUE(nl.validate().empty());
  const mult_spec spec{w, true};
  const auto table = metrics::product_table(nl, spec);
  const auto exact = metrics::exact_product_table(spec);
  for (std::size_t v = 0; v < table.size(); ++v) {
    ASSERT_EQ(table[v], exact[v])
        << "w=" << w << " a=" << (v & ((1u << w) - 1)) << " b=" << (v >> w);
  }
}

INSTANTIATE_TEST_SUITE_P(even_widths, booth_widths,
                         ::testing::Values(2, 4, 6, 8));

TEST(booth_multiplier, wallace_schedule_also_exact) {
  const circuit::netlist nl = booth_multiplier(8, schedule::wallace);
  const mult_spec spec{8, true};
  EXPECT_EQ(metrics::product_table(nl, spec),
            metrics::exact_product_table(spec));
}

TEST(booth_multiplier, structurally_distinct_from_baugh_wooley) {
  const auto booth = circuit::analyze_structure(booth_multiplier(8));
  const auto bw = circuit::analyze_structure(signed_multiplier(8));
  // Booth halves the partial-product rows; composition must differ
  // noticeably (it uses OR-based selectors, BW uses NAND rows).
  EXPECT_NE(booth.active_gates, bw.active_gates);
  const auto ors =
      booth.function_histogram[static_cast<std::size_t>(circuit::gate_fn::or2)];
  EXPECT_GT(ors, 20u);
}

TEST(booth_multiplier, rejects_odd_width) {
  EXPECT_DEATH((void)booth_multiplier(5), "precondition");
}

TEST(booth_multiplier, usable_as_cgp_seed_scale) {
  // The paper's c = 320..490 window should accommodate the Booth seed too.
  const circuit::netlist nl = booth_multiplier(8);
  EXPECT_LE(nl.num_gates(), 500u);
  EXPECT_GE(nl.num_gates(), 150u);
}

}  // namespace
}  // namespace axc::mult
