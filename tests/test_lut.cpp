#include <gtest/gtest.h>

#include "mult/lut.h"
#include "mult/multipliers.h"

namespace axc::mult {
namespace {

using metrics::mult_spec;

TEST(product_lut, exact_unsigned_products) {
  const product_lut lut = product_lut::exact(mult_spec{8, false});
  EXPECT_EQ(lut.by_pattern(0, 0), 0);
  EXPECT_EQ(lut.by_pattern(255, 255), 255 * 255);
  EXPECT_EQ(lut.by_pattern(17, 3), 51);
  EXPECT_EQ(lut.multiply(100, 200), 20000);
}

TEST(product_lut, exact_signed_products) {
  const product_lut lut = product_lut::exact(mult_spec{8, true});
  EXPECT_EQ(lut.multiply(-1, -1), 1);
  EXPECT_EQ(lut.multiply(-128, -128), 16384);
  EXPECT_EQ(lut.multiply(-128, 127), -16256);
  EXPECT_EQ(lut.multiply(5, -7), -35);
  EXPECT_EQ(lut.multiply(0, -100), 0);
}

TEST(product_lut, pattern_masking) {
  const product_lut lut = product_lut::exact(mult_spec{4, false});
  // Patterns beyond the width are masked.
  EXPECT_EQ(lut.by_pattern(0x13, 0x22), lut.by_pattern(0x3, 0x2));
}

TEST(product_lut, circuit_characterization_matches_exact) {
  const circuit::netlist nl = signed_multiplier(8);
  const product_lut from_circuit(nl, mult_spec{8, true});
  const product_lut exact = product_lut::exact(mult_spec{8, true});
  EXPECT_EQ(from_circuit.table(), exact.table());
}

TEST(product_lut, approximate_circuit_differs_from_exact) {
  const circuit::netlist nl = truncated_multiplier(8, 8);
  const product_lut approx(nl, mult_spec{8, false});
  const product_lut exact = product_lut::exact(mult_spec{8, false});
  EXPECT_NE(approx.table(), exact.table());
  // But multiply-by-large-operands is still roughly right.
  EXPECT_NEAR(approx.multiply(200, 200), 40000, 4000);
}

TEST(product_lut, signed_negative_operand_indexing) {
  // multiply() must accept negative ints and map them onto two's complement
  // patterns: -3 -> 0xFD.
  const product_lut lut = product_lut::exact(mult_spec{8, true});
  EXPECT_EQ(lut.multiply(-3, 4), lut.by_pattern(0xFD, 4));
}

}  // namespace
}  // namespace axc::mult
