// The genotype-native incremental evaluation pipeline (cone_program +
// evolver::run_incremental) must be a pure throughput optimization:
// bit-identical to decoding every mutant to a netlist and recompiling from
// scratch — per-candidate WMED/area, whole searches, and the approximator's
// incremental toggle.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cgp/cone_program.h"
#include "cgp/evolver.h"
#include "cgp/genotype.h"
#include "core/wmed_approximator.h"
#include "dist/pmf.h"
#include "metrics/wmed_evaluator.h"
#include "mult/adders.h"
#include "mult/multipliers.h"
#include "support/rng.h"
#include "tech/analysis.h"

namespace axc {
namespace {

cgp::parameters mult_params(const circuit::netlist& seed,
                            std::size_t extra_columns) {
  cgp::parameters p;
  p.num_inputs = seed.num_inputs();
  p.num_outputs = seed.num_outputs();
  p.columns = seed.num_gates() + extra_columns;
  p.rows = 1;
  p.levels_back = p.columns;
  p.function_set.assign(circuit::default_function_set().begin(),
                        circuit::default_function_set().end());
  return p;
}

TEST(incremental_eval, mutate_overloads_share_the_rng_stream) {
  // The dirty-recording overload must consume the RNG identically, or the
  // incremental and netlist-based searches would diverge by construction.
  const circuit::netlist seed = mult::unsigned_multiplier(6);
  rng gen_a(42), gen_b(42);
  cgp::genotype a = cgp::genotype::from_netlist(mult_params(seed, 20), seed,
                                                gen_a);
  cgp::genotype b = cgp::genotype::from_netlist(mult_params(seed, 20), seed,
                                                gen_b);
  std::vector<std::uint32_t> dirty;
  for (int step = 0; step < 200; ++step) {
    a.mutate(gen_a);
    dirty.clear();
    b.mutate(gen_b, dirty);
    ASSERT_EQ(a, b) << "step " << step;
    ASSERT_FALSE(dirty.empty());
    ASSERT_LE(dirty.size(), b.params().max_mutations);
  }
}

TEST(incremental_eval, randomized_mutation_sequences_match_full_recompile) {
  // Drive one incremental evaluator through a long randomized mutation
  // sequence — identical/patched/recompiled paths all get exercised — and
  // check every child against a from-scratch netlist evaluation,
  // bit-identically (EXPECT_EQ on doubles, not NEAR).
  const metrics::mult_spec spec{8, false};
  const dist::pmf d = dist::pmf::half_normal(256, 40.0);
  const auto& lib = tech::cell_library::nangate45_like();
  const double target = 1e-3;

  metrics::wmed_evaluator reference(spec, d);
  const auto reference_score = [&](const circuit::netlist& nl) {
    cgp::evaluation e;
    e.error = reference.evaluate(nl, target);
    e.feasible = e.error <= target;
    e.area = e.feasible ? tech::estimate_area(nl, lib) : 0.0;
    return e;
  };

  for (const std::uint64_t seed_value : {3ull, 77ull}) {
    rng gen(seed_value);
    const circuit::netlist seed = mult::unsigned_multiplier(8);
    cgp::genotype parent =
        cgp::genotype::from_netlist(mult_params(seed, 48), seed, gen);

    auto incremental =
        core::make_incremental_wmed_evaluator(spec, d, lib, target);
    const cgp::evaluation parent_eval = incremental->evaluate_and_bind(parent);
    {
      const cgp::evaluation ref = reference_score(parent.decode_cone());
      EXPECT_EQ(parent_eval.error, ref.error);
      EXPECT_EQ(parent_eval.area, ref.area);
      EXPECT_EQ(parent_eval.feasible, ref.feasible);
    }

    std::vector<std::uint32_t> dirty;
    cgp::evaluation bound_eval = parent_eval;
    for (int step = 0; step < 120; ++step) {
      cgp::genotype child = parent;
      dirty.clear();
      child.mutate(gen, dirty);

      const cgp::evaluation fast =
          incremental->evaluate_child(parent, child, dirty);
      const cgp::evaluation ref = reference_score(child.decode_cone());
      ASSERT_EQ(fast.error, ref.error) << "seed " << seed_value << " step "
                                       << step;
      ASSERT_EQ(fast.area, ref.area) << "step " << step;
      ASSERT_EQ(fast.feasible, ref.feasible) << "step " << step;

      // Occasionally accept the child to exercise rebinding, including
      // after patched and recompiled applies.
      if (step % 7 == 3) {
        parent = child;
        bound_eval = fast;
        incremental->rebind(parent, bound_eval);
      } else {
        // The binding must be undisturbed: the parent still scores the
        // same through the bound schedule.
        const cgp::evaluation again =
            incremental->evaluate_child(parent, parent, {});
        ASSERT_EQ(again.error, bound_eval.error) << "step " << step;
      }
    }
  }
}

TEST(incremental_eval, cone_program_delta_classification_is_exercised) {
  // Sanity-check that a realistic mutation stream hits all three delta
  // classes — otherwise the parity test above would vacuously pass.
  const circuit::netlist seed = mult::unsigned_multiplier(8);
  rng gen(5);
  cgp::genotype parent =
      cgp::genotype::from_netlist(mult_params(seed, 48), seed, gen);

  cgp::cone_program cone;
  cone.bind(parent);

  std::size_t identical = 0, patched = 0, recompiled = 0;
  std::vector<std::uint32_t> dirty;
  for (int step = 0; step < 300; ++step) {
    cgp::genotype child = parent;
    dirty.clear();
    child.mutate(gen, dirty);
    switch (cone.apply(parent, child, dirty)) {
      case cgp::cone_program::delta::identical: ++identical; break;
      case cgp::cone_program::delta::patched: ++patched; break;
      case cgp::cone_program::delta::recompiled: ++recompiled; break;
    }
    cone.release_child(parent);
  }
  EXPECT_GT(identical, 0u);
  EXPECT_GT(patched, 0u);
  EXPECT_GT(recompiled, 0u);
}

cgp::evolver::run_result netlist_search(const circuit::netlist& seed,
                                        const metrics::mult_spec& spec,
                                        const dist::pmf& d, double target,
                                        std::size_t iterations,
                                        std::uint64_t seed_value) {
  const auto& lib = tech::cell_library::nangate45_like();
  metrics::wmed_evaluator evaluator(spec, d);
  rng gen(seed_value);
  const cgp::genotype start =
      cgp::genotype::from_netlist(mult_params(seed, 32), seed, gen);
  cgp::evolver::options opts;
  opts.iterations = iterations;
  opts.error_tiebreak = true;
  return cgp::evolver::run(
      start,
      [&](const circuit::netlist& nl) {
        cgp::evaluation e;
        e.error = evaluator.evaluate(nl, target);
        e.feasible = e.error <= target;
        e.area = e.feasible ? tech::estimate_area(nl, lib) : 0.0;
        return e;
      },
      opts, gen);
}

cgp::evolver::run_result incremental_search(const circuit::netlist& seed,
                                            const metrics::mult_spec& spec,
                                            const dist::pmf& d, double target,
                                            std::size_t iterations,
                                            std::uint64_t seed_value,
                                            std::size_t threads) {
  const auto& lib = tech::cell_library::nangate45_like();
  rng gen(seed_value);
  const cgp::genotype start =
      cgp::genotype::from_netlist(mult_params(seed, 32), seed, gen);
  cgp::evolver::options opts;
  opts.iterations = iterations;
  opts.error_tiebreak = true;
  return cgp::evolver::run_incremental(
      start,
      [&] {
        return core::make_incremental_wmed_evaluator(spec, d, lib, target);
      },
      opts, threads, gen);
}

TEST(incremental_eval, search_reproduces_netlist_search_bit_for_bit) {
  const metrics::mult_spec spec{6, false};
  const dist::pmf d = dist::pmf::half_normal(64, 16.0);
  const circuit::netlist seed = mult::unsigned_multiplier(6);
  const double target = 0.003;

  for (const std::uint64_t s : {1ull, 9ull}) {
    const auto full = netlist_search(seed, spec, d, target, 150, s);
    for (const std::size_t threads : {1u, 3u}) {
      const auto fast =
          incremental_search(seed, spec, d, target, 150, s, threads);
      EXPECT_EQ(fast.best, full.best) << "seed " << s << " threads "
                                      << threads;
      EXPECT_EQ(fast.best_eval.error, full.best_eval.error);
      EXPECT_EQ(fast.best_eval.area, full.best_eval.area);
      EXPECT_EQ(fast.evaluations, full.evaluations);
      EXPECT_EQ(fast.improvements, full.improvements);
      EXPECT_EQ(fast.neutral_moves, full.neutral_moves);
    }
  }
}

TEST(incremental_eval, approximator_toggle_changes_nothing) {
  core::approximation_config config;
  config.spec = metrics::mult_spec{6, false};
  config.distribution = dist::pmf::half_normal(64, 16.0);
  config.iterations = 80;
  config.extra_columns = 16;
  config.rng_seed = 21;

  const circuit::netlist seed = mult::unsigned_multiplier(6);

  config.incremental = true;
  const core::evolved_design fast =
      core::wmed_approximator(config).approximate(seed, 0.004);

  config.incremental = false;
  const core::evolved_design full =
      core::wmed_approximator(config).approximate(seed, 0.004);

  EXPECT_EQ(fast.netlist, full.netlist);
  EXPECT_EQ(fast.wmed, full.wmed);
  EXPECT_EQ(fast.area_um2, full.area_um2);
  EXPECT_EQ(fast.evaluations, full.evaluations);
  EXPECT_EQ(fast.improvements, full.improvements);
}

}  // namespace
}  // namespace axc
