#include <gtest/gtest.h>

#include <vector>

#include "core/workload.h"

namespace axc::core {
namespace {

using metrics::mult_spec;

TEST(multiplier_workload, operand_fields_in_range) {
  const mult_spec spec{8, false};
  rng gen(1);
  const auto w =
      make_multiplier_workload(spec, dist::pmf::uniform(256), 1000, gen);
  ASSERT_EQ(w.size(), 1000u);
  for (const auto v : w) {
    EXPECT_LT(v, std::uint64_t{1} << 16);  // only 16 bits used
  }
}

TEST(multiplier_workload, operand_a_follows_distribution) {
  const mult_spec spec{8, false};
  // All mass on value 42.
  std::vector<double> weights(256, 0.0);
  weights[42] = 1.0;
  rng gen(2);
  const auto w = make_multiplier_workload(
      spec, dist::pmf::from_weights(weights), 500, gen);
  for (const auto v : w) {
    EXPECT_EQ(v & 0xFF, 42u);
  }
}

TEST(multiplier_workload, operand_b_is_uniformish) {
  const mult_spec spec{8, false};
  rng gen(3);
  const auto w =
      make_multiplier_workload(spec, dist::pmf::uniform(256), 20000, gen);
  double mean_b = 0.0;
  for (const auto v : w) mean_b += static_cast<double>((v >> 8) & 0xFF);
  mean_b /= static_cast<double>(w.size());
  EXPECT_NEAR(mean_b, 127.5, 3.0);
}

TEST(multiplier_workload, deterministic_in_seed) {
  const mult_spec spec{8, true};
  const dist::pmf d = dist::pmf::signed_normal(256, 0, 30);
  rng g1(7), g2(7);
  EXPECT_EQ(make_multiplier_workload(spec, d, 100, g1),
            make_multiplier_workload(spec, d, 100, g2));
}

TEST(mac_workload, accumulator_field_present) {
  const mult_spec spec{8, true};
  rng gen(5);
  const auto w = make_mac_workload(spec, dist::pmf::uniform(256), 20, 500, gen);
  bool any_acc_bits = false;
  for (const auto v : w) {
    EXPECT_LT(v, std::uint64_t{1} << 36);  // 16 + 20 bits
    any_acc_bits |= (v >> 16) != 0;
  }
  EXPECT_TRUE(any_acc_bits);
}

}  // namespace
}  // namespace axc::core
