#include <gtest/gtest.h>

#include <memory>

#include "mult/lut.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/network.h"
#include "support/rng.h"

namespace axc::nn {
namespace {

TEST(avgpool_layer, averages_blocks) {
  avgpool2 p;
  tensor x(1, 2, 4);
  const float vals[] = {1, 5, 2, 3, 4, 0, 7, 6};
  for (std::size_t i = 0; i < 8; ++i) x.data()[i] = vals[i];
  const tensor y = p.forward(x, false);
  ASSERT_EQ(y.height(), 1u);
  ASSERT_EQ(y.width(), 2u);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0), (1 + 5 + 4 + 0) / 4.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1), (2 + 3 + 7 + 6) / 4.0f);
}

TEST(avgpool_layer, spreads_gradient_uniformly) {
  avgpool2 p;
  tensor x(1, 2, 2, 1.0f);
  p.forward(x, true);
  tensor g(1, 1, 1);
  g.data()[0] = 8.0f;
  const tensor gx = p.backward(g);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(gx.data()[i], 2.0f);
}

TEST(avgpool_layer, output_shape) {
  avgpool2 p;
  const auto s = p.output_shape({6, 10, 8});
  EXPECT_EQ(s[0], 6u);
  EXPECT_EQ(s[1], 5u);
  EXPECT_EQ(s[2], 4u);
}

TEST(avgpool_layer, gradient_check_through_stack) {
  // conv -> avgpool -> dense; finite-difference the loss w.r.t. the input.
  rng gen(3);
  network net;
  net.add(std::make_unique<conv2d>(1, 2, 3, gen));
  net.add(std::make_unique<avgpool2>());
  net.add(std::make_unique<dense>(2 * 3 * 3, 3, gen));

  tensor x(1, 8, 8);
  for (auto& v : x.data()) v = static_cast<float>(gen.uniform(-1, 1));
  const int label = 1;

  const tensor logits = net.forward(x, true);
  const loss_and_grad lg = softmax_cross_entropy(logits, label);
  net.zero_grads();
  tensor g = lg.grad;
  for (std::size_t i = net.layer_count(); i-- > 0;) {
    g = net.at(i).backward(g);
  }

  constexpr double eps = 1e-3;
  for (std::size_t i = 0; i < x.size(); i += 11) {
    const float orig = x.data()[i];
    x.data()[i] = orig + static_cast<float>(eps);
    const double plus =
        softmax_cross_entropy(net.forward(x, false), label).loss;
    x.data()[i] = orig - static_cast<float>(eps);
    const double minus =
        softmax_cross_entropy(net.forward(x, false), label).loss;
    x.data()[i] = orig;
    EXPECT_NEAR(g.data()[i], (plus - minus) / (2 * eps), 5e-3);
  }
}

TEST(avgpool_layer, quantized_forward_equals_float_forward) {
  // Parameter-free layer: the quantized path must route to the float one.
  avgpool2 p;
  tensor x(1, 4, 4);
  rng gen(5);
  for (auto& v : x.data()) {
    v = static_cast<float>(gen.below(256)) / 256.0f;
  }
  const layer_qparams qp;  // inactive
  const auto lut = mult::product_lut::exact(metrics::mult_spec{8, true});
  EXPECT_EQ(p.forward_quantized(x, qp, lut, false), p.forward(x, false));
}

}  // namespace
}  // namespace axc::nn
