// Direct hardware-model verification of the quantized forward paths:
// dense/conv forward_quantized must equal a hand-rolled int8/int32
// reference (quantize -> LUT multiply -> accumulate -> shift -> saturate),
// for exact and approximate LUTs alike.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "mult/lut.h"
#include "mult/multipliers.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "support/rng.h"

namespace axc::nn {
namespace {

layer_qparams make_qparams(layer& l, int in_frac, int w_frac, int out_frac) {
  layer_qparams qp;
  qp.active = true;
  qp.in_frac = in_frac;
  qp.w_frac = w_frac;
  qp.out_frac = out_frac;
  const auto w = l.weights();
  qp.weights.resize(w.size());
  for (std::size_t k = 0; k < w.size(); ++k) {
    qp.weights[k] = quantize_value(w[k], w_frac);
  }
  const auto b = l.bias();
  qp.bias.resize(b.size());
  for (std::size_t k = 0; k < b.size(); ++k) {
    qp.bias[k] = static_cast<std::int32_t>(
        std::llround(static_cast<double>(b[k]) * std::exp2(in_frac + w_frac)));
  }
  return qp;
}

TEST(quantized_dense, matches_integer_reference) {
  rng gen(1);
  dense d(5, 3, gen);
  for (auto& b : d.bias()) b = 0.125f;
  const layer_qparams qp = make_qparams(d, 7, 7, 5);
  const auto lut = mult::product_lut::exact(metrics::mult_spec{8, true});

  tensor x = tensor::flat(5);
  const float xs[] = {0.3f, -0.7f, 0.05f, 0.99f, -0.2f};
  for (int i = 0; i < 5; ++i) x[i] = xs[i];

  const tensor y = d.forward_quantized(x, qp, lut, false);

  // Reference computation.
  for (std::size_t o = 0; o < 3; ++o) {
    std::int64_t acc = qp.bias[o];
    for (std::size_t i = 0; i < 5; ++i) {
      const std::int8_t xq = quantize_value(x[i], 7);
      acc += static_cast<std::int64_t>(qp.weights[o * 5 + i]) * xq;
    }
    const std::int8_t yq = saturate_int8(shift_round(acc, 7 + 7 - 5));
    EXPECT_FLOAT_EQ(y[o], dequantize_value(yq, 5)) << "output " << o;
  }
}

TEST(quantized_dense, output_saturates_at_int8_rails) {
  rng gen(2);
  dense d(4, 1, gen);
  for (auto& w : d.weights()) w = 0.99f;
  for (auto& b : d.bias()) b = 0.0f;
  // out_frac deliberately too fine: the true output ~4 exceeds the
  // representable max 127 * 2^-7 ~ 0.99, so the model must clamp.
  const layer_qparams qp = make_qparams(d, 7, 7, 7);
  const auto lut = mult::product_lut::exact(metrics::mult_spec{8, true});

  tensor x = tensor::flat(4, 0.99f);
  const tensor y = d.forward_quantized(x, qp, lut, false);
  EXPECT_FLOAT_EQ(y[0], dequantize_value(127, 7));
}

TEST(quantized_dense, approximate_lut_is_used) {
  // With a truncated-multiplier LUT the result must differ from the exact
  // pipeline in exactly the way the LUT prescribes.
  rng gen(3);
  dense d(2, 1, gen);
  d.weights()[0] = 0.5f;   // -> 64 at Q7
  d.weights()[1] = -0.25f; // -> -32
  d.bias()[0] = 0.0f;
  const layer_qparams qp = make_qparams(d, 7, 7, 7);

  const mult::product_lut rough(mult::truncated_multiplier(8, 9, true),
                                metrics::mult_spec{8, true});
  tensor x = tensor::flat(2);
  x[0] = 0.75f;  // -> 96
  x[1] = 0.5f;   // -> 64

  const tensor y = d.forward_quantized(x, qp, rough, false);
  const std::int64_t acc = rough.multiply(64, 96) + rough.multiply(-32, 64);
  const std::int8_t yq = saturate_int8(shift_round(acc, 7));
  EXPECT_FLOAT_EQ(y[0], dequantize_value(yq, 7));
}

TEST(quantized_conv, matches_integer_reference) {
  rng gen(4);
  conv2d c(1, 2, 2, gen);
  for (auto& b : c.bias()) b = -0.0625f;
  const layer_qparams qp = make_qparams(c, 7, 8, 6);
  const auto lut = mult::product_lut::exact(metrics::mult_spec{8, true});

  tensor x(1, 3, 3);
  for (std::size_t i = 0; i < 9; ++i) {
    x.data()[i] = static_cast<float>(i) / 16.0f - 0.25f;
  }
  const tensor y = c.forward_quantized(x, qp, lut, false);
  ASSERT_EQ(y.channels(), 2u);
  ASSERT_EQ(y.height(), 2u);

  for (std::size_t oc = 0; oc < 2; ++oc) {
    for (std::size_t yo = 0; yo < 2; ++yo) {
      for (std::size_t xo = 0; xo < 2; ++xo) {
        std::int64_t acc = qp.bias[oc];
        for (std::size_t ky = 0; ky < 2; ++ky) {
          for (std::size_t kx = 0; kx < 2; ++kx) {
            const std::int8_t xq =
                quantize_value(x.at(0, yo + ky, xo + kx), 7);
            const std::int8_t wq = qp.weights[(oc * 2 + ky) * 2 + kx];
            acc += static_cast<std::int64_t>(wq) * xq;
          }
        }
        const std::int8_t yq = saturate_int8(shift_round(acc, 7 + 8 - 6));
        EXPECT_FLOAT_EQ(y.at(oc, yo, xo), dequantize_value(yq, 6))
            << oc << "," << yo << "," << xo;
      }
    }
  }
}

TEST(quantized_layers, training_caches_dequantized_input) {
  // Straight-through: after forward_quantized(training=true), the cached
  // input used by backward must be the *dequantized* quantized input, not
  // the raw float input.
  rng gen(5);
  dense d(3, 2, gen);
  const layer_qparams qp = make_qparams(d, 4, 7, 4);  // coarse input grid
  const auto lut = mult::product_lut::exact(metrics::mult_spec{8, true});

  tensor x = tensor::flat(3);
  x[0] = 0.33f;  // not on the 2^-4 grid
  x[1] = -0.21f;
  x[2] = 0.07f;
  d.forward_quantized(x, qp, lut, /*training=*/true);

  // Probe via backward: grad w.r.t. weights equals g * cached_input.
  d.zero_grads();
  tensor g = tensor::flat(2);
  g[0] = 1.0f;
  g[1] = 0.0f;
  (void)d.backward(g);
  std::vector<float> before(d.weights().begin(), d.weights().end());
  d.sgd_step(1.0f, 0.0f);
  for (std::size_t i = 0; i < 3; ++i) {
    const float grad_wi = before[i] - d.weights()[i];
    const float expected =
        dequantize_value(quantize_value(x[i], 4), 4);  // on-grid value
    EXPECT_FLOAT_EQ(grad_wi, expected) << "weight " << i;
  }
}

}  // namespace
}  // namespace axc::nn
