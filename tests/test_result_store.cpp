// Result-store robustness: the PR's acceptance property (b) — after
// injected object corruption, scrub() quarantines exactly the damaged
// entries and every remaining lookup returns its exact pre-corruption
// bytes — plus the degraded-open paths (index deleted, index records
// damaged), put idempotence, gc of superseded objects, the injected
// transient put failure, and the mid-index-append crash window (a gtest
// death test around the store's _Exit(44) fault point).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "core/result_store.h"
#include "support/fault.h"

namespace axc::core {
namespace {

namespace fs = std::filesystem;
using namespace std::string_literals;

std::string fresh_store_dir(const char* name) {
  const std::string dir =
      (fs::temp_directory_path() /
       (std::string("axc-store-test-") + name + "-" +
        std::to_string(::getpid())))
          .string();
  std::error_code ec;
  fs::remove_all(dir, ec);
  return dir;
}

std::string read_bytes(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return std::move(os).str();
}

void write_bytes(const fs::path& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::vector<fs::path> object_files(const std::string& root) {
  std::vector<fs::path> files;
  std::error_code ec;
  fs::recursive_directory_iterator it(fs::path(root) / "objects", ec);
  if (ec) return files;
  for (const auto& de : it) {
    if (de.is_regular_file(ec) && de.path().extension() == ".obj") {
      files.push_back(de.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// Flips one byte of the object file serving (kind, key).
void corrupt_object(result_store& store, const std::string& kind,
                    const std::string& key, std::size_t at) {
  for (const auto& entry : store.entries()) {
    if (entry.kind != kind || entry.key != key) continue;
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(entry.hash));
    const fs::path path = fs::path(store.root()) / "objects" /
                          std::string(buf).substr(0, 2) /
                          (std::string(buf) + ".obj");
    std::string bytes = read_bytes(path);
    ASSERT_LT(at, bytes.size());
    bytes[at] ^= 0x5A;
    write_bytes(path, bytes);
    return;
  }
  FAIL() << "no entry for (" << kind << ", " << key << ")";
}

TEST(result_store, put_get_round_trip_and_listing) {
  const std::string dir = fresh_store_dir("roundtrip");
  store_open_report report;
  auto store = result_store::open(dir, &report);
  ASSERT_TRUE(store.has_value());
  EXPECT_FALSE(report.index_rebuilt);  // a fresh store is not a recovery
  EXPECT_FALSE(report.index_salvaged);

  const std::string payload = "binary\0bytes\nwith newlines\n"s;
  const auto hash = store->put("session", result_store::format_key(7), payload);
  ASSERT_TRUE(hash.has_value());
  EXPECT_TRUE(store->contains("session", "0000000000000007"));
  const auto got = store->get("session", "0000000000000007");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
  EXPECT_FALSE(store->get("session", "0000000000000008").has_value());
  EXPECT_FALSE(store->get("front", "0000000000000007").has_value());

  // Tokens only: whitespace in kind/key would corrupt the index grammar.
  EXPECT_FALSE(store->put("bad kind", "k", "x").has_value());
  EXPECT_FALSE(store->put("kind", "bad key", "x").has_value());
  EXPECT_FALSE(store->put("", "k", "x").has_value());

  ASSERT_EQ(store->entries().size(), 1u);
  EXPECT_EQ(store->entries()[0].kind, "session");
  EXPECT_EQ(store->entries()[0].size, payload.size());

  // A fresh open of the same root serves the same bytes.
  auto reopened = result_store::open(dir, &report);
  ASSERT_TRUE(reopened.has_value());
  EXPECT_FALSE(report.index_rebuilt);
  EXPECT_EQ(reopened->get("session", "0000000000000007"), payload);

  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(result_store, put_is_idempotent_and_content_addressed) {
  const std::string dir = fresh_store_dir("idempotent");
  auto store = result_store::open(dir);
  ASSERT_TRUE(store.has_value());
  const auto first = store->put("front", "aa", "same bytes");
  const auto second = store->put("front", "aa", "same bytes");
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, *second);
  EXPECT_EQ(object_files(dir).size(), 1u);
  // Same payload under a different key is a *different* object: the
  // address covers (kind, key, payload), so an index rebuild from the
  // object files alone recovers the full mapping.
  const auto other = store->put("front", "bb", "same bytes");
  ASSERT_TRUE(other.has_value());
  EXPECT_NE(*first, *other);
  EXPECT_EQ(object_files(dir).size(), 2u);

  std::error_code ec;
  fs::remove_all(dir, ec);
}

// The put/gc race: a gc in another process replaying a stale index can
// delete an object between an idempotent re-put's existence probe and its
// index append (the store-put-racing-gc fault point models exactly that
// window).  The re-put must notice and land the object again — an
// idempotent put always leaves its object present and referenced.
TEST(result_store, put_survives_a_racing_gc_deleting_its_object) {
  const std::string dir = fresh_store_dir("racing-gc");
  auto store = result_store::open(dir);
  ASSERT_TRUE(store.has_value());
  const auto first = store->put("front", "aa", "raced bytes");
  ASSERT_TRUE(first.has_value());

  fault::configure("store-put-racing-gc@1");
  const auto second = store->put("front", "aa", "raced bytes");
  fault::clear();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*first, *second);
  ASSERT_EQ(object_files(dir).size(), 1u);
  EXPECT_EQ(store->get("front", "aa"), std::optional("raced bytes"s));

  // The object is referenced, so this store's own gc keeps it, and a fresh
  // open (rebuilding from disk) still serves the exact bytes.
  EXPECT_EQ(store->gc().objects_removed, 0u);
  auto reopened = result_store::open(dir);
  ASSERT_TRUE(reopened.has_value());
  EXPECT_EQ(reopened->get("front", "aa"), std::optional("raced bytes"s));

  std::error_code ec;
  fs::remove_all(dir, ec);
}

// Acceptance property (b): corrupt some objects, scrub, and every
// surviving lookup still returns its exact pre-corruption bytes while the
// damaged ones are quarantined — renamed aside, never deleted.
TEST(result_store, scrub_quarantines_corruption_and_healthy_set_survives) {
  const std::string dir = fresh_store_dir("scrub");
  auto store = result_store::open(dir);
  ASSERT_TRUE(store.has_value());

  std::map<std::string, std::string> expected;
  for (int i = 0; i < 5; ++i) {
    const std::string key = result_store::format_key(0x1000 + i);
    std::string payload = "checkpoint-" + std::to_string(i) + "\n";
    payload.append(200 + 37 * i, static_cast<char>('a' + i));
    ASSERT_TRUE(store->put("session", key, payload).has_value());
    expected[key] = std::move(payload);
  }
  // Damage two objects in different sections: one deep in the payload, one
  // in the framing header.
  corrupt_object(*store, "session", result_store::format_key(0x1001), 150);
  corrupt_object(*store, "session", result_store::format_key(0x1003), 5);

  // Damage is detected (never served) even before scrubbing.
  auto reopened = result_store::open(dir);
  ASSERT_TRUE(reopened.has_value());
  EXPECT_FALSE(
      reopened->get("session", result_store::format_key(0x1001)).has_value());

  const store_scrub_report report = reopened->scrub();
  EXPECT_EQ(report.objects_checked, 5u);
  EXPECT_EQ(report.quarantined, 2u);
  EXPECT_EQ(report.entries_dropped, 2u);

  // Quarantine keeps the evidence; the object tree no longer serves it.
  std::size_t quarantined = 0;
  for (const auto& de : fs::directory_iterator(fs::path(dir) / "quarantine")) {
    quarantined += de.is_regular_file() ? 1 : 0;
  }
  EXPECT_EQ(quarantined, 2u);
  EXPECT_EQ(object_files(dir).size(), 3u);

  // Every remaining lookup returns its exact pre-corruption result — also
  // through a completely fresh open of the scrubbed store.
  auto fresh = result_store::open(dir);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(fresh->entries().size(), 3u);
  for (const int healthy : {0x1000, 0x1002, 0x1004}) {
    const std::string key = result_store::format_key(healthy);
    for (result_store* s : {&*reopened, &*fresh}) {
      const auto got = s->get("session", key);
      ASSERT_TRUE(got.has_value()) << key;
      EXPECT_EQ(*got, expected[key]) << key;
    }
  }
  for (const int damaged : {0x1001, 0x1003}) {
    const std::string key = result_store::format_key(damaged);
    EXPECT_FALSE(fresh->get("session", key).has_value()) << key;
    EXPECT_FALSE(fresh->contains("session", key)) << key;
  }
  // Scrubbing a healthy store is a no-op.
  const store_scrub_report again = fresh->scrub();
  EXPECT_EQ(again.quarantined, 0u);
  EXPECT_EQ(again.entries_dropped, 0u);

  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(result_store, open_rebuilds_a_deleted_index_from_objects) {
  const std::string dir = fresh_store_dir("rebuild");
  std::map<std::pair<std::string, std::string>, std::string> expected;
  {
    auto store = result_store::open(dir);
    ASSERT_TRUE(store.has_value());
    for (int i = 0; i < 4; ++i) {
      const std::string key = result_store::format_key(0x2000 + i);
      const std::string payload = "front-data-" + std::to_string(i * i);
      ASSERT_TRUE(store->put(i % 2 ? "front" : "session", key, payload)
                      .has_value());
      expected[{i % 2 ? "front" : "session", key}] = payload;
    }
  }
  fs::remove(fs::path(dir) / "index.axc");

  store_open_report report;
  auto store = result_store::open(dir, &report);
  ASSERT_TRUE(store.has_value());
  EXPECT_TRUE(report.index_rebuilt);
  EXPECT_EQ(report.entries, 4u);
  for (const auto& [id, payload] : expected) {
    const auto got = store->get(id.first, id.second);
    ASSERT_TRUE(got.has_value()) << id.first << " " << id.second;
    EXPECT_EQ(*got, payload);
  }

  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(result_store, open_salvages_damaged_index_records) {
  const std::string dir = fresh_store_dir("salvage");
  {
    auto store = result_store::open(dir);
    ASSERT_TRUE(store.has_value());
    ASSERT_TRUE(store->put("session", "aaaa", "payload-a").has_value());
    ASSERT_TRUE(store->put("session", "bbbb", "payload-b").has_value());
    ASSERT_TRUE(store->put("session", "cccc", "payload-c").has_value());
  }
  // Flip a byte inside the middle record's line (past the header line).
  const fs::path index = fs::path(dir) / "index.axc";
  std::string bytes = read_bytes(index);
  const std::size_t header_end = bytes.find('\n');
  const std::size_t rec2 = bytes.find('\n', header_end + 1) + 4;
  ASSERT_LT(rec2, bytes.size());
  bytes[rec2] ^= 0x5A;
  write_bytes(index, bytes);

  store_open_report report;
  auto store = result_store::open(dir, &report);
  ASSERT_TRUE(store.has_value());
  EXPECT_TRUE(report.index_salvaged);
  EXPECT_FALSE(report.index_rebuilt);
  EXPECT_EQ(report.entries, 2u);
  EXPECT_EQ(store->get("session", "aaaa"), "payload-a");
  EXPECT_EQ(store->get("session", "cccc"), "payload-c");
  EXPECT_FALSE(store->contains("session", "bbbb"));
  // The dropped mapping's object is intact on disk, so re-putting it (what
  // an idempotent re-publish does) restores it without a new object.
  const std::size_t objects_before = object_files(dir).size();
  ASSERT_TRUE(store->put("session", "bbbb", "payload-b").has_value());
  EXPECT_EQ(object_files(dir).size(), objects_before);
  EXPECT_EQ(store->get("session", "bbbb"), "payload-b");

  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(result_store, gc_removes_only_unreferenced_objects) {
  const std::string dir = fresh_store_dir("gc");
  auto store = result_store::open(dir);
  ASSERT_TRUE(store.has_value());
  ASSERT_TRUE(store->put("front", "kk", "version one").has_value());
  ASSERT_TRUE(store->put("front", "kk", "version two — supersedes").has_value());
  ASSERT_TRUE(store->put("session", "ll", "keep me").has_value());
  ASSERT_EQ(object_files(dir).size(), 3u);

  const store_gc_report report = store->gc();
  EXPECT_EQ(report.objects_removed, 1u);
  EXPECT_GT(report.bytes_reclaimed, 0u);
  EXPECT_EQ(object_files(dir).size(), 2u);
  EXPECT_EQ(store->get("front", "kk"), "version two — supersedes");
  EXPECT_EQ(store->get("session", "ll"), "keep me");

  // gc never touches quarantined evidence.
  write_bytes(fs::path(dir) / "quarantine" / "deadbeef.obj", "evidence");
  const store_gc_report second = store->gc();
  EXPECT_EQ(second.objects_removed, 0u);
  EXPECT_TRUE(fs::exists(fs::path(dir) / "quarantine" / "deadbeef.obj"));

  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(result_store, injected_put_failure_leaves_previous_mapping_intact) {
  const std::string dir = fresh_store_dir("putfail");
  auto store = result_store::open(dir);
  ASSERT_TRUE(store.has_value());
  ASSERT_TRUE(store->put("session", "kk", "good bytes").has_value());

  fault::configure("store-put-fail@1");
  EXPECT_FALSE(store->put("session", "kk", "would replace").has_value());
  fault::clear();
  EXPECT_EQ(store->get("session", "kk"), "good bytes");

  // Index-append failure after a successful object write also fails the
  // put without disturbing the served mapping; the orphan object is
  // reclaimable by gc.
  fault::configure("store-index-append-fail@1");
  EXPECT_FALSE(store->put("session", "kk", "still not served").has_value());
  fault::clear();
  EXPECT_EQ(store->get("session", "kk"), "good bytes");
  auto reopened = result_store::open(dir);
  ASSERT_TRUE(reopened.has_value());
  EXPECT_EQ(reopened->get("session", "kk"), "good bytes");
  EXPECT_EQ(reopened->gc().objects_removed, 1u);

  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(result_store_death, crash_mid_index_append_recovers_by_reput) {
  // "fast" (plain fork) style: the child must inherit this process's `dir`
  // — a re-executing style would re-derive a different pid-stamped path
  // and strand the orphan object in the wrong store.
  testing::GTEST_FLAG(death_test_style) = "fast";
  const std::string dir = fresh_store_dir("midappend");
  {
    auto store = result_store::open(dir);
    ASSERT_TRUE(store.has_value());
    ASSERT_TRUE(store->put("session", "safe", "landed before").has_value());
  }
  // The child dies by _Exit(44) between the durable object write and its
  // index record — the exact window a SIGKILLed publisher leaves behind.
  EXPECT_EXIT(
      {
        fault::configure("store-crash-mid-index-append@1");
        auto store = result_store::open(dir);
        if (!store) std::_Exit(99);
        (void)store->put("front", "ffff", "torn publish");
        std::_Exit(98);  // unreachable: the fault point exits first
      },
      ::testing::ExitedWithCode(44), "");

  // Orphan object on disk, no index record: the mapping is absent but the
  // pre-crash entries still serve, and the idempotent re-put (what a
  // re-run coordinator does) completes the publish using the orphan.
  auto store = result_store::open(dir);
  ASSERT_TRUE(store.has_value());
  EXPECT_EQ(store->get("session", "safe"), "landed before");
  EXPECT_FALSE(store->contains("front", "ffff"));
  EXPECT_EQ(object_files(dir).size(), 2u);
  ASSERT_TRUE(store->put("front", "ffff", "torn publish").has_value());
  EXPECT_EQ(object_files(dir).size(), 2u);  // orphan reused, not rewritten
  EXPECT_EQ(store->get("front", "ffff"), "torn publish");

  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(front_serialization, round_trips_bit_exactly) {
  std::vector<pareto_point> front = {
      {5e-324, 1.7976931348623157e308, 0},     // denormal min, double max
      {0.1, 1.0 / 3.0, 7},                     // classic non-representables
      {2.2250738585072014e-308, 6.3e-322, 42}, // normal min, denormal
      {1234.5678901234567, 0.0, 3},
  };
  const std::string text = serialize_front(front);
  const auto parsed = parse_front(text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), front.size());
  for (std::size_t i = 0; i < front.size(); ++i) {
    EXPECT_EQ((*parsed)[i], front[i]) << "point " << i;
  }
  // Fixpoint: serializing the parse reproduces the exact bytes, so store
  // "front" objects compare bit-identically across coordinator lives.
  EXPECT_EQ(serialize_front(*parsed), text);

  EXPECT_TRUE(parse_front(serialize_front({})).has_value());
  EXPECT_FALSE(parse_front("axc-front v2\npoints 0\nend\n").has_value());
  EXPECT_FALSE(parse_front(text.substr(0, text.size() / 2)).has_value());
}

}  // namespace
}  // namespace axc::core
