// Serving-subsystem acceptance: the five properties the PR promises.
//
//   (a) a served hit is byte-identical to `axc_store get front <key>`
//       (and an error budget filters it without touching the store);
//   (b) a miss runs ONE sweep and the subsequent hit is bit-identical to
//       run_sweep_inprocess of the same spec;
//   (c) N concurrent identical requests coalesce into one sweep;
//   (d) a server SIGKILLed mid-enqueue, mid-sweep, or before replying is
//       restarted on the same directories and converges on the identical
//       front (the CRC'd server journal re-adopts the job);
//   (e) malformed, truncated and oversized frames never wedge the accept
//       loop — a valid request on a fresh connection is still answered.
//
// In-process properties drive result_server::handle_request directly (no
// socket); the kill/restart cases run the real tools/axc_serve binary and
// talk to it over its socket.  ctest points AXC_SERVE_BIN / AXC_WORKER_BIN
// at the built tools; cases needing them skip when unset.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "core/result_server.h"
#include "core/result_store.h"
#include "core/shard_runner.h"
#include "dist/pmf.h"
#include "mult/multipliers.h"
#include "support/net.h"
#include "support/subprocess.h"

namespace axc::core {
namespace {

namespace fs = std::filesystem;

const char* serve_binary() { return std::getenv("AXC_SERVE_BIN"); }
const char* worker_binary() { return std::getenv("AXC_WORKER_BIN"); }

/// Same shape as the coordinator-resume suite's sweep; rng_seed varies per
/// case so each test owns a distinct store key.
sweep_spec serve_spec(std::uint64_t rng_seed) {
  sweep_spec spec;
  spec.component = "mult";
  spec.options.width = 4;
  spec.options.distribution = dist::pmf::half_normal(16, 4.0);
  spec.options.iterations = 120;
  spec.options.extra_columns = 16;
  spec.options.rng_seed = rng_seed;
  spec.plan.targets = {0.002, 0.02};
  spec.plan.runs_per_target = 2;
  spec.options.runs_per_target = 2;
  spec.seed = mult::unsigned_multiplier(4);
  return spec;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = (fs::temp_directory_path() /
                           ("axc-serve-test-" + name + "-" +
                            std::to_string(::getpid())))
                              .string();
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  return dir;
}

server_config local_config(const std::string& root) {
  server_config config;
  config.store_dir = root + "/store";
  config.work_dir = root + "/work";
  return config;
}

serve_request make_request(std::string verb, sweep_spec spec) {
  serve_request request;
  request.verb = std::move(verb);
  request.spec = std::move(spec);
  return request;
}

/// One in-process request end to end: encode, handle, parse the reply.
serve_reply ask(result_server& server, const serve_request& request) {
  const auto reply = parse_reply(server.handle_request(
      encode_request(request)));
  EXPECT_TRUE(reply.has_value());
  return reply.value_or(serve_reply{});
}

/// A hand-built front published under `spec`'s key, so hit-path tests need
/// no sweep at all.  Returns the exact stored bytes.
std::string publish_front(const std::string& store_dir,
                          const sweep_spec& spec) {
  const std::vector<pareto_point> points = {
      {0.001, 9.25, 0}, {0.01, 5.5, 1}, {0.05, 2.125, 2}};
  auto store = result_store::open(store_dir);
  EXPECT_TRUE(store.has_value());
  const std::string key = result_store::format_key(spec.store_key());
  EXPECT_TRUE(store->put("front", key, serialize_front(points)).has_value());
  return store->get("front", key).value_or("");
}

// ---- Protocol text -------------------------------------------------------

TEST(result_server, protocol_round_trips) {
  serve_request request = make_request("wait", serve_spec(100));
  request.budget = 0.015625;
  request.timeout_ms = 1234;
  const auto parsed = parse_request(encode_request(request));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->verb, "wait");
  ASSERT_TRUE(parsed->budget.has_value());
  EXPECT_EQ(*parsed->budget, 0.015625);
  EXPECT_EQ(parsed->timeout_ms, 1234);
  EXPECT_EQ(parsed->spec.store_key(), request.spec.store_key());

  serve_reply reply{.status = "hit", .key = "00000000deadbeef",
                    .payload = std::string("bin\0\nary", 8)};
  const auto back = parse_reply(encode_reply(reply));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->status, "hit");
  EXPECT_EQ(back->key, reply.key);
  ASSERT_TRUE(back->payload.has_value());
  EXPECT_EQ(*back->payload, *reply.payload);

  const auto bare = parse_reply(
      encode_reply(serve_reply{.status = "queued", .key = "0123"}));
  ASSERT_TRUE(bare.has_value());
  EXPECT_FALSE(bare->payload.has_value());
}

TEST(result_server, rejects_damaged_request_text) {
  const std::string good = encode_request(make_request("get", serve_spec(101)));
  EXPECT_FALSE(parse_request("").has_value());
  EXPECT_FALSE(parse_request("axc-serve v2\nverb get\n").has_value());
  EXPECT_FALSE(parse_request("axc-serve v1\nverb steal\nspec\n").has_value());
  EXPECT_FALSE(
      parse_request("axc-serve v1\nvverb get\nspec\n").has_value());
  // Cutting the spec section anywhere must fail sweep_spec::read.
  EXPECT_FALSE(parse_request(good.substr(0, good.size() / 2)).has_value());
  EXPECT_FALSE(parse_request(good.substr(0, good.size() - 4)).has_value());
  EXPECT_FALSE(parse_reply("axc-serve-reply v1\nstatus wat\nend\n")
                   .has_value());
  EXPECT_FALSE(parse_reply("axc-serve-reply v1\nstatus hit\npayload 99\nxy")
                   .has_value());
}

// ---- Property (a): hit byte-identity ------------------------------------

TEST(result_server, hit_bytes_match_store_get_exactly) {
  const std::string root = fresh_dir("hit");
  const sweep_spec spec = serve_spec(102);
  const std::string stored = publish_front(root + "/store", spec);
  ASSERT_FALSE(stored.empty());

  result_server server(local_config(root));
  ASSERT_TRUE(server.start());
  const serve_reply reply = ask(server, make_request("get", spec));
  EXPECT_EQ(reply.status, "hit");
  EXPECT_EQ(reply.key, result_store::format_key(spec.store_key()));
  ASSERT_TRUE(reply.payload.has_value());
  EXPECT_EQ(*reply.payload, stored);  // the exact bytes axc_store get prints
  EXPECT_EQ(server.stats().hits, 1u);

  const serve_reply status = ask(server, make_request("status", spec));
  EXPECT_EQ(status.status, "hit");

  std::error_code ec;
  fs::remove_all(root, ec);
}

TEST(result_server, budget_filters_the_front) {
  const std::string root = fresh_dir("budget");
  const sweep_spec spec = serve_spec(103);
  const std::string stored = publish_front(root + "/store", spec);

  result_server server(local_config(root));
  ASSERT_TRUE(server.start());
  serve_request request = make_request("get", spec);
  request.budget = 0.02;
  const serve_reply reply = ask(server, request);
  EXPECT_EQ(reply.status, "hit");
  ASSERT_TRUE(reply.payload.has_value());
  const auto filtered = parse_front(*reply.payload);
  ASSERT_TRUE(filtered.has_value());
  const auto full = parse_front(stored);
  ASSERT_TRUE(full.has_value());
  ASSERT_EQ(filtered->size(), 2u);  // 0.05 point is over budget
  EXPECT_LT(filtered->size(), full->size());
  for (const pareto_point& p : *filtered) EXPECT_LE(p.x, 0.02);

  std::error_code ec;
  fs::remove_all(root, ec);
}

TEST(result_server, read_only_replica_rejects_misses) {
  const std::string root = fresh_dir("replica");
  result_server server(local_config(root));  // no worker binary
  ASSERT_TRUE(server.start());
  const sweep_spec spec = serve_spec(104);
  EXPECT_EQ(ask(server, make_request("status", spec)).status, "unknown");
  EXPECT_EQ(ask(server, make_request("get", spec)).status, "miss-rejected");
  EXPECT_EQ(server.stats().rejected, 1u);
  std::error_code ec;
  fs::remove_all(root, ec);
}

// ---- Tables --------------------------------------------------------------

TEST(result_server, table_builds_once_then_serves_stored_bytes) {
  const std::string root = fresh_dir("table");
  result_server server(local_config(root));
  ASSERT_TRUE(server.start());
  const sweep_spec spec = serve_spec(105);

  const serve_reply built = ask(server, make_request("table", spec));
  ASSERT_EQ(built.status, "hit");
  ASSERT_TRUE(built.payload.has_value());
  const auto table = parse_table(*built.payload);
  ASSERT_TRUE(table.has_value());
  EXPECT_EQ(table->width, 4u);
  EXPECT_FALSE(table->values.empty());

  // Second request is a pure store hit with the identical bytes; a sweep
  // of the same component (different plan) shares the table key.
  const serve_reply again = ask(server, make_request("table", spec));
  ASSERT_EQ(again.status, "hit");
  EXPECT_EQ(*again.payload, *built.payload);
  sweep_spec other_plan = serve_spec(105);
  other_plan.plan.targets = {0.5};
  other_plan.plan.runs_per_target = 1;
  const serve_reply shared = ask(server, make_request("table", other_plan));
  EXPECT_EQ(shared.key, built.key);
  EXPECT_EQ(server.stats().tables_built, 1u);

  auto store = result_store::open(root + "/store");
  ASSERT_TRUE(store.has_value());
  EXPECT_EQ(store->entries("table").size(), 1u);
  EXPECT_EQ(store->get("table", built.key), *built.payload);

  std::error_code ec;
  fs::remove_all(root, ec);
}

// ---- Property (b): miss -> sweep -> hit ---------------------------------

TEST(result_server, miss_sweeps_then_hits_bit_identically) {
  if (!worker_binary()) GTEST_SKIP() << "AXC_WORKER_BIN not set";
  const std::string root = fresh_dir("miss");
  const sweep_spec spec = serve_spec(106);
  const sweep_result reference = run_sweep_inprocess(spec);
  ASSERT_TRUE(reference.complete);

  server_config config = local_config(root);
  config.worker_binary = worker_binary();
  result_server server(config);
  ASSERT_TRUE(server.start());

  const serve_reply miss = ask(server, make_request("get", spec));
  EXPECT_EQ(miss.status, "miss-enqueued");
  serve_request wait = make_request("wait", spec);
  wait.timeout_ms = 120000;
  const serve_reply hit = ask(server, wait);
  ASSERT_EQ(hit.status, "hit");
  ASSERT_TRUE(hit.payload.has_value());
  EXPECT_EQ(*hit.payload, serialize_front(reference.front));

  // And the served bytes are exactly what landed in the store.
  auto store = result_store::open(root + "/store");
  ASSERT_TRUE(store.has_value());
  EXPECT_EQ(store->get("front", hit.key), *hit.payload);
  EXPECT_EQ(server.stats().sweeps_completed, 1u);
  EXPECT_EQ(server.stats().misses_enqueued, 1u);

  std::error_code ec;
  fs::remove_all(root, ec);
}

// ---- Property (c): coalescing -------------------------------------------

TEST(result_server, concurrent_identical_requests_share_one_sweep) {
  if (!worker_binary()) GTEST_SKIP() << "AXC_WORKER_BIN not set";
  const std::string root = fresh_dir("coalesce");
  const sweep_spec spec = serve_spec(107);

  server_config config = local_config(root);
  config.worker_binary = worker_binary();
  result_server server(config);
  ASSERT_TRUE(server.start());

  serve_request wait = make_request("wait", spec);
  wait.timeout_ms = 120000;
  const std::string request_text = encode_request(wait);
  constexpr std::size_t kClients = 4;
  std::vector<std::string> replies(kClients);
  {
    std::vector<std::thread> clients;
    for (std::size_t i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] {
        replies[i] = server.handle_request(request_text);
      });
    }
    for (auto& t : clients) t.join();
  }
  std::optional<std::string> payload;
  for (const std::string& text : replies) {
    const auto reply = parse_reply(text);
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->status, "hit");
    ASSERT_TRUE(reply->payload.has_value());
    if (!payload) payload = reply->payload;
    EXPECT_EQ(*reply->payload, *payload);  // everyone sees the same bytes
  }
  const serve_stats stats = server.stats();
  EXPECT_EQ(stats.sweeps_completed, 1u);  // N requests, ONE sweep
  EXPECT_EQ(stats.misses_enqueued, 1u);
  EXPECT_EQ(stats.coalesced, kClients - 1);

  std::error_code ec;
  fs::remove_all(root, ec);
}

// ---- Property (d): kill/restart convergence ------------------------------

/// Blocks (with a hard deadline) until the child exits.
std::optional<support::exit_status> wait_exit(support::subprocess& proc) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (std::chrono::steady_clock::now() < deadline) {
    if (auto status = proc.poll()) return status;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  proc.kill_hard();
  return std::nullopt;
}

/// One axc_serve life on `root`'s directories, optionally with an armed
/// fault plan; needs_worker toggles sweep capability.
std::optional<support::subprocess> spawn_server(const std::string& root,
                                                const std::string& fault_plan,
                                                bool with_worker) {
  std::vector<std::string> argv = {serve_binary(), "--store",
                                   root + "/store",  "--socket",
                                   root + "/sock",   "--work-dir",
                                   root + "/work"};
  if (with_worker) {
    argv.insert(argv.end(), {"--worker", worker_binary()});
  }
  std::vector<std::string> env;
  if (!fault_plan.empty()) env.push_back("AXC_FAULT=" + fault_plan);
  return support::subprocess::spawn(argv, env);
}

/// Retries until the daemon's socket accepts (a fresh life unlinks any
/// stale socket file, so early failures are expected).
std::optional<support::net::unix_stream> connect_server(
    const std::string& root) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    if (auto stream = support::net::unix_stream::connect(root + "/sock")) {
      return stream;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return std::nullopt;
}

/// Sends one request; nullopt when the server died before replying (the
/// crash cases) or the reply is unparseable.
std::optional<serve_reply> ask_over_socket(const std::string& root,
                                           const serve_request& request) {
  auto stream = connect_server(root);
  if (!stream) return std::nullopt;
  if (!stream->send(encode_request(request))) return std::nullopt;
  const auto frame = stream->receive(64u << 20);
  if (!frame) return std::nullopt;
  return parse_reply(*frame);
}

/// Life 1 dies at `fault_plan`'s point while handling a `get`; life 2 on
/// the same directories must converge on the reference front.
void run_kill_restart_case(const std::string& name,
                           const std::string& fault_plan, int crash_exit,
                           std::uint64_t rng_seed) {
  if (!serve_binary() || !worker_binary()) {
    GTEST_SKIP() << "AXC_SERVE_BIN / AXC_WORKER_BIN not set";
  }
  const std::string root = fresh_dir(name);
  const sweep_spec spec = serve_spec(rng_seed);
  const sweep_result reference = run_sweep_inprocess(spec);
  ASSERT_TRUE(reference.complete);

  auto crashed = spawn_server(root, fault_plan, /*with_worker=*/true);
  ASSERT_TRUE(crashed.has_value());
  // The get both probes the store and arms the enqueue; depending on the
  // fault point the reply may never arrive — that's the point.
  (void)ask_over_socket(root, make_request("get", spec));
  const auto status = wait_exit(*crashed);
  ASSERT_TRUE(status.has_value()) << "server did not die at " << fault_plan;
  EXPECT_FALSE(status->signalled);
  ASSERT_EQ(status->code, crash_exit)
      << "the armed fault point did not fire";

  // Life 2: clean restart re-adopts the journaled job and finishes it.
  auto restarted = spawn_server(root, "", /*with_worker=*/true);
  ASSERT_TRUE(restarted.has_value());
  serve_request wait = make_request("wait", spec);
  wait.timeout_ms = 120000;
  const auto reply = ask_over_socket(root, wait);
  ASSERT_TRUE(reply.has_value()) << "restarted server gave no reply";
  ASSERT_EQ(reply->status, "hit");
  ASSERT_TRUE(reply->payload.has_value());
  EXPECT_EQ(*reply->payload, serialize_front(reference.front));

  // SIGTERM drains life 2 cleanly (exit 0), and the store agrees.
  restarted->terminate();
  const auto drained = wait_exit(*restarted);
  ASSERT_TRUE(drained.has_value());
  EXPECT_TRUE(drained->success());
  auto store = result_store::open(root + "/store");
  ASSERT_TRUE(store.has_value());
  EXPECT_EQ(store->get("front", result_store::format_key(spec.store_key())),
            serialize_front(reference.front));

  std::error_code ec;
  fs::remove_all(root, ec);
}

TEST(result_server, killed_mid_enqueue_readopts_and_converges) {
  run_kill_restart_case("mid-enqueue", "server-crash-mid-enqueue@1", 45,
                        108);
}

TEST(result_server, killed_mid_sweep_readopts_and_converges) {
  // The coordinator fault point fires inside the server's embedded
  // run_sweep — a genuine mid-sweep kill with workers already running.
  run_kill_restart_case("mid-sweep", "coord-crash-after-spawn@1", 43, 109);
}

TEST(result_server, killed_before_reply_still_serves_after_restart) {
  if (!serve_binary()) GTEST_SKIP() << "AXC_SERVE_BIN not set";
  const std::string root = fresh_dir("before-reply");
  const sweep_spec spec = serve_spec(110);
  const std::string stored = publish_front(root + "/store", spec);
  ASSERT_FALSE(stored.empty());

  auto crashed =
      spawn_server(root, "server-crash-before-reply@1", /*with_worker=*/false);
  ASSERT_TRUE(crashed.has_value());
  EXPECT_FALSE(ask_over_socket(root, make_request("get", spec)).has_value());
  const auto status = wait_exit(*crashed);
  ASSERT_TRUE(status.has_value());
  ASSERT_EQ(status->code, 45);

  auto restarted = spawn_server(root, "", /*with_worker=*/false);
  ASSERT_TRUE(restarted.has_value());
  const auto reply = ask_over_socket(root, make_request("get", spec));
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->status, "hit");
  EXPECT_EQ(*reply->payload, stored);
  restarted->terminate();
  const auto drained = wait_exit(*restarted);
  ASSERT_TRUE(drained.has_value());
  EXPECT_TRUE(drained->success());

  std::error_code ec;
  fs::remove_all(root, ec);
}

// ---- Property (e): hostile frames don't wedge the accept loop ------------

TEST(result_server, malformed_frames_never_wedge_the_accept_loop) {
  namespace net = support::net;
  const std::string root = fresh_dir("hostile");
  const sweep_spec spec = serve_spec(111);
  const std::string stored = publish_front(root + "/store", spec);

  server_config config = local_config(root);
  config.socket_path = root + "/sock";
  config.receive_timeout_ms = 1000;
  result_server server(config);
  ASSERT_TRUE(server.start());
  std::thread accept_thread([&server] { server.serve(); });

  const auto connect = [&root] {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    std::optional<net::unix_stream> stream;
    while (!stream && std::chrono::steady_clock::now() < deadline) {
      stream = net::unix_stream::connect(root + "/sock");
      if (!stream) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    return stream;
  };

  // A parade of abuse, each on its own connection: raw garbage, a frame
  // cut mid-header, a bit-flipped frame, a 4 GiB length claim, and a
  // well-framed request whose *payload* is garbage.
  const std::string good_frame =
      net::encode_frame(encode_request(make_request("get", spec)));
  {
    auto c = connect();
    ASSERT_TRUE(c.has_value());
    ASSERT_TRUE(net::write_all(c->fd(), "GET / HTTP/1.1\r\n\r\n"));
  }
  {
    auto c = connect();
    ASSERT_TRUE(c.has_value());
    ASSERT_TRUE(net::write_all(
        c->fd(), std::string_view(good_frame).substr(0, 9)));
  }
  {
    auto c = connect();
    ASSERT_TRUE(c.has_value());
    std::string flipped = good_frame;
    flipped[net::kFrameHeaderBytes + 5] ^= 0x20;
    ASSERT_TRUE(net::write_all(c->fd(), flipped));
  }
  {
    auto c = connect();
    ASSERT_TRUE(c.has_value());
    std::string huge = good_frame.substr(0, net::kFrameHeaderBytes);
    for (int i = 0; i < 4; ++i) huge[4 + i] = static_cast<char>(0xFF);
    const std::uint32_t crc =
        support::crc32(std::string_view(huge.data(), 12));
    for (int i = 0; i < 4; ++i) {
      huge[12 + i] = static_cast<char>((crc >> (8 * i)) & 0xFFu);
    }
    ASSERT_TRUE(net::write_all(c->fd(), huge));
  }
  {
    auto c = connect();
    ASSERT_TRUE(c.has_value());
    ASSERT_TRUE(c->send("definitely not an axc-serve request"));
    const auto frame = c->receive(1u << 20);
    ASSERT_TRUE(frame.has_value());  // framing fine, request malformed
    const auto reply = parse_reply(*frame);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->status, "malformed");
  }

  // After all of that, a fresh connection with a valid request is served.
  auto c = connect();
  ASSERT_TRUE(c.has_value());
  ASSERT_TRUE(c->send(encode_request(make_request("get", spec))));
  const auto frame = c->receive(1u << 20);
  ASSERT_TRUE(frame.has_value()) << "accept loop wedged";
  const auto reply = parse_reply(*frame);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->status, "hit");
  EXPECT_EQ(*reply->payload, stored);
  EXPECT_GE(server.stats().malformed, 4u);

  server.request_stop();
  accept_thread.join();
  std::error_code ec;
  fs::remove_all(root, ec);
}

}  // namespace
}  // namespace axc::core
