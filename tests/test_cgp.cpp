#include <gtest/gtest.h>

#include "cgp/evolver.h"
#include "cgp/genotype.h"
#include "circuit/simulator.h"
#include "metrics/mult_spec.h"
#include "mult/multipliers.h"
#include "support/rng.h"
#include "test_util.h"

namespace axc::cgp {
namespace {

parameters small_params() {
  parameters p;
  p.num_inputs = 4;
  p.num_outputs = 2;
  p.columns = 20;
  p.rows = 1;
  p.levels_back = 20;
  p.function_set.assign(circuit::default_function_set().begin(),
                        circuit::default_function_set().end());
  p.max_mutations = 3;
  p.lambda = 4;
  return p;
}

TEST(parameters, gene_count_formula) {
  const parameters p = small_params();
  // S = r*c*(na+1) + no with na = 2.
  EXPECT_EQ(p.gene_count(), 20u * 3u + 2u);
  EXPECT_TRUE(p.validate().empty());
}

TEST(parameters, validation_catches_errors) {
  parameters p = small_params();
  p.function_set.clear();
  EXPECT_FALSE(p.validate().empty());
  p = small_params();
  p.lambda = 0;
  EXPECT_FALSE(p.validate().empty());
  p = small_params();
  p.columns = 0;
  EXPECT_FALSE(p.validate().empty());
}

TEST(genotype, random_decodes_to_valid_netlist) {
  rng gen(1);
  for (int trial = 0; trial < 20; ++trial) {
    const genotype g = genotype::random(small_params(), gen);
    const circuit::netlist nl = g.decode();
    EXPECT_TRUE(nl.validate().empty()) << "trial " << trial;
    EXPECT_EQ(nl.num_gates(), 20u);
  }
}

TEST(genotype, mutation_preserves_validity) {
  // Property: any number of successive mutations keeps the decoded netlist
  // structurally valid.
  rng gen(2);
  genotype g = genotype::random(small_params(), gen);
  for (int step = 0; step < 500; ++step) {
    g.mutate(gen);
    ASSERT_TRUE(g.decode().validate().empty()) << "step " << step;
  }
}

TEST(genotype, mutation_changes_bounded_gene_count) {
  rng gen(3);
  const genotype original = genotype::random(small_params(), gen);
  for (int trial = 0; trial < 100; ++trial) {
    genotype mutant = original;
    mutant.mutate(gen);
    // h = 3: at most 3 genes re-randomized (possibly to the same value).
    EXPECT_LE(mutant.distance(original), 3u);
  }
}

TEST(genotype, rows_and_levels_back_respected) {
  parameters p = small_params();
  p.rows = 4;
  p.columns = 6;
  p.levels_back = 2;
  rng gen(4);
  for (int trial = 0; trial < 10; ++trial) {
    genotype g = genotype::random(p, gen);
    for (int m = 0; m < 50; ++m) g.mutate(gen);
    const auto& nodes = g.nodes();
    for (std::size_t k = 0; k < nodes.size(); ++k) {
      const std::size_t column = k / p.rows;
      const std::size_t first_col =
          column > p.levels_back ? column - p.levels_back : 0;
      for (const std::uint32_t src : {nodes[k].in0, nodes[k].in1}) {
        if (src < p.num_inputs) continue;  // primary input: always legal
        const std::size_t src_col = (src - p.num_inputs) / p.rows;
        EXPECT_GE(src_col, first_col);
        EXPECT_LT(src_col, column);
      }
    }
  }
}

TEST(genotype, seeding_preserves_function) {
  const circuit::netlist seed_nl = mult::unsigned_multiplier(3);
  parameters p;
  p.num_inputs = 6;
  p.num_outputs = 6;
  p.columns = seed_nl.num_gates() + 16;
  p.rows = 1;
  p.levels_back = p.columns;
  p.function_set.assign(circuit::default_function_set().begin(),
                        circuit::default_function_set().end());
  rng gen(5);
  const genotype g = genotype::from_netlist(p, seed_nl, gen);
  const circuit::netlist decoded = g.decode();
  for (std::uint64_t v = 0; v < 64; ++v) {
    EXPECT_EQ(test::naive_eval(decoded, v), test::naive_eval(seed_nl, v));
  }
}

TEST(genotype, seeded_padding_is_inactive) {
  const circuit::netlist seed_nl = mult::unsigned_multiplier(2);
  parameters p;
  p.num_inputs = 4;
  p.num_outputs = 4;
  p.columns = seed_nl.num_gates() + 32;
  p.rows = 1;
  p.levels_back = p.columns;
  p.function_set.assign(circuit::default_function_set().begin(),
                        circuit::default_function_set().end());
  rng gen(6);
  const genotype g = genotype::from_netlist(p, seed_nl, gen);
  const circuit::netlist decoded = g.decode();
  const auto mask = decoded.active_mask();
  for (std::size_t k = seed_nl.num_gates(); k < decoded.num_gates(); ++k) {
    EXPECT_FALSE(mask[k]) << "padding gate " << k << " active";
  }
}

TEST(evolver_ordering, feasible_beats_infeasible) {
  EXPECT_TRUE(better({0.5, 100.0, true}, {0.0, 1.0, false}));
  EXPECT_FALSE(better({0.0, 1.0, false}, {0.5, 100.0, true}));
}

TEST(evolver_ordering, feasible_ranked_by_area) {
  EXPECT_TRUE(better({0.1, 5.0, true}, {0.0, 6.0, true}));
  EXPECT_FALSE(better({0.1, 6.0, true}, {0.0, 5.0, true}));
}

TEST(evolver_ordering, infeasible_ranked_by_error) {
  EXPECT_TRUE(better({0.2, 1.0, false}, {0.3, 1.0, false}));
  EXPECT_FALSE(better({0.3, 1.0, false}, {0.2, 1.0, false}));
}

TEST(evolver_ordering, not_worse_accepts_equal) {
  const evaluation a{0.1, 5.0, true};
  EXPECT_TRUE(not_worse(a, a));
}

// Toy objective: make output 0 equal input 0 AND input 1 with minimal area.
evolver::evaluate_fn toy_objective() {
  return [](const circuit::netlist& nl) -> evaluation {
    std::size_t wrong = 0;
    for (std::uint64_t v = 0; v < 16; ++v) {
      const std::uint64_t expected = (v & 1) & ((v >> 1) & 1);
      if ((test::naive_eval(nl, v) & 1) != expected) ++wrong;
    }
    evaluation e;
    e.error = static_cast<double>(wrong) / 16.0;
    e.feasible = wrong == 0;
    e.area = static_cast<double>(nl.active_gate_count());
    return e;
  };
}

TEST(evolver, solves_toy_synthesis_problem) {
  rng gen(7);
  const genotype seed = genotype::random(small_params(), gen);
  evolver::options opts;
  opts.iterations = 3000;
  const auto result = evolver::run(seed, toy_objective(), opts, gen);
  EXPECT_TRUE(result.best_eval.feasible);
  EXPECT_LE(result.best_eval.area, 2.0);  // a single AND suffices
  EXPECT_EQ(result.evaluations, 1 + 3000 * 4);
}

TEST(evolver, neutral_drift_moves_recorded) {
  rng gen(8);
  const genotype seed = genotype::random(small_params(), gen);
  evolver::options opts;
  opts.iterations = 500;
  const auto result = evolver::run(seed, toy_objective(), opts, gen);
  // With inactive-node mutations, some accepted offspring tie the parent.
  EXPECT_GT(result.neutral_moves, 0u);
}

TEST(evolver, deterministic_given_seed) {
  const auto run_once = [](std::uint64_t s) {
    rng gen(s);
    const genotype seed = genotype::random(small_params(), gen);
    evolver::options opts;
    opts.iterations = 300;
    return evolver::run(seed, toy_objective(), opts, gen);
  };
  const auto a = run_once(42);
  const auto b = run_once(42);
  EXPECT_EQ(a.best_eval.area, b.best_eval.area);
  EXPECT_EQ(a.improvements, b.improvements);
  EXPECT_EQ(a.best, b.best);
}

TEST(evolver, should_stop_ends_run_early_with_best_so_far) {
  rng gen(11);
  const genotype seed = genotype::random(small_params(), gen);
  evolver::options opts;
  opts.iterations = 1000;
  std::size_t polls = 0;
  opts.should_stop = [&polls] { return ++polls > 100; };
  const auto result = evolver::run(seed, toy_objective(), opts, gen);
  EXPECT_TRUE(result.stopped);
  EXPECT_EQ(result.iterations, 100u);
  EXPECT_EQ(result.evaluations, 1 + 100 * 4);

  // Without the stop hook nothing is stopped and nothing is polled.
  rng gen2(11);
  const genotype seed2 = genotype::random(small_params(), gen2);
  evolver::options plain;
  plain.iterations = 1000;
  const auto full = evolver::run(seed2, toy_objective(), plain, gen2);
  EXPECT_FALSE(full.stopped);
  EXPECT_EQ(full.iterations, 1000u);
}

TEST(evolver, generation_callback_ticks_every_generation) {
  rng gen(12);
  const genotype seed = genotype::random(small_params(), gen);
  evolver::options opts;
  opts.iterations = 250;
  std::vector<std::size_t> ticks;
  opts.on_generation = [&](std::size_t iteration, const evaluation&) {
    ticks.push_back(iteration);
  };
  (void)evolver::run(seed, toy_objective(), opts, gen);
  ASSERT_EQ(ticks.size(), 250u);
  EXPECT_EQ(ticks.front(), 0u);
  EXPECT_EQ(ticks.back(), 249u);
}

TEST(evolver, hooks_do_not_perturb_rng_stream) {
  // Observation must be free: a run with hooks lands on the identical
  // genotype as a run without them.
  const auto run_once = [](bool hooked) {
    rng gen(13);
    const genotype seed = genotype::random(small_params(), gen);
    evolver::options opts;
    opts.iterations = 400;
    if (hooked) {
      opts.on_generation = [](std::size_t, const evaluation&) {};
      opts.should_stop = [] { return false; };
    }
    return evolver::run(seed, toy_objective(), opts, gen);
  };
  const auto plain = run_once(false);
  const auto hooked = run_once(true);
  EXPECT_EQ(plain.best, hooked.best);
  EXPECT_EQ(plain.improvements, hooked.improvements);
}

TEST(evolver, improvement_callback_fires_monotonically) {
  rng gen(9);
  const genotype seed = genotype::random(small_params(), gen);
  evolver::options opts;
  opts.iterations = 2000;
  std::vector<evaluation> improvements;
  opts.on_improvement = [&](std::size_t, const evaluation& e) {
    improvements.push_back(e);
  };
  (void)evolver::run(seed, toy_objective(), opts, gen);
  for (std::size_t i = 1; i < improvements.size(); ++i) {
    EXPECT_TRUE(better(improvements[i], improvements[i - 1]));
  }
}

}  // namespace
}  // namespace axc::cgp
