#include <gtest/gtest.h>

#include <vector>

#include "cgp/genotype.h"
#include "circuit/netlist.h"
#include "circuit/simulator.h"
#include "mult/multipliers.h"
#include "support/rng.h"
#include "test_util.h"

namespace axc::circuit {
namespace {

// Reference: simulate one block with the straightforward all-gates path.
std::vector<std::uint64_t> reference_block(const netlist& nl,
                                           std::size_t block) {
  std::vector<std::uint64_t> in(nl.num_inputs()), out(nl.num_outputs()),
      scratch(nl.num_signals());
  for (std::size_t i = 0; i < nl.num_inputs(); ++i) {
    in[i] = exhaustive_input_word(i, block);
  }
  simulate_block(nl, in, out, scratch);
  return out;
}

template <std::size_t W>
void expect_lane_parity(const netlist& nl, rng& gen) {
  sim_program<W> program(nl);
  ASSERT_EQ(program.num_inputs(), nl.num_inputs());
  ASSERT_EQ(program.num_outputs(), nl.num_outputs());

  // Each lane carries an arbitrary, independent block.
  std::vector<std::size_t> blocks(W);
  for (auto& b : blocks) b = gen.below(1024);

  std::vector<std::uint64_t> in(nl.num_inputs() * W), out(nl.num_outputs() * W);
  for (std::size_t i = 0; i < nl.num_inputs(); ++i) {
    for (std::size_t l = 0; l < W; ++l) {
      in[i * W + l] = exhaustive_input_word(i, blocks[l]);
    }
  }
  program.run(in, out);

  for (std::size_t l = 0; l < W; ++l) {
    const std::vector<std::uint64_t> expected = reference_block(nl, blocks[l]);
    for (std::size_t o = 0; o < nl.num_outputs(); ++o) {
      EXPECT_EQ(out[o * W + l], expected[o]) << "lane " << l << " output " << o;
    }
  }
}

TEST(sim_program, bit_identical_to_simulate_block_random_netlists) {
  rng gen(321);
  for (int trial = 0; trial < 15; ++trial) {
    const netlist nl = test::random_netlist(10, 6, 80, gen);
    expect_lane_parity<1>(nl, gen);
    expect_lane_parity<2>(nl, gen);
    expect_lane_parity<4>(nl, gen);
    expect_lane_parity<8>(nl, gen);
  }
}

TEST(sim_program, bit_identical_on_multiplier) {
  rng gen(99);
  for (const netlist& nl :
       {mult::unsigned_multiplier(8), mult::signed_multiplier(8),
        mult::truncated_multiplier(8, 6)}) {
    expect_lane_parity<8>(nl, gen);
  }
}

TEST(sim_program, simulates_only_the_active_cone) {
  rng gen(17);
  for (int trial = 0; trial < 10; ++trial) {
    const netlist nl = test::random_netlist(8, 3, 60, gen);
    const std::vector<bool> mask = nl.active_mask();
    std::size_t active = 0;
    for (const bool a : mask) active += a ? 1 : 0;
    const sim_program<4> program(nl);
    EXPECT_EQ(program.active_gates(), active);
    EXPECT_LE(program.active_gates(), nl.num_gates());
  }
}

TEST(sim_program, rebuild_reusable_across_candidates) {
  rng gen(23);
  sim_program<8> program;
  for (int trial = 0; trial < 8; ++trial) {
    const netlist nl = test::random_netlist(6 + trial % 3, 4, 30 + 8 * trial,
                                            gen);
    program.rebuild(nl);
    expect_lane_parity<8>(nl, gen);  // fresh program, same answer...
    // ...and the reused one agrees too.
    std::vector<std::uint64_t> in(nl.num_inputs() * 8),
        out(nl.num_outputs() * 8);
    for (std::size_t i = 0; i < nl.num_inputs(); ++i) {
      for (std::size_t l = 0; l < 8; ++l) {
        in[i * 8 + l] = exhaustive_input_word(i, l);
      }
    }
    program.run(in, out);
    for (std::size_t l = 0; l < 8; ++l) {
      const std::vector<std::uint64_t> expected = reference_block(nl, l);
      for (std::size_t o = 0; o < nl.num_outputs(); ++o) {
        EXPECT_EQ(out[o * 8 + l], expected[o]);
      }
    }
  }
}

}  // namespace
}  // namespace axc::circuit

namespace axc::cgp {
namespace {

parameters wide_params(std::size_t inputs, std::size_t outputs,
                       std::size_t columns) {
  parameters p;
  p.num_inputs = inputs;
  p.num_outputs = outputs;
  p.columns = columns;
  p.rows = 1;
  p.levels_back = columns;
  p.function_set.assign(circuit::default_function_set().begin(),
                        circuit::default_function_set().end());
  return p;
}

TEST(decode_cone, equals_decode_then_compacted) {
  rng gen(42);
  for (int trial = 0; trial < 25; ++trial) {
    genotype g = genotype::random(wide_params(6, 4, 40), gen);
    for (int m = 0; m < trial; ++m) g.mutate(gen);
    const circuit::netlist cone = g.decode_cone();
    const circuit::netlist compacted = g.decode().compacted();
    EXPECT_EQ(cone, compacted) << "trial " << trial;
  }
}

TEST(decode_cone, function_identical_to_full_decode) {
  rng gen(77);
  for (int trial = 0; trial < 10; ++trial) {
    genotype g = genotype::random(wide_params(8, 5, 64), gen);
    for (int m = 0; m < 20; ++m) g.mutate(gen);
    const circuit::netlist full = g.decode();
    const circuit::netlist cone = g.decode_cone();
    EXPECT_TRUE(cone.validate().empty());
    for (std::uint64_t v = 0; v < 256; ++v) {
      EXPECT_EQ(test::naive_eval(cone, v), test::naive_eval(full, v))
          << "v=" << v;
    }
  }
}

TEST(decode_cone, drops_seeded_padding) {
  const circuit::netlist seed = mult::unsigned_multiplier(3);
  parameters p = wide_params(6, 6, seed.num_gates() + 50);
  rng gen(5);
  const genotype g = genotype::from_netlist(p, seed, gen);
  // Padding nodes are inactive, so the cone is exactly the seeded function.
  EXPECT_LE(g.decode_cone().num_gates(), seed.num_gates());
  EXPECT_EQ(g.decode().num_gates(), p.node_count());
}

}  // namespace
}  // namespace axc::cgp
