#include <gtest/gtest.h>

#include "cgp/evolver.h"
#include "circuit/netlist.h"
#include "test_util.h"

namespace axc::cgp {
namespace {

parameters toy_params() {
  parameters p;
  p.num_inputs = 3;
  p.num_outputs = 1;
  p.columns = 12;
  p.rows = 1;
  p.levels_back = 12;
  p.function_set.assign(circuit::default_function_set().begin(),
                        circuit::default_function_set().end());
  p.max_mutations = 2;
  p.lambda = 4;
  return p;
}

// Feasibility: output matches majority(a, b, c) on at least 6 of 8
// assignments; error = fraction of mismatches.  Many distinct feasible
// functions exist, with different errors at the same area — exactly the
// plateau structure the tie-break is about.
evolver::evaluate_fn majority_objective() {
  return [](const circuit::netlist& nl) -> evaluation {
    std::size_t wrong = 0;
    for (std::uint64_t v = 0; v < 8; ++v) {
      const unsigned ones =
          static_cast<unsigned>((v & 1) + ((v >> 1) & 1) + ((v >> 2) & 1));
      const std::uint64_t expected = ones >= 2 ? 1 : 0;
      if ((test::naive_eval(nl, v) & 1) != expected) ++wrong;
    }
    evaluation e;
    e.error = static_cast<double>(wrong) / 8.0;
    e.feasible = wrong <= 2;
    e.area = static_cast<double>(nl.active_gate_count());
    return e;
  };
}

TEST(error_tiebreak, reduces_final_error_at_equal_or_lower_area) {
  // Across several seeds, the tie-break run must never finish with higher
  // error at equal area than the plain run, and on aggregate strictly
  // reduces error.
  double plain_error = 0.0, tiebreak_error = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    evolver::options plain;
    plain.iterations = 800;
    plain.error_tiebreak = false;
    evolver::options biased = plain;
    biased.error_tiebreak = true;

    rng gp(seed);
    const genotype start = genotype::random(toy_params(), gp);
    rng g1(seed * 7 + 1);
    const auto a = evolver::run(start, majority_objective(), plain, g1);
    rng g2(seed * 7 + 1);
    const auto b = evolver::run(start, majority_objective(), biased, g2);

    ASSERT_TRUE(a.best_eval.feasible);
    ASSERT_TRUE(b.best_eval.feasible);
    plain_error += a.best_eval.error;
    tiebreak_error += b.best_eval.error;
  }
  EXPECT_LE(tiebreak_error, plain_error);
}

TEST(error_tiebreak, does_not_break_area_minimization) {
  rng gen(3);
  const genotype start = genotype::random(toy_params(), gen);
  evolver::options opts;
  opts.iterations = 2000;
  opts.error_tiebreak = true;
  rng g(5);
  const auto result = evolver::run(start, majority_objective(), opts, g);
  EXPECT_TRUE(result.best_eval.feasible);
  EXPECT_LE(result.best_eval.area, 3.0);  // majority needs <= 4 gates
}

TEST(error_tiebreak, off_by_default_in_raw_evolver) {
  const evolver::options opts;
  EXPECT_FALSE(opts.error_tiebreak);
}

TEST(error_tiebreak, rejects_equal_area_higher_error_drift) {
  // Direct unit check of the acceptance rule via a scripted objective:
  // candidate stream alternates between two feasible equal-area circuits
  // with different errors; with tie-break the parent must keep the lower
  // error.  We emulate by running one iteration from a parent whose
  // mutants are all equal-area: acceptance keeps error monotone.
  rng gen(11);
  const genotype start = genotype::random(toy_params(), gen);
  evolver::options opts;
  opts.iterations = 400;
  opts.error_tiebreak = true;

  double last_error = 2.0;
  bool monotone = true;
  double last_area = 1e9;
  opts.on_improvement = [&](std::size_t, const evaluation& e) {
    if (e.feasible) {
      // Improvements must lower area or (at equal area) lower error.
      if (e.area == last_area && e.error > last_error) monotone = false;
      last_area = e.area;
      last_error = e.error;
    }
  };
  rng g(13);
  (void)evolver::run(start, majority_objective(), opts, g);
  EXPECT_TRUE(monotone);
}

}  // namespace
}  // namespace axc::cgp
