#include <gtest/gtest.h>

#include "circuit/simulator.h"
#include "mult/adders.h"
#include "test_util.h"

namespace axc::mult {
namespace {

class adder_widths : public ::testing::TestWithParam<unsigned> {};

TEST_P(adder_widths, ripple_adder_exhaustively_correct) {
  const unsigned w = GetParam();
  const circuit::netlist nl = ripple_adder(w);
  ASSERT_EQ(nl.num_inputs(), 2 * std::size_t{w});
  ASSERT_EQ(nl.num_outputs(), std::size_t{w} + 1);
  ASSERT_TRUE(nl.validate().empty());

  const auto table = circuit::evaluate_exhaustive(nl);
  for (std::uint64_t b = 0; b < (1u << w); ++b) {
    for (std::uint64_t a = 0; a < (1u << w); ++a) {
      EXPECT_EQ(table[(b << w) | a], a + b)
          << "w=" << w << " a=" << a << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(widths, adder_widths,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

TEST(build_adder, zero_extension_for_short_operand) {
  // 2-bit + 4-bit unsigned, 5-bit result.
  circuit::netlist nl(6, 5);
  const std::vector<std::uint32_t> a{0, 1};
  const std::vector<std::uint32_t> b{2, 3, 4, 5};
  const auto sum = build_adder(nl, a, b, 5, /*sign_extend=*/false);
  for (std::size_t i = 0; i < 5; ++i) nl.set_output(i, sum[i]);

  const auto table = circuit::evaluate_exhaustive(nl);
  for (std::uint64_t v = 0; v < 64; ++v) {
    const std::uint64_t av = v & 3;
    const std::uint64_t bv = v >> 2;
    EXPECT_EQ(table[v], av + bv) << "a=" << av << " b=" << bv;
  }
}

TEST(build_adder, sign_extension_for_short_operand) {
  // 2-bit signed + 4-bit, 4-bit result (mod 16).
  circuit::netlist nl(6, 4);
  const std::vector<std::uint32_t> a{0, 1};
  const std::vector<std::uint32_t> b{2, 3, 4, 5};
  const auto sum = build_adder(nl, a, b, 4, /*sign_extend=*/true);
  for (std::size_t i = 0; i < 4; ++i) nl.set_output(i, sum[i]);

  const auto table = circuit::evaluate_exhaustive(nl);
  for (std::uint64_t v = 0; v < 64; ++v) {
    const std::int64_t av = test::as_value(v & 3, 2, true);
    const std::uint64_t bv = v >> 2;
    const std::uint64_t expected =
        static_cast<std::uint64_t>(av + static_cast<std::int64_t>(bv)) & 15;
    EXPECT_EQ(table[v], expected) << "a=" << av << " b=" << bv;
  }
}

TEST(build_adder, result_truncated_modulo) {
  // 4 + 4 -> only 4 result bits: wraparound semantics.
  circuit::netlist nl(8, 4);
  const std::vector<std::uint32_t> a{0, 1, 2, 3};
  const std::vector<std::uint32_t> b{4, 5, 6, 7};
  const auto sum = build_adder(nl, a, b, 4, false);
  for (std::size_t i = 0; i < 4; ++i) nl.set_output(i, sum[i]);

  const auto table = circuit::evaluate_exhaustive(nl);
  for (std::uint64_t v = 0; v < 256; ++v) {
    EXPECT_EQ(table[v], ((v & 15) + (v >> 4)) & 15);
  }
}

TEST(ripple_adder, linear_area_growth) {
  const std::size_t g4 = ripple_adder(4).num_gates();
  const std::size_t g8 = ripple_adder(8).num_gates();
  // Full-adder chains grow linearly: doubling width roughly doubles gates.
  EXPECT_GT(g8, g4);
  EXPECT_LT(g8, 3 * g4);
}

}  // namespace
}  // namespace axc::mult
