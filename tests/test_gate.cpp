#include <gtest/gtest.h>

#include <set>

#include "circuit/gate.h"

namespace axc::circuit {
namespace {

// Evaluating on full/empty words must agree with the single-bit truth table.
class gate_fn_param : public ::testing::TestWithParam<gate_fn> {};

TEST_P(gate_fn_param, word_eval_matches_truth_table) {
  const gate_fn fn = GetParam();
  const std::uint8_t table = gate_truth_table(fn);
  for (unsigned a = 0; a < 2; ++a) {
    for (unsigned b = 0; b < 2; ++b) {
      const std::uint64_t av = a ? ~std::uint64_t{0} : 0;
      const std::uint64_t bv = b ? ~std::uint64_t{0} : 0;
      const std::uint64_t out = eval_gate(fn, av, bv);
      const bool expected = (table >> (2 * a + b)) & 1;
      EXPECT_EQ(out, expected ? ~std::uint64_t{0} : 0)
          << gate_name(fn) << " a=" << a << " b=" << b;
    }
  }
}

TEST_P(gate_fn_param, word_eval_is_bitwise) {
  const gate_fn fn = GetParam();
  const std::uint64_t a = 0xdeadbeefcafebabeULL;
  const std::uint64_t b = 0x0123456789abcdefULL;
  const std::uint64_t out = eval_gate(fn, a, b);
  for (int bit = 0; bit < 64; ++bit) {
    const std::uint64_t ab = (a >> bit) & 1 ? ~std::uint64_t{0} : 0;
    const std::uint64_t bb = (b >> bit) & 1 ? ~std::uint64_t{0} : 0;
    EXPECT_EQ((out >> bit) & 1, eval_gate(fn, ab, bb) & 1)
        << gate_name(fn) << " bit " << bit;
  }
}

TEST_P(gate_fn_param, has_unique_name) {
  EXPECT_FALSE(gate_name(GetParam()).empty());
  EXPECT_NE(gate_name(GetParam()), "invalid");
}

INSTANTIATE_TEST_SUITE_P(all_functions, gate_fn_param,
                         ::testing::ValuesIn(full_function_set().begin(),
                                             full_function_set().end()));

TEST(gate_truth_tables, all_sixteen_functions_distinct) {
  std::set<std::uint8_t> tables;
  for (const gate_fn fn : full_function_set()) {
    tables.insert(gate_truth_table(fn));
  }
  EXPECT_EQ(tables.size(), gate_fn_count);
}

TEST(gate_truth_tables, known_values) {
  EXPECT_EQ(gate_truth_table(gate_fn::const0), 0b0000);
  EXPECT_EQ(gate_truth_table(gate_fn::const1), 0b1111);
  EXPECT_EQ(gate_truth_table(gate_fn::and2), 0b1000);
  EXPECT_EQ(gate_truth_table(gate_fn::or2), 0b1110);
  EXPECT_EQ(gate_truth_table(gate_fn::xor2), 0b0110);
  EXPECT_EQ(gate_truth_table(gate_fn::nand2), 0b0111);
  EXPECT_EQ(gate_truth_table(gate_fn::nor2), 0b0001);
  EXPECT_EQ(gate_truth_table(gate_fn::xnor2), 0b1001);
}

TEST(gate_dependence, constants_depend_on_nothing) {
  EXPECT_FALSE(depends_on_a(gate_fn::const0));
  EXPECT_FALSE(depends_on_b(gate_fn::const0));
  EXPECT_FALSE(depends_on_a(gate_fn::const1));
  EXPECT_FALSE(depends_on_b(gate_fn::const1));
}

TEST(gate_dependence, unary_functions_depend_on_one_operand) {
  EXPECT_TRUE(depends_on_a(gate_fn::buf_a));
  EXPECT_FALSE(depends_on_b(gate_fn::buf_a));
  EXPECT_TRUE(depends_on_a(gate_fn::not_a));
  EXPECT_FALSE(depends_on_b(gate_fn::not_a));
  EXPECT_FALSE(depends_on_a(gate_fn::buf_b));
  EXPECT_TRUE(depends_on_b(gate_fn::buf_b));
  EXPECT_FALSE(depends_on_a(gate_fn::not_b));
  EXPECT_TRUE(depends_on_b(gate_fn::not_b));
}

TEST(gate_dependence, binary_functions_depend_on_both) {
  for (const gate_fn fn :
       {gate_fn::and2, gate_fn::or2, gate_fn::xor2, gate_fn::nand2,
        gate_fn::nor2, gate_fn::xnor2, gate_fn::andn_ab, gate_fn::andn_ba,
        gate_fn::orn_ab, gate_fn::orn_ba}) {
    EXPECT_TRUE(depends_on_a(fn)) << gate_name(fn);
    EXPECT_TRUE(depends_on_b(fn)) << gate_name(fn);
  }
}

TEST(function_sets, default_set_contains_paper_gates) {
  const auto set = default_function_set();
  for (const gate_fn fn : {gate_fn::and2, gate_fn::or2, gate_fn::xor2,
                           gate_fn::nand2, gate_fn::nor2, gate_fn::xnor2,
                           gate_fn::not_a, gate_fn::buf_a}) {
    EXPECT_NE(std::find(set.begin(), set.end(), fn), set.end())
        << gate_name(fn);
  }
}

TEST(function_sets, full_set_has_sixteen) {
  EXPECT_EQ(full_function_set().size(), 16u);
}

TEST(function_sets, basic_is_subset_of_default) {
  const auto def = default_function_set();
  for (const gate_fn fn : basic_function_set()) {
    EXPECT_NE(std::find(def.begin(), def.end(), fn), def.end());
  }
}

}  // namespace
}  // namespace axc::circuit
