#include <gtest/gtest.h>

#include "circuit/netlist.h"
#include "circuit/simulator.h"
#include "support/rng.h"
#include "test_util.h"

namespace axc::circuit {
namespace {

TEST(exhaustive_input_word, within_word_patterns) {
  // Input i < 6 toggles with period 2^(i+1) inside a word.
  for (std::size_t i = 0; i < 6; ++i) {
    const std::uint64_t w = exhaustive_input_word(i, 0);
    for (std::uint64_t t = 0; t < 64; ++t) {
      EXPECT_EQ((w >> t) & 1, (t >> i) & 1) << "input " << i << " t " << t;
    }
  }
}

TEST(exhaustive_input_word, block_level_patterns) {
  for (std::size_t i = 6; i < 16; ++i) {
    for (std::size_t block = 0; block < 1024; block += 37) {
      const std::uint64_t w = exhaustive_input_word(i, block);
      const bool expected = (block >> (i - 6)) & 1;
      EXPECT_EQ(w, expected ? ~std::uint64_t{0} : 0);
    }
  }
}

TEST(simulate_block, matches_naive_on_random_circuits) {
  rng gen(1234);
  for (int trial = 0; trial < 20; ++trial) {
    const netlist nl = test::random_netlist(6, 4, 40, gen);
    std::vector<std::uint64_t> in_words(6), out_words(4),
        scratch(nl.num_signals());
    for (std::size_t i = 0; i < 6; ++i) {
      in_words[i] = exhaustive_input_word(i, 0);
    }
    simulate_block(nl, in_words, out_words, scratch);
    for (std::uint64_t v = 0; v < 64; ++v) {
      const std::uint64_t expected = test::naive_eval(nl, v);
      std::uint64_t got = 0;
      for (std::size_t o = 0; o < 4; ++o) {
        got |= ((out_words[o] >> v) & 1) << o;
      }
      EXPECT_EQ(got, expected) << "trial " << trial << " v " << v;
    }
  }
}

class exhaustive_sizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(exhaustive_sizes, evaluate_exhaustive_matches_naive) {
  const std::size_t ni = GetParam();
  rng gen(100 + ni);
  const netlist nl = test::random_netlist(ni, 5, 60, gen);
  const auto table = evaluate_exhaustive(nl);
  ASSERT_EQ(table.size(), std::size_t{1} << ni);
  // Spot-check a stride covering every block.
  const std::size_t stride = table.size() > 4096 ? 17 : 1;
  for (std::size_t v = 0; v < table.size(); v += stride) {
    EXPECT_EQ(table[v], test::naive_eval(nl, v)) << "v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(widths, exhaustive_sizes,
                         ::testing::Values(1, 2, 5, 6, 7, 8, 11, 16));

TEST(evaluate_exhaustive, partial_last_block) {
  // ni < 6 exercises the sub-word tail path.
  rng gen(55);
  const netlist nl = test::random_netlist(3, 2, 10, gen);
  const auto table = evaluate_exhaustive(nl);
  ASSERT_EQ(table.size(), 8u);
  for (std::uint64_t v = 0; v < 8; ++v) {
    EXPECT_EQ(table[v], test::naive_eval(nl, v));
  }
}

TEST(simulate_words, arbitrary_value_streams) {
  rng gen(77);
  const netlist nl = test::random_netlist(10, 6, 80, gen);
  std::vector<std::uint64_t> stream(200);
  for (auto& v : stream) v = gen.below(1u << 10);
  const auto out = simulate_words(nl, stream);
  ASSERT_EQ(out.size(), stream.size());
  for (std::size_t k = 0; k < stream.size(); ++k) {
    EXPECT_EQ(out[k], test::naive_eval(nl, stream[k]));
  }
}

TEST(simulate_words, non_multiple_of_64_length) {
  rng gen(78);
  const netlist nl = test::random_netlist(4, 3, 20, gen);
  std::vector<std::uint64_t> stream(97);
  for (auto& v : stream) v = gen.below(16);
  const auto out = simulate_words(nl, stream);
  ASSERT_EQ(out.size(), 97u);
  for (std::size_t k = 0; k < stream.size(); ++k) {
    EXPECT_EQ(out[k], test::naive_eval(nl, stream[k]));
  }
}

TEST(sim_buffer, reusable_across_netlists) {
  rng gen(79);
  sim_buffer buffer;
  for (int trial = 0; trial < 5; ++trial) {
    const netlist nl = test::random_netlist(5, 2, 10 + 10 * trial, gen);
    auto scratch = buffer.prepare(nl);
    EXPECT_EQ(scratch.size(), nl.num_signals());
    std::vector<std::uint64_t> in_words(5), out_words(2);
    for (std::size_t i = 0; i < 5; ++i) {
      in_words[i] = exhaustive_input_word(i, 0);
    }
    simulate_block(nl, in_words, out_words, scratch);
    for (std::uint64_t v = 0; v < 32; ++v) {
      std::uint64_t got = 0;
      for (std::size_t o = 0; o < 2; ++o) {
        got |= ((out_words[o] >> v) & 1) << o;
      }
      EXPECT_EQ(got, test::naive_eval(nl, v));
    }
  }
}

}  // namespace
}  // namespace axc::circuit
