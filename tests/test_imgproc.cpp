#include <gtest/gtest.h>

#include <sstream>

#include "imgproc/gaussian_filter.h"
#include "imgproc/image.h"
#include "mult/lut.h"
#include "mult/multipliers.h"

namespace axc::imgproc {
namespace {

TEST(image, construction_and_access) {
  image img(8, 4, 17);
  EXPECT_EQ(img.width(), 8u);
  EXPECT_EQ(img.height(), 4u);
  EXPECT_EQ(img.at(3, 2), 17);
  img.at(3, 2) = 99;
  EXPECT_EQ(img.at(3, 2), 99);
}

TEST(image, clamped_border_access) {
  image img(4, 4, 0);
  img.at(0, 0) = 11;
  img.at(3, 3) = 22;
  EXPECT_EQ(img.at_clamped(-5, -5), 11);
  EXPECT_EQ(img.at_clamped(10, 10), 22);
  EXPECT_EQ(img.at_clamped(0, -1), 11);
}

TEST(test_scene, deterministic_per_variant) {
  EXPECT_EQ(make_test_scene(32, 32, 5), make_test_scene(32, 32, 5));
  EXPECT_NE(make_test_scene(32, 32, 5), make_test_scene(32, 32, 6));
}

TEST(test_scene, uses_wide_intensity_range) {
  const image img = make_test_scene(64, 64, 1);
  std::uint8_t lo = 255, hi = 0;
  for (const auto p : img.pixels()) {
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  EXPECT_LT(lo, 80);
  EXPECT_GT(hi, 180);
}

TEST(noise, increases_with_sigma) {
  const image clean = make_test_scene(64, 64, 2);
  rng g1(3), g2(3);
  const image mild = add_gaussian_noise(clean, 5.0, g1);
  const image heavy = add_gaussian_noise(clean, 25.0, g2);
  EXPECT_GT(psnr_db(clean, mild), psnr_db(clean, heavy));
}

TEST(psnr, identical_images_are_infinite) {
  const image img = make_test_scene(16, 16, 3);
  EXPECT_TRUE(std::isinf(psnr_db(img, img)));
}

TEST(psnr, known_value_for_uniform_offset) {
  image a(10, 10, 100);
  image b(10, 10, 110);  // MSE = 100
  EXPECT_NEAR(psnr_db(a, b), 10.0 * std::log10(255.0 * 255.0 / 100.0),
              1e-9);
}

TEST(pgm, header_and_payload) {
  image img(3, 2, 7);
  std::ostringstream os;
  write_pgm(os, img);
  const std::string s = os.str();
  EXPECT_EQ(s.rfind("P5\n3 2\n255\n", 0), 0u);
  EXPECT_EQ(s.size(), std::string("P5\n3 2\n255\n").size() + 6);
}

TEST(gaussian_filter, exact_filter_smooths_noise) {
  const image clean = make_test_scene(64, 64, 4);
  rng gen(9);
  const image noisy = add_gaussian_noise(clean, 15.0, gen);
  const image filtered = gaussian_filter_exact(noisy);
  EXPECT_GT(psnr_db(clean, filtered), psnr_db(clean, noisy));
}

TEST(gaussian_filter, constant_image_is_fixed_point) {
  const image flat(16, 16, 93);
  const image filtered = gaussian_filter_exact(flat);
  for (const auto p : filtered.pixels()) EXPECT_EQ(p, 93);
}

TEST(gaussian_filter, approx_with_exact_lut_matches_exact_filter) {
  const mult::product_lut exact_lut =
      mult::product_lut::exact(metrics::mult_spec{8, false});
  const image img = make_test_scene(48, 48, 5);
  EXPECT_EQ(gaussian_filter_approx(img, exact_lut),
            gaussian_filter_exact(img));
}

TEST(gaussian_filter, circuit_lut_matches_behavioural_lut) {
  const mult::product_lut circuit_lut(mult::unsigned_multiplier(8),
                                      metrics::mult_spec{8, false});
  const image img = make_test_scene(32, 32, 6);
  EXPECT_EQ(gaussian_filter_approx(img, circuit_lut),
            gaussian_filter_exact(img));
}

TEST(gaussian_filter, truncated_multiplier_degrades_gracefully) {
  const image img = make_test_scene(48, 48, 7);
  const image reference = gaussian_filter_exact(img);

  const mult::product_lut mild(mult::truncated_multiplier(8, 4),
                               metrics::mult_spec{8, false});
  const mult::product_lut severe(mult::truncated_multiplier(8, 10),
                                 metrics::mult_spec{8, false});
  const double psnr_mild = psnr_db(reference, gaussian_filter_approx(img, mild));
  const double psnr_severe =
      psnr_db(reference, gaussian_filter_approx(img, severe));
  EXPECT_GT(psnr_mild, psnr_severe);
  EXPECT_GT(psnr_mild, 25.0);
}

TEST(filter_quality, exact_lut_scores_capped_maximum) {
  const mult::product_lut exact_lut =
      mult::product_lut::exact(metrics::mult_spec{8, false});
  const filter_quality q = evaluate_filter_quality(exact_lut, 5, 32);
  EXPECT_NEAR(q.mean_psnr_db, 100.0, 1e-9);  // +inf capped at 100 dB
}

TEST(filter_quality, better_multiplier_better_quality) {
  const mult::product_lut good(mult::truncated_multiplier(8, 3),
                               metrics::mult_spec{8, false});
  const mult::product_lut bad(mult::truncated_multiplier(8, 9),
                              metrics::mult_spec{8, false});
  const filter_quality qg = evaluate_filter_quality(good, 5, 32);
  const filter_quality qb = evaluate_filter_quality(bad, 5, 32);
  EXPECT_GT(qg.mean_psnr_db, qb.mean_psnr_db);
}

TEST(kernel, coefficient_sum_is_sixteen) {
  EXPECT_EQ(gaussian_kernel3{}.total(), 16u);
}

}  // namespace
}  // namespace axc::imgproc
