// Parity of the wide-lane batch characterization (compiled_table /
// result_table_wide) against the scalar simulate_block reference
// (result_table), for exact, hand-built approximate, and evolved mult and
// adder netlists — the contract the deployment pipeline's fast path rests
// on.
#include <gtest/gtest.h>

#include "core/wmed_approximator.h"
#include "metrics/compiled_table.h"
#include "mult/adders.h"
#include "mult/approx_adders.h"
#include "mult/lut.h"
#include "mult/multipliers.h"

namespace axc::metrics {
namespace {

template <component_spec Spec>
void expect_wide_matches_scalar(const circuit::netlist& nl, const Spec& spec) {
  const std::vector<std::int64_t> scalar = result_table(nl, spec);
  const std::vector<std::int64_t> wide = result_table_wide(nl, spec);
  ASSERT_EQ(scalar.size(), wide.size());
  EXPECT_EQ(scalar, wide);

  // The compiled table is the narrowed wide table.
  const basic_compiled_table<Spec> table(nl, spec);
  ASSERT_EQ(table.table().size(), scalar.size());
  for (std::size_t v = 0; v < scalar.size(); ++v) {
    ASSERT_EQ(table.table()[v], static_cast<std::int32_t>(scalar[v]))
        << "entry " << v;
  }
}

TEST(compiled_table, exact_multipliers_match_scalar_path) {
  expect_wide_matches_scalar(mult::unsigned_multiplier(8),
                             mult_spec{8, false});
  expect_wide_matches_scalar(mult::signed_multiplier(8), mult_spec{8, true});
}

TEST(compiled_table, exact_multiplier_equals_behavioural_table) {
  const compiled_mult_table from_circuit(mult::signed_multiplier(8),
                                         mult_spec{8, true});
  const compiled_mult_table exact =
      compiled_mult_table::exact(mult_spec{8, true});
  EXPECT_EQ(from_circuit.table(), exact.table());
}

TEST(compiled_table, approximate_multipliers_match_scalar_path) {
  expect_wide_matches_scalar(mult::truncated_multiplier(8, 6),
                             mult_spec{8, false});
  expect_wide_matches_scalar(mult::truncated_multiplier(8, 7, true),
                             mult_spec{8, true});
  expect_wide_matches_scalar(mult::broken_array_multiplier(8, 2, 6),
                             mult_spec{8, false});
}

TEST(compiled_table, adders_match_scalar_path) {
  expect_wide_matches_scalar(mult::ripple_adder(8), adder_spec{8});
  expect_wide_matches_scalar(mult::lower_or_adder(8, 4), adder_spec{8});
}

TEST(compiled_table, adder_table_decodes_sums) {
  const compiled_adder_table table(mult::ripple_adder(8), adder_spec{8});
  EXPECT_EQ(table.by_pattern(200, 100), 300);
  EXPECT_EQ(table.apply(255, 255), 510);
}

TEST(compiled_table, partial_block_widths_match_scalar_path) {
  // Widths whose pair space does not fill one 64-assignment block (w = 2)
  // or one 8-lane chunk (w <= 4) exercise the tail handling.
  for (const unsigned width : {2u, 3u, 4u}) {
    expect_wide_matches_scalar(mult::unsigned_multiplier(width),
                               mult_spec{width, false});
  }
}

TEST(compiled_table, evolved_mult_netlist_matches_scalar_path) {
  // An actual CGP survivor (compacted evolved netlist), the input the
  // deployment pipeline characterizes.
  core::approximation_config cfg;
  cfg.spec = metrics::mult_spec{4, false};
  cfg.distribution = dist::pmf::half_normal(16, 4.0);
  cfg.iterations = 300;
  cfg.extra_columns = 16;
  cfg.rng_seed = 11;
  const core::wmed_approximator approximator(cfg);
  const auto design =
      approximator.approximate(mult::unsigned_multiplier(4), 0.01);
  expect_wide_matches_scalar(design.netlist, cfg.spec);
}

TEST(compiled_table, evolved_adder_netlist_matches_scalar_path) {
  core::adder_approximation_config cfg;
  cfg.spec = metrics::adder_spec{6};
  cfg.distribution = dist::pmf::half_normal(64, 16.0);
  cfg.iterations = 200;
  cfg.extra_columns = 12;
  cfg.rng_seed = 7;
  const core::adder_wmed_approximator approximator(cfg);
  const auto design = approximator.approximate(mult::ripple_adder(6), 0.005);
  expect_wide_matches_scalar(design.netlist, cfg.spec);
}

TEST(compiled_table, legacy_product_lut_alias_still_works) {
  const mult::product_lut lut(mult::unsigned_multiplier(8),
                              mult_spec{8, false});
  EXPECT_EQ(lut.multiply(100, 200), 20000);
  EXPECT_EQ(lut.by_pattern(255, 255), 255 * 255);
}

}  // namespace
}  // namespace axc::metrics
