// Extension — the WMED methodology applied to a second component class:
// approximate 8-bit adders.  Evolves adders under a non-uniform operand
// distribution and compares against the classic approximate-adder families
// (lower-part-OR, equal-segmentation, truncated), demonstrating that the
// paper's method is not multiplier-specific (Sec. III introduces it for
// combinational circuits in general).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/pareto.h"
#include "core/wmed_approximator.h"
#include "metrics/adder_metrics.h"
#include "mult/adders.h"
#include "mult/approx_adders.h"
#include "tech/analysis.h"

namespace {

using namespace axc;

}  // namespace

int main() {
  bench::banner("Adder study", "WMED-evolved adders vs LOA/ESA/truncated");

  const metrics::adder_spec spec{8};
  const dist::pmf d = dist::pmf::half_normal(256, 48.0);
  const auto exact = metrics::exact_sum_table(spec);
  const auto& lib = tech::cell_library::nangate45_like();

  struct row {
    std::string name;
    double wmed, area;
  };
  std::vector<row> rows;
  const auto add = [&](const std::string& name, const circuit::netlist& nl) {
    rows.push_back({name,
                    metrics::adder_wmed(exact, metrics::sum_table(nl, spec),
                                        spec, d),
                    tech::estimate_area(nl, lib)});
  };

  add("exact-ripple", mult::ripple_adder(8));
  for (const unsigned k : {2u, 4u, 6u}) {
    add("loa-" + std::to_string(k), mult::lower_or_adder(8, k));
  }
  for (const unsigned seg : {2u, 4u}) {
    add("esa-" + std::to_string(seg), mult::segmented_adder(8, seg));
  }
  for (const unsigned k : {2u, 4u}) {
    add("trunc-" + std::to_string(k), mult::truncated_adder(8, k));
  }

  // WMED-evolved adders at a few error budgets, searched through the
  // generalized approximator: the same genotype-native incremental pipeline
  // and bit-plane sweep as the multiplier runs — no per-candidate 2^16 sum
  // tables anywhere in the inner loop (tables above remain the scoring
  // reference for the survey adders).
  const circuit::netlist seed = mult::ripple_adder(8);
  core::adder_approximation_config cfg;
  cfg.spec = spec;
  cfg.distribution = d;
  cfg.iterations = bench::scaled(1200);
  cfg.extra_columns = 32;
  cfg.rng_seed = 5;
  const core::adder_wmed_approximator approx(cfg);

  for (const double target : {0.0005, 0.002, 0.01}) {
    const core::evolved_design design = approx.approximate(seed, target);
    add("evolved@" + std::to_string(target), design.netlist);
  }

  std::printf("%-18s %10s %10s\n", "adder", "WMED%", "area_um2");
  for (const row& r : rows) {
    std::printf("%-18s %10.4f %10.1f\n", r.name.c_str(), 100.0 * r.wmed,
                r.area);
  }

  std::vector<core::pareto_point> points;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    points.push_back({rows[i].wmed, rows[i].area, i});
  }
  std::printf("\nPareto-optimal (WMED vs area):\n");
  for (const auto& p : core::pareto_front(points)) {
    std::printf("  %s\n", rows[p.index].name.c_str());
  }
  return 0;
}
