// Fig. 7 — classification accuracy vs relative MAC power for different
// families of approximate multipliers: the proposed WMED-tailored designs,
// an EvoApprox-like library (CGP under uniform operands), truncated
// multipliers, broken-array multipliers, and zero-exact-guarantee wrappers
// (the [6]-style baseline).  Accuracy is without fine-tuning, relative to
// the quantized exact-multiplier network, as in the paper's figure.
//
// Thin driver over core::app_eval: the evolved families run as search
// sessions whose *saved checkpoints* feed the deployment pipeline
// (checkpoint -> candidates -> compiled tables -> rerank_front), exactly
// the session-connected path applications use; the fixed baseline families
// join as plain candidates.  The printed accuracy/power values are
// computed by the shipped nn-accuracy and MAC-power app_metrics.
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/app_eval.h"
#include "mult/multipliers.h"
#include "nn/quantize.h"

namespace {

using namespace axc;

void run_case(const char* name, const bench::classification_task& task,
              const std::function<nn::network()>& build,
              nn::network& trained, unsigned acc_width) {
  const metrics::mult_spec spec{8, true};
  const circuit::netlist seed = mult::signed_multiplier(8);

  // Operand A statistics: the quantized network's weight distribution.
  nn::quantized_network qnet(
      trained, std::span<const nn::tensor>(task.train_x).subspan(0, 64));
  const dist::pmf weight_dist =
      dist::pmf::from_int8_samples(qnet.quantized_weights());

  std::vector<core::app_candidate> candidates;
  const auto add = [&](std::string family, circuit::netlist nl) {
    candidates.push_back(core::app_candidate{candidates.size(),
                                             std::move(family), 0.0, 0.0,
                                             0.0, std::move(nl)});
  };
  add("exact", seed);

  const std::vector<double> targets{0.0005, 0.002, 0.01, 0.03};
  const std::size_t iterations = bench::scaled(1600);

  // Evolved families: search session -> checkpoint on disk -> restored
  // candidates, the session-connected deployment path.
  const auto evolve_family = [&](const char* family, const dist::pmf& d,
                                 std::uint64_t rng_seed) {
    core::approximation_config cfg;
    cfg.spec = spec;
    cfg.distribution = d;
    cfg.iterations = iterations;
    cfg.extra_columns = 64;
    cfg.rng_seed = rng_seed;
    core::sweep_plan plan;
    plan.targets = targets;
    core::search_session session(core::make_component(cfg), seed, plan);
    session.run();

    const std::string path =
        std::string("fig7_") + family + "_session.axs";
    if (!session.save_file(path)) std::abort();
    const std::vector<std::string> paths{path};
    auto restored = core::checkpoint_candidates(
        std::span<const std::string>(paths), core::make_component(cfg),
        /*front_only=*/false, family);
    if (!restored) std::abort();
    core::append_candidates(candidates, std::move(*restored));
  };
  evolve_family("proposed", weight_dist, 800);
  evolve_family("evoapprox-like", dist::pmf::uniform(256), 801);

  for (const unsigned drop : {5u, 6u, 7u}) {
    add("truncated", mult::truncated_multiplier(8, drop, true));
  }
  for (const auto [hbl, vbl] :
       {std::pair{1u, 5u}, std::pair{2u, 6u}, std::pair{2u, 8u}}) {
    add("broken-array", mult::broken_array_multiplier(8, hbl, vbl, true));
  }
  for (const unsigned drop : {6u, 8u}) {
    add("zero-exact[6]", mult::zero_exact_wrapper(
                             mult::truncated_multiplier(8, drop, true), 8));
  }

  // Application-level metrics: accuracy (quality) vs MAC power (cost).
  std::vector<std::unique_ptr<core::app_metric>> app_metrics;
  core::nn_accuracy_options acc;
  acc.build = build;
  acc.trained_weights = core::save_network_weights(trained);
  acc.calibration =
      std::span<const nn::tensor>(task.train_x).subspan(0, 64);
  acc.test_x = task.test_x;
  acc.test_labels = task.test_set.labels;
  app_metrics.push_back(core::make_nn_accuracy_metric(std::move(acc)));
  core::power_metric_options power;
  power.distribution = weight_dist;
  power.mac_acc_width = acc_width;
  app_metrics.push_back(core::make_power_metric(std::move(power)));

  core::rerank_config rcfg;
  rcfg.spec = spec;
  const core::rerank_result result =
      core::rerank_front(std::move(candidates), app_metrics, rcfg);

  const double ref_acc = result.designs[0].scores[0];
  const double exact_power = result.designs[0].scores[1];
  std::printf("\n=== %s (reference accuracy %.2f%%, exact MAC %.1f uW) ===\n",
              name, 100.0 * ref_acc, exact_power);
  std::printf("%-16s %14s %12s\n", "family", "rel_power%", "acc_delta%");
  for (std::size_t i = 1; i < result.designs.size(); ++i) {
    const core::reranked_design& d = result.designs[i];
    std::printf("%-16s %13.1f%% %+11.2f%%\n", d.candidate.family.c_str(),
                100.0 * d.scores[1] / exact_power,
                100.0 * (d.scores[0] - ref_acc));
  }

  std::printf("\napplication-level front (accuracy vs MAC power):\n");
  for (const core::pareto_point& p : result.front) {
    const core::reranked_design& d = result.at(p);
    std::printf("  %-16s acc %+6.2f%%  power %6.1f%%\n",
                d.candidate.family.c_str(),
                100.0 * (d.scores[0] - ref_acc),
                100.0 * d.scores[1] / exact_power);
  }
}

}  // namespace

int main() {
  bench::banner("Fig. 7", "accuracy vs relative power across families");

  auto svhn = bench::make_svhn_task();
  nn::network lenet = bench::svhn_lenet(svhn);
  run_case("LeNet-5 on SVHN-like", svhn,
           [] { return nn::make_lenet5(7777, bench::lenet_channel_scale()); },
           lenet, 25);

  auto mnist = bench::make_mnist_task();
  nn::network mlp = bench::mnist_mlp(mnist);
  run_case("MLP on MNIST-like", mnist, [] { return nn::make_mlp(4242); },
           mlp, 26);

  std::printf(
      "\nPaper reference (shape): proposed points dominate — they hold\n"
      "near-zero accuracy loss at lower power than EvoApprox-like,\n"
      "truncated, broken-array and zero-exact baselines.\n");
  return 0;
}
