// Fig. 7 — classification accuracy vs relative MAC power for different
// families of approximate multipliers: the proposed WMED-tailored designs,
// an EvoApprox-like library (CGP under uniform operands), truncated
// multipliers, broken-array multipliers, and zero-exact-guarantee wrappers
// (the [6]-style baseline).  Accuracy is without fine-tuning, relative to
// the quantized exact-multiplier network, as in the paper's figure.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/design_flow.h"
#include "core/wmed_approximator.h"
#include "mult/multipliers.h"
#include "nn/quantize.h"

namespace {

using namespace axc;

struct entry {
  std::string family;
  circuit::netlist netlist;
};

void run_case(const char* name, const bench::classification_task& task,
              nn::network& trained, unsigned acc_width) {
  const metrics::mult_spec spec{8, true};
  const auto& lib = tech::cell_library::nangate45_like();
  const circuit::netlist seed = mult::signed_multiplier(8);
  const auto exact_lut = mult::product_lut::exact(spec);

  nn::quantized_network qnet(
      trained, std::span<const nn::tensor>(task.train_x).subspan(0, 64));
  const double ref_acc =
      qnet.accuracy(task.test_x, task.test_set.labels, exact_lut);
  const dist::pmf weight_dist =
      dist::pmf::from_int8_samples(qnet.quantized_weights());
  const double exact_power =
      core::characterize_mac(seed, spec, weight_dist, acc_width, lib)
          .power_uw;

  std::vector<entry> entries;
  const std::vector<double> targets{0.0005, 0.002, 0.01, 0.03};
  const std::size_t iterations = bench::scaled(1600);

  {  // proposed: tailored to this network's weight distribution
    core::approximation_config cfg;
    cfg.spec = spec;
    cfg.distribution = weight_dist;
    cfg.iterations = iterations;
    cfg.extra_columns = 64;
    cfg.rng_seed = 800;
    const core::wmed_approximator approximator(cfg);
    for (const double t : targets) {
      entries.push_back(
          {"proposed", approximator.approximate(seed, t).netlist});
    }
  }
  {  // EvoApprox-like: same search under *uniform* operands
    core::approximation_config cfg;
    cfg.spec = spec;
    cfg.distribution = dist::pmf::uniform(256);
    cfg.iterations = iterations;
    cfg.extra_columns = 64;
    cfg.rng_seed = 801;
    const core::wmed_approximator approximator(cfg);
    for (const double t : targets) {
      entries.push_back(
          {"evoapprox-like", approximator.approximate(seed, t).netlist});
    }
  }
  for (const unsigned drop : {5u, 6u, 7u}) {
    entries.push_back(
        {"truncated", mult::truncated_multiplier(8, drop, true)});
  }
  for (const auto [hbl, vbl] :
       {std::pair{1u, 5u}, std::pair{2u, 6u}, std::pair{2u, 8u}}) {
    entries.push_back(
        {"broken-array", mult::broken_array_multiplier(8, hbl, vbl, true)});
  }
  for (const unsigned drop : {6u, 8u}) {
    entries.push_back(
        {"zero-exact[6]", mult::zero_exact_wrapper(
                              mult::truncated_multiplier(8, drop, true), 8)});
  }

  std::printf("\n=== %s (reference accuracy %.2f%%, exact MAC %.1f uW) ===\n",
              name, 100.0 * ref_acc, exact_power);
  std::printf("%-16s %14s %12s\n", "family", "rel_power%", "acc_delta%");
  for (const entry& e : entries) {
    const mult::product_lut lut(e.netlist, spec);
    const double acc =
        qnet.accuracy(task.test_x, task.test_set.labels, lut);
    const double power =
        core::characterize_mac(e.netlist, spec, weight_dist, acc_width, lib)
            .power_uw;
    std::printf("%-16s %13.1f%% %+11.2f%%\n", e.family.c_str(),
                100.0 * power / exact_power, 100.0 * (acc - ref_acc));
  }
}

}  // namespace

int main() {
  bench::banner("Fig. 7", "accuracy vs relative power across families");

  auto svhn = bench::make_svhn_task();
  nn::network lenet = bench::svhn_lenet(svhn);
  run_case("LeNet-5 on SVHN-like", svhn, lenet, 25);

  auto mnist = bench::make_mnist_task();
  nn::network mlp = bench::mnist_mlp(mnist);
  run_case("MLP on MNIST-like", mnist, mlp, 26);

  std::printf(
      "\nPaper reference (shape): proposed points dominate — they hold\n"
      "near-zero accuracy loss at lower power than EvoApprox-like,\n"
      "truncated, broken-array and zero-exact baselines.\n");
  return 0;
}
