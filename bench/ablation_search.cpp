// Ablation — search paradigms at equal evaluation budget: the paper's
// (1 + lambda) CGP evolution strategy (with and without the error
// tie-break) vs simulated annealing over the same genotype, mutation
// operator and Eq.-1 objective, plus the effect of seeding (exact array vs
// Wallace vs Booth multiplier) and of the CGP function set.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "cgp/annealer.h"
#include "core/wmed_approximator.h"
#include "metrics/wmed_evaluator.h"
#include "mult/booth.h"
#include "mult/multipliers.h"
#include "tech/analysis.h"

namespace {

using namespace axc;

struct setup {
  metrics::mult_spec spec{8, true};
  dist::pmf d = dist::pmf::signed_normal(256, 0.0, 30.0);
  double target{0.002};
  std::size_t iterations{0};
};

cgp::parameters make_params(const circuit::netlist& seed,
                            std::span<const circuit::gate_fn> fns) {
  cgp::parameters p;
  p.num_inputs = seed.num_inputs();
  p.num_outputs = seed.num_outputs();
  p.columns = seed.num_gates() + 64;
  p.rows = 1;
  p.levels_back = p.columns;
  p.function_set.assign(fns.begin(), fns.end());
  p.max_mutations = 5;
  p.lambda = 4;
  return p;
}

cgp::evolver::evaluate_fn make_objective(metrics::wmed_evaluator& eval,
                                         double target) {
  return [&eval, target](const circuit::netlist& nl) -> cgp::evaluation {
    cgp::evaluation e;
    e.error = eval.evaluate(nl, target);
    e.feasible = e.error <= target;
    e.area = e.feasible ? tech::estimate_area(
                              nl, tech::cell_library::nangate45_like())
                        : 0.0;
    return e;
  };
}

}  // namespace

int main() {
  bench::banner("Ablation", "search strategy, seeding, function set");
  setup s;
  s.iterations = bench::scaled(2500);

  metrics::wmed_evaluator eval(s.spec, s.d);
  const auto objective = make_objective(eval, s.target);
  const double seed_area = tech::estimate_area(
      mult::signed_multiplier(8), tech::cell_library::nangate45_like());
  std::printf("target WMED %.2f%%, budget %zu evaluations, exact area %.0f\n\n",
              100 * s.target, s.iterations * 4, seed_area);
  std::printf("%-34s %10s %10s\n", "configuration", "area_um2", "WMED%");

  const auto report = [&](const char* name, const circuit::netlist& nl) {
    std::printf("%-34s %10.1f %10.4f\n", name,
                tech::estimate_area(nl, tech::cell_library::nangate45_like()),
                100.0 * eval.evaluate(nl));
  };

  // --- search strategies over the same seed ---
  {
    const circuit::netlist seed = mult::signed_multiplier(8);
    const auto params = make_params(seed, circuit::default_function_set());
    rng gen(42);
    const auto start = cgp::genotype::from_netlist(params, seed, gen);

    cgp::evolver::options eopts;
    eopts.iterations = s.iterations;
    eopts.error_tiebreak = false;
    rng g1(1);
    report("(1+4) ES, plain Eq. 1",
           cgp::evolver::run(start, objective, eopts, g1).best.decode());

    eopts.error_tiebreak = true;
    rng g2(1);
    report("(1+4) ES, error tie-break",
           cgp::evolver::run(start, objective, eopts, g2).best.decode());

    cgp::annealer::options aopts;
    aopts.iterations = s.iterations * 4;  // match evaluation budget
    rng g3(1);
    report("simulated annealing",
           cgp::annealer::run(start, objective, aopts, g3).best.decode());
  }

  // --- seeding (same budget, ES with tie-break) ---
  std::printf("\n");
  for (const auto& [name, seed] :
       {std::pair<const char*, circuit::netlist>{
            "seed: Baugh-Wooley ripple", mult::signed_multiplier(8)},
        {"seed: Baugh-Wooley Wallace",
         mult::signed_multiplier(8, mult::schedule::wallace)},
        {"seed: Booth radix-4", mult::booth_multiplier(8)}}) {
    const auto params = make_params(seed, circuit::default_function_set());
    rng gen(42);
    const auto start = cgp::genotype::from_netlist(params, seed, gen);
    cgp::evolver::options eopts;
    eopts.iterations = s.iterations;
    eopts.error_tiebreak = true;
    rng g(1);
    report(name, cgp::evolver::run(start, objective, eopts, g).best.decode());
  }

  // --- function set (same budget, BW ripple seed) ---
  // The Baugh-Wooley seed contains constant-one correction gates, so the
  // basic set is extended with constants to stay seedable.
  std::vector<circuit::gate_fn> basic_plus(
      circuit::basic_function_set().begin(),
      circuit::basic_function_set().end());
  basic_plus.push_back(circuit::gate_fn::const0);
  basic_plus.push_back(circuit::gate_fn::const1);

  std::printf("\n");
  for (const auto& [name, fns] :
       {std::pair<const char*, std::span<const circuit::gate_fn>>{
            "gates: basic 8 + constants", basic_plus},
        {"gates: default (paper) set", circuit::default_function_set()},
        {"gates: all 16 functions", circuit::full_function_set()}}) {
    const circuit::netlist seed = mult::signed_multiplier(8);
    const auto params = make_params(seed, fns);
    rng gen(42);
    const auto start = cgp::genotype::from_netlist(params, seed, gen);
    cgp::evolver::options eopts;
    eopts.iterations = s.iterations;
    eopts.error_tiebreak = true;
    rng g(1);
    report(name, cgp::evolver::run(start, objective, eopts, g).best.decode());
  }
  return 0;
}
