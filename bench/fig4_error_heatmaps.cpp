// Fig. 4 — per-input-pair error heat maps of multipliers evolved for D1,
// D2 and Du at a common WMED budget.  The paper's observation: the error
// mass moves away from the operand values the distribution makes likely
// (low error near x=127 for D1, low error for x<127 for D2, spread-out
// error for Du).
#include <cstdio>

#include "bench_util.h"
#include "core/wmed_approximator.h"
#include "metrics/error_metrics.h"
#include "mult/multipliers.h"

namespace {

using namespace axc;
using metrics::mult_spec;

void print_heatmap(const char* name, const std::vector<double>& grid,
                   std::size_t cells) {
  std::printf("\n%s (rows = operand j high..low, cols = operand i low..high,"
              " cell = mean |error| %% of output range)\n",
              name);
  double max_cell = 0.0;
  for (const double g : grid) max_cell = std::max(max_cell, g);
  for (std::size_t row = cells; row-- > 0;) {
    std::printf("  j~%3zu |", row * (256 / cells));
    for (std::size_t col = 0; col < cells; ++col) {
      std::printf(" %6.3f", 100.0 * grid[row * cells + col]);
    }
    std::printf("   ");
    for (std::size_t col = 0; col < cells; ++col) {
      const double v = max_cell > 0 ? grid[row * cells + col] / max_cell : 0;
      std::printf("%c", " .:-=+*#%@"[static_cast<int>(v * 9.999)]);
    }
    std::printf("\n");
  }
  std::printf("          i:   0     32     64     96    128    160    192    224\n");
}

}  // namespace

int main() {
  bench::banner("Fig. 4", "error heat maps of comparable evolved multipliers");

  const mult_spec spec{8, false};
  const dist::pmf dists[3] = {dist::pmf::normal(256, 127.0, 32.0),
                              dist::pmf::half_normal(256, 64.0),
                              dist::pmf::uniform(256)};
  const char* names[3] = {"Multiplier D1", "Multiplier D2", "Multiplier Du"};

  const circuit::netlist seed = mult::unsigned_multiplier(8);
  const auto exact_table = metrics::exact_product_table(spec);
  const double target = 0.002;  // 0.2% WMED under the design distribution

  for (int di = 0; di < 3; ++di) {
    core::approximation_config cfg;
    cfg.spec = spec;
    cfg.distribution = dists[di];
    cfg.iterations = bench::scaled(2500);
    cfg.extra_columns = 64;
    cfg.rng_seed = 400 + static_cast<std::uint64_t>(di);
    const core::wmed_approximator approximator(cfg);
    const auto design = approximator.approximate(seed, target);

    const auto table = metrics::product_table(design.netlist, spec);
    const auto map = metrics::error_map(exact_table, table, spec);
    const auto grid = metrics::downsample_error_map(map, spec, 8);
    print_heatmap(names[di], grid, 8);

    // Column profile over operand A (the weighted operand).
    double low = 0, mid = 0, high = 0;
    for (std::size_t b = 0; b < 256; ++b) {
      for (std::size_t a = 0; a < 86; ++a) low += map[(b << 8) | a];
      for (std::size_t a = 86; a < 170; ++a) mid += map[(b << 8) | a];
      for (std::size_t a = 170; a < 256; ++a) high += map[(b << 8) | a];
    }
    std::printf("  mean |err| by operand-i zone: low %.4f%%  mid %.4f%%  "
                "high %.4f%%  (WMED_design=%.4f%%, area=%.0f um2)\n",
                100.0 * low / (86 * 256.0), 100.0 * mid / (84 * 256.0),
                100.0 * high / (86 * 256.0), 100.0 * design.wmed,
                design.area_um2);
  }

  std::printf("\nPaper reference (shape): D1 -> low error around i=127;"
              " D2 -> low error for i<127; Du -> error spread uniformly.\n");
  return 0;
}
