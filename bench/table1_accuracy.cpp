// Table I — classification accuracy of the approximate networks before and
// after fine-tuning, plus MAC-unit PDP/power/area, per WMED level, for both
// case-study networks.  All numbers are relative to the quantized network
// with exact 8-bit multipliers, matching the paper's convention (negative =
// degradation).
//
// Thin driver over core::app_eval: one session sweeps all levels (two runs
// each, the paper reports its best multipliers), and the five columns are
// five shipped app_metrics — accuracy before/after fine-tuning (the tuned
// metric wraps nn::finetune) and MAC PDP/power/area.
#include <cstdio>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "bench_util.h"
#include "core/app_eval.h"
#include "core/design_flow.h"
#include "mult/multipliers.h"
#include "nn/quantize.h"

namespace {

using namespace axc;

void run_case(const char* name, const bench::classification_task& task,
              const std::function<nn::network()>& build,
              const nn::network& trained, unsigned acc_width) {
  const metrics::mult_spec spec{8, true};
  const circuit::netlist seed = mult::signed_multiplier(8);

  // Reference values and weight distribution from the quantized trained
  // network.  Computed directly (not as a rerank candidate): the paper
  // reports both accuracy columns relative to the *untuned* exact-
  // multiplier network, so fine-tuning the reference would be wasted work.
  nn::network reference = bench::clone_into(trained, build());
  nn::quantized_network q_ref(
      reference, std::span<const nn::tensor>(task.train_x).subspan(0, 64));
  const dist::pmf weight_dist =
      dist::pmf::from_int8_samples(q_ref.quantized_weights());
  const auto exact_table = metrics::compiled_mult_table::exact(spec);
  const double ref_acc =
      q_ref.accuracy(task.test_x, task.test_set.labels, exact_table);
  const core::design_power exact_mac = core::characterize_mac(
      seed, spec, weight_dist, acc_width,
      tech::cell_library::nangate45_like());

  core::approximation_config cfg;
  cfg.spec = spec;
  cfg.distribution = weight_dist;
  cfg.iterations = bench::scaled(1600);
  cfg.extra_columns = 64;
  cfg.rng_seed = 700;

  const std::vector<double> levels{0.0,    0.00005, 0.0001, 0.0005, 0.001,
                                   0.005,  0.01,    0.02,   0.05,   0.1};

  // One session, two runs per level; keep the best (smallest) per level.
  core::sweep_plan plan;
  plan.targets = levels;
  plan.runs_per_target = 2;
  core::search_session session(core::make_component(cfg), seed, plan);
  session.run();

  std::vector<core::app_candidate> candidates;
  std::vector<core::app_candidate> runs =
      core::session_candidates(session, /*front_only=*/false);
  for (std::size_t level = 0; level < levels.size(); ++level) {
    core::app_candidate& first = runs[2 * level];
    core::app_candidate& second = runs[2 * level + 1];
    core::app_candidate& best =
        second.area_um2 < first.area_um2 ? second : first;
    best.index = candidates.size();
    candidates.push_back(std::move(best));
  }

  nn::finetune_config ft;
  ft.epochs = bench::scaled(3);  // paper: 10 iterations
  ft.learning_rate = 0.004f;     // gentle: forward path is saturating

  core::nn_accuracy_options acc;
  acc.build = build;
  acc.trained_weights = core::save_network_weights(trained);
  acc.calibration =
      std::span<const nn::tensor>(task.train_x).subspan(0, 64);
  acc.test_x = task.test_x;
  acc.test_labels = task.test_set.labels;
  acc.name = "init_acc";
  core::nn_accuracy_options tuned = acc;
  tuned.finetune = ft;
  tuned.train_x = task.train_x;
  tuned.train_labels = task.train_set.labels;
  tuned.name = "tuned_acc";

  std::vector<std::unique_ptr<core::app_metric>> app_metrics;
  app_metrics.push_back(core::make_nn_accuracy_metric(std::move(acc)));
  app_metrics.push_back(core::make_nn_accuracy_metric(std::move(tuned)));
  // One characterization per candidate, shared by the three columns.
  const auto power_cache = core::make_power_cache();
  for (const auto [quantity, label] :
       {std::pair{core::power_metric_options::quantity::pdp_fj, "pdp_fj"},
        std::pair{core::power_metric_options::quantity::power_uw, "power_uw"},
        std::pair{core::power_metric_options::quantity::area_um2,
                  "area_um2"}}) {
    core::power_metric_options power;
    power.distribution = weight_dist;
    power.mac_acc_width = acc_width;
    power.report = quantity;
    power.name = label;
    power.cache = power_cache;
    app_metrics.push_back(core::make_power_metric(std::move(power)));
  }

  core::rerank_config rcfg;
  rcfg.spec = spec;
  rcfg.quality_metric = 0;  // untuned accuracy vs ...
  rcfg.cost_metric = 3;     // ... MAC power
  const core::rerank_result result =
      core::rerank_front(std::move(candidates), app_metrics, rcfg);

  std::printf("\n=== %s (reference quantized accuracy %.2f%%) ===\n", name,
              100.0 * ref_acc);
  std::printf("%-8s %12s %12s %8s %8s %8s\n", "WMED%", "init_acc",
              "tuned_acc", "PDP%", "Power%", "Area%");
  for (const core::reranked_design& d : result.designs) {
    std::printf("%-8.3f %11.2f%% %11.2f%% %7.0f%% %7.0f%% %7.0f%%\n",
                100.0 * d.candidate.target,
                // Both accuracy columns are relative to the *untuned*
                // exact-multiplier network, the paper's convention.
                100.0 * (d.scores[0] - ref_acc),
                100.0 * (d.scores[1] - ref_acc),
                100.0 * (d.scores[2] / exact_mac.pdp_fj - 1.0),
                100.0 * (d.scores[3] / exact_mac.power_uw - 1.0),
                100.0 * (d.scores[4] / exact_mac.area_um2 - 1.0));
  }
}

}  // namespace

int main() {
  bench::banner("Table I", "accuracy vs WMED before/after fine-tuning");

  const auto svhn = bench::make_svhn_task();
  const nn::network lenet = bench::svhn_lenet(svhn);
  run_case("LeNet-5 on SVHN-like", svhn,
           [] { return nn::make_lenet5(7777, bench::lenet_channel_scale()); },
           lenet, 25);

  const auto mnist = bench::make_mnist_task();
  const nn::network mlp = bench::mnist_mlp(mnist);
  run_case("MLP on MNIST-like", mnist, [] { return nn::make_mlp(4242); },
           mlp, 26);

  std::printf(
      "\nPaper reference (shape): accuracy unchanged for WMED <= 0.5%% with\n"
      "PDP reduced ~55%%; at 2%% a small drop appears (larger for MNIST)\n"
      "that fine-tuning mostly recovers; at 5-10%% the un-tuned network\n"
      "collapses and fine-tuning recovers most of the loss.\n");
  return 0;
}
