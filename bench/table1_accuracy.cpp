// Table I — classification accuracy of the approximate networks before and
// after fine-tuning, plus MAC-unit PDP/power/area, per WMED level, for both
// case-study networks.  All numbers are relative to the quantized network
// with exact 8-bit multipliers, matching the paper's convention (negative =
// degradation).
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_util.h"
#include "core/design_flow.h"
#include "core/wmed_approximator.h"
#include "mult/multipliers.h"
#include "nn/finetune.h"
#include "nn/quantize.h"

namespace {

using namespace axc;

struct row {
  double level;
  double init_acc_delta;
  double tuned_acc_delta;
  double pdp_delta;
  double power_delta;
  double area_delta;
};

void run_case(const char* name, const bench::classification_task& task,
              const std::function<nn::network()>& build,
              const nn::network& trained, unsigned acc_width) {
  const metrics::mult_spec spec{8, true};
  const auto& lib = tech::cell_library::nangate45_like();
  const circuit::netlist seed = mult::signed_multiplier(8);
  const auto exact_lut = mult::product_lut::exact(spec);

  // Reference: quantized accuracy with exact multipliers.
  nn::network reference = bench::clone_into(trained, build());
  nn::quantized_network q_ref(
      reference, std::span<const nn::tensor>(task.train_x).subspan(0, 64));
  const double ref_acc =
      q_ref.accuracy(task.test_x, task.test_set.labels, exact_lut);
  const dist::pmf weight_dist =
      dist::pmf::from_int8_samples(q_ref.quantized_weights());
  const auto exact_mac =
      core::characterize_mac(seed, spec, weight_dist, acc_width, lib);

  core::approximation_config cfg;
  cfg.spec = spec;
  cfg.distribution = weight_dist;
  cfg.iterations = bench::scaled(1600);
  cfg.extra_columns = 64;
  cfg.rng_seed = 700;
  const core::wmed_approximator approximator(cfg);

  nn::finetune_config ft;
  ft.epochs = bench::scaled(3);  // paper: 10 iterations
  ft.learning_rate = 0.004f;     // gentle: forward path is saturating

  const std::vector<double> levels{0.0,    0.00005, 0.0001, 0.0005, 0.001,
                                   0.005,  0.01,    0.02,   0.05,   0.1};

  std::printf("\n=== %s (reference quantized accuracy %.2f%%) ===\n", name,
              100.0 * ref_acc);
  std::printf("%-8s %12s %12s %8s %8s %8s\n", "WMED%", "init_acc", "tuned_acc",
              "PDP%", "Power%", "Area%");

  for (const double level : levels) {
    // Best of two independent runs (the paper reports its best multipliers).
    auto design = approximator.approximate(seed, level, 0);
    if (const auto second = approximator.approximate(seed, level, 1);
        second.area_um2 < design.area_um2) {
      design = second;
    }
    const mult::product_lut lut(design.netlist, spec);

    // Fresh copy of the trained network per level (fine-tuning mutates it).
    nn::network net = bench::clone_into(trained, build());
    nn::quantized_network qnet(
        net, std::span<const nn::tensor>(task.train_x).subspan(0, 64));

    const double init_acc =
        qnet.accuracy(task.test_x, task.test_set.labels, lut);
    nn::finetune(qnet, task.train_x, task.train_set.labels, lut, ft);
    const double tuned_acc =
        qnet.accuracy(task.test_x, task.test_set.labels, lut);

    const auto mac = core::characterize_mac(design.netlist, spec,
                                            weight_dist, acc_width, lib);
    std::printf("%-8.3f %11.2f%% %11.2f%% %7.0f%% %7.0f%% %7.0f%%\n",
                100.0 * level, 100.0 * (init_acc - ref_acc),
                100.0 * (tuned_acc - ref_acc),
                100.0 * (mac.pdp_fj / exact_mac.pdp_fj - 1.0),
                100.0 * (mac.power_uw / exact_mac.power_uw - 1.0),
                100.0 * (mac.area_um2 / exact_mac.area_um2 - 1.0));
  }
}

}  // namespace

int main() {
  bench::banner("Table I", "accuracy vs WMED before/after fine-tuning");

  const auto svhn = bench::make_svhn_task();
  const nn::network lenet = bench::svhn_lenet(svhn);
  run_case("LeNet-5 on SVHN-like", svhn,
           [] { return nn::make_lenet5(7777, bench::lenet_channel_scale()); },
           lenet, 25);

  const auto mnist = bench::make_mnist_task();
  const nn::network mlp = bench::mnist_mlp(mnist);
  run_case("MLP on MNIST-like", mnist, [] { return nn::make_mlp(4242); },
           mlp, 26);

  std::printf(
      "\nPaper reference (shape): accuracy unchanged for WMED <= 0.5%% with\n"
      "PDP reduced ~55%%; at 2%% a small drop appears (larger for MNIST)\n"
      "that fine-tuning mostly recovers; at 5-10%% the un-tuned network\n"
      "collapses and fine-tuning recovers most of the loss.\n");
  return 0;
}
