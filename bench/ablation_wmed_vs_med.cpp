// Ablation — the paper's central claim, quantified: at equal search budget
// and equal *application-metric* error budget (WMED under the application's
// distribution D), how much smaller/cheaper is a multiplier evolved WITH
// the distribution (WMED steering) than one evolved with the conventional
// uniform metric (MED steering)?
//
// A MED-steered design is only a fair drop-in if it *also* meets the WMED_D
// budget, so MED designs are re-qualified under WMED_D and re-evolved at
// tighter MED targets until they qualify (mirroring how a practitioner
// would use a general-purpose library).
#include <cstdio>
#include <optional>
#include <vector>

#include "bench_util.h"
#include "core/wmed_approximator.h"
#include "metrics/wmed_evaluator.h"
#include "mult/multipliers.h"

int main() {
  using namespace axc;
  bench::banner("Ablation", "WMED-steered vs MED-steered search");

  const metrics::mult_spec spec{8, false};
  const dist::pmf d2 = dist::pmf::half_normal(256, 64.0);
  const circuit::netlist seed = mult::unsigned_multiplier(8);
  const std::size_t iterations = bench::scaled(2500);
  metrics::wmed_evaluator d2_eval(spec, d2);

  core::approximation_config base;
  base.spec = spec;
  base.iterations = iterations;
  base.extra_columns = 64;
  base.rng_seed = 900;

  std::printf("%-10s %16s %18s %9s\n", "WMED_D2%", "area(WMED-steered)",
              "area(MED-steered)", "savings");

  for (const double target : {0.0005, 0.002, 0.01, 0.05}) {
    core::approximation_config cfg = base;
    cfg.distribution = d2;
    const core::wmed_approximator tailored(cfg);
    const auto wmed_design = tailored.approximate(seed, target);

    // MED-steered: evolve under the uniform metric at progressively
    // tighter budgets until the result qualifies under WMED_D2.
    cfg.distribution = dist::pmf::uniform(256);
    const core::wmed_approximator generic(cfg);
    std::optional<double> med_area;
    for (double med_target = target; med_target > target / 64.0;
         med_target /= 2.0) {
      const auto d = generic.approximate(seed, med_target);
      if (d2_eval.evaluate(d.netlist) <= target) {
        med_area = d.area_um2;
        break;
      }
    }

    if (med_area) {
      std::printf("%-10.4f %18.1f %18.1f %8.1f%%\n", 100.0 * target,
                  wmed_design.area_um2, *med_area,
                  100.0 * (1.0 - wmed_design.area_um2 / *med_area));
    } else {
      std::printf("%-10.4f %18.1f %18s %9s\n", 100.0 * target,
                  wmed_design.area_um2, "(never qualified)", "-");
    }
  }

  std::printf(
      "\nReading: positive savings = the distribution-aware metric buys a\n"
      "smaller circuit at the same application-level error budget.\n");
  return 0;
}
