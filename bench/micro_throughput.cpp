// Micro-benchmarks (google-benchmark): throughput of the primitives the
// reproduction's wall-clock behaviour depends on — bit-parallel simulation,
// exhaustive evaluation, WMED scoring, CGP mutation/decoding, LUT-based
// quantized inference and the Gaussian filter.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <sstream>
#include <thread>

#include "cgp/cone_program.h"
#include "cgp/evolver.h"
#include "cgp/genotype.h"
#include "circuit/activity.h"
#include "circuit/simulator.h"
#include "core/result_server.h"
#include "core/result_store.h"
#include "core/search_session.h"
#include "core/wmed_approximator.h"
#include "data/digits.h"
#include "dist/pmf.h"
#include "imgproc/gaussian_filter.h"
#include "metrics/adder_metrics.h"
#include "metrics/compiled_table.h"
#include "metrics/wmed_evaluator.h"
#include "mult/adders.h"
#include "mult/approx_adders.h"
#include "mult/lut.h"
#include "mult/multipliers.h"
#include "nn/models.h"
#include "nn/quantize.h"
#include "nn/trainer.h"
#include "support/rng.h"
#include "support/simd.h"
#include "tech/analysis.h"
#include "tech/cell_library.h"

namespace {

using namespace axc;

/// Worker/connection counts for the _mt benches: always 2 (the stable
/// point the regression gate watches) plus the machine's concurrency or
/// the AXC_BENCH_THREADS override (bench/run_micro.sh --threads N).
std::size_t bench_threads() {
  if (const char* env = std::getenv("AXC_BENCH_THREADS")) {
    const long v = std::atol(env);
    if (v > 1) return static_cast<std::size_t>(v);
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 2 ? hc : 2;
}

void mt_args(benchmark::internal::Benchmark* b) {
  b->Arg(2);
  const auto t = static_cast<int>(bench_threads());
  if (t != 2) b->Arg(t);
}

void bm_simulate_block(benchmark::State& state) {
  const circuit::netlist nl = mult::unsigned_multiplier(8);
  std::vector<std::uint64_t> in(16), out(16), scratch(nl.num_signals());
  for (std::size_t i = 0; i < 16; ++i) {
    in[i] = circuit::exhaustive_input_word(i, 3);
  }
  for (auto _ : state) {
    circuit::simulate_block(nl, in, out, scratch);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(bm_simulate_block);

void bm_sim_program_8lanes(benchmark::State& state) {
  // Same circuit as bm_simulate_block, but through the compiled wide-lane
  // path: one run() covers 8 blocks (512 assignments).
  const circuit::netlist nl = mult::unsigned_multiplier(8);
  circuit::sim_program<8> program(nl);
  std::vector<std::uint64_t> in(16 * 8), out(16 * 8);
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t l = 0; l < 8; ++l) {
      in[i * 8 + l] = circuit::exhaustive_input_word(i, l);
    }
  }
  for (auto _ : state) {
    program.run(in, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64 *
                          8);
}
BENCHMARK(bm_sim_program_8lanes);

void bm_sim_program_rebuild(benchmark::State& state) {
  // Per-candidate compile cost (cone marking + remap), amortized over the
  // 2^16/64 blocks of one WMED sweep.
  const circuit::netlist nl = mult::unsigned_multiplier(8);
  circuit::sim_program<8> program;
  for (auto _ : state) {
    program.rebuild(nl);
    benchmark::DoNotOptimize(program.active_gates());
  }
}
BENCHMARK(bm_sim_program_rebuild);

void bm_evaluate_exhaustive_8bit(benchmark::State& state) {
  const circuit::netlist nl = mult::unsigned_multiplier(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit::evaluate_exhaustive(nl));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          65536);
}
BENCHMARK(bm_evaluate_exhaustive_8bit);

void bm_wmed_evaluate(benchmark::State& state) {
  // Batched sweep under the best runtime-dispatched backend (AXC_SIMD
  // overrides; see metrics/scan_kernels.h).
  const metrics::mult_spec spec{8, false};
  metrics::wmed_evaluator evaluator(spec, dist::pmf::half_normal(256, 64.0));
  const circuit::netlist nl = mult::truncated_multiplier(8, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.evaluate(nl));
  }
}
BENCHMARK(bm_wmed_evaluate);

void bm_wmed_evaluate_scalar(benchmark::State& state) {
  // Same sweep forced onto the scalar batched kernels — the portable
  // floor, which must stay no slower than the pre-batch (pr4) sweep.
  const metrics::mult_spec spec{8, false};
  metrics::wmed_evaluator evaluator(spec, dist::pmf::half_normal(256, 64.0),
                                    simd::level::scalar);
  const circuit::netlist nl = mult::truncated_multiplier(8, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.evaluate(nl));
  }
}
BENCHMARK(bm_wmed_evaluate_scalar);

void bm_wmed_evaluate_reference(benchmark::State& state) {
  // The pre-refactor sweep (simulate_block + per-assignment gather) on the
  // same candidate — the baseline bm_wmed_evaluate is measured against.
  const metrics::mult_spec spec{8, false};
  metrics::wmed_evaluator evaluator(spec, dist::pmf::half_normal(256, 64.0));
  const circuit::netlist nl = mult::truncated_multiplier(8, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.evaluate_reference(nl));
  }
}
BENCHMARK(bm_wmed_evaluate_reference);

void bm_wmed_evaluate_with_abort(benchmark::State& state) {
  const metrics::mult_spec spec{8, false};
  metrics::wmed_evaluator evaluator(spec, dist::pmf::half_normal(256, 64.0));
  const circuit::netlist nl = mult::truncated_multiplier(8, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.evaluate(nl, 1e-5));
  }
}
BENCHMARK(bm_wmed_evaluate_with_abort);

void bm_wmed_evaluate_reference_with_abort(benchmark::State& state) {
  const metrics::mult_spec spec{8, false};
  metrics::wmed_evaluator evaluator(spec, dist::pmf::half_normal(256, 64.0));
  const circuit::netlist nl = mult::truncated_multiplier(8, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.evaluate_reference(nl, 1e-5));
  }
}
BENCHMARK(bm_wmed_evaluate_reference_with_abort);

/// A realistic CGP search candidate: the exact multiplier seeded into a
/// 460-column genotype (mostly inactive padding) and mutated — what the
/// evolver actually scores, and where cone restriction pays.
cgp::genotype search_candidate() {
  const circuit::netlist seed = mult::unsigned_multiplier(8);
  cgp::parameters params;
  params.num_inputs = 16;
  params.num_outputs = 16;
  params.columns = seed.num_gates() + 64;
  params.rows = 1;
  params.levels_back = params.columns;
  params.function_set.assign(circuit::default_function_set().begin(),
                             circuit::default_function_set().end());
  rng gen(17);
  cgp::genotype g = cgp::genotype::from_netlist(params, seed, gen);
  for (int m = 0; m < 10; ++m) g.mutate(gen);
  return g;
}

void bm_wmed_evaluate_cgp_candidate(benchmark::State& state) {
  const metrics::mult_spec spec{8, false};
  metrics::wmed_evaluator evaluator(spec, dist::pmf::half_normal(256, 64.0));
  const cgp::genotype g = search_candidate();
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.evaluate(g.decode_cone()));
  }
}
BENCHMARK(bm_wmed_evaluate_cgp_candidate);

void bm_wmed_evaluate_cgp_candidate_reference(benchmark::State& state) {
  // Pre-refactor inner loop: full decode (padding included) + naive sweep.
  const metrics::mult_spec spec{8, false};
  metrics::wmed_evaluator evaluator(spec, dist::pmf::half_normal(256, 64.0));
  const cgp::genotype g = search_candidate();
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.evaluate_reference(g.decode()));
  }
}
BENCHMARK(bm_wmed_evaluate_cgp_candidate_reference);

void bm_wmed_evaluate_batch(benchmark::State& state) {
  // Full (abort-free) batched sweep, per candidate: four staged mutants of
  // the search candidate scored by one evaluate_batch call — read against
  // bm_wmed_evaluate to see the batch executor's per-step amortization in
  // isolation (same passes, same scan work, 1/4 the dispatch overhead).
  const metrics::mult_spec spec{8, false};
  metrics::wmed_evaluator evaluator(spec, dist::pmf::half_normal(256, 64.0));
  const cgp::genotype parent = search_candidate();
  cgp::cone_program cone;
  cone.bind(parent);
  rng gen(11);
  constexpr std::size_t kLambda = 4;
  std::vector<cgp::genotype> children(kLambda, parent);
  std::vector<cgp::staged_child> staged(kLambda);
  std::vector<const cgp::staged_child*> ptrs;
  std::vector<metrics::batch_candidate> cands;
  std::vector<std::uint32_t> dirty;
  for (std::size_t i = 0; i < kLambda; ++i) {
    // Stage four phenotype-changing mutants once; the timed loop re-scores
    // the same batch.
    for (;;) {
      children[i] = parent;
      dirty.clear();
      children[i].mutate(gen, dirty);
      if (cone.stage_child(parent, children[i], dirty, staged[i]) !=
          cgp::cone_program::delta::identical) {
        break;
      }
    }
    ptrs.push_back(&staged[i]);
    cands.push_back({staged[i].patch_nodes.data(),
                     staged[i].patch_steps.data(),
                     staged[i].patch_nodes.size(),
                     staged[i].out_offsets.data()});
  }
  double results[kLambda];
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    evaluator.evaluate_batch(cone.program(), cone.batch_union(ptrs), cands,
                             std::numeric_limits<double>::infinity(),
                             {results, kLambda});
    benchmark::DoNotOptimize(results[0]);
    const auto t1 = std::chrono::steady_clock::now();
    state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count() /
                           static_cast<double>(kLambda));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_wmed_evaluate_batch)->UseManualTime();

void bm_cgp_mutate_decode(benchmark::State& state) {
  cgp::parameters params;
  params.num_inputs = 16;
  params.num_outputs = 16;
  params.columns = 400;
  params.rows = 1;
  params.levels_back = 400;
  params.function_set.assign(circuit::default_function_set().begin(),
                             circuit::default_function_set().end());
  rng gen(1);
  cgp::genotype g = cgp::genotype::random(params, gen);
  for (auto _ : state) {
    g.mutate(gen);
    benchmark::DoNotOptimize(g.decode());
  }
}
BENCHMARK(bm_cgp_mutate_decode);

void bm_cgp_mutate_decode_cone(benchmark::State& state) {
  cgp::parameters params;
  params.num_inputs = 16;
  params.num_outputs = 16;
  params.columns = 400;
  params.rows = 1;
  params.levels_back = 400;
  params.function_set.assign(circuit::default_function_set().begin(),
                             circuit::default_function_set().end());
  rng gen(1);
  cgp::genotype g = cgp::genotype::random(params, gen);
  for (auto _ : state) {
    g.mutate(gen);
    benchmark::DoNotOptimize(g.decode_cone());
  }
}
BENCHMARK(bm_cgp_mutate_decode_cone);

/// Shared body of the per-offspring generation benches: one (1+lambda)
/// generation through evaluate_children() — the lambda-batch pipeline
/// evolver::run_incremental drives — with manual timing divided by lambda,
/// so the reported number stays *per offspring* and comparable across the
/// whole trajectory (pr5's solo-patch numbers included).
void run_generation_bench(benchmark::State& state,
                          cgp::incremental_evaluator& evaluator,
                          const cgp::genotype& parent, std::uint64_t seed) {
  evaluator.evaluate_and_bind(parent);
  rng gen(seed);
  constexpr std::size_t kLambda = 4;
  std::vector<cgp::genotype> children(kLambda, parent);
  std::vector<std::vector<std::uint32_t>> dirty(kLambda);
  std::vector<cgp::evaluation> evals(kLambda);
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kLambda; ++i) {
      // O(dirty) resync, as run_incremental does: the slot still differs
      // from the (never-replaced) parent by its previous mutation only.
      children[i].copy_genes_from(parent, dirty[i]);
      dirty[i].clear();
      children[i].mutate(gen, dirty[i]);
    }
    evaluator.evaluate_children(parent, children, dirty, 0, kLambda,
                                evals.data());
    benchmark::DoNotOptimize(evals.data());
    const auto t1 = std::chrono::steady_clock::now();
    state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count() /
                           static_cast<double>(kLambda));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void bm_evolver_generation(benchmark::State& state) {
  // One offspring of one (1+lambda) WMED search generation, through the
  // lambda-batch genotype-native pipeline: record dirty genes, stage every
  // mutant against the parent's schedule (identical mutants drop out), then
  // one batched sweep executes and scores all of them — the per-step
  // dispatch cost that bounds the solo executor is paid once per step, not
  // once per step per mutant.  No netlist, no recompile, no allocation.
  const metrics::mult_spec spec{8, false};
  const dist::pmf d = dist::pmf::half_normal(256, 64.0);
  const auto& lib = tech::cell_library::nangate45_like();
  const auto evaluator =
      core::make_incremental_wmed_evaluator(spec, d, lib, 1e-4);
  run_generation_bench(state, *evaluator, search_candidate(), 3);
}
BENCHMARK(bm_evolver_generation)->UseManualTime();

void bm_evolver_generation_solo(benchmark::State& state) {
  // The same offspring loop with batching off (evaluate_child per mutant,
  // apply/patch + solo sweep + release) — the pr5..pr8 inner loop, kept as
  // the baseline the batch path is measured against.
  const metrics::mult_spec spec{8, false};
  const dist::pmf d = dist::pmf::half_normal(256, 64.0);
  const auto& lib = tech::cell_library::nangate45_like();
  const auto evaluator = core::make_incremental_wmed_evaluator(
      spec, d, lib, 1e-4, simd::level::automatic, /*batch=*/false);
  run_generation_bench(state, *evaluator, search_candidate(), 3);
}
BENCHMARK(bm_evolver_generation_solo)->UseManualTime();

void bm_evolver_generation_scalar(benchmark::State& state) {
  // The batched offspring loop with the whole sweep (batch executor + scan
  // kernel) forced onto the scalar backends.
  const metrics::mult_spec spec{8, false};
  const dist::pmf d = dist::pmf::half_normal(256, 64.0);
  const auto& lib = tech::cell_library::nangate45_like();
  const auto evaluator = core::make_incremental_wmed_evaluator(
      spec, d, lib, 1e-4, simd::level::scalar);
  run_generation_bench(state, *evaluator, search_candidate(), 3);
}
BENCHMARK(bm_evolver_generation_scalar)->UseManualTime();

void bm_evolver_generation_mt(benchmark::State& state) {
  // A short incremental search driven end to end through
  // evolver::run_incremental with N worker threads (contiguous lambda
  // chunks, one staged batch per worker, per-worker evaluators) —
  // per-offspring wall time, the multi-core scaling trajectory of the
  // search inner loop.  On a single-core box this records the
  // synchronization overhead floor, not a speedup.
  const metrics::mult_spec spec{8, false};
  const dist::pmf d = dist::pmf::half_normal(256, 64.0);
  const auto& lib = tech::cell_library::nangate45_like();
  const auto cache = metrics::wmed_evaluator::make_shared_state(spec, d);
  const cgp::genotype start = search_candidate();
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  cgp::evolver::options opts;
  opts.iterations = 64;
  const cgp::evolver::incremental_factory factory =
      [&cache, &lib]() -> std::unique_ptr<cgp::incremental_evaluator> {
    return core::make_incremental_wmed_evaluator<metrics::mult_spec>(
        cache, lib, 1e-4);
  };
  for (auto _ : state) {
    rng gen(3);
    const auto t0 = std::chrono::steady_clock::now();
    const cgp::evolver::run_result run =
        cgp::evolver::run_incremental(start, factory, opts, threads, gen);
    benchmark::DoNotOptimize(run.evaluations);
    const auto t1 = std::chrono::steady_clock::now();
    state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count() /
                           static_cast<double>(run.evaluations));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_evolver_generation_mt)->Apply(mt_args)->UseManualTime();

void bm_evolver_generation_roundtrip(benchmark::State& state) {
  // The pre-incremental inner loop (PR 1's bm_evolver_generation): mutate,
  // decode_cone() to a fresh netlist, recompile the sim program, score with
  // early abort — the baseline bm_evolver_generation is measured against.
  const metrics::mult_spec spec{8, false};
  metrics::wmed_evaluator evaluator(spec, dist::pmf::half_normal(256, 64.0));
  cgp::genotype g = search_candidate();
  rng gen(3);
  const double target = 1e-4;
  for (auto _ : state) {
    cgp::genotype child = g;
    child.mutate(gen);
    benchmark::DoNotOptimize(evaluator.evaluate(child.decode_cone(), target));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_evolver_generation_roundtrip);

void bm_cone_bind(benchmark::State& state) {
  // Full genotype-native compile (mark cone + emit schedule) — the cost an
  // accepted parent or a topology-shifting mutant pays, replacing
  // decode_cone() + sim_program::rebuild() + netlist (de)allocation.
  const cgp::genotype g = search_candidate();
  cgp::cone_program cone;
  for (auto _ : state) {
    cone.bind(g);
    benchmark::DoNotOptimize(cone.active_nodes());
  }
}
BENCHMARK(bm_cone_bind);

/// An adder search candidate: the exact ripple adder seeded into a padded
/// genotype and drifted, mirroring search_candidate() for the second
/// component class.
cgp::genotype adder_search_candidate() {
  const circuit::netlist seed = mult::ripple_adder(8);
  cgp::parameters params;
  params.num_inputs = 16;
  params.num_outputs = 9;
  params.columns = seed.num_gates() + 32;
  params.rows = 1;
  params.levels_back = params.columns;
  params.function_set.assign(circuit::default_function_set().begin(),
                             circuit::default_function_set().end());
  rng gen(23);
  cgp::genotype g = cgp::genotype::from_netlist(params, seed, gen);
  for (int m = 0; m < 10; ++m) g.mutate(gen);
  return g;
}

void bm_adder_wmed_evaluate(benchmark::State& state) {
  // Full adder WMED sweep on the bit-plane fast path (no tables).
  const metrics::adder_spec spec{8};
  metrics::adder_wmed_evaluator evaluator(spec,
                                          dist::pmf::half_normal(256, 48.0));
  const circuit::netlist nl = mult::lower_or_adder(8, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.evaluate(nl));
  }
}
BENCHMARK(bm_adder_wmed_evaluate);

void bm_adder_wmed_table(benchmark::State& state) {
  // The retired search-loop path: allocate + fill a 2^16 sum table per
  // candidate, then reduce it — kept as the parity/benchmark baseline.
  const metrics::adder_spec spec{8};
  const dist::pmf d = dist::pmf::half_normal(256, 48.0);
  const auto exact = metrics::exact_sum_table(spec);
  const circuit::netlist nl = mult::lower_or_adder(8, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        metrics::adder_wmed(exact, metrics::sum_table(nl, spec), spec, d));
  }
}
BENCHMARK(bm_adder_wmed_table);

void bm_evolver_generation_adder(benchmark::State& state) {
  // One adder-search offspring through the lambda-batch pipeline — the
  // second component class on the same fast path as the multipliers.
  const metrics::adder_spec spec{8};
  const dist::pmf d = dist::pmf::half_normal(256, 48.0);
  const auto& lib = tech::cell_library::nangate45_like();
  const auto evaluator =
      core::make_incremental_wmed_evaluator(spec, d, lib, 1e-3);
  run_generation_bench(state, *evaluator, adder_search_candidate(), 7);
}
BENCHMARK(bm_evolver_generation_adder)->UseManualTime();

void bm_evolver_generation_adder_solo(benchmark::State& state) {
  // Batching off for the adder workload: on small cones the batch path's
  // fixed staging cost is proportionally heavier, so this pair brackets
  // where the crossover between the two inner loops sits.
  const metrics::adder_spec spec{8};
  const dist::pmf d = dist::pmf::half_normal(256, 48.0);
  const auto& lib = tech::cell_library::nangate45_like();
  const auto evaluator = core::make_incremental_wmed_evaluator(
      spec, d, lib, 1e-3, simd::level::automatic, /*batch=*/false);
  run_generation_bench(state, *evaluator, adder_search_candidate(), 7);
}
BENCHMARK(bm_evolver_generation_adder_solo)->UseManualTime();

void bm_evolver_generation_adder_table(benchmark::State& state) {
  // The pre-port adder inner loop: decode + exhaustive sum table +
  // table-based WMED per mutant (what bench/adder_study.cpp used to run).
  const metrics::adder_spec spec{8};
  const dist::pmf d = dist::pmf::half_normal(256, 48.0);
  const auto exact = metrics::exact_sum_table(spec);
  cgp::genotype g = adder_search_candidate();
  rng gen(7);
  for (auto _ : state) {
    cgp::genotype child = g;
    child.mutate(gen);
    const circuit::netlist nl = child.decode_cone();
    benchmark::DoNotOptimize(
        metrics::adder_wmed(exact, metrics::sum_table(nl, spec), spec, d));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_evolver_generation_adder_table);

/// A small 8-bit session sweep (4 jobs x 24 generations) — the
/// orchestration overhead benchmark.  The searches themselves are tiny, so
/// what dominates is exactly what the session layer is supposed to
/// amortize: building the evaluator's 2^16 exact table + bit planes.
core::approximation_config sweep_session_config() {
  core::approximation_config config;
  config.spec = metrics::mult_spec{8, false};
  config.distribution = dist::pmf::half_normal(256, 64.0);
  config.iterations = 24;
  config.runs_per_target = 2;
  config.rng_seed = 17;
  return config;
}

void bm_sweep_session(benchmark::State& state) {
  // Shared-cache path: the handle builds the exact planes once per session
  // and every job attaches to them.
  const core::approximation_config config = sweep_session_config();
  const circuit::netlist seed = mult::unsigned_multiplier(8);
  core::sweep_plan plan;
  plan.targets = {1e-4, 1e-2};
  plan.runs_per_target = config.runs_per_target;
  for (auto _ : state) {
    core::search_session session(core::make_component(config), seed, plan);
    session.run();
    benchmark::DoNotOptimize(session.front().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4);
}
BENCHMARK(bm_sweep_session);

void bm_sweep_session_mt(benchmark::State& state) {
  // The session sweep with each job's lambda evaluation spread over N
  // worker threads (approximation_config::threads) — the orchestration
  // layer's multi-core trajectory, complementing the per-offspring view of
  // bm_evolver_generation_mt.
  core::approximation_config config = sweep_session_config();
  config.threads = static_cast<std::size_t>(state.range(0));
  const circuit::netlist seed = mult::unsigned_multiplier(8);
  core::sweep_plan plan;
  plan.targets = {1e-4, 1e-2};
  plan.runs_per_target = config.runs_per_target;
  for (auto _ : state) {
    core::search_session session(core::make_component(config), seed, plan);
    session.run();
    benchmark::DoNotOptimize(session.front().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4);
}
BENCHMARK(bm_sweep_session_mt)->Apply(mt_args);

void bm_sweep_session_cold_cache(benchmark::State& state) {
  // The pre-session behaviour: every job rebuilds the evaluator tables
  // from scratch (a fresh handle per job) — the baseline bm_sweep_session
  // is measured against.
  const core::approximation_config config = sweep_session_config();
  const circuit::netlist seed = mult::unsigned_multiplier(8);
  core::sweep_plan plan;
  plan.targets = {1e-4, 1e-2};
  plan.runs_per_target = config.runs_per_target;
  for (auto _ : state) {
    std::size_t designs = 0;
    for (const core::sweep_job& job : plan.jobs()) {
      const auto design = core::make_component(config).run_job(
          seed, job.target, job.run_index);
      designs += design.has_value();
    }
    benchmark::DoNotOptimize(designs);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4);
}
BENCHMARK(bm_sweep_session_cold_cache);

/// The finished 4-job session the checkpoint benches serialize/parse —
/// built once (the searches are not what is being measured).
const core::search_session& checkpoint_bench_session() {
  static const core::search_session session = [] {
    const core::approximation_config config = sweep_session_config();
    core::sweep_plan plan;
    plan.targets = {1e-4, 1e-2};
    plan.runs_per_target = config.runs_per_target;
    core::search_session s(core::make_component(config),
                           mult::unsigned_multiplier(8), plan);
    s.run();
    return s;
  }();
  return session;
}

void bm_checkpoint_save(benchmark::State& state) {
  // v2 serialization cost: netlist formatting + a CRC32 pass over every
  // section.  Pure in-memory (the durable-write syscalls are measured by
  // bm_checkpoint_save_durable).
  const core::search_session& session = checkpoint_bench_session();
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::ostringstream os;
    session.save(os);
    bytes = os.str().size();
    benchmark::DoNotOptimize(bytes);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(bm_checkpoint_save);

void bm_checkpoint_save_durable(benchmark::State& state) {
  // Full atomic save_file: temp write + flush + fsync + rename.  The
  // autosave cadence a session can afford is bounded by this number.
  const core::search_session& session = checkpoint_bench_session();
  const std::string path =
      (std::filesystem::temp_directory_path() / "axc-bench-ckpt.axc")
          .string();
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.save_file(path));
  }
  std::error_code ec;
  std::filesystem::remove(path, ec);
}
BENCHMARK(bm_checkpoint_save_durable);

void bm_checkpoint_resume(benchmark::State& state) {
  // v2 parse + salvage scan + CRC verification + session rebuild.
  const core::approximation_config config = sweep_session_config();
  std::ostringstream os;
  checkpoint_bench_session().save(os);
  const std::string text = os.str();
  for (auto _ : state) {
    std::istringstream is(text);
    auto resumed =
        core::search_session::resume(is, core::make_component(config));
    benchmark::DoNotOptimize(resumed->completed_jobs());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(bm_checkpoint_resume);

void bm_store_put(benchmark::State& state) {
  // Result-store publish cost for a checkpoint-sized payload: content
  // hash (FNV-1a) + CRC32 framing + durable object write (tmp + fsync +
  // rename + dir fsync) + index append with its own fsync.  Dominated by
  // the syscalls; this is what bounds the coordinator's publish phase.
  std::ostringstream os;
  checkpoint_bench_session().save(os);
  const std::string payload = os.str();
  const std::string root =
      (std::filesystem::temp_directory_path() / "axc-bench-store-put")
          .string();
  std::error_code ec;
  std::filesystem::remove_all(root, ec);
  auto store = core::result_store::open(root);
  std::uint64_t key = 0;
  for (auto _ : state) {
    // A fresh key each iteration: the idempotent same-content fast path
    // would otherwise skip the object write being measured.
    benchmark::DoNotOptimize(store->put(
        "session", core::result_store::format_key(++key), payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
  std::filesystem::remove_all(root, ec);
}
BENCHMARK(bm_store_put);

void bm_store_get(benchmark::State& state) {
  // Lookup + read + full CRC verification of header and payload — the
  // serving path a cached front answer pays before trusting stored bytes.
  std::ostringstream os;
  checkpoint_bench_session().save(os);
  const std::string payload = os.str();
  const std::string root =
      (std::filesystem::temp_directory_path() / "axc-bench-store-get")
          .string();
  std::error_code ec;
  std::filesystem::remove_all(root, ec);
  auto store = core::result_store::open(root);
  const std::string key = core::result_store::format_key(42);
  benchmark::DoNotOptimize(store->put("session", key, payload));
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->get("session", key)->size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
  std::filesystem::remove_all(root, ec);
}
BENCHMARK(bm_store_get);

/// The spec whose front the serving benches request — small but real, so
/// store_key() and the request text have production shape.
core::sweep_spec server_bench_spec() {
  core::sweep_spec spec;
  spec.component = "mult";
  spec.options.width = 8;
  spec.options.distribution = dist::pmf::half_normal(256, 64.0);
  spec.options.iterations = 100;
  spec.options.rng_seed = 5;
  spec.plan.targets = {1e-4, 1e-2};
  spec.plan.runs_per_target = 2;
  spec.options.runs_per_target = 2;
  spec.seed = mult::unsigned_multiplier(8);
  return spec;
}

void bm_server_hit(benchmark::State& state) {
  // One full served hit: connect to the daemon's socket, send the framed
  // request, receive the framed front — the latency an axc_client `get`
  // pays against a warm store.  The server runs in-process on a real
  // Unix-domain socket with a 32-point front pre-published under the
  // spec's key.
  const std::string root =
      (std::filesystem::temp_directory_path() / "axc-bench-server").string();
  std::error_code ec;
  std::filesystem::remove_all(root, ec);
  const core::sweep_spec spec = server_bench_spec();
  std::vector<core::pareto_point> points;
  for (std::size_t i = 0; i < 32; ++i) {
    points.push_back({1e-4 * static_cast<double>(i + 1),
                      900.0 - 25.0 * static_cast<double>(i), i});
  }
  {
    auto store = core::result_store::open(root + "/store");
    benchmark::DoNotOptimize(
        store->put("front", core::result_store::format_key(spec.store_key()),
                   core::serialize_front(points)));
  }
  core::server_config config;
  config.store_dir = root + "/store";
  config.work_dir = root + "/work";
  config.socket_path = root + "/sock";
  core::result_server server(config);
  if (!server.start()) {
    state.SkipWithError("cannot start result_server");
    return;
  }
  std::thread accept_thread([&server] { server.serve(); });
  core::serve_request request;
  request.spec = spec;
  const std::string request_text = core::encode_request(request);
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto stream = support::net::unix_stream::connect(config.socket_path);
    if (!stream || !stream->send(request_text)) {
      state.SkipWithError("request failed");
      break;
    }
    const auto reply = stream->receive(1u << 20);
    if (!reply) {
      state.SkipWithError("no reply");
      break;
    }
    bytes = reply->size();
    benchmark::DoNotOptimize(bytes);
  }
  server.request_stop();
  accept_thread.join();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
  std::filesystem::remove_all(root, ec);
}
BENCHMARK(bm_server_hit);

void bm_server_hit_mc(benchmark::State& state) {
  // bm_server_hit under concurrency: N client threads issue one framed
  // request each per iteration against the same daemon (its accept loop
  // serves connections sequentially, so this measures queueing + serve
  // latency under contention, per request).  Measurement only — not part
  // of the regression gate.
  const std::string root =
      (std::filesystem::temp_directory_path() / "axc-bench-server-mc")
          .string();
  std::error_code ec;
  std::filesystem::remove_all(root, ec);
  const core::sweep_spec spec = server_bench_spec();
  std::vector<core::pareto_point> points;
  for (std::size_t i = 0; i < 32; ++i) {
    points.push_back({1e-4 * static_cast<double>(i + 1),
                      900.0 - 25.0 * static_cast<double>(i), i});
  }
  {
    auto store = core::result_store::open(root + "/store");
    benchmark::DoNotOptimize(
        store->put("front", core::result_store::format_key(spec.store_key()),
                   core::serialize_front(points)));
  }
  core::server_config config;
  config.store_dir = root + "/store";
  config.work_dir = root + "/work";
  config.socket_path = root + "/sock";
  core::result_server server(config);
  if (!server.start()) {
    state.SkipWithError("cannot start result_server");
    return;
  }
  std::thread accept_thread([&server] { server.serve(); });
  core::serve_request request;
  request.spec = spec;
  const std::string request_text = core::encode_request(request);
  const std::size_t conns = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    std::atomic<std::size_t> ok{0};
    std::vector<std::thread> clients;
    clients.reserve(conns);
    for (std::size_t c = 0; c < conns; ++c) {
      clients.emplace_back([&config, &request_text, &ok] {
        auto stream = support::net::unix_stream::connect(config.socket_path);
        if (!stream || !stream->send(request_text)) return;
        const auto reply = stream->receive(1u << 20);
        if (reply) ok.fetch_add(1, std::memory_order_relaxed);
      });
    }
    for (std::thread& t : clients) t.join();
    if (ok.load() != conns) {
      state.SkipWithError("request failed");
      break;
    }
  }
  server.request_stop();
  accept_thread.join();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(conns));
  std::filesystem::remove_all(root, ec);
}
BENCHMARK(bm_server_hit_mc)->Apply(mt_args);

void bm_server_encode(benchmark::State& state) {
  // Pure protocol cost: request text serialization + CRC frame encode —
  // the CPU floor under bm_server_hit once the syscalls are taken out.
  core::serve_request request;
  request.spec = server_bench_spec();
  request.budget = 1e-3;
  std::size_t bytes = 0;
  for (auto _ : state) {
    const std::string frame =
        support::net::encode_frame(core::encode_request(request));
    bytes = frame.size();
    benchmark::DoNotOptimize(frame.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(bm_server_encode);

void bm_compiled_table_fill(benchmark::State& state) {
  // Exhaustive characterization through the wide-lane batch path (what the
  // compiled_table constructor runs when the deployment pipeline compiles a
  // front member): cone-restricted sim_program<8>, 512 assignments/pass.
  const circuit::netlist nl = mult::unsigned_multiplier(8);
  const metrics::mult_spec spec{8, false};
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::result_table_wide(nl, spec));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          65536);
}
BENCHMARK(bm_compiled_table_fill);

void bm_compiled_table_fill_scalar(benchmark::State& state) {
  // The pre-PR-4 product_lut path: per-entry scalar simulation
  // (simulate_block, 64 assignments/pass) — the baseline
  // bm_compiled_table_fill is measured against.
  const circuit::netlist nl = mult::unsigned_multiplier(8);
  const metrics::mult_spec spec{8, false};
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::result_table(nl, spec));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          65536);
}
BENCHMARK(bm_compiled_table_fill_scalar);

void bm_lut_multiply(benchmark::State& state) {
  const mult::product_lut lut =
      mult::product_lut::exact(metrics::mult_spec{8, true});
  rng gen(2);
  std::int64_t acc = 0;
  for (auto _ : state) {
    acc += lut.multiply(static_cast<std::int32_t>(gen.below(256)) - 128,
                        static_cast<std::int32_t>(gen.below(256)) - 128);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(bm_lut_multiply);

void bm_quantized_mlp_inference(benchmark::State& state) {
  const auto ds = data::make_mnist_like(64, 5);
  const auto x = data::to_tensors(ds);
  nn::network mlp = nn::make_mlp(3, 28 * 28, 64);
  nn::quantized_network qnet(mlp, std::span<const nn::tensor>(x).subspan(0, 8));
  const auto lut = mult::product_lut::exact(metrics::mult_spec{8, true});
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(qnet.predict_class(x[i++ % x.size()], lut));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_quantized_mlp_inference);

void bm_gaussian_filter_approx(benchmark::State& state) {
  const imgproc::image img = imgproc::make_test_scene(64, 64, 1);
  const mult::product_lut lut(mult::truncated_multiplier(8, 4),
                              metrics::mult_spec{8, false});
  for (auto _ : state) {
    benchmark::DoNotOptimize(imgproc::gaussian_filter_approx(img, lut));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          64 * 64);
}
BENCHMARK(bm_gaussian_filter_approx);

void bm_activity_profile(benchmark::State& state) {
  const circuit::netlist nl = mult::signed_multiplier(8);
  rng gen(3);
  std::vector<std::uint64_t> stream(2048);
  for (auto& v : stream) v = gen.below(1u << 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit::profile_activity(nl, stream));
  }
}
BENCHMARK(bm_activity_profile);

}  // namespace

BENCHMARK_MAIN();
