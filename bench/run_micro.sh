#!/usr/bin/env sh
# Runs the micro-benchmark suite and *appends* a tagged run to
# BENCH_micro.json at the repo root, so the file holds the actual perf
# trajectory the ROADMAP tracks (one entry per PR / build profile) instead
# of only the latest numbers.  Each appended run records the git SHA, a
# UTC timestamp, an optional profile tag, and the google-benchmark context
# + results.
#
# Usage:  bench/run_micro.sh [build-dir] [--tag name] [benchmark args...]
#
# Examples:
#   bench/run_micro.sh                                  # default build dir
#   bench/run_micro.sh build-native --tag native        # -march=native pair
#   bench/run_micro.sh --benchmark_filter=wmed          # forwarded args
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir="$repo_root/build"
# A first argument that is not a flag names the build directory.
if [ $# -gt 0 ]; then
  case "$1" in
    -*) ;;
    *) build_dir=$1; shift ;;
  esac
fi

tag=""
if [ $# -ge 2 ] && [ "$1" = "--tag" ]; then
  tag=$2
  shift 2
fi

bin="$build_dir/micro_throughput"
if [ ! -x "$bin" ]; then
  echo "error: $bin not built (configure with -DAXC_BUILD_MICROBENCH=ON," >&2
  echo "       which requires google-benchmark)" >&2
  exit 1
fi

sha=$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo unknown)
out=$(mktemp "${TMPDIR:-/tmp}/axc_micro.XXXXXX.json")
trap 'rm -f "$out"' EXIT INT TERM

"$bin" \
  --benchmark_out="$out" \
  --benchmark_out_format=json \
  "$@"

python3 - "$repo_root/BENCH_micro.json" "$out" "$sha" "$tag" <<'PY'
import json
import sys

trajectory_path, run_path, sha, tag = sys.argv[1:5]

with open(run_path) as f:
    run = json.load(f)

try:
    with open(trajectory_path) as f:
        trajectory = json.load(f)
except (FileNotFoundError, json.JSONDecodeError):
    trajectory = {"runs": []}
# Legacy layout (a single google-benchmark report at top level): keep it as
# the first run of the trajectory.
if "runs" not in trajectory:
    trajectory = {"runs": [trajectory]}

entry = {
    "sha": sha,
    "date": run.get("context", {}).get("date", ""),
    "context": run.get("context", {}),
    "benchmarks": run.get("benchmarks", []),
}
if tag:
    entry["tag"] = tag
trajectory["runs"].append(entry)

with open(trajectory_path, "w") as f:
    json.dump(trajectory, f, indent=2)
    f.write("\n")

print(f"appended run sha={sha} tag={tag or '-'} "
      f"({len(entry['benchmarks'])} benchmarks, "
      f"{len(trajectory['runs'])} runs total) to {trajectory_path}")
PY
