#!/usr/bin/env sh
# Runs the micro-benchmark suite and records machine-readable results in
# BENCH_micro.json at the repo root — the perf trajectory the ROADMAP
# tracks.  Extra arguments are forwarded (e.g. --benchmark_filter=wmed).
#
# Usage:  bench/run_micro.sh [build-dir] [benchmark args...]
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir="$repo_root/build"
# A first argument that is not a flag names the build directory.
if [ $# -gt 0 ]; then
  case "$1" in
    -*) ;;
    *) build_dir=$1; shift ;;
  esac
fi

bin="$build_dir/micro_throughput"
if [ ! -x "$bin" ]; then
  echo "error: $bin not built (configure with -DAXC_BUILD_MICROBENCH=ON," >&2
  echo "       which requires google-benchmark)" >&2
  exit 1
fi

exec "$bin" \
  --benchmark_out="$repo_root/BENCH_micro.json" \
  --benchmark_out_format=json \
  "$@"
