#!/usr/bin/env sh
# Runs the micro-benchmark suite and *appends* a tagged run to
# BENCH_micro.json at the repo root, so the file holds the actual perf
# trajectory the ROADMAP tracks (one entry per PR / build profile) instead
# of only the latest numbers.  Each appended run records the git SHA, a
# UTC timestamp, an optional profile tag, and the google-benchmark context
# + results.
#
# With --check the script instead *gates*: the fresh run is compared
# against a previous tagged run in BENCH_micro.json (the most recent tag,
# or the one named by --against) and the script fails when any watched
# benchmark regressed by more than 25% — so perf PRs cannot silently
# regress the levers the ROADMAP tracks.  Check mode never appends.
#
# Usage:  bench/run_micro.sh [build-dir] [--tag name] [--threads N] [args...]
#         bench/run_micro.sh [build-dir] --check [--against tag] [args...]
#         bench/run_micro.sh --list-runs
#
# --list-runs prints one line per recorded run (tag, sha, date, benchmark
# count) without running anything — the quick answer to "which baselines
# can --against name?".
#
# --threads N sets AXC_BENCH_THREADS for the run: the *_mt benches
# (bm_evolver_generation_mt, bm_sweep_session_mt, bm_server_hit_mc) then
# measure at N workers/connections instead of their default sweep — the
# knob for recording a many-core trajectory point on a bigger box.
#
# Examples:
#   bench/run_micro.sh                                  # default build dir
#   bench/run_micro.sh build-native --tag native        # -march=native pair
#   bench/run_micro.sh --benchmark_filter=wmed          # forwarded args
#   bench/run_micro.sh build --tag pr9-mt --threads 8   # 8-worker MT point
#   bench/run_micro.sh build --check --against pr4      # regression gate
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir="$repo_root/build"
# A first argument that is not a flag names the build directory.
if [ $# -gt 0 ]; then
  case "$1" in
    -*) ;;
    *) build_dir=$1; shift ;;
  esac
fi

tag=""
check=0
against=""
list_runs=0
while [ $# -gt 0 ]; do
  case "$1" in
    --tag)
      tag=$2
      shift 2
      ;;
    --check)
      check=1
      shift
      ;;
    --list-runs)
      list_runs=1
      shift
      ;;
    --against)
      against=$2
      shift 2
      ;;
    --threads)
      AXC_BENCH_THREADS=$2
      export AXC_BENCH_THREADS
      shift 2
      ;;
    *)
      break
      ;;
  esac
done

if [ "$check" = 1 ] && [ -n "$tag" ]; then
  echo "error: --tag and --check are mutually exclusive (check mode never" >&2
  echo "       appends to BENCH_micro.json)" >&2
  exit 2
fi
if [ "$check" = 0 ] && [ -n "$against" ]; then
  echo "error: --against only applies to --check (without it the script" >&2
  echo "       would record a run instead of gating)" >&2
  exit 2
fi

# --list-runs needs only the trajectory file, not a built benchmark binary.
if [ "$list_runs" = 1 ]; then
  python3 - "$repo_root/BENCH_micro.json" <<'PY'
import json
import os
import sys

path = sys.argv[1]
if not os.path.exists(path):
    sys.exit(f"list-runs: {path} not found (record one first: "
             "bench/run_micro.sh --tag <name>)")
if os.path.getsize(path) == 0:
    sys.exit(f"list-runs: {path} is empty — remove it and re-record")
try:
    with open(path) as f:
        trajectory = json.load(f)
except json.JSONDecodeError as err:
    sys.exit(f"list-runs: {path} is not valid JSON ({err}) — "
             "fix or remove it")
if not isinstance(trajectory, dict):
    sys.exit(f"list-runs: {path} is not a JSON object — unrecognized layout")
runs = trajectory.get("runs", [trajectory] if "benchmarks" in trajectory
                      else [])
if not runs:
    sys.exit(f"list-runs: no runs recorded in {path}")
for i, run in enumerate(runs):
    tag = run.get("tag") or "-"
    sha = run.get("sha", "unknown")
    date = run.get("date") or run.get("context", {}).get("date", "")
    count = len(run.get("benchmarks", []))
    print(f"  {i:3d}  tag={tag:16s} sha={sha:12s} "
          f"{count:3d} benchmarks  {date}")
PY
  exit $?
fi

bin="$build_dir/micro_throughput"
if [ ! -x "$bin" ]; then
  echo "error: $bin not built (configure with -DAXC_BUILD_MICROBENCH=ON," >&2
  echo "       which requires google-benchmark)" >&2
  exit 1
fi

sha=$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo unknown)
out=$(mktemp "${TMPDIR:-/tmp}/axc_micro.XXXXXX.json")
trap 'rm -f "$out"' EXIT INT TERM

"$bin" \
  --benchmark_out="$out" \
  --benchmark_out_format=json \
  "$@"

if [ "$check" = 1 ]; then
  python3 - "$repo_root/BENCH_micro.json" "$out" "$against" <<'PY'
import json
import os
import sys

trajectory_path, run_path, against = sys.argv[1:4]

# The perf levers the ROADMAP tracks; >25% slower than the baseline fails.
# Names are compared with any "/manual_time" suffix stripped, so baselines
# recorded before a bench switched to UseManualTime stay comparable.
WATCHED = (
    "bm_wmed_evaluate",
    "bm_wmed_evaluate_batch",
    "bm_evolver_generation",
    "bm_evolver_generation_adder",
    "bm_evolver_generation_mt/2",
    "bm_sweep_session_mt/2",
    "bm_checkpoint_save",
    "bm_checkpoint_resume",
    "bm_store_put",
    "bm_store_get",
    "bm_server_hit",
    "bm_server_hit_mc/2",
)
THRESHOLD = 1.25


def normalize(name):
    suffix = "/manual_time"
    return name[:-len(suffix)] if name.endswith(suffix) else name


with open(run_path) as f:
    fresh = {normalize(b["name"]): b
             for b in json.load(f).get("benchmarks", [])}

# One precise line per failure shape: the gate refusing to run must say
# exactly why, not stack-trace.
if not os.path.exists(trajectory_path):
    sys.exit(f"check: {trajectory_path} not found — record a baseline "
             "first (bench/run_micro.sh --tag <name>)")
if os.path.getsize(trajectory_path) == 0:
    sys.exit(f"check: {trajectory_path} is empty — remove it and "
             "re-record a baseline")
try:
    with open(trajectory_path) as f:
        trajectory = json.load(f)
except json.JSONDecodeError as err:
    sys.exit(f"check: {trajectory_path} is not valid JSON ({err}) — "
             "fix or remove it and re-record a baseline")
if not isinstance(trajectory, dict) or not isinstance(
        trajectory.get("runs", []), list):
    sys.exit(f"check: {trajectory_path} has no 'runs' list — "
             "unrecognized layout")
runs = trajectory.get("runs", [])

baseline = None
for run in runs:
    run_tag = run.get("tag")
    if run_tag and (not against or run_tag == against):
        baseline = run  # keep the most recent match
if baseline is None:
    wanted = f"tag {against!r}" if against else "any tagged run"
    sys.exit(f"check: no baseline ({wanted}) in {trajectory_path}")

base = {normalize(b["name"]): b for b in baseline.get("benchmarks", [])}
print(f"check: baseline tag={baseline.get('tag')} sha={baseline.get('sha')}")

failed = []
compared = 0
for name in WATCHED:
    if name not in fresh:
        continue  # filtered out of this run
    if name not in base:
        print(f"  {name:35s} (not in baseline, skipped)")
        continue
    compared += 1
    new = fresh[name]["real_time"]
    old = base[name]["real_time"]
    ratio = new / old if old > 0 else float("inf")
    verdict = "FAIL" if ratio > THRESHOLD else "ok"
    print(f"  {name:35s} {old:12.1f} -> {new:12.1f} ns   "
          f"x{ratio:.3f}  {verdict}")
    if ratio > THRESHOLD:
        failed.append(name)

if compared == 0:
    sys.exit("check: no watched benchmark present in both runs "
             "(check the --benchmark_filter)")
if failed:
    sys.exit(f"check: regression >25% on: {', '.join(failed)}")
print("check: no watched benchmark regressed >25%")
PY
  exit 0
fi

python3 - "$repo_root/BENCH_micro.json" "$out" "$sha" "$tag" <<'PY'
import json
import os
import sys

trajectory_path, run_path, sha, tag = sys.argv[1:5]

with open(run_path) as f:
    run = json.load(f)

# A missing trajectory starts one; a *corrupt* trajectory is an error —
# silently resetting it would throw away the recorded perf history.
if os.path.exists(trajectory_path) and os.path.getsize(trajectory_path) > 0:
    try:
        with open(trajectory_path) as f:
            trajectory = json.load(f)
    except json.JSONDecodeError as err:
        sys.exit(f"append: {trajectory_path} is not valid JSON ({err}) — "
                 "refusing to overwrite the perf trajectory; fix or move "
                 "it aside first")
    if not isinstance(trajectory, dict):
        sys.exit(f"append: {trajectory_path} is not a JSON object — "
                 "refusing to overwrite the perf trajectory")
else:
    trajectory = {"runs": []}
# Legacy layout (a single google-benchmark report at top level): keep it as
# the first run of the trajectory.
if "runs" not in trajectory:
    trajectory = {"runs": [trajectory]}

entry = {
    "sha": sha,
    "date": run.get("context", {}).get("date", ""),
    "context": run.get("context", {}),
    "benchmarks": run.get("benchmarks", []),
}
if tag:
    entry["tag"] = tag
trajectory["runs"].append(entry)

with open(trajectory_path, "w") as f:
    json.dump(trajectory, f, indent=2)
    f.write("\n")

print(f"appended run sha={sha} tag={tag or '-'} "
      f"({len(entry['benchmarks'])} benchmarks, "
      f"{len(trajectory['runs'])} runs total) to {trajectory_path}")
PY
