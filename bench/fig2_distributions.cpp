// Fig. 2 — the probability mass functions D1 (normal, mean 127) and
// D2 (half-normal) used by case study 1, plus the uniform reference Du.
// Prints each PMF as a 16-bin summary series and its moments.
#include <cstdio>

#include "bench_util.h"
#include "dist/pmf.h"

namespace {

void print_pmf(const char* name, const axc::dist::pmf& p) {
  std::printf("\n%s: mean=%.2f stddev=%.2f entropy=%.2f bits\n", name,
              p.mean(), p.stddev(), p.entropy_bits());
  std::printf("  x-bin      mass    \n");
  for (std::size_t bin = 0; bin < 16; ++bin) {
    double mass = 0.0;
    for (std::size_t i = bin * 16; i < (bin + 1) * 16; ++i) mass += p[i];
    std::printf("  [%3zu-%3zu] %7.3f%% ", bin * 16, bin * 16 + 15,
                100.0 * mass);
    const int bar = static_cast<int>(mass * 200.0);
    for (int k = 0; k < bar && k < 48; ++k) std::printf("#");
    std::printf("\n");
  }
}

}  // namespace

int main() {
  axc::bench::banner("Fig. 2", "operand distributions D1, D2, Du");

  const axc::dist::pmf d1 = axc::dist::pmf::normal(256, 127.0, 32.0);
  const axc::dist::pmf d2 = axc::dist::pmf::half_normal(256, 64.0);
  const axc::dist::pmf du = axc::dist::pmf::uniform(256);

  print_pmf("D1 (normal, mu=127, sigma=32)", d1);
  print_pmf("D2 (half-normal, sigma=64)", d2);
  print_pmf("Du (uniform)", du);

  std::printf("\nPaper reference: D1 peaks at x=127, D2 decays from x=0, "
              "Du is flat at 1/256 = 0.391%%.\n");
  return 0;
}
