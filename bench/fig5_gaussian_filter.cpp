// Fig. 5 — average PSNR of an approximate 3x3 Gaussian image filter vs the
// power of the multipliers it employs.  Multipliers evolved for D2 (mass on
// small operands, like the filter's coefficients 1/2/4) should give the
// best PSNR-per-power trade-off; D1- and Du-evolved multipliers trail.
// PSNR is the mean over 25 noisy synthetic images, as in the paper.
//
// Thin driver over core::app_eval: each distribution family is one search
// session; the session candidates are re-ranked by the shipped
// Gaussian-PSNR and multiplier-power app_metrics (power under the filter's
// coefficient statistics).
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/app_eval.h"
#include "mult/multipliers.h"

int main() {
  using namespace axc;
  bench::banner("Fig. 5", "Gaussian-filter PSNR vs multiplier power");

  const metrics::mult_spec spec{8, false};
  const dist::pmf dists[3] = {dist::pmf::normal(256, 127.0, 32.0),
                              dist::pmf::half_normal(256, 64.0),
                              dist::pmf::uniform(256)};
  const char* names[3] = {"proposed-D1", "proposed-D2", "proposed-Du"};

  const std::vector<double> targets{0.0001, 0.0003, 0.001, 0.003, 0.01};
  const std::size_t iterations = bench::scaled(3000);
  const std::size_t image_count = bench::scaled(25);
  const circuit::netlist seed = mult::unsigned_multiplier(8);

  // One session per family; every completed design becomes a candidate.
  std::vector<core::app_candidate> candidates;
  for (int di = 0; di < 3; ++di) {
    core::approximation_config cfg;
    cfg.spec = spec;
    cfg.distribution = dists[di];
    cfg.iterations = iterations;
    cfg.extra_columns = 64;
    cfg.rng_seed = 500 + static_cast<std::uint64_t>(di);
    core::sweep_plan plan;
    plan.targets = targets;
    core::search_session session(core::make_component(cfg), seed, plan);
    session.run();
    core::append_candidates(
        candidates,
        core::session_candidates(session, /*front_only=*/false, names[di]));
  }

  // Power under the filter's operand statistics (coefficients 1/2/4).
  std::vector<double> coefficient_mass(256, 0.0);
  coefficient_mass[1] = 4;
  coefficient_mass[2] = 8;
  coefficient_mass[4] = 4;

  std::vector<std::unique_ptr<core::app_metric>> app_metrics;
  core::gaussian_psnr_options psnr;
  psnr.image_count = image_count;
  psnr.cache = core::make_psnr_cache();  // one filter sweep, mean+min columns
  app_metrics.push_back(core::make_gaussian_psnr_metric(psnr));
  core::power_metric_options power;
  power.distribution = dist::pmf::from_weights(coefficient_mass);
  power.workload_samples = 2048;
  app_metrics.push_back(core::make_power_metric(std::move(power)));
  core::gaussian_psnr_options worst = psnr;
  worst.report_min = true;
  worst.name = "min_psnr_db";
  app_metrics.push_back(core::make_gaussian_psnr_metric(worst));

  core::rerank_config rcfg;
  rcfg.spec = spec;
  const core::rerank_result result =
      core::rerank_front(std::move(candidates), app_metrics, rcfg);

  std::printf("%-14s %10s %12s %12s %10s\n", "series", "target%", "power_uW",
              "mean_PSNR", "min_PSNR");
  for (const core::reranked_design& d : result.designs) {
    std::printf("%-14s %10.4f %12.2f %12.2f %10.2f\n",
                d.candidate.family.c_str(), 100.0 * d.candidate.target,
                d.scores[1], d.scores[0], d.scores[2]);
  }

  std::printf("\napplication-level front (PSNR vs power):\n");
  for (const core::pareto_point& p : result.front) {
    const core::reranked_design& d = result.at(p);
    std::printf("  %-14s @%.4f%%: %6.2f dB at %6.2f uW\n",
                d.candidate.family.c_str(), 100.0 * d.candidate.target,
                d.scores[0], d.scores[1]);
  }

  std::printf(
      "\nPaper reference (shape): proposed(D2) reaches the highest PSNR at\n"
      "a given power because the Gaussian kernel's coefficients are small\n"
      "values, exactly where D2 concentrates its weight; Du trails, D1 is\n"
      "worst at low power.\n");
  return 0;
}
