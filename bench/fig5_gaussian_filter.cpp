// Fig. 5 — average PSNR of an approximate 3x3 Gaussian image filter vs the
// power of the multipliers it employs.  Multipliers evolved for D2 (mass on
// small operands, like the filter's coefficients 1/2/4) should give the
// best PSNR-per-power trade-off; D1- and Du-evolved multipliers trail.
// PSNR is the mean over 25 noisy synthetic images, as in the paper.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/design_flow.h"
#include "core/wmed_approximator.h"
#include "imgproc/gaussian_filter.h"
#include "mult/multipliers.h"

int main() {
  using namespace axc;
  bench::banner("Fig. 5", "Gaussian-filter PSNR vs multiplier power");

  const metrics::mult_spec spec{8, false};
  const dist::pmf dists[3] = {dist::pmf::normal(256, 127.0, 32.0),
                              dist::pmf::half_normal(256, 64.0),
                              dist::pmf::uniform(256)};
  const char* names[3] = {"proposed-D1", "proposed-D2", "proposed-Du"};

  const std::vector<double> targets{0.0001, 0.0003, 0.001, 0.003, 0.01};
  const std::size_t iterations = bench::scaled(3000);
  const std::size_t image_count = bench::scaled(25);
  const circuit::netlist seed = mult::unsigned_multiplier(8);

  std::printf("%-14s %10s %12s %12s %10s\n", "series", "target%", "power_uW",
              "mean_PSNR", "min_PSNR");

  for (int di = 0; di < 3; ++di) {
    core::approximation_config cfg;
    cfg.spec = spec;
    cfg.distribution = dists[di];
    cfg.iterations = iterations;
    cfg.extra_columns = 64;
    cfg.rng_seed = 500 + static_cast<std::uint64_t>(di);
    const core::wmed_approximator approximator(cfg);

    for (const double target : targets) {
      const auto design = approximator.approximate(seed, target);
      const mult::product_lut lut(design.netlist, spec);
      // Power under the filter's operand statistics (coefficients 1/2/4).
      std::vector<double> w(256, 0.0);
      w[1] = 4;
      w[2] = 8;
      w[4] = 4;
      const auto power = core::characterize_multiplier(
          design.netlist, spec, dist::pmf::from_weights(w),
          tech::cell_library::nangate45_like(), 2048);
      const auto quality =
          imgproc::evaluate_filter_quality(lut, image_count, 64);
      std::printf("%-14s %10.4f %12.2f %12.2f %10.2f\n", names[di],
                  100.0 * target, power.power_uw, quality.mean_psnr_db,
                  quality.min_psnr_db);
    }
  }

  std::printf(
      "\nPaper reference (shape): proposed(D2) reaches the highest PSNR at\n"
      "a given power because the Gaussian kernel's coefficients are small\n"
      "values, exactly where D2 concentrates its weight; Du trails, D1 is\n"
      "worst at low power.\n");
  return 0;
}
