// Fig. 6 — top: histograms of trained-network weights (SVHN-like CNN and
// MNIST-like MLP) that define the WMED weights of case study 2;
// bottom: box plots of the relative power-delay product of multipliers
// evolved for each WMED level (paper: 25 independent runs; default here is
// scaled down, see AXC_BENCH_SCALE).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/design_flow.h"
#include "core/wmed_approximator.h"
#include "mult/multipliers.h"
#include "nn/quantize.h"

namespace {

using namespace axc;

void print_weight_histogram(const char* name,
                            const std::vector<std::int8_t>& weights) {
  std::printf("\nWeight distribution: %s (%zu weights)\n", name,
              weights.size());
  // 16 bins over the signed range -128..127.
  std::vector<std::size_t> bins(16, 0);
  for (const std::int8_t w : weights) {
    bins[static_cast<std::size_t>((static_cast<int>(w) + 128) / 16)]++;
  }
  for (std::size_t b = 0; b < 16; ++b) {
    const double frac =
        static_cast<double>(bins[b]) / static_cast<double>(weights.size());
    std::printf("  [%4d..%4d] %7.3f%% ", static_cast<int>(b) * 16 - 128,
                static_cast<int>(b) * 16 - 113, 100.0 * frac);
    for (int k = 0; k < static_cast<int>(frac * 120) && k < 50; ++k) {
      std::printf("#");
    }
    std::printf("\n");
  }
  std::size_t near_zero = 0;
  for (const std::int8_t w : weights) {
    if (w >= -16 && w <= 16) ++near_zero;
  }
  std::printf("  fraction within [-16, 16]: %.1f%%\n",
              100.0 * static_cast<double>(near_zero) /
                  static_cast<double>(weights.size()));
}

struct box {
  double min, q1, median, q3, max;
};

box box_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const auto q = [&](double p) {
    const double idx = p * static_cast<double>(v.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(idx);
    const double t = idx - static_cast<double>(lo);
    return lo + 1 < v.size() ? v[lo] * (1 - t) + v[lo + 1] * t : v[lo];
  };
  return {v.front(), q(0.25), q(0.5), q(0.75), v.back()};
}

void pdp_boxplots(const char* name, const dist::pmf& weight_dist,
                  unsigned acc_width) {
  const metrics::mult_spec spec{8, true};
  const circuit::netlist seed = mult::signed_multiplier(8);
  const auto& lib = tech::cell_library::nangate45_like();

  const double exact_pdp =
      core::characterize_mac(seed, spec, weight_dist, acc_width, lib).pdp_fj;

  const std::vector<double> levels{0.0005, 0.002, 0.01, 0.05};
  const std::size_t runs = std::max<std::size_t>(3, bench::scaled(5));
  const std::size_t iterations = bench::scaled(800);

  std::printf("\nRelative MAC PDP, %s (exact MAC PDP = %.1f fJ, %zu runs "
              "per level)\n",
              name, exact_pdp, runs);
  std::printf("  %-8s %8s %8s %8s %8s %8s\n", "WMED%", "min", "q1", "median",
              "q3", "max");

  core::approximation_config cfg;
  cfg.spec = spec;
  cfg.distribution = weight_dist;
  cfg.iterations = iterations;
  cfg.extra_columns = 64;
  cfg.rng_seed = 600;
  const core::wmed_approximator approximator(cfg);

  for (const double level : levels) {
    std::vector<double> rel;
    for (std::size_t run = 0; run < runs; ++run) {
      const auto design = approximator.approximate(seed, level, run);
      const double pdp =
          core::characterize_mac(design.netlist, spec, weight_dist,
                                 acc_width, lib)
              .pdp_fj;
      rel.push_back(100.0 * pdp / exact_pdp);
    }
    const box b = box_of(rel);
    std::printf("  %-8.3f %8.1f %8.1f %8.1f %8.1f %8.1f\n", 100.0 * level,
                b.min, b.q1, b.median, b.q3, b.max);
  }
}

}  // namespace

int main() {
  bench::banner("Fig. 6", "weight histograms + relative PDP box plots");

  // --- top: weight distributions of the two trained networks ---
  const auto svhn = bench::make_svhn_task();
  nn::network lenet = bench::svhn_lenet(svhn);
  nn::quantized_network q_lenet(
      lenet, std::span<const nn::tensor>(svhn.train_x).subspan(0, 64));
  const auto lenet_weights = q_lenet.quantized_weights();
  print_weight_histogram("LeNet-5 on SVHN-like", lenet_weights);

  const auto mnist = bench::make_mnist_task();
  nn::network mlp = bench::mnist_mlp(mnist);
  nn::quantized_network q_mlp(
      mlp, std::span<const nn::tensor>(mnist.train_x).subspan(0, 64));
  const auto mlp_weights = q_mlp.quantized_weights();
  print_weight_histogram("MLP on MNIST-like", mlp_weights);

  // --- bottom: relative PDP of evolved multipliers inside MAC units ---
  // Accumulator widths follow Sec. V-B: product width + log2(d) guard bits
  // (d = 784 inputs for the MLP's first layer, d = 400 for the CNN's
  // largest kernel).
  pdp_boxplots("LeNet-5 / SVHN-like weights",
               dist::pmf::from_int8_samples(lenet_weights), 25);
  pdp_boxplots("MLP / MNIST-like weights",
               dist::pmf::from_int8_samples(mlp_weights), 26);

  std::printf(
      "\nPaper reference (shape): SVHN weights ~ zero-mean normal; MNIST\n"
      "weights concentrate ~92%% in a narrow band around zero.  Median\n"
      "relative PDP drops with the allowed WMED (e.g. ~50%% at 0.2%% for\n"
      "LeNet-5/SVHN in the paper).\n");
  return 0;
}
