// Shared infrastructure for the reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper and
// prints the corresponding rows/series.  Budgets are scaled by the
// AXC_BENCH_SCALE environment variable (default 1.0 keeps the whole suite
// in the ~10 minute range; the paper's full budgets correspond to >> 10).
// Trained float networks are cached under ./axc_cache/ so the NN benches
// share one training run.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "data/digits.h"
#include "nn/models.h"
#include "nn/trainer.h"

namespace axc::bench {

inline double scale() {
  if (const char* s = std::getenv("AXC_BENCH_SCALE")) {
    const double v = std::atof(s);
    if (v > 0.0) return v;
  }
  return 1.0;
}

inline std::size_t scaled(std::size_t base) {
  const auto v = static_cast<std::size_t>(static_cast<double>(base) * scale());
  return v > 0 ? v : 1;
}

/// Banner shared by all benches.
inline void banner(const char* artifact, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", artifact, description);
  std::printf("(scale=%.2g; set AXC_BENCH_SCALE to trade time for fidelity)\n",
              scale());
  std::printf("==============================================================\n");
}

// ---------------------------------------------------------------------------
// Dataset + model caching
// ---------------------------------------------------------------------------

struct classification_task {
  data::digit_dataset train_set;
  data::digit_dataset test_set;
  std::vector<nn::tensor> train_x;
  std::vector<nn::tensor> test_x;
};

inline classification_task make_mnist_task() {
  classification_task t;
  t.train_set = data::make_mnist_like(scaled(2400), 1001);
  t.test_set = data::make_mnist_like(scaled(600), 1002);
  t.train_x = data::to_tensors(t.train_set);
  t.test_x = data::to_tensors(t.test_set);
  return t;
}

inline classification_task make_svhn_task() {
  classification_task t;
  t.train_set = data::make_svhn_like(scaled(2000), 2001);
  t.test_set = data::make_svhn_like(scaled(500), 2002);
  t.train_x = data::to_tensors(t.train_set);
  t.test_x = data::to_tensors(t.test_set);
  return t;
}

/// LeNet channel scale used by default (0.5 keeps the CNN benches fast;
/// raise AXC_BENCH_SCALE to >= 2 for the full-width network).
inline double lenet_channel_scale() { return scale() >= 2.0 ? 1.0 : 0.5; }

inline std::string cache_path(const std::string& name) {
  std::filesystem::create_directories("axc_cache");
  return "axc_cache/" + name + ".bin";
}

/// Trains (or loads from cache) the MLP on the MNIST-like task.
inline nn::network mnist_mlp(const classification_task& task) {
  nn::network net = nn::make_mlp(4242);
  const std::string path =
      cache_path("mlp_" + std::to_string(task.train_x.size()));
  if (std::ifstream in(path, std::ios::binary); in && net.load_weights(in)) {
    return net;
  }
  nn::train_config cfg;
  cfg.epochs = scaled(4);
  cfg.learning_rate = 0.08f;
  cfg.seed = 99;
  nn::train(net, task.train_x, task.train_set.labels, cfg);
  std::ofstream out(path, std::ios::binary);
  net.save_weights(out);
  return net;
}

/// Trains (or loads from cache) the LeNet-5 on the SVHN-like task.
inline nn::network svhn_lenet(const classification_task& task) {
  nn::network net = nn::make_lenet5(7777, lenet_channel_scale());
  const std::string path =
      cache_path("lenet_" + std::to_string(task.train_x.size()) + "_" +
                 std::to_string(static_cast<int>(lenet_channel_scale() * 100)));
  if (std::ifstream in(path, std::ios::binary); in && net.load_weights(in)) {
    return net;
  }
  nn::train_config cfg;
  cfg.epochs = scaled(8);
  cfg.learning_rate = 0.02f;  // LeNet diverges at MLP-style rates
  cfg.lr_decay = 0.95f;
  cfg.seed = 55;
  nn::train(net, task.train_x, task.train_set.labels, cfg);
  std::ofstream out(path, std::ios::binary);
  net.save_weights(out);
  return net;
}

/// Deep-copies weights from `src` into a freshly built architecture (the
/// fine-tuning benches mutate per-level copies of the trained network).
inline nn::network clone_into(const nn::network& src, nn::network fresh) {
  std::stringstream blob;
  src.save_weights(blob);
  if (!fresh.load_weights(blob)) {
    std::fprintf(stderr, "clone_into: architecture mismatch\n");
    std::abort();
  }
  return fresh;
}

}  // namespace axc::bench
