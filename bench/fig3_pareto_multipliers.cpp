// Fig. 3 — power vs WMED trade-offs of 8-bit unsigned multipliers evolved
// for D1 / D2 / Du, against conventional approximate baselines (truncated
// and broken-array multipliers).  Three panels, one per evaluation metric
// (WMED_D1, WMED_D2, WMED_Du); every multiplier is evaluated under all
// three, exactly as in the paper ("each multiplier is also evaluated using
// the remaining WMEDs that were not considered during the design").
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/design_flow.h"
#include "core/pareto.h"
#include "core/wmed_approximator.h"
#include "metrics/error_metrics.h"
#include "mult/multipliers.h"

namespace {

using namespace axc;
using metrics::mult_spec;

struct candidate {
  std::string series;
  circuit::netlist netlist;
  double wmed[3]{};   // under D1, D2, Du
  double power_uw{};  // under the design-relevant workload (Du operands)
};

}  // namespace

int main() {
  bench::banner("Fig. 3",
                "Pareto fronts: evolved multipliers vs truncated/BAM");

  const mult_spec spec{8, false};
  const dist::pmf dists[3] = {dist::pmf::normal(256, 127.0, 32.0),
                              dist::pmf::half_normal(256, 64.0),
                              dist::pmf::uniform(256)};
  const char* dist_names[3] = {"D1", "D2", "Du"};

  // Budget: a subset of the 14 paper targets by default.
  std::vector<double> targets = core::default_wmed_targets();
  if (bench::scale() < 2.0) {
    std::vector<double> sub;
    for (std::size_t i = 0; i < targets.size(); i += 2) {
      sub.push_back(targets[i]);
    }
    targets = sub;
  }
  const std::size_t iterations = bench::scaled(2500);

  const circuit::netlist seed = mult::unsigned_multiplier(8);
  std::vector<candidate> candidates;

  // --- proposed: evolve per distribution and target ---
  for (int di = 0; di < 3; ++di) {
    core::approximation_config cfg;
    cfg.spec = spec;
    cfg.distribution = dists[di];
    cfg.iterations = iterations;
    cfg.extra_columns = 64;
    cfg.rng_seed = 300 + static_cast<std::uint64_t>(di);
    const core::wmed_approximator approximator(cfg);
    for (const double target : targets) {
      const auto design = approximator.approximate(seed, target);
      candidates.push_back(
          {std::string("proposed-") + dist_names[di], design.netlist});
    }
    std::printf("evolved %zu designs for %s\n", targets.size(),
                dist_names[di]);
  }

  // --- baselines ---
  for (const unsigned drop : {2u, 4u, 6u, 8u, 10u, 12u}) {
    candidates.push_back({"truncated-" + std::to_string(drop),
                          mult::truncated_multiplier(8, drop)});
  }
  for (const auto [hbl, vbl] : {std::pair{0u, 4u}, std::pair{0u, 8u},
                                std::pair{1u, 6u}, std::pair{2u, 8u},
                                std::pair{2u, 12u}, std::pair{3u, 10u}}) {
    candidates.push_back(
        {"bam-h" + std::to_string(hbl) + "v" + std::to_string(vbl),
         mult::broken_array_multiplier(8, hbl, vbl)});
  }
  candidates.push_back({"exact", seed});

  // --- characterize everything under all three metrics ---
  const auto exact_table = metrics::exact_product_table(spec);
  for (candidate& c : candidates) {
    const auto table = metrics::product_table(c.netlist, spec);
    for (int di = 0; di < 3; ++di) {
      c.wmed[di] = metrics::wmed(exact_table, table, spec, dists[di]);
    }
    c.power_uw = core::characterize_multiplier(
                     c.netlist, spec, dists[2],
                     tech::cell_library::nangate45_like(), 2048)
                     .power_uw;
  }

  for (int panel = 0; panel < 3; ++panel) {
    std::printf("\n--- Panel WMED_%s: power [uW] vs WMED [%%] ---\n",
                dist_names[panel]);
    std::printf("%-16s %12s %12s\n", "series", "WMED%", "power_uW");
    for (const candidate& c : candidates) {
      std::printf("%-16s %12.5f %12.2f\n", c.series.c_str(),
                  100.0 * c.wmed[panel], c.power_uw);
    }
    // Pareto front of this panel.
    std::vector<core::pareto_point> points;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      points.push_back({candidates[i].wmed[panel],
                        candidates[i].power_uw, i});
    }
    const auto front = core::pareto_front(points);
    std::size_t proposed_on_front = 0;
    const std::string prefix = std::string("proposed-") + dist_names[panel];
    for (const auto& p : front) {
      if (candidates[p.index].series == prefix) ++proposed_on_front;
    }
    std::printf("Pareto front size %zu; %zu points from %s\n", front.size(),
                proposed_on_front, prefix.c_str());
  }

  std::printf(
      "\nPaper reference (shape): multipliers evolved for the panel's own\n"
      "distribution dominate the front of that panel; truncated/BAM points\n"
      "lie above/right of the evolved fronts.\n");
  return 0;
}
