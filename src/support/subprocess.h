// Minimal POSIX child-process supervision for the sharded sweep runtime.
//
// core::shard_runner launches one worker process per shard and needs
// exactly three operations: spawn with extra environment variables,
// non-blocking exit polling, and a hard kill for deadline enforcement.
// This wraps fork/execv/waitpid behind that surface; on non-POSIX builds
// spawn() reports failure and the coordinator degrades gracefully.
#pragma once

#include <optional>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <cerrno>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#define AXC_HAS_SUBPROCESS 1
#else
#define AXC_HAS_SUBPROCESS 0
#endif

namespace axc::support {

/// Exit status of a finished child: exit code for a normal exit,
/// 128 + signal number when the child was killed (shell convention, so a
/// SIGKILLed worker reports 137).
struct exit_status {
  int code{0};
  bool signalled{false};
  [[nodiscard]] bool success() const { return !signalled && code == 0; }
};

class subprocess {
 public:
  subprocess() = default;
  subprocess(subprocess&& other) noexcept : pid_(other.pid_) {
    other.pid_ = -1;
  }
  subprocess& operator=(subprocess&& other) noexcept {
    if (this != &other) {
      reap_if_running();
      pid_ = other.pid_;
      other.pid_ = -1;
    }
    return *this;
  }
  subprocess(const subprocess&) = delete;
  subprocess& operator=(const subprocess&) = delete;
  ~subprocess() { reap_if_running(); }

  /// Launches argv[0] with the given arguments; `extra_env` entries
  /// ("KEY=VALUE") are appended to the inherited environment.  Returns
  /// nullopt when the platform has no process support or fork fails; an
  /// unexecutable binary surfaces as exit code 127 from poll().
  [[nodiscard]] static std::optional<subprocess> spawn(
      const std::vector<std::string>& argv,
      const std::vector<std::string>& extra_env = {}) {
#if AXC_HAS_SUBPROCESS
    if (argv.empty()) return std::nullopt;
    const pid_t pid = ::fork();
    if (pid < 0) return std::nullopt;
    if (pid == 0) {
      for (const std::string& kv : extra_env) {
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos) continue;
        ::setenv(kv.substr(0, eq).c_str(), kv.substr(eq + 1).c_str(), 1);
      }
      std::vector<char*> args;
      args.reserve(argv.size() + 1);
      for (const std::string& a : argv) {
        args.push_back(const_cast<char*>(a.c_str()));
      }
      args.push_back(nullptr);
      ::execv(args[0], args.data());
      ::_exit(127);  // exec failed; never run atexit handlers in the child
    }
    subprocess child;
    child.pid_ = pid;
    return child;
#else
    (void)argv;
    (void)extra_env;
    return std::nullopt;
#endif
  }

  [[nodiscard]] bool running() const { return pid_ > 0; }

  /// Non-blocking: nullopt while the child runs; its exit_status once it
  /// finished (the child is reaped; further polls return nullopt).  A
  /// signal-interrupted waitpid is retried, never misread as an exit — a
  /// coordinator taking SIGCHLD/SIGTERM bursts must not abandon a live
  /// child as "exit 127" and leave it to become a zombie.
  [[nodiscard]] std::optional<exit_status> poll() {
#if AXC_HAS_SUBPROCESS
    if (pid_ <= 0) return std::nullopt;
    int status = 0;
    pid_t r;
    do {
      r = ::waitpid(pid_, &status, WNOHANG);
    } while (r < 0 && errno == EINTR);
    if (r == 0) return std::nullopt;
    pid_ = -1;
    if (r < 0) return exit_status{127, false};
    if (WIFSIGNALED(status)) {
      return exit_status{128 + WTERMSIG(status), true};
    }
    return exit_status{WEXITSTATUS(status), false};
#else
    return std::nullopt;
#endif
  }

  /// Blocking: waits for the child to finish and reaps it.  For short
  /// synchronous helpers (checkpoint fetch/push commands), not for workers —
  /// the coordinator supervises those with poll() so deadlines stay live.
  [[nodiscard]] std::optional<exit_status> wait() {
#if AXC_HAS_SUBPROCESS
    if (pid_ <= 0) return std::nullopt;
    int status = 0;
    pid_t r;
    do {
      r = ::waitpid(pid_, &status, 0);
    } while (r < 0 && errno == EINTR);
    pid_ = -1;
    if (r < 0) return exit_status{127, false};
    if (WIFSIGNALED(status)) {
      return exit_status{128 + WTERMSIG(status), true};
    }
    return exit_status{WEXITSTATUS(status), false};
#else
    return std::nullopt;
#endif
  }

  /// SIGKILL — deadline enforcement, not a polite shutdown.  The child is
  /// reaped by the next poll() (or the destructor).
  void kill_hard() {
#if AXC_HAS_SUBPROCESS
    if (pid_ > 0) ::kill(pid_, SIGKILL);
#endif
  }

  /// SIGTERM — asks for a graceful drain (axc_sweep and axc_serve install
  /// handlers that stop supervision and flush their journals).  Follow
  /// with poll(); escalate to kill_hard() if the child ignores it.
  void terminate() {
#if AXC_HAS_SUBPROCESS
    if (pid_ > 0) ::kill(pid_, SIGTERM);
#endif
  }

 private:
  /// Destructor path: an aborting owner (exception unwind, early return)
  /// must leave neither a running orphan nor a zombie behind, so kill hard
  /// and then *block* until the child is actually reaped, retrying the
  /// interruptible wait.
  void reap_if_running() {
#if AXC_HAS_SUBPROCESS
    if (pid_ <= 0) return;
    ::kill(pid_, SIGKILL);
    int status = 0;
    pid_t r;
    do {
      r = ::waitpid(pid_, &status, 0);
    } while (r < 0 && errno == EINTR);
    pid_ = -1;
#endif
  }

#if AXC_HAS_SUBPROCESS
  pid_t pid_{-1};
#else
  int pid_{-1};
#endif
};

}  // namespace axc::support
