// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) and FNV-1a 64 over byte
// ranges.
//
// CRC-32 is the integrity check of the "axc-session v2" checkpoint format
// and the result-store framing: a torn or bit-flipped record fails its CRC
// and the salvage path drops exactly that record instead of the whole
// file.  FNV-1a 64 is the *content address* of the result store — wide
// enough that distinct artifacts get distinct object names, and cheap
// enough to hash megabyte checkpoints on every put.  The CRC table is
// built at compile time; both functions are allocation-free.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace axc::support {

namespace detail {

consteval std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> crc32_table =
    make_crc32_table();

}  // namespace detail

/// One-shot CRC-32 of a byte range.  `seed` chains partial updates:
/// crc32(ab) == crc32(b, crc32(a)).
[[nodiscard]] inline std::uint32_t crc32(std::string_view bytes,
                                         std::uint32_t seed = 0) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const char ch : bytes) {
    c = detail::crc32_table[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^
        (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

/// FNV-1a 64-bit hash of a byte range.  `seed` chains partial updates the
/// same way crc32's does (pass a previous result to continue hashing).
[[nodiscard]] inline std::uint64_t fnv1a64(
    std::string_view bytes, std::uint64_t seed = 0xcbf29ce484222325ULL) {
  std::uint64_t h = seed;
  for (const char ch : bytes) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace axc::support
