// Unix-domain stream sockets + CRC-framed length-prefixed messaging for
// the result-serving daemon.
//
// core::result_server answers "spec -> front" requests over a local
// socket; this header wraps the POSIX surface it needs — socket/bind/
// listen/accept/connect with EINTR-safe blocking reads and writes — and
// the one wire format every message uses:
//
//   frame := header(16 bytes) payload
//   header := magic(4, "AXF1") length(4, LE) payload-crc32(4, LE)
//             header-crc32(4, LE, over the first 12 bytes)
//
// The header carries its own CRC32 so a desynchronized, truncated or
// bit-flipped stream is *detected* before a single payload byte is
// trusted; the payload CRC catches damage inside the body.  Lengths are
// capped by the caller (an attacker-supplied 4 GB length must reject
// without allocating), and every read distinguishes "peer closed" from
// "malformed bytes" so servers can drop bad clients without wedging the
// accept loop — the contract tests/test_net_framing.cpp sweeps with
// truncations, bit flips, bogus lengths and CRC mismatches.
//
// Like support/subprocess.h, non-POSIX builds compile but every entry
// point reports failure (AXC_HAS_NET == 0) and callers degrade.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>

#include "support/checksum.h"

#if defined(__unix__) || defined(__APPLE__)
#include <cerrno>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>
#define AXC_HAS_NET 1
#else
#define AXC_HAS_NET 0
#endif

namespace axc::support::net {

inline constexpr std::string_view kFrameMagic = "AXF1";
inline constexpr std::size_t kFrameHeaderBytes = 16;

/// Why a frame read returned no payload.  `closed` is the orderly case (a
/// peer hanging up between requests); everything else is damage or abuse.
enum class frame_error : std::uint8_t {
  none,
  closed,     ///< clean EOF before any header byte
  truncated,  ///< EOF mid-header or mid-payload
  bad_magic,  ///< stream out of sync / not speaking this protocol
  bad_header, ///< header CRC mismatch (bit flip in the framing itself)
  oversized,  ///< declared length exceeds the caller's cap
  bad_crc,    ///< payload bytes fail their CRC
  io,         ///< read/write syscall failure (incl. a receive timeout)
};

namespace detail {

inline void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFFu));
  out.push_back(static_cast<char>((v >> 8) & 0xFFu));
  out.push_back(static_cast<char>((v >> 16) & 0xFFu));
  out.push_back(static_cast<char>((v >> 24) & 0xFFu));
}

[[nodiscard]] inline std::uint32_t get_u32(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

}  // namespace detail

/// One frame's exact wire bytes.  Kept separate from the fd path so the
/// hardening tests can mutate encoded bytes before they touch a socket.
[[nodiscard]] inline std::string encode_frame(std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.append(kFrameMagic);
  detail::put_u32(out, static_cast<std::uint32_t>(payload.size()));
  detail::put_u32(out, crc32(payload));
  detail::put_u32(out, crc32(std::string_view(out.data(), 12)));
  out.append(payload.data(), payload.size());
  return out;
}

/// Validates and strips the framing from exact in-memory frame bytes (the
/// pure-function core of read_frame, shared with its tests).
[[nodiscard]] inline std::optional<std::string> decode_frame(
    std::string_view bytes, std::size_t max_payload,
    frame_error* error = nullptr) {
  const auto fail = [error](frame_error e) -> std::optional<std::string> {
    if (error) *error = e;
    return std::nullopt;
  };
  if (bytes.empty()) return fail(frame_error::closed);
  if (bytes.size() < kFrameHeaderBytes) return fail(frame_error::truncated);
  if (bytes.substr(0, 4) != kFrameMagic) return fail(frame_error::bad_magic);
  if (detail::get_u32(bytes.data() + 12) !=
      crc32(bytes.substr(0, 12))) {
    return fail(frame_error::bad_header);
  }
  const std::uint32_t length = detail::get_u32(bytes.data() + 4);
  if (length > max_payload) return fail(frame_error::oversized);
  if (bytes.size() < kFrameHeaderBytes + length) {
    return fail(frame_error::truncated);
  }
  const std::string_view payload = bytes.substr(kFrameHeaderBytes, length);
  if (detail::get_u32(bytes.data() + 8) != crc32(payload)) {
    return fail(frame_error::bad_crc);
  }
  if (error) *error = frame_error::none;
  return std::string(payload);
}

#if AXC_HAS_NET

/// Blocking read of exactly `n` bytes, retrying short reads and EINTR.
/// Returns the byte count delivered before EOF/error (== n on success);
/// `eof` (optional) distinguishes a clean close from a syscall failure.
[[nodiscard]] inline std::size_t read_exact(int fd, char* buf, std::size_t n,
                                            bool* eof = nullptr) {
  if (eof) *eof = false;
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      if (eof) *eof = true;
      break;
    }
    if (errno == EINTR) continue;
    break;
  }
  return got;
}

/// Blocking write of all of `bytes`, retrying short writes and EINTR.
[[nodiscard]] inline bool write_all(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t r = ::write(fd, bytes.data() + sent, bytes.size() - sent);
    if (r > 0) {
      sent += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

[[nodiscard]] inline bool write_frame(int fd, std::string_view payload) {
  return write_all(fd, encode_frame(payload));
}

/// Reads one frame off `fd`.  Header first (so a bogus length is rejected
/// before any payload allocation), then exactly the declared payload.
/// nullopt with the reason in `error`; the stream is unusable after any
/// error except `closed` (framing offers no resync point — drop the
/// connection, which is what result_server does).
[[nodiscard]] inline std::optional<std::string> read_frame(
    int fd, std::size_t max_payload, frame_error* error = nullptr) {
  const auto fail = [error](frame_error e) -> std::optional<std::string> {
    if (error) *error = e;
    return std::nullopt;
  };
  char header[kFrameHeaderBytes];
  bool eof = false;
  const std::size_t got = read_exact(fd, header, sizeof header, &eof);
  if (got == 0 && eof) return fail(frame_error::closed);
  if (got < sizeof header) {
    return fail(eof ? frame_error::truncated : frame_error::io);
  }
  if (std::string_view(header, 4) != kFrameMagic) {
    return fail(frame_error::bad_magic);
  }
  if (detail::get_u32(header + 12) != crc32(std::string_view(header, 12))) {
    return fail(frame_error::bad_header);
  }
  const std::uint32_t length = detail::get_u32(header + 4);
  if (length > max_payload) return fail(frame_error::oversized);
  std::string payload(length, '\0');
  if (read_exact(fd, payload.data(), length, &eof) < length) {
    return fail(eof ? frame_error::truncated : frame_error::io);
  }
  if (detail::get_u32(header + 8) != crc32(payload)) {
    return fail(frame_error::bad_crc);
  }
  if (error) *error = frame_error::none;
  return payload;
}

/// RAII fd for one connected Unix-domain stream (either side).
class unix_stream {
 public:
  unix_stream() = default;
  explicit unix_stream(int fd) : fd_(fd) {}
  unix_stream(unix_stream&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
  }
  unix_stream& operator=(unix_stream&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  unix_stream(const unix_stream&) = delete;
  unix_stream& operator=(const unix_stream&) = delete;
  ~unix_stream() { close(); }

  [[nodiscard]] static std::optional<unix_stream> connect(
      const std::string& path) {
    ::sockaddr_un addr{};
    if (path.size() >= sizeof addr.sun_path) return std::nullopt;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return std::nullopt;
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    int r;
    do {
      r = ::connect(fd, reinterpret_cast<::sockaddr*>(&addr), sizeof addr);
    } while (r < 0 && errno == EINTR);
    if (r < 0) {
      ::close(fd);
      return std::nullopt;
    }
    return unix_stream(fd);
  }

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Bounds how long a blocking read may wait (a connected-but-silent
  /// client must not pin a handler thread forever); 0 restores "forever".
  [[nodiscard]] bool set_receive_timeout_ms(long ms) {
    ::timeval tv{};
    tv.tv_sec = ms / 1000;
    tv.tv_usec = (ms % 1000) * 1000;
    return ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) == 0;
  }

  [[nodiscard]] bool send(std::string_view payload) const {
    return write_frame(fd_, payload);
  }
  [[nodiscard]] std::optional<std::string> receive(
      std::size_t max_payload, frame_error* error = nullptr) const {
    return read_frame(fd_, max_payload, error);
  }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_{-1};
};

/// RAII listening socket bound at a filesystem path.  Binding removes a
/// stale socket file first (the daemon owns its path), and the destructor
/// unlinks it so a clean shutdown leaves nothing behind.
class unix_listener {
 public:
  unix_listener() = default;
  unix_listener(unix_listener&& other) noexcept
      : fd_(other.fd_), path_(std::move(other.path_)) {
    other.fd_ = -1;
    other.path_.clear();
  }
  unix_listener& operator=(unix_listener&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      path_ = std::move(other.path_);
      other.fd_ = -1;
      other.path_.clear();
    }
    return *this;
  }
  unix_listener(const unix_listener&) = delete;
  unix_listener& operator=(const unix_listener&) = delete;
  ~unix_listener() { close(); }

  [[nodiscard]] static std::optional<unix_listener> listen_at(
      const std::string& path, int backlog = 16) {
    ::sockaddr_un addr{};
    if (path.size() >= sizeof addr.sun_path) return std::nullopt;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return std::nullopt;
    ::unlink(path.c_str());
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::bind(fd, reinterpret_cast<::sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(fd, backlog) != 0) {
      ::close(fd);
      return std::nullopt;
    }
    unix_listener listener;
    listener.fd_ = fd;
    listener.path_ = path;
    return listener;
  }

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Blocking accept with EINTR retry; nullopt on a real failure (the
  /// accept loop treats that as shutdown).
  [[nodiscard]] std::optional<unix_stream> accept() const {
    int client;
    do {
      client = ::accept(fd_, nullptr, nullptr);
    } while (client < 0 && errno == EINTR);
    if (client < 0) return std::nullopt;
    return unix_stream(client);
  }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      ::unlink(path_.c_str());
    }
    fd_ = -1;
    path_.clear();
  }

 private:
  int fd_{-1};
  std::string path_{};
};

#else  // !AXC_HAS_NET: compile-through stubs; every entry point fails.

[[nodiscard]] inline bool write_all(int, std::string_view) { return false; }
[[nodiscard]] inline bool write_frame(int, std::string_view) {
  return false;
}
[[nodiscard]] inline std::optional<std::string> read_frame(
    int, std::size_t, frame_error* error = nullptr) {
  if (error) *error = frame_error::io;
  return std::nullopt;
}

class unix_stream {
 public:
  [[nodiscard]] static std::optional<unix_stream> connect(
      const std::string&) {
    return std::nullopt;
  }
  [[nodiscard]] bool valid() const { return false; }
  [[nodiscard]] int fd() const { return -1; }
  [[nodiscard]] bool set_receive_timeout_ms(long) { return false; }
  [[nodiscard]] bool send(std::string_view) const { return false; }
  [[nodiscard]] std::optional<std::string> receive(
      std::size_t, frame_error* error = nullptr) const {
    if (error) *error = frame_error::io;
    return std::nullopt;
  }
  void close() {}
};

class unix_listener {
 public:
  [[nodiscard]] static std::optional<unix_listener> listen_at(
      const std::string&, int = 16) {
    return std::nullopt;
  }
  [[nodiscard]] bool valid() const { return false; }
  [[nodiscard]] int fd() const { return -1; }
  [[nodiscard]] std::optional<unix_stream> accept() const {
    return std::nullopt;
  }
  void close() {}
};

#endif

}  // namespace axc::support::net
