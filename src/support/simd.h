// Portable SIMD layer for the bit-plane kernels: one 8-lane vector-of-u64
// abstraction with scalar / AVX2 / AVX-512 backends, plus the runtime CPU
// dispatch machinery that lets a *generic* release binary pick the best
// compiled-in kernel on the machine it lands on (no -march=native needed).
//
// Design:
//  * `level` names a backend.  `automatic` means "resolve at runtime": the
//    AXC_SIMD environment variable (scalar|avx2|avx512|auto) wins if set and
//    valid, otherwise the best backend the CPU supports is chosen.  An
//    explicit request is clamped down to what the CPU can run, never up.
//  * `vu64x8<level>` is the vector type kernels are written against: eight
//    64-bit lanes with the bitwise ops, per-lane popcount, lane-uniform
//    shift and add the error-plane arithmetic needs.  Backend availability
//    is a *compile-time* property of the translation unit (guarded by
//    __AVX2__ / __AVX512F__ macros), so each backend kernel lives in its own
//    TU compiled with the matching -m flags (see src/metrics/scan_kernels*)
//    and the header stays includable everywhere, ARM included — there the
//    scalar backend's plain loops autovectorize to NEON.
//  * Every lane op is exact integer arithmetic, so kernels produce
//    bit-identical results on every backend by construction (parity-tested
//    across forced dispatch levels in tests/test_simd_dispatch.cpp).
#pragma once

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string_view>

#if defined(__x86_64__) || defined(__i386__)
#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif
#endif

namespace axc::simd {

/// A dispatchable kernel backend, ordered weakest to strongest.
/// `automatic` is a *request*, never a resolved level.
enum class level : std::uint8_t {
  automatic = 0,
  scalar = 1,
  avx2 = 2,
  avx512 = 3,  ///< AVX-512F + VPOPCNTDQ (vectorized per-lane popcount)
};

[[nodiscard]] inline const char* level_name(level l) {
  switch (l) {
    case level::automatic: return "auto";
    case level::scalar: return "scalar";
    case level::avx2: return "avx2";
    case level::avx512: return "avx512";
  }
  return "?";
}

[[nodiscard]] inline std::optional<level> parse_level(std::string_view name) {
  if (name == "auto" || name == "automatic") return level::automatic;
  if (name == "scalar") return level::scalar;
  if (name == "avx2") return level::avx2;
  if (name == "avx512") return level::avx512;
  return std::nullopt;
}

/// Whether the *running CPU* can execute a backend (independent of whether
/// a kernel for it was compiled into this binary — the dispatch tables in
/// src/metrics/scan_kernels.cpp combine both).
[[nodiscard]] inline bool cpu_supports(level l) {
  switch (l) {
    case level::automatic:
    case level::scalar:
      return true;
    case level::avx2:
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case level::avx512:
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512vpopcntdq") != 0;
#else
      return false;
#endif
  }
  return false;
}

/// The AXC_SIMD environment override, when set to a valid level name.
[[nodiscard]] inline std::optional<level> env_override() {
  const char* value = std::getenv("AXC_SIMD");
  if (value == nullptr) return std::nullopt;
  return parse_level(value);
}

/// The one resolution ladder every kernel dispatch table shares (scan
/// kernels, step executors): `automatic` honours AXC_SIMD when set and
/// valid, otherwise takes the strongest level `available` accepts;
/// explicit requests clamp down to availability, never up.  `available`
/// is the module's own predicate (compiled-in AND CPU-supported), so the
/// rules cannot drift apart between modules.
template <typename AvailablePredicate>
[[nodiscard]] level resolve_level(level requested,
                                  AvailablePredicate&& available) {
  if (requested == level::automatic) {
    const std::optional<level> env = env_override();
    if (env.has_value() && *env != level::automatic) {
      requested = *env;
    } else {
      if (available(level::avx512)) return level::avx512;
      if (available(level::avx2)) return level::avx2;
      return level::scalar;
    }
  }
  if (requested == level::avx512 && !available(level::avx512)) {
    requested = level::avx2;
  }
  if (requested == level::avx2 && !available(level::avx2)) {
    requested = level::scalar;
  }
  return requested;
}

// ---------------------------------------------------------------------------
// vu64x8: eight u64 lanes, the kernel vector type
// ---------------------------------------------------------------------------

template <level L>
struct vu64x8;

/// Baseline backend: plain arrays + loops.  Compilers autovectorize the
/// bitwise ops to whatever the TU's target allows (SSE2 on generic x86-64,
/// NEON on aarch64); popcount lowers to scalar POPCNT where no vector count
/// instruction exists — still fast, and the layout matches the wider
/// backends exactly.
template <>
struct vu64x8<level::scalar> {
  std::uint64_t v[8];

  static vu64x8 zero() { return vu64x8{{0, 0, 0, 0, 0, 0, 0, 0}}; }
  static vu64x8 load(const std::uint64_t* p) {
    vu64x8 r;
    for (int i = 0; i < 8; ++i) r.v[i] = p[i];
    return r;
  }
  void store(std::uint64_t* p) const {
    for (int i = 0; i < 8; ++i) p[i] = v[i];
  }

  friend vu64x8 operator^(vu64x8 a, vu64x8 b) {
    for (int i = 0; i < 8; ++i) a.v[i] ^= b.v[i];
    return a;
  }
  friend vu64x8 operator&(vu64x8 a, vu64x8 b) {
    for (int i = 0; i < 8; ++i) a.v[i] &= b.v[i];
    return a;
  }
  friend vu64x8 operator|(vu64x8 a, vu64x8 b) {
    for (int i = 0; i < 8; ++i) a.v[i] |= b.v[i];
    return a;
  }
  friend vu64x8 operator+(vu64x8 a, vu64x8 b) {
    for (int i = 0; i < 8; ++i) a.v[i] += b.v[i];
    return a;
  }
  /// ~a & b (the borrow-recurrence primitive; maps to ANDN/VPANDN).
  static vu64x8 andnot(vu64x8 a, vu64x8 b) {
    for (int i = 0; i < 8; ++i) a.v[i] = ~a.v[i] & b.v[i];
    return a;
  }
  static vu64x8 ones() {
    vu64x8 r;
    for (int i = 0; i < 8; ++i) r.v[i] = ~std::uint64_t{0};
    return r;
  }
  friend vu64x8 operator~(vu64x8 a) {
    for (int i = 0; i < 8; ++i) a.v[i] = ~a.v[i];
    return a;
  }
  [[nodiscard]] vu64x8 popcount() const {
    vu64x8 r;
    for (int i = 0; i < 8; ++i) {
      r.v[i] = static_cast<std::uint64_t>(std::popcount(v[i]));
    }
    return r;
  }
  [[nodiscard]] vu64x8 shl(unsigned s) const {
    vu64x8 r;
    for (int i = 0; i < 8; ++i) r.v[i] = v[i] << s;
    return r;
  }
};

#if defined(__AVX2__)
/// Two 256-bit halves.  Per-lane popcount uses the classic PSHUFB nibble
/// lookup + PSADBW horizontal byte sum (no VPOPCNTDQ below AVX-512).
template <>
struct vu64x8<level::avx2> {
  __m256i lo, hi;

  static vu64x8 zero() {
    return vu64x8{_mm256_setzero_si256(), _mm256_setzero_si256()};
  }
  static vu64x8 load(const std::uint64_t* p) {
    return vu64x8{
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 4))};
  }
  void store(std::uint64_t* p) const {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), lo);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p + 4), hi);
  }

  friend vu64x8 operator^(vu64x8 a, vu64x8 b) {
    return vu64x8{_mm256_xor_si256(a.lo, b.lo), _mm256_xor_si256(a.hi, b.hi)};
  }
  friend vu64x8 operator&(vu64x8 a, vu64x8 b) {
    return vu64x8{_mm256_and_si256(a.lo, b.lo), _mm256_and_si256(a.hi, b.hi)};
  }
  friend vu64x8 operator|(vu64x8 a, vu64x8 b) {
    return vu64x8{_mm256_or_si256(a.lo, b.lo), _mm256_or_si256(a.hi, b.hi)};
  }
  friend vu64x8 operator+(vu64x8 a, vu64x8 b) {
    return vu64x8{_mm256_add_epi64(a.lo, b.lo), _mm256_add_epi64(a.hi, b.hi)};
  }
  static vu64x8 andnot(vu64x8 a, vu64x8 b) {
    return vu64x8{_mm256_andnot_si256(a.lo, b.lo),
                  _mm256_andnot_si256(a.hi, b.hi)};
  }
  static vu64x8 ones() {
    const __m256i o = _mm256_set1_epi64x(-1);
    return vu64x8{o, o};
  }
  friend vu64x8 operator~(vu64x8 a) { return andnot(a, ones()); }
  [[nodiscard]] vu64x8 popcount() const {
    const __m256i lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i nibble = _mm256_set1_epi8(0x0f);
    const auto count64 = [&](__m256i x) {
      const __m256i lo4 = _mm256_and_si256(x, nibble);
      const __m256i hi4 = _mm256_and_si256(_mm256_srli_epi16(x, 4), nibble);
      const __m256i bytes = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo4),
                                            _mm256_shuffle_epi8(lut, hi4));
      return _mm256_sad_epu8(bytes, _mm256_setzero_si256());
    };
    return vu64x8{count64(lo), count64(hi)};
  }
  [[nodiscard]] vu64x8 shl(unsigned s) const {
    const __m128i count = _mm_cvtsi32_si128(static_cast<int>(s));
    return vu64x8{_mm256_sll_epi64(lo, count), _mm256_sll_epi64(hi, count)};
  }
};
#endif  // __AVX2__

#if defined(__AVX512F__) && defined(__AVX512VPOPCNTDQ__)
/// One 512-bit register; VPOPCNTQ counts all eight lanes in one instruction.
template <>
struct vu64x8<level::avx512> {
  __m512i v;

  static vu64x8 zero() { return vu64x8{_mm512_setzero_si512()}; }
  static vu64x8 load(const std::uint64_t* p) {
    return vu64x8{_mm512_loadu_si512(p)};
  }
  void store(std::uint64_t* p) const { _mm512_storeu_si512(p, v); }

  friend vu64x8 operator^(vu64x8 a, vu64x8 b) {
    return vu64x8{_mm512_xor_si512(a.v, b.v)};
  }
  friend vu64x8 operator&(vu64x8 a, vu64x8 b) {
    return vu64x8{_mm512_and_si512(a.v, b.v)};
  }
  friend vu64x8 operator|(vu64x8 a, vu64x8 b) {
    return vu64x8{_mm512_or_si512(a.v, b.v)};
  }
  friend vu64x8 operator+(vu64x8 a, vu64x8 b) {
    return vu64x8{_mm512_add_epi64(a.v, b.v)};
  }
  static vu64x8 andnot(vu64x8 a, vu64x8 b) {
    return vu64x8{_mm512_andnot_si512(a.v, b.v)};
  }
  static vu64x8 ones() { return vu64x8{_mm512_set1_epi64(-1)}; }
  friend vu64x8 operator~(vu64x8 a) { return andnot(a, ones()); }
  [[nodiscard]] vu64x8 popcount() const {
    return vu64x8{_mm512_popcnt_epi64(v)};
  }
  [[nodiscard]] vu64x8 shl(unsigned s) const {
    return vu64x8{_mm512_sll_epi64(v, _mm_cvtsi32_si128(static_cast<int>(s)))};
  }
};
#endif  // __AVX512F__ && __AVX512VPOPCNTDQ__

}  // namespace axc::simd
