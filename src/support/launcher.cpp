#include "support/launcher.h"

#include <filesystem>
#include <system_error>

namespace axc::support {
namespace {

void replace_all(std::string& token, const std::string& what,
                 const std::string& with) {
  std::size_t pos = 0;
  while ((pos = token.find(what, pos)) != std::string::npos) {
    token.replace(pos, what.size(), with);
    pos += with.size();
  }
}

}  // namespace

std::vector<std::string> worker_launcher::expand(
    const std::vector<std::string>& tpl, const std::string& host,
    const std::string& src, const std::string& dst) {
  std::vector<std::string> out;
  out.reserve(tpl.size());
  for (const std::string& t : tpl) {
    std::string token = t;
    replace_all(token, "{host}", host);
    replace_all(token, "{src}", src);
    replace_all(token, "{dst}", dst);
    out.push_back(std::move(token));
  }
  return out;
}

std::optional<subprocess> worker_launcher::launch(
    const std::vector<std::string>& argv,
    const std::vector<std::string>& extra_env) const {
  if (tpl_.is_local()) return subprocess::spawn(argv, extra_env);
  std::vector<std::string> full = expand(tpl_.run, host_, "", "");
  // The hop command strips our environ; carry the env explicitly.
  full.emplace_back("/usr/bin/env");
  for (const std::string& kv : extra_env) full.push_back(kv);
  for (const std::string& a : argv) full.push_back(a);
  return subprocess::spawn(full, {});
}

bool worker_launcher::run_copy(const std::vector<std::string>& tpl,
                               const std::string& src,
                               const std::string& dst) const {
  if (tpl.empty()) {
    // Shared filesystem: the "copy" is either a no-op (same path) or a
    // plain local file copy.
    if (src == dst) return true;
    std::error_code ec;
    std::filesystem::copy_file(
        src, dst, std::filesystem::copy_options::overwrite_existing, ec);
    return !ec;
  }
  auto proc = subprocess::spawn(expand(tpl, host_, src, dst), {});
  if (!proc) return false;
  const auto status = proc->wait();
  return status && status->success();
}

bool worker_launcher::fetch_file(const std::string& src,
                                 const std::string& dst) const {
  return run_copy(tpl_.fetch, src, dst);
}

bool worker_launcher::push_file(const std::string& src,
                                const std::string& dst) const {
  return run_copy(tpl_.push, src, dst);
}

}  // namespace axc::support
