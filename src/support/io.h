// Durable file I/O: the one atomic-replace path every on-disk artifact
// shares.
//
// Both the session checkpoints (core/search_session) and the result store
// (core/result_store) promise the same thing: a crash at any instant leaves
// either the previous good file or the new one at the destination path,
// never a half-written hybrid, and a successful return means the bytes are
// on stable storage.  That takes four steps, in order:
//
//   1. write `<path>.tmp` and flush it to the kernel;
//   2. fsync the tmp file (page-cache ghost -> stable storage);
//   3. rename over `path` (POSIX-atomic replace);
//   4. fsync the *parent directory* — the rename itself is a directory
//      mutation, and without this step a power loss can roll the directory
//      back to the old entry (or to no entry at all) even though the file
//      data was synced.
//
// Deterministic fault injection (support/fault.h) hooks each step so the
// crash-recovery tests can replay transient failures and torn writes:
// callers name their own points via durable_write_faults, keeping hit
// counters per subsystem (session saves vs store puts) instead of tangling
// them in one shared counter.
#pragma once

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#include <cerrno>
#include <fcntl.h>
#include <unistd.h>
#endif

#include "support/fault.h"

namespace axc::support {

#if defined(__unix__) || defined(__APPLE__)

namespace detail {

/// fsync with EINTR retry (fsync is interruptible on some filesystems).
inline bool fsync_fd(int fd) {
  while (::fsync(fd) != 0) {
    if (errno != EINTR) return false;
  }
  return true;
}

}  // namespace detail

/// fsyncs an existing file by path.  True on success.
[[nodiscard]] inline bool fsync_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return false;
  const bool ok = detail::fsync_fd(fd);
  ::close(fd);
  return ok;
}

/// fsyncs the directory containing `path`, making a rename into that
/// directory durable across power loss.  True on success.
[[nodiscard]] inline bool fsync_parent_dir(const std::string& path) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = detail::fsync_fd(fd);
  ::close(fd);
  return ok;
}

#else  // no POSIX fd syscalls: flush-to-kernel is the best available

[[nodiscard]] inline bool fsync_file(const std::string&) { return true; }
[[nodiscard]] inline bool fsync_parent_dir(const std::string&) {
  return true;
}

#endif

/// Injection points a durable write arms (empty name = point disabled).
/// Semantics, matching the session checkpoint tests that established them:
///   fail      fires before anything is written — a transient failure; the
///             destination file is untouched and the caller may retry;
///   truncate  payload = byte count the tmp file is cut to after writing —
///             a torn write that *survives into the published file* (the
///             readers' salvage paths are what must cope with it);
///   dirsync   the final directory fsync reports failure — the renamed file
///             is in place but its durability is not guaranteed, so the
///             write reports failure and the caller retries.
struct durable_write_faults {
  std::string_view fail{};
  std::string_view truncate{};
  std::string_view dirsync{};
};

/// Atomic, durable replace of `path` with `bytes` (tmp + flush + fsync +
/// rename + parent-dir fsync).  False on any failure; a failed write never
/// disturbs an existing good file at `path` (except the injected torn
/// write, which exists to exercise reader salvage).
[[nodiscard]] inline bool write_file_durable(
    const std::string& path, std::string_view bytes,
    const durable_write_faults& faults = {}) {
  if (!faults.fail.empty() && fault::fire(faults.fail)) return false;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) return false;
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    os.flush();
    if (!os) {
      os.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (!faults.truncate.empty()) {
    if (const auto cut = fault::fire(faults.truncate)) {
      std::error_code ec;
      const auto size = std::filesystem::file_size(tmp, ec);
      if (!ec && *cut < size) std::filesystem::resize_file(tmp, *cut, ec);
    }
  }
  if (!fsync_file(tmp)) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  // Rename alone is not durable: the directory entry itself must reach
  // stable storage, or a power loss can resurrect the pre-rename state.
  const bool dir_fault =
      !faults.dirsync.empty() && fault::fire(faults.dirsync).has_value();
  if (dir_fault || !fsync_parent_dir(path)) return false;
  return true;
}

}  // namespace axc::support
