// Command-template worker launching: the seam that takes the sharded
// sweep runtime off-box.
//
// core::shard_runner historically fork/exec'd tools/axc_worker directly.
// worker_launcher generalizes that one step behind argv *templates*: a
// node is described by a `run` prefix (empty = spawn locally, exactly
// today's support::subprocess path; non-empty = e.g.
// `ssh -oBatchMode=yes {host}` or a containerized equivalent) plus
// optional `fetch` / `push` copy commands ({host}/{src}/{dst}
// placeholders, e.g. `scp {host}:{src} {dst}`) for moving spec and
// checkpoint files between the coordinator and a node that does not share
// its filesystem.  Everything underneath stays plain POSIX process
// supervision — the template layer only decides WHAT argv to spawn:
//
//   local  :  argv                              (extra env via subprocess)
//   remote :  run-prefix + /usr/bin/env KEY=V.. argv
//
// Env rides the command line for templated launches because the prefix
// command (ssh, a container runner, the CI fake-ssh script) starts the
// worker on the far side where the coordinator's environ does not reach.
// Values therefore must not contain whitespace — AXC_FAULT plans and the
// coordinator's own variables never do.
//
// Copy commands run synchronously to completion; exit 0 is success, and
// an empty template means "shared filesystem" (a plain file copy when the
// two paths differ).  Integrity of a fetched checkpoint is NOT the
// launcher's business: callers push fetched bytes through the
// axc-session-v2 CRC salvage path (search_session::resume_file), which is
// what turns a torn transfer into a detected, retryable event instead of
// silent corruption.
#pragma once

#include <string>
#include <vector>

#include "support/subprocess.h"

namespace axc::support {

/// Argv templates describing how to reach one node.  Tokens may contain
/// `{host}`, and for fetch/push also `{src}` (remote path) / `{dst}`
/// (local path) — substituted textually inside each token, so compound
/// tokens like `{host}:{src}` work.
struct launch_template {
  /// Prefix prepended to the worker argv.  Empty = launch locally.
  std::vector<std::string> run{};
  /// Command copying a file node → coordinator.  Empty = shared
  /// filesystem.
  std::vector<std::string> fetch{};
  /// Command copying a file coordinator → node.  Empty = shared
  /// filesystem.
  std::vector<std::string> push{};

  [[nodiscard]] bool is_local() const { return run.empty(); }

  bool operator==(const launch_template&) const = default;
};

/// Launches worker processes on one node and moves files to/from it.
class worker_launcher {
 public:
  worker_launcher() = default;
  worker_launcher(launch_template tpl, std::string host)
      : tpl_(std::move(tpl)), host_(std::move(host)) {}

  /// Starts `argv` on the node with `extra_env` ("KEY=VALUE" entries)
  /// visible to it.  Local: plain subprocess::spawn.  Templated: the
  /// expanded run prefix + `/usr/bin/env KEY=VALUE...` + argv, so the env
  /// survives the hop.  The returned subprocess is the *local* end (ssh
  /// client or the worker itself) — poll/kill semantics are identical for
  /// the supervisor either way.
  [[nodiscard]] std::optional<subprocess> launch(
      const std::vector<std::string>& argv,
      const std::vector<std::string>& extra_env) const;

  /// Copies node:src -> local dst (fetch) or local src -> node:dst (push),
  /// blocking until the copy command exits.  Returns false when the
  /// command fails to start or exits non-zero (or, shared-filesystem, when
  /// the plain copy fails).
  [[nodiscard]] bool fetch_file(const std::string& src,
                                const std::string& dst) const;
  [[nodiscard]] bool push_file(const std::string& src,
                               const std::string& dst) const;

  [[nodiscard]] const launch_template& tpl() const { return tpl_; }
  [[nodiscard]] const std::string& host() const { return host_; }

  /// `{host}`/`{src}`/`{dst}` substitution over one template, textual
  /// within each token.  Exposed for tests.
  [[nodiscard]] static std::vector<std::string> expand(
      const std::vector<std::string>& tpl, const std::string& host,
      const std::string& src, const std::string& dst);

 private:
  [[nodiscard]] bool run_copy(const std::vector<std::string>& tpl,
                              const std::string& src,
                              const std::string& dst) const;

  launch_template tpl_{};
  std::string host_{};
};

}  // namespace axc::support
