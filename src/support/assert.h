// Lightweight contract checking in the spirit of the C++ Core Guidelines
// (I.6 "Prefer Expects()", I.8 "Prefer Ensures()").  Violations indicate
// programming errors and terminate via std::abort after printing context.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace axc::detail {

[[noreturn]] inline void contract_violation(const char* kind, const char* expr,
                                            const char* file, int line) {
  std::fprintf(stderr, "axc: %s failed: %s (%s:%d)\n", kind, expr, file, line);
  std::abort();
}

}  // namespace axc::detail

#define AXC_EXPECTS(cond)                                                   \
  ((cond) ? static_cast<void>(0)                                            \
          : axc::detail::contract_violation("precondition", #cond, __FILE__, \
                                            __LINE__))

#define AXC_ENSURES(cond)                                                    \
  ((cond) ? static_cast<void>(0)                                             \
          : axc::detail::contract_violation("postcondition", #cond, __FILE__, \
                                            __LINE__))

#define AXC_ASSERT(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                          \
          : axc::detail::contract_violation("assertion", #cond, __FILE__, \
                                            __LINE__))
