// Minimal fixed-size worker pool for fan-out/join parallelism.
//
// The CGP evolver evaluates the lambda mutants of each generation
// concurrently; a generation is a submit-all / wait_idle() cycle.  Workers
// are started once per pool (not per generation), tasks are plain
// std::function thunks, and wait_idle() blocks until the queue is drained
// AND every in-flight task has finished.
//
// A throwing task does NOT terminate the process: the first escaping
// exception is captured on the worker and rethrown to the submitter by the
// next wait_idle() (after the drain, so sibling tasks still complete and
// slot-indexed results stay coherent).  Later exceptions from the same
// batch are dropped — one failure report per join, like std::async.  The
// no-throw path is unchanged and allocation-free.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "support/assert.h"

namespace axc {

class thread_pool {
 public:
  explicit thread_pool(std::size_t threads) {
    AXC_EXPECTS(threads >= 1);
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  ~thread_pool() {
    {
      std::unique_lock lock(mutex_.m);
      state_.stopping = true;
    }
    work_available_.cv.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; runs on some worker, in submission order per worker
  /// pick-up (no ordering guarantee across workers).
  void submit(std::function<void()> task) {
    {
      std::unique_lock lock(mutex_.m);
      state_.queue.push_back(std::move(task));
      ++state_.pending;
    }
    work_available_.cv.notify_one();
  }

  /// Blocks until every submitted task has completed, then rethrows the
  /// first exception any of them raised (clearing it, so the pool stays
  /// usable for the next batch).
  void wait_idle() {
    std::unique_lock lock(mutex_.m);
    idle_.cv.wait(lock, [this] { return state_.pending == 0; });
    if (state_.first_error) {
      std::exception_ptr error = std::exchange(state_.first_error, nullptr);
      lock.unlock();
      std::rethrow_exception(error);
    }
  }

  /// Drops tasks that are still queued (not yet picked up by a worker) and
  /// returns how many were discarded.  In-flight tasks are unaffected, so a
  /// concurrent wait_idle() still joins them.  Cooperative-cancellation
  /// helper: flip your stop flag, then clear the backlog so cancellation
  /// does not wait behind work that has not even started.
  std::size_t clear_pending() {
    std::deque<std::function<void()>> dropped;
    {
      std::unique_lock lock(mutex_.m);
      dropped.swap(state_.queue);
      state_.pending -= dropped.size();
      if (state_.pending == 0) idle_.cv.notify_all();
    }
    // Task destructors (captured state) run outside the pool lock.
    return dropped.size();
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock lock(mutex_.m);
        work_available_.cv.wait(lock, [this] {
          return state_.stopping || !state_.queue.empty();
        });
        if (state_.queue.empty()) return;  // stopping and drained
        task = std::move(state_.queue.front());
        state_.queue.pop_front();
      }
      try {
        task();
      } catch (...) {
        std::unique_lock lock(mutex_.m);
        if (!state_.first_error) state_.first_error = std::current_exception();
      }
      {
        std::unique_lock lock(mutex_.m);
        if (--state_.pending == 0) idle_.cv.notify_all();
      }
    }
  }

  /// Every worker hammers the mutex and condition variables; padding each
  /// to its own cache line keeps a notify/lock on one from invalidating
  /// the line holding the others (or the queue) on every other core.  The
  /// queue-state block is line-aligned as a unit: its members are only
  /// ever touched under the mutex, so separating them from each other buys
  /// nothing, but separating the block from the synchronization primitives
  /// does.
  struct alignas(64) padded_mutex {
    std::mutex m;
  };
  struct alignas(64) padded_condvar {
    std::condition_variable cv;
  };
  struct alignas(64) queue_state {
    std::deque<std::function<void()>> queue;
    std::size_t pending{0};
    /// First exception captured from a task since the last wait_idle();
    /// discarded (not rethrown) if the pool is destroyed without a join.
    std::exception_ptr first_error;
    bool stopping{false};
  };
  static_assert(alignof(padded_mutex) == 64 && sizeof(padded_mutex) == 64);
  static_assert(alignof(padded_condvar) == 64 &&
                sizeof(padded_condvar) == 64);
  static_assert(alignof(queue_state) == 64);

  padded_mutex mutex_;
  padded_condvar work_available_;
  padded_condvar idle_;
  queue_state state_;
  std::vector<std::thread> workers_;
};

/// Fan-out helper: runs fn(0) .. fn(count - 1) across the pool and joins.
inline void parallel_for(thread_pool& pool, std::size_t count,
                         const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([&fn, i] { fn(i); });
  }
  pool.wait_idle();
}

}  // namespace axc
