// Deterministic fault injection for crash-recovery testing.
//
// Production code (checkpoint writers, workers, schedulers) declares named
// *injection points*; a test (or a worker process, via the AXC_FAULT
// environment variable) arms a *fault plan* that tells specific hits of
// specific points to fire.  Everything is counter-based — no clocks, no
// randomness — so "worker crashes at generation 120" or "the 2nd checkpoint
// save is truncated at byte 317" replays identically on every run, which is
// what turns kill-resume convergence into a ctest assertion.
//
// Plan grammar (directives joined by ';' or ','):
//
//   point            fire on every hit, payload 1
//   point=V          fire on every hit, payload V
//   point@K          fire on exactly the K-th hit (1-based), payload 1
//   point@K=V        fire on exactly the K-th hit, payload V
//   point@<=K        fire on hits 1..K (transient-failure shape)
//   point@<=K=V      same, payload V
//
// e.g.  AXC_FAULT='worker-crash-generation@120;session-save-truncate@2=317'
//
// Hit counters are per point name and per process; a relaunched worker
// starts fresh (that is the point: the retry must behave differently only
// because the *state on disk* differs).  When no plan is armed every hook
// is a single relaxed atomic load.
#pragma once

#include <atomic>
#include <charconv>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace axc::fault {

/// Node-level injection points for the multi-node dispatch layer
/// (core/node_pool.h, core/shard_runner.cpp).  Declared centrally because
/// tests, the coordinator, and CI fault plans all refer to them by name;
/// module-local points (worker-crash-generation, session-save-truncate,
/// store-crash-mid-index-append, ...) stay string literals at their hooks.
namespace points {
/// A launch on a node fails to start.  Payload = node index to afflict.
inline constexpr std::string_view node_launch_fail = "node-launch-fail";
/// A whole node dies mid-run: every launch on it is killed and the node is
/// quarantined.  Payload = node index.  Fired once per supervision tick.
inline constexpr std::string_view node_dead_midrun = "node-dead-midrun";
/// A fetched checkpoint arrives torn.  Payload = byte count the fetched
/// copy is truncated to before CRC validation sees it.
inline constexpr std::string_view node_fetch_torn = "node-fetch-torn";
/// Heartbeat observation is suppressed for one supervision tick, so a
/// healthy worker looks stalled to the coordinator.
inline constexpr std::string_view node_heartbeat_stall =
    "node-heartbeat-stall";
}  // namespace points

namespace detail {

struct directive {
  std::string point;
  enum class select : std::uint8_t { all, exactly, at_most } kind{select::all};
  std::uint64_t k{0};
  std::uint64_t value{1};
};

struct counter {
  std::string point;
  std::uint64_t hits{0};
};

struct registry {
  std::atomic<bool> active{false};
  std::mutex mutex;
  std::vector<directive> plan;
  std::vector<counter> counters;

  static registry& instance() {
    static registry r;
    return r;
  }
};

inline std::optional<std::uint64_t> parse_u64(std::string_view s) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

/// One directive; returns nullopt on a malformed token (the whole token is
/// ignored — fault plans are test scaffolding, not user input).
inline std::optional<directive> parse_directive(std::string_view token) {
  directive d;
  const std::size_t at = token.find('@');
  if (at == std::string_view::npos) {
    // point / point=V
    const std::size_t eq = token.find('=');
    d.point = std::string(
        token.substr(0, eq == std::string_view::npos ? token.size() : eq));
    if (d.point.empty()) return std::nullopt;
    if (eq != std::string_view::npos) {
      const auto v = parse_u64(token.substr(eq + 1));
      if (!v) return std::nullopt;
      d.value = *v;
    }
    return d;
  }
  // point@K / point@K=V / point@<=K / point@<=K=V.  The payload '=' is
  // searched only after the optional "<=" so the operator's own '=' is
  // never mistaken for it.
  d.point = std::string(token.substr(0, at));
  if (d.point.empty() || d.point.find('=') != std::string::npos) {
    return std::nullopt;
  }
  std::string_view rest = token.substr(at + 1);
  if (rest.substr(0, 2) == "<=") {
    d.kind = directive::select::at_most;
    rest.remove_prefix(2);
  } else {
    d.kind = directive::select::exactly;
  }
  const std::size_t eq = rest.find('=');
  const auto k = parse_u64(
      rest.substr(0, eq == std::string_view::npos ? rest.size() : eq));
  if (!k) return std::nullopt;
  d.k = *k;
  if (eq != std::string_view::npos) {
    const auto v = parse_u64(rest.substr(eq + 1));
    if (!v) return std::nullopt;
    d.value = *v;
  }
  return d;
}

}  // namespace detail

/// True when any fault plan is armed — the only cost hooks pay when testing
/// is off.
[[nodiscard]] inline bool active() {
  return detail::registry::instance().active.load(std::memory_order_relaxed);
}

/// Replaces the fault plan ("" disarms).  Malformed directives are skipped.
inline void configure(std::string_view spec) {
  auto& r = detail::registry::instance();
  std::scoped_lock lock(r.mutex);
  r.plan.clear();
  r.counters.clear();
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find_first_of(";,", start);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view token = spec.substr(start, end - start);
    if (!token.empty()) {
      if (auto d = detail::parse_directive(token)) {
        r.plan.push_back(*std::move(d));
      }
    }
    start = end + 1;
  }
  r.active.store(!r.plan.empty(), std::memory_order_relaxed);
}

/// Arms the plan from the AXC_FAULT environment variable (no-op when
/// unset/empty) — how worker processes inherit a coordinator's fault plan.
inline void configure_from_env() {
  if (const char* spec = std::getenv("AXC_FAULT")) configure(spec);
}

inline void clear() { configure(""); }

/// Records one hit of `point`; returns the directive payload when an armed
/// directive selects this hit, nullopt otherwise.  The injection-point hook:
///
///   if (axc::fault::fire("session-save-fail")) return false;
///   if (auto k = axc::fault::fire("session-save-truncate")) truncate(*k);
[[nodiscard]] inline std::optional<std::uint64_t> fire(
    std::string_view point) {
  if (!active()) return std::nullopt;
  auto& r = detail::registry::instance();
  std::scoped_lock lock(r.mutex);
  std::uint64_t hit = 0;
  for (auto& c : r.counters) {
    if (c.point == point) {
      hit = ++c.hits;
      break;
    }
  }
  if (hit == 0) {
    r.counters.push_back({std::string(point), 1});
    hit = 1;
  }
  for (const auto& d : r.plan) {
    if (d.point != point) continue;
    switch (d.kind) {
      case detail::directive::select::all:
        return d.value;
      case detail::directive::select::exactly:
        if (hit == d.k) return d.value;
        break;
      case detail::directive::select::at_most:
        if (hit <= d.k) return d.value;
        break;
    }
  }
  return std::nullopt;
}

/// Payload of the first directive armed for `point`, without consuming a
/// hit; nullopt when none.
[[nodiscard]] inline std::optional<std::uint64_t> peek(
    std::string_view point) {
  if (!active()) return std::nullopt;
  auto& r = detail::registry::instance();
  std::scoped_lock lock(r.mutex);
  for (const auto& d : r.plan) {
    if (d.point == point) return d.value;
  }
  return std::nullopt;
}

/// Hits recorded for `point` so far (0 when never fired or plan disarmed).
[[nodiscard]] inline std::uint64_t hits(std::string_view point) {
  auto& r = detail::registry::instance();
  std::scoped_lock lock(r.mutex);
  for (const auto& c : r.counters) {
    if (c.point == point) return c.hits;
  }
  return 0;
}

}  // namespace axc::fault
