// Deterministic, seedable pseudo-random number generation used across the
// whole library (CGP mutation, workload generation, synthetic datasets).
//
// We implement xoshiro256** (Blackman & Vigna) seeded through splitmix64.
// A self-contained generator keeps every experiment bit-reproducible across
// standard-library implementations, which std::mt19937_64 distributions do
// not guarantee.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "support/assert.h"

namespace axc {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality 64-bit generator.
/// Satisfies std::uniform_random_bit_generator.
class rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr rng(std::uint64_t seed = 0xa11ce5eedULL) { reseed(seed); }

  constexpr void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire reduction).
  constexpr std::uint64_t below(std::uint64_t bound) {
    AXC_EXPECTS(bound > 0);
    // 128-bit multiply-shift; rejection keeps the result exactly uniform.
    auto m = static_cast<unsigned __int128>((*this)()) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        m = static_cast<unsigned __int128>((*this)()) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t between(std::int64_t lo, std::int64_t hi) {
    AXC_EXPECTS(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1).
  constexpr double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform01();
  }

  /// Standard normal via Box-Muller (two uniforms per call; the second
  /// variate is discarded so results do not depend on caller interleaving).
  double normal() {
    double u1 = uniform01();
    while (u1 <= 0.0) u1 = uniform01();
    const double u2 = uniform01();
    constexpr double two_pi = 6.28318530717958647692;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(two_pi * u2);
  }

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Bernoulli trial with success probability p.
  constexpr bool chance(double p) { return uniform01() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace axc
