// Error metrics for approximate multipliers.
//
// Central definition (the paper, Sec. III-A, with the normalization fixed so
// that 0 <= WMED <= 1 actually holds — see DESIGN.md "Key reproduction
// decisions"):
//
//   WMED_D(M~) = sum_a D(a) * [ 2^-w * sum_b |a*b - M~(a,b)| ] / 2^(2w)
//
// i.e. the D-weighted mean (over operand A) of the mean absolute error over
// operand B, normalized by the output range.  With D uniform this reduces to
// the conventional normalized mean error distance, so "WMED under Du" and
// "MED" coincide by construction.
//
// All functions take product tables in the layout of mult_spec
// (entry[(b << w) | a]).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dist/pmf.h"
#include "metrics/mult_spec.h"

namespace axc::metrics {

/// Weighted mean error distance in [0, 1].  `d` must have 2^w entries keyed
/// by operand-A bit pattern.
double wmed(std::span<const std::int64_t> exact,
            std::span<const std::int64_t> approx, const mult_spec& spec,
            const dist::pmf& d);

/// Conventional normalized mean error distance (== wmed with uniform D).
double med(std::span<const std::int64_t> exact,
           std::span<const std::int64_t> approx, const mult_spec& spec);

/// Mean absolute error in output LSBs (not normalized).
double mean_absolute_error(std::span<const std::int64_t> exact,
                           std::span<const std::int64_t> approx);

/// Worst-case absolute error, normalized by the output range.
double worst_case_error(std::span<const std::int64_t> exact,
                        std::span<const std::int64_t> approx,
                        const mult_spec& spec);

/// Mean relative error; pairs with zero exact product are skipped,
/// matching common practice (e.g. EvoApprox8b's MRE).
double mean_relative_error(std::span<const std::int64_t> exact,
                           std::span<const std::int64_t> approx);

/// Fraction of input pairs with a wrong product.
double error_rate(std::span<const std::int64_t> exact,
                  std::span<const std::int64_t> approx);

/// Signed mean error (approx - exact), normalized by output range; reveals
/// systematic under/over-estimation.
double error_bias(std::span<const std::int64_t> exact,
                  std::span<const std::int64_t> approx,
                  const mult_spec& spec);

/// Per-pair normalized absolute error |exact - approx| / 2^(2w), same layout
/// as the product tables.  This is the raw material of the paper's Fig. 4
/// heat maps.
std::vector<double> error_map(std::span<const std::int64_t> exact,
                              std::span<const std::int64_t> approx,
                              const mult_spec& spec);

/// Block-averaged error map (cells x cells grid) for compact textual
/// rendering of Fig. 4.
std::vector<double> downsample_error_map(std::span<const double> map,
                                         const mult_spec& spec,
                                         std::size_t cells);

}  // namespace axc::metrics
