#include "metrics/error_metrics.h"

#include <algorithm>
#include <cmath>

#include "support/assert.h"

namespace axc::metrics {

namespace {

void check_tables(std::span<const std::int64_t> exact,
                  std::span<const std::int64_t> approx,
                  const mult_spec& spec) {
  AXC_EXPECTS(exact.size() == spec.pair_count());
  AXC_EXPECTS(approx.size() == spec.pair_count());
}

}  // namespace

double wmed(std::span<const std::int64_t> exact,
            std::span<const std::int64_t> approx, const mult_spec& spec,
            const dist::pmf& d) {
  check_tables(exact, approx, spec);
  AXC_EXPECTS(d.size() == spec.operand_count());

  const std::size_t n = spec.operand_count();
  double acc = 0.0;
  for (std::size_t a = 0; a < n; ++a) {
    if (d[a] == 0.0) continue;
    double row = 0.0;
    for (std::size_t b = 0; b < n; ++b) {
      const std::size_t v = (b << spec.width) | a;
      row += static_cast<double>(std::llabs(exact[v] - approx[v]));
    }
    acc += d[a] * row;
  }
  return acc / (static_cast<double>(n) * spec.output_scale());
}

double med(std::span<const std::int64_t> exact,
           std::span<const std::int64_t> approx, const mult_spec& spec) {
  return wmed(exact, approx, spec,
              dist::pmf::uniform(spec.operand_count()));
}

double mean_absolute_error(std::span<const std::int64_t> exact,
                           std::span<const std::int64_t> approx) {
  AXC_EXPECTS(exact.size() == approx.size() && !exact.empty());
  double acc = 0.0;
  for (std::size_t v = 0; v < exact.size(); ++v) {
    acc += static_cast<double>(std::llabs(exact[v] - approx[v]));
  }
  return acc / static_cast<double>(exact.size());
}

double worst_case_error(std::span<const std::int64_t> exact,
                        std::span<const std::int64_t> approx,
                        const mult_spec& spec) {
  check_tables(exact, approx, spec);
  std::int64_t worst = 0;
  for (std::size_t v = 0; v < exact.size(); ++v) {
    worst = std::max<std::int64_t>(worst, std::llabs(exact[v] - approx[v]));
  }
  return static_cast<double>(worst) / spec.output_scale();
}

double mean_relative_error(std::span<const std::int64_t> exact,
                           std::span<const std::int64_t> approx) {
  AXC_EXPECTS(exact.size() == approx.size() && !exact.empty());
  double acc = 0.0;
  std::size_t counted = 0;
  for (std::size_t v = 0; v < exact.size(); ++v) {
    if (exact[v] == 0) continue;
    acc += static_cast<double>(std::llabs(exact[v] - approx[v])) /
           std::abs(static_cast<double>(exact[v]));
    ++counted;
  }
  return counted == 0 ? 0.0 : acc / static_cast<double>(counted);
}

double error_rate(std::span<const std::int64_t> exact,
                  std::span<const std::int64_t> approx) {
  AXC_EXPECTS(exact.size() == approx.size() && !exact.empty());
  std::size_t wrong = 0;
  for (std::size_t v = 0; v < exact.size(); ++v) {
    if (exact[v] != approx[v]) ++wrong;
  }
  return static_cast<double>(wrong) / static_cast<double>(exact.size());
}

double error_bias(std::span<const std::int64_t> exact,
                  std::span<const std::int64_t> approx,
                  const mult_spec& spec) {
  check_tables(exact, approx, spec);
  double acc = 0.0;
  for (std::size_t v = 0; v < exact.size(); ++v) {
    acc += static_cast<double>(approx[v] - exact[v]);
  }
  return acc / (static_cast<double>(exact.size()) * spec.output_scale());
}

std::vector<double> error_map(std::span<const std::int64_t> exact,
                              std::span<const std::int64_t> approx,
                              const mult_spec& spec) {
  check_tables(exact, approx, spec);
  std::vector<double> map(exact.size());
  for (std::size_t v = 0; v < exact.size(); ++v) {
    map[v] = static_cast<double>(std::llabs(exact[v] - approx[v])) /
             spec.output_scale();
  }
  return map;
}

std::vector<double> downsample_error_map(std::span<const double> map,
                                         const mult_spec& spec,
                                         std::size_t cells) {
  AXC_EXPECTS(map.size() == spec.pair_count());
  const std::size_t n = spec.operand_count();
  AXC_EXPECTS(cells > 0 && cells <= n && n % cells == 0);
  const std::size_t block = n / cells;

  std::vector<double> grid(cells * cells, 0.0);
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t a = 0; a < n; ++a) {
      grid[(b / block) * cells + (a / block)] += map[(b << spec.width) | a];
    }
  }
  const double per_cell = static_cast<double>(block * block);
  for (double& g : grid) g /= per_cell;
  return grid;
}

}  // namespace axc::metrics
