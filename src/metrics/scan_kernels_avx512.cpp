// AVX-512 backend (AVX-512F + VPOPCNTDQ).  CMake compiles this TU with
// -mavx512f -mavx512vpopcntdq when the compiler accepts them; dispatch only
// selects it on CPUs reporting both features (Ice Lake and newer — Skylake-SP
// class machines lack VPOPCNTDQ and run the AVX2 kernel instead).
#include "metrics/scan_kernels.h"

namespace axc::metrics::detail {

#if defined(__AVX512F__) && defined(__AVX512VPOPCNTDQ__)

namespace {

void scan_batch_avx512(const std::uint64_t* exact_planes,
                       const std::uint64_t* const* out_rows, unsigned planes,
                       unsigned result_bits, bool result_signed,
                       std::int64_t* totals) {
  scan_block_batch<simd::vu64x8<simd::level::avx512>>(
      exact_planes, out_rows, planes, result_bits, result_signed, totals);
}

void scan_multi_avx512(const std::uint64_t* exact_planes,
                       const std::uint64_t* const* out_rows, unsigned planes,
                       unsigned result_bits, bool result_signed,
                       const std::uint32_t* live, std::size_t live_count,
                       std::int64_t* totals) {
  scan_block_multi<simd::vu64x8<simd::level::avx512>>(
      exact_planes, out_rows, planes, result_bits, result_signed, live,
      live_count, totals);
}

}  // namespace

scan_batch_fn scan_kernel_avx512() { return &scan_batch_avx512; }
scan_multi_fn scan_multi_kernel_avx512() { return &scan_multi_avx512; }

#else

scan_batch_fn scan_kernel_avx512() { return nullptr; }
scan_multi_fn scan_multi_kernel_avx512() { return nullptr; }

#endif

}  // namespace axc::metrics::detail
