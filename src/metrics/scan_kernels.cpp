// Scalar backend + the runtime dispatch tables.  This TU is compiled with
// the project's generic flags, so the scalar kernel runs anywhere (its
// plain loops still autovectorize to the baseline ISA, e.g. SSE2 or NEON).
#include "metrics/scan_kernels.h"

namespace axc::metrics {

namespace detail {

namespace {

void scan_batch_scalar(const std::uint64_t* exact_planes,
                       const std::uint64_t* const* out_rows, unsigned planes,
                       unsigned result_bits, bool result_signed,
                       std::int64_t* totals) {
  scan_block_batch<simd::vu64x8<simd::level::scalar>>(
      exact_planes, out_rows, planes, result_bits, result_signed, totals);
}

void scan_multi_scalar(const std::uint64_t* exact_planes,
                       const std::uint64_t* const* out_rows, unsigned planes,
                       unsigned result_bits, bool result_signed,
                       const std::uint32_t* live, std::size_t live_count,
                       std::int64_t* totals) {
  scan_block_multi<simd::vu64x8<simd::level::scalar>>(
      exact_planes, out_rows, planes, result_bits, result_signed, live,
      live_count, totals);
}

}  // namespace

scan_batch_fn scan_kernel_scalar() { return &scan_batch_scalar; }
scan_multi_fn scan_multi_kernel_scalar() { return &scan_multi_scalar; }

}  // namespace detail

bool scan_level_available(simd::level l) {
  switch (l) {
    case simd::level::automatic:
      return true;
    case simd::level::scalar:
      return detail::scan_kernel_scalar() != nullptr;
    case simd::level::avx2:
      return detail::scan_kernel_avx2() != nullptr &&
             simd::cpu_supports(simd::level::avx2);
    case simd::level::avx512:
      return detail::scan_kernel_avx512() != nullptr &&
             simd::cpu_supports(simd::level::avx512);
  }
  return false;
}

simd::level best_scan_level() {
  if (scan_level_available(simd::level::avx512)) return simd::level::avx512;
  if (scan_level_available(simd::level::avx2)) return simd::level::avx2;
  return simd::level::scalar;
}

simd::level resolve_scan_level(simd::level requested) {
  return simd::resolve_level(requested, scan_level_available);
}

scan_batch_fn scan_kernel(simd::level resolved) {
  scan_batch_fn kernel = nullptr;
  switch (resolved) {
    case simd::level::avx512:
      kernel = detail::scan_kernel_avx512();
      break;
    case simd::level::avx2:
      kernel = detail::scan_kernel_avx2();
      break;
    default:
      break;
  }
  return kernel != nullptr ? kernel : detail::scan_kernel_scalar();
}

scan_multi_fn scan_multi_kernel(simd::level resolved) {
  scan_multi_fn kernel = nullptr;
  switch (resolved) {
    case simd::level::avx512:
      kernel = detail::scan_multi_kernel_avx512();
      break;
    case simd::level::avx2:
      kernel = detail::scan_multi_kernel_avx2();
      break;
    default:
      break;
  }
  return kernel != nullptr ? kernel : detail::scan_multi_kernel_scalar();
}

}  // namespace axc::metrics
