#include "metrics/mult_spec.h"

#include "circuit/simulator.h"
#include "support/assert.h"

namespace axc::metrics {

std::vector<std::int64_t> exact_product_table(const mult_spec& spec) {
  const std::size_t n = spec.operand_count();
  std::vector<std::int64_t> table(spec.pair_count());
  for (std::size_t b = 0; b < n; ++b) {
    const std::int64_t vb = spec.operand_value(b);
    for (std::size_t a = 0; a < n; ++a) {
      table[(b << spec.width) | a] = spec.operand_value(a) * vb;
    }
  }
  return table;
}

std::vector<std::int64_t> product_table(const circuit::netlist& nl,
                                        const mult_spec& spec) {
  AXC_EXPECTS(nl.num_inputs() == 2 * spec.width);
  AXC_EXPECTS(nl.num_outputs() == 2 * spec.width);
  const std::vector<std::uint64_t> raw = circuit::evaluate_exhaustive(nl);
  std::vector<std::int64_t> table(raw.size());
  for (std::size_t v = 0; v < raw.size(); ++v) {
    table[v] = spec.product_value(raw[v]);
  }
  return table;
}

}  // namespace axc::metrics
