#include "metrics/mult_spec.h"

#include "metrics/compiled_table.h"

namespace axc::metrics {

std::vector<std::int64_t> exact_product_table(const mult_spec& spec) {
  const std::size_t n = spec.operand_count();
  std::vector<std::int64_t> table(spec.pair_count());
  for (std::size_t b = 0; b < n; ++b) {
    const std::int64_t vb = spec.operand_value(b);
    for (std::size_t a = 0; a < n; ++a) {
      table[(b << spec.width) | a] = spec.operand_value(a) * vb;
    }
  }
  return table;
}

std::vector<std::int64_t> product_table(const circuit::netlist& nl,
                                        const mult_spec& spec) {
  return result_table(nl, spec);
}

}  // namespace axc::metrics
