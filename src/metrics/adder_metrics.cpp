#include "metrics/adder_metrics.h"

#include <cstdlib>

#include "metrics/compiled_table.h"
#include "support/assert.h"

namespace axc::metrics {

std::vector<std::int64_t> exact_sum_table(const adder_spec& spec) {
  const std::size_t n = spec.operand_count();
  std::vector<std::int64_t> table(spec.pair_count());
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t a = 0; a < n; ++a) {
      table[(b << spec.width) | a] = static_cast<std::int64_t>(a + b);
    }
  }
  return table;
}

std::vector<std::int64_t> sum_table(const circuit::netlist& nl,
                                    const adder_spec& spec) {
  return result_table(nl, spec);
}

double adder_wmed(std::span<const std::int64_t> exact,
                  std::span<const std::int64_t> approx,
                  const adder_spec& spec, const dist::pmf& d) {
  AXC_EXPECTS(exact.size() == spec.pair_count());
  AXC_EXPECTS(approx.size() == spec.pair_count());
  AXC_EXPECTS(d.size() == spec.operand_count());

  const std::size_t n = spec.operand_count();
  double acc = 0.0;
  for (std::size_t a = 0; a < n; ++a) {
    if (d[a] == 0.0) continue;
    double row = 0.0;
    for (std::size_t b = 0; b < n; ++b) {
      const std::size_t v = (b << spec.width) | a;
      row += static_cast<double>(std::llabs(exact[v] - approx[v]));
    }
    acc += d[a] * row;
  }
  return acc / (static_cast<double>(n) * spec.output_scale());
}

}  // namespace axc::metrics
