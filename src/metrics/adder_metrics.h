// WMED for approximate adders — the method applied to a second component
// class (unsigned w+w -> w+1 adders), demonstrating that the metric is not
// multiplier-specific.  Layout mirrors mult_spec: entry[(b << w) | a].
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/netlist.h"
#include "dist/pmf.h"

namespace axc::metrics {

struct adder_spec {
  unsigned width{8};

  [[nodiscard]] std::size_t operand_count() const {
    return std::size_t{1} << width;
  }
  [[nodiscard]] std::size_t pair_count() const {
    return std::size_t{1} << (2 * width);
  }
  /// WMED normalization: the output range 2^(w+1).
  [[nodiscard]] double output_scale() const {
    return static_cast<double>(std::uint64_t{1} << (width + 1));
  }

  // component_spec interface (metrics/component_spec.h): an adder drives
  // w+1 unsigned sum bits.
  [[nodiscard]] unsigned result_bits() const { return width + 1; }
  [[nodiscard]] bool result_is_signed() const { return false; }
  [[nodiscard]] std::int64_t result_value(std::uint64_t pattern) const {
    const auto mask = (std::uint64_t{1} << (width + 1)) - 1;
    return static_cast<std::int64_t>(pattern & mask);
  }

  friend bool operator==(const adder_spec&, const adder_spec&) = default;
};

/// entry[(b << w) | a] = a + b.
std::vector<std::int64_t> exact_sum_table(const adder_spec& spec);

/// component_spec exact table hook.
inline std::vector<std::int64_t> exact_result_table(const adder_spec& spec) {
  return exact_sum_table(spec);
}

/// Sum table of a candidate adder netlist (w+1 outputs, unsigned decode).
std::vector<std::int64_t> sum_table(const circuit::netlist& nl,
                                    const adder_spec& spec);

/// WMED over adders: D-weighted (operand A) mean (operand B) absolute sum
/// error, normalized by the output range.  In [0, 1].
double adder_wmed(std::span<const std::int64_t> exact,
                  std::span<const std::int64_t> approx,
                  const adder_spec& spec, const dist::pmf& d);

}  // namespace axc::metrics
