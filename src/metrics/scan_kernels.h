// Runtime-dispatched batched error-plane scan kernels — the SIMD inner loop
// of the WMED sweep (see README.md in this directory).
//
// One kernel call scores one full sim_program<8> pass: all eight 64-assignment
// blocks at once.  For every result plane p it forms the bit-plane difference
// exact - candidate with a vectorized borrow-propagate subtract, conditionally
// negates the 64+8 signed differences, and folds the absolute values into
// eight per-block int64 totals via weighted popcounts — exact integer
// arithmetic throughout, so every backend returns bit-identical totals.
//
// The kernel body is written once against simd::vu64x8<level> (a template in
// support/simd.h) and instantiated per backend in its own translation unit
// compiled with the matching -m flags (scan_kernels.cpp / _avx2.cpp /
// _avx512.cpp), so a *generic* release build carries all kernels and picks
// the strongest one the running CPU supports at evaluator construction time.
// Dispatch rules: an `automatic` request honours the AXC_SIMD environment
// variable (scalar|avx2|avx512|auto) and otherwise takes the best available
// level; an explicit request is clamped down to what is compiled in AND
// executable here, never up.
#pragma once

#include <cstddef>
#include <cstdint>

#include "support/simd.h"

namespace axc::metrics {

/// Upper bound on result planes a kernel handles (result_bits + 2 headroom
/// for 32-bit results — matches the evaluator's signed-diff layout).
inline constexpr unsigned kMaxScanPlanes = 34;

/// One batched pass: exact_planes holds `planes` lane-major rows of eight
/// words (the pass's eight blocks), out_rows[p] points at candidate output
/// plane p's eight-word lane row (p < result_bits), and totals[0..7] receive
/// the per-block summed |exact - candidate| in exact int64 arithmetic.
using scan_batch_fn = void (*)(const std::uint64_t* exact_planes,
                               const std::uint64_t* const* out_rows,
                               unsigned planes, unsigned result_bits,
                               bool result_signed, std::int64_t* totals);

/// Multi-candidate pass: one kernel call scores the same pass for several
/// candidates against the SAME exact planes — the shared planes are read
/// while L1-hot instead of being re-streamed once per candidate, which is
/// the bandwidth win of lambda-batch evaluation.  `out_rows` is
/// candidate-major: out_rows[c * result_bits + o] is candidate c's output
/// plane o row.  `live[0..live_count)` lists the candidate indices still
/// sweeping (candidates abort independently); totals[i * 8 + 0..7] receive
/// the per-block totals of candidate live[i].  Each candidate's totals are
/// bit-identical to a scan_batch_fn call on its rows alone.
using scan_multi_fn = void (*)(const std::uint64_t* exact_planes,
                               const std::uint64_t* const* out_rows,
                               unsigned planes, unsigned result_bits,
                               bool result_signed, const std::uint32_t* live,
                               std::size_t live_count, std::int64_t* totals);

/// Whether a kernel for `l` is compiled into this binary AND the running
/// CPU can execute it.  scalar is always available.
[[nodiscard]] bool scan_level_available(simd::level l);

/// Strongest available level (what `automatic` resolves to absent AXC_SIMD).
[[nodiscard]] simd::level best_scan_level();

/// Resolves a request to a dispatchable level: automatic -> AXC_SIMD
/// override if set and valid, else best_scan_level(); explicit levels are
/// clamped down to the strongest available level not above the request.
[[nodiscard]] simd::level resolve_scan_level(simd::level requested);

/// The kernel for a *resolved* level (falls back to scalar if handed an
/// unavailable one, so callers can never dispatch into an illegal ISA).
[[nodiscard]] scan_batch_fn scan_kernel(simd::level resolved);
/// The multi-candidate kernel for a resolved level (same fallback rules).
[[nodiscard]] scan_multi_fn scan_multi_kernel(simd::level resolved);

namespace detail {

/// Backend entry points; each returns nullptr when its TU was compiled
/// without the backend's ISA flags (non-x86 targets, old compilers).
[[nodiscard]] scan_batch_fn scan_kernel_scalar();
[[nodiscard]] scan_batch_fn scan_kernel_avx2();
[[nodiscard]] scan_batch_fn scan_kernel_avx512();
[[nodiscard]] scan_multi_fn scan_multi_kernel_scalar();
[[nodiscard]] scan_multi_fn scan_multi_kernel_avx2();
[[nodiscard]] scan_multi_fn scan_multi_kernel_avx512();

/// The generic kernel body, instantiated by each backend TU.  V is a
/// simd::vu64x8 specialization.
template <typename V>
void scan_block_batch(const std::uint64_t* exact_planes,
                      const std::uint64_t* const* out_rows, unsigned planes,
                      unsigned result_bits, bool result_signed,
                      std::int64_t* totals) {
  // diff = exact - candidate per plane, batched borrow-propagate over all
  // eight blocks (512 assignments) at once.  Planes above result_bits read
  // the candidate's sign extension (its top plane when signed, zero
  // otherwise), mirroring the per-lane scalar path exactly.
  V diff[kMaxScanPlanes];
  V borrow = V::zero();
  const V cext =
      result_signed ? V::load(out_rows[result_bits - 1]) : V::zero();
  for (unsigned p = 0; p < planes; ++p) {
    const V e = V::load(exact_planes + p * 8);
    const V c = p < result_bits ? V::load(out_rows[p]) : cext;
    const V x = e ^ c;
    diff[p] = x ^ borrow;
    borrow = V::andnot(e, c) | V::andnot(x, borrow);
  }

  // |diff|: two's-complement negate of the assignments whose sign plane is
  // set, folded into per-block totals via weighted popcounts.  Counts stay
  // far below 2^63 (planes <= kMaxScanPlanes, 64 assignments/plane), so the
  // unsigned lane accumulator reinterprets losslessly as int64.
  const V sign = diff[planes - 1];
  V carry = sign;
  V acc = V::zero();
  for (unsigned p = 0; p < planes; ++p) {
    const V x = diff[p] ^ sign;
    const V ap = x ^ carry;
    carry = x & carry;
    acc = acc + ap.popcount().shl(p);
  }
  acc.store(reinterpret_cast<std::uint64_t*>(totals));
}

/// The multi-candidate body: the scan_block_batch arithmetic per live
/// candidate with the candidate loop innermost-but-one, so the shared exact
/// planes (loaded per candidate) are still resident in L1 on every
/// iteration after the first.  Per-candidate results are bit-identical to a
/// standalone scan_block_batch call by construction (same instruction
/// sequence per candidate, no cross-candidate arithmetic).
template <typename V>
void scan_block_multi(const std::uint64_t* exact_planes,
                      const std::uint64_t* const* out_rows, unsigned planes,
                      unsigned result_bits, bool result_signed,
                      const std::uint32_t* live, std::size_t live_count,
                      std::int64_t* totals) {
  for (std::size_t i = 0; i < live_count; ++i) {
    scan_block_batch<V>(exact_planes, out_rows + live[i] * result_bits,
                        planes, result_bits, result_signed, totals + i * 8);
  }
}

}  // namespace detail

}  // namespace axc::metrics
