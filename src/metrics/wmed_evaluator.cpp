#include "metrics/wmed_evaluator.h"

#include <algorithm>
#include <bit>
#include <numeric>
#include <utility>

#include "support/assert.h"

namespace axc::metrics {

template <component_spec Spec>
std::shared_ptr<const typename basic_wmed_evaluator<Spec>::shared_state>
basic_wmed_evaluator<Spec>::make_shared_state(const Spec& spec,
                                              const dist::pmf& d) {
  AXC_EXPECTS(d.size() == spec.operand_count());
  AXC_EXPECTS(2 * spec.width >= 6);  // at least one full 64-wide block

  auto state = std::make_shared<shared_state>();
  state->spec = spec;
  state->exact = exact_result_table(spec);
  const double denom =
      static_cast<double>(spec.operand_count()) * spec.output_scale();
  state->weight.resize(d.size());
  for (std::size_t a = 0; a < d.size(); ++a) state->weight[a] = d[a] / denom;

  if (spec.width < 6) return state;  // small widths use the reference sweep

  // --- operand-major exact result planes --------------------------------
  // Block index: (a << (w-6)) | bhi with bhi = operand B >> 6; the 64
  // in-word slots enumerate B's low six bits, so operand A is constant per
  // block.
  const unsigned w = spec.width;
  const std::size_t bhi_count = std::size_t{1} << (w - 6);
  state->planes = spec.result_bits() + 2;  // signed diff without wraparound
  state->block_count = std::size_t{1} << (2 * w - 6);
  // block_count is a power of two >= 64, so passes of kLanes blocks tile it
  // exactly — the sweep has no tail pass.
  static_assert((std::size_t{1} << 6) % kLanes == 0);
  state->pass_count = state->block_count / kLanes;
  AXC_EXPECTS(state->planes <= kMaxScanPlanes);

  // Block-major staging layout first; re-laid into sweep order below once
  // the visit order is known.
  std::vector<std::uint64_t> block_planes(state->block_count * state->planes,
                                          0);
  for (std::size_t a = 0; a < spec.operand_count(); ++a) {
    for (std::size_t bhi = 0; bhi < bhi_count; ++bhi) {
      const std::size_t block = (a << (w - 6)) | bhi;
      std::uint64_t* const pl = &block_planes[block * state->planes];
      for (std::size_t t = 0; t < 64; ++t) {
        const std::size_t b_op = (bhi << 6) | t;
        // Two's-complement bits sign-extend negative exact results across
        // all planes for free.
        const auto bits =
            static_cast<std::uint64_t>(state->exact[(b_op << w) | a]);
        for (std::size_t p = 0; p < state->planes; ++p) {
          pl[p] |= ((bits >> p) & 1) << t;
        }
      }
    }
  }

  // --- distribution-ordered sweep ---------------------------------------
  // Heaviest D(a) mass first: on infeasible mutants the early-abort bound
  // accumulates fastest and trips after the fewest blocks.  Ties (and the
  // uniform distribution) fall back to ascending a for determinism.
  std::vector<std::uint32_t> a_order(spec.operand_count());
  std::iota(a_order.begin(), a_order.end(), 0u);
  std::stable_sort(a_order.begin(), a_order.end(),
                   [&state](std::uint32_t x, std::uint32_t y) {
                     return state->weight[x] > state->weight[y];
                   });
  state->block_order.reserve(state->block_count);
  for (const std::uint32_t a : a_order) {
    for (std::size_t bhi = 0; bhi < bhi_count; ++bhi) {
      state->block_order.push_back(
          static_cast<std::uint32_t>((std::size_t{a} << (w - 6)) | bhi));
    }
  }

  // --- precompiled sweep-order planes -----------------------------------
  // Exact result planes re-laid lane-major in visit order (one contiguous
  // planes x kLanes tile per pass, vector-loadable by the batch kernel) and
  // the primary-input planes the simulator consumes per pass, so sweeps do
  // no per-pass broadcasting or index math at all.
  state->exact_planes.resize(state->block_count * state->planes);
  state->input_planes.resize(state->block_count * 2 * w);
  const std::size_t bhi_mask = bhi_count - 1;
  for (std::size_t pos = 0; pos < state->block_count; ++pos) {
    const std::uint32_t block = state->block_order[pos];
    const std::size_t pass = pos / kLanes;
    const std::size_t lane = pos % kLanes;

    const std::uint64_t* const src = &block_planes[block * state->planes];
    std::uint64_t* const dst =
        &state->exact_planes[pass * state->planes * kLanes];
    for (std::size_t p = 0; p < state->planes; ++p) {
      dst[p * kLanes + lane] = src[p];
    }

    const std::size_t a = block >> (w - 6);
    const std::size_t bhi = block & bhi_mask;
    std::uint64_t* const in = &state->input_planes[pass * 2 * w * kLanes];
    for (unsigned i = 0; i < w; ++i) {
      in[i * kLanes + lane] = (a >> i) & 1 ? ~std::uint64_t{0} : 0;
    }
    for (unsigned j = 0; j < 6; ++j) {
      in[(w + j) * kLanes + lane] = circuit::exhaustive_input_word(j, 0);
    }
    for (unsigned j = 6; j < w; ++j) {
      in[(w + j) * kLanes + lane] =
          (bhi >> (j - 6)) & 1 ? ~std::uint64_t{0} : 0;
    }
  }
  return state;
}

template <component_spec Spec>
basic_wmed_evaluator<Spec>::basic_wmed_evaluator(const Spec& spec,
                                                 const dist::pmf& d,
                                                 simd::level simd)
    : basic_wmed_evaluator(make_shared_state(spec, d), simd) {}

template <component_spec Spec>
basic_wmed_evaluator<Spec>::basic_wmed_evaluator(
    std::shared_ptr<const shared_state> shared, simd::level simd)
    : shared_(std::move(shared)) {
  AXC_EXPECTS(shared_ != nullptr);
  simd_level_ = resolve_scan_level(simd);
  kernel_ = scan_kernel(simd_level_);
  multi_kernel_ = scan_multi_kernel(simd_level_);
  // One coherent backend for the whole sweep: the simulator's step executor
  // follows the scan level (clamped by its own availability).
  program_.set_simd_level(simd_level_);
  err_sums_.resize(shared_->spec.operand_count());
}

template <component_spec Spec>
double basic_wmed_evaluator<Spec>::weighted_total(
    const std::int64_t* sums) const {
  double acc = 0.0;
  for (std::size_t a = 0; a < shared_->weight.size(); ++a) {
    acc += shared_->weight[a] * static_cast<double>(sums[a]);
  }
  return acc;
}

template <component_spec Spec>
double basic_wmed_evaluator<Spec>::sweep(circuit::sim_program<kLanes>& program,
                                         double abort_above) {
  const shared_state& s = *shared_;
  const unsigned w = s.spec.width;
  const unsigned no = s.spec.result_bits();
  const unsigned planes = static_cast<unsigned>(s.planes);
  const bool sgn = s.spec.result_is_signed();

  // Candidate output plane rows are stable across passes — resolve once.
  out_rows_.resize(no);
  program.output_rows(out_rows_);

  const std::size_t in_stride = 2 * std::size_t{w} * kLanes;
  const std::uint64_t* in_planes = s.input_planes.data();
  const std::uint64_t* exact_planes = s.exact_planes.data();
  const std::uint32_t* order = s.block_order.data();
  // block_order groups each operand A's 2^(w-6) blocks into one aligned
  // run, so A's first visit position is the run start — assign there
  // instead of zero-filling err_sums_ up front (the fill is a measurable
  // fixed cost on the abort-dominated mutant path).
  const std::size_t first_mask = (std::size_t{1} << (w - 6)) - 1;
  std::int64_t totals[kLanes];

  // Running abort accumulator; the completed sweep instead returns the
  // fixed-order reduction, which is independent of the visit order.  The
  // kernel scores a whole pass at once, but totals are applied (and the
  // abort bound checked) in per-block visit order, so aborted partial
  // values match the per-lane scalar path bit for bit.
  double acc = 0.0;
  for (std::size_t pass = 0; pass < s.pass_count; ++pass) {
    program.run_in_place({in_planes + pass * in_stride, in_stride});
    kernel_(exact_planes + pass * planes * kLanes, out_rows_.data(), planes,
            no, sgn, totals);
    for (std::size_t l = 0; l < kLanes; ++l) {
      const std::size_t pos = pass * kLanes + l;
      const std::size_t a = order[pos] >> (w - 6);
      if ((pos & first_mask) == 0) {
        err_sums_[a] = totals[l];
      } else {
        err_sums_[a] += totals[l];
      }
      acc += s.weight[a] * static_cast<double>(totals[l]);
      if (acc > abort_above) return acc;
    }
  }
  return weighted_total(err_sums_.data());
}

template <component_spec Spec>
double basic_wmed_evaluator<Spec>::evaluate(const circuit::netlist& nl,
                                            double abort_above) {
  if (shared_->spec.width < 6) return evaluate_reference(nl, abort_above);

  AXC_EXPECTS(nl.num_inputs() == 2 * shared_->spec.width);
  AXC_EXPECTS(nl.num_outputs() == shared_->spec.result_bits());

  program_.rebuild(nl);
  return sweep(program_, abort_above);
}

template <component_spec Spec>
double basic_wmed_evaluator<Spec>::evaluate_program(
    circuit::sim_program<kLanes>& program, double abort_above) {
  AXC_EXPECTS(shared_->spec.width >= 6);
  AXC_EXPECTS(program.num_inputs() == 2 * shared_->spec.width);
  AXC_EXPECTS(program.num_outputs() == shared_->spec.result_bits());
  // External programs (cone_program) sweep on this evaluator's backend too.
  program.set_simd_level(simd_level_);
  return sweep(program, abort_above);
}

template <component_spec Spec>
void basic_wmed_evaluator<Spec>::evaluate_batch(
    circuit::sim_program<kLanes>& program,
    std::span<const std::uint32_t> indices,
    std::span<const batch_candidate> cands, double abort_above,
    std::span<double> results) {
  const shared_state& s = *shared_;
  const std::size_t n = cands.size();
  AXC_EXPECTS(results.size() == n);
  AXC_EXPECTS(s.spec.width >= 6);
  AXC_EXPECTS(program.num_inputs() == 2 * s.spec.width);
  AXC_EXPECTS(program.num_outputs() == s.spec.result_bits());
  if (n == 0) return;
  program.set_simd_level(simd_level_);

  const unsigned w = s.spec.width;
  const unsigned no = s.spec.result_bits();
  const unsigned planes = static_cast<unsigned>(s.planes);
  const bool sgn = s.spec.result_is_signed();
  const std::size_t oc = s.weight.size();

  // Candidate arenas: a 64-byte-rounded stride per candidate off a
  // 64-byte-aligned base, so every signal row the batch executor touches is
  // one whole cache line (std::vector alone only guarantees 16 bytes).
  const std::size_t sw = program.slot_words();
  const std::size_t stride = (sw + 7) & ~std::size_t{7};
  multi_arena_.resize(n * stride + 7);
  const auto pbase = reinterpret_cast<std::uintptr_t>(multi_arena_.data());
  std::uint64_t* const arena0 =
      multi_arena_.data() + ((~pbase + 1) & 63) / 8;

  // Arena slices and output rows are pass-invariant — resolve once.
  rows_multi_.resize(n * no);
  for (std::size_t c = 0; c < n; ++c) {
    const std::uint64_t* const carena = arena0 + c * stride;
    for (std::size_t o = 0; o < no; ++o) {
      rows_multi_[c * no + o] = carena + cands[c].out_offsets[o];
    }
  }

  err_multi_.resize(n * oc);
  totals_multi_.resize(n * kLanes);
  lanes_.resize(n);
  live_.assign(n, 1);
  live_idx_.resize(n);
  acc_multi_.assign(n, 0.0);

  const std::size_t in_stride = 2 * std::size_t{w} * kLanes;
  const std::uint64_t* in_planes = s.input_planes.data();
  const std::uint64_t* exact_planes = s.exact_planes.data();
  const std::uint32_t* order = s.block_order.data();
  const std::size_t first_mask = (std::size_t{1} << (w - 6)) - 1;

  std::size_t remaining = n;
  for (std::size_t pass = 0; pass < s.pass_count && remaining > 0; ++pass) {
    // Ascending candidate order throughout — abort bookkeeping below then
    // matches a sequence of independent solo evaluations bit for bit.
    std::size_t live_count = 0;
    for (std::size_t c = 0; c < n; ++c) {
      if (live_[c] != 0) {
        live_idx_[live_count] = static_cast<std::uint32_t>(c);
        lanes_[live_count] = circuit::sim_batch_lane{
            arena0 + c * stride, cands[c].patch_nodes, cands[c].patch_steps,
            cands[c].patch_count};
        ++live_count;
      }
    }

    program.run_batch({in_planes + pass * in_stride, in_stride}, indices,
                      {lanes_.data(), live_count});
    multi_kernel_(exact_planes + pass * planes * kLanes, rows_multi_.data(),
                  planes, no, sgn, live_idx_.data(), live_count,
                  totals_multi_.data());

    for (std::size_t i = 0; i < live_count; ++i) {
      const std::size_t c = live_idx_[i];
      std::int64_t* const errs = err_multi_.data() + c * oc;
      double acc = acc_multi_[c];
      for (std::size_t l = 0; l < kLanes; ++l) {
        const std::size_t pos = pass * kLanes + l;
        const std::size_t a = order[pos] >> (w - 6);
        const std::int64_t t = totals_multi_[i * kLanes + l];
        if ((pos & first_mask) == 0) {
          errs[a] = t;
        } else {
          errs[a] += t;
        }
        acc += s.weight[a] * static_cast<double>(t);
        if (acc > abort_above) {
          live_[c] = 0;
          results[c] = acc;
          --remaining;
          break;
        }
      }
      acc_multi_[c] = acc;
    }
  }

  for (std::size_t c = 0; c < n; ++c) {
    if (live_[c] != 0) {
      results[c] = weighted_total(err_multi_.data() + c * oc);
    }
  }
}

template <component_spec Spec>
double basic_wmed_evaluator<Spec>::evaluate_reference(
    const circuit::netlist& nl, double abort_above) {
  const shared_state& s = *shared_;
  AXC_EXPECTS(nl.num_inputs() == 2 * s.spec.width);
  AXC_EXPECTS(nl.num_outputs() == s.spec.result_bits());

  const std::size_t ni = nl.num_inputs();
  const std::size_t no = nl.num_outputs();
  const std::size_t blocks = s.spec.pair_count() / 64;
  const std::uint64_t a_mask = (std::uint64_t{1} << s.spec.width) - 1;

  scratch_.resize(nl.num_signals());
  in_words_.resize(ni);
  out_words_.resize(no);

  double acc = 0.0;
  std::uint64_t raw[64];

  for (std::size_t block = 0; block < blocks; ++block) {
    for (std::size_t i = 0; i < ni; ++i) {
      in_words_[i] = circuit::exhaustive_input_word(i, block);
    }
    circuit::simulate_block(nl, in_words_, out_words_, scratch_);

    // Gather packed results for the 64 assignments of this block.
    for (auto& r : raw) r = 0;
    for (std::size_t o = 0; o < no; ++o) {
      std::uint64_t w = out_words_[o];
      while (w != 0) {
        const int t = std::countr_zero(w);
        w &= w - 1;
        raw[t] |= std::uint64_t{1} << o;
      }
    }

    const std::size_t base = block * 64;
    for (std::size_t t = 0; t < 64; ++t) {
      const std::size_t v = base + t;
      const std::int64_t err =
          s.exact[v] - s.spec.result_value(raw[t]);
      acc += s.weight[v & a_mask] *
             static_cast<double>(err < 0 ? -err : err);
    }
    if (acc > abort_above) return acc;
  }
  return acc;
}

template class basic_wmed_evaluator<mult_spec>;
template class basic_wmed_evaluator<adder_spec>;

}  // namespace axc::metrics
