#include "metrics/wmed_evaluator.h"

#include <bit>

#include "circuit/simulator.h"
#include "support/assert.h"

namespace axc::metrics {

wmed_evaluator::wmed_evaluator(const mult_spec& spec, const dist::pmf& d)
    : spec_(spec), exact_(exact_product_table(spec)) {
  AXC_EXPECTS(d.size() == spec.operand_count());
  AXC_EXPECTS(2 * spec.width >= 6);  // at least one full 64-wide block
  const double denom =
      static_cast<double>(spec.operand_count()) * spec.output_scale();
  weight_.resize(d.size());
  for (std::size_t a = 0; a < d.size(); ++a) weight_[a] = d[a] / denom;
}

double wmed_evaluator::evaluate(const circuit::netlist& nl,
                                double abort_above) {
  AXC_EXPECTS(nl.num_inputs() == 2 * spec_.width);
  AXC_EXPECTS(nl.num_outputs() == 2 * spec_.width);

  const std::size_t ni = nl.num_inputs();
  const std::size_t no = nl.num_outputs();
  const std::size_t blocks = spec_.pair_count() / 64;
  const std::uint64_t a_mask = (std::uint64_t{1} << spec_.width) - 1;

  scratch_.resize(nl.num_signals());
  in_words_.resize(ni);
  out_words_.resize(no);

  double acc = 0.0;
  std::uint64_t raw[64];

  for (std::size_t block = 0; block < blocks; ++block) {
    for (std::size_t i = 0; i < ni; ++i) {
      in_words_[i] = circuit::exhaustive_input_word(i, block);
    }
    circuit::simulate_block(nl, in_words_, out_words_, scratch_);

    // Gather packed products for the 64 assignments of this block.
    for (auto& r : raw) r = 0;
    for (std::size_t o = 0; o < no; ++o) {
      std::uint64_t w = out_words_[o];
      while (w != 0) {
        const int t = std::countr_zero(w);
        w &= w - 1;
        raw[t] |= std::uint64_t{1} << o;
      }
    }

    const std::size_t base = block * 64;
    for (std::size_t t = 0; t < 64; ++t) {
      const std::size_t v = base + t;
      const std::int64_t err =
          exact_[v] - spec_.product_value(raw[t]);
      acc += weight_[v & a_mask] *
             static_cast<double>(err < 0 ? -err : err);
    }
    if (acc > abort_above) return acc;
  }
  return acc;
}

}  // namespace axc::metrics
