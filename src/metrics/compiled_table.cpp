#include "metrics/compiled_table.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "circuit/simulator.h"
#include "support/assert.h"

namespace axc::metrics {

namespace {

template <component_spec Spec>
void check_shape(const circuit::netlist& nl, const Spec& spec) {
  AXC_EXPECTS(nl.num_inputs() == 2 * spec.width);
  AXC_EXPECTS(nl.num_outputs() == spec.result_bits());
}

std::vector<std::int32_t> narrow_table(std::vector<std::int64_t> wide) {
  std::vector<std::int32_t> table(wide.size());
  for (std::size_t v = 0; v < wide.size(); ++v) {
    table[v] = static_cast<std::int32_t>(wide[v]);
  }
  return table;
}

// The int32 in-memory table caps the width (2^(2w) entries, int32 results);
// checked before the characterization runs, so an oversized spec aborts
// loudly instead of attempting a gigabyte-scale fill.  The int64
// result_table()/result_table_wide() builders are only bounded by the
// simulator's input limit.
template <component_spec Spec>
std::vector<std::int32_t> build_narrow(const circuit::netlist& nl,
                                       const Spec& spec) {
  AXC_EXPECTS(spec.width <= 12);
  return narrow_table(result_table_wide(nl, spec));
}

}  // namespace

template <component_spec Spec>
std::vector<std::int64_t> result_table(const circuit::netlist& nl,
                                       const Spec& spec) {
  check_shape(nl, spec);
  const std::vector<std::uint64_t> raw = circuit::evaluate_exhaustive(nl);
  std::vector<std::int64_t> table(raw.size());
  for (std::size_t v = 0; v < raw.size(); ++v) {
    table[v] = spec.result_value(raw[v]);
  }
  return table;
}

template <component_spec Spec>
std::vector<std::int64_t> result_table_wide(const circuit::netlist& nl,
                                            const Spec& spec) {
  check_shape(nl, spec);
  constexpr std::size_t W = 8;
  circuit::sim_program<W> program(nl);

  const std::size_t ni = nl.num_inputs();
  const unsigned result_bits = spec.result_bits();
  const std::size_t total = spec.pair_count();
  const std::size_t blocks = (total + 63) / 64;
  std::vector<std::int64_t> table(total);
  std::vector<std::uint64_t> in(ni * W);
  std::vector<std::uint64_t> out(result_bits * W);

  for (std::size_t base = 0; base < blocks; base += W) {
    const std::size_t lanes = std::min(W, blocks - base);
    for (std::size_t i = 0; i < ni; ++i) {
      for (std::size_t l = 0; l < W; ++l) {
        // Idle lanes of a partial chunk re-simulate the first block; their
        // outputs are never read.
        in[i * W + l] =
            circuit::exhaustive_input_word(i, base + (l < lanes ? l : 0));
      }
    }
    program.run(in, out);

    for (std::size_t l = 0; l < lanes; ++l) {
      // Transpose lane l: bit t of out[o*W+l] is output bit o of
      // assignment (base+l)*64 + t.
      std::uint64_t patterns[64];
      std::memset(patterns, 0, sizeof(patterns));
      for (unsigned o = 0; o < result_bits; ++o) {
        std::uint64_t w = out[o * W + l];
        while (w != 0) {
          const int t = std::countr_zero(w);
          w &= w - 1;
          patterns[t] |= std::uint64_t{1} << o;
        }
      }
      const std::size_t first = (base + l) * 64;
      const std::size_t limit = std::min<std::size_t>(64, total - first);
      for (std::size_t t = 0; t < limit; ++t) {
        table[first + t] = spec.result_value(patterns[t]);
      }
    }
  }
  return table;
}

template <component_spec Spec>
basic_compiled_table<Spec>::basic_compiled_table(const circuit::netlist& nl,
                                                 const Spec& spec)
    : spec_(spec), table_(build_narrow(nl, spec)) {}

template <component_spec Spec>
basic_compiled_table<Spec> basic_compiled_table<Spec>::exact(
    const Spec& spec) {
  AXC_EXPECTS(spec.width <= 12);
  return basic_compiled_table(spec, narrow_table(exact_result_table(spec)));
}

template std::vector<std::int64_t> result_table<mult_spec>(
    const circuit::netlist&, const mult_spec&);
template std::vector<std::int64_t> result_table<adder_spec>(
    const circuit::netlist&, const adder_spec&);
template std::vector<std::int64_t> result_table_wide<mult_spec>(
    const circuit::netlist&, const mult_spec&);
template std::vector<std::int64_t> result_table_wide<adder_spec>(
    const circuit::netlist&, const adder_spec&);

template class basic_compiled_table<mult_spec>;
template class basic_compiled_table<adder_spec>;

}  // namespace axc::metrics
