// AVX2 backend.  CMake compiles this TU with -mavx2 when the compiler
// accepts it; otherwise (non-x86 targets) the guard below leaves only the
// null entry point, and dispatch falls back to the scalar kernel.
#include "metrics/scan_kernels.h"

namespace axc::metrics::detail {

#if defined(__AVX2__)

namespace {

void scan_batch_avx2(const std::uint64_t* exact_planes,
                     const std::uint64_t* const* out_rows, unsigned planes,
                     unsigned result_bits, bool result_signed,
                     std::int64_t* totals) {
  scan_block_batch<simd::vu64x8<simd::level::avx2>>(
      exact_planes, out_rows, planes, result_bits, result_signed, totals);
}

void scan_multi_avx2(const std::uint64_t* exact_planes,
                     const std::uint64_t* const* out_rows, unsigned planes,
                     unsigned result_bits, bool result_signed,
                     const std::uint32_t* live, std::size_t live_count,
                     std::int64_t* totals) {
  scan_block_multi<simd::vu64x8<simd::level::avx2>>(
      exact_planes, out_rows, planes, result_bits, result_signed, live,
      live_count, totals);
}

}  // namespace

scan_batch_fn scan_kernel_avx2() { return &scan_batch_avx2; }
scan_multi_fn scan_multi_kernel_avx2() { return &scan_multi_avx2; }

#else

scan_batch_fn scan_kernel_avx2() { return nullptr; }
scan_multi_fn scan_multi_kernel_avx2() { return nullptr; }

#endif

}  // namespace axc::metrics::detail
