// The interface contract a combinational component class must satisfy to
// run on the bit-plane WMED fast path (basic_wmed_evaluator).
//
// The sweep only needs four facts about a component: how wide the two
// operands are (inputs are A at 0..w-1, B at w..2w-1, both LSB first), how
// many result bits the netlist drives (LSB first), how a result bit
// pattern decodes to a value (and whether the top bit sign-extends), and
// the exact result for every operand pair.  mult_spec and adder_spec model
// the paper's two workloads; any further component class (MACs, dividers,
// shifters) joins the fast path by satisfying this concept.
#pragma once

#include <concepts>
#include <cstdint>
#include <vector>

namespace axc::metrics {

template <typename S>
concept component_spec = requires(const S s, std::uint64_t pattern) {
  { s.width } -> std::convertible_to<unsigned>;
  { s.operand_count() } -> std::same_as<std::size_t>;
  { s.pair_count() } -> std::same_as<std::size_t>;
  /// Number of result bits R the candidate netlist must output.
  { s.result_bits() } -> std::convertible_to<unsigned>;
  /// Whether result bit R-1 sign-extends (two's-complement results).
  { s.result_is_signed() } -> std::same_as<bool>;
  /// Decoded value of an R-bit result pattern.
  { s.result_value(pattern) } -> std::same_as<std::int64_t>;
  /// WMED normalization constant (the component's output range).
  { s.output_scale() } -> std::same_as<double>;
  /// entry[(b << w) | a] = exact result for operand patterns a, b.
  { exact_result_table(s) } -> std::same_as<std::vector<std::int64_t>>;
};

}  // namespace axc::metrics
