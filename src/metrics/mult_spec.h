// Interface contract of a combinational multiplier under evaluation.
//
// Inputs 0..w-1 of the netlist carry operand A (the operand whose data
// distribution drives WMED, e.g. the filter coefficient / NN weight);
// inputs w..2w-1 carry operand B.  Outputs 0..2w-1 carry the product,
// LSB first.  For signed multipliers operands and product are two's
// complement.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/netlist.h"

namespace axc::metrics {

struct mult_spec {
  unsigned width{8};
  bool is_signed{false};

  [[nodiscard]] std::size_t operand_count() const {
    return std::size_t{1} << width;
  }
  [[nodiscard]] std::size_t pair_count() const {
    return std::size_t{1} << (2 * width);
  }
  /// Two's-complement (or plain) value of a w-bit operand pattern.
  [[nodiscard]] std::int64_t operand_value(std::uint64_t pattern) const {
    const auto mask = (std::uint64_t{1} << width) - 1;
    pattern &= mask;
    if (is_signed && (pattern >> (width - 1)) != 0) {
      return static_cast<std::int64_t>(pattern) -
             static_cast<std::int64_t>(std::uint64_t{1} << width);
    }
    return static_cast<std::int64_t>(pattern);
  }
  /// Value of a 2w-bit product pattern.
  [[nodiscard]] std::int64_t product_value(std::uint64_t pattern) const {
    const unsigned bits = 2 * width;
    const auto mask =
        bits >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
    pattern &= mask;
    if (is_signed && (pattern >> (bits - 1)) != 0) {
      return static_cast<std::int64_t>(pattern) -
             static_cast<std::int64_t>(std::uint64_t{1} << bits);
    }
    return static_cast<std::int64_t>(pattern);
  }
  /// Normalization constant of the paper's WMED: the full output range 2^2w.
  [[nodiscard]] double output_scale() const {
    return static_cast<double>(std::uint64_t{1} << (2 * width));
  }

  // component_spec interface (metrics/component_spec.h): a multiplier
  // drives 2w product bits, signed iff the operands are.
  [[nodiscard]] unsigned result_bits() const { return 2 * width; }
  [[nodiscard]] bool result_is_signed() const { return is_signed; }
  [[nodiscard]] std::int64_t result_value(std::uint64_t pattern) const {
    return product_value(pattern);
  }

  friend bool operator==(const mult_spec&, const mult_spec&) = default;
};

/// Exact products for every operand-pattern pair: entry[(b << w) | a] =
/// value(a) * value(b).  Fits int32 for w <= 15.
std::vector<std::int64_t> exact_product_table(const mult_spec& spec);

/// component_spec exact table hook.
inline std::vector<std::int64_t> exact_result_table(const mult_spec& spec) {
  return exact_product_table(spec);
}

/// Product table of a candidate netlist (its functional signature):
/// entry[(b << w) | a] = decoded product for operand patterns a, b.
std::vector<std::int64_t> product_table(const circuit::netlist& nl,
                                        const mult_spec& spec);

}  // namespace axc::metrics
