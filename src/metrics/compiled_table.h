// Compiled behavioural tables: the bridge from gate-level components to
// application-level simulation (image filters, quantized NN inference).
//
// A w-bit two-operand component is fully characterized by its 2^(2w)-entry
// result table; applications then "execute" the approximate circuit at
// lookup speed, exactly as the paper evaluates approximate NNs.  The table
// is generic over metrics::component_spec — multipliers (product tables)
// and adders (sum tables) compile through one implementation, and future
// component classes join for free.
//
// Characterization runs through the wide-lane sim_program<8> batch path
// (cone-restricted compile, 512 assignments per pass) instead of the
// per-block scalar simulator; result_table() keeps the scalar path as the
// parity reference (bit-identical, test-asserted).
#pragma once

#include <concepts>
#include <cstdint>
#include <vector>

#include "circuit/netlist.h"
#include "metrics/adder_metrics.h"
#include "metrics/component_spec.h"
#include "metrics/mult_spec.h"

namespace axc::metrics {

/// Decoded results of a candidate netlist for every operand-pattern pair:
/// entry[(b << w) | a] (the functional signature).  Scalar reference path —
/// single-lane simulate_block sweep, as the pre-compiled_table
/// characterization ran.
template <component_spec Spec>
std::vector<std::int64_t> result_table(const circuit::netlist& nl,
                                       const Spec& spec);

/// Same table through the wide-lane fast path: the netlist is compiled once
/// (sim_program<8>, cone-restricted) and filled 8 blocks per pass.
/// Bit-identical to result_table().
template <component_spec Spec>
std::vector<std::int64_t> result_table_wide(const circuit::netlist& nl,
                                            const Spec& spec);

extern template std::vector<std::int64_t> result_table<mult_spec>(
    const circuit::netlist&, const mult_spec&);
extern template std::vector<std::int64_t> result_table<adder_spec>(
    const circuit::netlist&, const adder_spec&);
extern template std::vector<std::int64_t> result_table_wide<mult_spec>(
    const circuit::netlist&, const mult_spec&);
extern template std::vector<std::int64_t> result_table_wide<adder_spec>(
    const circuit::netlist&, const adder_spec&);

template <component_spec Spec>
class basic_compiled_table {
 public:
  /// Characterizes a component netlist exhaustively (batch fast path).
  basic_compiled_table(const circuit::netlist& nl, const Spec& spec);

  /// Behavioural table of the exact component (reference paths).
  static basic_compiled_table exact(const Spec& spec);

  /// Result by operand *bit patterns* (masked to width).
  [[nodiscard]] std::int32_t by_pattern(std::uint32_t a,
                                        std::uint32_t b) const {
    const std::uint32_t mask = (1u << spec_.width) - 1u;
    return table_[((b & mask) << spec_.width) | (a & mask)];
  }

  /// Result by operand *values*; signed specs accept negative operands.
  /// Operand A is the distribution-carrying operand (coefficient/weight).
  [[nodiscard]] std::int32_t apply(std::int32_t a, std::int32_t b) const {
    return by_pattern(static_cast<std::uint32_t>(a),
                      static_cast<std::uint32_t>(b));
  }

  /// Legacy product_lut name of apply(), for the multiplier workloads.
  [[nodiscard]] std::int32_t multiply(std::int32_t a, std::int32_t b) const
    requires std::same_as<Spec, mult_spec>
  {
    return apply(a, b);
  }

  [[nodiscard]] const Spec& spec() const { return spec_; }
  [[nodiscard]] const std::vector<std::int32_t>& table() const {
    return table_;
  }

 private:
  basic_compiled_table(Spec spec, std::vector<std::int32_t> table)
      : spec_(spec), table_(std::move(table)) {}

  Spec spec_;
  std::vector<std::int32_t> table_;
};

extern template class basic_compiled_table<mult_spec>;
extern template class basic_compiled_table<adder_spec>;

using compiled_mult_table = basic_compiled_table<mult_spec>;
using compiled_adder_table = basic_compiled_table<adder_spec>;

}  // namespace axc::metrics
