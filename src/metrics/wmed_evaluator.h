// Fused simulate-and-score evaluator: the CGP inner loop.
//
// Evaluating WMED through a result table allocates and fills a 2^(2w)
// table per candidate.  This evaluator instead folds the weighted error
// accumulation into an exhaustive bit-parallel sweep and supports early
// abort: once the partial sum exceeds the caller's bound the candidate is
// already infeasible (the accumulated error only grows), so the remaining
// blocks are skipped.  In an area-minimizing search most mutants are
// infeasible, making the abort path the common case.
//
// The evaluator is generic over the component class: any spec satisfying
// metrics::component_spec (multipliers, adders, ...) runs the same
// operand-major bit-plane sweep — the table-based adder path is thereby
// retired from the search loop (tables remain the parity reference).
//
// The fast path (operand width >= 6) is built around four ideas:
//
//  1. *Operand-major enumeration.*  Operand B's low bits occupy the 64
//     in-word assignment slots, so operand A — the operand the distribution
//     D weights — is constant within each 64-assignment block.  The block's
//     error contribution then collapses to weight[a] * sum_t |err_t|, and
//     sum_t |err_t| is computed entirely in bit-plane arithmetic (bitwise
//     borrow-propagate subtract, conditional negate, popcount per plane):
//     no per-assignment gather/transpose at all.
//  2. *Cone-restricted wide-lane simulation* via circuit::sim_program<8>,
//     skipping inactive CGP gates and evaluating 8 blocks per pass.
//  3. *Batched, runtime-dispatched scoring.*  One scan_batch kernel call
//     scores a whole pass — the bit-plane subtract/negate/popcount runs
//     vectorized across all eight lanes (scalar / AVX2 / AVX-512 backends
//     behind one dispatch, see metrics/scan_kernels.h), reading candidate
//     output planes in place from the sim program's slot rows.  The
//     early-abort check thereby moves to per-pass granularity, but the
//     per-block int64 error totals and the running weighted accumulator are
//     applied in the exact per-block order of the pre-batch code, so both
//     completed values and aborted partial values stay bit-identical to it
//     (and order-independent on completion, identical across serial and
//     parallel searches).
//  4. *Distribution-ordered sweep over precompiled planes.*  Blocks are
//     visited in descending D(a) mass, so on infeasible mutants the
//     early-abort bound trips after the fewest possible passes.  Everything
//     the sweep consumes per pass — the operand input planes fed to the
//     simulator and the exact result planes the kernel subtracts — is laid
//     out in this visit order once in shared_state, so an evaluation does
//     zero per-pass index math or input broadcasting.
//
// Besides evaluate(netlist), evaluate_program() runs the same sweep over an
// externally compiled/patched sim_program<8> — the genotype-native
// incremental search path (cgp::cone_program), which never materializes a
// netlist per mutant.
//
// The immutable inputs of the sweep (exact-result table, weights, exact and
// input bit planes, block visit order) are split into a ref-counted
// shared_state so a design-space sweep builds them once per
// (spec, distribution) and shares them across every run's evaluators (see
// core::search_session); the two-argument constructor keeps the old
// build-your-own behaviour.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "circuit/netlist.h"
#include "circuit/simulator.h"
#include "dist/pmf.h"
#include "metrics/adder_metrics.h"
#include "metrics/component_spec.h"
#include "metrics/mult_spec.h"
#include "metrics/scan_kernels.h"
#include "support/simd.h"

namespace axc::metrics {

/// One child candidate of an evaluate_batch() call, described against the
/// parent the sim program models (built by cgp::cone_program::stage_child).
/// `patch_nodes`/`patch_steps` are the step-table entries this child
/// overrides (ascending table indices, child-gene contents) and
/// `out_offsets` its premultiplied output row offsets — exactly the
/// sim_batch_lane contract minus the arena, which the evaluator owns.
struct batch_candidate {
  const std::uint32_t* patch_nodes{nullptr};
  const circuit::sim_step* patch_steps{nullptr};
  std::size_t patch_count{0};
  const std::uint32_t* out_offsets{nullptr};
};

template <component_spec Spec>
class basic_wmed_evaluator {
 public:
  static constexpr std::size_t lanes = 8;

  /// Everything the sweep needs that is a pure function of
  /// (spec, distribution): the exact-result table, the per-operand weights,
  /// the precompiled bit planes and the distribution-ordered block visit
  /// order.  Building this dominates evaluator construction (it enumerates
  /// all 2^(2w) operand pairs), yet a design-space sweep uses the same
  /// (spec, distribution) for every run — so a session builds it once via
  /// make_shared_state() and every evaluator (one per job, plus one per
  /// lambda slot in parallel searches) attaches to the same immutable copy.
  struct shared_state {
    Spec spec{};
    /// weight[a] = D(a) / (2^w * output_scale) so WMED = sum weight[a]*|err|.
    std::vector<double> weight;
    std::vector<std::int64_t> exact;

    // --- fast path (width >= 6) ---
    std::size_t planes{0};       ///< result_bits + 2: signed diff headroom
    std::size_t block_count{0};  ///< 2^(2w-6), one operand A per block
    std::size_t pass_count{0};   ///< block_count / lanes (lanes divides it)
    /// Sweep order: blocks of heavy-mass operands first.
    std::vector<std::uint32_t> block_order;
    /// Exact result bit planes, sign-extended to `planes` planes, laid out
    /// in sweep order for the batched kernel: word
    /// [(pass * planes + p) * lanes + l] is plane p of block
    /// block_order[pass * lanes + l].
    std::vector<std::uint64_t> exact_planes;
    /// Primary-input planes in sweep order, in exactly the lane-major layout
    /// sim_program<8>::run consumes: word [(pass * 2w + i) * lanes + l] is
    /// input i of block block_order[pass * lanes + l].  Precompiling this
    /// retires the per-pass operand bit-broadcast fill (O(2w * lanes) scalar
    /// stores per pass, previously redone on every evaluation).
    std::vector<std::uint64_t> input_planes;
  };

  /// Builds the immutable tables once; share the result across evaluators.
  static std::shared_ptr<const shared_state> make_shared_state(
      const Spec& spec, const dist::pmf& d);

  /// Convenience: builds a private shared_state (the pre-session behaviour).
  /// `simd` picks the scan kernel backend (see metrics/scan_kernels.h);
  /// automatic resolves to the strongest available, and every level is
  /// bit-identical — forcing one is for parity tests and benchmarks.
  basic_wmed_evaluator(const Spec& spec, const dist::pmf& d,
                       simd::level simd = simd::level::automatic);
  /// Attaches to an existing cache; only per-candidate scratch is allocated.
  explicit basic_wmed_evaluator(std::shared_ptr<const shared_state> shared,
                                simd::level simd = simd::level::automatic);

  /// WMED of the candidate in [0, 1].  If the running sum exceeds
  /// `abort_above` the sweep stops and the partial value (>= abort_above,
  /// <= true WMED) is returned — sufficient to classify infeasibility.
  double evaluate(const circuit::netlist& nl,
                  double abort_above = std::numeric_limits<double>::infinity());

  /// The fast sweep over an already-compiled (or incrementally patched)
  /// program with 2w inputs and result_bits() outputs.  Bit-identical to
  /// evaluate() on the netlist the program models.  Requires the fast path
  /// (width >= 6).
  double evaluate_program(
      circuit::sim_program<lanes>& program,
      double abort_above = std::numeric_limits<double>::infinity());

  /// The straightforward pre-refactor sweep (simulate_block + per-assignment
  /// gather, natural block order).  Kept as the parity/benchmark baseline.
  double evaluate_reference(
      const circuit::netlist& nl,
      double abort_above = std::numeric_limits<double>::infinity());

  // --- lambda-batch candidate evaluation ----------------------------------

  /// Scores a whole batch of children in one interleaved sweep.  `program`
  /// must model the bound *parent* (indexed schedule; its table is never
  /// touched) and `indices` is the union execution list from
  /// cgp::cone_program::batch_union().  Per pass, one
  /// sim_program::run_batch call executes every still-live candidate into
  /// its own 64-byte-aligned arena slice — amortizing the per-step
  /// dispatch cost that bounds the solo executor across the batch — and
  /// one multi-candidate scan kernel call scores them all against the
  /// shared exact planes (read once, L1-hot).  results[c] receives exactly
  /// what patching + evaluate_program() of child c would return, bit for
  /// bit, including per-candidate abort partials (candidates abort
  /// independently and drop out of later passes).
  void evaluate_batch(circuit::sim_program<lanes>& program,
                      std::span<const std::uint32_t> indices,
                      std::span<const batch_candidate> cands,
                      double abort_above, std::span<double> results);

  [[nodiscard]] const Spec& spec() const { return shared_->spec; }
  /// The attached immutable tables (for cache-reuse assertions/sharing).
  [[nodiscard]] const std::shared_ptr<const shared_state>& shared() const {
    return shared_;
  }
  /// The resolved scan kernel backend this evaluator dispatches to.
  [[nodiscard]] simd::level simd_level() const { return simd_level_; }

 private:
  static constexpr std::size_t kLanes = lanes;

  /// The operand-major bit-plane sweep shared by evaluate() and
  /// evaluate_program().
  double sweep(circuit::sim_program<kLanes>& program, double abort_above);
  /// Fixed-order weighted reduction of per-operand totals (the exact
  /// order-independent WMED of a completed sweep).
  [[nodiscard]] double weighted_total(const std::int64_t* sums) const;

  std::shared_ptr<const shared_state> shared_;
  simd::level simd_level_{simd::level::scalar};
  scan_batch_fn kernel_{nullptr};
  /// Exact per-operand-A absolute error totals (int64, order-independent).
  std::vector<std::int64_t> err_sums_;
  circuit::sim_program<kLanes> program_;
  /// Candidate output plane rows inside the program's slot buffer (filled
  /// once per sweep via sim_program::output_rows).
  std::vector<const std::uint64_t*> out_rows_;

  // --- batch path state ---------------------------------------------------
  scan_multi_fn multi_kernel_{nullptr};
  /// Per-candidate slot arenas: count slices of a 64-byte-rounded stride,
  /// base rounded to a 64-byte boundary (row loads never split lines).
  std::vector<std::uint64_t> multi_arena_;
  std::vector<circuit::sim_batch_lane> lanes_;    ///< live-dense, per pass
  std::vector<const std::uint64_t*> rows_multi_;  ///< candidate-major rows
  std::vector<std::int64_t> err_multi_;      ///< count * operand_count
  std::vector<std::int64_t> totals_multi_;   ///< live-dense, count * lanes
  std::vector<std::uint32_t> live_idx_;      ///< ascending live candidates
  std::vector<std::uint8_t> live_;
  std::vector<double> acc_multi_;            ///< per-candidate running sums

  // --- reference path buffers (the point of keeping this a class) ---
  std::vector<std::uint64_t> scratch_;
  std::vector<std::uint64_t> in_words_;
  std::vector<std::uint64_t> out_words_;
};

extern template class basic_wmed_evaluator<mult_spec>;
extern template class basic_wmed_evaluator<adder_spec>;

/// The paper's primary workload: w x w multipliers.
using wmed_evaluator = basic_wmed_evaluator<mult_spec>;
/// The second component class: w + w adders on the same fast path.
using adder_wmed_evaluator = basic_wmed_evaluator<adder_spec>;

}  // namespace axc::metrics
