// Fused simulate-and-score evaluator: the CGP inner loop.
//
// Evaluating WMED through product_table() allocates and fills a 2^(2w)
// table per candidate.  This evaluator instead folds the weighted error
// accumulation into the exhaustive bit-parallel sweep block by block and
// supports early abort: once the partial sum exceeds the caller's bound the
// candidate is already infeasible (the accumulated error only grows), so the
// remaining blocks are skipped.  In an area-minimizing search most mutants
// are infeasible, making the abort path the common case.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "circuit/netlist.h"
#include "dist/pmf.h"
#include "metrics/mult_spec.h"

namespace axc::metrics {

class wmed_evaluator {
 public:
  wmed_evaluator(const mult_spec& spec, const dist::pmf& d);

  /// WMED of the candidate in [0, 1].  If the running sum exceeds
  /// `abort_above` the sweep stops and the partial value (>= abort_above,
  /// <= true WMED) is returned — sufficient to classify infeasibility.
  double evaluate(const circuit::netlist& nl,
                  double abort_above = std::numeric_limits<double>::infinity());

  [[nodiscard]] const mult_spec& spec() const { return spec_; }

 private:
  mult_spec spec_;
  /// weight[a] = D(a) / (2^w * 2^(2w)) so that WMED = sum weight[a]*|err|.
  std::vector<double> weight_;
  std::vector<std::int64_t> exact_;
  // Reused buffers (the point of keeping this a class).
  std::vector<std::uint64_t> scratch_;
  std::vector<std::uint64_t> in_words_;
  std::vector<std::uint64_t> out_words_;
};

}  // namespace axc::metrics
