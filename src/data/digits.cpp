#include "data/digits.h"

#include <algorithm>
#include <cmath>

#include "data/font.h"
#include "support/assert.h"
#include "support/rng.h"

namespace axc::data {

namespace {

void add_noise(std::vector<std::uint8_t>& pixels, double sigma, rng& gen) {
  for (auto& p : pixels) {
    const double v = static_cast<double>(p) + gen.normal(0.0, sigma);
    p = static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
  }
}

/// In-place 3x3 box blur (one pass), weight `strength` in [0,1].
void blur(std::vector<std::uint8_t>& pixels, std::size_t width,
          std::size_t height, double strength) {
  const std::vector<std::uint8_t> src = pixels;
  auto at = [&](std::int64_t x, std::int64_t y) {
    x = std::clamp<std::int64_t>(x, 0, static_cast<std::int64_t>(width) - 1);
    y = std::clamp<std::int64_t>(y, 0, static_cast<std::int64_t>(height) - 1);
    return static_cast<double>(
        src[static_cast<std::size_t>(y) * width + static_cast<std::size_t>(x)]);
  };
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      double acc = 0.0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          acc += at(static_cast<std::int64_t>(x) + dx,
                    static_cast<std::int64_t>(y) + dy);
        }
      }
      const double mixed =
          (1.0 - strength) * at(static_cast<std::int64_t>(x),
                                static_cast<std::int64_t>(y)) +
          strength * acc / 9.0;
      pixels[y * width + x] =
          static_cast<std::uint8_t>(std::clamp(mixed, 0.0, 255.0));
    }
  }
}

}  // namespace

digit_dataset make_mnist_like(std::size_t count, std::uint64_t seed) {
  AXC_EXPECTS(count > 0);
  digit_dataset ds;
  ds.width = 28;
  ds.height = 28;
  ds.images.reserve(count);
  ds.labels.reserve(count);

  rng gen(seed);
  for (std::size_t n = 0; n < count; ++n) {
    const int digit = static_cast<int>(gen.below(10));
    std::vector<std::uint8_t> pixels(ds.width * ds.height, 0);

    glyph_transform t;
    t.center_x = 13.5 + gen.uniform(-2.5, 2.5);
    t.center_y = 13.5 + gen.uniform(-2.5, 2.5);
    t.height_px = gen.uniform(15.0, 22.0);
    t.rotation = gen.uniform(-0.18, 0.18);
    t.shear = gen.uniform(-0.15, 0.15);
    render_glyph(pixels, ds.width, ds.height, digit, t,
                 gen.uniform(200.0, 255.0));

    blur(pixels, ds.width, ds.height, gen.uniform(0.2, 0.5));
    add_noise(pixels, gen.uniform(4.0, 10.0), gen);

    ds.images.push_back(std::move(pixels));
    ds.labels.push_back(digit);
  }
  return ds;
}

digit_dataset make_svhn_like(std::size_t count, std::uint64_t seed) {
  AXC_EXPECTS(count > 0);
  digit_dataset ds;
  ds.width = 32;
  ds.height = 32;
  ds.images.reserve(count);
  ds.labels.reserve(count);

  rng gen(seed ^ 0x53564e48ULL);
  for (std::size_t n = 0; n < count; ++n) {
    const int digit = static_cast<int>(gen.below(10));
    std::vector<std::uint8_t> pixels(ds.width * ds.height, 0);

    // Textured background: smooth gradient plus low-frequency ripple.
    const double base = gen.uniform(70.0, 160.0);
    const double gx = gen.uniform(-0.8, 0.8);
    const double gy = gen.uniform(-0.8, 0.8);
    const double ripple = gen.uniform(0.0, 10.0);
    const double phase = gen.uniform(0.0, 6.28);
    for (std::size_t y = 0; y < ds.height; ++y) {
      for (std::size_t x = 0; x < ds.width; ++x) {
        const double v =
            base + gx * static_cast<double>(x) + gy * static_cast<double>(y) +
            ripple * std::sin(0.45 * static_cast<double>(x + 2 * y) + phase);
        pixels[y * ds.width + x] =
            static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
      }
    }

    // Distractor digit fragments at the horizontal borders (street numbers
    // are multi-digit; neighbours leak into the crop).  Dimmer than the
    // labelled digit so the task stays learnable, as real SVHN crops are.
    const double contrast = gen.uniform(85.0, 150.0);
    const bool dark_digit = gen.chance(0.4);
    const double digit_intensity =
        dark_digit ? std::max(0.0, base - contrast)
                   : std::min(255.0, base + contrast);
    const double distractor_intensity =
        dark_digit ? std::max(0.0, base - 0.55 * contrast)
                   : std::min(255.0, base + 0.55 * contrast);
    for (const double side : {-1.0, 1.0}) {
      if (!gen.chance(0.6)) continue;
      glyph_transform dt;
      dt.center_x = 16.0 + side * gen.uniform(14.0, 18.0);
      dt.center_y = 16.0 + gen.uniform(-3.0, 3.0);
      dt.height_px = gen.uniform(16.0, 24.0);
      dt.rotation = gen.uniform(-0.25, 0.25);
      dt.shear = gen.uniform(-0.2, 0.2);
      render_glyph(pixels, ds.width, ds.height,
                   static_cast<int>(gen.below(10)), dt,
                   distractor_intensity);
    }

    // The labelled digit, centered-ish.
    glyph_transform t;
    t.center_x = 15.5 + gen.uniform(-2.0, 2.0);
    t.center_y = 15.5 + gen.uniform(-2.0, 2.0);
    t.height_px = gen.uniform(18.0, 26.0);
    t.rotation = gen.uniform(-0.15, 0.15);
    t.shear = gen.uniform(-0.18, 0.18);
    render_glyph(pixels, ds.width, ds.height, digit, t, digit_intensity);

    blur(pixels, ds.width, ds.height, gen.uniform(0.2, 0.5));
    add_noise(pixels, gen.uniform(4.0, 10.0), gen);

    ds.images.push_back(std::move(pixels));
    ds.labels.push_back(digit);
  }
  return ds;
}

std::vector<nn::tensor> to_tensors(const digit_dataset& dataset) {
  std::vector<nn::tensor> tensors;
  tensors.reserve(dataset.images.size());
  for (const auto& img : dataset.images) {
    nn::tensor t(1, dataset.height, dataset.width);
    for (std::size_t i = 0; i < img.size(); ++i) {
      t.data()[i] = static_cast<float>(img[i]) / 256.0f;
    }
    tensors.push_back(std::move(t));
  }
  return tensors;
}

}  // namespace axc::data
