// 5x7 bitmap digit font and an affine glyph rasterizer.
//
// The raw material of the synthetic digit datasets: each glyph is rendered
// into a target image through a randomized affine map (translate / scale /
// rotate / shear) with bilinear sampling, which is what gives the datasets
// their intra-class variability.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace axc::data {

inline constexpr std::size_t glyph_width = 5;
inline constexpr std::size_t glyph_height = 7;

/// Rows of the glyph for `digit` (0..9); bit 4 is the leftmost pixel.
std::array<std::uint8_t, glyph_height> digit_glyph(int digit);

/// Continuous-coordinate glyph intensity in [0, 1] with bilinear smoothing;
/// coordinates outside the glyph return 0.
double glyph_sample(int digit, double gx, double gy);

struct glyph_transform {
  double center_x{0.0};  ///< glyph center in image coordinates
  double center_y{0.0};
  double height_px{20.0};  ///< rendered glyph height in pixels
  double rotation{0.0};    ///< radians
  double shear{0.0};
};

/// Renders `digit` into `pixels` (row-major, `width` x `height`) by alpha
/// blending `intensity` (0..255) over the existing content.
void render_glyph(std::span<std::uint8_t> pixels, std::size_t width,
                  std::size_t height, int digit,
                  const glyph_transform& transform, double intensity);

}  // namespace axc::data
