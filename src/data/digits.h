// Synthetic digit-classification datasets.
//
// This environment ships no MNIST/SVHN corpora (see DESIGN.md
// substitutions), so the reproduction generates deterministic stand-ins
// that exercise the identical code paths:
//
//  - mnist-like: 28x28 grayscale, bright centered digit on a dark
//    background with affine jitter and sensor noise — an easy task, like
//    MNIST (a 784-300-10 MLP reaches high-90s accuracy).
//  - svhn-like: 32x32 grayscale "street number crops": textured background,
//    variable digit/background contrast (either polarity), distractor digit
//    fragments at the borders, blur and noise — a markedly harder task,
//    like SVHN.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.h"

namespace axc::data {

struct digit_dataset {
  std::size_t width{0};
  std::size_t height{0};
  std::vector<std::vector<std::uint8_t>> images;  ///< row-major, 0..255
  std::vector<int> labels;                        ///< 0..9
};

digit_dataset make_mnist_like(std::size_t count, std::uint64_t seed);
digit_dataset make_svhn_like(std::size_t count, std::uint64_t seed);

/// Converts raw images to NN input tensors (1 x H x W, values pixel/256,
/// i.e. on the Q0.8 grid the quantizer expects).
std::vector<nn::tensor> to_tensors(const digit_dataset& dataset);

}  // namespace axc::data
