#include "data/font.h"

#include <algorithm>
#include <cmath>

#include "support/assert.h"

namespace axc::data {

namespace {

// Classic 5x7 numerals; bit 4 = leftmost column.
constexpr std::array<std::array<std::uint8_t, glyph_height>, 10> kGlyphs = {{
    // 0
    {{0b01110, 0b10001, 0b10011, 0b10101, 0b11001, 0b10001, 0b01110}},
    // 1
    {{0b00100, 0b01100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110}},
    // 2
    {{0b01110, 0b10001, 0b00001, 0b00010, 0b00100, 0b01000, 0b11111}},
    // 3
    {{0b11111, 0b00010, 0b00100, 0b00010, 0b00001, 0b10001, 0b01110}},
    // 4
    {{0b00010, 0b00110, 0b01010, 0b10010, 0b11111, 0b00010, 0b00010}},
    // 5
    {{0b11111, 0b10000, 0b11110, 0b00001, 0b00001, 0b10001, 0b01110}},
    // 6
    {{0b00110, 0b01000, 0b10000, 0b11110, 0b10001, 0b10001, 0b01110}},
    // 7
    {{0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b01000, 0b01000}},
    // 8
    {{0b01110, 0b10001, 0b10001, 0b01110, 0b10001, 0b10001, 0b01110}},
    // 9
    {{0b01110, 0b10001, 0b10001, 0b01111, 0b00001, 0b00010, 0b01100}},
}};

double glyph_pixel(int digit, int gx, int gy) {
  if (gx < 0 || gy < 0 || gx >= static_cast<int>(glyph_width) ||
      gy >= static_cast<int>(glyph_height)) {
    return 0.0;
  }
  const auto& rows = kGlyphs[static_cast<std::size_t>(digit)];
  return (rows[static_cast<std::size_t>(gy)] >>
          (glyph_width - 1 - static_cast<std::size_t>(gx))) &
                 1
             ? 1.0
             : 0.0;
}

}  // namespace

std::array<std::uint8_t, glyph_height> digit_glyph(int digit) {
  AXC_EXPECTS(digit >= 0 && digit <= 9);
  return kGlyphs[static_cast<std::size_t>(digit)];
}

double glyph_sample(int digit, double gx, double gy) {
  AXC_EXPECTS(digit >= 0 && digit <= 9);
  const double fx = std::floor(gx);
  const double fy = std::floor(gy);
  const double tx = gx - fx;
  const double ty = gy - fy;
  const int x0 = static_cast<int>(fx);
  const int y0 = static_cast<int>(fy);
  const double v00 = glyph_pixel(digit, x0, y0);
  const double v10 = glyph_pixel(digit, x0 + 1, y0);
  const double v01 = glyph_pixel(digit, x0, y0 + 1);
  const double v11 = glyph_pixel(digit, x0 + 1, y0 + 1);
  return (1 - tx) * (1 - ty) * v00 + tx * (1 - ty) * v10 +
         (1 - tx) * ty * v01 + tx * ty * v11;
}

void render_glyph(std::span<std::uint8_t> pixels, std::size_t width,
                  std::size_t height, int digit,
                  const glyph_transform& transform, double intensity) {
  AXC_EXPECTS(pixels.size() == width * height);
  const double scale =
      transform.height_px / static_cast<double>(glyph_height);
  const double cos_r = std::cos(transform.rotation);
  const double sin_r = std::sin(transform.rotation);

  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      // Inverse affine: image -> glyph coordinates.
      const double dx = static_cast<double>(x) - transform.center_x;
      const double dy = static_cast<double>(y) - transform.center_y;
      const double rx = cos_r * dx + sin_r * dy;
      const double ry = -sin_r * dx + cos_r * dy;
      const double gx = rx / scale - transform.shear * ry / scale +
                        static_cast<double>(glyph_width) / 2.0 - 0.5;
      const double gy =
          ry / scale + static_cast<double>(glyph_height) / 2.0 - 0.5;

      const double alpha = glyph_sample(digit, gx, gy);
      if (alpha <= 0.0) continue;
      auto& p = pixels[y * width + x];
      const double blended =
          (1.0 - alpha) * static_cast<double>(p) + alpha * intensity;
      p = static_cast<std::uint8_t>(std::clamp(blended, 0.0, 255.0));
    }
  }
}

}  // namespace axc::data
