#include "mult/multipliers.h"

#include <vector>

#include "mult/adders.h"
#include "mult/column_accumulator.h"
#include "support/assert.h"

namespace axc::mult {

using circuit::gate_fn;
using circuit::netlist;

namespace {

/// Shared generator core: deposits the (filtered) partial products of an
/// unsigned or Baugh-Wooley signed array into a column accumulator and
/// compresses it with the requested schedule.
netlist generate(unsigned width, bool is_signed, schedule sched,
                 const std::function<bool(unsigned, unsigned)>& keep) {
  AXC_EXPECTS(width >= 2);
  const std::size_t w = width;
  netlist nl(2 * w, 2 * w);
  column_accumulator acc(nl, 2 * w);

  auto a_bit = [&](unsigned i) { return static_cast<std::uint32_t>(i); };
  auto b_bit = [&](unsigned j) { return static_cast<std::uint32_t>(w + j); };

  if (!is_signed) {
    for (unsigned j = 0; j < width; ++j) {
      for (unsigned i = 0; i < width; ++i) {
        if (!keep(i, j)) continue;
        acc.add_bit(i + j, nl.add_gate(gate_fn::and2, a_bit(i), b_bit(j)));
      }
    }
  } else {
    // Baugh-Wooley: partial products touching exactly one sign bit are
    // inverted (NAND) and correction constants 2^w + 2^(2w-1) are added.
    const unsigned s = width - 1;  // sign-bit index
    for (unsigned j = 0; j < s; ++j) {
      for (unsigned i = 0; i < s; ++i) {
        if (!keep(i, j)) continue;
        acc.add_bit(i + j, nl.add_gate(gate_fn::and2, a_bit(i), b_bit(j)));
      }
    }
    for (unsigned i = 0; i < s; ++i) {
      if (keep(i, s)) {
        acc.add_bit(i + s, nl.add_gate(gate_fn::nand2, a_bit(i), b_bit(s)));
      }
    }
    for (unsigned j = 0; j < s; ++j) {
      if (keep(s, j)) {
        acc.add_bit(s + j, nl.add_gate(gate_fn::nand2, a_bit(s), b_bit(j)));
      }
    }
    if (keep(s, s)) {
      acc.add_bit(2 * s, nl.add_gate(gate_fn::and2, a_bit(s), b_bit(s)));
    }
    acc.add_one(width);
    acc.add_one(2 * width - 1);
  }

  const std::vector<std::uint32_t> product =
      sched == schedule::ripple ? acc.ripple() : acc.wallace();
  for (std::size_t k = 0; k < 2 * w; ++k) {
    nl.set_output(k, product[k]);
  }
  return nl;
}

}  // namespace

netlist unsigned_multiplier(unsigned width, schedule sched) {
  return generate(width, /*is_signed=*/false, sched,
                  [](unsigned, unsigned) { return true; });
}

netlist signed_multiplier(unsigned width, schedule sched) {
  return generate(width, /*is_signed=*/true, sched,
                  [](unsigned, unsigned) { return true; });
}

netlist truncated_multiplier(unsigned width, unsigned dropped_columns,
                             bool is_signed) {
  AXC_EXPECTS(dropped_columns <= 2 * width);
  return generate(width, is_signed, schedule::ripple,
                  [dropped_columns](unsigned i, unsigned j) {
                    return i + j >= dropped_columns;
                  });
}

netlist broken_array_multiplier(unsigned width, unsigned hbl, unsigned vbl,
                                bool is_signed) {
  AXC_EXPECTS(hbl <= width && vbl <= 2 * width);
  return generate(width, is_signed, schedule::ripple,
                  [hbl, vbl](unsigned i, unsigned j) {
                    return j >= hbl && i + j >= vbl;
                  });
}

netlist filtered_multiplier(
    unsigned width, bool is_signed, schedule sched,
    const std::function<bool(unsigned, unsigned)>& keep) {
  return generate(width, is_signed, sched, keep);
}

netlist zero_exact_wrapper(const netlist& multiplier, unsigned width) {
  AXC_EXPECTS(multiplier.num_inputs() == 2 * std::size_t{width});
  AXC_EXPECTS(multiplier.num_outputs() == 2 * std::size_t{width});
  const std::size_t w = width;
  netlist nl(2 * w, 2 * w);

  std::vector<std::uint32_t> inputs(2 * w);
  for (std::size_t i = 0; i < 2 * w; ++i) {
    inputs[i] = static_cast<std::uint32_t>(i);
  }
  const std::vector<std::uint32_t> product = graft(nl, multiplier, inputs);

  // nonzero(A) and nonzero(B) via OR trees over the operand bits.
  auto or_tree = [&](std::size_t first) {
    std::uint32_t acc = static_cast<std::uint32_t>(first);
    for (std::size_t i = 1; i < w; ++i) {
      acc = nl.add_gate(gate_fn::or2, acc,
                        static_cast<std::uint32_t>(first + i));
    }
    return acc;
  };
  const std::uint32_t nz_a = or_tree(0);
  const std::uint32_t nz_b = or_tree(w);
  const std::uint32_t enable = nl.add_gate(gate_fn::and2, nz_a, nz_b);

  for (std::size_t o = 0; o < 2 * w; ++o) {
    nl.set_output(o, nl.add_gate(gate_fn::and2, product[o], enable));
  }
  return nl;
}

netlist build_mac(const netlist& multiplier, unsigned width,
                  unsigned acc_width, bool is_signed) {
  AXC_EXPECTS(multiplier.num_inputs() == 2 * std::size_t{width});
  AXC_EXPECTS(multiplier.num_outputs() == 2 * std::size_t{width});
  AXC_EXPECTS(acc_width >= 2 * width);

  const std::size_t w = width;
  const std::size_t n = acc_width;
  netlist nl(2 * w + n, n);

  std::vector<std::uint32_t> mult_inputs(2 * w);
  for (std::size_t i = 0; i < 2 * w; ++i) {
    mult_inputs[i] = static_cast<std::uint32_t>(i);
  }
  const std::vector<std::uint32_t> product =
      graft(nl, multiplier, mult_inputs);

  std::vector<std::uint32_t> accumulator(n);
  for (std::size_t i = 0; i < n; ++i) {
    accumulator[i] = static_cast<std::uint32_t>(2 * w + i);
  }

  const std::vector<std::uint32_t> sum =
      build_adder(nl, product, accumulator, n, /*sign_extend=*/is_signed);
  for (std::size_t i = 0; i < n; ++i) nl.set_output(i, sum[i]);
  return nl;
}

}  // namespace axc::mult
