// Radix-4 (modified) Booth multiplier generator.
//
// Recodes operand B into w/2 signed digits in {-2,-1,0,+1,+2}; each digit
// selects 0 / +-A / +-2A as a partial product, halving the partial-product
// count relative to the array multiplier at the cost of recoding logic.
// Provides a structurally different exact seed for the CGP search (used by
// the seeding ablation) and a third conventional design point.
#pragma once

#include "circuit/netlist.h"
#include "mult/multipliers.h"

namespace axc::mult {

/// Signed (two's complement) w x w -> 2w Booth multiplier; `width` must be
/// even and >= 2.
circuit::netlist booth_multiplier(unsigned width,
                                  schedule sched = schedule::ripple);

}  // namespace axc::mult
