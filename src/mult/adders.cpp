#include "mult/adders.h"

#include "support/assert.h"

namespace axc::mult {

using circuit::gate_fn;
using circuit::netlist;

std::vector<std::uint32_t> build_adder(netlist& nl,
                                       std::span<const std::uint32_t> a,
                                       std::span<const std::uint32_t> b,
                                       std::size_t result_width,
                                       bool sign_extend) {
  AXC_EXPECTS(!a.empty() && !b.empty() && result_width > 0);

  const std::uint32_t zero = nl.add_gate(gate_fn::const0, 0, 0);
  auto bit_of = [&](std::span<const std::uint32_t> bits,
                    std::size_t k) -> std::uint32_t {
    if (k < bits.size()) return bits[k];
    return sign_extend ? bits.back() : zero;
  };

  std::vector<std::uint32_t> sum(result_width);
  std::uint32_t carry = 0;
  bool has_carry = false;
  for (std::size_t k = 0; k < result_width; ++k) {
    const std::uint32_t x = bit_of(a, k);
    const std::uint32_t y = bit_of(b, k);
    const std::uint32_t xy = nl.add_gate(gate_fn::xor2, x, y);
    if (!has_carry) {
      sum[k] = xy;
      carry = nl.add_gate(gate_fn::and2, x, y);
      has_carry = true;
    } else {
      sum[k] = nl.add_gate(gate_fn::xor2, xy, carry);
      if (k + 1 < result_width) {
        const std::uint32_t g = nl.add_gate(gate_fn::and2, x, y);
        const std::uint32_t p = nl.add_gate(gate_fn::and2, xy, carry);
        carry = nl.add_gate(gate_fn::or2, g, p);
      }
    }
  }
  return sum;
}

netlist ripple_adder(unsigned width) {
  AXC_EXPECTS(width >= 1);
  netlist nl(2 * std::size_t{width}, std::size_t{width} + 1);
  std::vector<std::uint32_t> a(width), b(width);
  for (unsigned i = 0; i < width; ++i) {
    a[i] = i;
    b[i] = width + i;
  }
  const std::vector<std::uint32_t> sum =
      build_adder(nl, a, b, std::size_t{width} + 1, /*sign_extend=*/false);
  for (unsigned i = 0; i <= width; ++i) nl.set_output(i, sum[i]);
  return nl;
}

}  // namespace axc::mult
