// Column-based partial-product accumulation.
//
// Arithmetic circuit generators deposit single-bit terms into weighted
// columns (bit k of the result has weight 2^k); the accumulator then
// compresses every column to one signal using half/full adder cells built
// from two-input gates.  Two schedules are provided:
//
//  - ripple():  columns are finalized LSB-first, carries ripple upward —
//               the classic *array multiplier* structure (compact, deep).
//  - wallace(): rounds of parallel 3:2 / 2:2 compression followed by the
//               final carry chain — a *Wallace-tree-like* structure
//               (larger, shallow).  Used to diversify CGP seeds.
//
// Bits added beyond the result width are discarded (arithmetic mod 2^width),
// matching the fixed output width of the multiplier interface.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/netlist.h"

namespace axc::mult {

class column_accumulator {
 public:
  column_accumulator(circuit::netlist& nl, std::size_t result_width);

  /// Adds signal `bit` with weight 2^column.
  void add_bit(std::size_t column, std::uint32_t bit);

  /// Adds the constant 1 with weight 2^column (folded where possible).
  void add_one(std::size_t column);

  /// Compresses with the ripple (array) schedule and returns one signal per
  /// result bit.  The accumulator is consumed.
  std::vector<std::uint32_t> ripple();

  /// Compresses with the Wallace schedule.  The accumulator is consumed.
  std::vector<std::uint32_t> wallace();

 private:
  /// sum/carry of a full adder over three signals.
  std::pair<std::uint32_t, std::uint32_t> full_adder(std::uint32_t a,
                                                     std::uint32_t b,
                                                     std::uint32_t c);
  /// sum/carry of a half adder over two signals.
  std::pair<std::uint32_t, std::uint32_t> half_adder(std::uint32_t a,
                                                     std::uint32_t b);
  /// Materializes constant-1 carries into signals before compression.
  void lower_constants();
  std::uint32_t const_signal(bool value);
  std::vector<std::uint32_t> collect_results();

  circuit::netlist& nl_;
  std::vector<std::vector<std::uint32_t>> columns_;
  std::vector<std::size_t> const_ones_;
};

}  // namespace axc::mult
