#include "mult/lut.h"

#include "support/assert.h"

namespace axc::mult {

namespace {

std::vector<std::int32_t> narrow_table(std::vector<std::int64_t> wide) {
  std::vector<std::int32_t> table(wide.size());
  for (std::size_t v = 0; v < wide.size(); ++v) {
    table[v] = static_cast<std::int32_t>(wide[v]);
  }
  return table;
}

}  // namespace

product_lut::product_lut(const circuit::netlist& multiplier,
                         const metrics::mult_spec& spec)
    : spec_(spec),
      table_(narrow_table(metrics::product_table(multiplier, spec))) {
  AXC_EXPECTS(spec.width <= 12);  // 2^(2w) table entries
}

product_lut product_lut::exact(const metrics::mult_spec& spec) {
  return product_lut(spec, narrow_table(metrics::exact_product_table(spec)));
}

}  // namespace axc::mult
