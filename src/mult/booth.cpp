#include "mult/booth.h"

#include "mult/column_accumulator.h"
#include "support/assert.h"

namespace axc::mult {

using circuit::gate_fn;
using circuit::netlist;

netlist booth_multiplier(unsigned width, schedule sched) {
  AXC_EXPECTS(width >= 2 && width % 2 == 0);
  const std::size_t w = width;
  netlist nl(2 * w, 2 * w);
  column_accumulator acc(nl, 2 * w);

  auto a_bit = [&](std::size_t i) {
    // Sign extension above the MSB.
    return static_cast<std::uint32_t>(i < w ? i : w - 1);
  };
  auto b_bit = [&](std::size_t j) { return static_cast<std::uint32_t>(w + j); };

  for (unsigned digit = 0; digit < width / 2; ++digit) {
    const std::size_t shift = 2 * std::size_t{digit};
    const std::uint32_t s = b_bit(2 * digit + 1);  // digit sign
    const std::uint32_t x = b_bit(2 * digit);

    // one = x ^ y, two = s ? ~x&~y : x&y   (y = b_{2j-1}, zero for j = 0).
    std::uint32_t one = 0, two = 0;
    if (digit == 0) {
      one = x;  // x ^ 0
      two = nl.add_gate(gate_fn::andn_ab, s, x);
    } else {
      const std::uint32_t y = b_bit(2 * digit - 1);
      one = nl.add_gate(gate_fn::xor2, x, y);
      const std::uint32_t nxy = nl.add_gate(gate_fn::nor2, x, y);
      const std::uint32_t axy = nl.add_gate(gate_fn::and2, x, y);
      const std::uint32_t t1 = nl.add_gate(gate_fn::and2, s, nxy);
      // axy & ~s, phrased with andn_ab so Booth seeds stay inside the
      // default CGP function set.
      const std::uint32_t t2 = nl.add_gate(gate_fn::andn_ab, axy, s);
      two = nl.add_gate(gate_fn::or2, t1, t2);
    }

    // Partial product bits 0..w of (one ? A : two ? 2A : 0) ^ neg, sign-
    // extended over the remaining columns; +neg corrects the negation.
    std::uint32_t top_bit = 0;
    for (std::size_t i = 0; i <= w; ++i) {
      const std::uint32_t u = nl.add_gate(gate_fn::and2, one, a_bit(i));
      std::uint32_t sel = u;
      if (i > 0) {
        const std::uint32_t v = nl.add_gate(gate_fn::and2, two, a_bit(i - 1));
        sel = nl.add_gate(gate_fn::or2, u, v);
      }
      const std::uint32_t ppx = nl.add_gate(gate_fn::xor2, sel, s);
      acc.add_bit(shift + i, ppx);
      if (i == w) top_bit = ppx;
    }
    for (std::size_t col = shift + w + 1; col < 2 * w; ++col) {
      acc.add_bit(col, top_bit);  // sign replication
    }
    acc.add_bit(shift, s);  // +1 when the digit is negative
  }

  const std::vector<std::uint32_t> product =
      sched == schedule::ripple ? acc.ripple() : acc.wallace();
  for (std::size_t k = 0; k < 2 * w; ++k) nl.set_output(k, product[k]);
  return nl;
}

}  // namespace axc::mult
