// Product lookup tables: the bridge from gate-level multipliers to
// application-level simulation (image filters, quantized NN inference).
//
// An 8-bit multiplier is fully characterized by its 65536-entry product
// table; applications then "execute" the approximate circuit at LUT speed,
// exactly as the paper evaluates approximate NNs.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/netlist.h"
#include "metrics/mult_spec.h"

namespace axc::mult {

class product_lut {
 public:
  /// Characterizes a multiplier netlist exhaustively.
  product_lut(const circuit::netlist& multiplier,
              const metrics::mult_spec& spec);

  /// Behavioural LUT for the exact product (reference paths).
  static product_lut exact(const metrics::mult_spec& spec);

  /// Product by operand *bit patterns* (masked to width).
  [[nodiscard]] std::int32_t by_pattern(std::uint32_t a,
                                        std::uint32_t b) const {
    const std::uint32_t mask = (1u << spec_.width) - 1u;
    return table_[((b & mask) << spec_.width) | (a & mask)];
  }

  /// Product by operand *values*; signed specs accept negative operands.
  /// Operand A is the distribution-carrying operand (coefficient/weight).
  [[nodiscard]] std::int32_t multiply(std::int32_t a, std::int32_t b) const {
    return by_pattern(static_cast<std::uint32_t>(a),
                      static_cast<std::uint32_t>(b));
  }

  [[nodiscard]] const metrics::mult_spec& spec() const { return spec_; }
  [[nodiscard]] const std::vector<std::int32_t>& table() const {
    return table_;
  }

 private:
  product_lut(metrics::mult_spec spec, std::vector<std::int32_t> table)
      : spec_(spec), table_(std::move(table)) {}

  metrics::mult_spec spec_;
  std::vector<std::int32_t> table_;
};

}  // namespace axc::mult
