// Legacy entry point for multiplier product tables.
//
// product_lut is now the multiplier instantiation of the spec-generic
// metrics::basic_compiled_table (metrics/compiled_table.h): one compile,
// wide-lane batch characterization, same 65536-entry 8-bit product table
// the applications "execute" at LUT speed.  Kept so historic call sites
// (and the paper-facing name) keep working unchanged.
#pragma once

#include "metrics/compiled_table.h"

namespace axc::mult {

using product_lut = metrics::compiled_mult_table;

}  // namespace axc::mult
