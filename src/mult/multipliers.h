// Conventional multiplier generators.
//
// These serve three roles in the reproduction:
//   1. exact multipliers seed the CGP search (the paper seeds with
//      "different conventional implementations of exact multipliers");
//   2. truncated and broken-array multipliers are the paper's conventional
//      approximate baselines (Fig. 3, Fig. 7);
//   3. the zero-exact wrapper reproduces the multiply-by-zero guarantee of
//      Mrazek et al. [6], one of the compared families in Fig. 7.
//
// Interface convention (metrics/mult_spec.h): inputs 0..w-1 = operand A,
// inputs w..2w-1 = operand B, outputs 0..2w-1 = product, LSB first; signed
// circuits use two's complement.
#pragma once

#include <cstdint>
#include <functional>

#include "circuit/netlist.h"

namespace axc::mult {

enum class schedule {
  ripple,   ///< array-multiplier-like carry propagation (compact, deep)
  wallace,  ///< tree compression (larger, shallow)
};

/// Exact unsigned w x w multiplier.
circuit::netlist unsigned_multiplier(unsigned width,
                                     schedule sched = schedule::ripple);

/// Exact signed (two's complement) w x w multiplier, Baugh-Wooley form.
circuit::netlist signed_multiplier(unsigned width,
                                   schedule sched = schedule::ripple);

/// Truncated array multiplier: partial products in the `dropped_columns`
/// least significant columns are removed (the classic truncation baseline
/// of Jiang et al. [1]).
circuit::netlist truncated_multiplier(unsigned width, unsigned dropped_columns,
                                      bool is_signed = false);

/// Broken-array multiplier after Mahdiani et al. [13]: the first `hbl`
/// partial-product rows (operand-B LSB rows) and all partial products in
/// columns below `vbl` are omitted from the carry-save array.
circuit::netlist broken_array_multiplier(unsigned width, unsigned hbl,
                                         unsigned vbl, bool is_signed = false);

/// Generic partial-product filter: `keep(i, j)` decides whether the partial
/// product a_i * b_j enters the array.  The exact generators above are the
/// all-true instance; custom filters give further structural baselines.
circuit::netlist filtered_multiplier(
    unsigned width, bool is_signed, schedule sched,
    const std::function<bool(unsigned, unsigned)>& keep);

/// Wraps any w x w multiplier so that a zero operand always yields a zero
/// product (exact multiply-by-zero, as in Mrazek et al. [6]).
circuit::netlist zero_exact_wrapper(const circuit::netlist& multiplier,
                                    unsigned width);

/// Multiply-accumulate unit: inputs A(w), B(w), ACC(acc_width); outputs
/// ACC + extend(A*B) mod 2^acc_width.  The product is sign-extended for
/// signed MACs, zero-extended otherwise.  This is the paper's processing
/// element (Sec. V-B): an 8-bit multiplier plus an n-bit accumulate adder.
circuit::netlist build_mac(const circuit::netlist& multiplier, unsigned width,
                           unsigned acc_width, bool is_signed);

}  // namespace axc::mult
