// Conventional approximate adders (survey [1] families).
//
// Included to demonstrate that the WMED methodology is not multiplier-
// specific (the paper presents it "for combinational circuits", using
// multipliers only for exposition) and to serve as adder baselines in the
// adder_study bench.
//
// Interface: inputs a[0..w-1], b[0..w-1]; outputs sum[0..w] (unsigned).
#pragma once

#include "circuit/netlist.h"

namespace axc::mult {

/// Lower-part OR adder (LOA): the `approx_bits` least significant sum bits
/// are computed as a_i | b_i; a single AND of the top approximate bit pair
/// feeds the exact upper ripple adder as carry-in.
circuit::netlist lower_or_adder(unsigned width, unsigned approx_bits);

/// Equal-segmentation adder (ESA): independent `segment`-bit ripple adders
/// with inter-segment carries dropped (carry-out of the last segment is
/// produced as sum[w]).
circuit::netlist segmented_adder(unsigned width, unsigned segment);

/// Truncated adder: the `dropped` least significant sum bits are constant
/// zero and generate no carry; the upper part adds exactly.
circuit::netlist truncated_adder(unsigned width, unsigned dropped);

}  // namespace axc::mult
