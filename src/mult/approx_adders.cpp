#include "mult/approx_adders.h"

#include <vector>

#include "mult/adders.h"
#include "support/assert.h"

namespace axc::mult {

using circuit::gate_fn;
using circuit::netlist;

namespace {

/// Exact ripple over bit indices [from, width) with optional carry-in;
/// writes sum bits and the final carry (at index width).
void exact_upper(netlist& nl, std::vector<std::uint32_t>& sum, unsigned from,
                 unsigned width, std::uint32_t carry, bool has_carry) {
  auto a = [&](unsigned i) { return static_cast<std::uint32_t>(i); };
  auto b = [&](unsigned i) { return static_cast<std::uint32_t>(width + i); };

  for (unsigned i = from; i < width; ++i) {
    const std::uint32_t axb = nl.add_gate(gate_fn::xor2, a(i), b(i));
    if (!has_carry) {
      sum[i] = axb;
      carry = nl.add_gate(gate_fn::and2, a(i), b(i));
      has_carry = true;
    } else {
      sum[i] = nl.add_gate(gate_fn::xor2, axb, carry);
      const std::uint32_t g = nl.add_gate(gate_fn::and2, a(i), b(i));
      const std::uint32_t p = nl.add_gate(gate_fn::and2, axb, carry);
      carry = nl.add_gate(gate_fn::or2, g, p);
    }
  }
  sum[width] = has_carry ? carry : nl.add_gate(gate_fn::const0, 0, 0);
}

}  // namespace

netlist lower_or_adder(unsigned width, unsigned approx_bits) {
  AXC_EXPECTS(width >= 1 && approx_bits <= width);
  netlist nl(2 * std::size_t{width}, std::size_t{width} + 1);
  std::vector<std::uint32_t> sum(width + 1);

  for (unsigned i = 0; i < approx_bits; ++i) {
    sum[i] = nl.add_gate(gate_fn::or2, i, width + i);
  }
  std::uint32_t carry = 0;
  bool has_carry = false;
  if (approx_bits > 0) {
    carry = nl.add_gate(gate_fn::and2, approx_bits - 1,
                        width + approx_bits - 1);
    has_carry = true;
  }
  exact_upper(nl, sum, approx_bits, width, carry, has_carry);
  for (unsigned i = 0; i <= width; ++i) nl.set_output(i, sum[i]);
  return nl;
}

netlist segmented_adder(unsigned width, unsigned segment) {
  AXC_EXPECTS(width >= 1 && segment >= 1);
  netlist nl(2 * std::size_t{width}, std::size_t{width} + 1);
  std::vector<std::uint32_t> sum(width + 1);

  std::uint32_t last_carry = 0;
  bool have_last_carry = false;
  for (unsigned base = 0; base < width; base += segment) {
    const unsigned end = std::min(width, base + segment);
    std::uint32_t carry = 0;
    bool has_carry = false;
    for (unsigned i = base; i < end; ++i) {
      const std::uint32_t axb = nl.add_gate(gate_fn::xor2, i, width + i);
      if (!has_carry) {
        sum[i] = axb;
        carry = nl.add_gate(gate_fn::and2, i, width + i);
        has_carry = true;
      } else {
        sum[i] = nl.add_gate(gate_fn::xor2, axb, carry);
        const std::uint32_t g = nl.add_gate(gate_fn::and2, i, width + i);
        const std::uint32_t p = nl.add_gate(gate_fn::and2, axb, carry);
        carry = nl.add_gate(gate_fn::or2, g, p);
      }
    }
    last_carry = carry;
    have_last_carry = has_carry;
  }
  sum[width] =
      have_last_carry ? last_carry : nl.add_gate(gate_fn::const0, 0, 0);
  for (unsigned i = 0; i <= width; ++i) nl.set_output(i, sum[i]);
  return nl;
}

netlist truncated_adder(unsigned width, unsigned dropped) {
  AXC_EXPECTS(width >= 1 && dropped <= width);
  netlist nl(2 * std::size_t{width}, std::size_t{width} + 1);
  std::vector<std::uint32_t> sum(width + 1);

  const std::uint32_t zero = nl.add_gate(gate_fn::const0, 0, 0);
  for (unsigned i = 0; i < dropped; ++i) sum[i] = zero;
  exact_upper(nl, sum, dropped, width, 0, /*has_carry=*/false);
  for (unsigned i = 0; i <= width; ++i) nl.set_output(i, sum[i]);
  return nl;
}

}  // namespace axc::mult
