// Adder generators: standalone ripple-carry adder netlists and an in-place
// builder used when composing larger datapaths (MAC units).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "circuit/netlist.h"

namespace axc::mult {

/// Builds sum bits a + b inside `nl`.  Operands may differ in length; the
/// shorter one is zero- or sign-extended according to `sign_extend`.
/// Returns `result_width` sum bits (LSB first); arithmetic is mod
/// 2^result_width.
std::vector<std::uint32_t> build_adder(circuit::netlist& nl,
                                       std::span<const std::uint32_t> a,
                                       std::span<const std::uint32_t> b,
                                       std::size_t result_width,
                                       bool sign_extend);

/// Standalone w+w -> w+1 unsigned ripple-carry adder.
/// Inputs: a[0..w-1], b[0..w-1]; outputs: sum[0..w].
circuit::netlist ripple_adder(unsigned width);

}  // namespace axc::mult
