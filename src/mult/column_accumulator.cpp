#include "mult/column_accumulator.h"

#include "support/assert.h"

namespace axc::mult {

using circuit::gate_fn;

column_accumulator::column_accumulator(circuit::netlist& nl,
                                       std::size_t result_width)
    : nl_(nl), columns_(result_width), const_ones_(result_width, 0) {
  AXC_EXPECTS(result_width > 0);
}

void column_accumulator::add_bit(std::size_t column, std::uint32_t bit) {
  if (column >= columns_.size()) return;  // beyond result width: mod 2^w
  columns_[column].push_back(bit);
}

void column_accumulator::add_one(std::size_t column) {
  if (column >= columns_.size()) return;
  ++const_ones_[column];
}

std::pair<std::uint32_t, std::uint32_t> column_accumulator::full_adder(
    std::uint32_t a, std::uint32_t b, std::uint32_t c) {
  const std::uint32_t axb = nl_.add_gate(gate_fn::xor2, a, b);
  const std::uint32_t sum = nl_.add_gate(gate_fn::xor2, axb, c);
  const std::uint32_t ab = nl_.add_gate(gate_fn::and2, a, b);
  const std::uint32_t cx = nl_.add_gate(gate_fn::and2, axb, c);
  const std::uint32_t carry = nl_.add_gate(gate_fn::or2, ab, cx);
  return {sum, carry};
}

std::pair<std::uint32_t, std::uint32_t> column_accumulator::half_adder(
    std::uint32_t a, std::uint32_t b) {
  const std::uint32_t sum = nl_.add_gate(gate_fn::xor2, a, b);
  const std::uint32_t carry = nl_.add_gate(gate_fn::and2, a, b);
  return {sum, carry};
}

std::uint32_t column_accumulator::const_signal(bool value) {
  return nl_.add_gate(value ? gate_fn::const1 : gate_fn::const0, 0, 0);
}

void column_accumulator::lower_constants() {
  // Pairs of constant ones in a column carry into the next column; a single
  // remaining one is folded into an existing signal x as a half-add with 1:
  // sum = ~x (one inverter), carry = x.  Only a fully empty column needs a
  // materialized const1.
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c + 1 < columns_.size()) {
      const_ones_[c + 1] += const_ones_[c] / 2;
    }
    if (const_ones_[c] % 2 == 0) {
      const_ones_[c] = 0;
      continue;
    }
    const_ones_[c] = 0;
    if (!columns_[c].empty()) {
      const std::uint32_t x = columns_[c].back();
      columns_[c].back() = nl_.add_unary(gate_fn::not_a, x);
      if (c + 1 < columns_.size()) columns_[c + 1].push_back(x);
    } else {
      columns_[c].push_back(const_signal(true));
    }
  }
}

std::vector<std::uint32_t> column_accumulator::collect_results() {
  std::vector<std::uint32_t> result(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    AXC_ASSERT(columns_[c].size() <= 1);
    result[c] = columns_[c].empty() ? const_signal(false) : columns_[c][0];
  }
  return result;
}

std::vector<std::uint32_t> column_accumulator::ripple() {
  lower_constants();
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    auto& col = columns_[c];
    while (col.size() > 1) {
      if (col.size() >= 3) {
        const std::uint32_t a = col.back(); col.pop_back();
        const std::uint32_t b = col.back(); col.pop_back();
        const std::uint32_t d = col.back(); col.pop_back();
        const auto [sum, carry] = full_adder(a, b, d);
        col.push_back(sum);
        if (c + 1 < columns_.size()) columns_[c + 1].push_back(carry);
      } else {
        const std::uint32_t a = col.back(); col.pop_back();
        const std::uint32_t b = col.back(); col.pop_back();
        const auto [sum, carry] = half_adder(a, b);
        col.push_back(sum);
        if (c + 1 < columns_.size()) columns_[c + 1].push_back(carry);
      }
    }
  }
  return collect_results();
}

std::vector<std::uint32_t> column_accumulator::wallace() {
  lower_constants();
  bool reduced = true;
  while (reduced) {
    reduced = false;
    // One parallel round: compress every column that currently holds more
    // than two bits; carries land in the next column for the *next* round.
    std::vector<std::vector<std::uint32_t>> next(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      auto& col = columns_[c];
      std::size_t k = 0;
      while (col.size() - k >= 3) {
        const auto [sum, carry] = full_adder(col[k], col[k + 1], col[k + 2]);
        k += 3;
        next[c].push_back(sum);
        if (c + 1 < columns_.size()) next[c + 1].push_back(carry);
        reduced = true;
      }
      if (col.size() - k == 2 && col.size() > 2) {
        const auto [sum, carry] = half_adder(col[k], col[k + 1]);
        k += 2;
        next[c].push_back(sum);
        if (c + 1 < columns_.size()) next[c + 1].push_back(carry);
        reduced = true;
      }
      for (; k < col.size(); ++k) next[c].push_back(col[k]);
    }
    columns_ = std::move(next);
  }
  // Columns now hold at most two bits: final carry-propagate (ripple) pass.
  return ripple();
}

}  // namespace axc::mult
