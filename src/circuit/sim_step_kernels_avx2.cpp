// AVX2 step-executor backend (two 256-bit ops per gate row).  Compiled with
// -mavx2 when the compiler accepts it; null entry points otherwise.  AVX2
// has no compress-store, so the pack kernel stays scalar at this level.
#include "circuit/sim_step_kernels.h"

namespace axc::circuit::detail {

#if defined(__AVX2__)

namespace {

void run_steps_avx2(const sim_step* steps, std::size_t count,
                    std::uint64_t* slots) {
  run_steps_w8<simd::vu64x8<simd::level::avx2>>(steps, count, slots);
}

void run_steps_indexed_avx2(const sim_step* table,
                            const std::uint32_t* indices, std::size_t count,
                            std::uint64_t* slots) {
  run_steps_indexed_w8<simd::vu64x8<simd::level::avx2>>(table, indices, count,
                                                        slots);
}

void run_steps_batch_avx2(const sim_step* table, const std::uint32_t* indices,
                          std::size_t count, const sim_batch_lane* lanes,
                          std::size_t n) {
  run_steps_batch_w8<simd::vu64x8<simd::level::avx2>>(table, indices, count,
                                                      lanes, n);
}

}  // namespace

sim_steps_fn sim_steps_kernel_avx2() { return &run_steps_avx2; }
sim_steps_indexed_fn sim_steps_indexed_kernel_avx2() {
  return &run_steps_indexed_avx2;
}
sim_steps_batch_fn sim_steps_batch_kernel_avx2() {
  return &run_steps_batch_avx2;
}

#else

sim_steps_fn sim_steps_kernel_avx2() { return nullptr; }
sim_steps_indexed_fn sim_steps_indexed_kernel_avx2() { return nullptr; }
sim_steps_batch_fn sim_steps_batch_kernel_avx2() { return nullptr; }

#endif

}  // namespace axc::circuit::detail
