// Backend bodies for the sim_program<8> step executors (see simulator.h for
// the public dispatch API).  The eight 64-bit lanes of one signal are
// exactly one AVX-512 register (or two AVX2 registers), so executing a gate
// becomes load/op/store on whole rows instead of a scalar-u64 loop — the
// per-gate switch dispatch is then the only scalar work left in a pass.
//
// Three executor shapes share one gate body: the dense shape walks a packed
// step list (netlist-compiled schedules), the indexed shape walks a step
// *table* through an active-index list (the genotype-native incremental
// schedules, where the table is patched O(dirty) per mutant), and the batch
// shape walks the table through an index list for several candidate arenas
// at once — the lambda-batch evaluation engine.  The fourth kernel packs
// cone flags into an active-index list — the only O(nodes) step left on the
// incremental path, which AVX-512 collapses to compress-store chunks of
// sixteen.
//
// Each backend TU (sim_step_kernels*.cpp) instantiates these with its
// simd::vu64x8 specialization under the matching -m flags.  Cases load only
// the operand rows their gate function reads: manual schedules may legally
// wire ignored operands to unwritten slots, and the executor must never
// read those.
#pragma once

#include <cstddef>

#include "circuit/simulator.h"
#include "support/simd.h"

namespace axc::circuit::detail {

template <typename V>
inline void exec_step(const sim_step& s, std::uint64_t* slots) {
  const std::uint64_t* const a = slots + s.in0;
  const std::uint64_t* const b = slots + s.in1;
  std::uint64_t* const out = slots + s.out;
  switch (s.fn) {
    case gate_fn::const0:
      V::zero().store(out);
      break;
    case gate_fn::const1:
      V::ones().store(out);
      break;
    case gate_fn::buf_a:
      V::load(a).store(out);
      break;
    case gate_fn::not_a:
      (~V::load(a)).store(out);
      break;
    case gate_fn::buf_b:
      V::load(b).store(out);
      break;
    case gate_fn::not_b:
      (~V::load(b)).store(out);
      break;
    case gate_fn::and2:
      (V::load(a) & V::load(b)).store(out);
      break;
    case gate_fn::nand2:
      (~(V::load(a) & V::load(b))).store(out);
      break;
    case gate_fn::or2:
      (V::load(a) | V::load(b)).store(out);
      break;
    case gate_fn::nor2:
      (~(V::load(a) | V::load(b))).store(out);
      break;
    case gate_fn::xor2:
      (V::load(a) ^ V::load(b)).store(out);
      break;
    case gate_fn::xnor2:
      (~(V::load(a) ^ V::load(b))).store(out);
      break;
    case gate_fn::andn_ab:
      V::andnot(V::load(b), V::load(a)).store(out);
      break;
    case gate_fn::andn_ba:
      V::andnot(V::load(a), V::load(b)).store(out);
      break;
    case gate_fn::orn_ab:
      (V::load(a) | ~V::load(b)).store(out);
      break;
    case gate_fn::orn_ba:
      (~V::load(a) | V::load(b)).store(out);
      break;
  }
}

template <typename V>
void run_steps_w8(const sim_step* steps, std::size_t count,
                  std::uint64_t* slots) {
  for (std::size_t i = 0; i < count; ++i) exec_step<V>(steps[i], slots);
}

template <typename V>
void run_steps_indexed_w8(const sim_step* table, const std::uint32_t* indices,
                          std::size_t count, std::uint64_t* slots) {
  for (std::size_t i = 0; i < count; ++i) {
    exec_step<V>(table[indices[i]], slots);
  }
}

/// The lambda-batch walk: one pass over the index list executes every
/// candidate arena before moving to the next step.  The point is
/// instruction-bandwidth amortization, not memory: the solo executors are
/// uop-throughput-bound at one vector op per ~14 front-end uops (step
/// fetch, switch dispatch, loop), so the step fetch and dispatch happen
/// ONCE here and each case loops over the arenas — the per-candidate
/// marginal cost is just the load/op/store triple plus the tight inner
/// loop, roughly half the solo front-end budget.  (Dispatching per
/// candidate instead — exec_step inside the loop — re-pays the whole
/// budget n times and measures *slower* than solo.)
///
/// Patched lanes are handled in here rather than by segmenting the index
/// list around patch boundaries: the hot loop pays one predictable
/// compare per step against the minimum outstanding patch node, and only
/// steps at a patch boundary fall into the per-lane dispatch below.  The
/// segmented alternative (cut the list, call the kernel per segment, run
/// each lane's patch through the solo executor) costs an indirect call
/// per lane per cut plus a lower_bound per segment — measurably ~35% of
/// a whole pass at realistic patch densities.
/// Body shared by every lane count: N > 0 is a compile-time lane count
/// (the per-case lane loops below fully unroll and the arena pointers live
/// in registers), N == 0 falls back to the runtime `n`.
template <typename V, std::size_t N>
void run_steps_batch_impl(const sim_step* table, const std::uint32_t* indices,
                          std::size_t count, const sim_batch_lane* lanes,
                          std::size_t n) {
  const std::size_t nn = N != 0 ? N : n;
  constexpr std::uint32_t kDone = 0xffffffffu;
  std::uint64_t* ar[N != 0 ? N : kMaxBatchLanes];
  std::size_t cur[N != 0 ? N : kMaxBatchLanes];
  std::uint32_t next = kDone;  // min outstanding patch node over all lanes
  for (std::size_t c = 0; c < nn; ++c) {
    ar[c] = lanes[c].arena;
    cur[c] = 0;
    if (lanes[c].patch_count != 0 && lanes[c].patch_nodes[0] < next) {
      next = lanes[c].patch_nodes[0];
    }
  }
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t idx = indices[i];
    if (idx >= next) {
      // Patch boundary: dispatch this step per lane, substituting each
      // lane's own override.  Cursors pointing at nodes below idx name
      // patches outside the index list (legal — those rows are never
      // read); retire them in passing.
      for (std::size_t c = 0; c < nn; ++c) {
        const sim_batch_lane& lane = lanes[c];
        std::size_t& k = cur[c];
        while (k < lane.patch_count && lane.patch_nodes[k] < idx) ++k;
        if (k < lane.patch_count && lane.patch_nodes[k] == idx) {
          exec_step<V>(lane.patch_steps[k], lane.arena);
          ++k;
        } else {
          exec_step<V>(table[idx], lane.arena);
        }
      }
      next = kDone;
      for (std::size_t c = 0; c < nn; ++c) {
        if (cur[c] < lanes[c].patch_count &&
            lanes[c].patch_nodes[cur[c]] < next) {
          next = lanes[c].patch_nodes[cur[c]];
        }
      }
      continue;
    }
    const sim_step& s = table[idx];
    const std::uint32_t ia = s.in0;
    const std::uint32_t ib = s.in1;
    const std::uint32_t io = s.out;
    switch (s.fn) {
      case gate_fn::const0:
        for (std::size_t c = 0; c < nn; ++c) {
          V::zero().store(ar[c] + io);
        }
        break;
      case gate_fn::const1:
        for (std::size_t c = 0; c < nn; ++c) {
          V::ones().store(ar[c] + io);
        }
        break;
      case gate_fn::buf_a:
        for (std::size_t c = 0; c < nn; ++c) {
          std::uint64_t* const p = ar[c];
          V::load(p + ia).store(p + io);
        }
        break;
      case gate_fn::not_a:
        for (std::size_t c = 0; c < nn; ++c) {
          std::uint64_t* const p = ar[c];
          (~V::load(p + ia)).store(p + io);
        }
        break;
      case gate_fn::buf_b:
        for (std::size_t c = 0; c < nn; ++c) {
          std::uint64_t* const p = ar[c];
          V::load(p + ib).store(p + io);
        }
        break;
      case gate_fn::not_b:
        for (std::size_t c = 0; c < nn; ++c) {
          std::uint64_t* const p = ar[c];
          (~V::load(p + ib)).store(p + io);
        }
        break;
      case gate_fn::and2:
        for (std::size_t c = 0; c < nn; ++c) {
          std::uint64_t* const p = ar[c];
          (V::load(p + ia) & V::load(p + ib)).store(p + io);
        }
        break;
      case gate_fn::nand2:
        for (std::size_t c = 0; c < nn; ++c) {
          std::uint64_t* const p = ar[c];
          (~(V::load(p + ia) & V::load(p + ib))).store(p + io);
        }
        break;
      case gate_fn::or2:
        for (std::size_t c = 0; c < nn; ++c) {
          std::uint64_t* const p = ar[c];
          (V::load(p + ia) | V::load(p + ib)).store(p + io);
        }
        break;
      case gate_fn::nor2:
        for (std::size_t c = 0; c < nn; ++c) {
          std::uint64_t* const p = ar[c];
          (~(V::load(p + ia) | V::load(p + ib))).store(p + io);
        }
        break;
      case gate_fn::xor2:
        for (std::size_t c = 0; c < nn; ++c) {
          std::uint64_t* const p = ar[c];
          (V::load(p + ia) ^ V::load(p + ib)).store(p + io);
        }
        break;
      case gate_fn::xnor2:
        for (std::size_t c = 0; c < nn; ++c) {
          std::uint64_t* const p = ar[c];
          (~(V::load(p + ia) ^ V::load(p + ib))).store(p + io);
        }
        break;
      case gate_fn::andn_ab:
        for (std::size_t c = 0; c < nn; ++c) {
          std::uint64_t* const p = ar[c];
          V::andnot(V::load(p + ib), V::load(p + ia)).store(p + io);
        }
        break;
      case gate_fn::andn_ba:
        for (std::size_t c = 0; c < nn; ++c) {
          std::uint64_t* const p = ar[c];
          V::andnot(V::load(p + ia), V::load(p + ib)).store(p + io);
        }
        break;
      case gate_fn::orn_ab:
        for (std::size_t c = 0; c < nn; ++c) {
          std::uint64_t* const p = ar[c];
          (V::load(p + ia) | ~V::load(p + ib)).store(p + io);
        }
        break;
      case gate_fn::orn_ba:
        for (std::size_t c = 0; c < nn; ++c) {
          std::uint64_t* const p = ar[c];
          (~V::load(p + ia) | V::load(p + ib)).store(p + io);
        }
        break;
    }
  }
}

/// Lane-count dispatch: the common CGP batch sizes (lambda <= 4) get
/// fully unrolled instantiations; anything larger takes the generic body.
template <typename V>
void run_steps_batch_w8(const sim_step* table, const std::uint32_t* indices,
                        std::size_t count, const sim_batch_lane* lanes,
                        std::size_t n) {
  switch (n) {
    case 1:
      return run_steps_batch_impl<V, 1>(table, indices, count, lanes, n);
    case 2:
      return run_steps_batch_impl<V, 2>(table, indices, count, lanes, n);
    case 3:
      return run_steps_batch_impl<V, 3>(table, indices, count, lanes, n);
    case 4:
      return run_steps_batch_impl<V, 4>(table, indices, count, lanes, n);
    default:
      return run_steps_batch_impl<V, 0>(table, indices, count, lanes, n);
  }
}

/// Backend entry points; null when the TU lacked the backend's ISA flags.
[[nodiscard]] sim_steps_fn sim_steps_kernel_scalar();
[[nodiscard]] sim_steps_fn sim_steps_kernel_avx2();
[[nodiscard]] sim_steps_fn sim_steps_kernel_avx512();
[[nodiscard]] sim_steps_indexed_fn sim_steps_indexed_kernel_scalar();
[[nodiscard]] sim_steps_indexed_fn sim_steps_indexed_kernel_avx2();
[[nodiscard]] sim_steps_indexed_fn sim_steps_indexed_kernel_avx512();
[[nodiscard]] sim_steps_batch_fn sim_steps_batch_kernel_scalar();
[[nodiscard]] sim_steps_batch_fn sim_steps_batch_kernel_avx2();
[[nodiscard]] sim_steps_batch_fn sim_steps_batch_kernel_avx512();
[[nodiscard]] sim_pack_fn sim_pack_kernel_scalar();
[[nodiscard]] sim_pack_fn sim_pack_kernel_avx512();

}  // namespace axc::circuit::detail
