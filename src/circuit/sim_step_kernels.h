// Backend bodies for the sim_program<8> step executors (see simulator.h for
// the public dispatch API).  The eight 64-bit lanes of one signal are
// exactly one AVX-512 register (or two AVX2 registers), so executing a gate
// becomes load/op/store on whole rows instead of a scalar-u64 loop — the
// per-gate switch dispatch is then the only scalar work left in a pass.
//
// Two executor shapes share one gate body: the dense shape walks a packed
// step list (netlist-compiled schedules), the indexed shape walks a step
// *table* through an active-index list (the genotype-native incremental
// schedules, where the table is patched O(dirty) per mutant).  The third
// kernel packs cone flags into an active-index list — the only O(nodes)
// step left on the incremental path, which AVX-512 collapses to
// compress-store chunks of sixteen.
//
// Each backend TU (sim_step_kernels*.cpp) instantiates these with its
// simd::vu64x8 specialization under the matching -m flags.  Cases load only
// the operand rows their gate function reads: manual schedules may legally
// wire ignored operands to unwritten slots, and the executor must never
// read those.
#pragma once

#include <cstddef>

#include "circuit/simulator.h"
#include "support/simd.h"

namespace axc::circuit::detail {

template <typename V>
inline void exec_step(const sim_step& s, std::uint64_t* slots) {
  const std::uint64_t* const a = slots + s.in0;
  const std::uint64_t* const b = slots + s.in1;
  std::uint64_t* const out = slots + s.out;
  switch (s.fn) {
    case gate_fn::const0:
      V::zero().store(out);
      break;
    case gate_fn::const1:
      V::ones().store(out);
      break;
    case gate_fn::buf_a:
      V::load(a).store(out);
      break;
    case gate_fn::not_a:
      (~V::load(a)).store(out);
      break;
    case gate_fn::buf_b:
      V::load(b).store(out);
      break;
    case gate_fn::not_b:
      (~V::load(b)).store(out);
      break;
    case gate_fn::and2:
      (V::load(a) & V::load(b)).store(out);
      break;
    case gate_fn::nand2:
      (~(V::load(a) & V::load(b))).store(out);
      break;
    case gate_fn::or2:
      (V::load(a) | V::load(b)).store(out);
      break;
    case gate_fn::nor2:
      (~(V::load(a) | V::load(b))).store(out);
      break;
    case gate_fn::xor2:
      (V::load(a) ^ V::load(b)).store(out);
      break;
    case gate_fn::xnor2:
      (~(V::load(a) ^ V::load(b))).store(out);
      break;
    case gate_fn::andn_ab:
      V::andnot(V::load(b), V::load(a)).store(out);
      break;
    case gate_fn::andn_ba:
      V::andnot(V::load(a), V::load(b)).store(out);
      break;
    case gate_fn::orn_ab:
      (V::load(a) | ~V::load(b)).store(out);
      break;
    case gate_fn::orn_ba:
      (~V::load(a) | V::load(b)).store(out);
      break;
  }
}

template <typename V>
void run_steps_w8(const sim_step* steps, std::size_t count,
                  std::uint64_t* slots) {
  for (std::size_t i = 0; i < count; ++i) exec_step<V>(steps[i], slots);
}

template <typename V>
void run_steps_indexed_w8(const sim_step* table, const std::uint32_t* indices,
                          std::size_t count, std::uint64_t* slots) {
  for (std::size_t i = 0; i < count; ++i) {
    exec_step<V>(table[indices[i]], slots);
  }
}

/// Backend entry points; null when the TU lacked the backend's ISA flags.
[[nodiscard]] sim_steps_fn sim_steps_kernel_scalar();
[[nodiscard]] sim_steps_fn sim_steps_kernel_avx2();
[[nodiscard]] sim_steps_fn sim_steps_kernel_avx512();
[[nodiscard]] sim_steps_indexed_fn sim_steps_indexed_kernel_scalar();
[[nodiscard]] sim_steps_indexed_fn sim_steps_indexed_kernel_avx2();
[[nodiscard]] sim_steps_indexed_fn sim_steps_indexed_kernel_avx512();
[[nodiscard]] sim_pack_fn sim_pack_kernel_scalar();
[[nodiscard]] sim_pack_fn sim_pack_kernel_avx512();

}  // namespace axc::circuit::detail
