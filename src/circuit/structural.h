// Structural netlist analysis: the quantities an EDA engineer asks of a
// design besides its function — size, depth, fanout, composition.  Used by
// the ablation benches to compare evolved circuit structure across
// configurations, and by reports.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "circuit/netlist.h"

namespace axc::circuit {

struct structural_stats {
  std::size_t total_gates{0};
  std::size_t active_gates{0};  ///< excluding wire-only buffers
  std::size_t logic_depth{0};   ///< unit-delay critical path (gate count)
  double average_fanout{0.0};   ///< over active signals with fanout > 0
  std::size_t max_fanout{0};
  /// Gate-function histogram over active gates, indexed by gate_fn.
  std::array<std::size_t, gate_fn_count> function_histogram{};
  /// Number of primary inputs in the functional support (cone of outputs).
  std::size_t support_size{0};
};

structural_stats analyze_structure(const netlist& nl);

/// Unit-delay arrival level of every signal (inputs at level 0); inactive
/// gates get level 0.
std::vector<std::size_t> logic_levels(const netlist& nl);

/// Fanout count per signal address (uses of each signal as an operand that
/// the consuming function actually reads, plus primary-output uses),
/// restricted to active gates.
std::vector<std::size_t> fanout_counts(const netlist& nl);

}  // namespace axc::circuit
