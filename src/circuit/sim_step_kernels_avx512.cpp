// AVX-512 step-executor and pack backends: one signal row is exactly one
// 512-bit register, so each gate is a load/op/store triple (negated ops
// fuse to VPTERNLOG), and the flags -> active-index pack collapses to
// compress-store chunks of sixteen.  Gated on the same feature set as the
// VPOPCNTDQ scan kernel (simd::level::avx512 means AVX-512F + VPOPCNTDQ
// everywhere) so a forced level selects one coherent backend for the whole
// sweep.
#include "circuit/sim_step_kernels.h"

#include <bit>

namespace axc::circuit::detail {

#if defined(__AVX512F__) && defined(__AVX512VPOPCNTDQ__)

namespace {

void run_steps_avx512(const sim_step* steps, std::size_t count,
                      std::uint64_t* slots) {
  run_steps_w8<simd::vu64x8<simd::level::avx512>>(steps, count, slots);
}

void run_steps_indexed_avx512(const sim_step* table,
                              const std::uint32_t* indices, std::size_t count,
                              std::uint64_t* slots) {
  run_steps_indexed_w8<simd::vu64x8<simd::level::avx512>>(table, indices,
                                                          count, slots);
}

std::size_t pack_avx512(const std::uint8_t* flags, std::size_t count,
                        std::uint32_t* out) {
  std::size_t n = 0;
  std::size_t t = 0;
  const __m512i iota = _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                         11, 12, 13, 14, 15);
  for (; t + 16 <= count; t += 16) {
    const __m512i f = _mm512_cvtepu8_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(flags + t)));
    const __mmask16 m =
        _mm512_cmpneq_epi32_mask(f, _mm512_setzero_si512());
    const __m512i idx =
        _mm512_add_epi32(iota, _mm512_set1_epi32(static_cast<int>(t)));
    _mm512_mask_compressstoreu_epi32(out + n, m, idx);
    n += std::popcount(static_cast<unsigned>(m));
  }
  for (; t < count; ++t) {
    out[n] = static_cast<std::uint32_t>(t);
    n += flags[t] != 0;
  }
  return n;
}

void run_steps_batch_avx512(const sim_step* table,
                            const std::uint32_t* indices, std::size_t count,
                            const sim_batch_lane* lanes, std::size_t n) {
  run_steps_batch_w8<simd::vu64x8<simd::level::avx512>>(table, indices, count,
                                                        lanes, n);
}

}  // namespace

sim_steps_fn sim_steps_kernel_avx512() { return &run_steps_avx512; }
sim_steps_indexed_fn sim_steps_indexed_kernel_avx512() {
  return &run_steps_indexed_avx512;
}
sim_pack_fn sim_pack_kernel_avx512() { return &pack_avx512; }
sim_steps_batch_fn sim_steps_batch_kernel_avx512() {
  return &run_steps_batch_avx512;
}

#else

sim_steps_fn sim_steps_kernel_avx512() { return nullptr; }
sim_steps_indexed_fn sim_steps_indexed_kernel_avx512() { return nullptr; }
sim_pack_fn sim_pack_kernel_avx512() { return nullptr; }
sim_steps_batch_fn sim_steps_batch_kernel_avx512() { return nullptr; }

#endif

}  // namespace axc::circuit::detail
