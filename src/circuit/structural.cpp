#include "circuit/structural.h"

#include <algorithm>

namespace axc::circuit {

std::vector<std::size_t> logic_levels(const netlist& nl) {
  const std::vector<bool> active = nl.active_mask();
  std::vector<std::size_t> level(nl.num_signals(), 0);
  for (std::size_t k = 0; k < nl.num_gates(); ++k) {
    if (!active[k]) continue;
    const gate_node& g = nl.gate(k);
    std::size_t depth = 0;
    if (depends_on_a(g.fn)) depth = std::max(depth, level[g.in0]);
    if (depends_on_b(g.fn)) depth = std::max(depth, level[g.in1]);
    const bool is_wire = g.fn == gate_fn::buf_a || g.fn == gate_fn::buf_b;
    level[nl.num_inputs() + k] = depth + (is_wire ? 0 : 1);
  }
  return level;
}

std::vector<std::size_t> fanout_counts(const netlist& nl) {
  const std::vector<bool> active = nl.active_mask();
  std::vector<std::size_t> fanout(nl.num_signals(), 0);
  for (std::size_t k = 0; k < nl.num_gates(); ++k) {
    if (!active[k]) continue;
    const gate_node& g = nl.gate(k);
    if (depends_on_a(g.fn)) ++fanout[g.in0];
    if (depends_on_b(g.fn)) ++fanout[g.in1];
  }
  for (const std::uint32_t out : nl.outputs()) ++fanout[out];
  return fanout;
}

structural_stats analyze_structure(const netlist& nl) {
  structural_stats stats;
  stats.total_gates = nl.num_gates();

  const std::vector<bool> active = nl.active_mask();
  for (std::size_t k = 0; k < nl.num_gates(); ++k) {
    if (!active[k]) continue;
    const gate_fn fn = nl.gate(k).fn;
    if (fn == gate_fn::buf_a || fn == gate_fn::buf_b) continue;
    ++stats.active_gates;
    ++stats.function_histogram[static_cast<std::size_t>(fn)];
  }

  const std::vector<std::size_t> levels = logic_levels(nl);
  for (const std::uint32_t out : nl.outputs()) {
    stats.logic_depth = std::max(stats.logic_depth, levels[out]);
  }

  const std::vector<std::size_t> fanout = fanout_counts(nl);
  std::size_t driven = 0, uses = 0;
  for (std::size_t s = 0; s < fanout.size(); ++s) {
    if (fanout[s] == 0) continue;
    ++driven;
    uses += fanout[s];
    stats.max_fanout = std::max(stats.max_fanout, fanout[s]);
  }
  stats.average_fanout =
      driven == 0 ? 0.0
                  : static_cast<double>(uses) / static_cast<double>(driven);

  // Functional support: inputs reachable backwards from the outputs through
  // operands the functions actually read.
  for (std::size_t i = 0; i < nl.num_inputs(); ++i) {
    if (fanout[i] > 0) ++stats.support_size;
  }
  return stats;
}

}  // namespace axc::circuit
