#include "circuit/simulator.h"

#include <algorithm>
#include <array>
#include <bit>
#include <limits>

#include "support/assert.h"

namespace axc::circuit {

void simulate_block(const netlist& nl, std::span<const std::uint64_t> inputs,
                    std::span<std::uint64_t> outputs,
                    std::span<std::uint64_t> scratch) {
  AXC_EXPECTS(inputs.size() == nl.num_inputs());
  AXC_EXPECTS(outputs.size() == nl.num_outputs());
  AXC_EXPECTS(scratch.size() >= nl.num_signals());

  for (std::size_t i = 0; i < inputs.size(); ++i) scratch[i] = inputs[i];

  const std::size_t ni = nl.num_inputs();
  const std::span<const gate_node> gates = nl.gates();
  for (std::size_t k = 0; k < gates.size(); ++k) {
    const gate_node& g = gates[k];
    scratch[ni + k] = eval_gate(g.fn, scratch[g.in0], scratch[g.in1]);
  }
  for (std::size_t o = 0; o < outputs.size(); ++o) {
    outputs[o] = scratch[nl.output(o)];
  }
}

std::uint64_t exhaustive_input_word(std::size_t input_index,
                                    std::size_t block) {
  // Inputs 0..5 have period 2,4,...,64 inside a word; the repeating patterns
  // are compile-time constants.  Input i >= 6 is bit (i - 6) of the block
  // index, replicated across the word.
  static constexpr std::array<std::uint64_t, 6> kWithinWord = {
      0xaaaaaaaaaaaaaaaaULL, 0xccccccccccccccccULL, 0xf0f0f0f0f0f0f0f0ULL,
      0xff00ff00ff00ff00ULL, 0xffff0000ffff0000ULL, 0xffffffff00000000ULL,
  };
  if (input_index < kWithinWord.size()) return kWithinWord[input_index];
  return (block >> (input_index - 6)) & 1 ? ~std::uint64_t{0} : 0;
}

std::vector<std::uint64_t> evaluate_exhaustive(const netlist& nl) {
  const std::size_t ni = nl.num_inputs();
  const std::size_t no = nl.num_outputs();
  AXC_EXPECTS(ni >= 1 && ni <= 26);
  AXC_EXPECTS(no >= 1 && no <= 64);

  const std::size_t total = std::size_t{1} << ni;
  const std::size_t blocks = (total + 63) / 64;
  std::vector<std::uint64_t> result(total, 0);

  std::vector<std::uint64_t> in_words(ni);
  std::vector<std::uint64_t> out_words(no);
  std::vector<std::uint64_t> scratch(nl.num_signals());

  for (std::size_t block = 0; block < blocks; ++block) {
    for (std::size_t i = 0; i < ni; ++i) {
      in_words[i] = exhaustive_input_word(i, block);
    }
    simulate_block(nl, in_words, out_words, scratch);

    // Transpose: bit t of out_words[o] becomes bit o of result[block*64+t].
    const std::size_t base = block * 64;
    const std::size_t limit = total - base < 64 ? total - base : 64;
    for (std::size_t o = 0; o < no; ++o) {
      std::uint64_t w = out_words[o];
      while (w != 0) {
        const int t = std::countr_zero(w);
        w &= w - 1;
        if (static_cast<std::size_t>(t) < limit) {
          result[base + static_cast<std::size_t>(t)] |= std::uint64_t{1} << o;
        }
      }
    }
  }
  return result;
}

template <std::size_t W>
void sim_program<W>::rebuild(const netlist& nl) {
  num_inputs_ = nl.num_inputs();
  const std::span<const gate_node> gates = nl.gates();

  // The cone rule (outputs seed it; functions that ignore an operand do not
  // pull it in) has a single owner: netlist::active_mask().
  const std::vector<bool> active = nl.active_mask();

  // Dense remap: inputs keep their slots, active gates are packed after
  // them in topological order.  Ignored operands of active gates may point
  // at inactive gates; wire them to slot 0 (the value is never observed).
  remap_.assign(nl.num_signals(), 0);
  for (std::uint32_t i = 0; i < num_inputs_; ++i) remap_[i] = i;
  steps_.clear();
  std::uint32_t next_slot = static_cast<std::uint32_t>(num_inputs_);
  for (std::size_t k = 0; k < gates.size(); ++k) {
    if (!active[k]) continue;
    const gate_node& g = gates[k];
    steps_.push_back(step{g.fn, static_cast<std::uint32_t>(remap_[g.in0] * W),
                          static_cast<std::uint32_t>(remap_[g.in1] * W),
                          static_cast<std::uint32_t>(next_slot * W)});
    remap_[num_inputs_ + k] = next_slot++;
  }

  output_slots_.resize(nl.num_outputs());
  for (std::size_t o = 0; o < nl.num_outputs(); ++o) {
    output_slots_[o] = static_cast<std::uint32_t>(remap_[nl.output(o)] * W);
  }
  slots_.resize((num_inputs_ + steps_.size()) * W + kSlotPad);
  indexed_ = false;
}

template <std::size_t W>
void sim_program<W>::run(std::span<const std::uint64_t> inputs,
                         std::span<std::uint64_t> outputs) {
  AXC_EXPECTS(outputs.size() == output_slots_.size() * W);
  run_in_place(inputs);

  const std::uint64_t* const base = slot_base();
  for (std::size_t o = 0; o < output_slots_.size(); ++o) {
    const std::uint64_t* const src = base + output_slots_[o];
    for (std::size_t w = 0; w < W; ++w) outputs[o * W + w] = src[w];
  }
}

template <std::size_t W>
void sim_program<W>::set_simd_level(simd::level l) {
  if (W != 8) return;
  const simd::level resolved = resolve_sim_steps_level(l);
  steps_fn_ = sim_steps_kernel(resolved);
  steps_idx_fn_ = sim_steps_indexed_kernel(resolved);
  pack_fn_ = sim_pack_kernel(resolved);
  steps_batch_fn_ = sim_steps_batch_kernel(resolved);
}

template <std::size_t W>
void sim_program<W>::set_active_from_flags(const std::uint8_t* flags,
                                           std::size_t count) {
  AXC_EXPECTS(indexed_ && count == table_.size());
  active_idx_.resize(count);  // worst case: every node active
  if (W == 8) {
    if (pack_fn_ == nullptr) set_simd_level(simd::level::automatic);
    active_idx_.resize(pack_fn_(flags, count, active_idx_.data()));
    return;
  }
  std::size_t n = 0;
  for (std::size_t t = 0; t < count; ++t) {
    active_idx_[n] = static_cast<std::uint32_t>(t);
    n += flags[t] != 0;
  }
  active_idx_.resize(n);
}

template <std::size_t W>
void sim_program<W>::run_in_place(std::span<const std::uint64_t> inputs) {
  AXC_EXPECTS(inputs.size() == num_inputs_ * W);

  std::uint64_t* const base = slot_base();
  for (std::size_t i = 0; i < inputs.size(); ++i) base[i] = inputs[i];
  execute(base);
}

template <std::size_t W>
void sim_program<W>::run_into(std::span<const std::uint64_t> inputs,
                              std::span<std::uint64_t> arena) {
  AXC_EXPECTS(inputs.size() == num_inputs_ * W);
  AXC_EXPECTS(arena.size() >= slot_words());

  std::uint64_t* const base = arena.data();
  for (std::size_t i = 0; i < inputs.size(); ++i) base[i] = inputs[i];
  execute(base);
}

template <std::size_t W>
void sim_program<W>::run_batch(std::span<const std::uint64_t> inputs,
                               std::span<const std::uint32_t> indices,
                               std::span<const sim_batch_lane> batch) {
  AXC_EXPECTS(W == 8 && indexed_);
  AXC_EXPECTS(inputs.size() == num_inputs_ * W);
  if (batch.empty()) return;
  if (steps_batch_fn_ == nullptr) set_simd_level(simd::level::automatic);

  const std::size_t n = batch.size();
  for (std::size_t c = 0; c < n; ++c) {
    std::uint64_t* const arena = batch[c].arena;
    for (std::size_t i = 0; i < inputs.size(); ++i) arena[i] = inputs[i];
  }

  // The kernel owns the whole patched walk (patch lists and `indices` are
  // both ascending); it keeps one patch cursor per lane, so chunk batches
  // beyond its stack cap.
  for (std::size_t c0 = 0; c0 < n; c0 += kMaxBatchLanes) {
    steps_batch_fn_(table_.data(), indices.data(), indices.size(),
                    batch.data() + c0, std::min(kMaxBatchLanes, n - c0));
  }
}

template <std::size_t W>
void sim_program<W>::execute(std::uint64_t* base) {
  if constexpr (W == 8) {
    // Wide-lane fast path: one signal row is a whole vector register, so
    // the dispatched executor replaces the scalar per-lane loops below.
    if (steps_fn_ == nullptr) set_simd_level(simd::level::automatic);
    if (indexed_) {
      steps_idx_fn_(table_.data(), active_idx_.data(), active_idx_.size(),
                    base);
    } else {
      steps_fn_(steps_.data(), steps_.size(), base);
    }
    return;
  }

  const step* const list = indexed_ ? table_.data() : steps_.data();
  const std::size_t count = indexed_ ? active_idx_.size() : steps_.size();
  for (std::size_t i = 0; i < count; ++i) {
    const step& s = list[indexed_ ? active_idx_[i] : i];
    const std::uint64_t* const a = base + s.in0;
    const std::uint64_t* const b = base + s.in1;
    std::uint64_t* const out = base + s.out;
    // One branch per gate; each case is a W-wide plain-array bitwise loop
    // the compiler unrolls/vectorizes.
    switch (s.fn) {
#define AXC_LANE_OP(name, expr)                         \
  case gate_fn::name:                                   \
    for (std::size_t w = 0; w < W; ++w) out[w] = (expr); \
    break;
      AXC_LANE_OP(const0, std::uint64_t{0})
      AXC_LANE_OP(const1, ~std::uint64_t{0})
      AXC_LANE_OP(buf_a, a[w])
      AXC_LANE_OP(not_a, ~a[w])
      AXC_LANE_OP(buf_b, b[w])
      AXC_LANE_OP(not_b, ~b[w])
      AXC_LANE_OP(and2, a[w] & b[w])
      AXC_LANE_OP(nand2, ~(a[w] & b[w]))
      AXC_LANE_OP(or2, a[w] | b[w])
      AXC_LANE_OP(nor2, ~(a[w] | b[w]))
      AXC_LANE_OP(xor2, a[w] ^ b[w])
      AXC_LANE_OP(xnor2, ~(a[w] ^ b[w]))
      AXC_LANE_OP(andn_ab, a[w] & ~b[w])
      AXC_LANE_OP(andn_ba, ~a[w] & b[w])
      AXC_LANE_OP(orn_ab, a[w] | ~b[w])
      AXC_LANE_OP(orn_ba, ~a[w] | b[w])
#undef AXC_LANE_OP
    }
  }
}

template class sim_program<1>;
template class sim_program<2>;
template class sim_program<4>;
template class sim_program<8>;

std::vector<std::uint64_t> simulate_words(
    const netlist& nl, std::span<const std::uint64_t> input_values) {
  const std::size_t ni = nl.num_inputs();
  const std::size_t no = nl.num_outputs();
  AXC_EXPECTS(ni <= 64 && no <= 64);

  std::vector<std::uint64_t> result(input_values.size(), 0);
  std::vector<std::uint64_t> in_words(ni);
  std::vector<std::uint64_t> out_words(no);
  std::vector<std::uint64_t> scratch(nl.num_signals());

  for (std::size_t base = 0; base < input_values.size(); base += 64) {
    const std::size_t limit =
        input_values.size() - base < 64 ? input_values.size() - base : 64;

    // Transpose assignment values into per-input bit planes.
    for (std::size_t i = 0; i < ni; ++i) {
      std::uint64_t plane = 0;
      for (std::size_t t = 0; t < limit; ++t) {
        plane |= ((input_values[base + t] >> i) & 1) << t;
      }
      in_words[i] = plane;
    }
    simulate_block(nl, in_words, out_words, scratch);

    for (std::size_t o = 0; o < no; ++o) {
      std::uint64_t w = out_words[o];
      while (w != 0) {
        const int t = std::countr_zero(w);
        w &= w - 1;
        if (static_cast<std::size_t>(t) < limit) {
          result[base + static_cast<std::size_t>(t)] |= std::uint64_t{1} << o;
        }
      }
    }
  }
  return result;
}

}  // namespace axc::circuit
