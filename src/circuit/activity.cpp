#include "circuit/activity.h"

#include <bit>

#include "circuit/simulator.h"
#include "support/assert.h"

namespace axc::circuit {

activity_profile profile_activity(
    const netlist& nl, std::span<const std::uint64_t> input_values) {
  AXC_EXPECTS(input_values.size() >= 2);
  const std::size_t ni = nl.num_inputs();
  const std::size_t ng = nl.num_gates();

  activity_profile profile;
  profile.gate_toggle_rate.assign(ng, 0.0);
  profile.input_toggle_rate.assign(ni, 0.0);
  profile.gate_one_probability.assign(ng, 0.0);
  profile.cycles = input_values.size();

  std::vector<std::uint64_t> in_words(ni);
  std::vector<std::uint64_t> scratch(nl.num_signals());
  // Last sample of the previous block, per signal, for boundary transitions.
  std::vector<std::uint64_t> prev_bit(nl.num_signals(), 0);

  std::vector<std::uint64_t> toggles(nl.num_signals(), 0);
  std::vector<std::uint64_t> ones(ng, 0);
  bool first_block = true;

  for (std::size_t base = 0; base < input_values.size(); base += 64) {
    const std::size_t limit =
        input_values.size() - base < 64 ? input_values.size() - base : 64;
    for (std::size_t i = 0; i < ni; ++i) {
      std::uint64_t plane = 0;
      for (std::size_t t = 0; t < limit; ++t) {
        plane |= ((input_values[base + t] >> i) & 1) << t;
      }
      in_words[i] = plane;
    }
    // simulate_block fills scratch with every signal's word.
    std::vector<std::uint64_t> out_words(nl.num_outputs());
    simulate_block(nl, in_words, out_words, scratch);

    const std::uint64_t valid_mask =
        limit == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << limit) - 1);

    for (std::size_t s = 0; s < nl.num_signals(); ++s) {
      const std::uint64_t w = scratch[s] & valid_mask;
      // Transitions inside the block: between bit t and bit t+1.
      std::uint64_t trans = (w ^ (w >> 1)) & (valid_mask >> 1);
      std::uint64_t count = static_cast<std::uint64_t>(std::popcount(trans));
      // Boundary transition from the previous block's last sample.
      if (!first_block) count += (w & 1) != prev_bit[s] ? 1 : 0;
      toggles[s] += count;
      prev_bit[s] = (w >> (limit - 1)) & 1;
      if (s >= ni) {
        ones[s - ni] += static_cast<std::uint64_t>(std::popcount(w));
      }
    }
    first_block = false;
  }

  const double cycles = static_cast<double>(input_values.size());
  for (std::size_t i = 0; i < ni; ++i) {
    profile.input_toggle_rate[i] = static_cast<double>(toggles[i]) / cycles;
  }
  for (std::size_t k = 0; k < ng; ++k) {
    profile.gate_toggle_rate[k] =
        static_cast<double>(toggles[ni + k]) / cycles;
    profile.gate_one_probability[k] = static_cast<double>(ones[k]) / cycles;
  }
  return profile;
}

}  // namespace axc::circuit
