// Gate function set for the gate-level netlist IR.
//
// All sixteen two-input Boolean functions are representable; the paper's CGP
// setup ("all standard two-input gates") corresponds to default_function_set()
// below.  Constants and single-input functions are modelled as two-input
// functions that ignore one operand, which keeps the CGP genotype encoding
// uniform (na = 2 for every node).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

namespace axc::circuit {

enum class gate_fn : std::uint8_t {
  const0,   ///< 0
  const1,   ///< 1
  buf_a,    ///< a
  not_a,    ///< ~a
  buf_b,    ///< b
  not_b,    ///< ~b
  and2,     ///< a & b
  nand2,    ///< ~(a & b)
  or2,      ///< a | b
  nor2,     ///< ~(a | b)
  xor2,     ///< a ^ b
  xnor2,    ///< ~(a ^ b)
  andn_ab,  ///< a & ~b   (inhibition)
  andn_ba,  ///< ~a & b
  orn_ab,   ///< a | ~b   (implication b->a)
  orn_ba,   ///< ~a | b   (implication a->b)
};

inline constexpr std::size_t gate_fn_count = 16;

/// Word-parallel evaluation: applies `fn` bitwise to 64 assignments at once.
constexpr std::uint64_t eval_gate(gate_fn fn, std::uint64_t a,
                                  std::uint64_t b) {
  switch (fn) {
    case gate_fn::const0:  return 0;
    case gate_fn::const1:  return ~std::uint64_t{0};
    case gate_fn::buf_a:   return a;
    case gate_fn::not_a:   return ~a;
    case gate_fn::buf_b:   return b;
    case gate_fn::not_b:   return ~b;
    case gate_fn::and2:    return a & b;
    case gate_fn::nand2:   return ~(a & b);
    case gate_fn::or2:     return a | b;
    case gate_fn::nor2:    return ~(a | b);
    case gate_fn::xor2:    return a ^ b;
    case gate_fn::xnor2:   return ~(a ^ b);
    case gate_fn::andn_ab: return a & ~b;
    case gate_fn::andn_ba: return ~a & b;
    case gate_fn::orn_ab:  return a | ~b;
    case gate_fn::orn_ba:  return ~a | b;
  }
  return 0;  // unreachable for valid gate_fn
}

/// 4-bit truth table of `fn`: bit (2*a + b) holds the output for inputs a,b.
constexpr std::uint8_t gate_truth_table(gate_fn fn) {
  std::uint8_t table = 0;
  for (unsigned a = 0; a < 2; ++a) {
    for (unsigned b = 0; b < 2; ++b) {
      const std::uint64_t av = a ? ~std::uint64_t{0} : 0;
      const std::uint64_t bv = b ? ~std::uint64_t{0} : 0;
      if (eval_gate(fn, av, bv) & 1) {
        table = static_cast<std::uint8_t>(table | (1u << (2 * a + b)));
      }
    }
  }
  return table;
}

namespace detail {

/// Bit fn of the mask: does fn's output depend on operand a (resp. b)?
/// Precomputed so the runtime query is one shift — cone marking asks this
/// for every node of every mutant in the CGP search.
consteval std::uint16_t dependence_mask(bool operand_a) {
  std::uint16_t mask = 0;
  for (std::size_t f = 0; f < gate_fn_count; ++f) {
    const std::uint8_t t = gate_truth_table(static_cast<gate_fn>(f));
    bool dep;
    if (operand_a) {
      dep = ((t >> 2) & 0b11) != (t & 0b11);
    } else {
      dep = (t & 0b101) != ((t >> 1) & 0b101);
    }
    if (dep) mask = static_cast<std::uint16_t>(mask | (1u << f));
  }
  return mask;
}

static_assert(gate_fn_count <= 16,
              "dependence masks pack one bit per gate_fn into uint16_t");

inline constexpr std::uint16_t dep_a_mask = dependence_mask(true);
inline constexpr std::uint16_t dep_b_mask = dependence_mask(false);

}  // namespace detail

/// True when the function's output depends on operand a (respectively b).
constexpr bool depends_on_a(gate_fn fn) {
  return ((detail::dep_a_mask >> static_cast<unsigned>(fn)) & 1) != 0;
}
constexpr bool depends_on_b(gate_fn fn) {
  return ((detail::dep_b_mask >> static_cast<unsigned>(fn)) & 1) != 0;
}

/// Short mnemonic used in exports and logs.
std::string_view gate_name(gate_fn fn);

/// The paper's function set Γ = "all standard two-input gates":
/// {BUF, NOT, AND, NAND, OR, NOR, XOR, XNOR} plus the inhibition/implication
/// forms that standard cell libraries offer as single cells.
std::span<const gate_fn> default_function_set();

/// Minimal set {AND, OR, XOR, NAND, NOR, XNOR, NOT, BUF} without the
/// inhibition/implication forms; matches EvoApprox-style setups.
std::span<const gate_fn> basic_function_set();

/// All sixteen two-input Boolean functions.
std::span<const gate_fn> full_function_set();

}  // namespace axc::circuit
