// Netlist exporters: structural Verilog (for external synthesis/inspection)
// and Graphviz DOT (for documentation figures).
#pragma once

#include <iosfwd>
#include <string>

#include "circuit/netlist.h"

namespace axc::circuit {

/// Writes a self-contained structural Verilog module.  Inactive gates are
/// omitted; signals are named in[i], g<k>, out[o].
void write_verilog(std::ostream& os, const netlist& nl,
                   const std::string& module_name);

std::string to_verilog(const netlist& nl, const std::string& module_name);

/// Writes a Graphviz digraph of the active cone.
void write_dot(std::ostream& os, const netlist& nl,
               const std::string& graph_name);

std::string to_dot(const netlist& nl, const std::string& graph_name);

}  // namespace axc::circuit
