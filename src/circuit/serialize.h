// Plain-text netlist serialization.
//
// A stable, human-diffable format used to cache evolved designs between
// benchmark runs and to ship example circuits:
//
//   axcirc-netlist v1
//   inputs 16
//   outputs 16
//   gate <fn-name> <in0> <in1>     (one line per gate, topological order)
//   out <address> ...              (one line, num_outputs addresses)
//
// Round-trips exactly (structure, not just function).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "circuit/netlist.h"

namespace axc::circuit {

void write_netlist(std::ostream& os, const netlist& nl);

/// Returns std::nullopt on malformed input (wrong magic, bad addresses,
/// unknown gate names, truncated stream).
std::optional<netlist> read_netlist(std::istream& is);

std::string to_text(const netlist& nl);
std::optional<netlist> from_text(const std::string& text);

/// Parses a gate name as printed by gate_name(); nullopt if unknown.
std::optional<gate_fn> gate_fn_from_name(std::string_view name);

}  // namespace axc::circuit
