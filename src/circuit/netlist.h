// Gate-level netlist intermediate representation.
//
// A netlist is a feed-forward (combinational) network of two-input gates over
// `num_inputs` primary inputs.  Signals are identified by *addresses* exactly
// as in Cartesian Genetic Programming:
//
//   address 0 .. num_inputs-1              : primary inputs
//   address num_inputs + k  (k-th gate)    : output of gate k
//
// Gates are stored in topological order by construction: a gate may only
// reference addresses smaller than its own.  This invariant makes simulation,
// cone extraction and timing analysis single linear passes and is the same
// constraint CGP imposes on genotypes, so a decoded CGP phenotype maps 1:1
// onto this IR.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "circuit/gate.h"

namespace axc::circuit {

/// One two-input gate instance.
struct gate_node {
  gate_fn fn{gate_fn::const0};
  std::uint32_t in0{0};
  std::uint32_t in1{0};

  friend bool operator==(const gate_node&, const gate_node&) = default;
};

class netlist {
 public:
  /// Creates an empty netlist with the given interface.  All outputs are
  /// initially tied to address 0 (or constant-0 behaviour when there are no
  /// inputs); callers are expected to set them explicitly.
  netlist(std::size_t num_inputs, std::size_t num_outputs);

  /// Appends a gate; both operand addresses must already exist.
  /// Returns the address of the new gate's output signal.
  std::uint32_t add_gate(gate_fn fn, std::uint32_t in0, std::uint32_t in1);

  /// Convenience for single-operand functions (second operand unused).
  std::uint32_t add_unary(gate_fn fn, std::uint32_t in0) {
    return add_gate(fn, in0, in0);
  }

  /// Binds primary output `index` to signal `address`.
  void set_output(std::size_t index, std::uint32_t address);

  [[nodiscard]] std::size_t num_inputs() const { return num_inputs_; }
  [[nodiscard]] std::size_t num_outputs() const { return outputs_.size(); }
  [[nodiscard]] std::size_t num_gates() const { return gates_.size(); }
  /// Total number of addressable signals (inputs + gates).
  [[nodiscard]] std::size_t num_signals() const {
    return num_inputs_ + gates_.size();
  }

  [[nodiscard]] const gate_node& gate(std::size_t k) const {
    return gates_[k];
  }
  [[nodiscard]] std::span<const gate_node> gates() const { return gates_; }
  [[nodiscard]] std::uint32_t output(std::size_t index) const {
    return outputs_[index];
  }
  [[nodiscard]] std::span<const std::uint32_t> outputs() const {
    return outputs_;
  }

  [[nodiscard]] bool is_input_address(std::uint32_t address) const {
    return address < num_inputs_;
  }

  /// Gate index for a gate-output address.
  [[nodiscard]] std::size_t gate_index(std::uint32_t address) const;

  /// Marks every gate in the transitive fan-in cone of any primary output.
  /// Entry k corresponds to gate k.  Gates outside the cone do not influence
  /// circuit function (CGP "inactive nodes").
  [[nodiscard]] std::vector<bool> active_mask() const;

  /// Number of gates that influence at least one output, not counting
  /// wire-only functions (buf_a/buf_b) and constant ties (const0/const1),
  /// which synthesis implements for free.
  [[nodiscard]] std::size_t active_gate_count() const;

  /// Structural copy with inactive gates removed and addresses renumbered.
  /// Function is preserved; gate order remains topological.
  [[nodiscard]] netlist compacted() const;

  /// Checks the structural invariants (operand addresses precede gate,
  /// outputs reference existing signals).  Returns a description of the
  /// first violation, or an empty string when the netlist is well-formed.
  [[nodiscard]] std::string validate() const;

  friend bool operator==(const netlist&, const netlist&) = default;

 private:
  std::size_t num_inputs_;
  std::vector<gate_node> gates_;
  std::vector<std::uint32_t> outputs_;
};

/// Instantiates `src` inside `dst`: src's primary input i is driven by
/// dst signal `input_signals[i]`; all of src's gates are copied.  Returns
/// the dst addresses corresponding to src's primary outputs.  This is the
/// composition primitive used to build MAC units and wrapper circuits.
std::vector<std::uint32_t> graft(netlist& dst, const netlist& src,
                                 std::span<const std::uint32_t> input_signals);

}  // namespace axc::circuit
