#include "circuit/netlist.h"

#include <limits>
#include <string>

#include "support/assert.h"

namespace axc::circuit {

netlist::netlist(std::size_t num_inputs, std::size_t num_outputs)
    : num_inputs_(num_inputs), outputs_(num_outputs, 0) {
  AXC_EXPECTS(num_outputs > 0);
}

std::uint32_t netlist::add_gate(gate_fn fn, std::uint32_t in0,
                                std::uint32_t in1) {
  const auto address = static_cast<std::uint32_t>(num_signals());
  AXC_EXPECTS(in0 < address && in1 < address);
  gates_.push_back(gate_node{fn, in0, in1});
  return address;
}

void netlist::set_output(std::size_t index, std::uint32_t address) {
  AXC_EXPECTS(index < outputs_.size());
  AXC_EXPECTS(address < num_signals());
  outputs_[index] = address;
}

std::size_t netlist::gate_index(std::uint32_t address) const {
  AXC_EXPECTS(address >= num_inputs_ && address < num_signals());
  return address - num_inputs_;
}

std::vector<bool> netlist::active_mask() const {
  std::vector<bool> active(gates_.size(), false);
  // Reverse topological sweep: outputs seed the cone, each active gate
  // activates its operands.  Functions that ignore an operand do not pull
  // that operand into the cone.
  for (const std::uint32_t out : outputs_) {
    if (out >= num_inputs_) active[out - num_inputs_] = true;
  }
  for (std::size_t k = gates_.size(); k-- > 0;) {
    if (!active[k]) continue;
    const gate_node& g = gates_[k];
    if (depends_on_a(g.fn) && g.in0 >= num_inputs_) {
      active[g.in0 - num_inputs_] = true;
    }
    if (depends_on_b(g.fn) && g.in1 >= num_inputs_) {
      active[g.in1 - num_inputs_] = true;
    }
  }
  return active;
}

std::size_t netlist::active_gate_count() const {
  const std::vector<bool> active = active_mask();
  std::size_t count = 0;
  for (std::size_t k = 0; k < gates_.size(); ++k) {
    if (!active[k]) continue;
    const gate_fn fn = gates_[k].fn;
    // Wires and constant ties are free in any technology.
    if (fn == gate_fn::buf_a || fn == gate_fn::buf_b ||
        fn == gate_fn::const0 || fn == gate_fn::const1) {
      continue;
    }
    ++count;
  }
  return count;
}

netlist netlist::compacted() const {
  const std::vector<bool> active = active_mask();
  netlist out(num_inputs_, outputs_.size());

  // Old address -> new address.  Inputs keep their addresses.
  std::vector<std::uint32_t> remap(num_signals(),
                                   std::numeric_limits<std::uint32_t>::max());
  for (std::uint32_t i = 0; i < num_inputs_; ++i) remap[i] = i;

  for (std::size_t k = 0; k < gates_.size(); ++k) {
    if (!active[k]) continue;
    const gate_node& g = gates_[k];
    // Inactive operands (possible when the function ignores them) are
    // rewired to address 0 so the compacted netlist stays well-formed.
    const std::uint32_t a =
        remap[g.in0] != std::numeric_limits<std::uint32_t>::max() ? remap[g.in0]
                                                                  : 0;
    const std::uint32_t b =
        remap[g.in1] != std::numeric_limits<std::uint32_t>::max() ? remap[g.in1]
                                                                  : 0;
    remap[num_inputs_ + k] = out.add_gate(g.fn, a, b);
  }
  for (std::size_t i = 0; i < outputs_.size(); ++i) {
    const std::uint32_t mapped = remap[outputs_[i]];
    out.set_output(i, mapped != std::numeric_limits<std::uint32_t>::max()
                          ? mapped
                          : 0);
  }
  return out;
}

std::vector<std::uint32_t> graft(netlist& dst, const netlist& src,
                                 std::span<const std::uint32_t> input_signals) {
  AXC_EXPECTS(input_signals.size() == src.num_inputs());
  for (const std::uint32_t s : input_signals) {
    AXC_EXPECTS(s < dst.num_signals());
  }

  // src address -> dst address.
  std::vector<std::uint32_t> remap(src.num_signals());
  for (std::size_t i = 0; i < src.num_inputs(); ++i) {
    remap[i] = input_signals[i];
  }
  for (std::size_t k = 0; k < src.num_gates(); ++k) {
    const gate_node& g = src.gate(k);
    remap[src.num_inputs() + k] =
        dst.add_gate(g.fn, remap[g.in0], remap[g.in1]);
  }

  std::vector<std::uint32_t> outputs(src.num_outputs());
  for (std::size_t o = 0; o < src.num_outputs(); ++o) {
    outputs[o] = remap[src.output(o)];
  }
  return outputs;
}

std::string netlist::validate() const {
  for (std::size_t k = 0; k < gates_.size(); ++k) {
    const auto self = static_cast<std::uint32_t>(num_inputs_ + k);
    const gate_node& g = gates_[k];
    if (g.in0 >= self || g.in1 >= self) {
      return "gate " + std::to_string(k) + " references a forward address";
    }
  }
  for (std::size_t i = 0; i < outputs_.size(); ++i) {
    if (outputs_[i] >= num_signals()) {
      return "output " + std::to_string(i) + " references a missing signal";
    }
  }
  return {};
}

}  // namespace axc::circuit
