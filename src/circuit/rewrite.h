// Function-preserving netlist simplification.
//
// CGP-evolved netlists carry removable structure: constant inputs, gates
// whose operands are the same signal, inverter chains, wire buffers and
// structurally duplicate gates.  simplify() cleans all of that up in one
// topological pass:
//
//  - constant propagation (const0/const1 folded through truth tables),
//  - single-variable reduction (f(x, x), f(x, const), f(~x, x), ...),
//  - inverter absorption: with all sixteen two-input functions available,
//    an inverted operand is folded into the consuming gate's function,
//  - structural hashing (CSE): identical (fn, in0, in1) gates are merged,
//  - dead-gate removal (via netlist::compacted).
//
// The result computes the same function (property-tested) but may use gate
// functions outside the set the input was built from — relevant only if
// the output is fed back into a restricted-Γ CGP run.
#pragma once

#include "circuit/netlist.h"

namespace axc::circuit {

netlist simplify(const netlist& nl);

/// Finds the two-input function with the given 4-bit truth table
/// (bit (2a + b) = output).  Total: every table corresponds to a gate_fn.
gate_fn gate_fn_from_table(std::uint8_t table);

}  // namespace axc::circuit
