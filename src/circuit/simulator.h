// Bit-parallel netlist simulation.
//
// A single pass over the gate list evaluates 64 input assignments at once:
// every signal carries a 64-bit word whose bit t is the signal's value under
// assignment t.  Exhaustively evaluating an n-input circuit therefore costs
// 2^n / 64 passes — for the paper's 8x8 multipliers (n = 16) that is 1024
// words, i.e. roughly half a million gate operations per candidate, which is
// what makes CGP search with full-input-space error metrics practical.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "circuit/netlist.h"

namespace axc::circuit {

/// Reusable simulation scratchpad (one word per signal).  Keeping it outside
/// the call avoids reallocating in the CGP inner loop.
class sim_buffer {
 public:
  std::span<std::uint64_t> prepare(const netlist& nl) {
    words_.resize(nl.num_signals());
    return words_;
  }

 private:
  std::vector<std::uint64_t> words_;
};

/// Evaluates one 64-assignment block.
/// `inputs[i]` is the word for primary input i; `outputs[o]` receives the
/// word for primary output o.  `scratch` must come from sim_buffer::prepare
/// for this netlist (or have num_signals() elements).
void simulate_block(const netlist& nl, std::span<const std::uint64_t> inputs,
                    std::span<std::uint64_t> outputs,
                    std::span<std::uint64_t> scratch);

/// The canonical exhaustive input pattern: bit t of the returned word for
/// input i within block `block` equals bit i of the assignment index
/// (block*64 + t).  Inputs 0..5 toggle inside a word; higher inputs are
/// constant across a word.
std::uint64_t exhaustive_input_word(std::size_t input_index,
                                    std::size_t block);

/// Exhaustively evaluates a circuit with up to 26 inputs and up to 64
/// outputs.  result[v] holds the packed output word for input assignment v
/// (output o at bit o).  For a 16-input multiplier the result has 65536
/// entries: result[(j << 8) | i] with i = first operand (inputs 0..7).
std::vector<std::uint64_t> evaluate_exhaustive(const netlist& nl);

/// Exhaustive evaluation restricted to the given assignment order is not
/// needed; for sampled workloads use simulate_words below.
///
/// Evaluates the circuit on `count` arbitrary assignments given as
/// *value vectors*: values[k] holds the full input word (input i at bit i)
/// for assignment k.  Outputs are packed the same way.  Used by workload
/// simulation (e.g. operand streams drawn from a distribution).
std::vector<std::uint64_t> simulate_words(
    const netlist& nl, std::span<const std::uint64_t> input_values);

}  // namespace axc::circuit
