// Bit-parallel netlist simulation.
//
// A single pass over the gate list evaluates 64 input assignments at once:
// every signal carries a 64-bit word whose bit t is the signal's value under
// assignment t.  Exhaustively evaluating an n-input circuit therefore costs
// 2^n / 64 passes — for the paper's 8x8 multipliers (n = 16) that is 1024
// words, i.e. roughly half a million gate operations per candidate, which is
// what makes CGP search with full-input-space error metrics practical.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "circuit/netlist.h"
#include "support/assert.h"
#include "support/simd.h"

namespace axc::circuit {

/// One compiled gate operation of a sim_program schedule.  Slot offsets are
/// premultiplied by the program's lane count W, so the step executors index
/// the slot buffer directly.
struct sim_step {
  gate_fn fn{gate_fn::const0};
  std::uint32_t in0{0};  ///< slot offset, premultiplied by W
  std::uint32_t in1{0};
  std::uint32_t out{0};  ///< slot offset, premultiplied by W
};

/// Executes a compiled step list over a slot buffer, eight lanes per
/// signal (the W == 8 fast path).  Backends live in sim_step_kernels*.cpp
/// (scalar / AVX2 / AVX-512 behind runtime dispatch, same rules as the
/// metrics scan kernels); all are bit-identical.
using sim_steps_fn = void (*)(const sim_step* steps, std::size_t count,
                              std::uint64_t* slots);
/// Same, over a step *table* through an active-index list (the indexed
/// schedules of the genotype-native incremental path).
using sim_steps_indexed_fn = void (*)(const sim_step* table,
                                      const std::uint32_t* indices,
                                      std::size_t count, std::uint64_t* slots);
/// Packs node flags into an ascending active-index list; returns the count.
/// `out` must have room for `count` entries.
using sim_pack_fn = std::size_t (*)(const std::uint8_t* flags,
                                    std::size_t count, std::uint32_t* out);
struct sim_batch_lane;

/// The lambda-batch executor: walks a step table through an index list and
/// executes every step for `n` candidate lanes before advancing, each lane
/// substituting its own patched table entries (sim_batch_lane) in place.
/// Amortizes the per-step front-end cost (fetch, dispatch, loop) that
/// bounds the solo executors across the whole batch, and keeps the patch
/// handling inside the single per-pass call — see sim_program::run_batch.
/// `n` must be <= kMaxBatchLanes (run_batch chunks larger batches).
using sim_steps_batch_fn = void (*)(const sim_step* table,
                                    const std::uint32_t* indices,
                                    std::size_t count,
                                    const sim_batch_lane* lanes,
                                    std::size_t n);

/// Whether a step-executor backend is compiled in AND runnable here.
[[nodiscard]] bool sim_steps_level_available(simd::level l);
/// automatic -> AXC_SIMD override or best available; explicit levels are
/// clamped down to availability (scalar is always the floor).
[[nodiscard]] simd::level resolve_sim_steps_level(simd::level requested);
/// The executors for a resolved level (scalar fallback, never null).
[[nodiscard]] sim_steps_fn sim_steps_kernel(simd::level resolved);
[[nodiscard]] sim_steps_indexed_fn sim_steps_indexed_kernel(
    simd::level resolved);
[[nodiscard]] sim_pack_fn sim_pack_kernel(simd::level resolved);
[[nodiscard]] sim_steps_batch_fn sim_steps_batch_kernel(simd::level resolved);

/// Reusable simulation scratchpad (one word per signal).  Keeping it outside
/// the call avoids reallocating in the CGP inner loop.
class sim_buffer {
 public:
  std::span<std::uint64_t> prepare(const netlist& nl) {
    words_.resize(nl.num_signals());
    return words_;
  }

 private:
  std::vector<std::uint64_t> words_;
};

/// Evaluates one 64-assignment block.
/// `inputs[i]` is the word for primary input i; `outputs[o]` receives the
/// word for primary output o.  `scratch` must come from sim_buffer::prepare
/// for this netlist (or have num_signals() elements).
void simulate_block(const netlist& nl, std::span<const std::uint64_t> inputs,
                    std::span<std::uint64_t> outputs,
                    std::span<std::uint64_t> scratch);

/// The canonical exhaustive input pattern: bit t of the returned word for
/// input i within block `block` equals bit i of the assignment index
/// (block*64 + t).  Inputs 0..5 toggle inside a word; higher inputs are
/// constant across a word.
std::uint64_t exhaustive_input_word(std::size_t input_index,
                                    std::size_t block);

/// Exhaustively evaluates a circuit with up to 26 inputs and up to 64
/// outputs.  result[v] holds the packed output word for input assignment v
/// (output o at bit o).  For a 16-input multiplier the result has 65536
/// entries: result[(j << 8) | i] with i = first operand (inputs 0..7).
std::vector<std::uint64_t> evaluate_exhaustive(const netlist& nl);

/// Exhaustive evaluation restricted to the given assignment order is not
/// needed; for sampled workloads use simulate_words below.
///
/// Evaluates the circuit on `count` arbitrary assignments given as
/// *value vectors*: values[k] holds the full input word (input i at bit i)
/// for assignment k.  Outputs are packed the same way.  Used by workload
/// simulation (e.g. operand streams drawn from a distribution).
std::vector<std::uint64_t> simulate_words(
    const netlist& nl, std::span<const std::uint64_t> input_values);

/// Compiled, cone-restricted, wide-lane simulation schedule — the fast path
/// of the CGP search inner loop (see README.md in this directory).
///
/// Compiling a netlist (a) drops every gate outside the transitive fan-in
/// cone of the outputs (most CGP genes are inactive, so this typically cuts
/// gate work severalfold), remapping the survivors onto a dense scratchpad,
/// and (b) lays the scratchpad out as W consecutive 64-bit words per signal,
/// so one pass evaluates W*64 input assignments and the per-gate dispatch
/// cost is amortized over W plain-array bitwise ops that compilers
/// auto-vectorize (SSE2/AVX2/NEON).
///
/// The schedule is rebuildable in place: the CGP inner loop calls rebuild()
/// once per candidate and run() once per W-block chunk, with no allocation
/// after the first candidate of a given size.
///
/// Lane layout: input i of lane-major span `inputs` occupies
/// inputs[i*W .. i*W+W); outputs are packed the same way.  Lane l of every
/// signal carries an independent 64-assignment block, so callers may mix
/// arbitrary blocks in one pass.
///
/// Besides rebuild(netlist), a schedule can be built *manually* against a
/// caller-defined slot space (reset/push_step/set_output_slot) and patched
/// in place (patch_step/patch_output).  This is the genotype-native
/// incremental compile path of the CGP search (cgp::cone_program): slots
/// map 1:1 onto CGP addresses, so a point mutation patches one step instead
/// of recompiling, and cone-membership changes never renumber operands.
/// Manual schedules must keep the topological contract: every slot a step
/// *reads* (per gate_fn operand dependence) is an input slot or the output
/// slot of an earlier step.  Ignored operands may reference unwritten slots;
/// run() never reads them.
///
/// One candidate of a run_batch() call: the slot arena its pass executes
/// into (slot_words() words; 64-byte-align it — row loads/stores then never
/// split cache lines) plus the step-table entries this candidate overrides,
/// ascending by table index.  Nodes outside the candidate's own cone may
/// execute with un-overridden (parent) content — their rows are never read
/// by the candidate's outputs, so the result is unaffected.
struct sim_batch_lane {
  std::uint64_t* arena{nullptr};
  const std::uint32_t* patch_nodes{nullptr};  ///< ascending table indices
  const sim_step* patch_steps{nullptr};       ///< premultiplied, parallel
  std::size_t patch_count{0};
};

/// Per-kernel-call lane cap: the batch executor keeps one patch cursor per
/// lane on its stack.  run_batch() splits larger batches into chunks, so
/// callers never see the cap.
inline constexpr std::size_t kMaxBatchLanes = 64;

template <std::size_t W>
class sim_program {
 public:
  static constexpr std::size_t lanes = W;

  sim_program() = default;
  explicit sim_program(const netlist& nl) { rebuild(nl); }

  /// Recompiles for `nl` (cone-restricted, dense slots), reusing storage.
  void rebuild(const netlist& nl);

  [[nodiscard]] std::size_t num_inputs() const { return num_inputs_; }
  [[nodiscard]] std::size_t num_outputs() const { return output_slots_.size(); }
  /// Gates actually simulated (the active cone; <= nl.num_gates()).
  [[nodiscard]] std::size_t active_gates() const {
    return indexed_ ? active_idx_.size() : steps_.size();
  }

  /// One pass over the active cone: W blocks of 64 assignments.
  /// `inputs` must have num_inputs()*W words, `outputs` num_outputs()*W.
  void run(std::span<const std::uint64_t> inputs,
           std::span<std::uint64_t> outputs);

  /// run() without the output copy: evaluates the schedule and leaves the
  /// results in the slot buffer, to be read lane-major via output_rows().
  /// This is the entry the batched WMED scan consumes — its kernel loads
  /// each candidate output plane straight from the slot row, so the per-pass
  /// num_outputs()*W-word gather disappears.
  void run_in_place(std::span<const std::uint64_t> inputs);

  /// run_in_place() against an external slot arena of at least slot_words()
  /// words: inputs are copied to the arena base and the schedule executes
  /// there, leaving the program's own slot buffer untouched.  Output values
  /// land at output_slot(o)*W inside the arena.
  void run_into(std::span<const std::uint64_t> inputs,
                std::span<std::uint64_t> arena);

  /// One indexed-schedule pass for a whole batch of candidates: inputs are
  /// broadcast to every lane's arena, then `indices` (ascending table
  /// indices — a superset of every lane's active cone is exact, see
  /// sim_batch_lane) executes for all lanes step by step, each lane
  /// substituting its own patched entries at its patch_nodes.  Executing n
  /// candidates this way is substantially cheaper than n run_into() calls:
  /// the solo executors are front-end-bound (per step, the fetch/dispatch
  /// overhead outweighs the single vector op), and the batch walk pays that
  /// overhead once per step instead of once per step per candidate.
  /// Bit-identical to patching + run_into() per candidate.  W == 8 indexed
  /// schedules only.
  void run_batch(std::span<const std::uint64_t> inputs,
                 std::span<const std::uint32_t> indices,
                 std::span<const sim_batch_lane> batch);

  /// Size of the slot buffer in words (num_slots * W) — the arena size
  /// run_into() and run_batch() require.
  [[nodiscard]] std::size_t slot_words() const {
    return slots_.empty() ? 0 : slots_.size() - kSlotPad;
  }

  /// Fills `rows` (num_outputs() entries) with pointers to each output's
  /// W-word lane row inside the slot buffer.  The pointers are stable across
  /// run()/run_in_place() calls — hoist the fill out of a sweep loop — and
  /// are invalidated by rebuild(), reset(), set_output_slot() and
  /// patch_output().
  void output_rows(std::span<const std::uint64_t*> rows) const {
    AXC_EXPECTS(rows.size() == output_slots_.size());
    for (std::size_t o = 0; o < output_slots_.size(); ++o) {
      rows[o] = slot_base() + output_slots_[o];
    }
  }

  // --- manual schedule construction & in-place patching ------------------
  // Slot indices at this interface are *un*-premultiplied: inputs occupy
  // slots [0, num_inputs); the caller owns the rest of [0, num_slots).

  /// Starts a fresh manual schedule over `num_slots` total slots.  Keeps
  /// storage; slot words beyond the current size are zero-initialized.
  void reset(std::size_t num_inputs, std::size_t num_outputs,
             std::size_t num_slots) {
    AXC_EXPECTS(num_slots >= num_inputs);
    num_inputs_ = num_inputs;
    output_slots_.assign(num_outputs, 0);
    steps_.clear();
    slots_.resize(num_slots * W + kSlotPad);
    indexed_ = false;
  }

  /// Appends a step writing `out_slot`; reads follow gate_fn dependence.
  void push_step(gate_fn fn, std::uint32_t in0_slot, std::uint32_t in1_slot,
                 std::uint32_t out_slot) {
    steps_.push_back(step{fn, static_cast<std::uint32_t>(in0_slot * W),
                          static_cast<std::uint32_t>(in1_slot * W),
                          static_cast<std::uint32_t>(out_slot * W)});
  }

  /// Drops all steps but keeps the slot space and output bindings — the
  /// cone-membership-changed refill path.
  void clear_steps() { steps_.clear(); }

  void set_output_slot(std::size_t o, std::uint32_t slot) {
    output_slots_[o] = static_cast<std::uint32_t>(slot * W);
  }

  /// A step's current wiring, in un-premultiplied slot indices.
  struct step_ref {
    gate_fn fn;
    std::uint32_t in0, in1, out;
  };
  [[nodiscard]] step_ref step_at(std::size_t i) const {
    const step& s = steps_[i];
    return step_ref{s.fn, static_cast<std::uint32_t>(s.in0 / W),
                    static_cast<std::uint32_t>(s.in1 / W),
                    static_cast<std::uint32_t>(s.out / W)};
  }
  /// Rewires step `i` in place (output slot is identity-stable by design).
  void patch_step(std::size_t i, gate_fn fn, std::uint32_t in0_slot,
                  std::uint32_t in1_slot) {
    step& s = steps_[i];
    s.fn = fn;
    s.in0 = static_cast<std::uint32_t>(in0_slot * W);
    s.in1 = static_cast<std::uint32_t>(in1_slot * W);
  }
  [[nodiscard]] std::uint32_t output_slot(std::size_t o) const {
    return static_cast<std::uint32_t>(output_slots_[o] / W);
  }
  void patch_output(std::size_t o, std::uint32_t slot) {
    output_slots_[o] = static_cast<std::uint32_t>(slot * W);
  }

  // --- indexed (table) schedules -----------------------------------------
  // The genotype-native incremental path (cgp::cone_program): one step slot
  // per caller-side node, of which only a packed active-index list executes
  // (ascending node order — the topological order of the CGP address
  // space).  A point mutation then updates single table entries (O(1)) and
  // a cone-membership change repacks the index list, instead of re-emitting
  // a dense step list per mutant.  The topological read contract of manual
  // schedules applies to the *active* steps only; dormant table entries may
  // hold anything.

  /// Switches to an indexed schedule over `table_size` node steps.  Keeps
  /// storage; the active list starts empty.
  void reset_table(std::size_t num_inputs, std::size_t num_outputs,
                   std::size_t num_slots, std::size_t table_size) {
    reset(num_inputs, num_outputs, num_slots);
    table_.resize(table_size);
    active_idx_.clear();
    indexed_ = true;
  }

  /// Writes node `t`'s step (un-premultiplied slot indices, like push_step).
  void set_table_step(std::size_t t, gate_fn fn, std::uint32_t in0_slot,
                      std::uint32_t in1_slot, std::uint32_t out_slot) {
    table_[t] = step{fn, static_cast<std::uint32_t>(in0_slot * W),
                     static_cast<std::uint32_t>(in1_slot * W),
                     static_cast<std::uint32_t>(out_slot * W)};
  }

  [[nodiscard]] gate_fn table_fn(std::size_t t) const { return table_[t].fn; }

  /// Rebuilds the active index list from per-node flags (`count` ==
  /// table size): node t executes iff flags[t] != 0.
  void set_active_from_flags(const std::uint8_t* flags, std::size_t count);

  [[nodiscard]] std::size_t active_count() const { return active_idx_.size(); }
  [[nodiscard]] std::uint32_t active_index(std::size_t i) const {
    return active_idx_[i];
  }
  /// The whole active-index list (ascending table indices) — the execution
  /// order run_batch() callers extend into a batch-union list.
  [[nodiscard]] std::span<const std::uint32_t> active_indices() const {
    return active_idx_;
  }

  /// Selects the step-executor backend for the wide-lane fast path (W == 8;
  /// other lane counts always run the generic executor).  `automatic` is
  /// the default: strongest compiled-in backend the CPU supports, AXC_SIMD
  /// environment override honoured.  Bit-identical at every level — the
  /// evaluator forwards its forced scan level here so parity tests exercise
  /// the whole sweep (simulate + scan) on one backend.
  void set_simd_level(simd::level l);

 private:
  using step = sim_step;

  /// slots_ is overallocated by this many words so the executing base can
  /// be rounded up to a 64-byte boundary: std::vector only guarantees
  /// 16-byte alignment, and unaligned 64-byte signal rows straddle cache
  /// lines on every access (a measured double-digit-percent executor tax).
  static constexpr std::size_t kSlotPad = 7;

  /// The 64-byte-aligned base of the slot buffer; all premultiplied slot
  /// offsets (output_slots_, step operands) are relative to this.
  [[nodiscard]] const std::uint64_t* slot_base() const {
    const auto p = reinterpret_cast<std::uintptr_t>(slots_.data());
    return slots_.data() + ((~p + 1) & 63) / 8;
  }
  [[nodiscard]] std::uint64_t* slot_base() {
    const auto p = reinterpret_cast<std::uintptr_t>(slots_.data());
    return slots_.data() + ((~p + 1) & 63) / 8;
  }

  /// Executes the schedule over `base` (inputs already in place) — the
  /// shared body of run_in_place() and run_into().
  void execute(std::uint64_t* base);

  std::vector<step> steps_;
  std::vector<std::uint32_t> output_slots_;  ///< premultiplied by W
  std::size_t num_inputs_{0};
  std::vector<std::uint64_t> slots_;  ///< num_slots * W + kSlotPad words
  std::vector<std::uint32_t> remap_;  ///< rebuild() scratch, reused
  // Indexed-schedule state (reset_table and friends).
  std::vector<step> table_;                ///< one step per caller node
  std::vector<std::uint32_t> active_idx_;  ///< executing nodes, ascending
  bool indexed_{false};
  /// Dispatched kernels (W == 8 only; resolved on first use).
  sim_steps_fn steps_fn_{nullptr};
  sim_steps_indexed_fn steps_idx_fn_{nullptr};
  sim_pack_fn pack_fn_{nullptr};
  sim_steps_batch_fn steps_batch_fn_{nullptr};
};

extern template class sim_program<1>;
extern template class sim_program<2>;
extern template class sim_program<4>;
extern template class sim_program<8>;

}  // namespace axc::circuit
