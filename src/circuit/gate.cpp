#include "circuit/gate.h"

namespace axc::circuit {

std::string_view gate_name(gate_fn fn) {
  switch (fn) {
    case gate_fn::const0:  return "const0";
    case gate_fn::const1:  return "const1";
    case gate_fn::buf_a:   return "buf_a";
    case gate_fn::not_a:   return "not_a";
    case gate_fn::buf_b:   return "buf_b";
    case gate_fn::not_b:   return "not_b";
    case gate_fn::and2:    return "and";
    case gate_fn::nand2:   return "nand";
    case gate_fn::or2:     return "or";
    case gate_fn::nor2:    return "nor";
    case gate_fn::xor2:    return "xor";
    case gate_fn::xnor2:   return "xnor";
    case gate_fn::andn_ab: return "andn_ab";
    case gate_fn::andn_ba: return "andn_ba";
    case gate_fn::orn_ab:  return "orn_ab";
    case gate_fn::orn_ba:  return "orn_ba";
  }
  return "invalid";
}

namespace {

constexpr std::array kDefaultSet = {
    gate_fn::const0, gate_fn::const1, gate_fn::buf_a,   gate_fn::not_a,
    gate_fn::and2,   gate_fn::nand2,  gate_fn::or2,     gate_fn::nor2,
    gate_fn::xor2,   gate_fn::xnor2,  gate_fn::andn_ab, gate_fn::orn_ba,
};

constexpr std::array kBasicSet = {
    gate_fn::buf_a, gate_fn::not_a, gate_fn::and2, gate_fn::nand2,
    gate_fn::or2,   gate_fn::nor2,  gate_fn::xor2, gate_fn::xnor2,
};

constexpr std::array kFullSet = {
    gate_fn::const0,  gate_fn::const1,  gate_fn::buf_a,   gate_fn::not_a,
    gate_fn::buf_b,   gate_fn::not_b,   gate_fn::and2,    gate_fn::nand2,
    gate_fn::or2,     gate_fn::nor2,    gate_fn::xor2,    gate_fn::xnor2,
    gate_fn::andn_ab, gate_fn::andn_ba, gate_fn::orn_ab,  gate_fn::orn_ba,
};

}  // namespace

std::span<const gate_fn> default_function_set() { return kDefaultSet; }
std::span<const gate_fn> basic_function_set() { return kBasicSet; }
std::span<const gate_fn> full_function_set() { return kFullSet; }

}  // namespace axc::circuit
