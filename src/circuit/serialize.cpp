#include "circuit/serialize.h"

#include <istream>
#include <ostream>
#include <sstream>

namespace axc::circuit {

namespace {
constexpr std::string_view kMagic = "axcirc-netlist v1";
/// Interface-size ceiling for parsed netlists.  Stream extraction into
/// size_t follows strtoull semantics, so "inputs -2" would otherwise wrap
/// to ~2^64 and the netlist constructor would attempt that allocation;
/// checkpoint salvage feeds arbitrary corrupted bytes through this parser,
/// which must fail cleanly instead.  Generous: real components are
/// 2*width inputs wide.
constexpr std::size_t kMaxInterface = 1u << 20;
}

std::optional<gate_fn> gate_fn_from_name(std::string_view name) {
  for (const gate_fn fn : full_function_set()) {
    if (gate_name(fn) == name) return fn;
  }
  return std::nullopt;
}

void write_netlist(std::ostream& os, const netlist& nl) {
  os << kMagic << "\n";
  os << "inputs " << nl.num_inputs() << "\n";
  os << "outputs " << nl.num_outputs() << "\n";
  for (const gate_node& g : nl.gates()) {
    os << "gate " << gate_name(g.fn) << " " << g.in0 << " " << g.in1 << "\n";
  }
  os << "out";
  for (const std::uint32_t o : nl.outputs()) os << " " << o;
  os << "\n";
}

std::optional<netlist> read_netlist(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kMagic) return std::nullopt;

  std::size_t inputs = 0, outputs = 0;
  {
    std::string key;
    if (!std::getline(is, line)) return std::nullopt;
    std::istringstream ls(line);
    if (!(ls >> key >> inputs) || key != "inputs" || inputs == 0 ||
        inputs > kMaxInterface) {
      return std::nullopt;
    }
  }
  {
    std::string key;
    if (!std::getline(is, line)) return std::nullopt;
    std::istringstream ls(line);
    if (!(ls >> key >> outputs) || key != "outputs" || outputs == 0 ||
        outputs > kMaxInterface) {
      return std::nullopt;
    }
  }

  netlist nl(inputs, outputs);
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;  // blank line
    if (key == "gate") {
      std::string fn_name;
      std::uint32_t in0 = 0, in1 = 0;
      if (!(ls >> fn_name >> in0 >> in1)) return std::nullopt;
      const auto fn = gate_fn_from_name(fn_name);
      if (!fn) return std::nullopt;
      if (in0 >= nl.num_signals() || in1 >= nl.num_signals()) {
        return std::nullopt;
      }
      std::string extra;
      if (ls >> extra) return std::nullopt;  // trailing junk
      nl.add_gate(*fn, in0, in1);
    } else if (key == "out") {
      for (std::size_t o = 0; o < outputs; ++o) {
        std::uint32_t address = 0;
        if (!(ls >> address) || address >= nl.num_signals()) {
          return std::nullopt;
        }
        nl.set_output(o, address);
      }
      std::string extra;
      if (ls >> extra) return std::nullopt;  // trailing junk
      return nl;  // "out" terminates the record
    } else {
      return std::nullopt;
    }
  }
  return std::nullopt;  // missing "out" line
}

std::string to_text(const netlist& nl) {
  std::ostringstream os;
  write_netlist(os, nl);
  return os.str();
}

std::optional<netlist> from_text(const std::string& text) {
  std::istringstream is(text);
  return read_netlist(is);
}

}  // namespace axc::circuit
