#include "circuit/rewrite.h"

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "support/assert.h"

namespace axc::circuit {

gate_fn gate_fn_from_table(std::uint8_t table) {
  for (const gate_fn fn : full_function_set()) {
    if (gate_truth_table(fn) == table) return fn;
  }
  AXC_ASSERT(false);  // all 16 tables are covered
  return gate_fn::const0;
}

namespace {

/// Value class of a signal in the rewritten netlist: a constant, or a
/// (possibly inverted) reference to a new-netlist signal.
struct value_class {
  enum class kind : std::uint8_t { const0, const1, signal };
  kind k{kind::const0};
  std::uint32_t root{0};  ///< new-netlist address (kind::signal only)
  bool inverted{false};

  static value_class constant(bool one) {
    return {one ? kind::const1 : kind::const0, 0, false};
  }
  static value_class of(std::uint32_t root, bool inverted = false) {
    return {kind::signal, root, inverted};
  }
};

/// 2-bit truth table helpers for single-variable reduction:
/// bit v = output when the remaining variable is v.
value_class reduce_single(std::uint8_t table2, const value_class& x) {
  switch (table2 & 0b11) {
    case 0b00: return value_class::constant(false);
    case 0b11: return value_class::constant(true);
    case 0b10: return x;  // identity
    default: {             // 0b01: negation
      value_class inv = x;
      if (inv.k == value_class::kind::signal) {
        inv.inverted = !inv.inverted;
        return inv;
      }
      return value_class::constant(inv.k == value_class::kind::const0);
    }
  }
}

struct pair_hash {
  std::size_t operator()(const std::uint64_t key) const {
    return std::hash<std::uint64_t>{}(key);
  }
};

class rewriter {
 public:
  explicit rewriter(const netlist& src)
      : src_(src), out_(src.num_inputs(), src.num_outputs()) {
    classes_.reserve(src.num_signals());
    for (std::uint32_t i = 0; i < src.num_inputs(); ++i) {
      classes_.push_back(value_class::of(i));
    }
  }

  netlist run() {
    for (std::size_t k = 0; k < src_.num_gates(); ++k) {
      classes_.push_back(rewrite_gate(src_.gate(k)));
    }
    for (std::size_t o = 0; o < src_.num_outputs(); ++o) {
      out_.set_output(o, materialize(classes_[src_.output(o)]));
    }
    return out_.compacted();
  }

 private:
  value_class rewrite_gate(const gate_node& g) {
    std::uint8_t table = gate_truth_table(g.fn);
    // Operands the function ignores are treated as constant 0 so they do
    // not constrain folding.
    value_class a = depends_on_a(g.fn) ? classes_[g.in0]
                                       : value_class::constant(false);
    value_class b = depends_on_b(g.fn) ? classes_[g.in1]
                                       : value_class::constant(false);

    // Fold operand inversions into the function's truth table.
    if (a.k == value_class::kind::signal && a.inverted) {
      table = static_cast<std::uint8_t>(((table & 0b0011) << 2) |
                                        ((table & 0b1100) >> 2));
      a.inverted = false;
    }
    if (b.k == value_class::kind::signal && b.inverted) {
      table = static_cast<std::uint8_t>(((table & 0b0101) << 1) |
                                        ((table & 0b1010) >> 1));
      b.inverted = false;
    }

    // Constant substitution.
    if (a.k != value_class::kind::signal) {
      const unsigned av = a.k == value_class::kind::const1 ? 1 : 0;
      const std::uint8_t t2 = static_cast<std::uint8_t>(
          (((table >> (2 * av + 1)) & 1) << 1) | ((table >> (2 * av)) & 1));
      return reduce_single(t2, b);
    }
    if (b.k != value_class::kind::signal) {
      const unsigned bv = b.k == value_class::kind::const1 ? 1 : 0;
      const std::uint8_t t2 = static_cast<std::uint8_t>(
          (((table >> (2 + bv)) & 1) << 1) | ((table >> bv) & 1));
      return reduce_single(t2, a);
    }

    // Same-root operands: f(x, x) is single-variable.
    if (a.root == b.root) {
      const std::uint8_t t2 = static_cast<std::uint8_t>(
          (((table >> 3) & 1) << 1) | (table & 1));
      return reduce_single(t2, a);
    }

    // Degenerate tables that became constant or single-variable after
    // inversion folding.
    switch (table) {
      case 0b0000: return value_class::constant(false);
      case 0b1111: return value_class::constant(true);
      case 0b1100: return a;
      case 0b0011: return value_class::of(a.root, true);
      case 0b1010: return b;
      case 0b0101: return value_class::of(b.root, true);
      default: break;
    }

    const gate_fn fn = gate_fn_from_table(table);
    // Structural hashing: reuse an identical gate if one already exists.
    const std::uint64_t key = (static_cast<std::uint64_t>(table) << 56) |
                              (static_cast<std::uint64_t>(a.root) << 28) |
                              b.root;
    if (const auto it = cse_.find(key); it != cse_.end()) {
      return value_class::of(it->second);
    }
    const std::uint32_t address = out_.add_gate(fn, a.root, b.root);
    cse_.emplace(key, address);
    return value_class::of(address);
  }

  std::uint32_t materialize(const value_class& c) {
    switch (c.k) {
      case value_class::kind::const0:
        if (!const0_) const0_ = out_.add_gate(gate_fn::const0, 0, 0);
        return *const0_;
      case value_class::kind::const1:
        if (!const1_) const1_ = out_.add_gate(gate_fn::const1, 0, 0);
        return *const1_;
      case value_class::kind::signal:
        if (!c.inverted) return c.root;
        if (const auto it = inverters_.find(c.root); it != inverters_.end()) {
          return it->second;
        }
        return inverters_[c.root] =
                   out_.add_gate(gate_fn::not_a, c.root, c.root);
    }
    return 0;
  }

  const netlist& src_;
  netlist out_;
  std::vector<value_class> classes_;
  std::unordered_map<std::uint64_t, std::uint32_t, pair_hash> cse_;
  std::unordered_map<std::uint32_t, std::uint32_t> inverters_;
  std::optional<std::uint32_t> const0_;
  std::optional<std::uint32_t> const1_;
};

}  // namespace

netlist simplify(const netlist& nl) { return rewriter(nl).run(); }

}  // namespace axc::circuit
