// Scalar step-executor and pack backends + the runtime dispatch tables
// (mirrors src/metrics/scan_kernels.cpp).
#include "circuit/sim_step_kernels.h"

namespace axc::circuit {

namespace detail {

namespace {

void run_steps_scalar(const sim_step* steps, std::size_t count,
                      std::uint64_t* slots) {
  run_steps_w8<simd::vu64x8<simd::level::scalar>>(steps, count, slots);
}

void run_steps_indexed_scalar(const sim_step* table,
                              const std::uint32_t* indices, std::size_t count,
                              std::uint64_t* slots) {
  run_steps_indexed_w8<simd::vu64x8<simd::level::scalar>>(table, indices,
                                                          count, slots);
}

std::size_t pack_scalar(const std::uint8_t* flags, std::size_t count,
                        std::uint32_t* out) {
  // Branchless: unconditional store, conditional advance.
  std::size_t n = 0;
  for (std::size_t t = 0; t < count; ++t) {
    out[n] = static_cast<std::uint32_t>(t);
    n += flags[t] != 0;
  }
  return n;
}

void run_steps_batch_scalar(const sim_step* table,
                            const std::uint32_t* indices, std::size_t count,
                            const sim_batch_lane* lanes, std::size_t n) {
  run_steps_batch_w8<simd::vu64x8<simd::level::scalar>>(table, indices, count,
                                                        lanes, n);
}

}  // namespace

sim_steps_fn sim_steps_kernel_scalar() { return &run_steps_scalar; }
sim_steps_indexed_fn sim_steps_indexed_kernel_scalar() {
  return &run_steps_indexed_scalar;
}
sim_pack_fn sim_pack_kernel_scalar() { return &pack_scalar; }
sim_steps_batch_fn sim_steps_batch_kernel_scalar() {
  return &run_steps_batch_scalar;
}

}  // namespace detail

bool sim_steps_level_available(simd::level l) {
  switch (l) {
    case simd::level::automatic:
      return true;
    case simd::level::scalar:
      return detail::sim_steps_kernel_scalar() != nullptr;
    case simd::level::avx2:
      return detail::sim_steps_kernel_avx2() != nullptr &&
             simd::cpu_supports(simd::level::avx2);
    case simd::level::avx512:
      return detail::sim_steps_kernel_avx512() != nullptr &&
             simd::cpu_supports(simd::level::avx512);
  }
  return false;
}

simd::level resolve_sim_steps_level(simd::level requested) {
  return simd::resolve_level(requested, sim_steps_level_available);
}

sim_steps_fn sim_steps_kernel(simd::level resolved) {
  sim_steps_fn kernel = nullptr;
  switch (resolved) {
    case simd::level::avx512:
      kernel = detail::sim_steps_kernel_avx512();
      break;
    case simd::level::avx2:
      kernel = detail::sim_steps_kernel_avx2();
      break;
    default:
      break;
  }
  return kernel != nullptr ? kernel : detail::sim_steps_kernel_scalar();
}

sim_steps_indexed_fn sim_steps_indexed_kernel(simd::level resolved) {
  sim_steps_indexed_fn kernel = nullptr;
  switch (resolved) {
    case simd::level::avx512:
      kernel = detail::sim_steps_indexed_kernel_avx512();
      break;
    case simd::level::avx2:
      kernel = detail::sim_steps_indexed_kernel_avx2();
      break;
    default:
      break;
  }
  return kernel != nullptr ? kernel
                           : detail::sim_steps_indexed_kernel_scalar();
}

sim_pack_fn sim_pack_kernel(simd::level resolved) {
  // Only AVX-512 has a compress-store; AVX2 shares the scalar pack.
  if (resolved == simd::level::avx512) {
    const sim_pack_fn kernel = detail::sim_pack_kernel_avx512();
    if (kernel != nullptr) return kernel;
  }
  return detail::sim_pack_kernel_scalar();
}

sim_steps_batch_fn sim_steps_batch_kernel(simd::level resolved) {
  sim_steps_batch_fn kernel = nullptr;
  switch (resolved) {
    case simd::level::avx512:
      kernel = detail::sim_steps_batch_kernel_avx512();
      break;
    case simd::level::avx2:
      kernel = detail::sim_steps_batch_kernel_avx2();
      break;
    default:
      break;
  }
  return kernel != nullptr ? kernel : detail::sim_steps_batch_kernel_scalar();
}

}  // namespace axc::circuit
