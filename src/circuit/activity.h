// Switching-activity profiling.
//
// Dynamic power of a CMOS gate is proportional to how often its output
// toggles.  We estimate per-gate toggle rates by simulating a stream of
// input vectors (drawn from the application's operand distribution) and
// counting output transitions bit-parallel: with 64 consecutive time steps
// packed into one word, the toggle count of a signal is
// popcount(w ^ (w >> 1)) plus the boundary transition to the previous word.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "circuit/netlist.h"

namespace axc::circuit {

struct activity_profile {
  /// toggles[k] / cycles = expected output transitions of gate k per cycle.
  std::vector<double> gate_toggle_rate;
  /// Same for primary inputs (useful for input-pin capacitance models).
  std::vector<double> input_toggle_rate;
  /// Fraction of cycles in which gate k's output is 1 (static probability).
  std::vector<double> gate_one_probability;
  std::size_t cycles{0};
};

/// Profiles toggle rates over a stream of input vectors.
/// `input_values[t]` packs the full input assignment at time t
/// (input i at bit i), exactly as simulator.h's simulate_words.
activity_profile profile_activity(const netlist& nl,
                                  std::span<const std::uint64_t> input_values);

}  // namespace axc::circuit
