// Probability mass functions over operand bit patterns.
//
// The paper's method is parameterized by the distribution D of operand A
// (filter coefficient / NN weight).  A dist::pmf is a normalized mass
// vector indexed by the operand's *bit pattern* (0 .. n-1); for signed
// operands index k is the two's-complement pattern of value k (so -1 maps
// to n-1).  Factories cover the paper's distributions: D1 (normal), D2
// (half-normal), Du (uniform), plus empirical histograms of quantized
// weights.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/rng.h"

namespace axc::dist {

class pmf {
 public:
  /// Empty/unset distribution (size() == 0).  Consumers that take a pmf as
  /// configuration treat an empty one as "derive the right default" — e.g.
  /// core::approximation_config falls back to uniform over the component's
  /// operand count instead of hard-coding a size.
  pmf() = default;

  [[nodiscard]] bool empty() const { return mass_.empty(); }

  /// Flat distribution over n patterns.
  static pmf uniform(std::size_t n);

  /// Discretized N(mean, sigma) over patterns 0..n-1 (the paper's D1 with
  /// n = 256, mean = 127, sigma = 32).
  static pmf normal(std::size_t n, double mean, double sigma);

  /// Half-normal decaying from pattern 0 (the paper's D2): p(i) proportional
  /// to exp(-i^2 / (2 sigma^2)).
  static pmf half_normal(std::size_t n, double sigma);

  /// Normal over *values* of a signed n-pattern operand: value v of pattern
  /// k is k for k < n/2 and k - n otherwise (two's complement).
  static pmf signed_normal(std::size_t n, double mean, double sigma);

  /// Laplace over signed values: p(v) proportional to exp(-|v - mean| / b).
  /// Sharper peak than a normal of comparable spread — the shape of trained
  /// NN weight distributions.
  static pmf signed_laplace(std::size_t n, double mean, double b);

  /// Normalizes an arbitrary non-negative weight vector.
  static pmf from_weights(std::span<const double> weights);
  static pmf from_weights(const std::vector<double>& weights) {
    return from_weights(std::span<const double>(weights));
  }

  /// Rebuilds a pmf from a masses() vector *verbatim* — no renormalization,
  /// so a pmf round-trips bit-exactly through text serialization (the
  /// division in from_weights is not idempotent at the last ulp, which
  /// would shift every downstream fingerprint and search trajectory).
  /// Masses must be non-negative with a positive sum.
  static pmf from_masses(std::span<const double> masses);
  static pmf from_masses(const std::vector<double>& masses) {
    return from_masses(std::span<const double>(masses));
  }

  /// Histogram of event counts -> distribution.
  static pmf from_counts(std::span<const std::uint64_t> counts);
  static pmf from_counts(const std::vector<std::uint64_t>& counts) {
    return from_counts(std::span<const std::uint64_t>(counts));
  }

  /// Empirical distribution of int8 samples keyed by bit pattern (value -1
  /// contributes to index 0xFF).  Always 256 entries.
  static pmf from_int8_samples(std::span<const std::int8_t> samples);
  static pmf from_int8_samples(const std::vector<std::int8_t>& samples) {
    return from_int8_samples(std::span<const std::int8_t>(samples));
  }

  [[nodiscard]] std::size_t size() const { return mass_.size(); }
  [[nodiscard]] double operator[](std::size_t i) const { return mass_[i]; }
  [[nodiscard]] std::span<const double> masses() const { return mass_; }

  /// Draws a pattern index with probability mass_[i] (inverse-CDF, binary
  /// search over a CDF precomputed at construction, so sampling is const
  /// and safe to share across threads).
  [[nodiscard]] std::size_t sample(rng& gen) const;

  /// Moments over the *pattern index* (matches how the paper reports D1/D2
  /// statistics over the 0..255 axis).
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  /// Shannon entropy in bits; 0 log 0 = 0.
  [[nodiscard]] double entropy_bits() const;

  /// Convex combination: (1 - t) * this + t * other.  Sizes must match.
  [[nodiscard]] pmf blend(const pmf& other, double t) const;

  friend bool operator==(const pmf& a, const pmf& b) {
    return a.mass_ == b.mass_;
  }

 private:
  explicit pmf(std::vector<double> mass);
  void normalize();

  std::vector<double> mass_;
  /// cdf_[i] = sum of mass_[0..i]; precomputed so sample() is lock-free.
  std::vector<double> cdf_;
};

}  // namespace axc::dist
