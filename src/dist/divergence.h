// Divergences between probability mass functions.
//
// Used to quantify how far an operand distribution is from uniform (the
// regime where WMED-driven approximation beats plain MED-driven
// approximation) and to compare empirical workload histograms against the
// design-time distribution.
#pragma once

#include "dist/pmf.h"

namespace axc::dist {

/// Kullback-Leibler divergence KL(p || q) in bits.  Infinite when p puts
/// mass where q has none; 0 log 0 terms are dropped.
double kl_divergence_bits(const pmf& p, const pmf& q);

/// Jensen-Shannon divergence in bits: symmetric, finite, in [0, 1].
double js_divergence_bits(const pmf& p, const pmf& q);

/// Total variation distance: 0.5 * sum |p_i - q_i|, in [0, 1].
double total_variation(const pmf& p, const pmf& q);

/// Hellinger distance, in [0, 1].
double hellinger(const pmf& p, const pmf& q);

/// Distance of p from the uniform distribution on the same support
/// (Jensen-Shannon, bits).  0 iff p is uniform.
double nonuniformity(const pmf& p);

}  // namespace axc::dist
