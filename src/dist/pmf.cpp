#include "dist/pmf.h"

#include <algorithm>
#include <cmath>

#include "support/assert.h"

namespace axc::dist {

pmf::pmf(std::vector<double> mass) : mass_(std::move(mass)) {
  AXC_EXPECTS(!mass_.empty());
  normalize();
}

void pmf::normalize() {
  double total = 0.0;
  for (const double m : mass_) {
    AXC_EXPECTS(m >= 0.0);
    total += m;
  }
  AXC_EXPECTS(total > 0.0);
  for (double& m : mass_) m /= total;

  cdf_.resize(mass_.size());
  double run = 0.0;
  for (std::size_t i = 0; i < mass_.size(); ++i) {
    run += mass_[i];
    cdf_[i] = run;
  }
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

pmf pmf::from_masses(std::span<const double> masses) {
  pmf p;
  p.mass_.assign(masses.begin(), masses.end());
  AXC_EXPECTS(!p.mass_.empty());
  double total = 0.0;
  for (const double m : p.mass_) {
    AXC_EXPECTS(m >= 0.0);
    total += m;
  }
  AXC_EXPECTS(total > 0.0);
  p.cdf_.resize(p.mass_.size());
  double run = 0.0;
  for (std::size_t i = 0; i < p.mass_.size(); ++i) {
    run += p.mass_[i];
    p.cdf_[i] = run;
  }
  p.cdf_.back() = 1.0;  // guard against accumulated rounding
  return p;
}

pmf pmf::uniform(std::size_t n) {
  return pmf(std::vector<double>(n, 1.0));
}

pmf pmf::normal(std::size_t n, double mean, double sigma) {
  AXC_EXPECTS(sigma > 0.0);
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double z = (static_cast<double>(i) - mean) / sigma;
    w[i] = std::exp(-0.5 * z * z);
  }
  return pmf(std::move(w));
}

pmf pmf::half_normal(std::size_t n, double sigma) {
  AXC_EXPECTS(sigma > 0.0);
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double z = static_cast<double>(i) / sigma;
    w[i] = std::exp(-0.5 * z * z);
  }
  return pmf(std::move(w));
}

namespace {

/// Two's-complement value of pattern k among n patterns.
double signed_value(std::size_t k, std::size_t n) {
  return k < n / 2 ? static_cast<double>(k)
                   : static_cast<double>(k) - static_cast<double>(n);
}

}  // namespace

pmf pmf::signed_normal(std::size_t n, double mean, double sigma) {
  AXC_EXPECTS(sigma > 0.0);
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double z = (signed_value(i, n) - mean) / sigma;
    w[i] = std::exp(-0.5 * z * z);
  }
  return pmf(std::move(w));
}

pmf pmf::signed_laplace(std::size_t n, double mean, double b) {
  AXC_EXPECTS(b > 0.0);
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = std::exp(-std::abs(signed_value(i, n) - mean) / b);
  }
  return pmf(std::move(w));
}

pmf pmf::from_weights(std::span<const double> weights) {
  return pmf(std::vector<double>(weights.begin(), weights.end()));
}

pmf pmf::from_counts(std::span<const std::uint64_t> counts) {
  std::vector<double> w(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    w[i] = static_cast<double>(counts[i]);
  }
  return pmf(std::move(w));
}

pmf pmf::from_int8_samples(std::span<const std::int8_t> samples) {
  AXC_EXPECTS(!samples.empty());
  std::vector<double> w(256, 0.0);
  for (const std::int8_t s : samples) {
    w[static_cast<std::uint8_t>(s)] += 1.0;
  }
  return pmf(std::move(w));
}

std::size_t pmf::sample(rng& gen) const {
  const double u = gen.uniform01();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return it == cdf_.end() ? cdf_.size() - 1
                          : static_cast<std::size_t>(it - cdf_.begin());
}

double pmf::mean() const {
  double m = 0.0;
  for (std::size_t i = 0; i < mass_.size(); ++i) {
    m += mass_[i] * static_cast<double>(i);
  }
  return m;
}

double pmf::stddev() const {
  const double m = mean();
  double var = 0.0;
  for (std::size_t i = 0; i < mass_.size(); ++i) {
    const double d = static_cast<double>(i) - m;
    var += mass_[i] * d * d;
  }
  return std::sqrt(var);
}

double pmf::entropy_bits() const {
  double h = 0.0;
  for (const double m : mass_) {
    if (m > 0.0) h -= m * std::log2(m);
  }
  return h;
}

pmf pmf::blend(const pmf& other, double t) const {
  AXC_EXPECTS(other.size() == size());
  AXC_EXPECTS(t >= 0.0 && t <= 1.0);
  std::vector<double> w(size());
  for (std::size_t i = 0; i < size(); ++i) {
    w[i] = (1.0 - t) * mass_[i] + t * other.mass_[i];
  }
  return pmf(std::move(w));
}

}  // namespace axc::dist
