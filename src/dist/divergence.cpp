#include "dist/divergence.h"

#include <cmath>
#include <limits>

#include "support/assert.h"

namespace axc::dist {

double kl_divergence_bits(const pmf& p, const pmf& q) {
  AXC_EXPECTS(p.size() == q.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] == 0.0) continue;
    if (q[i] == 0.0) return std::numeric_limits<double>::infinity();
    acc += p[i] * std::log2(p[i] / q[i]);
  }
  return acc;
}

double js_divergence_bits(const pmf& p, const pmf& q) {
  AXC_EXPECTS(p.size() == q.size());
  // KL against the mixture, expanded term-wise so zero-mass entries of one
  // side stay finite (the mixture covers the union of the supports).
  double acc = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double m = 0.5 * (p[i] + q[i]);
    if (p[i] > 0.0) acc += 0.5 * p[i] * std::log2(p[i] / m);
    if (q[i] > 0.0) acc += 0.5 * q[i] * std::log2(q[i] / m);
  }
  return acc;
}

double total_variation(const pmf& p, const pmf& q) {
  AXC_EXPECTS(p.size() == q.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    acc += std::abs(p[i] - q[i]);
  }
  return 0.5 * acc;
}

double hellinger(const pmf& p, const pmf& q) {
  AXC_EXPECTS(p.size() == q.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double d = std::sqrt(p[i]) - std::sqrt(q[i]);
    acc += d * d;
  }
  return std::sqrt(0.5 * acc);
}

double nonuniformity(const pmf& p) {
  return js_divergence_bits(p, pmf::uniform(p.size()));
}

}  // namespace axc::dist
