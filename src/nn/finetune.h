// Approximate-aware fine-tuning (the paper's Table I "after finetuning").
//
// The forward pass runs the quantized hardware model with the *approximate*
// multiplier LUT; the backward pass is the float straight-through gradient
// at the values the hardware consumed.  The network thereby "learns to
// classify with the approximate multiplier", which the paper shows recovers
// most of the accuracy lost to deep approximation.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "metrics/compiled_table.h"
#include "nn/quantize.h"

namespace axc::nn {

struct finetune_config {
  /// Paper: "10 iterations employed".
  std::size_t epochs{10};
  std::size_t batch_size{32};
  float learning_rate{0.005f};
  float momentum{0.9f};
  float lr_decay{0.9f};
  std::uint64_t seed{17};
};

struct finetune_stats {
  std::size_t epoch{0};
  double mean_loss{0.0};
};

void finetune(quantized_network& qnet, std::span<const tensor> images,
              std::span<const int> labels, const metrics::compiled_mult_table& lut,
              const finetune_config& config,
              const std::function<void(const finetune_stats&)>& on_epoch = {});

}  // namespace axc::nn
