#include "nn/finetune.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "support/assert.h"
#include "support/rng.h"

namespace axc::nn {

void finetune(quantized_network& qnet, std::span<const tensor> images,
              std::span<const int> labels, const metrics::compiled_mult_table& lut,
              const finetune_config& config,
              const std::function<void(const finetune_stats&)>& on_epoch) {
  AXC_EXPECTS(images.size() == labels.size() && !images.empty());
  AXC_EXPECTS(config.batch_size > 0);

  network& net = qnet.base();
  rng gen(config.seed);
  std::vector<std::size_t> order(images.size());
  std::iota(order.begin(), order.end(), 0);

  float lr = config.learning_rate;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    for (std::size_t i = order.size(); i-- > 1;) {
      std::swap(order[i], order[gen.below(i + 1)]);
    }

    double loss_sum = 0.0;
    for (std::size_t base = 0; base < order.size();
         base += config.batch_size) {
      const std::size_t limit =
          std::min(order.size(), base + config.batch_size);
      // The hardware consumes the quantization of the *current* float
      // weights; refresh once per batch.
      qnet.refresh_weights();
      net.zero_grads();
      for (std::size_t k = base; k < limit; ++k) {
        const std::size_t idx = order[k];
        const tensor logits =
            qnet.forward(images[idx], lut, /*training=*/true);
        const loss_and_grad lg = softmax_cross_entropy(logits, labels[idx]);
        loss_sum += lg.loss;
        net.backward(lg.grad);
      }
      net.sgd_step(lr / static_cast<float>(limit - base), config.momentum);
    }
    qnet.refresh_weights();

    if (on_epoch) {
      on_epoch(finetune_stats{
          epoch, loss_sum / static_cast<double>(images.size())});
    }
    lr *= config.lr_decay;
  }
}

}  // namespace axc::nn
