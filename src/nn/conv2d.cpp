#include "nn/conv2d.h"

#include <cmath>

#include "support/assert.h"

namespace axc::nn {

conv2d::conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, rng& gen)
    : in_c_(in_channels),
      out_c_(out_channels),
      k_(kernel),
      w_(out_channels * in_channels * kernel * kernel),
      b_(out_channels, 0.0f),
      gw_(w_.size(), 0.0f),
      gb_(out_channels, 0.0f),
      vw_(w_.size(), 0.0f),
      vb_(out_channels, 0.0f) {
  AXC_EXPECTS(in_channels > 0 && out_channels > 0 && kernel > 0);
  const double fan_in =
      static_cast<double>(in_channels) * static_cast<double>(kernel * kernel);
  const double scale = std::sqrt(2.0 / fan_in);
  for (float& w : w_) w = static_cast<float>(gen.normal(0.0, scale));
}

tensor conv2d::forward(const tensor& x, bool training) {
  AXC_EXPECTS(x.channels() == in_c_);
  AXC_EXPECTS(x.height() >= k_ && x.width() >= k_);
  if (training) cached_input_ = x;

  const std::size_t oh = x.height() - k_ + 1;
  const std::size_t ow = x.width() - k_ + 1;
  tensor y(out_c_, oh, ow);
  for (std::size_t oc = 0; oc < out_c_; ++oc) {
    for (std::size_t yo = 0; yo < oh; ++yo) {
      for (std::size_t xo = 0; xo < ow; ++xo) {
        float acc = b_[oc];
        for (std::size_t ic = 0; ic < in_c_; ++ic) {
          for (std::size_t ky = 0; ky < k_; ++ky) {
            for (std::size_t kx = 0; kx < k_; ++kx) {
              acc += w_[w_index(oc, ic, ky, kx)] *
                     x.at(ic, yo + ky, xo + kx);
            }
          }
        }
        y.at(oc, yo, xo) = acc;
      }
    }
  }
  return y;
}

tensor conv2d::backward(const tensor& grad) {
  const tensor& x = cached_input_;
  AXC_EXPECTS(x.channels() == in_c_);
  const std::size_t oh = x.height() - k_ + 1;
  const std::size_t ow = x.width() - k_ + 1;
  // Downstream layers may flatten; only the element count must match.
  AXC_EXPECTS(grad.size() == out_c_ * oh * ow);

  tensor gx(in_c_, x.height(), x.width());
  for (std::size_t oc = 0; oc < out_c_; ++oc) {
    for (std::size_t yo = 0; yo < oh; ++yo) {
      for (std::size_t xo = 0; xo < ow; ++xo) {
        const float g = grad.data()[(oc * oh + yo) * ow + xo];
        if (g == 0.0f) continue;
        gb_[oc] += g;
        for (std::size_t ic = 0; ic < in_c_; ++ic) {
          for (std::size_t ky = 0; ky < k_; ++ky) {
            for (std::size_t kx = 0; kx < k_; ++kx) {
              gw_[w_index(oc, ic, ky, kx)] += g * x.at(ic, yo + ky, xo + kx);
              gx.at(ic, yo + ky, xo + kx) += g * w_[w_index(oc, ic, ky, kx)];
            }
          }
        }
      }
    }
  }
  return gx;
}

tensor conv2d::forward_quantized(const tensor& x, const layer_qparams& qp,
                                 const metrics::compiled_mult_table& lut, bool training) {
  AXC_EXPECTS(x.channels() == in_c_);
  AXC_EXPECTS(qp.weights.size() == w_.size());
  AXC_EXPECTS(qp.bias.size() == b_.size());

  std::vector<std::int8_t> xq(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    xq[i] = quantize_value(x.data()[i], qp.in_frac);
  }
  if (training) {
    tensor xhat(x.channels(), x.height(), x.width());
    for (std::size_t i = 0; i < x.size(); ++i) {
      xhat.data()[i] = dequantize_value(xq[i], qp.in_frac);
    }
    cached_input_ = std::move(xhat);
  }

  auto xq_at = [&](std::size_t ic, std::size_t yy,
                   std::size_t xx) -> std::int8_t {
    return xq[(ic * x.height() + yy) * x.width() + xx];
  };

  const int shift = qp.in_frac + qp.w_frac - qp.out_frac;
  const std::size_t oh = x.height() - k_ + 1;
  const std::size_t ow = x.width() - k_ + 1;
  tensor y(out_c_, oh, ow);
  for (std::size_t oc = 0; oc < out_c_; ++oc) {
    for (std::size_t yo = 0; yo < oh; ++yo) {
      for (std::size_t xo = 0; xo < ow; ++xo) {
        std::int64_t acc = qp.bias[oc];
        for (std::size_t ic = 0; ic < in_c_; ++ic) {
          for (std::size_t ky = 0; ky < k_; ++ky) {
            for (std::size_t kx = 0; kx < k_; ++kx) {
              acc += lut.multiply(qp.weights[w_index(oc, ic, ky, kx)],
                                  xq_at(ic, yo + ky, xo + kx));
            }
          }
        }
        const std::int8_t yq = saturate_int8(shift_round(acc, shift));
        y.at(oc, yo, xo) = dequantize_value(yq, qp.out_frac);
      }
    }
  }
  return y;
}

std::array<std::size_t, 3> conv2d::output_shape(
    std::array<std::size_t, 3> input_shape) const {
  AXC_EXPECTS(input_shape[0] == in_c_);
  AXC_EXPECTS(input_shape[1] >= k_ && input_shape[2] >= k_);
  return {out_c_, input_shape[1] - k_ + 1, input_shape[2] - k_ + 1};
}

void conv2d::zero_grads() {
  for (float& g : gw_) g = 0.0f;
  for (float& g : gb_) g = 0.0f;
}

void conv2d::sgd_step(float learning_rate, float momentum) {
  for (std::size_t k = 0; k < w_.size(); ++k) {
    vw_[k] = momentum * vw_[k] - learning_rate * gw_[k];
    w_[k] += vw_[k];
  }
  for (std::size_t k = 0; k < b_.size(); ++k) {
    vb_[k] = momentum * vb_[k] - learning_rate * gb_[k];
    b_[k] += vb_[k];
  }
}

}  // namespace axc::nn
