#include "nn/activations.h"

#include "support/assert.h"

namespace axc::nn {

tensor relu::forward(const tensor& x, bool training) {
  tensor y = x;
  if (training) mask_.assign(x.size(), false);
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] > 0.0f) {
      if (training) mask_[i] = true;
    } else {
      y[i] = 0.0f;
    }
  }
  return y;
}

tensor relu::backward(const tensor& grad) {
  AXC_EXPECTS(mask_.size() == grad.size());
  tensor gx = grad;
  for (std::size_t i = 0; i < gx.size(); ++i) {
    if (!mask_[i]) gx[i] = 0.0f;
  }
  return gx;
}

tensor maxpool2::forward(const tensor& x, bool training) {
  AXC_EXPECTS(x.height() % 2 == 0 && x.width() % 2 == 0);
  const std::size_t oh = x.height() / 2;
  const std::size_t ow = x.width() / 2;
  tensor y(x.channels(), oh, ow);
  if (training) {
    argmax_.assign(y.size(), 0);
    input_shape_ = x.shape();
  }

  std::size_t out_index = 0;
  for (std::size_t c = 0; c < x.channels(); ++c) {
    for (std::size_t yo = 0; yo < oh; ++yo) {
      for (std::size_t xo = 0; xo < ow; ++xo, ++out_index) {
        float best = x.at(c, 2 * yo, 2 * xo);
        std::size_t best_index =
            (c * x.height() + 2 * yo) * x.width() + 2 * xo;
        for (std::size_t dy = 0; dy < 2; ++dy) {
          for (std::size_t dx = 0; dx < 2; ++dx) {
            const float v = x.at(c, 2 * yo + dy, 2 * xo + dx);
            if (v > best) {
              best = v;
              best_index =
                  (c * x.height() + 2 * yo + dy) * x.width() + 2 * xo + dx;
            }
          }
        }
        y.at(c, yo, xo) = best;
        if (training) argmax_[out_index] = best_index;
      }
    }
  }
  return y;
}

tensor maxpool2::backward(const tensor& grad) {
  AXC_EXPECTS(argmax_.size() == grad.size());
  tensor gx(input_shape_[0], input_shape_[1], input_shape_[2]);
  for (std::size_t i = 0; i < grad.size(); ++i) {
    gx.data()[argmax_[i]] += grad.data()[i];
  }
  return gx;
}

std::array<std::size_t, 3> maxpool2::output_shape(
    std::array<std::size_t, 3> input_shape) const {
  AXC_EXPECTS(input_shape[1] % 2 == 0 && input_shape[2] % 2 == 0);
  return {input_shape[0], input_shape[1] / 2, input_shape[2] / 2};
}

tensor avgpool2::forward(const tensor& x, bool training) {
  AXC_EXPECTS(x.height() % 2 == 0 && x.width() % 2 == 0);
  if (training) input_shape_ = x.shape();
  tensor y(x.channels(), x.height() / 2, x.width() / 2);
  for (std::size_t c = 0; c < x.channels(); ++c) {
    for (std::size_t yo = 0; yo < y.height(); ++yo) {
      for (std::size_t xo = 0; xo < y.width(); ++xo) {
        y.at(c, yo, xo) =
            0.25f * (x.at(c, 2 * yo, 2 * xo) + x.at(c, 2 * yo, 2 * xo + 1) +
                     x.at(c, 2 * yo + 1, 2 * xo) +
                     x.at(c, 2 * yo + 1, 2 * xo + 1));
      }
    }
  }
  return y;
}

tensor avgpool2::backward(const tensor& grad) {
  // Downstream layers may hand the gradient back flattened; index it by the
  // recorded output geometry, not by grad's own shape.
  const std::size_t oc = input_shape_[0];
  const std::size_t oh = input_shape_[1] / 2;
  const std::size_t ow = input_shape_[2] / 2;
  AXC_EXPECTS(grad.size() == oc * oh * ow);

  tensor gx(input_shape_[0], input_shape_[1], input_shape_[2]);
  std::size_t flat = 0;
  for (std::size_t c = 0; c < oc; ++c) {
    for (std::size_t yo = 0; yo < oh; ++yo) {
      for (std::size_t xo = 0; xo < ow; ++xo, ++flat) {
        const float g = 0.25f * grad.data()[flat];
        gx.at(c, 2 * yo, 2 * xo) = g;
        gx.at(c, 2 * yo, 2 * xo + 1) = g;
        gx.at(c, 2 * yo + 1, 2 * xo) = g;
        gx.at(c, 2 * yo + 1, 2 * xo + 1) = g;
      }
    }
  }
  return gx;
}

std::array<std::size_t, 3> avgpool2::output_shape(
    std::array<std::size_t, 3> input_shape) const {
  AXC_EXPECTS(input_shape[1] % 2 == 0 && input_shape[2] % 2 == 0);
  return {input_shape[0], input_shape[1] / 2, input_shape[2] / 2};
}

}  // namespace axc::nn
