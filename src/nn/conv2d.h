// 2-D convolution layer (valid padding, stride 1, square kernel).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/layer.h"
#include "support/rng.h"

namespace axc::nn {

class conv2d : public layer {
 public:
  conv2d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, rng& gen);

  [[nodiscard]] layer_kind kind() const override { return layer_kind::conv2d; }
  tensor forward(const tensor& x, bool training) override;
  tensor backward(const tensor& grad) override;
  tensor forward_quantized(const tensor& x, const layer_qparams& qp,
                           const metrics::compiled_mult_table& lut,
                           bool training) override;
  [[nodiscard]] std::array<std::size_t, 3> output_shape(
      std::array<std::size_t, 3> input_shape) const override;

  std::span<float> weights() override { return w_; }
  std::span<float> bias() override { return b_; }
  void zero_grads() override;
  void sgd_step(float learning_rate, float momentum) override;

  [[nodiscard]] std::size_t in_channels() const { return in_c_; }
  [[nodiscard]] std::size_t out_channels() const { return out_c_; }
  [[nodiscard]] std::size_t kernel() const { return k_; }

 private:
  [[nodiscard]] std::size_t w_index(std::size_t oc, std::size_t ic,
                                    std::size_t ky, std::size_t kx) const {
    return ((oc * in_c_ + ic) * k_ + ky) * k_ + kx;
  }

  std::size_t in_c_;
  std::size_t out_c_;
  std::size_t k_;
  std::vector<float> w_;  ///< [oc][ic][ky][kx]
  std::vector<float> b_;  ///< [oc]
  std::vector<float> gw_;
  std::vector<float> gb_;
  std::vector<float> vw_;
  std::vector<float> vb_;
  tensor cached_input_;
};

}  // namespace axc::nn
