// Parameter-free layers: ReLU and 2x2 max pooling.
//
// Both are exact on the fixed-point grid (max and clamping commute with the
// power-of-two scaling), so their quantized forward is the float forward —
// see layer.h.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/layer.h"

namespace axc::nn {

class relu : public layer {
 public:
  [[nodiscard]] layer_kind kind() const override { return layer_kind::relu; }
  tensor forward(const tensor& x, bool training) override;
  tensor backward(const tensor& grad) override;
  [[nodiscard]] std::array<std::size_t, 3> output_shape(
      std::array<std::size_t, 3> input_shape) const override {
    return input_shape;
  }

 private:
  std::vector<bool> mask_;
};

/// 2x2 max pooling with stride 2 (input height/width must be even).
class maxpool2 : public layer {
 public:
  [[nodiscard]] layer_kind kind() const override {
    return layer_kind::maxpool2;
  }
  tensor forward(const tensor& x, bool training) override;
  tensor backward(const tensor& grad) override;
  [[nodiscard]] std::array<std::size_t, 3> output_shape(
      std::array<std::size_t, 3> input_shape) const override;

 private:
  std::vector<std::size_t> argmax_;
  std::array<std::size_t, 3> input_shape_{0, 0, 0};
};

/// 2x2 average pooling with stride 2 — LeNet-5's original subsampling.
/// In hardware this is an add-and-shift; the float value (a+b+c+d)/4 is
/// exact in binary floating point, and the consuming layer re-quantizes
/// its input, so the float forward models the int pipeline faithfully.
class avgpool2 : public layer {
 public:
  [[nodiscard]] layer_kind kind() const override {
    return layer_kind::avgpool2;
  }
  tensor forward(const tensor& x, bool training) override;
  tensor backward(const tensor& grad) override;
  [[nodiscard]] std::array<std::size_t, 3> output_shape(
      std::array<std::size_t, 3> input_shape) const override;

 private:
  std::array<std::size_t, 3> input_shape_{0, 0, 0};
};

}  // namespace axc::nn
