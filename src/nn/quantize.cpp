#include "nn/quantize.h"

#include <algorithm>
#include <cmath>

#include "support/assert.h"

namespace axc::nn {

namespace {

double max_abs(std::span<const float> values) {
  double m = 0.0;
  for (const float v : values) {
    m = std::max(m, std::abs(static_cast<double>(v)));
  }
  return m;
}

}  // namespace

quantized_network::quantized_network(network& net,
                                     std::span<const tensor> calibration)
    : net_(&net), qp_(net.layer_count()) {
  AXC_EXPECTS(!calibration.empty());

  // Range analysis: max |activation| at the network input and after every
  // layer, over the calibration set.
  std::vector<double> boundary_max(net.layer_count() + 1, 0.0);
  for (const tensor& sample : calibration) {
    tensor h = sample;
    boundary_max[0] = std::max(boundary_max[0], max_abs(h.data()));
    for (std::size_t i = 0; i < net.layer_count(); ++i) {
      h = net.at(i).forward(h, /*training=*/false);
      boundary_max[i + 1] = std::max(boundary_max[i + 1], max_abs(h.data()));
    }
  }

  // The consumer reads the producer's grid: activation formats chain from
  // the network input through each trainable layer's output.
  int current_frac = frac_bits_for(boundary_max[0]);
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    layer& l = net.at(i);
    if (l.weights().empty()) continue;  // ReLU / pooling: grid-preserving

    layer_qparams& qp = qp_[i];
    qp.active = true;
    qp.in_frac = current_frac;
    qp.w_frac = frac_bits_for(max_abs(l.weights()));
    qp.out_frac = frac_bits_for(boundary_max[i + 1]);
    current_frac = qp.out_frac;
  }
  refresh_weights();
}

void quantized_network::refresh_weights() {
  for (std::size_t i = 0; i < net_->layer_count(); ++i) {
    layer_qparams& qp = qp_[i];
    if (!qp.active) continue;
    layer& l = net_->at(i);

    const std::span<float> w = l.weights();
    qp.weights.resize(w.size());
    for (std::size_t k = 0; k < w.size(); ++k) {
      qp.weights[k] = quantize_value(w[k], qp.w_frac);
    }

    const std::span<float> b = l.bias();
    const double bias_scale = std::exp2(qp.in_frac + qp.w_frac);
    qp.bias.resize(b.size());
    for (std::size_t k = 0; k < b.size(); ++k) {
      const double scaled = static_cast<double>(b[k]) * bias_scale;
      qp.bias[k] = static_cast<std::int32_t>(std::llround(std::clamp(
          scaled, -2147483648.0, 2147483647.0)));
    }
  }
}

tensor quantized_network::forward(const tensor& x,
                                  const metrics::compiled_mult_table& lut,
                                  bool training) {
  tensor h = x;
  for (std::size_t i = 0; i < net_->layer_count(); ++i) {
    h = net_->at(i).forward_quantized(h, qp_[i], lut, training);
  }
  return h;
}

int quantized_network::predict_class(const tensor& x,
                                     const metrics::compiled_mult_table& lut) {
  const tensor logits = forward(x, lut, /*training=*/false);
  int best = 0;
  for (std::size_t i = 1; i < logits.size(); ++i) {
    if (logits[i] > logits[best]) best = static_cast<int>(i);
  }
  return best;
}

double quantized_network::accuracy(std::span<const tensor> images,
                                   std::span<const int> labels,
                                   const metrics::compiled_mult_table& lut,
                                   std::size_t max_samples) {
  AXC_EXPECTS(images.size() == labels.size() && !images.empty());
  const std::size_t count = max_samples == 0
                                ? images.size()
                                : std::min(max_samples, images.size());
  std::size_t correct = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (predict_class(images[i], lut) == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(count);
}

std::vector<std::int8_t> quantized_network::quantized_weights() const {
  std::vector<std::int8_t> all;
  for (const layer_qparams& qp : qp_) {
    if (!qp.active) continue;
    all.insert(all.end(), qp.weights.begin(), qp.weights.end());
  }
  return all;
}

}  // namespace axc::nn
