// Minimal dense float tensor for the NN substrate.
//
// Shape is (channels, height, width); fully-connected layers view the data
// flattened.  Single-sample processing keeps the layer implementations
// simple and is fast enough for the paper's network sizes (MLP 784-300-10,
// LeNet-5-class CNN).
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "support/assert.h"

namespace axc::nn {

class tensor {
 public:
  tensor() = default;
  tensor(std::size_t channels, std::size_t height, std::size_t width,
         float fill = 0.0f)
      : shape_{channels, height, width},
        data_(channels * height * width, fill) {}

  /// Flat vector of length n (shape (n, 1, 1)).
  static tensor flat(std::size_t n, float fill = 0.0f) {
    return tensor(n, 1, 1, fill);
  }

  [[nodiscard]] std::size_t channels() const { return shape_[0]; }
  [[nodiscard]] std::size_t height() const { return shape_[1]; }
  [[nodiscard]] std::size_t width() const { return shape_[2]; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  [[nodiscard]] float at(std::size_t c, std::size_t y, std::size_t x) const {
    return data_[(c * shape_[1] + y) * shape_[2] + x];
  }
  float& at(std::size_t c, std::size_t y, std::size_t x) {
    return data_[(c * shape_[1] + y) * shape_[2] + x];
  }
  [[nodiscard]] float operator[](std::size_t i) const { return data_[i]; }
  float& operator[](std::size_t i) { return data_[i]; }

  [[nodiscard]] const std::vector<float>& data() const { return data_; }
  std::vector<float>& data() { return data_; }

  [[nodiscard]] std::array<std::size_t, 3> shape() const { return shape_; }

  void fill(float value) {
    for (float& v : data_) v = value;
  }

  friend bool operator==(const tensor&, const tensor&) = default;

 private:
  std::array<std::size_t, 3> shape_{0, 0, 0};
  std::vector<float> data_;
};

}  // namespace axc::nn
