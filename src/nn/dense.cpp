#include "nn/dense.h"

#include <cmath>

#include "support/assert.h"

namespace axc::nn {

dense::dense(std::size_t in_features, std::size_t out_features, rng& gen)
    : in_(in_features),
      out_(out_features),
      w_(in_features * out_features),
      b_(out_features, 0.0f),
      gw_(w_.size(), 0.0f),
      gb_(out_features, 0.0f),
      vw_(w_.size(), 0.0f),
      vb_(out_features, 0.0f) {
  AXC_EXPECTS(in_features > 0 && out_features > 0);
  // He initialization (ReLU networks).
  const double scale = std::sqrt(2.0 / static_cast<double>(in_features));
  for (float& w : w_) w = static_cast<float>(gen.normal(0.0, scale));
}

tensor dense::forward(const tensor& x, bool training) {
  AXC_EXPECTS(x.size() == in_);
  if (training) cached_input_ = x;

  tensor y = tensor::flat(out_);
  for (std::size_t o = 0; o < out_; ++o) {
    float acc = b_[o];
    const float* row = &w_[o * in_];
    for (std::size_t i = 0; i < in_; ++i) acc += row[i] * x[i];
    y[o] = acc;
  }
  return y;
}

tensor dense::backward(const tensor& grad) {
  AXC_EXPECTS(grad.size() == out_);
  AXC_EXPECTS(cached_input_.size() == in_);

  tensor gx = tensor::flat(in_);
  for (std::size_t o = 0; o < out_; ++o) {
    const float g = grad[o];
    gb_[o] += g;
    float* grow = &gw_[o * in_];
    const float* row = &w_[o * in_];
    for (std::size_t i = 0; i < in_; ++i) {
      grow[i] += g * cached_input_[i];
      gx[i] += g * row[i];
    }
  }
  return gx;
}

tensor dense::forward_quantized(const tensor& x, const layer_qparams& qp,
                                const metrics::compiled_mult_table& lut, bool training) {
  AXC_EXPECTS(x.size() == in_);
  AXC_EXPECTS(qp.weights.size() == w_.size());
  AXC_EXPECTS(qp.bias.size() == b_.size());

  // Quantize the incoming activations onto the layer's input grid.
  std::vector<std::int8_t> xq(in_);
  for (std::size_t i = 0; i < in_; ++i) {
    xq[i] = quantize_value(x[i], qp.in_frac);
  }
  if (training) {
    // Straight-through: backward differentiates the float-linear map at the
    // values the hardware actually consumed.
    tensor xhat = tensor::flat(in_);
    for (std::size_t i = 0; i < in_; ++i) {
      xhat[i] = dequantize_value(xq[i], qp.in_frac);
    }
    cached_input_ = std::move(xhat);
  }

  const int shift = qp.in_frac + qp.w_frac - qp.out_frac;
  tensor y = tensor::flat(out_);
  for (std::size_t o = 0; o < out_; ++o) {
    std::int64_t acc = qp.bias[o];
    const std::int8_t* row = &qp.weights[o * in_];
    for (std::size_t i = 0; i < in_; ++i) {
      acc += lut.multiply(row[i], xq[i]);  // weight = operand A
    }
    const std::int8_t yq = saturate_int8(shift_round(acc, shift));
    y[o] = dequantize_value(yq, qp.out_frac);
  }
  return y;
}

std::array<std::size_t, 3> dense::output_shape(
    std::array<std::size_t, 3> input_shape) const {
  AXC_EXPECTS(input_shape[0] * input_shape[1] * input_shape[2] == in_);
  return {out_, 1, 1};
}

void dense::zero_grads() {
  for (float& g : gw_) g = 0.0f;
  for (float& g : gb_) g = 0.0f;
}

void dense::sgd_step(float learning_rate, float momentum) {
  for (std::size_t k = 0; k < w_.size(); ++k) {
    vw_[k] = momentum * vw_[k] - learning_rate * gw_[k];
    w_[k] += vw_[k];
  }
  for (std::size_t k = 0; k < b_.size(); ++k) {
    vb_[k] = momentum * vb_[k] - learning_rate * gb_[k];
    b_[k] += vb_[k];
  }
}

}  // namespace axc::nn
