#include "nn/network.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <istream>
#include <ostream>

#include "support/assert.h"

namespace axc::nn {

loss_and_grad softmax_cross_entropy(const tensor& logits, int label) {
  AXC_EXPECTS(label >= 0 &&
              static_cast<std::size_t>(label) < logits.size());
  loss_and_grad out;
  out.grad = tensor::flat(logits.size());

  float max_logit = logits[0];
  for (std::size_t i = 1; i < logits.size(); ++i) {
    max_logit = std::max(max_logit, logits[i]);
  }
  double total = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    total += std::exp(static_cast<double>(logits[i] - max_logit));
  }
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const double p =
        std::exp(static_cast<double>(logits[i] - max_logit)) / total;
    out.grad[i] = static_cast<float>(p);
    if (static_cast<int>(i) == label) {
      out.grad[i] -= 1.0f;
      out.loss = -std::log(std::max(p, 1e-12));
    }
  }
  return out;
}

tensor network::forward(const tensor& x, bool training) {
  tensor h = x;
  for (auto& l : layers_) h = l->forward(h, training);
  return h;
}

void network::backward(const tensor& logits_grad) {
  tensor g = logits_grad;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    g = layers_[i]->backward(g);
  }
}

void network::zero_grads() {
  for (auto& l : layers_) l->zero_grads();
}

void network::sgd_step(float learning_rate, float momentum) {
  for (auto& l : layers_) l->sgd_step(learning_rate, momentum);
}

int network::predict_class(const tensor& x) {
  const tensor logits = forward(x, /*training=*/false);
  int best = 0;
  for (std::size_t i = 1; i < logits.size(); ++i) {
    if (logits[i] > logits[best]) best = static_cast<int>(i);
  }
  return best;
}

std::size_t network::parameter_count() const {
  std::size_t count = 0;
  for (const auto& l : layers_) {
    auto& mutable_layer = const_cast<layer&>(*l);
    count += mutable_layer.weights().size() + mutable_layer.bias().size();
  }
  return count;
}

namespace {
constexpr std::uint64_t kMagic = 0x6178636e6e763031ULL;  // "axcnnv01"
}

void network::save_weights(std::ostream& os) const {
  const std::uint64_t param_count = parameter_count();
  os.write(reinterpret_cast<const char*>(&kMagic), sizeof kMagic);
  os.write(reinterpret_cast<const char*>(&param_count), sizeof param_count);
  for (const auto& l : layers_) {
    auto& mutable_layer = const_cast<layer&>(*l);
    for (const std::span<float> params :
         {mutable_layer.weights(), mutable_layer.bias()}) {
      os.write(reinterpret_cast<const char*>(params.data()),
               static_cast<std::streamsize>(params.size() * sizeof(float)));
    }
  }
}

bool network::load_weights(std::istream& is) {
  std::uint64_t magic = 0;
  std::uint64_t param_count = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof magic);
  is.read(reinterpret_cast<char*>(&param_count), sizeof param_count);
  if (!is || magic != kMagic || param_count != parameter_count()) {
    return false;
  }
  for (auto& l : layers_) {
    for (const std::span<float> params : {l->weights(), l->bias()}) {
      is.read(reinterpret_cast<char*>(params.data()),
              static_cast<std::streamsize>(params.size() * sizeof(float)));
    }
  }
  return static_cast<bool>(is);
}

}  // namespace axc::nn
