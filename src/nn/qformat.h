// Dynamic fixed-point formats (Ristretto-style [15]).
//
// A quantized value is an int8 bit pattern with a per-layer power-of-two
// scale: value = pattern * 2^-frac_bits.  Power-of-two scales make
// requantization between layers a rounding shift — exactly what the paper's
// 8-bit MAC hardware model performs — so the only approximated operator is
// the one behind the compiled component table the forward pass consumes
// (the 8x8 multiplier in the shipped model; the formats themselves are
// component-agnostic).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace axc::nn {

/// Fractional bit count such that values with |v| <= max_abs fit int8:
/// f = 7 - ceil(log2(max_abs)).
[[nodiscard]] inline int frac_bits_for(double max_abs) {
  if (max_abs <= 0.0) return 7;
  const int integer_bits = static_cast<int>(std::ceil(std::log2(max_abs)));
  return std::clamp(7 - integer_bits, -8, 24);
}

/// Rounds to nearest and saturates to int8.
[[nodiscard]] inline std::int8_t quantize_value(float v, int frac_bits) {
  const double scaled = static_cast<double>(v) * std::exp2(frac_bits);
  const auto rounded = static_cast<long long>(std::llround(scaled));
  return static_cast<std::int8_t>(
      std::clamp<long long>(rounded, -128, 127));
}

[[nodiscard]] inline float dequantize_value(std::int32_t pattern,
                                            int frac_bits) {
  return static_cast<float>(static_cast<double>(pattern) *
                            std::exp2(-frac_bits));
}

/// Rounding arithmetic shift right by `shift` (negative shift = left);
/// round-half-away-from-zero, as a hardware requantizer would.
[[nodiscard]] inline std::int32_t shift_round(std::int64_t value, int shift) {
  if (shift <= 0) return static_cast<std::int32_t>(value << (-shift));
  const std::int64_t bias = std::int64_t{1} << (shift - 1);
  const std::int64_t shifted =
      value >= 0 ? (value + bias) >> shift : -((-value + bias) >> shift);
  return static_cast<std::int32_t>(shifted);
}

[[nodiscard]] inline std::int8_t saturate_int8(std::int32_t v) {
  return static_cast<std::int8_t>(std::clamp<std::int32_t>(v, -128, 127));
}

/// Quantization parameters of one trainable layer.
struct layer_qparams {
  bool active{false};  ///< true for layers that carry weights
  int in_frac{7};      ///< fx: fractional bits of the input activations
  int w_frac{7};       ///< fw: fractional bits of the weights
  int out_frac{7};     ///< fy: fractional bits of the output activations
  std::vector<std::int8_t> weights;  ///< same layout as the float weights
  std::vector<std::int32_t> bias;    ///< scale 2^-(fx+fw)
};

}  // namespace axc::nn
