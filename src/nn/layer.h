// Layer interface for the NN substrate.
//
// Layers implement float forward/backward for training plus a quantized
// forward used both for int8 inference and for approximate-aware
// fine-tuning: forward_quantized computes exactly what the 8-bit MAC
// hardware would (inputs and weights on their fixed-point grids, every
// product through the supplied compiled multiplier table, accumulate in
// int32, requantize by shifting) and returns the dequantized float result,
// so the existing float backward acts as a straight-through gradient.
//
// The table is the generic metrics::basic_compiled_table characterization
// of whatever circuit the deployment picked — an exact multiplier, an
// evolved approximate one, or any future component compiled to the
// multiplier spec; the layer contract only assumes "int8 x int8 -> int32
// through the table".
#pragma once

#include <array>
#include <span>

#include "metrics/compiled_table.h"
#include "nn/qformat.h"
#include "nn/tensor.h"

namespace axc::nn {

enum class layer_kind { dense, conv2d, maxpool2, avgpool2, relu };

class layer {
 public:
  virtual ~layer() = default;

  [[nodiscard]] virtual layer_kind kind() const = 0;

  /// Float forward.  With `training` the layer caches what backward needs.
  virtual tensor forward(const tensor& x, bool training) = 0;

  /// Gradient w.r.t. the input; accumulates parameter gradients.
  virtual tensor backward(const tensor& grad) = 0;

  /// Hardware-accurate quantized forward (see file comment).  Layers
  /// without weights never touch the quantization params or the compiled
  /// table: max-pool and ReLU are grid-preserving, so the float path is
  /// bit-identical to int arithmetic.
  virtual tensor forward_quantized(const tensor& x, const layer_qparams&,
                                   const metrics::compiled_mult_table&,
                                   bool training) {
    return forward(x, training);
  }

  [[nodiscard]] virtual std::array<std::size_t, 3> output_shape(
      std::array<std::size_t, 3> input_shape) const = 0;

  /// Flattened parameter access (empty for parameter-free layers).
  virtual std::span<float> weights() { return {}; }
  virtual std::span<float> bias() { return {}; }

  virtual void zero_grads() {}
  /// SGD with momentum over the gradients accumulated since zero_grads.
  virtual void sgd_step(float learning_rate, float momentum) {
    (void)learning_rate;
    (void)momentum;
  }
};

}  // namespace axc::nn
