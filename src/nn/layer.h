// Layer interface for the NN substrate.
//
// Layers implement float forward/backward for training plus a quantized
// forward used both for int8 inference and for approximate-aware
// fine-tuning: forward_quantized computes exactly what the 8-bit MAC
// hardware would (inputs and weights on their fixed-point grids, every
// product through the supplied multiplier LUT, accumulate in int32,
// requantize by shifting) and returns the dequantized float result, so the
// existing float backward acts as a straight-through gradient.
#pragma once

#include <array>
#include <span>

#include "mult/lut.h"
#include "nn/qformat.h"
#include "nn/tensor.h"

namespace axc::nn {

enum class layer_kind { dense, conv2d, maxpool2, avgpool2, relu };

class layer {
 public:
  virtual ~layer() = default;

  [[nodiscard]] virtual layer_kind kind() const = 0;

  /// Float forward.  With `training` the layer caches what backward needs.
  virtual tensor forward(const tensor& x, bool training) = 0;

  /// Gradient w.r.t. the input; accumulates parameter gradients.
  virtual tensor backward(const tensor& grad) = 0;

  /// Hardware-accurate quantized forward (see file comment).  Layers
  /// without weights default to the float forward: max-pool and ReLU are
  /// grid-preserving, so the float path is bit-identical to int arithmetic.
  virtual tensor forward_quantized(const tensor& x, const layer_qparams& qp,
                                   const mult::product_lut& lut,
                                   bool training) {
    (void)qp;
    (void)lut;
    return forward(x, training);
  }

  [[nodiscard]] virtual std::array<std::size_t, 3> output_shape(
      std::array<std::size_t, 3> input_shape) const = 0;

  /// Flattened parameter access (empty for parameter-free layers).
  virtual std::span<float> weights() { return {}; }
  virtual std::span<float> bias() { return {}; }

  virtual void zero_grads() {}
  /// SGD with momentum over the gradients accumulated since zero_grads.
  virtual void sgd_step(float learning_rate, float momentum) {
    (void)learning_rate;
    (void)momentum;
  }
};

}  // namespace axc::nn
