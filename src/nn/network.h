// Sequential network container: forward/backward chaining, softmax
// cross-entropy head, prediction, and weight (de)serialization so trained
// models can be cached between benchmark binaries.
#pragma once

#include <iosfwd>
#include <memory>
#include <vector>

#include "nn/layer.h"

namespace axc::nn {

struct loss_and_grad {
  double loss{0.0};
  tensor grad;  ///< gradient w.r.t. the logits
};

/// Numerically stable softmax + cross-entropy against an integer label.
loss_and_grad softmax_cross_entropy(const tensor& logits, int label);

class network {
 public:
  network() = default;
  network(network&&) = default;
  network& operator=(network&&) = default;

  void add(std::unique_ptr<layer> l) { layers_.push_back(std::move(l)); }

  [[nodiscard]] std::size_t layer_count() const { return layers_.size(); }
  [[nodiscard]] layer& at(std::size_t i) { return *layers_[i]; }
  [[nodiscard]] const layer& at(std::size_t i) const { return *layers_[i]; }

  tensor forward(const tensor& x, bool training = false);
  /// Backpropagates the logits gradient through the whole stack.
  void backward(const tensor& logits_grad);

  void zero_grads();
  void sgd_step(float learning_rate, float momentum);

  [[nodiscard]] int predict_class(const tensor& x);

  /// Total trainable parameter count.
  [[nodiscard]] std::size_t parameter_count() const;

  /// Weight-blob serialization (layout must match the loaded network).
  void save_weights(std::ostream& os) const;
  /// Returns false on magic/shape mismatch.
  bool load_weights(std::istream& is);

 private:
  std::vector<std::unique_ptr<layer>> layers_;
};

}  // namespace axc::nn
