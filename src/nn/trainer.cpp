#include "nn/trainer.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "support/assert.h"
#include "support/rng.h"

namespace axc::nn {

double accuracy(network& net, std::span<const tensor> images,
                std::span<const int> labels, std::size_t max_samples) {
  AXC_EXPECTS(images.size() == labels.size() && !images.empty());
  const std::size_t count = max_samples == 0
                                ? images.size()
                                : std::min(max_samples, images.size());
  std::size_t correct = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (net.predict_class(images[i]) == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(count);
}

void train(network& net, std::span<const tensor> images,
           std::span<const int> labels, const train_config& config,
           const std::function<void(const epoch_stats&)>& on_epoch) {
  AXC_EXPECTS(images.size() == labels.size() && !images.empty());
  AXC_EXPECTS(config.batch_size > 0);

  rng gen(config.seed);
  std::vector<std::size_t> order(images.size());
  std::iota(order.begin(), order.end(), 0);

  float lr = config.learning_rate;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    // Fisher-Yates with our deterministic generator.
    for (std::size_t i = order.size(); i-- > 1;) {
      std::swap(order[i], order[gen.below(i + 1)]);
    }

    double loss_sum = 0.0;
    for (std::size_t base = 0; base < order.size();
         base += config.batch_size) {
      const std::size_t limit =
          std::min(order.size(), base + config.batch_size);
      net.zero_grads();
      for (std::size_t k = base; k < limit; ++k) {
        const std::size_t idx = order[k];
        const tensor logits = net.forward(images[idx], /*training=*/true);
        const loss_and_grad lg = softmax_cross_entropy(logits, labels[idx]);
        loss_sum += lg.loss;
        net.backward(lg.grad);
      }
      // Gradients are sums over the batch; fold the mean into the step.
      net.sgd_step(lr / static_cast<float>(limit - base), config.momentum);
    }

    if (on_epoch) {
      on_epoch(epoch_stats{
          epoch, loss_sum / static_cast<double>(images.size()), lr});
    }
    lr *= config.lr_decay;
  }
}

}  // namespace axc::nn
