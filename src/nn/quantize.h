// Ristretto-like dynamic fixed-point quantization (Sec. V-B).
//
// A trained float network is analyzed over a calibration set: per trainable
// layer we pick power-of-two scales for weights (from max |w|) and for
// input/output activations (from observed ranges), then freeze int8 weights
// and int32 biases.  quantized_network then runs the paper's hardware model
// — int8 operands, every product through a multiplier LUT (exact or
// approximate), int32 accumulation, shift requantization — and doubles as
// the forward path for approximate-aware fine-tuning.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "metrics/compiled_table.h"
#include "nn/network.h"
#include "nn/qformat.h"

namespace axc::nn {

class quantized_network {
 public:
  /// Analyzes ranges over `calibration` (float forward passes) and freezes
  /// quantization formats.  The float network must outlive this object.
  quantized_network(network& net, std::span<const tensor> calibration);

  /// Re-quantizes weights/biases from the (updated) float parameters while
  /// keeping the frozen formats; called by the fine-tuning loop.
  void refresh_weights();

  /// Hardware-model forward; `training` caches straight-through state
  /// inside the float layers for a subsequent backward().
  tensor forward(const tensor& x, const metrics::compiled_mult_table& lut,
                 bool training = false);

  [[nodiscard]] int predict_class(const tensor& x,
                                  const metrics::compiled_mult_table& lut);

  double accuracy(std::span<const tensor> images, std::span<const int> labels,
                  const metrics::compiled_mult_table& lut, std::size_t max_samples = 0);

  /// All quantized weights concatenated (the paper's Fig. 6 histograms are
  /// over exactly this multiset — the multiplier's operand A stream).
  [[nodiscard]] std::vector<std::int8_t> quantized_weights() const;

  [[nodiscard]] const std::vector<layer_qparams>& qparams() const {
    return qp_;
  }
  [[nodiscard]] network& base() { return *net_; }

 private:
  network* net_;
  std::vector<layer_qparams> qp_;
};

}  // namespace axc::nn
