// The paper's two reference architectures (Sec. V-A/B).
#pragma once

#include <cstdint>

#include "nn/network.h"

namespace axc::nn {

/// MLP 784-300-10 (MNIST case study): dense(300) + ReLU + dense(10).
network make_mlp(std::uint64_t seed, std::size_t input_pixels = 28 * 28,
                 std::size_t hidden = 300, std::size_t classes = 10);

/// Modified LeNet-5 (SVHN case study) for 32x32 single-channel input:
/// conv 6@5x5 - pool - conv 16@5x5 - pool - conv 120@5x5 - ReLU chain -
/// dense(10).  "Three convolution layers, two pooling layers and one fully
/// connected layer [of] 120 neurons outputting 10 values."
/// `channel_scale` (>0) scales the channel counts for faster smoke runs.
network make_lenet5(std::uint64_t seed, double channel_scale = 1.0,
                    std::size_t classes = 10);

}  // namespace axc::nn
