// Fully connected layer (flattens its input).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/layer.h"
#include "support/rng.h"

namespace axc::nn {

class dense : public layer {
 public:
  dense(std::size_t in_features, std::size_t out_features, rng& gen);

  [[nodiscard]] layer_kind kind() const override { return layer_kind::dense; }
  tensor forward(const tensor& x, bool training) override;
  tensor backward(const tensor& grad) override;
  tensor forward_quantized(const tensor& x, const layer_qparams& qp,
                           const metrics::compiled_mult_table& lut,
                           bool training) override;
  [[nodiscard]] std::array<std::size_t, 3> output_shape(
      std::array<std::size_t, 3> input_shape) const override;

  std::span<float> weights() override { return w_; }
  std::span<float> bias() override { return b_; }
  void zero_grads() override;
  void sgd_step(float learning_rate, float momentum) override;

  [[nodiscard]] std::size_t in_features() const { return in_; }
  [[nodiscard]] std::size_t out_features() const { return out_; }

 private:
  std::size_t in_;
  std::size_t out_;
  std::vector<float> w_;   ///< [out][in], row-major
  std::vector<float> b_;   ///< [out]
  std::vector<float> gw_;
  std::vector<float> gb_;
  std::vector<float> vw_;  ///< momentum buffers
  std::vector<float> vb_;
  tensor cached_input_;
};

}  // namespace axc::nn
