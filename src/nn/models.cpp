#include "nn/models.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "support/assert.h"
#include "support/rng.h"

namespace axc::nn {

network make_mlp(std::uint64_t seed, std::size_t input_pixels,
                 std::size_t hidden, std::size_t classes) {
  rng gen(seed);
  network net;
  net.add(std::make_unique<dense>(input_pixels, hidden, gen));
  net.add(std::make_unique<relu>());
  net.add(std::make_unique<dense>(hidden, classes, gen));
  return net;
}

network make_lenet5(std::uint64_t seed, double channel_scale,
                    std::size_t classes) {
  AXC_EXPECTS(channel_scale > 0.0);
  const auto scaled = [channel_scale](std::size_t channels) {
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::lround(static_cast<double>(channels) * channel_scale)));
  };
  const std::size_t c1 = scaled(6);
  const std::size_t c2 = scaled(16);
  const std::size_t c3 = scaled(120);

  rng gen(seed);
  network net;
  // 1x32x32 -> c1x28x28 -> c1x14x14 -> c2x10x10 -> c2x5x5 -> c3x1x1 -> 10.
  net.add(std::make_unique<conv2d>(1, c1, 5, gen));
  net.add(std::make_unique<relu>());
  net.add(std::make_unique<maxpool2>());
  net.add(std::make_unique<conv2d>(c1, c2, 5, gen));
  net.add(std::make_unique<relu>());
  net.add(std::make_unique<maxpool2>());
  net.add(std::make_unique<conv2d>(c2, c3, 5, gen));
  net.add(std::make_unique<relu>());
  net.add(std::make_unique<dense>(c3, classes, gen));
  return net;
}

}  // namespace axc::nn
