// Plain float SGD training (the paper's reference networks are trained in
// float and quantized afterwards, as Ristretto does).
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "nn/network.h"

namespace axc::nn {

struct train_config {
  std::size_t epochs{5};
  std::size_t batch_size{32};
  float learning_rate{0.05f};
  float momentum{0.9f};
  /// Multiplicative learning-rate decay per epoch.
  float lr_decay{0.9f};
  std::uint64_t seed{11};
};

struct epoch_stats {
  std::size_t epoch{0};
  double mean_loss{0.0};
  float learning_rate{0.0f};
};

/// Classification accuracy in [0, 1]; max_samples == 0 means "all".
double accuracy(network& net, std::span<const tensor> images,
                std::span<const int> labels, std::size_t max_samples = 0);

/// Minibatch SGD with momentum; shuffles every epoch (deterministic in
/// config.seed).  `on_epoch` (optional) observes progress.
void train(network& net, std::span<const tensor> images,
           std::span<const int> labels, const train_config& config,
           const std::function<void(const epoch_stats&)>& on_epoch = {});

}  // namespace axc::nn
