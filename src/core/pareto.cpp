#include "core/pareto.h"

#include <algorithm>
#include <limits>

namespace axc::core {

bool dominates(const pareto_point& a, const pareto_point& b) {
  return a.x <= b.x && a.y <= b.y && (a.x < b.x || a.y < b.y);
}

std::vector<pareto_point> pareto_front(std::span<const pareto_point> points) {
  std::vector<pareto_point> sorted(points.begin(), points.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const pareto_point& a, const pareto_point& b) {
              if (a.x != b.x) return a.x < b.x;
              return a.y < b.y;
            });

  std::vector<pareto_point> front;
  double best_y = std::numeric_limits<double>::infinity();
  for (const pareto_point& p : sorted) {
    if (p.y < best_y) {
      front.push_back(p);
      best_y = p.y;
    }
  }
  return front;
}

bool pareto_archive::insert(const pareto_point& p) {
  for (pareto_point& q : points_) {
    if (q.x == p.x && q.y == p.y) {
      // Coordinate tie: deterministic winner regardless of arrival order.
      if (p.index < q.index) {
        q.index = p.index;
        return true;
      }
      return false;
    }
    if (dominates(q, p)) return false;
  }

  std::erase_if(points_,
                [&p](const pareto_point& q) { return dominates(p, q); });
  const auto pos = std::lower_bound(
      points_.begin(), points_.end(), p,
      [](const pareto_point& a, const pareto_point& b) {
        if (a.x != b.x) return a.x < b.x;
        return a.y < b.y;
      });
  points_.insert(pos, p);
  return true;
}

std::size_t pareto_archive::merge(const pareto_archive& other) {
  if (&other == this) return 0;  // self-union: insert() would invalidate
  std::size_t kept = 0;
  for (const pareto_point& p : other.points_) {
    kept += insert(p) ? 1 : 0;
  }
  return kept;
}

}  // namespace axc::core
