#include "core/pareto.h"

#include <algorithm>
#include <limits>

namespace axc::core {

bool dominates(const pareto_point& a, const pareto_point& b) {
  return a.x <= b.x && a.y <= b.y && (a.x < b.x || a.y < b.y);
}

std::vector<pareto_point> pareto_front(std::span<const pareto_point> points) {
  std::vector<pareto_point> sorted(points.begin(), points.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const pareto_point& a, const pareto_point& b) {
              if (a.x != b.x) return a.x < b.x;
              return a.y < b.y;
            });

  std::vector<pareto_point> front;
  double best_y = std::numeric_limits<double>::infinity();
  for (const pareto_point& p : sorted) {
    if (p.y < best_y) {
      front.push_back(p);
      best_y = p.y;
    }
  }
  return front;
}

}  // namespace axc::core
