#include "core/wmed_approximator.h"

#include <cmath>
#include <memory>
#include <utility>

#include "metrics/wmed_evaluator.h"
#include "support/assert.h"
#include "tech/analysis.h"

namespace axc::core {

wmed_approximator::wmed_approximator(approximation_config config)
    : config_(std::move(config)) {
  AXC_EXPECTS(config_.distribution.size() == config_.spec.operand_count());
  AXC_EXPECTS(config_.library != nullptr);
  AXC_EXPECTS(!config_.function_set.empty());
}

evolved_design wmed_approximator::approximate(const circuit::netlist& seed,
                                              double target,
                                              std::size_t run_index) const {
  AXC_EXPECTS(target >= 0.0 && target <= 1.0);
  AXC_EXPECTS(seed.num_inputs() == 2 * config_.spec.width);
  AXC_EXPECTS(seed.num_outputs() == 2 * config_.spec.width);

  cgp::parameters params;
  params.num_inputs = seed.num_inputs();
  params.num_outputs = seed.num_outputs();
  params.columns = seed.num_gates() + config_.extra_columns;
  params.rows = 1;
  params.levels_back = params.columns;
  params.function_set = config_.function_set;
  params.max_mutations = config_.max_mutations;
  params.lambda = config_.lambda;

  // Decorrelate runs/targets deterministically from the base seed.
  std::uint64_t mix = config_.rng_seed;
  mix ^= 0x9e3779b97f4a7c15ULL * (run_index + 1);
  mix ^= static_cast<std::uint64_t>(target * 1e12) * 0xd1342543de82ef95ULL;
  rng gen(splitmix64(mix));

  const cgp::genotype start =
      cgp::genotype::from_netlist(params, seed, gen);

  metrics::wmed_evaluator wmed(config_.spec, config_.distribution);
  const tech::cell_library* lib = config_.library;

  cgp::evolver::options opts;
  opts.iterations = config_.iterations;
  opts.error_tiebreak = config_.error_tiebreak;

  // Eq. 1: abort the error sweep once the candidate is proven infeasible;
  // area is only ranked among feasible candidates.
  const auto score = [lib, target](metrics::wmed_evaluator& evaluator,
                                   const circuit::netlist& nl) {
    const double error = evaluator.evaluate(nl, target);
    cgp::evaluation eval;
    eval.error = error;
    eval.feasible = error <= target;
    eval.area = eval.feasible ? tech::estimate_area(nl, *lib) : 0.0;
    return eval;
  };

  // Parallel lambda-evaluation gives every offspring slot a private
  // evaluator (they carry per-candidate scratch and sim programs).
  const cgp::evolver::evaluator_factory factory =
      [this, score]() -> cgp::evolver::evaluate_fn {
    auto evaluator = std::make_shared<metrics::wmed_evaluator>(
        config_.spec, config_.distribution);
    return [evaluator, score](const circuit::netlist& nl) {
      return score(*evaluator, nl);
    };
  };
  const cgp::evolver::run_result run =
      config_.threads > 1
          ? cgp::evolver::run_parallel(start, factory, opts, config_.threads,
                                       gen)
          : cgp::evolver::run(
                start,
                [&wmed, score](const circuit::netlist& nl) {
                  return score(wmed, nl);
                },
                opts, gen);

  evolved_design design{run.best.decode_cone(), 0.0, 0.0, target,
                        run_index, run.evaluations, run.improvements};
  design.wmed = wmed.evaluate(design.netlist);
  design.area_um2 = tech::estimate_area(design.netlist, *lib);
  return design;
}

std::vector<evolved_design> wmed_approximator::sweep(
    const circuit::netlist& seed, std::span<const double> targets,
    const std::function<void(const evolved_design&)>& on_design) const {
  std::vector<evolved_design> designs;
  designs.reserve(targets.size() * config_.runs_per_target);
  for (const double target : targets) {
    for (std::size_t run = 0; run < config_.runs_per_target; ++run) {
      designs.push_back(approximate(seed, target, run));
      if (on_design) on_design(designs.back());
    }
  }
  return designs;
}

std::vector<double> default_wmed_targets() {
  // 14 log-spaced levels spanning the paper's WMED axis (0.0001 % .. 10 %),
  // expressed as fractions.
  std::vector<double> targets;
  targets.reserve(14);
  for (int k = 0; k < 14; ++k) {
    const double exponent = -6.0 + 5.0 * static_cast<double>(k) / 13.0;
    targets.push_back(std::pow(10.0, exponent));
  }
  return targets;
}

}  // namespace axc::core
