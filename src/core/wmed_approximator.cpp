#include "core/wmed_approximator.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>

#include "cgp/cone_program.h"
#include "core/component_handle.h"
#include "core/search_session.h"
#include "metrics/wmed_evaluator.h"
#include "support/assert.h"
#include "tech/analysis.h"

namespace axc::core {

namespace {

/// cgp::incremental_evaluator over the genotype-native pipeline: compile or
/// patch the parent's cone schedule, run the bit-plane sweep with early
/// abort at the target, estimate area straight from the active gate
/// functions.  Every path is bit-identical to scoring decode_cone() through
/// the netlist-based evaluator (parity-tested in
/// tests/test_incremental_eval.cpp).
template <metrics::component_spec Spec>
class incremental_wmed final : public cgp::incremental_evaluator {
 public:
  incremental_wmed(wmed_shared_cache<Spec> cache,
                   const tech::cell_library& lib, double target,
                   simd::level simd, bool batch)
      : evaluator_(std::move(cache), simd),
        lib_(&lib),
        target_(target),
        batch_(batch) {}

  cgp::evaluation evaluate_and_bind(const cgp::genotype& parent) override {
    cone_.bind(parent);
    parent_eval_ = score();
    return parent_eval_;
  }

  void rebind(const cgp::genotype& parent,
              const cgp::evaluation& eval) override {
    cone_.bind(parent);
    parent_eval_ = eval;  // the known evaluation spares the parent sweep
  }

  cgp::evaluation evaluate_child(
      const cgp::genotype& parent, const cgp::genotype& child,
      std::span<const std::uint32_t> dirty) override {
    const cgp::cone_program::delta d = cone_.apply(parent, child, dirty);
    // Phenotype-identical mutants (every mutated gene landed on its old
    // value or in the inactive padding) score exactly like the parent.
    if (d == cgp::cone_program::delta::identical) return parent_eval_;
    const cgp::evaluation eval = score();
    cone_.release_child(parent);
    return eval;
  }

  void evaluate_children(const cgp::genotype& parent,
                         const std::vector<cgp::genotype>& children,
                         const std::vector<std::vector<std::uint32_t>>& dirty,
                         std::size_t begin, std::size_t end,
                         cgp::evaluation* out) override {
    if (!batch_) {
      cgp::incremental_evaluator::evaluate_children(parent, children, dirty,
                                                    begin, end, out);
      return;
    }
    // Stage every child first — the schedule keeps modelling the parent,
    // identical mutants drop out with the parent's score — then score the
    // survivors in one interleaved batch sweep: per pass, one
    // run_batch() call executes all of them (amortizing the per-step
    // dispatch cost the solo executor pays per candidate) and one
    // multi-candidate kernel call scores them against exact planes read
    // once for the whole batch.
    const std::size_t n = end - begin;
    if (staged_.size() < n) staged_.resize(n);
    live_slots_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      const cgp::cone_program::delta d = cone_.stage_child(
          parent, children[begin + i], dirty[begin + i], staged_[i]);
      if (d == cgp::cone_program::delta::identical) {
        out[i] = parent_eval_;
      } else {
        live_slots_.push_back(i);
      }
    }
    if (live_slots_.empty()) return;
    staged_ptrs_.clear();
    cands_.clear();
    for (const std::size_t i : live_slots_) {
      const cgp::staged_child& sc = staged_[i];
      staged_ptrs_.push_back(&sc);
      cands_.push_back(metrics::batch_candidate{
          sc.patch_nodes.data(), sc.patch_steps.data(),
          sc.patch_nodes.size(), sc.out_offsets.data()});
    }
    errors_.resize(live_slots_.size());
    evaluator_.evaluate_batch(cone_.program(), cone_.batch_union(staged_ptrs_),
                              cands_, target_, errors_);
    for (std::size_t j = 0; j < live_slots_.size(); ++j) {
      const std::size_t i = live_slots_[j];
      out[i].error = errors_[j];
      out[i].feasible = errors_[j] <= target_;
      out[i].area =
          out[i].feasible
              ? tech::estimate_area(
                    cone_.stage_fns(children[begin + i], staged_[i]), *lib_)
              : 0.0;
    }
  }

 private:
  cgp::evaluation score() {
    cgp::evaluation eval;
    // Eq. 1: abort the error sweep once the candidate is proven infeasible;
    // area is only ranked among feasible candidates.
    eval.error = evaluator_.evaluate_program(cone_.program(), target_);
    eval.feasible = eval.error <= target_;
    eval.area =
        eval.feasible ? tech::estimate_area(cone_.step_fns(), *lib_) : 0.0;
    return eval;
  }

  metrics::basic_wmed_evaluator<Spec> evaluator_;
  cgp::cone_program cone_;
  const tech::cell_library* lib_;
  double target_;
  bool batch_;
  cgp::evaluation parent_eval_{};
  std::vector<cgp::staged_child> staged_;        ///< batch scratch, reused
  std::vector<const cgp::staged_child*> staged_ptrs_;
  std::vector<metrics::batch_candidate> cands_;
  std::vector<std::size_t> live_slots_;
  std::vector<double> errors_;
};

}  // namespace

template <metrics::component_spec Spec>
void finalize_config(basic_approximation_config<Spec>& config) {
  // An unset distribution derives its size from the spec; a set one must
  // match it — fail loudly instead of silently mis-weighting WMED.
  if (config.distribution.empty()) {
    config.distribution = dist::pmf::uniform(config.spec.operand_count());
  } else if (config.distribution.size() != config.spec.operand_count()) {
    std::fprintf(stderr,
                 "axc: approximation_config.distribution has %zu entries but "
                 "spec width %u requires %zu\n",
                 config.distribution.size(), config.spec.width,
                 config.spec.operand_count());
    std::abort();
  }
  AXC_EXPECTS(config.library != nullptr);
  AXC_EXPECTS(!config.function_set.empty());
}

template <metrics::component_spec Spec>
std::unique_ptr<cgp::incremental_evaluator> make_incremental_wmed_evaluator(
    wmed_shared_cache<Spec> cache, const tech::cell_library& lib,
    double target, simd::level simd, bool batch) {
  return std::make_unique<incremental_wmed<Spec>>(std::move(cache), lib,
                                                  target, simd, batch);
}

template <metrics::component_spec Spec>
std::unique_ptr<cgp::incremental_evaluator> make_incremental_wmed_evaluator(
    const Spec& spec, const dist::pmf& d, const tech::cell_library& lib,
    double target, simd::level simd, bool batch) {
  return make_incremental_wmed_evaluator<Spec>(
      metrics::basic_wmed_evaluator<Spec>::make_shared_state(spec, d), lib,
      target, simd, batch);
}

template <metrics::component_spec Spec>
std::optional<evolved_design> run_search_job(
    const basic_approximation_config<Spec>& config,
    const wmed_shared_cache<Spec>& cache, const circuit::netlist& seed,
    double target, std::size_t run_index, const search_hooks& hooks) {
  AXC_EXPECTS(cache != nullptr);
  AXC_EXPECTS(cache->spec == config.spec);
  AXC_EXPECTS(target >= 0.0 && target <= 1.0);
  AXC_EXPECTS(seed.num_inputs() == 2 * config.spec.width);
  AXC_EXPECTS(seed.num_outputs() == config.spec.result_bits());

  cgp::parameters params;
  params.num_inputs = seed.num_inputs();
  params.num_outputs = seed.num_outputs();
  params.columns = seed.num_gates() + config.extra_columns;
  params.rows = 1;
  params.levels_back = params.columns;
  params.function_set = config.function_set;
  params.max_mutations = config.max_mutations;
  params.lambda = config.lambda;

  // Decorrelate runs/targets deterministically from the base seed; the
  // stream depends only on (rng_seed, target, run_index), never on job
  // scheduling, so sessions can run jobs in any order on any thread.
  std::uint64_t mix = config.rng_seed;
  mix ^= 0x9e3779b97f4a7c15ULL * (run_index + 1);
  mix ^= static_cast<std::uint64_t>(target * 1e12) * 0xd1342543de82ef95ULL;
  rng gen(splitmix64(mix));

  const cgp::genotype start =
      cgp::genotype::from_netlist(params, seed, gen);

  metrics::basic_wmed_evaluator<Spec> wmed(cache, config.simd);
  const tech::cell_library* lib = config.library;

  cgp::evolver::options opts;
  opts.iterations = config.iterations;
  opts.error_tiebreak = config.error_tiebreak;
  opts.batch_candidates = config.batch_candidates;
  opts.on_improvement = hooks.on_improvement;
  opts.on_generation = hooks.on_generation;
  opts.should_stop = hooks.should_stop;

  cgp::evolver::run_result run = [&] {
    if (config.incremental && config.spec.width >= 6) {
      // Genotype-native pipeline: mutants never round-trip through a
      // netlist; the parent's compiled schedule is shared and patched.
      const cgp::evolver::incremental_factory factory = [&cache, lib, target,
                                                         &config] {
        return make_incremental_wmed_evaluator<Spec>(
            cache, *lib, target, config.simd, config.batch_candidates);
      };
      return cgp::evolver::run_incremental(start, factory, opts,
                                           config.threads, gen);
    }

    // Netlist-based fallback (small widths and parity testing).  Eq. 1
    // scoring as above, with the sweep aborting at the target.
    const auto score = [lib, target](
                           metrics::basic_wmed_evaluator<Spec>& evaluator,
                           const circuit::netlist& nl) {
      const double error = evaluator.evaluate(nl, target);
      cgp::evaluation eval;
      eval.error = error;
      eval.feasible = error <= target;
      eval.area = eval.feasible ? tech::estimate_area(nl, *lib) : 0.0;
      return eval;
    };
    if (config.threads > 1) {
      // Parallel lambda-evaluation gives every offspring slot a private
      // evaluator (they carry per-candidate scratch and sim programs).
      const cgp::evolver::evaluator_factory factory =
          [&cache, score, &config]() -> cgp::evolver::evaluate_fn {
        auto evaluator =
            std::make_shared<metrics::basic_wmed_evaluator<Spec>>(cache,
                                                                  config.simd);
        return [evaluator, score](const circuit::netlist& nl) {
          return score(*evaluator, nl);
        };
      };
      return cgp::evolver::run_parallel(start, factory, opts,
                                        config.threads, gen);
    }
    return cgp::evolver::run(
        start,
        [&wmed, score](const circuit::netlist& nl) {
          return score(wmed, nl);
        },
        opts, gen);
  }();

  if (run.stopped) return std::nullopt;

  evolved_design design{run.best.decode_cone(), 0.0, 0.0, target,
                        run_index, run.evaluations, run.improvements};
  design.wmed = wmed.evaluate(design.netlist);
  design.area_um2 = tech::estimate_area(design.netlist, *lib);
  return design;
}

template <metrics::component_spec Spec>
basic_wmed_approximator<Spec>::basic_wmed_approximator(
    basic_approximation_config<Spec> config)
    : config_(std::move(config)) {
  finalize_config(config_);
  cache_ = metrics::basic_wmed_evaluator<Spec>::make_shared_state(
      config_.spec, config_.distribution);
}

template <metrics::component_spec Spec>
evolved_design basic_wmed_approximator<Spec>::approximate(
    const circuit::netlist& seed, double target,
    std::size_t run_index) const {
  // No stop hook, so the job always completes.
  return *run_search_job(config_, cache_, seed, target, run_index);
}

template <metrics::component_spec Spec>
std::vector<evolved_design> basic_wmed_approximator<Spec>::sweep(
    const circuit::netlist& seed, std::span<const double> targets,
    const std::function<void(const evolved_design&)>& on_design) const {
  // One single-plan serial session: same job order and RNG streams as the
  // historic nested target/run loop, with the evaluator cache shared
  // across all jobs.
  sweep_plan plan;
  plan.targets.assign(targets.begin(), targets.end());
  plan.runs_per_target = config_.runs_per_target;

  session_config options;
  options.on_design = on_design;

  search_session session(make_component(config_, cache_), seed,
                         std::move(plan), std::move(options));
  session.run();
  return session.designs();
}

template class basic_wmed_approximator<metrics::mult_spec>;
template class basic_wmed_approximator<metrics::adder_spec>;

template void finalize_config<metrics::mult_spec>(
    basic_approximation_config<metrics::mult_spec>&);
template void finalize_config<metrics::adder_spec>(
    basic_approximation_config<metrics::adder_spec>&);

template std::optional<evolved_design> run_search_job<metrics::mult_spec>(
    const basic_approximation_config<metrics::mult_spec>&,
    const wmed_shared_cache<metrics::mult_spec>&, const circuit::netlist&,
    double, std::size_t, const search_hooks&);
template std::optional<evolved_design> run_search_job<metrics::adder_spec>(
    const basic_approximation_config<metrics::adder_spec>&,
    const wmed_shared_cache<metrics::adder_spec>&, const circuit::netlist&,
    double, std::size_t, const search_hooks&);

template std::unique_ptr<cgp::incremental_evaluator>
make_incremental_wmed_evaluator<metrics::mult_spec>(const metrics::mult_spec&,
                                                    const dist::pmf&,
                                                    const tech::cell_library&,
                                                    double, simd::level, bool);
template std::unique_ptr<cgp::incremental_evaluator>
make_incremental_wmed_evaluator<metrics::adder_spec>(
    const metrics::adder_spec&, const dist::pmf&, const tech::cell_library&,
    double, simd::level, bool);
template std::unique_ptr<cgp::incremental_evaluator>
make_incremental_wmed_evaluator<metrics::mult_spec>(
    wmed_shared_cache<metrics::mult_spec>, const tech::cell_library&, double,
    simd::level, bool);
template std::unique_ptr<cgp::incremental_evaluator>
make_incremental_wmed_evaluator<metrics::adder_spec>(
    wmed_shared_cache<metrics::adder_spec>, const tech::cell_library&, double,
    simd::level, bool);

std::vector<double> default_wmed_targets() {
  // 14 log-spaced levels spanning the paper's WMED axis (0.0001 % .. 10 %),
  // expressed as fractions.
  std::vector<double> targets;
  targets.reserve(14);
  for (int k = 0; k < 14; ++k) {
    const double exponent = -6.0 + 5.0 * static_cast<double>(k) / 13.0;
    targets.push_back(std::pow(10.0, exponent));
  }
  return targets;
}

}  // namespace axc::core
