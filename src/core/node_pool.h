// Node registry for multi-node sweep dispatch: liveness, quarantine,
// lease accounting.
//
// The coordinator (core/shard_runner.cpp) leases shards to nodes from this
// pool.  Health is tracked per node from lease outcomes: a failure backs
// the node off (exponential, per node), `quarantine_after` *consecutive*
// failures quarantines it, and a quarantined node re-enters probation only
// after its re-probation delay elapses — one lease at a time, so a flaky
// host cannot reabsorb the whole plan the moment it answers ping again.  A
// node declared dead (node-dead-midrun, a failed liveness probe) goes
// straight to quarantine.
//
// The pool is deliberately clock-free: every mutating call takes `now`, so
// unit tests drive quarantine and re-probation with synthetic time points
// and the coordinator passes its own steady_clock reading.  Nothing here
// talks to the network — reachability is whatever the launch/fetch
// commands report.
//
// Nodes files ("axc-nodes v1", parse_nodes_file) describe the fleet:
//
//   axc-nodes v1
//   # comment / blank lines allowed
//   node fast-box
//   host 10.0.0.7
//   slots 4
//   workdir /tmp/axc
//   worker /opt/axc/axc_worker
//   run ssh -oBatchMode=yes {host}
//   fetch scp {host}:{src} {dst}
//   push scp {src} {host}:{dst}
//   end
//
// Every attribute except `node`/`end` is optional: an empty `run` template
// launches locally (the degenerate single-node file reproduces plain
// fork/exec), an empty `workdir` means the node shares the coordinator's
// filesystem, and an empty `worker` means the coordinator's own worker
// binary path is valid on the node.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "support/launcher.h"

namespace axc::core {

/// One node a sweep may lease shards to.
struct node_config {
  std::string name{"local"};
  /// Substituted for `{host}` in the templates; purely textual.
  std::string host{};
  /// Concurrent shard launches this node accepts.
  std::size_t slots{1};
  /// Scratch directory for shard spec/checkpoint files on the node; empty
  /// = the node shares the coordinator's filesystem and uses its paths.
  std::string workdir{};
  /// Worker binary path on the node; empty = the coordinator's path.
  std::string worker{};
  support::launch_template tpl{};

  [[nodiscard]] support::worker_launcher launcher() const {
    return support::worker_launcher{tpl, host};
  }
  [[nodiscard]] bool shares_filesystem() const { return workdir.empty(); }

  bool operator==(const node_config&) const = default;
};

/// Parses an "axc-nodes v1" stream.  Strict: unknown keys, attributes
/// outside a node block, duplicate names, a missing `end`, or zero nodes
/// all reject the file (nullopt) — a half-read fleet silently dropping
/// nodes would be worse than an error.
[[nodiscard]] std::optional<std::vector<node_config>> parse_nodes(
    std::istream& in);
[[nodiscard]] std::optional<std::vector<node_config>> parse_nodes_file(
    const std::string& path);

/// Health policy knobs (times scale down in tests, up in production).
struct node_policy {
  /// Consecutive lease failures that quarantine a node.
  std::size_t quarantine_after{3};
  /// Base delay before a failed node is offered work again; doubles per
  /// consecutive failure (capped by quarantine, which takes over).
  std::chrono::milliseconds backoff{250};
  double backoff_factor{2.0};
  /// Base quarantine duration; doubles per additional quarantine trip.
  std::chrono::milliseconds reprobation{2000};
  double reprobation_factor{2.0};
};

enum class node_health : std::uint8_t { healthy, backing_off, quarantined };

/// Snapshot of one node's pool state (reporting / assertions).
struct node_status {
  std::string name{};
  node_health health{node_health::healthy};
  std::size_t active{0};           ///< leases currently held
  std::size_t launches{0};         ///< lifetime leases granted
  std::size_t failures{0};         ///< lifetime lease failures
  std::size_t consecutive_failures{0};
  std::size_t quarantines{0};      ///< times quarantined
  bool probation{false};           ///< re-admitted, not yet trusted
};

class node_pool {
 public:
  using clock = std::chrono::steady_clock;

  explicit node_pool(std::vector<node_config> nodes, node_policy policy = {});

  /// Leases a slot: the eligible node (healthy or past its delay, active <
  /// slots, on probation at most one lease) preferring any index not in
  /// `avoid`, then fewest active leases, then lowest index — deterministic
  /// given identical histories.  nullopt when no node qualifies.
  [[nodiscard]] std::optional<std::size_t> acquire(
      clock::time_point now, const std::vector<std::size_t>& avoid = {});

  /// Releases a lease without judging the node (speculation losers killed
  /// by the winner, coordinator drain).
  void release(std::size_t node);
  /// Lease finished well: the node is trusted again (consecutive-failure
  /// count and probation reset).
  void release_success(std::size_t node);
  /// Lease failed (launch error, non-zero exit, torn fetch, deadline
  /// kill): backs the node off, quarantines it at the policy threshold.
  void release_failure(std::size_t node, clock::time_point now);
  /// The node itself is gone (node-dead-midrun, unreachable host): every
  /// judgment at once — straight to quarantine.  Leases still held are NOT
  /// auto-released; callers release as they reap each launch.
  void mark_dead(std::size_t node, clock::time_point now);

  [[nodiscard]] std::size_t size() const { return states_.size(); }
  [[nodiscard]] const node_config& config(std::size_t node) const {
    return states_[node].config;
  }
  [[nodiscard]] node_status status(std::size_t node) const;
  [[nodiscard]] std::vector<node_status> report() const;
  /// True when some node could eventually accept a lease again (i.e. the
  /// pool is not permanently exhausted — quarantined nodes re-probate, so
  /// only an empty pool is dead forever).
  [[nodiscard]] bool any_possible() const { return !states_.empty(); }
  /// Earliest instant any currently-blocked node becomes eligible again;
  /// nullopt when a node is eligible right now (or the pool is empty).
  [[nodiscard]] std::optional<clock::time_point> next_eligible(
      clock::time_point now) const;

 private:
  struct state {
    node_config config{};
    node_health health{node_health::healthy};
    std::size_t active{0};
    std::size_t launches{0};
    std::size_t failures{0};
    std::size_t consecutive{0};
    std::size_t quarantines{0};
    bool probation{false};
    /// Instant before which the node is not offered leases.
    clock::time_point available_at{};
  };

  [[nodiscard]] bool eligible(const state& s, clock::time_point now) const;

  std::vector<state> states_{};
  node_policy policy_{};
};

}  // namespace axc::core
