#include "core/result_server.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/checksum.h"
#include "support/fault.h"
#include "support/io.h"

#if AXC_HAS_NET
#include <poll.h>
#include <unistd.h>
#endif

namespace axc::core {

namespace {

constexpr std::string_view kRequestMagic = "axc-serve v1";
constexpr std::string_view kReplyMagic = "axc-serve-reply v1";
constexpr std::string_view kJournalMagic = "serve v1";

/// Server crash points _Exit with 45 (42 worker, 43 coordinator, 44 store)
/// so the recovery tests can tell which injected death they observed.
constexpr int kServerCrashExit = 45;
constexpr std::string_view kFaultCrashMidEnqueue = "server-crash-mid-enqueue";
constexpr std::string_view kFaultCrashBeforeReply =
    "server-crash-before-reply";

std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

/// Same self-CRC'd line shape as the coordinator journal: `<body> crc <8hex>`.
[[nodiscard]] std::string journal_line(std::string_view body) {
  std::string line(body);
  char buf[9];
  std::snprintf(buf, sizeof buf, "%08x", support::crc32(body));
  line += " crc ";
  line += buf;
  line += '\n';
  return line;
}

[[nodiscard]] std::optional<std::uint64_t> parse_hex16(const std::string& s) {
  if (s.empty() || s.size() > 16 ||
      s.find_first_not_of("0123456789abcdef") != std::string::npos) {
    return std::nullopt;
  }
  return std::stoull(s, nullptr, 16);
}

[[nodiscard]] bool known_status(std::string_view status) {
  return status == "hit" || status == "miss-enqueued" ||
         status == "miss-rejected" || status == "queued" ||
         status == "running" || status == "failed" || status == "unknown" ||
         status == "malformed" || status == "draining" ||
         status == "timeout" || status == "error";
}

}  // namespace

// ---- Protocol text -------------------------------------------------------

std::string encode_request(const serve_request& request) {
  std::ostringstream os;
  os << kRequestMagic << "\n";
  os << "verb " << request.verb << "\n";
  if (request.budget) os << "budget " << format_double(*request.budget) << "\n";
  os << "timeout-ms " << request.timeout_ms << "\n";
  os << "spec\n";
  request.spec.write(os);
  return os.str();
}

std::optional<serve_request> parse_request(std::string_view text) {
  std::istringstream is{std::string(text)};
  std::string line;
  if (!std::getline(is, line) || line != kRequestMagic) return std::nullopt;
  serve_request request;
  bool saw_verb = false;
  while (std::getline(is, line)) {
    if (line == "spec") {
      auto spec = sweep_spec::read(is);
      if (!spec || !saw_verb) return std::nullopt;
      request.spec = *std::move(spec);
      return request;
    }
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag)) return std::nullopt;
    if (tag == "verb") {
      if (!(ls >> request.verb)) return std::nullopt;
      if (request.verb != "get" && request.verb != "status" &&
          request.verb != "wait" && request.verb != "table") {
        return std::nullopt;
      }
      saw_verb = true;
    } else if (tag == "budget") {
      double budget = 0.0;
      if (!(ls >> budget)) return std::nullopt;
      request.budget = budget;
    } else if (tag == "timeout-ms") {
      if (!(ls >> request.timeout_ms) || request.timeout_ms < 0) {
        return std::nullopt;
      }
    } else {
      return std::nullopt;  // strict: unknown header lines are damage
    }
  }
  return std::nullopt;  // never reached the spec section
}

std::string encode_reply(const serve_reply& reply) {
  std::string out(kReplyMagic);
  out += "\nstatus ";
  out += reply.status;
  out += '\n';
  if (!reply.key.empty()) {
    out += "key ";
    out += reply.key;
    out += '\n';
  }
  if (reply.payload) {
    out += "payload ";
    out += std::to_string(reply.payload->size());
    out += '\n';
    out += *reply.payload;
  } else {
    out += "end\n";
  }
  return out;
}

std::optional<serve_reply> parse_reply(std::string_view text) {
  std::istringstream is{std::string(text)};
  std::string line;
  if (!std::getline(is, line) || line != kReplyMagic) return std::nullopt;
  serve_reply reply;
  {
    if (!std::getline(is, line)) return std::nullopt;
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag >> reply.status) || tag != "status" ||
        !known_status(reply.status)) {
      return std::nullopt;
    }
  }
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag)) return std::nullopt;
    if (tag == "key") {
      if (!(ls >> reply.key)) return std::nullopt;
    } else if (tag == "end") {
      return reply;
    } else if (tag == "payload") {
      std::size_t size = 0;
      if (!(ls >> size)) return std::nullopt;
      std::string payload(size, '\0');
      is.read(payload.data(), static_cast<std::streamsize>(size));
      if (static_cast<std::size_t>(is.gcount()) != size) return std::nullopt;
      reply.payload = std::move(payload);
      return reply;
    } else {
      return std::nullopt;
    }
  }
  return std::nullopt;  // missing end/payload terminator
}

// ---- Server --------------------------------------------------------------

struct result_server::connection {
  support::net::unix_stream stream{};
  std::thread thread{};
  std::atomic<bool> done{false};
};

result_server::result_server(server_config config)
    : config_(std::move(config)) {}

result_server::~result_server() {
  request_stop();
  {
    std::scoped_lock lock(jobs_mutex_);
  }
  jobs_cv_.notify_all();
  for (auto& conn : connections_) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  if (worker_.joinable()) worker_.join();
#if AXC_HAS_NET
  for (int& fd : stop_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
#endif
}

std::string result_server::job_spec_path(std::uint64_t key) const {
  return config_.work_dir + "/jobs/" + result_store::format_key(key) +
         ".spec";
}

bool result_server::journal_append(std::string_view body) {
  std::scoped_lock lock(journal_mutex_);
  const std::string path = config_.work_dir + "/server.journal";
  {
    std::ofstream os(path, std::ios::binary | std::ios::app);
    if (!os) return false;
    const std::string line = journal_line(body);
    os.write(line.data(), static_cast<std::streamsize>(line.size()));
    os.flush();
    if (!os) return false;
  }
  return support::fsync_file(path);
}

void result_server::replay_journal() {
  const std::string path = config_.work_dir + "/server.journal";
  std::vector<std::uint64_t> enqueued;
  std::vector<std::uint64_t> settled;  // done or fail
  bool valid = false;
  {
    std::ifstream is(path, std::ios::binary);
    std::string line;
    while (is && std::getline(is, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      const std::size_t crc_at = line.rfind(" crc ");
      if (crc_at == std::string::npos) continue;  // damaged: drop, resync
      const auto stored = parse_hex16(line.substr(crc_at + 5));
      const std::string body = line.substr(0, crc_at);
      if (!stored || *stored != support::crc32(body)) continue;
      std::istringstream ls(body);
      std::string tag;
      ls >> tag;
      if (!valid) {
        std::string version;
        if (tag != "serve" || !(ls >> version) ||
            "serve " + version != kJournalMagic) {
          // Foreign or pre-header-damaged journal: start fresh below.
          break;
        }
        valid = true;
        continue;
      }
      std::string key_hex;
      if (!(ls >> key_hex)) continue;
      const auto key = parse_hex16(key_hex);
      if (!key) continue;
      if (tag == "enqueue") {
        enqueued.push_back(*key);
      } else if (tag == "done" || tag == "fail") {
        settled.push_back(*key);
      }
    }
  }
  if (!valid) {
    if (!support::write_file_durable(
            path, journal_line(std::string(kJournalMagic)))) {
      std::fprintf(stderr, "axc-serve: cannot write journal %s\n",
                   path.c_str());
    }
    return;
  }
  // Re-adopt every accepted job no previous life settled.  A job whose
  // front actually landed (the crash hit between publish and the `done`
  // record) is recognized from the store and settled retroactively.
  for (const std::uint64_t key : enqueued) {
    if (std::find(settled.begin(), settled.end(), key) != settled.end()) {
      continue;
    }
    const std::string key16 = result_store::format_key(key);
    {
      std::scoped_lock lock(store_mutex_);
      if (store_ && store_->contains("front", key16)) {
        (void)journal_append("done " + key16);
        settled.push_back(key);
        continue;
      }
    }
    auto spec = sweep_spec::read_file(job_spec_path(key));
    if (!spec) {
      std::fprintf(stderr,
                   "axc-serve: journaled job %s has no readable spec; "
                   "dropping it\n",
                   key16.c_str());
      (void)journal_append("fail " + key16);
      settled.push_back(key);
      continue;
    }
    std::scoped_lock lock(jobs_mutex_);
    auto item = std::make_unique<job>();
    item->key = key;
    item->spec = *std::move(spec);
    item->state = job_state::queued;
    jobs_.push_back(std::move(item));
    queue_.push_back(key);
    settled.push_back(key);  // guard against duplicate enqueue records
    std::scoped_lock stats_lock(stats_mutex_);
    ++stats_.jobs_adopted;
  }
}

bool result_server::start() {
  std::error_code ec;
  std::filesystem::create_directories(config_.work_dir + "/jobs", ec);
  std::filesystem::create_directories(config_.work_dir + "/sweeps", ec);
  {
    std::scoped_lock lock(store_mutex_);
    store_ = result_store::open(config_.store_dir);
    if (!store_) {
      std::fprintf(stderr, "axc-serve: cannot open store %s\n",
                   config_.store_dir.c_str());
      return false;
    }
  }
#if AXC_HAS_NET
  if (::pipe(stop_pipe_) != 0) {
    std::fprintf(stderr, "axc-serve: cannot create stop pipe\n");
    return false;
  }
#endif
  replay_journal();
  worker_ = std::thread([this] { worker_loop(); });
  if (!config_.socket_path.empty()) {
    auto listener = support::net::unix_listener::listen_at(
        config_.socket_path);
    if (!listener) {
      std::fprintf(stderr, "axc-serve: cannot listen at %s\n",
                   config_.socket_path.c_str());
      request_stop();
      return false;
    }
    listener_ = *std::move(listener);
  }
  started_ = true;
  return true;
}

void result_server::request_stop() {
  stop_.store(true, std::memory_order_relaxed);
  jobs_cv_.notify_all();
#if AXC_HAS_NET
  if (stop_pipe_[1] >= 0) {
    const char byte = 'x';
    (void)!::write(stop_pipe_[1], &byte, 1);
  }
#endif
}

void result_server::reopen_store() {
  std::scoped_lock lock(store_mutex_);
  store_ = result_store::open(config_.store_dir);
}

serve_stats result_server::stats() const {
  std::scoped_lock lock(stats_mutex_);
  return stats_;
}

// ---- Request handling ----------------------------------------------------

std::string result_server::handle_request(std::string_view request_text) {
  auto request = parse_request(request_text);
  if (!request) {
    {
      std::scoped_lock lock(stats_mutex_);
      ++stats_.malformed;
    }
    return encode_reply(serve_reply{.status = "malformed"});
  }
  return encode_reply(process(*request));
}

serve_reply result_server::serve_front(std::uint64_t key,
                                       std::optional<double> budget) {
  const std::string key16 = result_store::format_key(key);
  std::optional<std::string> bytes;
  {
    std::scoped_lock lock(store_mutex_);
    if (store_) bytes = store_->get("front", key16);
  }
  if (!bytes) return serve_reply{.status = "unknown", .key = key16};
  serve_reply reply{.status = "hit", .key = key16};
  if (budget) {
    // Budget filtering re-serializes, so a budgeted reply is NOT the
    // stored bytes; unbudgeted hits are, which is the byte-identity the
    // tests compare against `axc_store get`.
    const auto points = parse_front(*bytes);
    if (!points) return serve_reply{.status = "error", .key = key16};
    std::vector<pareto_point> kept;
    for (const pareto_point& p : *points) {
      if (p.x <= *budget) kept.push_back(p);
    }
    reply.payload = serialize_front(kept);
  } else {
    reply.payload = *std::move(bytes);
  }
  std::scoped_lock lock(stats_mutex_);
  ++stats_.hits;
  return reply;
}

serve_reply result_server::serve_table(const serve_request& request) {
  const component_handle handle = request.spec.make_component();
  if (!handle) return serve_reply{.status = "error"};
  // Tables characterize the component alone — the plan (targets, runs)
  // cannot change a truth table — so the key is the bare fingerprint,
  // shared by every sweep of the same component config.
  const std::string key16 =
      result_store::format_key(handle.fingerprint());
  {
    std::scoped_lock lock(store_mutex_);
    if (store_) {
      if (auto bytes = store_->get("table", key16)) {
        serve_reply reply{.status = "hit", .key = key16,
                          .payload = *std::move(bytes)};
        std::scoped_lock stats_lock(stats_mutex_);
        ++stats_.hits;
        return reply;
      }
    }
  }
  const std::string payload = serialize_table(
      handle.width(), handle.characterize(request.spec.seed));
  std::scoped_lock lock(store_mutex_);
  if (!store_ || !store_->put("table", key16, payload)) {
    return serve_reply{.status = "error", .key = key16};
  }
  // Serve the store's bytes, not the local buffer: a table hit and the
  // miss that built it must be byte-identical.
  auto bytes = store_->get("table", key16);
  if (!bytes) return serve_reply{.status = "error", .key = key16};
  {
    std::scoped_lock stats_lock(stats_mutex_);
    ++stats_.tables_built;
    ++stats_.hits;
  }
  return serve_reply{.status = "hit", .key = key16,
                     .payload = *std::move(bytes)};
}

serve_reply result_server::enqueue_miss(const serve_request& request,
                                        std::uint64_t key) {
  const std::string key16 = result_store::format_key(key);
  // Another process (a coordinator publishing out-of-band) may have landed
  // this front since our index was loaded: reopen and recheck before
  // paying for a sweep.
  reopen_store();
  {
    serve_reply again = serve_front(key, request.budget);
    if (again.status == "hit") return again;
  }
  std::unique_lock lock(jobs_mutex_);
  for (const auto& item : jobs_) {
    if (item->key != key) continue;
    // Coalesce: someone else already owns this key's sweep.
    std::scoped_lock stats_lock(stats_mutex_);
    switch (item->state) {
      case job_state::queued:
        ++stats_.coalesced;
        return serve_reply{.status = "queued", .key = key16};
      case job_state::running:
        ++stats_.coalesced;
        return serve_reply{.status = "running", .key = key16};
      case job_state::failed:
        return serve_reply{.status = "failed", .key = key16};
      case job_state::done:
        // Done but not in the store: the sweep's publish failed.
        return serve_reply{.status = "failed", .key = key16};
    }
  }
  if (stop_.load(std::memory_order_relaxed)) {
    return serve_reply{.status = "draining", .key = key16};
  }
  if (config_.worker_binary.empty() || queue_.size() >= config_.queue_limit) {
    std::scoped_lock stats_lock(stats_mutex_);
    ++stats_.rejected;
    return serve_reply{.status = "miss-rejected", .key = key16};
  }
  // Durability order: spec file, then journal record, then the in-memory
  // queue.  A crash after the journal append leaves exactly the state
  // replay_journal() re-adopts.
  {
    std::ostringstream os;
    request.spec.write(os);
    if (!support::write_file_durable(job_spec_path(key), os.str())) {
      return serve_reply{.status = "error", .key = key16};
    }
  }
  if (!journal_append("enqueue " + key16)) {
    return serve_reply{.status = "error", .key = key16};
  }
  // The mid-enqueue kill window: the job is journaled and its spec is
  // durable, but no worker thread knows about it and no reply was sent.
  // _Exit models SIGKILL; the restarted server must re-adopt and run it.
  if (fault::fire(kFaultCrashMidEnqueue)) std::_Exit(kServerCrashExit);
  auto item = std::make_unique<job>();
  item->key = key;
  item->spec = request.spec;
  item->state = job_state::queued;
  jobs_.push_back(std::move(item));
  queue_.push_back(key);
  lock.unlock();
  jobs_cv_.notify_all();
  std::scoped_lock stats_lock(stats_mutex_);
  ++stats_.misses_enqueued;
  return serve_reply{.status = "miss-enqueued", .key = key16};
}

serve_reply result_server::process(const serve_request& request) {
  if (request.verb == "table") return serve_table(request);
  const std::uint64_t key = request.spec.store_key();
  if (key == 0) return serve_reply{.status = "error"};
  const std::string key16 = result_store::format_key(key);

  if (request.verb == "status") {
    {
      std::scoped_lock lock(store_mutex_);
      if (store_ && store_->contains("front", key16)) {
        return serve_reply{.status = "hit", .key = key16};
      }
    }
    std::scoped_lock lock(jobs_mutex_);
    for (const auto& item : jobs_) {
      if (item->key != key) continue;
      switch (item->state) {
        case job_state::queued:
          return serve_reply{.status = "queued", .key = key16};
        case job_state::running:
          return serve_reply{.status = "running", .key = key16};
        case job_state::failed:
          return serve_reply{.status = "failed", .key = key16};
        case job_state::done:
          return serve_reply{.status = "failed", .key = key16};
      }
    }
    return serve_reply{.status = "unknown", .key = key16};
  }

  serve_reply reply = serve_front(key, request.budget);
  if (reply.status != "hit") reply = enqueue_miss(request, key);
  if (request.verb == "get" || reply.status == "hit" ||
      reply.status == "miss-rejected" || reply.status == "failed" ||
      reply.status == "draining" || reply.status == "error") {
    return reply;
  }

  // wait: block until the coalesced job settles, the drain begins, or the
  // client's deadline passes.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(request.timeout_ms);
  {
    std::unique_lock lock(jobs_mutex_);
    const bool settled = jobs_cv_.wait_until(lock, deadline, [&] {
      if (stop_.load(std::memory_order_relaxed)) return true;
      for (const auto& item : jobs_) {
        if (item->key == key) {
          return item->state == job_state::done ||
                 item->state == job_state::failed;
        }
      }
      return true;  // job vanished: settle and re-probe the store
    });
    if (stop_.load(std::memory_order_relaxed)) {
      return serve_reply{.status = "draining", .key = key16};
    }
    if (!settled) return serve_reply{.status = "timeout", .key = key16};
  }
  serve_reply settled = serve_front(key, request.budget);
  if (settled.status == "hit") return settled;
  return serve_reply{.status = "failed", .key = key16};
}

// ---- Background sweeps ---------------------------------------------------

void result_server::run_job(job& item) {
  const std::string key16 = result_store::format_key(item.key);
  shard_runner_config cfg;
  cfg.shards = config_.shards;
  cfg.max_attempts = config_.max_attempts;
  cfg.work_dir = config_.work_dir + "/sweeps/" + key16;
  cfg.worker_binary = config_.worker_binary;
  cfg.store_dir = config_.store_dir;
  // The job queue dispatches through the node pool when a fleet is
  // configured; each sweep gets its own pool (health is cheap to relearn
  // per job, and a poisoned node cannot wedge the queue across jobs).
  cfg.nodes = config_.nodes;
  cfg.speculate_after = config_.speculate_after;
  cfg.should_stop = [this] { return stopping(); };
  const sweep_result result = run_sweep(item.spec, cfg);
  if (result.drained && !result.complete) {
    // Drain interrupted the sweep: no done/fail record, so the journal
    // still says `enqueue` and the next life re-adopts the job; the
    // sweep's own coordinator journal + shard checkpoints make the re-run
    // resume instead of restart.
    std::scoped_lock lock(jobs_mutex_);
    item.state = job_state::queued;
    return;
  }
  reopen_store();
  bool published = false;
  {
    std::scoped_lock lock(store_mutex_);
    published = result.complete && store_ &&
                store_->contains("front", key16);
  }
  (void)journal_append((published ? "done " : "fail ") + key16);
  {
    std::scoped_lock lock(jobs_mutex_);
    item.state = published ? job_state::done : job_state::failed;
  }
  {
    std::scoped_lock lock(stats_mutex_);
    if (published) {
      ++stats_.sweeps_completed;
    } else {
      ++stats_.sweeps_failed;
    }
  }
  jobs_cv_.notify_all();
}

void result_server::worker_loop() {
  while (true) {
    job* item = nullptr;
    {
      std::unique_lock lock(jobs_mutex_);
      jobs_cv_.wait(lock, [&] {
        return stop_.load(std::memory_order_relaxed) || !queue_.empty();
      });
      if (stop_.load(std::memory_order_relaxed)) {
        // Drain: leave queued jobs journaled for the next life.
        return;
      }
      const std::uint64_t key = queue_.front();
      queue_.pop_front();
      for (const auto& candidate : jobs_) {
        if (candidate->key == key) {
          item = candidate.get();
          break;
        }
      }
      if (item) item->state = job_state::running;
    }
    if (item) {
      jobs_cv_.notify_all();  // wake `status`/`wait` observers
      run_job(*item);
    }
  }
}

// ---- Socket front door ---------------------------------------------------

void result_server::handle_connection(connection& conn) {
  while (!stopping()) {
    support::net::frame_error error = support::net::frame_error::none;
    auto payload = conn.stream.receive(config_.max_frame_bytes, &error);
    if (!payload) {
      // Damaged framing poisons only this connection — the listener keeps
      // accepting.  (io covers receive timeouts; closed is a clean hangup;
      // neither is client-sent damage.)
      if (error != support::net::frame_error::closed &&
          error != support::net::frame_error::io) {
        std::scoped_lock lock(stats_mutex_);
        ++stats_.malformed;
      }
      break;
    }
    const std::string reply = handle_request(*payload);
    // The before-reply kill window: the request is fully processed (an
    // enqueue is journaled, a hit was read) but the client never hears.
    // The restarted server must answer an identical retry consistently.
    if (fault::fire(kFaultCrashBeforeReply)) std::_Exit(kServerCrashExit);
    if (!conn.stream.send(reply)) break;
  }
  conn.stream.close();
  conn.done.store(true, std::memory_order_release);
}

void result_server::serve() {
#if AXC_HAS_NET
  if (!listener_.valid()) return;
  while (!stopping()) {
    ::pollfd fds[2] = {{listener_.fd(), POLLIN, 0},
                       {stop_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    // Reap finished connection handlers between accepts so a long-lived
    // server doesn't accumulate joinable threads.
    std::erase_if(connections_, [](const std::unique_ptr<connection>& c) {
      if (!c->done.load(std::memory_order_acquire)) return false;
      if (c->thread.joinable()) c->thread.join();
      return true;
    });
    if (fds[1].revents & POLLIN) {
      request_stop();
      break;
    }
    if (!(fds[0].revents & POLLIN)) continue;
    auto stream = listener_.accept();
    if (!stream) continue;
    auto conn = std::make_unique<connection>();
    conn->stream = *std::move(stream);
    if (config_.receive_timeout_ms > 0) {
      (void)conn->stream.set_receive_timeout_ms(config_.receive_timeout_ms);
    }
    connection* raw = conn.get();
    conn->thread = std::thread([this, raw] { handle_connection(*raw); });
    connections_.push_back(std::move(conn));
  }
  // Drain: stop accepting, finish/abort handlers, stop the sweep thread.
  request_stop();
  listener_.close();
  for (auto& conn : connections_) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  connections_.clear();
  if (worker_.joinable()) worker_.join();
#endif
}

}  // namespace axc::core
