// Approximation-as-a-service: the serving half of the sweep runtime.
//
// PR 6 made sweeps distributable and crash-proof; PR 7 made their results
// durable and content-addressed.  result_server closes the loop the paper
// promises — "spec + width + distribution (+ error budget) -> ranked
// Pareto front" — as a long-lived daemon (tools/axc_serve) answering
// requests over a Unix-domain socket (support/net.h CRC-framed messages):
//
//   * the HIT path is a result_store lookup: `front` objects keyed by
//     sweep_spec::store_key(), served as the exact stored bytes (so a
//     served front is byte-identical to `axc_store get front <key>`) in
//     microseconds.  An optional error budget filters the front to points
//     with wmed <= budget before replying;
//   * the MISS path enqueues a shard_runner::run_sweep on a background
//     job queue.  Jobs are coalesced by store_key — N concurrent
//     identical requests cost ONE sweep — the queue is bounded
//     (explicit `miss-rejected` backpressure, never silent tail growth),
//     and `status` / `wait` verbs poll or block on the in-flight job;
//   * `table` requests serve compiled characterization tables (store
//     kind "table", keyed by the component fingerprint alone — the plan
//     doesn't affect a table), built on demand from the spec's seed
//     netlist when not yet stored;
//   * the server inherits the repo's killability contract.  Every
//     accepted miss is journaled (`<work_dir>/server.journal`, CRC'd
//     lines: header `serve v1`, then `enqueue/done/fail <key16>`) with
//     the spec durably written to `<work_dir>/jobs/<key16>.spec` FIRST —
//     so a server killed at any instant (fault points
//     `server-crash-mid-enqueue`, `server-crash-before-reply`, plus the
//     coordinator/store points firing inside the in-server run_sweep)
//     re-adopts unfinished jobs on restart and converges on the same
//     published front;
//   * SIGTERM/SIGINT drain: request_stop() (async-signal-safe via the
//     self-pipe at stop_write_fd()) stops the accept loop, tells the
//     in-flight sweep's supervision loop to kill its workers
//     (shard_runner_config::should_stop), wakes blocked `wait`ers with
//     `draining`, joins every connection thread, and leaves the journal
//     in a state the next life resumes from.
//
// Protocol grammar and failure semantics are documented in
// src/core/README.md ("Serving"); tests/test_result_server.cpp pins the
// five acceptance properties (hit byte-identity, miss->sweep->hit
// bit-exactness vs run_sweep_inprocess, coalescing, kill-restart
// convergence, malformed-frame resilience).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/result_store.h"
#include "core/shard_runner.h"
#include "support/net.h"

namespace axc::core {

// ---- Request/reply text (the payload inside net.h frames) ---------------
//
//   axc-serve v1
//   verb <get|status|wait|table>
//   [budget <%.17g>]           filter: front points with wmed <= budget
//   [timeout-ms <N>]           wait only; how long to block
//   spec
//   <sweep_spec::write text, "axc-sweep-spec v1" ... "end">
//
//   axc-serve-reply v1
//   status <hit|miss-enqueued|miss-rejected|queued|running|failed|
//           unknown|malformed|draining|timeout|error>
//   key <16hex>                store key the request resolved to
//   payload <n>\n<n raw bytes> (hit only; last — bytes are binary-safe)
//   end                        (replies without a payload)

struct serve_request {
  std::string verb{"get"};
  std::optional<double> budget{};
  std::int64_t timeout_ms{30000};  ///< wait verb only
  sweep_spec spec{};
};

struct serve_reply {
  std::string status{"error"};
  std::string key{};
  std::optional<std::string> payload{};
};

[[nodiscard]] std::string encode_request(const serve_request& request);
[[nodiscard]] std::optional<serve_request> parse_request(
    std::string_view text);
[[nodiscard]] std::string encode_reply(const serve_reply& reply);
[[nodiscard]] std::optional<serve_reply> parse_reply(std::string_view text);

struct server_config {
  /// result_store root the server answers from and publishes into.
  std::string store_dir{};
  /// Unix-domain socket path; empty = no socket (in-process
  /// handle_request only — how the protocol unit tests run).
  std::string socket_path{};
  /// Journal + job specs + per-sweep scratch live here.
  std::string work_dir{};
  /// tools/axc_worker path; empty = no sweep capability (every miss is
  /// rejected).
  std::string worker_binary{};
  /// Pending-jobs bound; an enqueue past it is rejected explicitly.
  std::size_t queue_limit{8};
  /// Forwarded to the per-job shard_runner_config.
  std::size_t shards{2};
  std::size_t max_attempts{3};
  /// Multi-node dispatch for miss-path sweeps: nodes parsed from an
  /// axc-nodes v1 file (axc_serve --nodes).  Empty = local workers.
  std::vector<node_config> nodes{};
  std::chrono::milliseconds speculate_after{0};
  /// Largest request frame accepted (a bogus length rejects before any
  /// allocation).
  std::size_t max_frame_bytes{1u << 20};
  /// Per-connection receive timeout: a connected-but-silent client
  /// releases its handler thread after this long.  0 = wait forever.
  long receive_timeout_ms{5000};
};

struct serve_stats {
  std::uint64_t hits{0};
  std::uint64_t misses_enqueued{0};
  std::uint64_t coalesced{0};   ///< requests folded into an in-flight job
  std::uint64_t rejected{0};    ///< backpressure (queue_limit) rejections
  std::uint64_t malformed{0};   ///< bad frames or unparseable requests
  std::uint64_t sweeps_completed{0};
  std::uint64_t sweeps_failed{0};
  std::uint64_t tables_built{0};
  std::uint64_t jobs_adopted{0};  ///< journal re-adoptions at start()
};

class result_server {
 public:
  explicit result_server(server_config config);
  result_server(const result_server&) = delete;
  result_server& operator=(const result_server&) = delete;
  ~result_server();

  /// Opens the store, replays the server journal (re-enqueueing every
  /// `enqueue` without a matching `done`/`fail` whose front isn't already
  /// stored), starts the sweep worker thread, and — when socket_path is
  /// set — binds the listener.  False when the store or socket can't be
  /// set up.
  [[nodiscard]] bool start();

  /// Accept loop; blocks until request_stop().  Each connection gets a
  /// handler thread reading frames until the peer closes, errors, or the
  /// drain begins; damaged frames drop that connection only.  On return
  /// every handler thread is joined and the in-flight sweep (if any) has
  /// been drained.
  void serve();

  /// Begins the drain (safe from any thread).  The async-signal-safe
  /// spelling is `write(stop_write_fd(), "x", 1)` from a signal handler.
  void request_stop();
  [[nodiscard]] int stop_write_fd() const { return stop_pipe_[1]; }
  [[nodiscard]] bool stopping() const {
    return stop_.load(std::memory_order_relaxed);
  }

  /// One request through the full serving logic, no socket involved —
  /// the surface the unit tests (and bm_server_encode) drive directly.
  /// Input is the request *payload* text; returns the reply text.
  [[nodiscard]] std::string handle_request(std::string_view request_text);

  [[nodiscard]] serve_stats stats() const;
  [[nodiscard]] const server_config& config() const { return config_; }

 private:
  enum class job_state : std::uint8_t { queued, running, done, failed };

  struct job {
    std::uint64_t key{0};
    sweep_spec spec{};
    job_state state{job_state::queued};
  };

  struct connection;

  [[nodiscard]] serve_reply process(const serve_request& request);
  [[nodiscard]] serve_reply serve_front(std::uint64_t key,
                                        std::optional<double> budget);
  [[nodiscard]] serve_reply serve_table(const serve_request& request);
  [[nodiscard]] serve_reply enqueue_miss(const serve_request& request,
                                         std::uint64_t key);
  void worker_loop();
  void run_job(job& item);
  void handle_connection(connection& conn);
  [[nodiscard]] bool journal_append(std::string_view body);
  void replay_journal();
  void reopen_store();
  [[nodiscard]] std::string job_spec_path(std::uint64_t key) const;

  server_config config_;
  std::optional<result_store> store_;
  mutable std::mutex store_mutex_;

  // Job queue + coalescing map, all under jobs_mutex_; jobs_cv_ wakes the
  // worker thread and any `wait` verbs blocked on a key.
  mutable std::mutex jobs_mutex_;
  std::condition_variable jobs_cv_;
  std::deque<std::uint64_t> queue_;
  /// Every key ever enqueued this life; unique_ptr keeps each job's
  /// address stable while the worker thread runs it outside the lock.
  std::vector<std::unique_ptr<job>> jobs_;
  std::thread worker_;

  support::net::unix_listener listener_;
  std::vector<std::unique_ptr<connection>> connections_;

  std::atomic<bool> stop_{false};
  int stop_pipe_[2]{-1, -1};

  mutable std::mutex stats_mutex_;
  serve_stats stats_;

  std::mutex journal_mutex_;
  bool started_{false};
};

}  // namespace axc::core
