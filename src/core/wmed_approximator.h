// The paper's automated approximation method (Sec. III).
//
// Given an exact seed multiplier, a data distribution D and a list of target
// error levels E_i, the approximator runs one CGP search per (target, run)
// pair, each minimizing circuit area under the constraint WMED_D <= E_i
// (Eq. 1), and returns the evolved designs.  Assembling a Pareto front from
// several targets reproduces the paper's design-space exploration
// methodology ("the design process is repeated for several target
// approximation errors Ei in order to construct the Pareto front").
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "cgp/evolver.h"
#include "cgp/genotype.h"
#include "circuit/netlist.h"
#include "dist/pmf.h"
#include "metrics/mult_spec.h"
#include "tech/cell_library.h"

namespace axc::core {

struct approximation_config {
  metrics::mult_spec spec{};
  /// Distribution of operand A (must have 2^width entries).
  dist::pmf distribution{dist::pmf::uniform(256)};
  /// CGP budget per run (generations of the (1+lambda) loop).
  std::size_t iterations{20000};
  /// Independent repetitions per target (paper: 10 resp. 25).
  std::size_t runs_per_target{1};
  /// Grid slack: columns = seed gate count + extra_columns (gives the
  /// paper's "c = 320 ... 490 depending on the initial multiplier").
  std::size_t extra_columns{64};
  unsigned max_mutations{5};  ///< h
  std::size_t lambda{4};
  /// Worker threads for evaluating the lambda mutants of each generation
  /// (1 = serial).  Results are bit-identical across thread counts: each
  /// offspring slot owns its own evaluator and the reduction is ordered.
  std::size_t threads{1};
  /// Bias neutral drift toward lower WMED at equal area (see
  /// cgp::evolver::options::error_tiebreak).  On by default: at practical
  /// search budgets it steers the error budget into many small deviations,
  /// which application-level quality rewards.
  bool error_tiebreak{true};
  std::vector<circuit::gate_fn> function_set{
      circuit::default_function_set().begin(),
      circuit::default_function_set().end()};
  const tech::cell_library* library{&tech::cell_library::nangate45_like()};
  std::uint64_t rng_seed{1};
};

/// One evolved approximate circuit.
struct evolved_design {
  circuit::netlist netlist;  ///< compacted (inactive gates removed)
  double wmed{0.0};          ///< measured WMED_D, fraction in [0,1]
  double area_um2{0.0};
  double target{0.0};        ///< the E_i this run was constrained to
  std::size_t run_index{0};
  std::size_t evaluations{0};
  std::size_t improvements{0};
};

class wmed_approximator {
 public:
  explicit wmed_approximator(approximation_config config);

  /// One CGP run at one target.  `run_index` only decorrelates the RNG.
  [[nodiscard]] evolved_design approximate(const circuit::netlist& seed,
                                           double target,
                                           std::size_t run_index = 0) const;

  /// Full sweep: every target x runs_per_target.  `on_design` (optional)
  /// observes designs as they complete.
  [[nodiscard]] std::vector<evolved_design> sweep(
      const circuit::netlist& seed, std::span<const double> targets,
      const std::function<void(const evolved_design&)>& on_design = {}) const;

  [[nodiscard]] const approximation_config& config() const { return config_; }

 private:
  approximation_config config_;
};

/// The 14 log-spaced WMED targets (as fractions) used for case study 1,
/// spanning the paper's 0.0001 % .. 10 % axis.
std::vector<double> default_wmed_targets();

}  // namespace axc::core
