// The paper's automated approximation method (Sec. III), generalized over
// component classes.
//
// Given an exact seed circuit, a data distribution D and a list of target
// error levels E_i, the approximator runs one CGP search per (target, run)
// pair, each minimizing circuit area under the constraint WMED_D <= E_i
// (Eq. 1), and returns the evolved designs.  Assembling a Pareto front from
// several targets reproduces the paper's design-space exploration
// methodology ("the design process is repeated for several target
// approximation errors Ei in order to construct the Pareto front").
//
// Orchestration note: approximate() and sweep() are thin wrappers over the
// session layer (core::run_search_job / core::search_session) — one job
// per (target, run) pair, all jobs sharing this approximator's immutable
// evaluator cache.  search_session.h adds job parallelism, progress
// events, cancellation and checkpoint/resume on the same primitives.
//
// The search is parameterized by a metrics::component_spec, so multipliers
// (mult_spec) and adders (adder_spec) share one implementation — both run
// the bit-plane WMED sweep; no per-candidate 2^(2w) tables anywhere in the
// inner loop.  For fast-path widths (>= 6) candidates are evaluated through
// the genotype-native incremental pipeline (cgp::cone_program +
// evolver::run_incremental): mutants never materialize netlists, the
// parent's compiled schedule is patched per mutant, and phenotype-identical
// mutants reuse the parent's score.  The incremental path is bit-identical
// to full per-mutant recompilation (`incremental` toggles it for parity
// testing).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "cgp/evolver.h"
#include "cgp/genotype.h"
#include "circuit/netlist.h"
#include "dist/pmf.h"
#include "metrics/adder_metrics.h"
#include "metrics/component_spec.h"
#include "metrics/mult_spec.h"
#include "metrics/wmed_evaluator.h"
#include "support/simd.h"
#include "tech/cell_library.h"

namespace axc::core {

template <metrics::component_spec Spec>
struct basic_approximation_config {
  Spec spec{};
  /// Distribution of operand A.  Leave empty (the default) to get the
  /// uniform distribution over the spec's 2^width operand patterns; a
  /// non-empty pmf must have exactly 2^width entries (checked with a clear
  /// error), so non-8-bit widths can never be silently mis-weighted.
  dist::pmf distribution{};
  /// CGP budget per run (generations of the (1+lambda) loop).
  std::size_t iterations{20000};
  /// Independent repetitions per target (paper: 10 resp. 25).
  std::size_t runs_per_target{1};
  /// Grid slack: columns = seed gate count + extra_columns (gives the
  /// paper's "c = 320 ... 490 depending on the initial multiplier").
  std::size_t extra_columns{64};
  unsigned max_mutations{5};  ///< h
  std::size_t lambda{4};
  /// Worker threads for evaluating the lambda mutants of each generation
  /// (1 = serial).  Results are bit-identical across thread counts: each
  /// offspring slot owns its own evaluator and the reduction is ordered.
  std::size_t threads{1};
  /// Bias neutral drift toward lower WMED at equal area (see
  /// cgp::evolver::options::error_tiebreak).  On by default: at practical
  /// search budgets it steers the error budget into many small deviations,
  /// which application-level quality rewards.
  bool error_tiebreak{true};
  /// Evaluate mutants through the genotype-native incremental pipeline
  /// (fast-path widths only; smaller widths always use the netlist path).
  /// Bit-identical either way — off is only useful for parity tests.
  bool incremental{true};
  /// Scan kernel backend for the WMED sweep (metrics/scan_kernels.h).
  /// `automatic` resolves to the strongest compiled-in backend the CPU
  /// supports (AXC_SIMD environment override honoured); every level is
  /// bit-identical, so like `threads`/`incremental` this knob never changes
  /// results and stays out of the checkpoint fingerprint.
  simd::level simd{simd::level::automatic};
  /// Score each generation's lambda mutants in one multi-candidate batch
  /// sweep (cone_program::stage_child + evaluate_batch) instead of one
  /// patched sweep per mutant.  Pure execution knob like `simd`/`threads`:
  /// bit-identical results either way (parity-tested in
  /// tests/test_batch_eval.cpp), so it stays out of the checkpoint
  /// fingerprint.  Off is only useful for parity tests and benchmarks.
  bool batch_candidates{true};
  std::vector<circuit::gate_fn> function_set{
      circuit::default_function_set().begin(),
      circuit::default_function_set().end()};
  const tech::cell_library* library{&tech::cell_library::nangate45_like()};
  std::uint64_t rng_seed{1};
};

using approximation_config = basic_approximation_config<metrics::mult_spec>;
using adder_approximation_config =
    basic_approximation_config<metrics::adder_spec>;

/// Finalizes a config in place: an unset distribution becomes uniform over
/// the spec's operand count, a set one must match it (aborts with a clear
/// error otherwise), and the library/function-set invariants are checked.
/// Every entry point that accepts a config (approximator, component_handle)
/// funnels through this.
template <metrics::component_spec Spec>
void finalize_config(basic_approximation_config<Spec>& config);

extern template void finalize_config<metrics::mult_spec>(
    basic_approximation_config<metrics::mult_spec>&);
extern template void finalize_config<metrics::adder_spec>(
    basic_approximation_config<metrics::adder_spec>&);

/// One evolved approximate circuit.
struct evolved_design {
  circuit::netlist netlist;  ///< compacted (inactive gates removed)
  double wmed{0.0};          ///< measured WMED_D, fraction in [0,1]
  double area_um2{0.0};
  double target{0.0};        ///< the E_i this run was constrained to
  std::size_t run_index{0};
  std::size_t evaluations{0};
  std::size_t improvements{0};
};

/// Observation and cancellation hooks threaded through one search job (one
/// CGP run).  All optional; semantics follow cgp::evolver::options.
struct search_hooks {
  cgp::evolver::progress_fn on_improvement{};
  cgp::evolver::generation_fn on_generation{};
  cgp::evolver::stop_fn should_stop{};
};

/// The per-(spec, distribution) immutable evaluator tables a sweep shares
/// across runs (exact-result table / bit planes / block order).
template <metrics::component_spec Spec>
using wmed_shared_state =
    typename metrics::basic_wmed_evaluator<Spec>::shared_state;
template <metrics::component_spec Spec>
using wmed_shared_cache = std::shared_ptr<const wmed_shared_state<Spec>>;

/// One CGP run at one (target, run_index) against a pre-built shared cache
/// — the unit of work a search_session schedules.  The RNG stream is a pure
/// function of (config.rng_seed, target, run_index), so jobs are
/// order-independent and job-parallel sweeps are bit-identical to serial
/// ones.  Returns nullopt iff hooks.should_stop ended the run early (a
/// cancelled job must be re-run from scratch; see evolver::options).
/// `config` must already be finalized (finalize_config).
template <metrics::component_spec Spec>
[[nodiscard]] std::optional<evolved_design> run_search_job(
    const basic_approximation_config<Spec>& config,
    const wmed_shared_cache<Spec>& cache, const circuit::netlist& seed,
    double target, std::size_t run_index, const search_hooks& hooks = {});

extern template std::optional<evolved_design>
run_search_job<metrics::mult_spec>(
    const basic_approximation_config<metrics::mult_spec>&,
    const wmed_shared_cache<metrics::mult_spec>&, const circuit::netlist&,
    double, std::size_t, const search_hooks&);
extern template std::optional<evolved_design>
run_search_job<metrics::adder_spec>(
    const basic_approximation_config<metrics::adder_spec>&,
    const wmed_shared_cache<metrics::adder_spec>&, const circuit::netlist&,
    double, std::size_t, const search_hooks&);

template <metrics::component_spec Spec>
class basic_wmed_approximator {
 public:
  explicit basic_wmed_approximator(basic_approximation_config<Spec> config);

  /// One CGP run at one target.  `run_index` only decorrelates the RNG.
  [[nodiscard]] evolved_design approximate(const circuit::netlist& seed,
                                           double target,
                                           std::size_t run_index = 0) const;

  /// Full sweep: every target x runs_per_target.  `on_design` (optional)
  /// observes designs as they complete.  Thin wrapper over a single-plan
  /// core::search_session (serial job order, shared evaluator cache); use a
  /// session directly for job parallelism, progress events, cancellation
  /// and checkpointing.
  [[nodiscard]] std::vector<evolved_design> sweep(
      const circuit::netlist& seed, std::span<const double> targets,
      const std::function<void(const evolved_design&)>& on_design = {}) const;

  [[nodiscard]] const basic_approximation_config<Spec>& config() const {
    return config_;
  }

  /// The per-(spec, distribution) evaluator tables, built once at
  /// construction and reused by every approximate()/sweep() call.
  [[nodiscard]] const wmed_shared_cache<Spec>& shared_cache() const {
    return cache_;
  }

 private:
  basic_approximation_config<Spec> config_;
  wmed_shared_cache<Spec> cache_;
};

extern template class basic_wmed_approximator<metrics::mult_spec>;
extern template class basic_wmed_approximator<metrics::adder_spec>;

using wmed_approximator = basic_wmed_approximator<metrics::mult_spec>;
using adder_wmed_approximator = basic_wmed_approximator<metrics::adder_spec>;

/// The incremental (genotype-native) evaluator the search uses when
/// `incremental` is on: cone_program compile/patch + bit-plane sweep with
/// early abort at `target` + netlist-free area estimation.  Exposed for
/// benches and parity tests.  `simd` picks the scan kernel backend
/// (bit-identical at every level; see approximation_config::simd);
/// `batch` toggles the delta/batch path (approximation_config::
/// batch_candidates — also bit-identical).
template <metrics::component_spec Spec>
std::unique_ptr<cgp::incremental_evaluator> make_incremental_wmed_evaluator(
    const Spec& spec, const dist::pmf& d, const tech::cell_library& lib,
    double target, simd::level simd = simd::level::automatic,
    bool batch = true);

/// Same, attaching to a pre-built shared cache instead of rebuilding the
/// exact planes — what run_search_job hands each lambda slot.
template <metrics::component_spec Spec>
std::unique_ptr<cgp::incremental_evaluator> make_incremental_wmed_evaluator(
    wmed_shared_cache<Spec> cache, const tech::cell_library& lib,
    double target, simd::level simd = simd::level::automatic,
    bool batch = true);

extern template std::unique_ptr<cgp::incremental_evaluator>
make_incremental_wmed_evaluator<metrics::mult_spec>(
    wmed_shared_cache<metrics::mult_spec>, const tech::cell_library&, double,
    simd::level, bool);
extern template std::unique_ptr<cgp::incremental_evaluator>
make_incremental_wmed_evaluator<metrics::adder_spec>(
    wmed_shared_cache<metrics::adder_spec>, const tech::cell_library&, double,
    simd::level, bool);

extern template std::unique_ptr<cgp::incremental_evaluator>
make_incremental_wmed_evaluator<metrics::mult_spec>(const metrics::mult_spec&,
                                                    const dist::pmf&,
                                                    const tech::cell_library&,
                                                    double, simd::level, bool);
extern template std::unique_ptr<cgp::incremental_evaluator>
make_incremental_wmed_evaluator<metrics::adder_spec>(
    const metrics::adder_spec&, const dist::pmf&, const tech::cell_library&,
    double, simd::level, bool);

/// The 14 log-spaced WMED targets (as fractions) used for case study 1,
/// spanning the paper's 0.0001 % .. 10 % axis.
std::vector<double> default_wmed_targets();

}  // namespace axc::core
