// The paper's automated approximation method (Sec. III), generalized over
// component classes.
//
// Given an exact seed circuit, a data distribution D and a list of target
// error levels E_i, the approximator runs one CGP search per (target, run)
// pair, each minimizing circuit area under the constraint WMED_D <= E_i
// (Eq. 1), and returns the evolved designs.  Assembling a Pareto front from
// several targets reproduces the paper's design-space exploration
// methodology ("the design process is repeated for several target
// approximation errors Ei in order to construct the Pareto front").
//
// The search is parameterized by a metrics::component_spec, so multipliers
// (mult_spec) and adders (adder_spec) share one implementation — both run
// the bit-plane WMED sweep; no per-candidate 2^(2w) tables anywhere in the
// inner loop.  For fast-path widths (>= 6) candidates are evaluated through
// the genotype-native incremental pipeline (cgp::cone_program +
// evolver::run_incremental): mutants never materialize netlists, the
// parent's compiled schedule is patched per mutant, and phenotype-identical
// mutants reuse the parent's score.  The incremental path is bit-identical
// to full per-mutant recompilation (`incremental` toggles it for parity
// testing).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "cgp/evolver.h"
#include "cgp/genotype.h"
#include "circuit/netlist.h"
#include "dist/pmf.h"
#include "metrics/adder_metrics.h"
#include "metrics/component_spec.h"
#include "metrics/mult_spec.h"
#include "tech/cell_library.h"

namespace axc::core {

template <metrics::component_spec Spec>
struct basic_approximation_config {
  Spec spec{};
  /// Distribution of operand A.  Leave empty (the default) to get the
  /// uniform distribution over the spec's 2^width operand patterns; a
  /// non-empty pmf must have exactly 2^width entries (checked with a clear
  /// error), so non-8-bit widths can never be silently mis-weighted.
  dist::pmf distribution{};
  /// CGP budget per run (generations of the (1+lambda) loop).
  std::size_t iterations{20000};
  /// Independent repetitions per target (paper: 10 resp. 25).
  std::size_t runs_per_target{1};
  /// Grid slack: columns = seed gate count + extra_columns (gives the
  /// paper's "c = 320 ... 490 depending on the initial multiplier").
  std::size_t extra_columns{64};
  unsigned max_mutations{5};  ///< h
  std::size_t lambda{4};
  /// Worker threads for evaluating the lambda mutants of each generation
  /// (1 = serial).  Results are bit-identical across thread counts: each
  /// offspring slot owns its own evaluator and the reduction is ordered.
  std::size_t threads{1};
  /// Bias neutral drift toward lower WMED at equal area (see
  /// cgp::evolver::options::error_tiebreak).  On by default: at practical
  /// search budgets it steers the error budget into many small deviations,
  /// which application-level quality rewards.
  bool error_tiebreak{true};
  /// Evaluate mutants through the genotype-native incremental pipeline
  /// (fast-path widths only; smaller widths always use the netlist path).
  /// Bit-identical either way — off is only useful for parity tests.
  bool incremental{true};
  std::vector<circuit::gate_fn> function_set{
      circuit::default_function_set().begin(),
      circuit::default_function_set().end()};
  const tech::cell_library* library{&tech::cell_library::nangate45_like()};
  std::uint64_t rng_seed{1};
};

using approximation_config = basic_approximation_config<metrics::mult_spec>;
using adder_approximation_config =
    basic_approximation_config<metrics::adder_spec>;

/// One evolved approximate circuit.
struct evolved_design {
  circuit::netlist netlist;  ///< compacted (inactive gates removed)
  double wmed{0.0};          ///< measured WMED_D, fraction in [0,1]
  double area_um2{0.0};
  double target{0.0};        ///< the E_i this run was constrained to
  std::size_t run_index{0};
  std::size_t evaluations{0};
  std::size_t improvements{0};
};

template <metrics::component_spec Spec>
class basic_wmed_approximator {
 public:
  explicit basic_wmed_approximator(basic_approximation_config<Spec> config);

  /// One CGP run at one target.  `run_index` only decorrelates the RNG.
  [[nodiscard]] evolved_design approximate(const circuit::netlist& seed,
                                           double target,
                                           std::size_t run_index = 0) const;

  /// Full sweep: every target x runs_per_target.  `on_design` (optional)
  /// observes designs as they complete.
  [[nodiscard]] std::vector<evolved_design> sweep(
      const circuit::netlist& seed, std::span<const double> targets,
      const std::function<void(const evolved_design&)>& on_design = {}) const;

  [[nodiscard]] const basic_approximation_config<Spec>& config() const {
    return config_;
  }

 private:
  basic_approximation_config<Spec> config_;
};

extern template class basic_wmed_approximator<metrics::mult_spec>;
extern template class basic_wmed_approximator<metrics::adder_spec>;

using wmed_approximator = basic_wmed_approximator<metrics::mult_spec>;
using adder_wmed_approximator = basic_wmed_approximator<metrics::adder_spec>;

/// The incremental (genotype-native) evaluator the search uses when
/// `incremental` is on: cone_program compile/patch + bit-plane sweep with
/// early abort at `target` + netlist-free area estimation.  Exposed for
/// benches and parity tests.
template <metrics::component_spec Spec>
std::unique_ptr<cgp::incremental_evaluator> make_incremental_wmed_evaluator(
    const Spec& spec, const dist::pmf& d, const tech::cell_library& lib,
    double target);

extern template std::unique_ptr<cgp::incremental_evaluator>
make_incremental_wmed_evaluator<metrics::mult_spec>(const metrics::mult_spec&,
                                                    const dist::pmf&,
                                                    const tech::cell_library&,
                                                    double);
extern template std::unique_ptr<cgp::incremental_evaluator>
make_incremental_wmed_evaluator<metrics::adder_spec>(
    const metrics::adder_spec&, const dist::pmf&, const tech::cell_library&,
    double);

/// The 14 log-spaced WMED targets (as fractions) used for case study 1,
/// spanning the paper's 0.0001 % .. 10 % axis.
std::vector<double> default_wmed_targets();

}  // namespace axc::core
