// End-to-end application-tailored design flow (the user-facing API).
//
// This ties the whole method together the way the paper's case studies use
// it:  profile a signal in the application -> build the empirical PMF ->
// evolve approximate multipliers for a set of WMED targets -> characterize
// each design (power/delay/PDP under the application's operand statistics)
// -> hand back LUTs ready to drop into the application model.
//
// The sweep underneath runs through core::search_session (see
// search_session.h and src/core/README.md): job-graph expansion of
// (targets x runs), shared evaluator caches, progress events, cooperative
// cancellation and checkpoint/resume.  Use a session directly when you
// need any of those; the helpers here stay the shortest path from a
// distribution to characterized LUTs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/wmed_approximator.h"
#include "dist/pmf.h"
#include "metrics/compiled_table.h"
#include "tech/analysis.h"

namespace axc::core {

/// Electrical characterization of a design under a given operand workload.
struct design_power {
  double area_um2{0.0};
  double delay_ps{0.0};
  double power_uw{0.0};
  double pdp_fj{0.0};
};

/// Characterizes a multiplier netlist under operands A ~ d, B ~ uniform.
design_power characterize_multiplier(const circuit::netlist& multiplier,
                                     const metrics::mult_spec& spec,
                                     const dist::pmf& d,
                                     const tech::cell_library& lib,
                                     std::size_t workload_samples = 4096,
                                     std::uint64_t workload_seed = 7);

/// Characterizes the full MAC unit (multiplier + acc_width-bit adder), the
/// granularity at which Table I / Fig. 6 report PDP, power and area.
design_power characterize_mac(const circuit::netlist& multiplier,
                              const metrics::mult_spec& spec,
                              const dist::pmf& d, unsigned acc_width,
                              const tech::cell_library& lib,
                              std::size_t workload_samples = 4096,
                              std::uint64_t workload_seed = 7);

/// One deliverable of the flow: the evolved design plus its LUT and
/// electrical characterization.
struct tailored_multiplier {
  evolved_design design;
  metrics::compiled_mult_table lut;
  design_power multiplier_power;
};

/// Full flow from raw int8 signal samples (e.g. trained NN weights).
/// `targets` are WMED fractions; one design (best area over
/// config.runs_per_target runs) is returned per target.
std::vector<tailored_multiplier> design_for_samples(
    std::span<const std::int8_t> samples, approximation_config config,
    std::span<const double> targets, const circuit::netlist& seed);

/// Same flow starting from an explicit distribution.
std::vector<tailored_multiplier> design_for_distribution(
    const dist::pmf& d, approximation_config config,
    std::span<const double> targets, const circuit::netlist& seed);

}  // namespace axc::core
