// Two-objective Pareto utilities (error vs. cost), used to assemble the
// paper's trade-off fronts (Fig. 3/5/7) from sets of evolved designs.
// Both objectives are minimized.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace axc::core {

struct pareto_point {
  double x{0.0};  ///< first objective (e.g. WMED)
  double y{0.0};  ///< second objective (e.g. power, area, PDP)
  std::size_t index{0};  ///< caller's payload index

  friend bool operator==(const pareto_point&, const pareto_point&) = default;
};

/// True when a is at least as good in both objectives and better in one.
[[nodiscard]] bool dominates(const pareto_point& a, const pareto_point& b);

/// Non-dominated subset, sorted by ascending x.  Duplicate points are kept
/// once.
[[nodiscard]] std::vector<pareto_point> pareto_front(
    std::span<const pareto_point> points);

/// Incrementally maintained non-dominated set: the live archive of a
/// search_session, updated as designs stream in instead of re-running
/// pareto_front() over the full history.  After any insertion sequence the
/// archived coordinates equal pareto_front() of all inserted points, in any
/// insertion order; on exact (x, y) ties the lowest index wins, so the
/// archive is deterministic even when jobs finish in scheduler order.
class pareto_archive {
 public:
  /// Returns true when p now sits in the archive (it was non-dominated, or
  /// replaced an equal point with a higher index); dominated points are
  /// rejected and dominated incumbents pruned.
  bool insert(const pareto_point& p);

  /// Set union with another archive: inserts every point of `other` and
  /// returns how many survived as non-dominated.  Deterministic and
  /// order-independent — a.merge(b) and b.merge(a) end on the same
  /// coordinate set (ties keep the lowest index), so cross-session front
  /// merging (split a sweep's checkpoints across machines, union the
  /// archives) needs no canonical merge order.
  std::size_t merge(const pareto_archive& other);

  /// Ascending x, strictly descending y (the non-dominated invariant).
  [[nodiscard]] const std::vector<pareto_point>& points() const {
    return points_;
  }
  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] bool empty() const { return points_.empty(); }
  void clear() { points_.clear(); }

 private:
  std::vector<pareto_point> points_;
};

}  // namespace axc::core
