// Two-objective Pareto utilities (error vs. cost), used to assemble the
// paper's trade-off fronts (Fig. 3/5/7) from sets of evolved designs.
// Both objectives are minimized.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace axc::core {

struct pareto_point {
  double x{0.0};  ///< first objective (e.g. WMED)
  double y{0.0};  ///< second objective (e.g. power, area, PDP)
  std::size_t index{0};  ///< caller's payload index

  friend bool operator==(const pareto_point&, const pareto_point&) = default;
};

/// True when a is at least as good in both objectives and better in one.
[[nodiscard]] bool dominates(const pareto_point& a, const pareto_point& b);

/// Non-dominated subset, sorted by ascending x.  Duplicate points are kept
/// once.
[[nodiscard]] std::vector<pareto_point> pareto_front(
    std::span<const pareto_point> points);

}  // namespace axc::core
