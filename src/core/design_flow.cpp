#include "core/design_flow.h"

#include <optional>
#include <utility>

#include "core/workload.h"
#include "mult/multipliers.h"
#include "support/assert.h"

namespace axc::core {

design_power characterize_multiplier(const circuit::netlist& multiplier,
                                     const metrics::mult_spec& spec,
                                     const dist::pmf& d,
                                     const tech::cell_library& lib,
                                     std::size_t workload_samples,
                                     std::uint64_t workload_seed) {
  rng gen(workload_seed);
  const std::vector<std::uint64_t> workload =
      make_multiplier_workload(spec, d, workload_samples, gen);
  const tech::circuit_report report =
      tech::analyze(multiplier, lib, workload);
  return design_power{report.area_um2, report.delay_ps,
                      report.power.total_uw(), report.pdp_fj()};
}

design_power characterize_mac(const circuit::netlist& multiplier,
                              const metrics::mult_spec& spec,
                              const dist::pmf& d, unsigned acc_width,
                              const tech::cell_library& lib,
                              std::size_t workload_samples,
                              std::uint64_t workload_seed) {
  const circuit::netlist mac =
      mult::build_mac(multiplier, spec.width, acc_width, spec.is_signed);
  rng gen(workload_seed);
  const std::vector<std::uint64_t> workload =
      make_mac_workload(spec, d, acc_width, workload_samples, gen);
  const tech::circuit_report report = tech::analyze(mac, lib, workload);
  return design_power{report.area_um2, report.delay_ps,
                      report.power.total_uw(), report.pdp_fj()};
}

std::vector<tailored_multiplier> design_for_distribution(
    const dist::pmf& d, approximation_config config,
    std::span<const double> targets, const circuit::netlist& seed) {
  config.distribution = d;
  const tech::cell_library& lib = *config.library;
  const wmed_approximator approximator(std::move(config));
  const approximation_config& cfg = approximator.config();

  std::vector<tailored_multiplier> result;
  result.reserve(targets.size());
  for (const double target : targets) {
    std::optional<evolved_design> best;
    for (std::size_t run = 0; run < cfg.runs_per_target; ++run) {
      evolved_design candidate = approximator.approximate(seed, target, run);
      if (!best || candidate.area_um2 < best->area_um2) {
        best = std::move(candidate);
      }
    }
    metrics::compiled_mult_table lut(best->netlist, cfg.spec);
    const design_power power =
        characterize_multiplier(best->netlist, cfg.spec, d, lib);
    result.push_back(
        tailored_multiplier{std::move(*best), std::move(lut), power});
  }
  return result;
}

std::vector<tailored_multiplier> design_for_samples(
    std::span<const std::int8_t> samples, approximation_config config,
    std::span<const double> targets, const circuit::netlist& seed) {
  AXC_EXPECTS(config.spec.width == 8);  // int8 samples imply an 8-bit operand
  const dist::pmf d = dist::pmf::from_int8_samples(samples);
  return design_for_distribution(d, std::move(config), targets, seed);
}

}  // namespace axc::core
