// Session-based design-space exploration (the orchestration layer).
//
// The paper's methodology — repeat the CGP search for several target error
// levels E_i and several repetitions, then assemble a Pareto front — is a
// sweep of independent jobs.  A search_session makes that sweep a
// first-class, resumable object instead of a blocking call:
//
//   * a sweep_plan expands (targets x runs_per_target) into explicit jobs,
//     each deterministic in (rng_seed, target, run_index) alone;
//   * a job scheduler runs pending jobs on a thread_pool (job-level
//     parallelism layered above the per-generation lambda parallelism) —
//     results are bit-identical at any job_threads setting because jobs
//     never share mutable state;
//   * the per-(spec, distribution) evaluator tables are built once per
//     session and shared by every job via the component_handle's cache;
//   * observers get a structured progress_event stream (job started /
//     improved / generation tick / finished), serialized so callbacks
//     need no locking of their own;
//   * request_stop() cancels cooperatively: queued jobs are dropped,
//     in-flight jobs stop at the next generation and stay pending;
//   * the live Pareto archive (WMED vs area, payload = job id) is
//     maintained incrementally as jobs finish;
//   * save()/resume() checkpoint completed jobs — evolved netlists in the
//     circuit::write_netlist text format plus scores and plan state — so a
//     sweep survives process exit and can be sharded across machines by
//     passing the checkpoint around.  A resumed session re-runs pending
//     jobs from scratch (cancelled runs consumed a prefix of their RNG
//     stream), which reproduces exactly the uninterrupted result.
//
// Durability (PR 6): checkpoints are written in the "axc-session v2"
// format — every section (header + each job record) carries a CRC32 and
// the file ends in an `end <count>` footer sentinel.  save_file() is
// atomic and durable (temp file + flush + fsync + rename), so a crash
// mid-save can never clobber the previous good checkpoint.  resume()
// *salvages* truncated or corrupted v2 files: every job record whose CRC
// checks out is restored, damaged records are dropped (they simply re-run)
// — only a damaged header rejects the file.  v1 checkpoints remain
// readable with their original strict semantics.  session_config grows
// autosave knobs so long sweeps persist progress without any caller code.
//
// The legacy one-shot APIs (basic_wmed_approximator::approximate/sweep)
// are thin wrappers over a single-plan session.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "circuit/netlist.h"
#include "core/component_handle.h"
#include "core/pareto.h"
#include "core/wmed_approximator.h"

namespace axc::core {

/// One unit of schedulable work: a CGP run at one (target, repetition).
struct sweep_job {
  std::size_t id{0};  ///< index into the expanded plan (target-major)
  double target{0.0};
  std::size_t run_index{0};
};

/// The declarative sweep: targets x runs_per_target, expanded target-major
/// (all repetitions of targets[0] first) to match the legacy sweep order.
struct sweep_plan {
  std::vector<double> targets;
  std::size_t runs_per_target{1};

  [[nodiscard]] std::size_t job_count() const {
    return targets.size() * runs_per_target;
  }
  [[nodiscard]] std::vector<sweep_job> jobs() const;
};

enum class progress_kind : std::uint8_t {
  job_started,
  job_generation,  ///< periodic tick (session_config::generation_stride)
  job_improved,    ///< the run's parent strictly improved
  job_finished,
  session_finished,  ///< every job of the plan has completed
};

/// One entry of the session's structured progress stream.  Events are
/// emitted under a dedicated callback lock, so observers see a serialized
/// stream and may freely call session accessors (designs()/front()/save())
/// or request_stop() from inside the callback.
struct progress_event {
  progress_kind kind{progress_kind::job_started};
  std::size_t job_id{0};
  double target{0.0};
  std::size_t run_index{0};
  /// Generations completed when the event fired (0 for job_started).
  std::size_t generation{0};
  /// Best-so-far score (job_improved / job_generation: the parent's
  /// constrained error and area; job_finished: the measured final WMED and
  /// area of the compacted design).
  double wmed{0.0};
  double area_um2{0.0};
  /// Session-level completion counters at emit time.
  std::size_t completed_jobs{0};
  std::size_t total_jobs{0};
};

struct session_config {
  /// Worker threads for running jobs concurrently (1 = in-order serial).
  /// Layered above basic_approximation_config::threads (per-generation
  /// lambda parallelism inside each job).
  std::size_t job_threads{1};
  /// Emit a job_generation event every N generations (0 = never).
  std::size_t generation_stride{0};
  std::function<void(const progress_event&)> on_progress{};
  /// Observes completed designs (legacy sweep() callback compatibility).
  std::function<void(const evolved_design&)> on_design{};
  /// When non-empty, the session checkpoints itself (atomic save_file) to
  /// this path after every completed job — so a killed process loses at
  /// most the in-flight jobs, which re-run deterministically on resume.
  std::string autosave_path{};
  /// Additionally autosave every N generation ticks counted across all
  /// running jobs (0 = only on job completion).  Mid-job autosaves still
  /// record only *completed* jobs; the knob bounds the wall-clock between
  /// checkpoints when individual jobs are long.
  std::size_t autosave_generations{0};
};

/// What resume() found in the checkpoint (optional out-param; resuming
/// never depends on it).  `salvaged` means the file was damaged and the
/// intact prefix/records were recovered instead of rejecting the file.
struct resume_report {
  unsigned version{0};  ///< checkpoint format version (1 or 2)
  bool salvaged{false};
  std::size_t jobs_recovered{0};
  std::size_t jobs_dropped{0};  ///< corrupt/truncated records skipped
};

class search_session {
 public:
  /// `seed` is the exact circuit every job starts from; its shape must
  /// match the component (seed_inputs/seed_outputs).
  search_session(component_handle component, circuit::netlist seed,
                 sweep_plan plan, session_config options = {});
  search_session(search_session&&) noexcept;
  search_session& operator=(search_session&&) noexcept;
  ~search_session();

  /// Runs every pending job; returns when all completed or after
  /// request_stop() has drained the in-flight jobs.  A stop request is
  /// consumed when run() returns (stopped() records that it fired), so
  /// calling run() again continues the stopped session in-process; a
  /// request that races run()'s start wins and that run() executes
  /// nothing.
  void run();

  /// Cooperative cancellation, callable from any thread including progress
  /// callbacks: drops queued jobs, stops in-flight runs at their next
  /// generation (those jobs stay pending and re-run from scratch later).
  void request_stop();
  /// A stop request is pending (not yet consumed by a run()).
  [[nodiscard]] bool stop_requested() const;
  /// The most recent run() ended early via request_stop().
  [[nodiscard]] bool stopped() const;

  [[nodiscard]] const component_handle& component() const;
  [[nodiscard]] const circuit::netlist& seed() const;
  [[nodiscard]] const sweep_plan& plan() const;
  [[nodiscard]] std::size_t total_jobs() const;
  [[nodiscard]] std::size_t completed_jobs() const;
  [[nodiscard]] bool finished() const;

  /// Completed designs in plan order (pending jobs omitted).  After an
  /// uninterrupted run this equals the legacy sweep() result bit for bit,
  /// at any job_threads setting.  NOTE: on a partially-completed session
  /// positions do NOT correspond to job ids — resolve a front() point's
  /// index through design(), not through this vector.
  [[nodiscard]] std::vector<evolved_design> designs() const;

  /// The completed design of one job (nullopt while the job is pending) —
  /// the lookup to use for front() indices.
  [[nodiscard]] std::optional<evolved_design> design(
      std::size_t job_id) const;

  /// Snapshot of the live Pareto archive: x = WMED, y = area_um2,
  /// index = job id (resolve via design(index)).
  [[nodiscard]] std::vector<pareto_point> front() const;

  /// Writes the checkpoint ("axc-session v2"): component fingerprint, plan,
  /// seed netlist and every completed job (scores + evolved netlist), each
  /// section closed by a CRC32 line, the file by an `end <count>` footer.
  /// Text, diffable, netlists in the circuit::write_netlist format.
  void save(std::ostream& os) const;
  /// Atomic and durable: writes `<path>.tmp`, flushes, fsyncs, renames
  /// over `path`, then fsyncs the parent directory (rename alone is not
  /// durable across power loss) — false on any failure, and a previously
  /// saved good checkpoint at `path` is never clobbered by a failed save.
  [[nodiscard]] bool save_file(const std::string& path) const;

  /// Rebuilds a session from a checkpoint.  The handle must describe the
  /// same search (name, width, rng_seed, iterations are fingerprinted);
  /// nullopt on a damaged header or a fingerprint mismatch (reason on
  /// stderr).  Completed jobs are restored verbatim; run() then executes
  /// only the remainder, and the final designs()/front() equal an
  /// uninterrupted run's.  v2 checkpoints are *salvaged*: job records with
  /// failing CRCs (bit flips, torn writes, truncation) are dropped and
  /// everything intact is recovered — the dropped jobs merely re-run.
  /// `report` (optional) describes what was recovered.
  [[nodiscard]] static std::optional<search_session> resume(
      std::istream& is, component_handle component,
      session_config options = {}, resume_report* report = nullptr);
  [[nodiscard]] static std::optional<search_session> resume_file(
      const std::string& path, component_handle component,
      session_config options = {}, resume_report* report = nullptr);

 private:
  struct impl;
  explicit search_session(std::unique_ptr<impl> state);

  /// Format-version parsers behind resume(): v1 streams strictly (the
  /// pre-CRC format has no section boundaries to salvage at); v2 parses
  /// from memory with per-section CRC checks and record-level salvage.
  [[nodiscard]] static std::optional<search_session> resume_v1(
      std::istream& is, component_handle component, session_config options);
  [[nodiscard]] static std::optional<search_session> resume_v2(
      const std::string& text, component_handle component,
      session_config options, resume_report* report);

  std::unique_ptr<impl> impl_;
};

}  // namespace axc::core
