#include "core/node_pool.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <istream>
#include <sstream>

namespace axc::core {
namespace {

std::vector<std::string> split_tokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

std::chrono::milliseconds scaled(std::chrono::milliseconds base,
                                 double factor, std::size_t exponent) {
  const double scale = std::pow(factor, static_cast<double>(exponent));
  return std::chrono::milliseconds(
      static_cast<std::int64_t>(static_cast<double>(base.count()) * scale));
}

}  // namespace

std::optional<std::vector<node_config>> parse_nodes(std::istream& in) {
  std::vector<node_config> nodes;
  std::string line;
  bool saw_header = false;
  bool in_block = false;
  node_config current;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::vector<std::string> tokens = split_tokens(line);
    if (!saw_header) {
      if (tokens.size() != 2 || tokens[0] != "axc-nodes" || tokens[1] != "v1") {
        return std::nullopt;
      }
      saw_header = true;
      continue;
    }
    const std::string& key = tokens[0];
    if (key == "node") {
      if (in_block || tokens.size() != 2) return std::nullopt;
      for (const node_config& n : nodes) {
        if (n.name == tokens[1]) return std::nullopt;  // duplicate name
      }
      current = node_config{};
      current.name = tokens[1];
      in_block = true;
      continue;
    }
    if (!in_block) return std::nullopt;
    if (key == "end") {
      if (tokens.size() != 1) return std::nullopt;
      nodes.push_back(std::move(current));
      in_block = false;
    } else if (key == "host" && tokens.size() == 2) {
      current.host = tokens[1];
    } else if (key == "slots" && tokens.size() == 2) {
      std::size_t pos = 0;
      unsigned long v = 0;
      try {
        v = std::stoul(tokens[1], &pos);
      } catch (...) {
        return std::nullopt;
      }
      if (pos != tokens[1].size() || v == 0) return std::nullopt;
      current.slots = static_cast<std::size_t>(v);
    } else if (key == "workdir" && tokens.size() == 2) {
      current.workdir = tokens[1];
    } else if (key == "worker" && tokens.size() == 2) {
      current.worker = tokens[1];
    } else if (key == "run" && tokens.size() >= 2) {
      current.tpl.run.assign(tokens.begin() + 1, tokens.end());
    } else if (key == "fetch" && tokens.size() >= 2) {
      current.tpl.fetch.assign(tokens.begin() + 1, tokens.end());
    } else if (key == "push" && tokens.size() >= 2) {
      current.tpl.push.assign(tokens.begin() + 1, tokens.end());
    } else {
      return std::nullopt;
    }
  }
  if (!saw_header || in_block || nodes.empty()) return std::nullopt;
  return nodes;
}

std::optional<std::vector<node_config>> parse_nodes_file(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return parse_nodes(in);
}

node_pool::node_pool(std::vector<node_config> nodes, node_policy policy)
    : policy_(policy) {
  states_.reserve(nodes.size());
  for (node_config& n : nodes) {
    state s;
    s.config = std::move(n);
    states_.push_back(std::move(s));
  }
}

bool node_pool::eligible(const state& s, clock::time_point now) const {
  if (s.active >= s.config.slots) return false;
  // A probation node proves itself one lease at a time.
  if (s.probation && s.active > 0) return false;
  switch (s.health) {
    case node_health::healthy:
      return true;
    case node_health::backing_off:
    case node_health::quarantined:
      return now >= s.available_at;
  }
  return false;
}

std::optional<std::size_t> node_pool::acquire(
    clock::time_point now, const std::vector<std::size_t>& avoid) {
  auto pick = [&](bool skip_avoided) -> std::optional<std::size_t> {
    std::optional<std::size_t> best;
    for (std::size_t i = 0; i < states_.size(); ++i) {
      if (skip_avoided &&
          std::find(avoid.begin(), avoid.end(), i) != avoid.end()) {
        continue;
      }
      if (!eligible(states_[i], now)) continue;
      if (!best || states_[i].active < states_[*best].active) best = i;
    }
    return best;
  };
  std::optional<std::size_t> chosen = pick(true);
  if (!chosen) chosen = pick(false);
  if (!chosen) return std::nullopt;
  state& s = states_[*chosen];
  if (s.health == node_health::quarantined) s.probation = true;
  ++s.active;
  ++s.launches;
  return chosen;
}

void node_pool::release(std::size_t node) {
  state& s = states_[node];
  if (s.active > 0) --s.active;
}

void node_pool::release_success(std::size_t node) {
  state& s = states_[node];
  if (s.active > 0) --s.active;
  s.consecutive = 0;
  s.probation = false;
  s.health = node_health::healthy;
}

void node_pool::release_failure(std::size_t node, clock::time_point now) {
  state& s = states_[node];
  if (s.active > 0) --s.active;
  ++s.failures;
  ++s.consecutive;
  if (s.probation || s.consecutive >= policy_.quarantine_after) {
    // A failed probation lease — or enough consecutive failures — sends
    // the node (back) to quarantine with an escalating delay.
    s.health = node_health::quarantined;
    s.probation = false;
    ++s.quarantines;
    s.available_at = now + scaled(policy_.reprobation,
                                  policy_.reprobation_factor,
                                  s.quarantines - 1);
    return;
  }
  s.health = node_health::backing_off;
  s.available_at =
      now + scaled(policy_.backoff, policy_.backoff_factor, s.consecutive - 1);
}

void node_pool::mark_dead(std::size_t node, clock::time_point now) {
  state& s = states_[node];
  ++s.failures;
  s.consecutive = std::max(s.consecutive + 1, policy_.quarantine_after);
  s.health = node_health::quarantined;
  s.probation = false;
  ++s.quarantines;
  s.available_at = now + scaled(policy_.reprobation,
                                policy_.reprobation_factor,
                                s.quarantines - 1);
}

node_status node_pool::status(std::size_t node) const {
  const state& s = states_[node];
  return node_status{s.config.name, s.health,    s.active,
                     s.launches,    s.failures,  s.consecutive,
                     s.quarantines, s.probation};
}

std::vector<node_status> node_pool::report() const {
  std::vector<node_status> out;
  out.reserve(states_.size());
  for (std::size_t i = 0; i < states_.size(); ++i) {
    out.push_back(status(i));
  }
  return out;
}

std::optional<node_pool::clock::time_point> node_pool::next_eligible(
    clock::time_point now) const {
  std::optional<clock::time_point> earliest;
  for (const state& s : states_) {
    if (eligible(s, now)) return std::nullopt;  // someone is ready now
    if (s.active >= s.config.slots) continue;   // waiting on a release
    if (s.probation && s.active > 0) continue;
    if (s.health == node_health::healthy) continue;
    if (!earliest || s.available_at < *earliest) earliest = s.available_at;
  }
  return earliest;
}

}  // namespace axc::core
