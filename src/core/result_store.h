// Crash-safe, content-addressed on-disk store of finished search artifacts.
//
// The serving story ("spec + width + distribution + error budget -> ranked
// front", answered in microseconds) only works if a library of finished
// sessions, rerank caches and fronts survives everything PR 6 taught the
// sweep runtime to survive: torn writes, bit rot, and processes dying at
// arbitrary instants.  result_store is that durability contract:
//
//   * objects are immutable byte blobs named by their content hash
//     (support::fnv1a64 over kind + key + payload), stored under
//     `<root>/objects/<hh>/<16-hex>.obj`.  Identical content maps to the
//     identical object — re-publishing after a crash is a no-op, which is
//     what makes coordinator recovery idempotent;
//   * every object is written through the atomic durable path
//     (support::write_file_durable: tmp + fsync + rename + parent-dir
//     fsync) and framed with per-section CRC32s — a header CRC over the
//     framing lines and a payload CRC over the bytes — so damage is
//     *detected* at read time, never served;
//   * lookups go through an append-only index journal (`<root>/index.axc`)
//     mapping (kind, key) -> object, one self-CRC'd record per line with
//     the axc-session-v2 salvage semantics: damaged records are dropped
//     and scanning resyncs at the next line.  A missing or header-damaged
//     index degrades gracefully — open() rebuilds it by scanning the
//     object files themselves (the objects are the truth; the index is a
//     cache of it);
//   * scrub() verifies every object file's CRCs and *quarantines* corrupt
//     ones (renames them into `<root>/quarantine/`, never deletes — bit
//     rot is evidence worth keeping), dropping their index entries so
//     every remaining lookup keeps serving its exact stored bytes;
//   * gc() removes objects no live index entry references (superseded
//     puts, orphans from crashes between object write and index append).
//
// Keys are caller-chosen single tokens (no whitespace); the convention for
// search artifacts is format_key(fingerprint) — the PR 5 config
// fingerprint hex — optionally folded with a plan hash (see
// sweep_spec::store_key()).  Kinds in use: "session" (finished
// search_session checkpoints), "front" (serialize_front text), "rerank"
// (persisted rerank caches).  The store itself is kind-agnostic.
//
// Fault injection points (support/fault.h): `store-put-fail` /
// `store-put-truncate` / `store-put-dirsync-fail` on the object write,
// `store-index-append-fail` on the journal append,
// `store-crash-mid-index-append` which _Exit(44)s between the object write
// and its index record — the deterministic stand-in for a coordinator
// SIGKILLed mid-publish, replayed by tests/test_result_store.cpp and the
// coordinator-recovery suite — and `store-put-racing-gc`, which deletes
// the object right after put()'s existence probe (a concurrent gc with a
// stale index winning the race; put re-probes after the index append and
// rewrites the object, so an idempotent put always leaves it referenced
// AND present).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/pareto.h"

namespace axc::core {

/// One live index entry: the current object serving (kind, key).
struct store_entry {
  std::string kind;
  std::string key;
  std::uint64_t hash{0};  ///< content address (object file name)
  std::uint64_t size{0};  ///< payload bytes
  std::uint32_t payload_crc{0};
};

/// What open() had to do to produce a usable index.
struct store_open_report {
  bool index_rebuilt{false};   ///< missing/header-damaged index: object scan
  bool index_salvaged{false};  ///< damaged records dropped, rest kept
  std::size_t entries{0};      ///< live (kind, key) mappings after open
};

struct store_scrub_report {
  std::size_t objects_checked{0};
  std::size_t quarantined{0};       ///< corrupt objects renamed aside
  std::size_t entries_dropped{0};   ///< index entries that lost their object
};

struct store_gc_report {
  std::size_t objects_removed{0};
  std::uint64_t bytes_reclaimed{0};
};

class result_store {
 public:
  /// Opens (creating directories as needed) the store at `root`.  A
  /// corrupt or absent index is not an error — it is rebuilt from the
  /// object files (report describes what happened).  nullopt only when
  /// the directories cannot be created or the index cannot be written.
  [[nodiscard]] static std::optional<result_store> open(
      std::string root, store_open_report* report = nullptr);

  [[nodiscard]] const std::string& root() const { return root_; }

  /// Stores `payload` under (kind, key), replacing any previous mapping
  /// (the superseded object stays on disk until gc()).  Both kind and key
  /// must be non-empty single tokens (no whitespace).  Durable on return;
  /// idempotent for identical content.  Returns the content hash, nullopt
  /// on I/O failure (the previous mapping, if any, is untouched).
  [[nodiscard]] std::optional<std::uint64_t> put(std::string_view kind,
                                                 std::string_view key,
                                                 std::string_view payload);

  /// The exact bytes last put under (kind, key); nullopt when unmapped or
  /// when the object fails its CRCs (damage is reported on stderr and
  /// never served — run scrub() to quarantine it).
  [[nodiscard]] std::optional<std::string> get(std::string_view kind,
                                               std::string_view key) const;

  [[nodiscard]] bool contains(std::string_view kind,
                              std::string_view key) const;

  /// Live mappings, sorted by (kind, key) — the `axc_store ls` surface.
  /// A non-empty `kind` filters to that kind only (`axc_store ls --kind`).
  [[nodiscard]] std::vector<store_entry> entries(
      std::string_view kind = {}) const;

  /// Verifies every object file (referenced or not) against its CRCs;
  /// corrupt or unparseable objects are renamed into
  /// `<root>/quarantine/` and their index entries dropped, so every
  /// surviving lookup still returns its exact stored bytes.  Also drops
  /// entries whose object file has gone missing.  Rewrites the index
  /// durably when anything changed.
  store_scrub_report scrub();

  /// Deletes object files no live index entry references and compacts the
  /// index to the live mappings.  Quarantined files are never touched.
  store_gc_report gc();

  /// Canonical key text for a 64-bit fingerprint: 16 lowercase hex digits.
  [[nodiscard]] static std::string format_key(std::uint64_t fingerprint);

 private:
  explicit result_store(std::string root) : root_(std::move(root)) {}

  [[nodiscard]] std::string object_path(std::uint64_t hash) const;
  [[nodiscard]] bool append_index_record(const store_entry& entry);
  [[nodiscard]] bool rewrite_index() const;
  void scan_objects(std::vector<store_entry>& found) const;

  std::string root_;
  /// Live (kind, key) -> entry map; insertion-ordered replay of the
  /// journal, kept sorted for entries().  Linear scan is fine at the store
  /// sizes a coordinator sees; the journal on disk is the scaling story.
  std::vector<store_entry> index_;
};

/// "axc-front v1" text serialization of a Pareto front (x/y as %.17g so
/// the round trip is bit-exact; one point per line, `end` terminator).
/// The store's "front" objects hold exactly these bytes, which is what
/// makes "published front bit-identical to an uninterrupted sweep" a
/// byte-comparison rather than a float-tolerance test.
[[nodiscard]] std::string serialize_front(
    std::span<const pareto_point> front);
[[nodiscard]] std::optional<std::vector<pareto_point>> parse_front(
    std::string_view text);

/// "axc-table v1" text serialization of a compiled behavioural table (the
/// store's "table" kind, keyed by component fingerprint): decoded results
/// for every operand-pattern pair, entry[(b << w) | a], exact integers so
/// the round trip is trivially bit-exact.  Parsing is strict: a count
/// mismatch, non-integer token or missing terminator returns nullopt.
struct table_payload {
  unsigned width{0};
  std::vector<std::int64_t> values{};
};
[[nodiscard]] std::string serialize_table(
    unsigned width, std::span<const std::int64_t> values);
[[nodiscard]] std::optional<table_payload> parse_table(
    std::string_view text);

}  // namespace axc::core
