// Runtime-selectable component classes behind one non-template API.
//
// The search machinery is templated over metrics::component_spec so each
// component class (multipliers, adders, future MACs/squarers) compiles to
// its own fast path — but a session, a checkpoint file or a CLI flag wants
// to pick the component at runtime.  component_handle type-erases one
// basic_approximation_config<Spec> together with the lazily-built shared
// evaluator cache for its (spec, distribution): copies of a handle share
// the same cache, so every job a search_session schedules through it reuses
// one set of exact-result planes (built once per session, not once per
// run — the cache_builds() counter makes that reuse testable).
//
// component_registry maps component names ("mult", "adder", ...) to
// factories over the non-template component_options knobs; new component
// classes register a factory and become reachable from strings (checkpoint
// headers, config files) without touching any caller.
#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/wmed_approximator.h"
#include "metrics/compiled_table.h"
#include "support/assert.h"

namespace axc::core {

/// Default registry name of a spec ("mult", "adder"); specialize alongside
/// new component_spec types.
template <metrics::component_spec Spec>
struct component_traits;
template <>
struct component_traits<metrics::mult_spec> {
  static constexpr const char* name = "mult";
};
template <>
struct component_traits<metrics::adder_spec> {
  static constexpr const char* name = "adder";
};

class component_handle {
 public:
  component_handle() = default;

  /// False for a default-constructed handle or an unknown registry name;
  /// every other accessor requires a non-empty handle (AXC_EXPECTS).
  [[nodiscard]] explicit operator bool() const { return impl_ != nullptr; }

  [[nodiscard]] const std::string& name() const { return get().name(); }
  [[nodiscard]] unsigned width() const { return get().width(); }
  /// Input/output counts a seed netlist for this component must have.
  [[nodiscard]] std::size_t seed_inputs() const {
    return get().seed_inputs();
  }
  [[nodiscard]] std::size_t seed_outputs() const {
    return get().seed_outputs();
  }
  [[nodiscard]] std::uint64_t rng_seed() const { return get().rng_seed(); }
  [[nodiscard]] std::size_t iterations() const {
    return get().iterations();
  }
  /// The wrapped config's runs_per_target (a sweep_plan may override it).
  [[nodiscard]] std::size_t runs_per_target() const {
    return get().runs_per_target();
  }

  /// One CGP run (see core::run_search_job): nullopt iff cancelled via
  /// hooks.should_stop.  Thread-safe; concurrent jobs share the cache.
  [[nodiscard]] std::optional<evolved_design> run_job(
      const circuit::netlist& seed, double target, std::size_t run_index,
      const search_hooks& hooks = {}) const {
    return get().run_job(seed, target, run_index, hooks);
  }

  /// How many times this handle (family — copies share the counter) built
  /// its shared evaluator cache.  A session-long sweep must report 1.
  [[nodiscard]] std::size_t cache_builds() const {
    return get().cache_builds();
  }

  /// Exhaustive behavioural characterization of `nl` under this
  /// component's spec: decoded results for every operand-pattern pair,
  /// entry[(b << w) | a] (the compiled-table fast path).  What the result
  /// store publishes under kind "table", keyed by fingerprint().
  [[nodiscard]] std::vector<std::int64_t> characterize(
      const circuit::netlist& nl) const {
    return get().characterize(nl);
  }

  /// Hash of every result-affecting config knob (spec shape, distribution,
  /// search budget, RNG seed, function set, tie-break policy) — NOT of the
  /// bit-identical execution knobs (threads, incremental).  Checkpoints
  /// embed this so resuming against a subtly different search is rejected
  /// instead of silently mixing incompatible jobs.
  [[nodiscard]] std::uint64_t fingerprint() const {
    return get().fingerprint();
  }

  template <metrics::component_spec Spec>
  [[nodiscard]] static component_handle wrap(
      basic_approximation_config<Spec> config, std::string name,
      wmed_shared_cache<Spec> cache = nullptr) {
    component_handle handle;
    handle.impl_ = std::make_shared<model<Spec>>(std::move(config),
                                                 std::move(name),
                                                 std::move(cache));
    return handle;
  }

 private:
  struct interface;

  /// Loud diagnostic instead of a null dereference on empty handles.
  [[nodiscard]] const interface& get() const {
    AXC_EXPECTS(impl_ != nullptr);
    return *impl_;
  }

  struct interface {
    virtual ~interface() = default;
    [[nodiscard]] virtual const std::string& name() const = 0;
    [[nodiscard]] virtual unsigned width() const = 0;
    [[nodiscard]] virtual std::size_t seed_inputs() const = 0;
    [[nodiscard]] virtual std::size_t seed_outputs() const = 0;
    [[nodiscard]] virtual std::uint64_t rng_seed() const = 0;
    [[nodiscard]] virtual std::size_t iterations() const = 0;
    [[nodiscard]] virtual std::size_t runs_per_target() const = 0;
    [[nodiscard]] virtual std::optional<evolved_design> run_job(
        const circuit::netlist& seed, double target, std::size_t run_index,
        const search_hooks& hooks) const = 0;
    [[nodiscard]] virtual std::size_t cache_builds() const = 0;
    [[nodiscard]] virtual std::vector<std::int64_t> characterize(
        const circuit::netlist& nl) const = 0;
    [[nodiscard]] virtual std::uint64_t fingerprint() const = 0;
  };

  template <metrics::component_spec Spec>
  struct model final : interface {
    model(basic_approximation_config<Spec> cfg, std::string n,
          wmed_shared_cache<Spec> pre_built)
        : config(std::move(cfg)),
          name_(std::move(n)),
          cache(std::move(pre_built)) {
      finalize_config(config);
    }

    [[nodiscard]] const std::string& name() const override { return name_; }
    [[nodiscard]] unsigned width() const override {
      return config.spec.width;
    }
    [[nodiscard]] std::size_t seed_inputs() const override {
      return 2 * config.spec.width;
    }
    [[nodiscard]] std::size_t seed_outputs() const override {
      return config.spec.result_bits();
    }
    [[nodiscard]] std::uint64_t rng_seed() const override {
      return config.rng_seed;
    }
    [[nodiscard]] std::size_t iterations() const override {
      return config.iterations;
    }
    [[nodiscard]] std::size_t runs_per_target() const override {
      return config.runs_per_target;
    }

    [[nodiscard]] std::optional<evolved_design> run_job(
        const circuit::netlist& seed, double target, std::size_t run_index,
        const search_hooks& hooks) const override {
      return run_search_job(config, acquire_cache(), seed, target,
                            run_index, hooks);
    }

    [[nodiscard]] std::size_t cache_builds() const override {
      std::scoped_lock lock(mutex);
      return builds;
    }

    [[nodiscard]] std::vector<std::int64_t> characterize(
        const circuit::netlist& nl) const override {
      return metrics::result_table_wide(nl, config.spec);
    }

    [[nodiscard]] std::uint64_t fingerprint() const override {
      // FNV-1a-style fold over the knobs that change search results.
      std::uint64_t h = 0xcbf29ce484222325ULL;
      const auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ULL;
      };
      mix(config.spec.width);
      mix(config.spec.result_bits());
      mix(static_cast<std::uint64_t>(config.spec.result_is_signed()));
      mix(config.iterations);
      mix(config.extra_columns);
      mix(config.max_mutations);
      mix(config.lambda);
      mix(config.rng_seed);
      mix(static_cast<std::uint64_t>(config.error_tiebreak));
      for (std::size_t a = 0; a < config.distribution.size(); ++a) {
        mix(std::bit_cast<std::uint64_t>(config.distribution[a]));
      }
      // The cell library drives area estimates and therefore selection:
      // fold in the electrical parameters of every usable gate.
      for (const circuit::gate_fn fn : config.function_set) {
        mix(static_cast<std::uint64_t>(fn));
        const tech::cell_params& cell = config.library->cell(fn);
        mix(std::bit_cast<std::uint64_t>(cell.area_um2));
        mix(std::bit_cast<std::uint64_t>(cell.delay_ps));
        mix(std::bit_cast<std::uint64_t>(cell.toggle_energy_fj));
        mix(std::bit_cast<std::uint64_t>(cell.leakage_nw));
      }
      return h;
    }

    /// Builds the shared evaluator tables on first use, then hands the same
    /// immutable copy to every subsequent job.
    [[nodiscard]] wmed_shared_cache<Spec> acquire_cache() const {
      std::scoped_lock lock(mutex);
      if (!cache) {
        cache = metrics::basic_wmed_evaluator<Spec>::make_shared_state(
            config.spec, config.distribution);
        ++builds;
      }
      return cache;
    }

    basic_approximation_config<Spec> config;
    std::string name_;
    mutable std::mutex mutex;
    mutable wmed_shared_cache<Spec> cache;
    mutable std::size_t builds{0};
  };

  std::shared_ptr<const interface> impl_;
};

/// Wraps a typed config (optionally with an already-built evaluator cache,
/// e.g. a basic_wmed_approximator's) under the spec's default name.
template <metrics::component_spec Spec>
[[nodiscard]] component_handle make_component(
    basic_approximation_config<Spec> config,
    wmed_shared_cache<Spec> cache = nullptr) {
  return component_handle::wrap(std::move(config),
                                component_traits<Spec>::name,
                                std::move(cache));
}

/// The non-template config knobs shared by every component class; registry
/// factories translate these into the typed basic_approximation_config.
/// (function_set stays at the spec default; wrap a typed config directly
/// for full control.)
struct component_options {
  unsigned width{8};
  bool is_signed{false};  ///< ignored by components without a signed form
  dist::pmf distribution{};
  std::size_t iterations{20000};
  std::size_t runs_per_target{1};
  std::size_t extra_columns{64};
  unsigned max_mutations{5};
  std::size_t lambda{4};
  std::size_t threads{1};
  bool error_tiebreak{true};
  bool incremental{true};
  /// Scan kernel backend (bit-identical execution knob, like `threads`).
  simd::level simd{simd::level::automatic};
  /// Multi-candidate batch evaluation (bit-identical execution knob, like
  /// `simd`; excluded from checkpoint fingerprints).
  bool batch_candidates{true};
  std::uint64_t rng_seed{1};
  const tech::cell_library* library{&tech::cell_library::nangate45_like()};
};

/// Name -> factory registry; "mult" and "adder" are pre-registered.
class component_registry {
 public:
  using factory = std::function<component_handle(const component_options&)>;

  static component_registry& instance();

  /// Registers (or replaces) a factory under `name`.
  void register_component(std::string name, factory make);

  /// Empty handle (operator bool false) for unknown names.
  [[nodiscard]] component_handle make(
      const std::string& name, const component_options& options = {}) const;

  [[nodiscard]] std::vector<std::string> names() const;

 private:
  component_registry();

  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, factory>> factories_;
};

}  // namespace axc::core
